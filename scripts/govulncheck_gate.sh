#!/usr/bin/env bash
# govulncheck_gate.sh — run govulncheck pinned to an exact version and fail
# on any vulnerability not matched by the explicit allowlist.
#
# The allowlist (scripts/govulncheck_allowlist.txt) holds one extended
# regexp per line (typically a GO- or CVE identifier with a justification
# comment above it). The module has no dependencies, so findings can only
# come from the standard library; an offline toolchain skips the gate.
set -euo pipefail

VERSION="v1.1.3"
ALLOWLIST="$(dirname "$0")/govulncheck_allowlist.txt"

if ! go install "golang.org/x/vuln/cmd/govulncheck@${VERSION}"; then
  echo "govulncheck ${VERSION} not installable (offline toolchain); skipped"
  exit 0
fi

rc=0
out="$("$(go env GOPATH)/bin/govulncheck" ./... 2>&1)" || rc=$?
if [ "$rc" -eq 0 ]; then
  echo "govulncheck ${VERSION}: clean"
  exit 0
fi

patterns="$(mktemp)"
trap 'rm -f "$patterns"' EXIT
grep -Ev '^[[:space:]]*(#|$)' "$ALLOWLIST" > "$patterns" || true

# Keep only the vulnerability identifiers; tolerate the ones allowlisted.
ids="$(printf '%s\n' "$out" | grep -Eo 'GO-[0-9]{4}-[0-9]+' | sort -u || true)"
remaining="$(printf '%s\n' "$ids" | sed '/^[[:space:]]*$/d' | grep -Evf "$patterns" || true)"
if [ -n "$remaining" ]; then
  echo "govulncheck ${VERSION} vulnerabilities outside the allowlist:"
  printf '%s\n' "$out"
  exit 1
fi
echo "govulncheck ${VERSION}: findings all allowlisted"
