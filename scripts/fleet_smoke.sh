#!/usr/bin/env bash
# fleet_smoke.sh — multi-process fleet integration smoke test.
#
# Starts one coordinator-only tileflow-serve process and two worker
# processes as real OS processes wired over loopback HTTP, submits a search
# job to the coordinator, and verifies a worker process executed it under a
# lease. This is the process-level complement of the in-test fleet suite:
# it proves the flags, the dedicated -fleet-listen port, and the peer
# protocol compose outside the Go test harness.
set -euo pipefail

PORT_C=18080 # coordinator public API
PORT_F=18081 # coordinator fleet listener
PORT_W1=18082
PORT_W2=18083
DIR="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

echo "== building tileflow-serve"
go build -o "$DIR/tileflow-serve" ./cmd/tileflow-serve

echo "== starting coordinator (job-workers=-1, fleet on :$PORT_F)"
"$DIR/tileflow-serve" -addr ":$PORT_C" -fleet-listen ":$PORT_F" \
  -job-workers -1 -lease-ttl 10s -data-dir "$DIR/coord" \
  >"$DIR/coord.log" 2>&1 &
PIDS+=($!)

echo "== starting two workers"
"$DIR/tileflow-serve" -addr ":$PORT_W1" -coordinator "http://127.0.0.1:$PORT_F" \
  -node smoke-w1 -job-workers 1 >"$DIR/w1.log" 2>&1 &
PIDS+=($!)
"$DIR/tileflow-serve" -addr ":$PORT_W2" -coordinator "http://127.0.0.1:$PORT_F" \
  -node smoke-w2 -job-workers 1 >"$DIR/w2.log" 2>&1 &
PIDS+=($!)

wait_http() {
  for _ in $(seq 1 100); do
    if curl -fsS "$1" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "timeout waiting for $1" >&2
  return 1
}
wait_http "http://127.0.0.1:$PORT_C/healthz"
wait_http "http://127.0.0.1:$PORT_W1/healthz"
wait_http "http://127.0.0.1:$PORT_W2/healthz"

echo "== submitting a search job to the coordinator"
JOB=$(curl -fsS "http://127.0.0.1:$PORT_C/v1/jobs/search" -d '{
  "arch": "edge", "workload": "attention:Bert-S",
  "population": 4, "generations": 3, "tile_rounds": 10, "top_k": 2, "seed": 41
}')
ID=$(echo "$JOB" | jq -r .id)
[ -n "$ID" ] && [ "$ID" != "null" ] || { echo "bad submit response: $JOB" >&2; exit 1; }
echo "   job $ID"

echo "== waiting for the job to finish"
STATE=""
for _ in $(seq 1 300); do
  SNAP=$(curl -fsS "http://127.0.0.1:$PORT_C/v1/jobs/$ID")
  STATE=$(echo "$SNAP" | jq -r .state)
  case "$STATE" in
    done) break ;;
    failed|cancelled) echo "job ended $STATE: $SNAP" >&2; exit 1 ;;
  esac
  sleep 0.1
done
[ "$STATE" = "done" ] || { echo "job never finished (last: $STATE)" >&2; exit 1; }

# The coordinator runs -job-workers -1, so it cannot have executed the job
# itself: its fleet counters and the workers' own gauges prove a worker
# process claimed and completed it over the peer protocol.
echo "== checking fleet counters on the coordinator"
METRICS=$(curl -fsS "http://127.0.0.1:$PORT_C/metrics")
echo "$METRICS" | grep -q '^tileflow_fleet_claims_total [1-9]' || {
  echo "coordinator shows no fleet claims" >&2; exit 1; }
echo "$METRICS" | grep -q '^tileflow_fleet_completes_total [1-9]' || {
  echo "coordinator shows no fleet completes" >&2; exit 1; }

WORKER=""
for w in 1 2; do
  port=$((PORT_W1 + w - 1))
  if curl -fsS "http://127.0.0.1:$port/metrics" |
    grep -q "^tileflow_fleet_worker_claims_total{node=\"smoke-w$w\"} [1-9]"; then
    WORKER="smoke-w$w"
  fi
done
[ -n "$WORKER" ] || { echo "no worker process reports a claim" >&2; exit 1; }
echo "   executed by $WORKER"

echo "fleet smoke test passed"
