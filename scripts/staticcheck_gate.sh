#!/usr/bin/env bash
# staticcheck_gate.sh — run staticcheck pinned to an exact version and fail
# on any finding not matched by the explicit allowlist.
#
# The allowlist (scripts/staticcheck_allowlist.txt) holds one extended
# regexp per line; a finding must match one of them to be tolerated, so
# every suppression is reviewable in the diff that introduced it. The
# module itself is dependency-free — the linter binary is installed on
# demand, and an offline toolchain skips the gate rather than failing it.
set -euo pipefail

VERSION="2024.1.1"
ALLOWLIST="$(dirname "$0")/staticcheck_allowlist.txt"

if ! go install "honnef.co/go/tools/cmd/staticcheck@${VERSION}"; then
  echo "staticcheck ${VERSION} not installable (offline toolchain); skipped"
  exit 0
fi

out="$("$(go env GOPATH)/bin/staticcheck" ./... 2>&1)" || true

patterns="$(mktemp)"
trap 'rm -f "$patterns"' EXIT
grep -Ev '^[[:space:]]*(#|$)' "$ALLOWLIST" > "$patterns" || true

remaining="$(printf '%s\n' "$out" | sed '/^[[:space:]]*$/d' | grep -Evf "$patterns" || true)"
if [ -n "$remaining" ]; then
  echo "staticcheck ${VERSION} findings outside the allowlist:"
  printf '%s\n' "$remaining"
  exit 1
fi
echo "staticcheck ${VERSION}: clean (allowlist: $(wc -l < "$patterns") patterns)"
