// Convolution-chain fusion: compare Layerwise, Fused-Layer, ISOS and the
// pipelined TileFlow dataflow for a two-convolution chain, then sweep the
// L1 bandwidth to find each dataflow's "suitable bandwidth" (the paper's
// Fig 12 + Fig 14 studies in one program).
package main

import (
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/mapper"
	"repro/internal/workload"
)

func main() {
	chainName := "CC1"
	if len(os.Args) > 1 {
		chainName = os.Args[1]
	}
	shape, ok := workload.ConvChainShapeByName(chainName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown chain %q; use CC1..CC5\n", chainName)
		os.Exit(1)
	}

	spec := arch.Cloud()
	fmt.Printf("conv chain %s (%dx%d, %d->%d->%d channels) on %s\n\n",
		shape.Name, shape.Height, shape.Width, shape.InC, shape.OutC1, shape.OutC2, spec.Name)

	flows := []dataflows.Dataflow{
		dataflows.LayerwiseConv(shape, spec),
		dataflows.FusedLayer(shape, spec),
		dataflows.ISOS(shape, spec),
		dataflows.TileFlowConv(shape, spec),
	}
	fmt.Printf("%-12s %12s %10s %12s\n", "dataflow", "cycles", "speedup", "DRAM words")
	var layer float64
	tuned := map[string]map[string]int{}
	for _, df := range flows {
		ev := mapper.Tune(df, spec, core.Options{}, 200, 3)
		if ev == nil {
			fmt.Printf("%-12s %12s\n", df.Name(), "OOM")
			continue
		}
		tuned[df.Name()] = ev.Factors
		if df.Name() == "Layerwise" {
			layer = ev.Cycles
		}
		speed := "-"
		if layer > 0 {
			speed = fmt.Sprintf("%.2fx", layer/ev.Cycles)
		}
		fmt.Printf("%-12s %12.4g %10s %12.4g\n", df.Name(), ev.Cycles, speed, ev.Result.DRAMTraffic())
	}

	// Bandwidth sensitivity on Edge (Fig 14): fix each tuned dataflow and
	// sweep the L1 bandwidth.
	fmt.Printf("\nL1 bandwidth sensitivity on Edge (slow-down = access/compute latency):\n")
	edge := arch.Edge()
	fmt.Printf("%-12s", "BW GB/s")
	bws := []float64{30, 60, 120, 240, 480, 960}
	for _, bw := range bws {
		fmt.Printf(" %8.0f", bw)
	}
	fmt.Println()
	for _, name := range []string{"Fused-Layer", "TileFlow"} {
		var df dataflows.Dataflow
		if name == "Fused-Layer" {
			df = dataflows.FusedLayer(shape, edge)
		} else {
			df = dataflows.TileFlowConv(shape, edge)
		}
		ev := mapper.Tune(df, edge, core.Options{}, 200, 3)
		if ev == nil {
			continue
		}
		root, err := df.Build(ev.Factors)
		if err != nil {
			continue
		}
		fmt.Printf("%-12s", name)
		for _, bw := range bws {
			res, err := core.Evaluate(root, df.Graph(), edge.WithLevelBandwidth("L1", bw), core.Options{})
			if err != nil {
				fmt.Printf(" %8s", "-")
				continue
			}
			fmt.Printf(" %8.2f", res.SlowDown[1])
		}
		fmt.Println()
	}
}
