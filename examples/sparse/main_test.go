package main

import "testing"

// TestSparseExampleRuns executes the sparse-attention example end-to-end,
// covering the Sec 7.7 density sweep and the tile search it finishes with.
func TestSparseExampleRuns(t *testing.T) {
	main()
}
