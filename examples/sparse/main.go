// Sparse attention: the Sec 7.7 extension in action. A Sanger-style sparse
// attention keeps only a fraction of the score matrix; marking the score
// tensor and its softmax descendants sparse scales their movement, staging
// and gated compute, and lets a fused dataflow stage far longer sequences
// in the same buffer.
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/mapper"
	"repro/internal/workload"
)

func main() {
	shape := workload.AttentionShape{Name: "sparse-demo", Heads: 12, SeqLen: 1024, Hidden: 768, Batch: 1}
	spec := arch.Edge()

	fmt.Printf("self-attention %s (seq %d) on %s, FLAT-RGran dataflow\n\n", shape.Name, shape.SeqLen, spec.Name)
	fmt.Printf("%-22s %12s %12s %12s %12s\n", "score density", "cycles", "DRAM words", "L1 staging", "eff. MACs")
	for _, density := range []float64{1.0, 0.5, 0.25, 0.1} {
		df := dataflows.FLATRGran(shape, spec)
		g := df.Graph()
		if density < 1 {
			// The score matrix and everything softmax derives from it
			// share the attention mask's sparsity.
			for _, tensor := range []string{"S", "Sh", "E", "L"} {
				if err := g.SetDensity(tensor, density); err != nil {
					log.Fatal(err)
				}
			}
		}
		ev := mapper.Tune(df, spec, core.Options{}, 200, 9)
		if ev == nil {
			fmt.Printf("%-22.2f %12s\n", density, "OOM")
			continue
		}
		fmt.Printf("%-22.2f %12.4g %12.4g %10dKB %12.4g\n",
			density, ev.Cycles, ev.Result.DRAMTraffic(),
			ev.Result.FootprintWords[1]*int64(spec.WordBytes)/1024,
			ev.Result.MACs)
	}
	fmt.Println("\nlower density -> lighter staging, less on-chip traffic, and gated MACs")
}
