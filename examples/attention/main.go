// Attention dataflow shoot-out: tune every Table 5 self-attention dataflow
// with the MCTS mapper and compare latency, DRAM traffic and on-chip
// staging on the Edge accelerator — a program-sized version of the paper's
// Fig 10 study.
package main

import (
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/mapper"
	"repro/internal/workload"
)

func main() {
	shapeName := "Bert-S"
	if len(os.Args) > 1 {
		shapeName = os.Args[1]
	}
	shape, ok := workload.AttentionShapeByName(shapeName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown shape %q; use a Table 2 name (Bert-S, ViT/16-B, T5, ...)\n", shapeName)
		os.Exit(1)
	}
	spec := arch.Edge()
	flows := []dataflows.Dataflow{
		dataflows.LayerwiseAttention(shape, spec),
		dataflows.UniPipe(shape, spec),
		dataflows.FLATHGran(shape, spec),
		dataflows.FLATRGran(shape, spec),
		dataflows.Chimera(shape, spec),
		dataflows.TileFlowAttention(shape, spec),
	}

	fmt.Printf("self-attention %s on %s — mapper-tuned comparison\n\n", shape.Name, spec.Name)
	fmt.Printf("%-12s %12s %10s %12s %12s %10s\n", "dataflow", "cycles", "speedup", "DRAM words", "L1 staging", "energy pJ")
	var layerCycles float64
	for _, df := range flows {
		ev := mapper.Tune(df, spec, core.Options{}, 300, 7)
		if ev == nil {
			fmt.Printf("%-12s %12s\n", df.Name(), "OOM")
			continue
		}
		if df.Name() == "Layerwise" {
			layerCycles = ev.Cycles
		}
		speed := "-"
		if layerCycles > 0 {
			speed = fmt.Sprintf("%.2fx", layerCycles/ev.Cycles)
		}
		fmt.Printf("%-12s %12.4g %10s %12.4g %10dKB %10.3g\n",
			df.Name(), ev.Cycles, speed, ev.Result.DRAMTraffic(),
			ev.Result.FootprintWords[1]*int64(spec.WordBytes)/1024,
			ev.Result.EnergyPJ())
	}
	fmt.Println("\n(the paper's Fig 10: TileFlow ~6.65x over Layerwise, ~1.85x over FLAT-HGran)")
}
