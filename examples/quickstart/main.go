// Quickstart: evaluate one fusion dataflow with TileFlow's tree-based
// analysis in a dozen lines — the FLAT row-granularity dataflow for BERT
// self-attention on the Edge accelerator of the paper's Table 4.
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/workload"
)

func main() {
	// 1. Pick a workload (Table 2 shape) and an accelerator (Table 4).
	shape, _ := workload.AttentionShapeByName("Bert-S")
	spec := arch.Edge()

	// 2. Pick a dataflow template (Table 5) and build its analysis tree
	//    with the default tiling factors.
	df := dataflows.FLATRGran(shape, spec)
	tree, err := df.Build(df.DefaultFactors())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("analysis tree:")
	fmt.Print(tree.String())

	// 3. Run the tree-based analysis (Sec 5).
	res, err := core.Evaluate(tree, df.Graph(), spec, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncycles:        %.4g (%.3f ms)\n", res.Cycles, res.Cycles/(spec.FreqGHz*1e9)*1e3)
	fmt.Printf("DRAM traffic:  %.4g words\n", res.DRAMTraffic())
	fmt.Printf("on-chip DM:    %.4g words\n", res.OnChipTraffic())
	fmt.Printf("energy:        %s\n", res.Energy.String())
	fmt.Printf("PE usage:      %d / %d\n", res.PEsUsed, res.TotalPEs)
	fmt.Printf("L1 footprint:  %d KB of %d KB\n",
		res.FootprintWords[1]*int64(spec.WordBytes)/1024, spec.Levels[1].CapacityBytes/1024)

	// 4. The per-tensor breakdown shows the fusion payoff: the score
	//    matrix S and the softmax intermediates never touch DRAM.
	fmt.Println("\nper-tensor DRAM traffic (words):")
	for _, tensor := range []string{"Q", "K", "V", "A", "S", "E", "L"} {
		dm := res.TensorDM[tensor]
		if dm == nil {
			continue
		}
		last := dm[len(dm)-1]
		fmt.Printf("  %-2s reads=%-10.4g writes=%.4g\n", tensor, last.Read, last.Update)
	}
}
