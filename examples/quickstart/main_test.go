package main

import "testing"

// TestQuickstartRuns executes the example end-to-end; it log.Fatals (and so
// kills the test process) if any stage of the pipeline regresses.
func TestQuickstartRuns(t *testing.T) {
	main()
}
