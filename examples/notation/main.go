// Tile-centric notation: write the Sec 4.2 example dataflow in the ASCII
// DSL, parse it into an analysis tree, evaluate it, and round-trip it back
// to text.
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/notation"
	"repro/internal/workload"
)

// The Sec 4.2 running example: A = Q·K, B = exp(A), C = B·V, with A fused
// into B at L1 (pipelined) and both fused into C at L2 (shared buffer):
//
//	level 0: T⁰₀ = {i0,l0,k}(A),  T¹₀ = {i0,l0}(B),  T²₀ = {i0,j0,l0}(C)
//	level 1: T⁰₁ = {i1,l1}(T⁰₀,T¹₀),  T¹₁ = {i1,j1,l1}(T²₀)
//	level 2: T⁰₂ = {i2,j2,l2}(T⁰₁,T¹₁)
//	binding: Pipe(T⁰₀,T¹₀), Shar(T⁰₁,T¹₁), Sp(i2), Sp(i1), Sp(i0)
const source = `
# Sec 4.2 example dataflow (i=128, j=128, l=128, k=64)
leaf T0_0 = op A { Sp(i:8), l:32, k:64 }
leaf T1_0 = op B { Sp(i:8), l:32 }
leaf T2_0 = op C { Sp(i:8), j:32, l:32 }
tile T0_1 @L1 = { Sp(i:4), l:2 } (T0_0, T1_0)
tile T1_1 @L1 = { Sp(i:4), j:4, l:2 } (T2_0)
tile T0_2 @L2 = { i:4, l:2 } (T0_1, T1_1)
bind Pipe(T0_0, T1_0)
bind Shar(T0_1, T1_1)
`

func main() {
	g := buildGraph(128, 128, 128, 64)
	tree, err := notation.Parse(source, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("parsed analysis tree:")
	fmt.Print(tree.String())

	spec := arch.Cloud()
	res, err := core.Evaluate(tree, g, spec, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncycles: %.4g   DRAM: %.4g words   energy: %.4g pJ\n",
		res.Cycles, res.DRAMTraffic(), res.EnergyPJ())
	fmt.Printf("tensor A DRAM traffic: %.4g (confined at T0_1)\n", res.TensorDM["A"][spec.DRAMLevel()].Total())
	fmt.Printf("tensor B DRAM traffic: %.4g (confined at T0_2)\n", res.TensorDM["B"][spec.DRAMLevel()].Total())

	fmt.Println("\nround-tripped notation:")
	fmt.Print(notation.Print(tree))
}

func buildGraph(i, j, l, k int) *workload.Graph {
	opA := &workload.Operator{
		Name: "A", Kind: workload.KindMAC,
		Dims: []workload.Dim{{Name: "i", Size: i}, {Name: "l", Size: l}, {Name: "k", Size: k}},
		Reads: []workload.Access{
			{Tensor: "Q", Index: []workload.Index{workload.I("i"), workload.I("k")}},
			{Tensor: "K", Index: []workload.Index{workload.I("k"), workload.I("l")}},
		},
		Write: workload.Access{Tensor: "A", Index: []workload.Index{workload.I("i"), workload.I("l")}},
	}
	opB := &workload.Operator{
		Name: "B", Kind: workload.KindExp,
		Dims: []workload.Dim{{Name: "i", Size: i}, {Name: "l", Size: l}},
		Reads: []workload.Access{
			{Tensor: "A", Index: []workload.Index{workload.I("i"), workload.I("l")}},
		},
		Write: workload.Access{Tensor: "B", Index: []workload.Index{workload.I("i"), workload.I("l")}},
	}
	opC := &workload.Operator{
		Name: "C", Kind: workload.KindMAC,
		Dims: []workload.Dim{{Name: "i", Size: i}, {Name: "j", Size: j}, {Name: "l", Size: l}},
		Reads: []workload.Access{
			{Tensor: "B", Index: []workload.Index{workload.I("i"), workload.I("l")}},
			{Tensor: "V", Index: []workload.Index{workload.I("l"), workload.I("j")}},
		},
		Write: workload.Access{Tensor: "C", Index: []workload.Index{workload.I("i"), workload.I("j")}},
	}
	return workload.MustGraph("sec42-example", workload.WordBytes, opA, opB, opC)
}
