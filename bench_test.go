// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (Sec 7), one testing.B target per artifact, per the
// per-experiment index in DESIGN.md. Each iteration runs the experiment in
// Quick configuration; run cmd/tileflow-exp for the full-size tables.
//
//	go test -bench=. -benchmem
package repro

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/experiments"
	"repro/internal/mapper"
	"repro/internal/workload"
)

var benchCfg = experiments.Config{Quick: true, Seed: 1}

func BenchmarkFig8aCycleValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8ab(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.CycleR2, "cycleR2")
	}
}

func BenchmarkFig8bEnergyValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8ab(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.EnergyMeanErr, "energyErr")
	}
}

func BenchmarkFig8cSimValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8cd(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TileFlowCycleErr, "tileflowErr")
		b.ReportMetric(r.GraphBasedErr, "graphbasedErr")
	}
}

func BenchmarkFig8dSimEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8cd(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TileFlowEnergyErr, "energyErr")
	}
}

func BenchmarkFig9aFactorTuning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9a(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9b3DTuningAttention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9b(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9c3DTuningConv(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9c(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10EdgeAttention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAttentionComparison(benchCfg, arch.Edge())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedups["TileFlow"], "tileflowSpeedup")
	}
}

func BenchmarkFig10dBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10dBreakdown(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11CloudAttention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAttentionComparison(benchCfg, arch.Cloud())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedups["TileFlow"], "tileflowSpeedup")
	}
}

func BenchmarkFig12ConvChains(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunConvComparison(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedups["TileFlow"], "tileflowSpeedup")
	}
}

func BenchmarkFig13EnergyBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14BandwidthSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6PESweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table6(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7Granularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table7(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable8GPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table8(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation runs the design-choice ablations (retention and
// binding) DESIGN.md calls out.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablation(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Retention[0].EnergyFactor, "smallTileOverestimation")
	}
}

// BenchmarkEvaluate measures the cost of one tree-based analysis — the
// model's inner loop (the paper evaluates ~200 tiling samples in ~12 s on
// a Xeon; a single evaluation here is microseconds).
func BenchmarkEvaluate(b *testing.B) {
	shape, _ := workload.AttentionShapeByName("Bert-S")
	spec := arch.Edge()
	df := dataflows.FLATRGran(shape, spec)
	root, err := df.Build(df.DefaultFactors())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Evaluate(root, df.Graph(), spec, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTileSearch measures the MCTS mapper's throughput.
func BenchmarkTileSearch(b *testing.B) {
	shape, _ := workload.AttentionShapeByName("ViT/16-B")
	spec := arch.Edge()
	for i := 0; i < b.N; i++ {
		df := dataflows.TileFlowAttention(shape, spec)
		s := &mapper.TileSearch{Dataflow: df, Spec: spec, Rounds: 100, Seed: int64(i)}
		if best, _ := s.Run(); best == nil {
			b.Fatal("no mapping found")
		}
	}
}

// BenchmarkMapperThroughput reports the mapper's end-to-end evaluation
// throughput (evals/sec): every MCTS round costs one tree evaluation, plus
// one for the default-factors seed point, so a run of R rounds performs
// R+1 evaluations. With structure-stable templates the mapper compiles the
// tree once and re-binds tilings through core.Program per rollout.
func BenchmarkMapperThroughput(b *testing.B) {
	shape, _ := workload.AttentionShapeByName("ViT/16-B")
	spec := arch.Edge()
	const rounds = 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		df := dataflows.TileFlowAttention(shape, spec)
		s := &mapper.TileSearch{Dataflow: df, Spec: spec, Rounds: rounds, Seed: int64(i)}
		if best, _ := s.Run(); best == nil {
			b.Fatal("no mapping found")
		}
	}
	b.ReportMetric(float64(b.N)*(rounds+1)/b.Elapsed().Seconds(), "evals/sec")
}
