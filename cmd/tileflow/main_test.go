package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/notation"
	"repro/internal/serve"
	"repro/internal/workload"
	"repro/internal/yamlfe"
)

const mainMatmulSrc = `leaf mm = op mm { Sp(m:2), m:4, n:8, k:8 }
tile root @L2 = { m:1 } (mm)
`

// writeConfig renders a small matmul design point on Edge to a YAML
// config file and returns its path plus the point it encodes.
func writeConfig(t *testing.T) (string, *arch.Spec, *workload.Graph, *core.Node) {
	t.Helper()
	spec := arch.Edge()
	g := workload.Matmul(8, 8, 8)
	root, err := notation.Parse(mainMatmulSrc, g)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "case.yaml")
	if err := os.WriteFile(path, []byte(yamlfe.Render(spec, g, root)), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, spec, g, root
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	defer func() { os.Stdout = old }()
	fn()
	w.Close()
	os.Stdout = old
	return <-done
}

// TestRunMainConfig: `tileflow -config case.yaml -json` evaluates the
// config and prints the same EvaluateResponse the server would, with the
// result matching a direct core.Evaluate of the encoded point.
func TestRunMainConfig(t *testing.T) {
	path, spec, g, root := writeConfig(t)
	var code int
	out := captureStdout(t, func() { code = runMain([]string{"-config", path, "-json"}) })
	if code != exitOK {
		t.Fatalf("exit %d, want %d", code, exitOK)
	}
	var resp serve.EvaluateResponse
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatalf("bad -json output %q: %v", out, err)
	}
	if resp.Dataflow != "config" || resp.Result == nil {
		t.Fatalf("response = %+v", resp)
	}
	res, err := core.Evaluate(root, g, spec, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(serve.NewResultJSON(res, spec))
	got, _ := json.Marshal(resp.Result)
	if string(got) != string(want) {
		t.Errorf("config result differs from direct evaluation:\n got %s\nwant %s", got, want)
	}
}

// TestRunMainExclusion pins the CLI side of the unified input-selection
// check: mixing -config with the other design-point flags is exit 2, and
// the check fires before any file is read.
func TestRunMainExclusion(t *testing.T) {
	cases := [][]string{
		{"-config", "nonexistent.yaml", "-dataflow", "Layerwise"},
		{"-config", "nonexistent.yaml", "-notation-file", "x.tf"},
		{"-config", "nonexistent.yaml", "-arch", "edge"},
		{"-config", "nonexistent.yaml", "-workload", "attention:Bert-S"},
		{"-config", "nonexistent.yaml", "-tune", "5"},
		{"-notation-file", "x.tf", "-dataflow", "Layerwise"},
		{"-notation-file", "x.tf", "-tune", "5"},
	}
	for _, args := range cases {
		if code := runMain(args); code != exitInvalid {
			t.Errorf("runMain(%v) = %d, want %d", args, code, exitInvalid)
		}
	}
}

// TestRunMainConfigInvalid: a config that fails to load is a caller
// mistake, exit 2, never a crash.
func TestRunMainConfigInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.yaml")
	if err := os.WriteFile(path, []byte("just a scalar"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runMain([]string{"-config", path}); code != exitInvalid {
		t.Errorf("exit %d, want %d", code, exitInvalid)
	}
	if code := runMain([]string{"-config", filepath.Join(t.TempDir(), "missing.yaml")}); code != exitInvalid {
		t.Errorf("missing file: exit %d, want %d", code, exitInvalid)
	}
}

// TestRunVetConfig covers `tileflow vet -config`: 0 for a clean config, 2
// when the config has errors (the diagnostics are the report), and 2 for
// flag mixes rejected by the shared input-selection check.
func TestRunVetConfig(t *testing.T) {
	path, _, _, _ := writeConfig(t)
	var code int
	out := captureStdout(t, func() { code = runVet([]string{"-config", path, "-json"}) })
	// The toy mapping draws analyzer warnings (underused PEs) but no
	// errors: valid, exit 1.
	if code != 1 {
		t.Errorf("clean config: exit %d, want 1 (warnings only)", code)
	}
	var clean struct {
		Valid  bool `json:"valid"`
		Errors int  `json:"errors"`
	}
	if err := json.Unmarshal([]byte(out), &clean); err != nil {
		t.Fatalf("vet -json output %q: %v", out, err)
	}
	if !clean.Valid || clean.Errors != 0 {
		t.Errorf("clean config vets %+v", clean)
	}

	bad := filepath.Join(t.TempDir(), "bad.yaml")
	if err := os.WriteFile(bad, []byte("just a scalar"), 0o644); err != nil {
		t.Fatal(err)
	}
	out = captureStdout(t, func() { code = runVet([]string{"-config", bad, "-json"}) })
	if code != 2 {
		t.Errorf("broken config: exit %d, want 2", code)
	}
	var rep struct {
		Valid       bool `json:"valid"`
		Diagnostics []struct {
			Code string `json:"code"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("vet -json output %q: %v", out, err)
	}
	if rep.Valid || len(rep.Diagnostics) == 0 {
		t.Errorf("broken config vets %+v", rep)
	}

	if code := runVet([]string{"-config", path, "-arch", "edge"}); code != 2 {
		t.Errorf("config+arch: exit %d, want 2", code)
	}
	if code := runVet([]string{"-config", path, "-dataflow", "Layerwise"}); code != 2 {
		t.Errorf("config+dataflow: exit %d, want 2", code)
	}
	if code := runVet(nil); code != 2 {
		t.Errorf("no input: exit %d, want 2", code)
	}
}
