// Command tileflow evaluates one fusion dataflow for one workload on one
// accelerator with TileFlow's tree-based analysis, optionally tuning its
// tiling factors with the MCTS mapper first.
//
// Examples:
//
//	tileflow -arch edge -workload attention:Bert-S -dataflow FLAT-RGran -tune 200
//	tileflow -arch cloud -workload conv:CC1 -dataflow TileFlow -tree
//	tileflow -arch cloud -workload attention:T5 -dataflow Layerwise
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/mapper"
	"repro/internal/notation"
	"repro/internal/serve"
	"repro/internal/workload"
)

// stopProfile finalizes any active profiler. fatalIf calls it before
// os.Exit so a profile is flushed even on error paths.
var stopProfile = func() {}

func main() {
	archName := flag.String("arch", "edge", "accelerator: edge, cloud, validation, a100")
	archFile := flag.String("arch-file", "", "load a custom accelerator spec from a file (see arch.ParseSpec format)")
	workloadName := flag.String("workload", "attention:Bert-S", "workload: attention:<Table2 name>, conv:<Table3 name>")
	dataflowName := flag.String("dataflow", "FLAT-RGran", "dataflow: Layerwise, Uni-pipe, FLAT-{M,B,H,R}Gran, Chimera, TileFlow, Fused-Layer, ISOS")
	tune := flag.Int("tune", 0, "MCTS rounds to tune tiling factors (0 = defaults)")
	seed := flag.Int64("seed", 1, "search seed")
	printTree := flag.Bool("tree", false, "print the analysis tree")
	printNotation := flag.Bool("notation", false, "print the tile-centric notation")
	notationFile := flag.String("notation-file", "", "evaluate a dataflow written in the tile-centric DSL instead of a named template")
	explain := flag.Bool("explain", false, "print a per-tile profile (fills, updates, latency bound)")
	skipCapacity := flag.Bool("skip-capacity", false, "ignore buffer capacity limits")
	jsonOut := flag.Bool("json", false, "print the result as JSON (the evaluation server's codec)")
	profile := flag.String("profile", "", "profile the tune/evaluate path: cpu=<file> writes a pprof CPU profile")
	flag.Parse()

	fatalIf(startProfile(*profile))
	defer stopProfile()

	var spec *arch.Spec
	var err error
	if *archFile != "" {
		src, rerr := os.ReadFile(*archFile)
		fatalIf(rerr)
		spec, err = arch.ParseSpec(string(src))
	} else {
		spec, err = serve.PickArch(*archName)
	}
	fatalIf(err)

	opts := core.Options{SkipCapacityCheck: *skipCapacity}
	var root *core.Node
	var g *workload.Graph
	var dfName string
	var tunedFactors map[string]int
	if *notationFile != "" {
		src, err := os.ReadFile(*notationFile)
		fatalIf(err)
		g, err = serve.PickGraph(*workloadName)
		fatalIf(err)
		root, err = notation.Parse(string(src), g)
		fatalIf(err)
		dfName = *notationFile
	} else {
		df, err := serve.PickDataflow(*dataflowName, *workloadName, spec)
		fatalIf(err)
		g = df.Graph()
		dfName = df.Name()
		factors := df.DefaultFactors()
		if *tune > 0 {
			ev := mapper.Tune(df, spec, opts, *tune, *seed)
			if ev == nil {
				fatalIf(fmt.Errorf("no valid mapping found for %s", df.Name()))
			}
			factors = ev.Factors
			tunedFactors = factors
			if !*jsonOut {
				fmt.Printf("tuned factors: %v\n", factors)
			}
		}
		root, err = df.Build(factors)
		fatalIf(err)
	}
	if *printTree {
		fmt.Print(root.String())
	}
	if *printNotation {
		fmt.Print(notation.Print(root))
	}
	if *explain {
		reports, err := core.Explain(root, g, spec, opts)
		fatalIf(err)
		fmt.Print(core.RenderReports(reports))
	}
	res, err := core.Evaluate(root, g, spec, opts)
	fatalIf(err)
	stopProfile()

	if *jsonOut {
		// The exact EvaluateResponse the server returns for this design
		// point, so CLI and server outputs are byte-comparable.
		resp := &serve.EvaluateResponse{
			Workload:     g.Name,
			Dataflow:     dfName,
			Arch:         spec.Name,
			TunedFactors: tunedFactors,
			Result:       serve.NewResultJSON(res, spec),
		}
		fatalIf(json.NewEncoder(os.Stdout).Encode(resp))
		return
	}

	fmt.Printf("workload:       %s\n", g.Name)
	fmt.Printf("dataflow:       %s on %s\n", dfName, spec.Name)
	fmt.Printf("cycles:         %.4g (%.3f ms @ %.2f GHz)\n", res.Cycles, res.Cycles/(spec.FreqGHz*1e9)*1e3, spec.FreqGHz)
	fmt.Printf("compute-bound:  %.4g cycles\n", res.ComputeCycles)
	fmt.Printf("DRAM traffic:   %.4g words\n", res.DRAMTraffic())
	fmt.Printf("on-chip DM:     %.4g words\n", res.OnChipTraffic())
	for i, dm := range res.DM {
		fmt.Printf("  %-5s fill=%.4g read=%.4g update=%.4g\n", spec.Levels[i].Name, dm.Fill, dm.Read, dm.Update)
	}
	fmt.Printf("energy:         %.4g pJ (%s)\n", res.EnergyPJ(), res.Energy.String())
	fmt.Printf("PEs used:       %d / %d, sub-core utilization %.1f%%\n", res.PEsUsed, res.TotalPEs, 100*res.Utilization)
	for i, f := range res.FootprintWords {
		if i == spec.DRAMLevel() {
			continue
		}
		fmt.Printf("footprint %-5s %d KB / %d KB\n", spec.Levels[i].Name, f*int64(spec.WordBytes)/1024, spec.Levels[i].CapacityBytes/1024)
	}
}

// startProfile parses the -profile flag ("cpu=<file>") and starts the
// requested profiler around the tune/evaluate path.
func startProfile(spec string) error {
	if spec == "" {
		return nil
	}
	kind, file, ok := strings.Cut(spec, "=")
	if !ok || file == "" {
		return fmt.Errorf("bad -profile %q: want cpu=<file>", spec)
	}
	switch kind {
	case "cpu":
		f, err := os.Create(file)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
			stopProfile = func() {}
		}
		return nil
	default:
		return fmt.Errorf("bad -profile kind %q: want cpu=<file>", kind)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tileflow:", err)
		stopProfile()
		os.Exit(1)
	}
}
