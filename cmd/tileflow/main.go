// Command tileflow evaluates one fusion dataflow for one workload on one
// accelerator with TileFlow's tree-based analysis, optionally tuning its
// tiling factors with the MCTS mapper first.
//
// Examples:
//
//	tileflow -arch edge -workload attention:Bert-S -dataflow FLAT-RGran -tune 200
//	tileflow -arch cloud -workload conv:CC1 -dataflow TileFlow -tree
//	tileflow -arch cloud -workload attention:T5 -dataflow Layerwise
//	tileflow vet -arch edge -workload attention:Bert-S -notation-file map.tf
//
// Exit codes mirror the evaluation service's status taxonomy: 0 success,
// 1 internal fault (500), 2 invalid request or mapping (400), 3 infeasible
// design point (422), 4 deadline exceeded (504), 5 canceled (499). The vet
// subcommand instead exits 0 clean, 1 warnings only, 2 any error.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/arch"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/mapper"
	"repro/internal/notation"
	"repro/internal/serve"
	"repro/internal/workload"
)

// stopProfile finalizes any active profiler. fatalIf calls it before
// os.Exit so a profile is flushed even on error paths.
var stopProfile = func() {}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "vet" {
		os.Exit(runVet(os.Args[2:]))
	}
	archName := flag.String("arch", "edge", "accelerator: edge, cloud, validation, a100")
	archFile := flag.String("arch-file", "", "load a custom accelerator spec from a file (see arch.ParseSpec format)")
	workloadName := flag.String("workload", "attention:Bert-S", "workload: attention:<Table2 name>, conv:<Table3 name>")
	dataflowName := flag.String("dataflow", "FLAT-RGran", "dataflow: Layerwise, Uni-pipe, FLAT-{M,B,H,R}Gran, Chimera, TileFlow, Fused-Layer, ISOS")
	tune := flag.Int("tune", 0, "MCTS rounds to tune tiling factors (0 = defaults)")
	seed := flag.Int64("seed", 1, "search seed")
	printTree := flag.Bool("tree", false, "print the analysis tree")
	printNotation := flag.Bool("notation", false, "print the tile-centric notation")
	notationFile := flag.String("notation-file", "", "evaluate a dataflow written in the tile-centric DSL instead of a named template")
	explain := flag.Bool("explain", false, "print a per-tile profile (fills, updates, latency bound)")
	skipCapacity := flag.Bool("skip-capacity", false, "ignore buffer capacity limits")
	jsonOut := flag.Bool("json", false, "print the result as JSON (the evaluation server's codec)")
	profile := flag.String("profile", "", "profile the tune/evaluate path: cpu=<file> writes a pprof CPU profile, mem=<file> a heap profile at exit")
	flag.Parse()

	fatalIf(startProfile(*profile))
	defer stopProfile()

	spec, err := pickSpec(*archFile, *archName)
	fatalIf(err)

	opts := core.Options{SkipCapacityCheck: *skipCapacity}
	var root *core.Node
	var g *workload.Graph
	var dfName string
	var tunedFactors map[string]int
	if *notationFile != "" {
		src, err := os.ReadFile(*notationFile)
		fatalIf(usageErr(err))
		g, err = serve.PickGraph(*workloadName)
		fatalIf(usageErr(err))
		root, err = notation.Parse(string(src), g)
		fatalIf(usageErr(err))
		dfName = *notationFile
	} else {
		df, err := serve.PickDataflow(*dataflowName, *workloadName, spec)
		fatalIf(usageErr(err))
		g = df.Graph()
		dfName = df.Name()
		factors := df.DefaultFactors()
		if *tune > 0 {
			ev := mapper.Tune(df, spec, opts, *tune, *seed)
			if ev == nil {
				fatalIf(fmt.Errorf("no valid mapping found for %s", df.Name()))
			}
			factors = ev.Factors
			tunedFactors = factors
			if !*jsonOut {
				fmt.Printf("tuned factors: %v\n", factors)
			}
		}
		root, err = df.Build(factors)
		fatalIf(err)
	}
	if *printTree {
		fmt.Print(root.String())
	}
	if *printNotation {
		fmt.Print(notation.Print(root))
	}
	if *explain {
		reports, err := core.Explain(root, g, spec, opts)
		fatalIf(err)
		fmt.Print(core.RenderReports(reports))
	}
	res, err := core.Evaluate(root, g, spec, opts)
	fatalIf(err)
	stopProfile()

	if *jsonOut {
		// The exact EvaluateResponse the server returns for this design
		// point, so CLI and server outputs are byte-comparable.
		resp := &serve.EvaluateResponse{
			Workload:     g.Name,
			Dataflow:     dfName,
			Arch:         spec.Name,
			TunedFactors: tunedFactors,
			Result:       serve.NewResultJSON(res, spec),
		}
		fatalIf(json.NewEncoder(os.Stdout).Encode(resp))
		return
	}

	fmt.Printf("workload:       %s\n", g.Name)
	fmt.Printf("dataflow:       %s on %s\n", dfName, spec.Name)
	fmt.Printf("cycles:         %.4g (%.3f ms @ %.2f GHz)\n", res.Cycles, res.Cycles/(spec.FreqGHz*1e9)*1e3, spec.FreqGHz)
	fmt.Printf("compute-bound:  %.4g cycles\n", res.ComputeCycles)
	fmt.Printf("DRAM traffic:   %.4g words\n", res.DRAMTraffic())
	fmt.Printf("on-chip DM:     %.4g words\n", res.OnChipTraffic())
	for i, dm := range res.DM {
		fmt.Printf("  %-5s fill=%.4g read=%.4g update=%.4g\n", spec.Levels[i].Name, dm.Fill, dm.Read, dm.Update)
	}
	fmt.Printf("energy:         %.4g pJ (%s)\n", res.EnergyPJ(), res.Energy.String())
	fmt.Printf("PEs used:       %d / %d, sub-core utilization %.1f%%\n", res.PEsUsed, res.TotalPEs, 100*res.Utilization)
	for i, f := range res.FootprintWords {
		if i == spec.DRAMLevel() {
			continue
		}
		fmt.Printf("footprint %-5s %d KB / %d KB\n", spec.Levels[i].Name, f*int64(spec.WordBytes)/1024, spec.Levels[i].CapacityBytes/1024)
	}
}

// startProfile parses the -profile flag ("cpu=<file>" or "mem=<file>")
// and starts the requested profiler around the tune/evaluate path. The
// heap profile is written when the run finishes, after a GC, so it shows
// live steady-state allocations rather than transient garbage.
func startProfile(spec string) error {
	if spec == "" {
		return nil
	}
	kind, file, ok := strings.Cut(spec, "=")
	if !ok || file == "" {
		return fmt.Errorf("bad -profile %q: want cpu=<file> or mem=<file>", spec)
	}
	switch kind {
	case "cpu":
		f, err := os.Create(file)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
			stopProfile = func() {}
		}
		return nil
	case "mem":
		f, err := os.Create(file)
		if err != nil {
			return err
		}
		stopProfile = func() {
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "tileflow: write heap profile: %v\n", err)
			}
			f.Close()
			stopProfile = func() {}
		}
		return nil
	default:
		return fmt.Errorf("bad -profile kind %q: want cpu=<file> or mem=<file>", kind)
	}
}

// pickSpec resolves the accelerator from -arch-file or -arch. Failures are
// caller mistakes (exit 2), the CLI analogue of the service's 400.
func pickSpec(archFile, archName string) (*arch.Spec, error) {
	if archFile != "" {
		src, err := os.ReadFile(archFile)
		if err != nil {
			return nil, usageErr(err)
		}
		spec, err := arch.ParseSpec(string(src))
		return spec, usageErr(err)
	}
	spec, err := serve.PickArch(archName)
	return spec, usageErr(err)
}

// usageError marks a caller mistake — bad flags, unknown catalog names,
// unreadable input files — so exitCodeFor maps it to 2 like the service
// maps resolve failures to 400.
type usageError struct{ err error }

func (e *usageError) Error() string { return e.err.Error() }
func (e *usageError) Unwrap() error { return e.err }

func usageErr(err error) error {
	if err == nil {
		return nil
	}
	return &usageError{err: err}
}

// Process exit codes, one per service status class.
const (
	exitOK         = 0 // 200
	exitInternal   = 1 // 500
	exitInvalid    = 2 // 400: bad request or structurally invalid mapping
	exitInfeasible = 3 // 422: over capacity, over the PE budget
	exitTimeout    = 4 // 504
	exitCanceled   = 5 // 499
)

// exitCodeFor classifies an error exactly like the service's statusFor, so
// scripts can distinguish "fix your mapping" from "shrink your design
// point" from "the tool broke" without parsing stderr.
func exitCodeFor(err error) int {
	var ue *usageError
	switch {
	case err == nil:
		return exitOK
	case errors.As(err, &ue):
		return exitInvalid
	case errors.Is(err, context.DeadlineExceeded):
		return exitTimeout
	case errors.Is(err, context.Canceled):
		return exitCanceled
	case errors.Is(err, core.ErrInvalidMapping):
		return exitInvalid
	case errors.Is(err, core.ErrInfeasible):
		return exitInfeasible
	}
	return exitInternal
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tileflow:", err)
		stopProfile()
		os.Exit(exitCodeFor(err))
	}
}

// runVet is the static analyzer entry point: it checks a mapping without
// evaluating it and exits 0 clean, 1 warnings only, 2 any error.
// printCodes dumps the diagnostic code registry — the source of truth for
// the table in DESIGN.md. With -json it emits the registry entries as JSON.
func printCodes(asJSON bool) int {
	infos := diag.Codes()
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(infos); err != nil {
			fmt.Fprintln(os.Stderr, "tileflow vet:", err)
			return 2
		}
		return 0
	}
	for _, info := range infos {
		sev := "error"
		if info.Severity == diag.Warning {
			sev = "warning"
		}
		fmt.Printf("%-14s %-8s %s", info.Code, sev, info.Title)
		if info.Hint != "" {
			fmt.Printf(" — %s", info.Hint)
		}
		fmt.Println()
	}
	return 0
}

func runVet(args []string) int {
	fs := flag.NewFlagSet("tileflow vet", flag.ExitOnError)
	archName := fs.String("arch", "edge", "accelerator: edge, cloud, validation, a100")
	archFile := fs.String("arch-file", "", "load a custom accelerator spec from a file")
	workloadName := fs.String("workload", "attention:Bert-S", "workload: attention:<Table2 name>, conv:<Table3 name>")
	dataflowName := fs.String("dataflow", "", "vet a named dataflow template, built with its default factors")
	notationFile := fs.String("notation-file", "", "vet a mapping written in the tile-centric DSL")
	skipCapacity := fs.Bool("skip-capacity", false, "ignore buffer capacity limits")
	skipPE := fs.Bool("skip-pe", false, "ignore PE and instance budgets")
	jsonOut := fs.Bool("json", false, "print the vet report as JSON (identical to POST /v1/vet)")
	codes := fs.Bool("codes", false, "print the diagnostic code registry and exit")
	fs.Parse(args)

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "tileflow vet:", err)
		return 2
	}
	if *codes {
		return printCodes(*jsonOut)
	}
	spec, err := pickSpec(*archFile, *archName)
	if err != nil {
		return fail(err)
	}
	opts := core.Options{SkipCapacityCheck: *skipCapacity, SkipPECheck: *skipPE}

	var diags diag.List
	switch {
	case *notationFile != "":
		src, err := os.ReadFile(*notationFile)
		if err != nil {
			return fail(err)
		}
		g, err := serve.PickGraph(*workloadName)
		if err != nil {
			return fail(err)
		}
		diags = check.AnalyzeSource(string(src), g, spec, opts)
	case *dataflowName != "":
		df, err := serve.PickDataflow(*dataflowName, *workloadName, spec)
		if err != nil {
			return fail(err)
		}
		root, err := df.Build(df.DefaultFactors())
		if err != nil {
			return fail(err)
		}
		diags = check.Analyze(root, nil, df.Graph(), spec, opts)
	default:
		return fail(fmt.Errorf("one of -notation-file or -dataflow is required"))
	}

	report := check.NewReport(diags)
	if *jsonOut {
		if err := report.WriteJSON(os.Stdout); err != nil {
			return fail(err)
		}
	} else {
		fmt.Print(diags.String())
		fmt.Printf("vet: %d error(s), %d warning(s)\n", report.Errors, report.Warnings)
	}
	return report.ExitCode()
}
