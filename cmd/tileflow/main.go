// Command tileflow evaluates one fusion dataflow for one workload on one
// accelerator with TileFlow's tree-based analysis, optionally tuning its
// tiling factors with the MCTS mapper first.
//
// Examples:
//
//	tileflow -arch edge -workload attention:Bert-S -dataflow FLAT-RGran -tune 200
//	tileflow -arch cloud -workload conv:CC1 -dataflow TileFlow -tree
//	tileflow -arch cloud -workload attention:T5 -dataflow Layerwise
//	tileflow vet -arch edge -workload attention:Bert-S -notation-file map.tf
//
// Exit codes mirror the evaluation service's status taxonomy: 0 success,
// 1 internal fault (500), 2 invalid request or mapping (400), 3 infeasible
// design point (422), 4 deadline exceeded (504), 5 canceled (499). The vet
// subcommand instead exits 0 clean, 1 warnings only, 2 any error.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/arch"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/mapper"
	"repro/internal/notation"
	"repro/internal/serve"
	"repro/internal/workload"
	"repro/internal/yamlfe"
)

// stopProfile finalizes any active profiler. runMain calls it before
// returning an error exit code so a profile is flushed even on error
// paths.
var stopProfile = func() {}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "vet" {
		os.Exit(runVet(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "analyze" {
		os.Exit(runAnalyze(os.Args[2:]))
	}
	os.Exit(runMain(os.Args[1:]))
}

// flagShape mirrors the explicitly-set design-point flags onto an
// EvaluateRequest shape, so serve.SelectInput enforces the same input
// mutual exclusion on the CLI that the HTTP codec enforces on requests.
// Field values are placeholders; only presence matters here.
func flagShape(fs *flag.FlagSet) *serve.EvaluateRequest {
	req := &serve.EvaluateRequest{}
	fs.Visit(func(fl *flag.Flag) {
		switch fl.Name {
		case "config":
			req.ConfigYAML = "set"
		case "notation-file":
			req.Notation = "set"
		case "dataflow":
			req.Dataflow = "set"
		case "arch":
			req.Arch = "set"
		case "arch-file":
			req.ArchSpec = "set"
		case "workload":
			req.Workload = "set"
		case "tune":
			req.Tune = 1
		}
	})
	return req
}

// runMain is the evaluate entry point behind main, returning the process
// exit code instead of exiting so tests can drive the whole
// flag-to-exit-code path in-process.
func runMain(args []string) int {
	fs := flag.NewFlagSet("tileflow", flag.ExitOnError)
	archName := fs.String("arch", "edge", "accelerator: edge, cloud, validation, a100")
	archFile := fs.String("arch-file", "", "load a custom accelerator spec from a file (see arch.ParseSpec format)")
	workloadName := fs.String("workload", "attention:Bert-S", "workload: attention:<Table2 name>, conv:<Table3 name>")
	dataflowName := fs.String("dataflow", "FLAT-RGran", "dataflow: Layerwise, Uni-pipe, FLAT-{M,B,H,R}Gran, Chimera, TileFlow, Fused-Layer, ISOS")
	tune := fs.Int("tune", 0, "MCTS rounds to tune tiling factors (0 = defaults)")
	seed := fs.Int64("seed", 1, "search seed")
	printTree := fs.Bool("tree", false, "print the analysis tree")
	printNotation := fs.Bool("notation", false, "print the tile-centric notation")
	notationFile := fs.String("notation-file", "", "evaluate a dataflow written in the tile-centric DSL instead of a named template")
	configFile := fs.String("config", "", "evaluate a Timeloop-style YAML config file (architecture + problem + mapping; excludes the other design-point flags)")
	explain := fs.Bool("explain", false, "print a per-tile profile (fills, updates, latency bound)")
	skipCapacity := fs.Bool("skip-capacity", false, "ignore buffer capacity limits")
	jsonOut := fs.Bool("json", false, "print the result as JSON (the evaluation server's codec)")
	profile := fs.String("profile", "", "profile the tune/evaluate path: cpu=<file> writes a pprof CPU profile, mem=<file> a heap profile at exit")
	fs.Parse(args)

	if err := evalMain(fs, evalFlags{
		arch: *archName, archFile: *archFile, workload: *workloadName,
		dataflow: *dataflowName, tune: *tune, seed: *seed,
		tree: *printTree, notation: *printNotation,
		notationFile: *notationFile, config: *configFile,
		explain: *explain, skipCapacity: *skipCapacity,
		jsonOut: *jsonOut, profile: *profile,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "tileflow:", err)
		stopProfile()
		return exitCodeFor(err)
	}
	return exitOK
}

// evalFlags carries the parsed evaluate-path flags into evalMain.
type evalFlags struct {
	arch, archFile, workload, dataflow string
	notationFile, config, profile      string
	tune                               int
	seed                               int64
	tree, notation, explain            bool
	skipCapacity, jsonOut              bool
}

func evalMain(fs *flag.FlagSet, f evalFlags) error {
	// One input-selection rule across CLI and service: a config file is
	// self-contained, notation excludes templates and tuning. Flags left
	// at their defaults select the template form.
	shape := flagShape(fs)
	if shape.ConfigYAML == "" && shape.Notation == "" && shape.Dataflow == "" {
		shape.Dataflow = "set"
	}
	if _, err := serve.SelectInput(shape); err != nil {
		return usageErr(err)
	}

	if err := startProfile(f.profile); err != nil {
		return err
	}
	defer stopProfile()

	opts := core.Options{SkipCapacityCheck: f.skipCapacity}
	var spec *arch.Spec
	var root *core.Node
	var g *workload.Graph
	var dfName string
	var tunedFactors map[string]int
	var err error
	if f.config == "" {
		if spec, err = pickSpec(f.archFile, f.arch); err != nil {
			return err
		}
	}
	switch {
	case f.config != "":
		src, err := os.ReadFile(f.config)
		if err != nil {
			return usageErr(err)
		}
		cfg, err := yamlfe.LoadStrict(string(src))
		if err != nil {
			return usageErr(err)
		}
		spec, g, root = cfg.Spec, cfg.Graph, cfg.Root
		// The name the server reports for this input form, keeping the
		// -json output byte-comparable to POST /v1/evaluate.
		dfName = "config"
	case f.notationFile != "":
		src, err := os.ReadFile(f.notationFile)
		if err != nil {
			return usageErr(err)
		}
		if g, err = serve.PickGraph(f.workload); err != nil {
			return usageErr(err)
		}
		if root, err = notation.Parse(string(src), g); err != nil {
			return usageErr(err)
		}
		dfName = f.notationFile
	default:
		df, err := serve.PickDataflow(f.dataflow, f.workload, spec)
		if err != nil {
			return usageErr(err)
		}
		g = df.Graph()
		dfName = df.Name()
		factors := df.DefaultFactors()
		if f.tune > 0 {
			ev := mapper.Tune(df, spec, opts, f.tune, f.seed)
			if ev == nil {
				return fmt.Errorf("no valid mapping found for %s", df.Name())
			}
			factors = ev.Factors
			tunedFactors = factors
			if !f.jsonOut {
				fmt.Printf("tuned factors: %v\n", factors)
			}
		}
		if root, err = df.Build(factors); err != nil {
			return err
		}
	}
	if f.tree {
		fmt.Print(root.String())
	}
	if f.notation {
		fmt.Print(notation.Print(root))
	}
	if f.explain {
		reports, err := core.Explain(root, g, spec, opts)
		if err != nil {
			return err
		}
		fmt.Print(core.RenderReports(reports))
	}
	res, err := core.Evaluate(root, g, spec, opts)
	if err != nil {
		return err
	}
	stopProfile()

	if f.jsonOut {
		// The exact EvaluateResponse the server returns for this design
		// point, so CLI and server outputs are byte-comparable.
		resp := &serve.EvaluateResponse{
			Workload:     g.Name,
			Dataflow:     dfName,
			Arch:         spec.Name,
			TunedFactors: tunedFactors,
			Result:       serve.NewResultJSON(res, spec),
		}
		return json.NewEncoder(os.Stdout).Encode(resp)
	}

	fmt.Printf("workload:       %s\n", g.Name)
	fmt.Printf("dataflow:       %s on %s\n", dfName, spec.Name)
	fmt.Printf("cycles:         %.4g (%.3f ms @ %.2f GHz)\n", res.Cycles, res.Cycles/(spec.FreqGHz*1e9)*1e3, spec.FreqGHz)
	fmt.Printf("compute-bound:  %.4g cycles\n", res.ComputeCycles)
	fmt.Printf("DRAM traffic:   %.4g words\n", res.DRAMTraffic())
	fmt.Printf("on-chip DM:     %.4g words\n", res.OnChipTraffic())
	for i, dm := range res.DM {
		fmt.Printf("  %-5s fill=%.4g read=%.4g update=%.4g\n", spec.Levels[i].Name, dm.Fill, dm.Read, dm.Update)
	}
	fmt.Printf("energy:         %.4g pJ (%s)\n", res.EnergyPJ(), res.Energy.String())
	fmt.Printf("PEs used:       %d / %d, sub-core utilization %.1f%%\n", res.PEsUsed, res.TotalPEs, 100*res.Utilization)
	for i, fp := range res.FootprintWords {
		if i == spec.DRAMLevel() {
			continue
		}
		fmt.Printf("footprint %-5s %d KB / %d KB\n", spec.Levels[i].Name, fp*int64(spec.WordBytes)/1024, spec.Levels[i].CapacityBytes/1024)
	}
	return nil
}

// startProfile parses the -profile flag ("cpu=<file>" or "mem=<file>")
// and starts the requested profiler around the tune/evaluate path. The
// heap profile is written when the run finishes, after a GC, so it shows
// live steady-state allocations rather than transient garbage.
func startProfile(spec string) error {
	if spec == "" {
		return nil
	}
	kind, file, ok := strings.Cut(spec, "=")
	if !ok || file == "" {
		return fmt.Errorf("bad -profile %q: want cpu=<file> or mem=<file>", spec)
	}
	switch kind {
	case "cpu":
		f, err := os.Create(file)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
			stopProfile = func() {}
		}
		return nil
	case "mem":
		f, err := os.Create(file)
		if err != nil {
			return err
		}
		stopProfile = func() {
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "tileflow: write heap profile: %v\n", err)
			}
			f.Close()
			stopProfile = func() {}
		}
		return nil
	default:
		return fmt.Errorf("bad -profile kind %q: want cpu=<file> or mem=<file>", kind)
	}
}

// pickSpec resolves the accelerator from -arch-file or -arch. Failures are
// caller mistakes (exit 2), the CLI analogue of the service's 400.
func pickSpec(archFile, archName string) (*arch.Spec, error) {
	if archFile != "" {
		src, err := os.ReadFile(archFile)
		if err != nil {
			return nil, usageErr(err)
		}
		spec, err := arch.ParseSpec(string(src))
		return spec, usageErr(err)
	}
	spec, err := serve.PickArch(archName)
	return spec, usageErr(err)
}

// usageError marks a caller mistake — bad flags, unknown catalog names,
// unreadable input files — so exitCodeFor maps it to 2 like the service
// maps resolve failures to 400.
type usageError struct{ err error }

func (e *usageError) Error() string { return e.err.Error() }
func (e *usageError) Unwrap() error { return e.err }

func usageErr(err error) error {
	if err == nil {
		return nil
	}
	return &usageError{err: err}
}

// Process exit codes, one per service status class.
const (
	exitOK         = 0 // 200
	exitInternal   = 1 // 500
	exitInvalid    = 2 // 400: bad request or structurally invalid mapping
	exitInfeasible = 3 // 422: over capacity, over the PE budget
	exitTimeout    = 4 // 504
	exitCanceled   = 5 // 499
)

// exitCodeFor classifies an error exactly like the service's statusFor, so
// scripts can distinguish "fix your mapping" from "shrink your design
// point" from "the tool broke" without parsing stderr.
func exitCodeFor(err error) int {
	var ue *usageError
	switch {
	case err == nil:
		return exitOK
	case errors.As(err, &ue):
		return exitInvalid
	case errors.Is(err, context.DeadlineExceeded):
		return exitTimeout
	case errors.Is(err, context.Canceled):
		return exitCanceled
	case errors.Is(err, core.ErrInvalidMapping):
		return exitInvalid
	case errors.Is(err, core.ErrInfeasible):
		return exitInfeasible
	}
	return exitInternal
}

// runVet is the static analyzer entry point: it checks a mapping without
// evaluating it and exits 0 clean, 1 warnings only, 2 any error.
// printCodes dumps the diagnostic code registry — the source of truth for
// the table in DESIGN.md. With -json it emits the registry entries as JSON.
func printCodes(asJSON bool) int {
	infos := diag.Codes()
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(infos); err != nil {
			fmt.Fprintln(os.Stderr, "tileflow vet:", err)
			return 2
		}
		return 0
	}
	for _, info := range infos {
		sev := "error"
		if info.Severity == diag.Warning {
			sev = "warning"
		}
		fmt.Printf("%-14s %-8s %s", info.Code, sev, info.Title)
		if info.Hint != "" {
			fmt.Printf(" — %s", info.Hint)
		}
		fmt.Println()
	}
	return 0
}

// runAnalyze is the search-space analyzer entry point: it narrows a design
// point's tiling-factor space against the static legality rules without
// sampling it, proving values (or the whole space) infeasible. A dataflow
// selects the named template's factor space; notation and config inputs
// analyze the retiling space of the concrete mapping. It exits 0 when
// nothing was pruned, 1 when values were pruned or the narrowing was
// incomplete, and 2 when the space is provably empty.
func runAnalyze(args []string) int {
	fs := flag.NewFlagSet("tileflow analyze", flag.ExitOnError)
	archName := fs.String("arch", "edge", "accelerator: edge, cloud, validation, a100")
	archFile := fs.String("arch-file", "", "load a custom accelerator spec from a file")
	workloadName := fs.String("workload", "attention:Bert-S", "workload: attention:<Table2 name>, conv:<Table3 name>")
	dataflowName := fs.String("dataflow", "", "analyze a named dataflow template's factor space")
	notationFile := fs.String("notation-file", "", "analyze the retiling space of a mapping written in the tile-centric DSL")
	configFile := fs.String("config", "", "analyze the retiling space of a Timeloop-style YAML config file")
	maxProbes := fs.Int("max-probes", 0, "design-point probe budget (0 = spaceck default); larger spaces are narrowed witness-only")
	skipCapacity := fs.Bool("skip-capacity", false, "ignore buffer capacity limits")
	skipPE := fs.Bool("skip-pe", false, "ignore PE and instance budgets")
	jsonOut := fs.Bool("json", false, "print the space report as JSON (identical to POST /v1/analyze)")
	fs.Parse(args)

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "tileflow analyze:", err)
		return 2
	}
	// Build the exact request POST /v1/analyze would receive and run it
	// through the same function, so -json output is byte-identical to the
	// service's response body.
	req := &serve.EvaluateRequest{
		SkipCapacityCheck: *skipCapacity,
		SkipPECheck:       *skipPE,
		MaxProbes:         *maxProbes,
	}
	switch {
	case *configFile != "":
		if *notationFile != "" || *dataflowName != "" {
			return fail(fmt.Errorf("-config excludes -notation-file and -dataflow"))
		}
		src, err := os.ReadFile(*configFile)
		if err != nil {
			return fail(err)
		}
		req.ConfigYAML = string(src)
	case *notationFile != "":
		src, err := os.ReadFile(*notationFile)
		if err != nil {
			return fail(err)
		}
		req.Notation = string(src)
		req.Workload = *workloadName
	case *dataflowName != "":
		req.Dataflow = *dataflowName
		req.Workload = *workloadName
	default:
		return fail(fmt.Errorf("one of -config, -notation-file or -dataflow is required"))
	}
	if req.ConfigYAML == "" {
		if *archFile != "" {
			src, err := os.ReadFile(*archFile)
			if err != nil {
				return fail(err)
			}
			req.ArchSpec = string(src)
		} else {
			req.Arch = *archName
		}
	}

	report, err := serve.AnalyzeSpace(req)
	if err != nil {
		return fail(err)
	}
	if *jsonOut {
		if err := report.WriteJSON(os.Stdout); err != nil {
			return fail(err)
		}
		return report.ExitCode()
	}

	fmt.Printf("dataflow:  %s\n", report.Dataflow)
	fmt.Printf("space:     %d points, %d kept", report.SpaceSize, report.KeptSize)
	if !report.Complete {
		fmt.Printf(" (incomplete: witness-only, %d probes)", report.Probes)
	}
	fmt.Println()
	for _, d := range report.Factors {
		fmt.Printf("  %-24s kept %v", d.Key, d.Kept)
		if len(d.Removed) > 0 {
			fmt.Printf("  removed:")
			for _, rm := range d.Removed {
				fmt.Printf(" %d(%s)", rm.Value, rm.Rule)
			}
		}
		fmt.Println()
	}
	fmt.Print(report.Diagnostics.String())
	if report.Empty {
		fmt.Println("analyze: search space provably empty")
	} else {
		pruned := 0
		for _, d := range report.Factors {
			pruned += len(d.Removed)
		}
		fmt.Printf("analyze: %d factor value(s) pruned across %d factor(s), %d probes\n",
			pruned, len(report.Factors), report.Probes)
	}
	return report.ExitCode()
}

func runVet(args []string) int {
	fs := flag.NewFlagSet("tileflow vet", flag.ExitOnError)
	archName := fs.String("arch", "edge", "accelerator: edge, cloud, validation, a100")
	archFile := fs.String("arch-file", "", "load a custom accelerator spec from a file")
	workloadName := fs.String("workload", "attention:Bert-S", "workload: attention:<Table2 name>, conv:<Table3 name>")
	dataflowName := fs.String("dataflow", "", "vet a named dataflow template, built with its default factors")
	notationFile := fs.String("notation-file", "", "vet a mapping written in the tile-centric DSL")
	configFile := fs.String("config", "", "vet a Timeloop-style YAML config file (architecture + problem + mapping)")
	skipCapacity := fs.Bool("skip-capacity", false, "ignore buffer capacity limits")
	skipPE := fs.Bool("skip-pe", false, "ignore PE and instance budgets")
	jsonOut := fs.Bool("json", false, "print the vet report as JSON (identical to POST /v1/vet)")
	codes := fs.Bool("codes", false, "print the diagnostic code registry and exit")
	fs.Parse(args)

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "tileflow vet:", err)
		return 2
	}
	if *codes {
		return printCodes(*jsonOut)
	}
	// The same input-selection rule the evaluate path and the service
	// enforce: a config is self-contained and excludes the other forms.
	shape := flagShape(fs)
	if shape.ConfigYAML == "" && shape.Notation == "" && shape.Dataflow == "" {
		return fail(fmt.Errorf("one of -config, -notation-file or -dataflow is required"))
	}
	if _, err := serve.SelectInput(shape); err != nil {
		return fail(err)
	}
	opts := core.Options{SkipCapacityCheck: *skipCapacity, SkipPECheck: *skipPE}

	var spec *arch.Spec
	var err error
	if *configFile == "" {
		if spec, err = pickSpec(*archFile, *archName); err != nil {
			return fail(err)
		}
	}
	var diags diag.List
	switch {
	case *configFile != "":
		src, err := os.ReadFile(*configFile)
		if err != nil {
			return fail(err)
		}
		// A config that fails to load is a successful vet whose
		// diagnostics are the answer, exactly like POST /v1/vet.
		cfg, cdiags := yamlfe.Load(string(src))
		diags = cdiags
		if cfg != nil {
			diags = append(diags, check.Analyze(cfg.Root, nil, cfg.Graph, cfg.Spec, opts)...)
			diags.Sort()
		}
	case *notationFile != "":
		src, err := os.ReadFile(*notationFile)
		if err != nil {
			return fail(err)
		}
		g, err := serve.PickGraph(*workloadName)
		if err != nil {
			return fail(err)
		}
		diags = check.AnalyzeSource(string(src), g, spec, opts)
	default:
		df, err := serve.PickDataflow(*dataflowName, *workloadName, spec)
		if err != nil {
			return fail(err)
		}
		root, err := df.Build(df.DefaultFactors())
		if err != nil {
			return fail(err)
		}
		diags = check.Analyze(root, nil, df.Graph(), spec, opts)
	}

	report := check.NewReport(diags)
	if *jsonOut {
		if err := report.WriteJSON(os.Stdout); err != nil {
			return fail(err)
		}
	} else {
		fmt.Print(diags.String())
		fmt.Printf("vet: %d error(s), %d warning(s)\n", report.Errors, report.Warnings)
	}
	return report.ExitCode()
}
