// Command tileflow-serve runs the TileFlow evaluation service: an HTTP/JSON
// API over the tree-based analysis and the 3D design-space mapper, with a
// bounded worker pool and a canonical-key memoization cache so identical
// design points are analyzed once no matter how many clients ask.
//
// Endpoints:
//
//	POST   /v1/evaluate        evaluate one design point
//	POST   /v1/evaluate/batch  evaluate many design points concurrently
//	POST   /v1/search          run the GA+MCTS mapper over the 3D space
//	POST   /v1/jobs/search     submit the same search as an async job
//	GET    /v1/jobs            list jobs
//	GET    /v1/jobs/{id}       job status, progress, and result
//	GET    /v1/jobs/{id}/events  SSE progress stream
//	DELETE /v1/jobs/{id}       cancel a job
//	GET    /healthz            liveness and basic stats
//	GET    /metrics            Prometheus text metrics
//
// With -data-dir, jobs survive restarts: SIGTERM checkpoints running
// searches and re-queues them, and the next start resumes them from the
// checkpoint with an identical trajectory.
//
// Example:
//
//	tileflow-serve -addr :8080 -data-dir /var/lib/tileflow
//	curl -s localhost:8080/v1/jobs/search -d '{"arch":"edge","workload":"attention:Bert-S"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheEntries := flag.Int("cache", 8192, "memoization cache capacity (entries)")
	workers := flag.Int("workers", 0, "max concurrent evaluations (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request deadline")
	maxBatch := flag.Int("max-batch", 256, "max design points per batch request")
	dataDir := flag.String("data-dir", "", "directory for the durable job store (empty = in-memory jobs)")
	jobWorkers := flag.Int("job-workers", 0, "concurrent async search jobs (0 = GOMAXPROCS, -1 = none: coordinator-only)")
	coordinator := flag.String("coordinator", "", "coordinator base URL; set to run as a fleet worker (e.g. http://host:8080)")
	fleetListen := flag.String("fleet-listen", "", "dedicated listen address for the fleet peer protocol (empty = serve it on -addr)")
	node := flag.String("node", "", "fleet node name for lease ownership and metrics (default hostname-pid)")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "lease TTL granted to fleet workers when coordinating")
	jobRetention := flag.Duration("job-retention", 0, "evict finished jobs older than this horizon (0 = keep forever)")
	tenantMaxRunning := flag.Int("tenant-max-running", 0, "max concurrently running jobs per tenant, local + fleet (0 = unlimited)")
	tenantMaxActive := flag.Int("tenant-max-active", 0, "max active (queued+running) jobs per tenant at admission (0 = unlimited)")
	schedSeed := flag.Int64("sched-seed", 0, "seed for the scheduler's deterministic tie-breaker")
	maxAttempts := flag.Int("max-attempts", 0, "default failovers before a job is quarantined as poisoned (0 = retry forever)")
	flag.Parse()

	srv, err := serve.Open(serve.Config{
		CacheEntries:       *cacheEntries,
		Workers:            *workers,
		Timeout:            *timeout,
		MaxBatch:           *maxBatch,
		DataDir:            *dataDir,
		JobWorkers:         *jobWorkers,
		Coordinator:        *coordinator,
		FleetNode:          *node,
		LeaseTTL:           *leaseTTL,
		JobRetention:       *jobRetention,
		TenantMaxRunning:   *tenantMaxRunning,
		TenantMaxActive:    *tenantMaxActive,
		SchedSeed:          *schedSeed,
		DefaultMaxAttempts: *maxAttempts,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tileflow-serve:", err)
		os.Exit(1)
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	var fs *http.Server
	if *fleetListen != "" {
		// A dedicated peer listener keeps claim/renew/checkpoint traffic
		// off the public port; the protocol still answers on -addr too.
		fs = &http.Server{
			Addr:              *fleetListen,
			Handler:           srv.FleetHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("tileflow-serve fleet protocol on %s", *fleetListen)
			if err := fs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("tileflow-serve: fleet listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if fs != nil {
			fs.Shutdown(shutdownCtx)
		}
		hs.Shutdown(shutdownCtx)
	}()

	log.Printf("tileflow-serve listening on %s (workers=%d cache=%d timeout=%s data-dir=%q)",
		*addr, effectiveWorkers(*workers), *cacheEntries, *timeout, *dataDir)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "tileflow-serve:", err)
		os.Exit(1)
	}
	// HTTP is down; drain the job workers so running searches checkpoint
	// and re-queue before the process exits.
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Close(drainCtx); err != nil {
		log.Printf("tileflow-serve: drain: %v", err)
	}
	log.Printf("tileflow-serve: shut down")
}

func effectiveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return serve.NewPool(0).Workers()
}
