// Command tileflow-lint runs TileFlow's project analyzers (layering,
// determinism) as a vet tool:
//
//	go build -o tileflow-lint ./cmd/tileflow-lint
//	go vet -vettool=$PWD/tileflow-lint ./...
//
// It speaks the go command's unit-checker protocol, reimplemented on the
// standard library alone (the module has no dependency on golang.org/x/tools):
//
//   - `tileflow-lint -V=full` prints a version line the go command hashes
//     into its action cache key;
//   - `tileflow-lint -flags` prints the JSON list of analyzer flags the go
//     command may forward (none);
//   - `tileflow-lint <unit>.cfg` analyzes one package unit: the config names
//     the Go files, the import map, and the export-data file per dependency,
//     so type checking works offline through the compiler's artifacts.
//
// Findings print to stderr as file:line:col: message (analyzer) and the tool
// exits 2, which go vet reports as a failure. An empty facts file is written
// to the configured output path — these analyzers exchange no facts.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/lint"
)

// vetConfig mirrors the fields of the go command's vet.cfg this tool needs
// (the JSON carries more; unknown fields are ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	args := os.Args[1:]
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			// Must be of the form "<name> version <version>"; the go
			// command folds the line into its cache key.
			fmt.Println("tileflow-lint version v1.0.0")
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintln(os.Stderr, "usage: tileflow-lint <unit>.cfg (normally invoked via go vet -vettool)")
		os.Exit(1)
	}
	code, err := run(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "tileflow-lint: %v\n", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(cfgPath string) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	// The go command expects the facts file to exist even for units that
	// produced no findings — and for VetxOnly units (dependencies analyzed
	// only for facts), writing it is the whole job.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, exportLookup(&cfg)),
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	if _, err := tconf.Check(cfg.ImportPath, fset, files, info); err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		// Run what we can without types: the syntactic checks still hold.
		info = nil
	}

	diags, err := lint.Run(lint.Analyzers(), fset, files, cfg.ImportPath, info)
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2, nil
	}
	return 0, nil
}

// exportLookup resolves an import path to its compiler export data using the
// unit's import map and package-file table, exactly as the toolchain's own
// vet does.
func exportLookup(cfg *vetConfig) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}
