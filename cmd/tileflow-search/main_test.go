package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/serve"
)

// TestQuota429ByteIdenticalWithHTTP is the acceptance differential for
// coded quota refusals: the error body the CLI's server mode relays must
// be byte-for-byte what a raw HTTP client receives for the same
// submission — same envelope, same code — and the CLI must signal the
// refusal with its dedicated exit code.
func TestQuota429ByteIdenticalWithHTTP(t *testing.T) {
	// No job workers: submissions stay queued, so one job fills the
	// tenant's active quota deterministically.
	s := serve.New(serve.Config{JobWorkers: -1, TenantMaxActive: 1})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	opts := &remoteOpts{
		server: hs.URL, archName: "edge", workload: "attention:Bert-S",
		pop: 3, gens: 1, tileRounds: 3, seed: 1,
		tenant: "alice", class: "bulk", jsonOut: true,
	}

	// First submission is admitted; it parks in the queue.
	body := []byte(`{"arch":"edge","workload":"attention:Bert-S","population":3,"generations":1,"tile_rounds":3,"seed":1,"tenant":"alice","class":"bulk"}`)
	resp, err := http.Post(hs.URL+"/v1/jobs/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission: status %d", resp.StatusCode)
	}

	// Reference refusal straight over HTTP.
	resp, err = http.Post(hs.URL+"/v1/jobs/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	httpBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("reference refusal: status %d body %s", resp.StatusCode, httpBody)
	}

	// Same refusal through the CLI's server mode.
	var out bytes.Buffer
	code, err := runRemote(opts, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != exitQuota {
		t.Fatalf("exit code %d, want %d", code, exitQuota)
	}
	if !bytes.Equal(out.Bytes(), httpBody) {
		t.Fatalf("CLI relays different bytes than HTTP:\nhttp %q\ncli  %q", httpBody, out.Bytes())
	}
	if !bytes.Contains(out.Bytes(), []byte(`"code":"tenant_quota_exhausted"`)) {
		t.Fatalf("refusal body misses the machine code: %s", out.Bytes())
	}
}
