// Command tileflow-search explores the full 3D fusion-dataflow design space
// (compute ordering × resource binding × loop tiling) for a workload with
// the Sec 6 mapper: a genetic algorithm over ordering/binding encodings
// with MCTS tiling-factor search per candidate.
//
// Long runs survive interruption: -checkpoint writes the search state to a
// file at every generation boundary (atomically), and -resume continues
// from such a file with a trajectory identical to an uninterrupted run.
// The checkpoint format is shared with the evaluation server's async job
// subsystem.
//
// With -server, the search is submitted to a tileflow-serve instance as
// an async job instead of running locally: -tenant and -class feed the
// server's multi-tenant scheduler, -warm-start seeds the GA from the best
// finished search of the same structure, and a tenant-quota refusal
// relays the server's 429 body byte-for-byte and exits with code 3.
//
// Example:
//
//	tileflow-search -arch edge -workload attention:Bert-S -pop 20 -gens 20
//	tileflow-search -workload attention:Bert-S -checkpoint search.ckpt
//	tileflow-search -workload attention:Bert-S -resume search.ckpt -json
//	tileflow-search -server http://host:8080 -tenant alice -class interactive -workload attention:Bert-S
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/mapper"
	"repro/internal/notation"
	"repro/internal/serve"
)

func main() {
	archName := flag.String("arch", "edge", "accelerator: edge, cloud, validation, a100")
	archFile := flag.String("arch-file", "", "load a custom accelerator spec from a file (see arch.ParseSpec format)")
	workloadName := flag.String("workload", "attention:Bert-S", "workload: attention:<name> or conv:<name>")
	pop := flag.Int("pop", 20, "GA population size")
	gens := flag.Int("gens", 20, "GA generations")
	tileRounds := flag.Int("tile-rounds", 60, "MCTS rounds per candidate")
	seed := flag.Int64("seed", 1, "random seed")
	parallel := flag.Int("parallel", 0, "parallel evaluations (0 = NumCPU)")
	printTree := flag.Bool("tree", false, "print the winning analysis tree")
	checkpointFile := flag.String("checkpoint", "", "write a resumable checkpoint to this file at every generation")
	resumeFile := flag.String("resume", "", "resume from a checkpoint file written by -checkpoint (or the server)")
	jsonOut := flag.Bool("json", false, "print the result as JSON (same shape as the server's /v1/search)")
	server := flag.String("server", "", "submit the search as an async job to a tileflow-serve instance at this base URL instead of running locally")
	tenant := flag.String("tenant", "", "tenant the job is billed to (server mode)")
	class := flag.String("class", "", "priority class: interactive, batch, or bulk (server mode; default batch)")
	warmStart := flag.Bool("warm-start", false, "seed the GA from the best checkpoint of a structurally identical finished search (server mode)")
	maxAttempts := flag.Int("max-attempts", 0, "failovers before the job is quarantined as poisoned (server mode; 0 = server default)")
	flag.Parse()

	if *server != "" {
		code, err := runRemote(&remoteOpts{
			server: *server, archName: *archName, archFile: *archFile,
			workload: *workloadName, pop: *pop, gens: *gens,
			tileRounds: *tileRounds, seed: *seed,
			tenant: *tenant, class: *class, warmStart: *warmStart,
			maxAttempts: *maxAttempts, jsonOut: *jsonOut,
		}, os.Stdout)
		fatalIf(err)
		os.Exit(code)
	}

	var spec *arch.Spec
	var err error
	if *archFile != "" {
		src, rerr := os.ReadFile(*archFile)
		fatalIf(rerr)
		spec, err = arch.ParseSpec(string(src))
	} else {
		spec, err = serve.PickArch(*archName)
	}
	fatalIf(err)
	g, err := serve.PickGraph(*workloadName)
	fatalIf(err)

	s := &mapper.TreeSearch{
		G: g, Spec: spec,
		Population: *pop, Generations: *gens, TileRounds: *tileRounds,
		Parallel: *parallel, Seed: *seed,
	}
	if *resumeFile != "" {
		src, rerr := os.ReadFile(*resumeFile)
		fatalIf(rerr)
		cp, derr := mapper.DecodeCheckpoint(src)
		fatalIf(derr)
		fatalIf(s.Resume(cp))
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "resuming from %s at generation %d/%d\n", *resumeFile, cp.NextGen, cp.Generations)
		}
	}
	if *checkpointFile != "" {
		s.Progress = func(p mapper.ProgressEvent) {
			if err := writeCheckpoint(*checkpointFile, p.Checkpoint); err != nil {
				fmt.Fprintln(os.Stderr, "tileflow-search: checkpoint:", err)
			}
		}
	}

	if !*jsonOut {
		fmt.Printf("exploring 3D space for %s on %s (%d x %d x %d evaluations)...\n",
			g.Name, spec.Name, *pop, *gens, *tileRounds)
	}
	res := s.Run()
	if res.Best == nil {
		fatalIf(fmt.Errorf("no valid dataflow found"))
	}
	if *jsonOut {
		resp, err := serve.NewSearchResponse(g, spec, res, false)
		fatalIf(err)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatalIf(enc.Encode(resp))
		return
	}
	fmt.Printf("best cycles: %.4g\n", res.Best.Cycles)
	fmt.Printf("encoding:    %s\n", res.Encoding)
	fmt.Printf("factors:     %v\n", res.Best.Factors)
	fmt.Println("convergence (best-so-far cycles per generation):")
	for i, c := range res.Trace {
		fmt.Printf("  gen %2d: %.4g\n", i+1, c)
	}
	if *printTree {
		gd := mapper.NewGeneratedDataflow("best", g, spec, res.Encoding)
		root, err := gd.Build(res.Best.Factors)
		fatalIf(err)
		fmt.Print(root.String())
		fmt.Println("tile-centric notation:")
		fmt.Print(notation.Print(root))
		if _, err := core.Evaluate(root, g, spec, core.Options{}); err != nil {
			fmt.Println("note:", err)
		}
	}
}

// remoteOpts carries the server-submit parameters.
type remoteOpts struct {
	server, archName, archFile, workload string
	pop, gens, tileRounds                int
	seed                                 int64
	tenant, class                        string
	warmStart                            bool
	maxAttempts                          int
	jsonOut                              bool
}

// exitQuota is the exit code for a tenant-quota refusal (HTTP 429), kept
// distinct from 1 (any other failure) so sweep scripts can back off and
// retry instead of aborting.
const exitQuota = 3

// runRemote submits the search to a tileflow-serve instance as an async
// job and follows it to completion, returning the process exit code.
// Error bodies from the server are relayed to stdout byte-for-byte — a
// quota 429 renders identically here and over raw HTTP.
func runRemote(o *remoteOpts, stdout io.Writer) (int, error) {
	req := serve.SearchRequest{
		Arch:        o.archName,
		Workload:    o.workload,
		Population:  o.pop,
		Generations: o.gens,
		TileRounds:  o.tileRounds,
		Seed:        o.seed,
		Tenant:      o.tenant,
		Class:       o.class,
		WarmStart:   o.warmStart,
		MaxAttempts: o.maxAttempts,
	}
	if o.archFile != "" {
		src, err := os.ReadFile(o.archFile)
		if err != nil {
			return 1, err
		}
		req.Arch, req.ArchSpec = "", string(src)
	}
	body, err := json.Marshal(&req)
	if err != nil {
		return 1, err
	}
	resp, err := http.Post(o.server+"/v1/jobs/search", "application/json", bytes.NewReader(body))
	if err != nil {
		return 1, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 1, err
	}
	if resp.StatusCode != http.StatusAccepted {
		// Relay the server's error envelope untouched; the bytes are the
		// contract (tests diff them against a direct HTTP call).
		stdout.Write(raw)
		if resp.StatusCode == http.StatusTooManyRequests {
			return exitQuota, nil
		}
		return 1, nil
	}
	var job serve.JobJSON
	if err := json.Unmarshal(raw, &job); err != nil {
		return 1, err
	}
	if !o.jsonOut {
		fmt.Fprintf(os.Stderr, "submitted job %s (tenant=%q class=%s)\n", job.ID, job.Tenant, job.Class)
	}

	for !terminalState(job.State) {
		time.Sleep(200 * time.Millisecond)
		r, err := http.Get(o.server + "/v1/jobs/" + job.ID)
		if err != nil {
			return 1, err
		}
		b, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			return 1, err
		}
		if r.StatusCode != http.StatusOK {
			stdout.Write(b)
			return 1, nil
		}
		if err := json.Unmarshal(b, &job); err != nil {
			return 1, err
		}
	}
	if job.State != "done" {
		return 1, fmt.Errorf("job %s ended %s: %s", job.ID, job.State, job.Error)
	}
	if o.jsonOut {
		stdout.Write(job.Result)
		fmt.Fprintln(stdout)
		return 0, nil
	}
	var res serve.SearchResponse
	if err := json.Unmarshal(job.Result, &res); err != nil {
		return 1, err
	}
	fmt.Fprintf(stdout, "best cycles: %.4g\n", res.Cycles)
	fmt.Fprintf(stdout, "encoding:    %s\n", res.Encoding)
	fmt.Fprintf(stdout, "factors:     %v\n", res.Factors)
	return 0, nil
}

func terminalState(s string) bool {
	switch s {
	case "done", "failed", "cancelled", "poisoned":
		return true
	}
	return false
}

// writeCheckpoint persists a checkpoint atomically (tmp + rename), so a
// kill mid-write leaves the previous checkpoint intact.
func writeCheckpoint(path string, cp *mapper.Checkpoint) error {
	b, err := mapper.EncodeCheckpoint(cp)
	if err != nil {
		return err
	}
	tmp := filepath.Join(filepath.Dir(path), "."+filepath.Base(path)+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tileflow-search:", err)
		os.Exit(1)
	}
}
