// Command tileflow-search explores the full 3D fusion-dataflow design space
// (compute ordering × resource binding × loop tiling) for a workload with
// the Sec 6 mapper: a genetic algorithm over ordering/binding encodings
// with MCTS tiling-factor search per candidate.
//
// Example:
//
//	tileflow-search -arch edge -workload attention:Bert-S -pop 20 -gens 20
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/mapper"
	"repro/internal/notation"
	"repro/internal/serve"
)

func main() {
	archName := flag.String("arch", "edge", "accelerator: edge, cloud, validation, a100")
	archFile := flag.String("arch-file", "", "load a custom accelerator spec from a file (see arch.ParseSpec format)")
	workloadName := flag.String("workload", "attention:Bert-S", "workload: attention:<name> or conv:<name>")
	pop := flag.Int("pop", 20, "GA population size")
	gens := flag.Int("gens", 20, "GA generations")
	tileRounds := flag.Int("tile-rounds", 60, "MCTS rounds per candidate")
	seed := flag.Int64("seed", 1, "random seed")
	parallel := flag.Int("parallel", 0, "parallel evaluations (0 = NumCPU)")
	printTree := flag.Bool("tree", false, "print the winning analysis tree")
	flag.Parse()

	var spec *arch.Spec
	var err error
	if *archFile != "" {
		src, rerr := os.ReadFile(*archFile)
		fatalIf(rerr)
		spec, err = arch.ParseSpec(string(src))
	} else {
		spec, err = serve.PickArch(*archName)
	}
	fatalIf(err)
	g, err := serve.PickGraph(*workloadName)
	fatalIf(err)

	s := &mapper.TreeSearch{
		G: g, Spec: spec,
		Population: *pop, Generations: *gens, TileRounds: *tileRounds,
		Parallel: *parallel, Seed: *seed,
	}
	fmt.Printf("exploring 3D space for %s on %s (%d x %d x %d evaluations)...\n",
		g.Name, spec.Name, *pop, *gens, *tileRounds)
	res := s.Run()
	if res.Best == nil {
		fatalIf(fmt.Errorf("no valid dataflow found"))
	}
	fmt.Printf("best cycles: %.4g\n", res.Best.Cycles)
	fmt.Printf("encoding:    %s\n", res.Encoding)
	fmt.Printf("factors:     %v\n", res.Best.Factors)
	fmt.Println("convergence (best-so-far cycles per generation):")
	for i, c := range res.Trace {
		fmt.Printf("  gen %2d: %.4g\n", i+1, c)
	}
	if *printTree {
		gd := mapper.NewGeneratedDataflow("best", g, spec, res.Encoding)
		root, err := gd.Build(res.Best.Factors)
		fatalIf(err)
		fmt.Print(root.String())
		fmt.Println("tile-centric notation:")
		fmt.Print(notation.Print(root))
		if _, err := core.Evaluate(root, g, spec, core.Options{}); err != nil {
			fmt.Println("note:", err)
		}
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tileflow-search:", err)
		os.Exit(1)
	}
}
