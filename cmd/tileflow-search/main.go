// Command tileflow-search explores the full 3D fusion-dataflow design space
// (compute ordering × resource binding × loop tiling) for a workload with
// the Sec 6 mapper: a genetic algorithm over ordering/binding encodings
// with MCTS tiling-factor search per candidate.
//
// Long runs survive interruption: -checkpoint writes the search state to a
// file at every generation boundary (atomically), and -resume continues
// from such a file with a trajectory identical to an uninterrupted run.
// The checkpoint format is shared with the evaluation server's async job
// subsystem.
//
// Example:
//
//	tileflow-search -arch edge -workload attention:Bert-S -pop 20 -gens 20
//	tileflow-search -workload attention:Bert-S -checkpoint search.ckpt
//	tileflow-search -workload attention:Bert-S -resume search.ckpt -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/mapper"
	"repro/internal/notation"
	"repro/internal/serve"
)

func main() {
	archName := flag.String("arch", "edge", "accelerator: edge, cloud, validation, a100")
	archFile := flag.String("arch-file", "", "load a custom accelerator spec from a file (see arch.ParseSpec format)")
	workloadName := flag.String("workload", "attention:Bert-S", "workload: attention:<name> or conv:<name>")
	pop := flag.Int("pop", 20, "GA population size")
	gens := flag.Int("gens", 20, "GA generations")
	tileRounds := flag.Int("tile-rounds", 60, "MCTS rounds per candidate")
	seed := flag.Int64("seed", 1, "random seed")
	parallel := flag.Int("parallel", 0, "parallel evaluations (0 = NumCPU)")
	printTree := flag.Bool("tree", false, "print the winning analysis tree")
	checkpointFile := flag.String("checkpoint", "", "write a resumable checkpoint to this file at every generation")
	resumeFile := flag.String("resume", "", "resume from a checkpoint file written by -checkpoint (or the server)")
	jsonOut := flag.Bool("json", false, "print the result as JSON (same shape as the server's /v1/search)")
	flag.Parse()

	var spec *arch.Spec
	var err error
	if *archFile != "" {
		src, rerr := os.ReadFile(*archFile)
		fatalIf(rerr)
		spec, err = arch.ParseSpec(string(src))
	} else {
		spec, err = serve.PickArch(*archName)
	}
	fatalIf(err)
	g, err := serve.PickGraph(*workloadName)
	fatalIf(err)

	s := &mapper.TreeSearch{
		G: g, Spec: spec,
		Population: *pop, Generations: *gens, TileRounds: *tileRounds,
		Parallel: *parallel, Seed: *seed,
	}
	if *resumeFile != "" {
		src, rerr := os.ReadFile(*resumeFile)
		fatalIf(rerr)
		cp, derr := mapper.DecodeCheckpoint(src)
		fatalIf(derr)
		fatalIf(s.Resume(cp))
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "resuming from %s at generation %d/%d\n", *resumeFile, cp.NextGen, cp.Generations)
		}
	}
	if *checkpointFile != "" {
		s.Progress = func(p mapper.ProgressEvent) {
			if err := writeCheckpoint(*checkpointFile, p.Checkpoint); err != nil {
				fmt.Fprintln(os.Stderr, "tileflow-search: checkpoint:", err)
			}
		}
	}

	if !*jsonOut {
		fmt.Printf("exploring 3D space for %s on %s (%d x %d x %d evaluations)...\n",
			g.Name, spec.Name, *pop, *gens, *tileRounds)
	}
	res := s.Run()
	if res.Best == nil {
		fatalIf(fmt.Errorf("no valid dataflow found"))
	}
	if *jsonOut {
		resp, err := serve.NewSearchResponse(g, spec, res, false)
		fatalIf(err)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatalIf(enc.Encode(resp))
		return
	}
	fmt.Printf("best cycles: %.4g\n", res.Best.Cycles)
	fmt.Printf("encoding:    %s\n", res.Encoding)
	fmt.Printf("factors:     %v\n", res.Best.Factors)
	fmt.Println("convergence (best-so-far cycles per generation):")
	for i, c := range res.Trace {
		fmt.Printf("  gen %2d: %.4g\n", i+1, c)
	}
	if *printTree {
		gd := mapper.NewGeneratedDataflow("best", g, spec, res.Encoding)
		root, err := gd.Build(res.Best.Factors)
		fatalIf(err)
		fmt.Print(root.String())
		fmt.Println("tile-centric notation:")
		fmt.Print(notation.Print(root))
		if _, err := core.Evaluate(root, g, spec, core.Options{}); err != nil {
			fmt.Println("note:", err)
		}
	}
}

// writeCheckpoint persists a checkpoint atomically (tmp + rename), so a
// kill mid-write leaves the previous checkpoint intact.
func writeCheckpoint(path string, cp *mapper.Checkpoint) error {
	b, err := mapper.EncodeCheckpoint(cp)
	if err != nil {
		return err
	}
	tmp := filepath.Join(filepath.Dir(path), "."+filepath.Base(path)+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tileflow-search:", err)
		os.Exit(1)
	}
}
