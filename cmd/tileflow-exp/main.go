// Command tileflow-exp regenerates the paper's evaluation tables and
// figures (Sec 7). Run with -list to see the experiment ids, or -exp all.
//
// Example:
//
//	tileflow-exp -exp fig8ab,fig10 -quick
//	tileflow-exp -exp all > results.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/arch"
	"repro/internal/experiments"
)

type experiment struct {
	id, desc string
	run      func(cfg experiments.Config) (string, error)
}

var registry = []experiment{
	{"fig8ab", "validation vs the polyhedron model (matmul sweep)", func(cfg experiments.Config) (string, error) {
		r, err := experiments.Fig8ab(cfg)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"fig8cd", "validation vs the cycle-level accelerator (attention sweep)", func(cfg experiments.Config) (string, error) {
		r, err := experiments.Fig8cd(cfg)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"fig9a", "tiling-factor tuning traces (Bert-S, Edge)", func(cfg experiments.Config) (string, error) {
		r, err := experiments.Fig9a(cfg)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"fig9b", "3D-space exploration traces, attention (Edge)", func(cfg experiments.Config) (string, error) {
		r, err := experiments.Fig9b(cfg)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"fig9c", "3D-space exploration traces, conv chains (Cloud)", func(cfg experiments.Config) (string, error) {
		r, err := experiments.Fig9c(cfg)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"fig10", "self-attention dataflow comparison on Edge", func(cfg experiments.Config) (string, error) {
		r, err := experiments.RunAttentionComparison(cfg, arch.Edge())
		if err != nil {
			return "", err
		}
		rows, err := experiments.Fig10dBreakdown(cfg)
		if err != nil {
			return "", err
		}
		return r.Render() + experiments.RenderBreakdown(rows), nil
	}},
	{"fig11", "self-attention dataflow comparison on Cloud", func(cfg experiments.Config) (string, error) {
		r, err := experiments.RunAttentionComparison(cfg, arch.Cloud())
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"fig12", "convolution chain comparison on Cloud", func(cfg experiments.Config) (string, error) {
		r, err := experiments.RunConvComparison(cfg)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
	{"fig13", "energy breakdown vs L1 capacity (FLAT-RGran, Edge)", func(cfg experiments.Config) (string, error) {
		rows, err := experiments.Fig13(cfg)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig13(rows), nil
	}},
	{"fig14", "L1 bandwidth sensitivity (conv chains, Edge)", func(cfg experiments.Config) (string, error) {
		traces, err := experiments.Fig14(cfg)
		if err != nil {
			return "", err
		}
		return experiments.RenderFig14(traces), nil
	}},
	{"tab6", "PE-array-size sweep (Bert-B, Edge)", func(cfg experiments.Config) (string, error) {
		rows, err := experiments.Table6(cfg)
		if err != nil {
			return "", err
		}
		return experiments.RenderTable6(rows), nil
	}},
	{"tab7", "FLAT granularities vs TileFlow (T5 batch 128, Cloud)", func(cfg experiments.Config) (string, error) {
		r, err := experiments.Table7(cfg)
		if err != nil {
			return "", err
		}
		return experiments.RenderTable7(r), nil
	}},
	{"tab8", "long-sequence attention on the A100-like spec", func(cfg experiments.Config) (string, error) {
		rows, err := experiments.Table8(cfg)
		if err != nil {
			return "", err
		}
		return experiments.RenderTable8(rows), nil
	}},
	{"ablation", "design-choice ablations: wrap-around retention, inter-tile binding", func(cfg experiments.Config) (string, error) {
		r, err := experiments.Ablation(cfg)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	}},
}

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	csvDir := flag.String("csv", "", "also write plottable CSV series to this directory")
	quick := flag.Bool("quick", false, "trim workload lists and budgets for a fast pass")
	rounds := flag.Int("rounds", 0, "MCTS rounds per dataflow tuning (0 = default)")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range registry {
			fmt.Printf("%-8s %s\n", e.id, e.desc)
		}
		return
	}
	cfg := experiments.Config{Quick: *quick, Rounds: *rounds, Seed: *seed}
	want := map[string]bool{}
	if *expFlag != "all" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	ran := 0
	for _, e := range registry {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		start := time.Now()
		out, err := e.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tileflow-exp: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s (%s) [%.1fs] ====\n%s\n", e.id, e.desc, time.Since(start).Seconds(), out)
		if *csvDir != "" {
			if err := exportCSV(e.id, cfg, *csvDir); err != nil {
				fmt.Fprintf(os.Stderr, "tileflow-exp: csv %s: %v\n", e.id, err)
				os.Exit(1)
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "tileflow-exp: no experiments matched; use -list")
		os.Exit(1)
	}
}

// exportCSV re-runs an experiment's data path and writes its plottable
// series (experiments are deterministic under a fixed seed, so re-running
// yields the rendered numbers).
func exportCSV(id string, cfg experiments.Config, dir string) error {
	switch id {
	case "fig8ab":
		r, err := experiments.Fig8ab(cfg)
		if err != nil {
			return err
		}
		return r.CSV(dir)
	case "fig8cd":
		r, err := experiments.Fig8cd(cfg)
		if err != nil {
			return err
		}
		return r.CSV(dir)
	case "fig9a":
		r, err := experiments.Fig9a(cfg)
		if err != nil {
			return err
		}
		return experiments.TracesCSV(dir, "fig9a", r.Traces)
	case "fig9b":
		r, err := experiments.Fig9b(cfg)
		if err != nil {
			return err
		}
		return experiments.TracesCSV(dir, "fig9b", r.Traces)
	case "fig9c":
		r, err := experiments.Fig9c(cfg)
		if err != nil {
			return err
		}
		return experiments.TracesCSV(dir, "fig9c", r.Traces)
	case "fig10":
		r, err := experiments.RunAttentionComparison(cfg, arch.Edge())
		if err != nil {
			return err
		}
		return experiments.PointsCSV(dir, "fig10", r.Points)
	case "fig11":
		r, err := experiments.RunAttentionComparison(cfg, arch.Cloud())
		if err != nil {
			return err
		}
		return experiments.PointsCSV(dir, "fig11", r.Points)
	case "fig12":
		r, err := experiments.RunConvComparison(cfg)
		if err != nil {
			return err
		}
		return experiments.PointsCSV(dir, "fig12", r.Points)
	case "fig14":
		traces, err := experiments.Fig14(cfg)
		if err != nil {
			return err
		}
		return experiments.BandwidthCSV(dir, traces)
	}
	return nil // tables render fine as text
}
