package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/mapper"
	"repro/internal/workload"
)

// TestMapperThroughputGate is the TILEFLOW_BENCH-gated acceptance gate of
// the batched/incremental evaluation refactor: the mapper's end-to-end
// evaluation throughput on the canonical design point (TileFlow attention
// template on ViT/16-B, MCTS Rounds=100) must reach at least 3x the PR2
// compiled-path baseline, with zero steady-state heap allocations per
// evaluation. Measurements are written as a JSON report
// (TILEFLOW_MAPPER_BENCH_OUT, default BENCH_PR7.json) for the CI artifact.
func TestMapperThroughputGate(t *testing.T) {
	if os.Getenv("TILEFLOW_BENCH") != "1" {
		t.Skip("set TILEFLOW_BENCH=1 to run the timing assertion")
	}
	// PR2's measured mapper throughput on the same design point; the gate
	// and the baseline live in BENCH_PR2.json.
	const baselineEvalsPerSec = 19438.0
	const requiredSpeedup = 3.0

	shape, ok := workload.AttentionShapeByName("ViT/16-B")
	if !ok {
		t.Fatal("ViT/16-B shape missing")
	}
	spec := arch.Edge()
	const rounds = 100
	runSearch := func(n int) time.Duration {
		start := time.Now()
		for i := 0; i < n; i++ {
			df := dataflows.TileFlowAttention(shape, spec)
			s := &mapper.TileSearch{Dataflow: df, Spec: spec, Rounds: rounds, Seed: int64(i)}
			if best, _ := s.Run(); best == nil {
				t.Fatal("no mapping found")
			}
		}
		return time.Since(start)
	}
	runSearch(50) // warm-up
	const runs = 1500
	elapsed := runSearch(runs)
	evalsPerSec := float64(runs) * (rounds + 1) / elapsed.Seconds()
	speedup := evalsPerSec / baselineEvalsPerSec
	t.Logf("mapper throughput: %.0f evals/sec (%.2fx the PR2 baseline of %.0f)",
		evalsPerSec, speedup, baselineEvalsPerSec)
	if speedup < requiredSpeedup {
		t.Errorf("mapper throughput %.0f evals/sec is only %.2fx the PR2 baseline; want >= %.1fx (%.0f evals/sec)",
			evalsPerSec, speedup, requiredSpeedup, requiredSpeedup*baselineEvalsPerSec)
	}

	// Steady-state allocation count of the arena evaluator on the same
	// structure: the throughput rests on this being zero.
	df := dataflows.TileFlowAttention(shape, spec)
	root, err := df.Build(df.DefaultFactors())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.Compile(root, df.Graph(), spec)
	if err != nil {
		t.Fatal(err)
	}
	scratch := prog.NewScratch()
	ctx := context.Background()
	if _, err := prog.EvaluateInto(ctx, scratch, core.Options{}); err != nil {
		t.Fatal(err)
	}
	steadyAllocs := testing.AllocsPerRun(200, func() {
		if _, err := prog.EvaluateInto(ctx, scratch, core.Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if steadyAllocs != 0 {
		t.Errorf("steady-state EvaluateInto allocates %v objects per run, want 0", steadyAllocs)
	}

	out := os.Getenv("TILEFLOW_MAPPER_BENCH_OUT")
	if out == "" {
		out = "BENCH_PR7.json"
	}
	report := map[string]any{
		"description": "Batched + incremental evaluation engine throughput (PR 7). Mapper: TileFlow attention template on ViT/16-B, MCTS Rounds=100 (101 evaluations per run); every rollout evaluates through Program.EvaluateDelta against a persistent DeltaState, GA generations batch through Program.EvaluateBatch, and the steady-state arena evaluator allocates nothing. Baseline = PR2's compiled WithTiling path (BENCH_PR2.json).",
		"cpu":         gateCPUModel(),
		"go_bench_cmd": "TILEFLOW_BENCH=1 go test . -run TestMapperThroughputGate -count=1 -v; " +
			"go test . -run '^$' -bench 'BenchmarkMapperThroughput' -benchtime 1500x",
		"num_cpu": runtime.NumCPU(),
		"mapper": map[string]any{
			"evals_per_sec":                gateRound3(evalsPerSec),
			"baseline_pr2_evals_per_sec":   baselineEvalsPerSec,
			"speedup_vs_pr2":               gateRound3(speedup),
			"steady_state_allocs_per_eval": steadyAllocs,
			"identical_best_point_test":    "internal/mapper TestTileSearchProgramReuseMatchesCold",
			"bit_identity_differential":    "internal/conformance TestConformance (batch + delta routes)",
		},
		"speedup_gate": map[string]any{
			"test":         "TestMapperThroughputGate (TILEFLOW_BENCH=1)",
			"required_min": requiredSpeedup,
			"measured":     gateRound3(speedup),
		},
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

func gateRound3(v float64) float64 { return float64(int(v*1000+0.5)) / 1000 }

// gateCPUModel best-effort reads the CPU model for the report.
func gateCPUModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if strings.HasPrefix(line, "model name") {
				if _, after, ok := strings.Cut(line, ":"); ok {
					return strings.TrimSpace(after)
				}
			}
		}
	}
	return fmt.Sprintf("%s/%s (%d cores)", runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
}
