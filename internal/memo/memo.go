// Package memo provides the shared memoization layer of the evaluation
// service: a sharded LRU cache keyed by canonical strings, and a
// single-flight wrapper that collapses concurrent identical computations so
// a thundering herd of equal requests runs the underlying evaluation once.
//
// The mapper's GA (which revisits encodings across generations) and the
// HTTP evaluation service both store their results through the same Cache
// interface, so a design point evaluated anywhere is evaluated once.
package memo

import (
	"container/list"
	"context"
	"errors"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// HitRate is hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is the memoization interface shared by the mapper and the serve
// subsystem. Implementations must be safe for concurrent use.
type Cache interface {
	// Get returns the cached value for key, if present.
	Get(key string) (any, bool)
	// Put stores a value under key, possibly evicting older entries.
	Put(key string, v any)
	// Len reports the number of resident entries.
	Len() int
	// Stats snapshots the hit/miss/eviction counters.
	Stats() Stats
}

const numShards = 16

// ShardedLRU is a Cache split into independently locked shards, each with
// its own LRU eviction list, so concurrent evaluators do not serialize on
// one mutex.
type ShardedLRU struct {
	shards    [numShards]lruShard
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type lruShard struct {
	mu    sync.Mutex
	cap   int
	items map[string]*list.Element
	order *list.List // front = most recently used
}

type lruEntry struct {
	key string
	v   any
}

// NewShardedLRU builds a cache holding about capacity entries in total
// (rounded up to a multiple of the shard count; capacity <= 0 defaults to
// 4096).
func NewShardedLRU(capacity int) *ShardedLRU {
	if capacity <= 0 {
		capacity = 4096
	}
	perShard := (capacity + numShards - 1) / numShards
	c := &ShardedLRU{}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].items = make(map[string]*list.Element)
		c.shards[i].order = list.New()
	}
	return c
}

func (c *ShardedLRU) shard(key string) *lruShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%numShards]
}

// Get implements Cache.
func (c *ShardedLRU) Get(key string) (any, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	s.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*lruEntry).v, true
}

// Put implements Cache.
func (c *ShardedLRU) Put(key string, v any) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*lruEntry).v = v
		s.order.MoveToFront(el)
		return
	}
	s.items[key] = s.order.PushFront(&lruEntry{key: key, v: v})
	for len(s.items) > s.cap {
		oldest := s.order.Back()
		if oldest == nil {
			break
		}
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*lruEntry).key)
		c.evictions.Add(1)
	}
}

// Len implements Cache.
func (c *ShardedLRU) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}

// Stats implements Cache.
func (c *ShardedLRU) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}

// FlightCache combines a Cache with single-flight execution: Do runs fn at
// most once per key at a time, and concurrent callers for the same key wait
// for the leader's result instead of recomputing it. Followers and cache
// lookups count as hits; only leader executions count as misses, so the hit
// rate reflects evaluations actually avoided.
type FlightCache struct {
	c      Cache
	mu     sync.Mutex
	calls  map[string]*flightCall
	hits   atomic.Uint64
	misses atomic.Uint64
}

type flightCall struct {
	done chan struct{}
	v    any
	err  error
}

// NewFlightCache wraps a Cache (NewShardedLRU(capacity) when c is nil).
func NewFlightCache(c Cache, capacity int) *FlightCache {
	if c == nil {
		c = NewShardedLRU(capacity)
	}
	return &FlightCache{c: c, calls: map[string]*flightCall{}}
}

// Do returns the cached value for key, or computes it with fn. The second
// return reports whether the value was served without running fn in this
// call (a cache hit or a shared in-flight result). Errors are not cached.
// A caller waiting on another caller's in-flight computation gives up with
// ctx.Err() when its own context expires first. A leader failing with a
// context error (its request canceled or out of deadline) says nothing
// about the computation itself, so waiters whose own context is still live
// do not inherit it: they retry, and one becomes the new leader.
func (f *FlightCache) Do(ctx context.Context, key string, fn func() (any, error)) (any, bool, error) {
	for {
		if v, ok := f.c.Get(key); ok {
			f.hits.Add(1)
			return v, true, nil
		}
		f.mu.Lock()
		if call, ok := f.calls[key]; ok {
			f.mu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if call.err != nil {
				if errors.Is(call.err, context.Canceled) || errors.Is(call.err, context.DeadlineExceeded) {
					if err := ctx.Err(); err != nil {
						return nil, false, err
					}
					continue
				}
				return nil, false, call.err
			}
			f.hits.Add(1)
			return call.v, true, nil
		}
		call := &flightCall{done: make(chan struct{})}
		f.calls[key] = call
		f.mu.Unlock()

		call.v, call.err = fn()
		if call.err == nil {
			f.c.Put(key, call.v)
		}
		f.mu.Lock()
		delete(f.calls, key)
		f.mu.Unlock()
		close(call.done)

		f.misses.Add(1)
		if call.err != nil {
			return nil, false, call.err
		}
		return call.v, false, nil
	}
}

// Get implements Cache: a plain lookup counted against the flight-aware
// hit/miss counters. Callers that manage their own computation (instead of
// Do) should pair it with Put.
func (f *FlightCache) Get(key string) (any, bool) {
	if v, ok := f.c.Get(key); ok {
		f.hits.Add(1)
		return v, true
	}
	f.misses.Add(1)
	return nil, false
}

// Put implements Cache, storing directly into the underlying cache.
func (f *FlightCache) Put(key string, v any) { f.c.Put(key, v) }

// Len reports resident entries in the underlying cache.
func (f *FlightCache) Len() int { return f.c.Len() }

// Stats reports single-flight-aware counters: hits include shared in-flight
// results, misses are leader executions; evictions come from the underlying
// cache.
func (f *FlightCache) Stats() Stats {
	return Stats{
		Hits:      f.hits.Load(),
		Misses:    f.misses.Load(),
		Evictions: f.c.Stats().Evictions,
	}
}
