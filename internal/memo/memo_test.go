package memo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLRUBasic(t *testing.T) {
	c := NewShardedLRU(64)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("get a = %v, %v", v, ok)
	}
	c.Put("a", 3) // overwrite
	if v, _ := c.Get("a"); v.(int) != 3 {
		t.Fatalf("overwrite lost: %v", v)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats %+v", st)
	}
	if c.Len() != 2 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	c := NewShardedLRU(numShards) // one entry per shard
	// Fill one shard far past capacity: only the most recent survives.
	var keys []string
	for i := 0; i < 50; i++ {
		keys = append(keys, fmt.Sprintf("k%d", i))
		c.Put(keys[i], i)
	}
	if c.Len() >= 50 {
		t.Fatalf("no eviction: len %d", c.Len())
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatalf("stats %+v", st)
	}
	// Recency: re-touch a resident key, add another to the same shard, and
	// the touched key must survive within its shard. (Exact residency
	// depends on shard hashing, so just check the global invariants.)
	if c.Len() > numShards {
		t.Fatalf("len %d exceeds capacity %d", c.Len(), numShards)
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := NewShardedLRU(1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%97)
				c.Put(key, i)
				c.Get(key)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() == 0 || c.Len() > 97 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestFlightCacheCollapsesConcurrentCalls(t *testing.T) {
	f := NewFlightCache(nil, 128)
	var executions atomic.Int64
	release := make(chan struct{})
	const n = 20
	var wg sync.WaitGroup
	results := make([]any, n)
	hits := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := f.Do(context.Background(), "key", func() (any, error) {
				executions.Add(1)
				<-release // hold the flight open so others pile up
				return "value", nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], hits[i] = v, hit
		}(i)
	}
	close(release)
	wg.Wait()
	if got := executions.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	misses := 0
	for i := range results {
		if results[i].(string) != "value" {
			t.Fatalf("result[%d] = %v", i, results[i])
		}
		if !hits[i] {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d leaders, want 1", misses)
	}
	st := f.Stats()
	if st.Misses != 1 || st.Hits != n-1 {
		t.Fatalf("stats %+v", st)
	}
	// Subsequent call is a plain cache hit.
	if _, hit, _ := f.Do(context.Background(), "key", func() (any, error) { t.Fatal("recomputed"); return nil, nil }); !hit {
		t.Fatal("expected cache hit")
	}
}

// TestFlightCacheFollowerSurvivesLeaderCancel: a leader dying on its own
// canceled context must not fail followers whose contexts are still live —
// one of them retries as the new leader and the rest share its result.
func TestFlightCacheFollowerSurvivesLeaderCancel(t *testing.T) {
	f := NewFlightCache(nil, 16)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	var executions atomic.Int64

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := f.Do(leaderCtx, "k", func() (any, error) {
			executions.Add(1)
			close(leaderIn)
			<-leaderCtx.Done() // simulate a computation aborted by its request
			return nil, leaderCtx.Err()
		})
		if err == nil {
			t.Error("canceled leader: want error")
		}
	}()

	<-leaderIn
	const followers = 4
	results := make([]any, followers)
	errs := make([]error, followers)
	var fwg sync.WaitGroup
	for i := 0; i < followers; i++ {
		fwg.Add(1)
		go func(i int) {
			defer fwg.Done()
			results[i], _, errs[i] = f.Do(context.Background(), "k", func() (any, error) {
				executions.Add(1)
				return "recovered", nil
			})
		}(i)
	}
	// Give the followers a moment to enqueue behind the leader, then kill it.
	time.Sleep(10 * time.Millisecond)
	cancelLeader()
	fwg.Wait()
	wg.Wait()

	for i := 0; i < followers; i++ {
		if errs[i] != nil {
			t.Fatalf("follower %d inherited leader's context error: %v", i, errs[i])
		}
		if results[i].(string) != "recovered" {
			t.Fatalf("follower %d result %v", i, results[i])
		}
	}
	// One canceled leader + exactly one retry leader.
	if got := executions.Load(); got != 2 {
		t.Errorf("fn executed %d times, want 2", got)
	}
}

// TestFlightCacheFollowerKeepsOwnDeadline: a follower whose own context
// expires while waiting still fails with its own error.
func TestFlightCacheFollowerKeepsOwnDeadline(t *testing.T) {
	f := NewFlightCache(nil, 16)
	in := make(chan struct{})
	release := make(chan struct{})
	go f.Do(context.Background(), "k", func() (any, error) {
		close(in)
		<-release
		return "v", nil
	})
	<-in
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, _, err := f.Do(ctx, "k", func() (any, error) { return "late", nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	close(release)
}

func TestFlightCacheErrorNotCached(t *testing.T) {
	f := NewFlightCache(nil, 16)
	boom := fmt.Errorf("boom")
	if _, _, err := f.Do(context.Background(), "k", func() (any, error) { return nil, boom }); err != boom {
		t.Fatalf("err %v", err)
	}
	ran := false
	v, hit, err := f.Do(context.Background(), "k", func() (any, error) { ran = true; return 42, nil })
	if err != nil || hit || !ran || v.(int) != 42 {
		t.Fatalf("retry after error: v=%v hit=%v ran=%v err=%v", v, hit, ran, err)
	}
}
