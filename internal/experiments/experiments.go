// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec 7). Each experiment has a driver returning a structured
// result with a Render method that prints the rows/series the paper
// reports. The cmd/tileflow-exp binary runs them; bench_test.go wraps each
// in a testing.B benchmark.
//
// Absolute numbers are not expected to match the paper (the substrate here
// is a from-scratch model and a software simulator, not the authors'
// testbed); the shapes — who wins, by what factor, where crossovers fall —
// are the reproduction target. EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/mapper"
	"repro/internal/workload"
)

// Config tunes experiment cost. The defaults regenerate every figure on a
// laptop in minutes; Quick mode trims shape lists for tests.
type Config struct {
	// Rounds is the MCTS budget per dataflow tuning (default 200).
	Rounds int
	// Seed fixes all random streams.
	Seed int64
	// Quick trims the workload lists to a representative subset.
	Quick bool
}

func (c Config) rounds() int {
	if c.Rounds > 0 {
		return c.Rounds
	}
	if c.Quick {
		return 80
	}
	return 200
}

// attentionShapes returns the Table 2 list (trimmed in Quick mode).
func (c Config) attentionShapes() []workload.AttentionShape {
	if c.Quick {
		var out []workload.AttentionShape
		for _, n := range []string{"Bert-S", "ViT/16-B", "T5"} {
			s, _ := workload.AttentionShapeByName(n)
			out = append(out, s)
		}
		return out
	}
	return workload.AttentionShapes
}

// convShapes returns the Table 3 list (trimmed in Quick mode).
func (c Config) convShapes() []workload.ConvChainShape {
	if c.Quick {
		return workload.ConvChainShapes[:2]
	}
	return workload.ConvChainShapes
}

// AttentionDataflowNames is the Table 5 comparison set for Figs 10/11.
var AttentionDataflowNames = []string{
	"Layerwise", "Uni-pipe", "FLAT-HGran", "FLAT-RGran", "Chimera", "TileFlow",
}

// attentionDataflow builds a Table 5 attention dataflow by name.
func attentionDataflow(name string, s workload.AttentionShape, spec *arch.Spec) dataflows.Dataflow {
	switch name {
	case "Layerwise":
		return dataflows.LayerwiseAttention(s, spec)
	case "Uni-pipe":
		return dataflows.UniPipe(s, spec)
	case "FLAT-MGran":
		return dataflows.FLATMGran(s, spec)
	case "FLAT-BGran":
		return dataflows.FLATBGran(s, spec)
	case "FLAT-HGran":
		return dataflows.FLATHGran(s, spec)
	case "FLAT-RGran":
		return dataflows.FLATRGran(s, spec)
	case "Chimera":
		return dataflows.Chimera(s, spec)
	case "TileFlow":
		return dataflows.TileFlowAttention(s, spec)
	}
	panic("experiments: unknown attention dataflow " + name)
}

// ConvDataflowNames is the Fig 12 comparison set.
var ConvDataflowNames = []string{"Layerwise", "Fused-Layer", "ISOS", "TileFlow"}

func convDataflow(name string, s workload.ConvChainShape, spec *arch.Spec) dataflows.Dataflow {
	switch name {
	case "Layerwise":
		return dataflows.LayerwiseConv(s, spec)
	case "Fused-Layer":
		return dataflows.FusedLayer(s, spec)
	case "ISOS":
		return dataflows.ISOS(s, spec)
	case "TileFlow":
		return dataflows.TileFlowConv(s, spec)
	}
	panic("experiments: unknown conv dataflow " + name)
}

// tune MCTS-tunes a dataflow's tiling (Sec 7.3: "To ensure a fair
// comparison among different dataflows, we utilize TileFlow's mapper to
// determine the tiling factors for all the different dataflows").
func (c Config) tune(df dataflows.Dataflow, spec *arch.Spec, opts core.Options) *mapper.Evaluation {
	return mapper.Tune(df, spec, opts, c.rounds(), c.Seed+int64(hash(df.Name()+df.Graph().Name)))
}

func hash(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// table is a small aligned-text table builder shared by the Render methods.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) rowf(format string, args ...any) {
	t.rows = append(t.rows, strings.Split(fmt.Sprintf(format, args...), "|"))
}

func (t *table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// geomean computes the geometric mean of positive values (in log space to
// avoid overflow across long lists).
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// sortedKeys returns a map's keys sorted, for deterministic rendering.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
