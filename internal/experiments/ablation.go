package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/workload"
)

// AblationResult isolates two design choices DESIGN.md calls out:
//
//  1. wrap-around retention — the refinement over the paper's "replacement
//     on every outer iteration" assumption (the Fig 8d overestimation);
//  2. the inter-tile binding primitive — the same FLAT-RGran-shaped
//     dataflow under each of Seq/Shar/Para/Pipe.
type AblationResult struct {
	Retention []RetentionRow
	Binding   []BindingRow
}

// RetentionRow reports the no-retention overestimation factor for one
// spatial tile size of the validation matmul.
type RetentionRow struct {
	SpatialTile  int
	DRAMFactor   float64 // no-retention DRAM traffic / with-retention
	EnergyFactor float64
}

// BindingRow reports one binding variant of the row-granularity attention
// dataflow on Edge.
type BindingRow struct {
	Binding    string
	OOM        bool
	Cycles     float64
	DRAM       float64
	L1FootKB   int64
	ComputeCyc float64
}

// Ablation runs both studies.
func Ablation(cfg Config) (*AblationResult, error) {
	res := &AblationResult{}

	// Part 1: retention, over the Fig 8 matmul on the validation machine.
	spec := arch.Validation()
	g := workload.Matmul(256, 256, 256)
	op := g.Ops[0]
	for _, sm := range []int{4, 8, 16} {
		leaf := core.Leaf("leaf", op, core.S("m", sm), core.S("n", sm))
		l1 := core.Tile("l1", 1, core.Seq,
			[]core.Loop{core.T("m", 256/sm), core.T("n", 256/sm), core.T("k", 256)}, leaf)
		root := core.Tile("root", 2, core.Seq, nil, l1)
		with, err := core.Evaluate(root, g, spec, core.Options{SkipCapacityCheck: true})
		if err != nil {
			return nil, err
		}
		without, err := core.Evaluate(root, g, spec, core.Options{SkipCapacityCheck: true, DisableRetention: true})
		if err != nil {
			return nil, err
		}
		res.Retention = append(res.Retention, RetentionRow{
			SpatialTile:  sm,
			DRAMFactor:   without.DRAMTraffic() / with.DRAMTraffic(),
			EnergyFactor: without.EnergyPJ() / with.EnergyPJ(),
		})
	}

	// Part 2: binding, on the Edge attention dataflow.
	shape, _ := workload.AttentionShapeByName("Bert-S")
	edge := arch.Edge()
	for _, b := range []core.Binding{core.Seq, core.Shar, core.Para, core.Pipe} {
		df := dataflows.CustomAttention("RGran-"+b.String(), shape, edge,
			[]string{"b", "h", "m"}, b, true)
		ev := cfg.tune(df, edge, core.Options{})
		row := BindingRow{Binding: b.String()}
		if ev == nil {
			row.OOM = true
		} else {
			row.Cycles = ev.Cycles
			row.DRAM = ev.Result.DRAMTraffic()
			row.L1FootKB = ev.Result.FootprintWords[1] * int64(edge.WordBytes) / 1024
			row.ComputeCyc = ev.Result.ComputeCycles
		}
		res.Binding = append(res.Binding, row)
	}
	return res, nil
}

// Render prints both ablation tables.
func (r *AblationResult) Render() string {
	t1 := newTable("spatial tile", "DRAM overestimation", "energy overestimation")
	for _, row := range r.Retention {
		t1.row(fmt.Sprintf("%dx%d", row.SpatialTile, row.SpatialTile),
			fmt.Sprintf("%.2fx", row.DRAMFactor), fmt.Sprintf("%.2fx", row.EnergyFactor))
	}
	out := "Ablation 1 — wrap-around retention off (the paper's Fig 8d small-tile overestimation)\n" + t1.String()

	t2 := newTable("binding", "cycles", "compute-only", "DRAM words", "L1 staging")
	for _, row := range r.Binding {
		if row.OOM {
			t2.row(row.Binding, "OOM", "-", "-", "-")
			continue
		}
		t2.row(row.Binding,
			fmt.Sprintf("%.4g", row.Cycles), fmt.Sprintf("%.4g", row.ComputeCyc),
			fmt.Sprintf("%.4g", row.DRAM), fmt.Sprintf("%dKB", row.L1FootKB))
	}
	out += "Ablation 2 — inter-tile binding of the row-granularity attention dataflow (Bert-S, Edge)\n" + t2.String()
	return out
}
