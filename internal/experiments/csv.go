package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// WriteCSV saves an experiment's plottable series as a CSV file in dir, so
// the paper's figures can be regenerated with any plotting tool (the
// artifact's role of producing "the resulting figures shown in paper").
// Each result type chooses its own columns.
func WriteCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func f64(x float64) string { return strconv.FormatFloat(x, 'g', 8, 64) }

// CSV exports the Fig 8a/b scatter points.
func (r *Fig8abResult) CSV(dir string) error {
	rows := make([][]string, 0, len(r.CyclePairs))
	for i := range r.CyclePairs {
		rows = append(rows, []string{
			f64(r.CyclePairs[i][0]), f64(r.CyclePairs[i][1]),
			f64(r.EnergyPairs[i][0]), f64(r.EnergyPairs[i][1]),
		})
	}
	return WriteCSV(dir, "fig8ab", []string{"timeloop_cycles", "tileflow_cycles", "timeloop_pj", "tileflow_pj"}, rows)
}

// CSV exports the Fig 8c/d relative points.
func (r *Fig8cdResult) CSV(dir string) error {
	rows := make([][]string, 0, len(r.RelCycles))
	for i := range r.RelCycles {
		rows = append(rows, []string{
			strconv.Itoa(i), f64(r.RelCycles[i][0]), f64(r.RelCycles[i][1]), f64(r.RelEnergy[i]),
		})
	}
	return WriteCSV(dir, "fig8cd", []string{"mapping", "tileflow_rel_cycle", "graphbased_rel_cycle", "tileflow_rel_energy"}, rows)
}

// TracesCSV exports normalized exploration traces (Fig 9).
func TracesCSV(dir, name string, traces []Trace) error {
	if len(traces) == 0 {
		return nil
	}
	header := []string{"round"}
	norm := make([][]float64, len(traces))
	for i, tr := range traces {
		header = append(header, tr.Label)
		norm[i] = tr.Normalized()
	}
	n := len(norm[0])
	rows := make([][]string, 0, n)
	for r := 0; r < n; r++ {
		row := []string{strconv.Itoa(r + 1)}
		for i := range traces {
			j := r
			if j >= len(norm[i]) {
				j = len(norm[i]) - 1
			}
			row = append(row, f64(norm[i][j]))
		}
		rows = append(rows, row)
	}
	return WriteCSV(dir, name, header, rows)
}

// PointsCSV exports a dataflow-comparison point set (Fig 10/11/12).
func PointsCSV(dir, name string, points []DataflowPoint) error {
	rows := make([][]string, 0, len(points))
	for _, pt := range points {
		rows = append(rows, []string{
			pt.Shape, pt.Dataflow, fmt.Sprintf("%v", pt.OOM),
			f64(pt.Cycles), f64(pt.DRAM), f64(pt.OnChip), f64(pt.L2), f64(pt.L1PerSubcore),
			f64(pt.Utilization), f64(pt.EnergyPJ),
			f64(pt.FillL1), f64(pt.ReadL1), f64(pt.UpdateL1),
		})
	}
	return WriteCSV(dir, name, []string{
		"shape", "dataflow", "oom", "cycles", "dram_words", "onchip_words",
		"l2_words", "l1_per_subcore", "utilization", "energy_pj",
		"l1_fill", "l1_read", "l1_update",
	}, rows)
}

// BandwidthCSV exports the Fig 14 slow-down curves.
func BandwidthCSV(dir string, traces []BandwidthTrace) error {
	var rows [][]string
	for _, tr := range traces {
		for _, p := range tr.Points {
			rows = append(rows, []string{tr.Chain, tr.Dataflow, f64(p.BWGBs), f64(p.SlowDown)})
		}
	}
	return WriteCSV(dir, "fig14", []string{"chain", "dataflow", "l1_bw_gbs", "slowdown"}, rows)
}
