package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/mapper"
	"repro/internal/workload"
)

// Trace is one best-so-far exploration trace, normalized to its final value
// like the Fig 9 plots (higher is closer to converged).
type Trace struct {
	Label  string
	Cycles []float64
}

// Normalized returns best-final/best-so-far per round, the paper's
// "normalized performance" axis (1.0 = converged).
func (t Trace) Normalized() []float64 {
	out := make([]float64, len(t.Cycles))
	final := t.Cycles[len(t.Cycles)-1]
	for i, c := range t.Cycles {
		if c > 0 {
			out[i] = final / c
		}
	}
	return out
}

// Fig9aResult is the tiling-factor tuning experiment: the MCTS trace for
// each Table 5 dataflow on Bert-S / Edge.
type Fig9aResult struct {
	Traces []Trace
}

// Fig9a runs the factor-tuning traces.
func Fig9a(cfg Config) (*Fig9aResult, error) {
	spec := arch.Edge()
	shape, _ := workload.AttentionShapeByName("Bert-S")
	res := &Fig9aResult{}
	for _, name := range AttentionDataflowNames {
		df := attentionDataflow(name, shape, spec)
		s := &mapper.TileSearch{Dataflow: df, Spec: spec, Rounds: cfg.rounds(), Seed: cfg.Seed + 11}
		best, trace := s.Run()
		if best == nil {
			continue
		}
		res.Traces = append(res.Traces, Trace{Label: name, Cycles: trace})
	}
	return res, nil
}

// Render prints sampled points of each trace.
func (r *Fig9aResult) Render() string {
	return renderTraces("Fig 9a — tiling-factor tuning traces (Bert-S, Edge)", r.Traces)
}

// Fig9bcResult is the full 3D-space exploration: GA over ordering/binding
// with MCTS tiling per individual.
type Fig9bcResult struct {
	Title  string
	Traces []Trace
	// BestEncodings records the winning ordering/binding per workload.
	BestEncodings map[string]string
}

// Fig9b runs the 3D-space exploration for the self-attention shapes on
// Edge.
func Fig9b(cfg Config) (*Fig9bcResult, error) {
	spec := arch.Edge()
	res := &Fig9bcResult{Title: "Fig 9b — 3D-space tuning, self-attention (Edge)", BestEncodings: map[string]string{}}
	gens := 12
	if cfg.Quick {
		gens = 6
	}
	for _, shape := range cfg.attentionShapes() {
		g := workload.Attention(shape)
		s := &mapper.TreeSearch{
			G: g, Spec: spec,
			Population: 12, Generations: gens, TileRounds: 40,
			Seed: cfg.Seed + int64(hash(shape.Name)),
		}
		out := s.Run()
		if out.Best == nil {
			continue
		}
		res.Traces = append(res.Traces, Trace{Label: shape.Name, Cycles: out.Trace})
		res.BestEncodings[shape.Name] = out.Encoding.String()
	}
	return res, nil
}

// Fig9c runs the 3D-space exploration for the convolution chains on Cloud.
func Fig9c(cfg Config) (*Fig9bcResult, error) {
	spec := arch.Cloud()
	res := &Fig9bcResult{Title: "Fig 9c — 3D-space tuning, conv chains (Cloud)", BestEncodings: map[string]string{}}
	gens := 12
	if cfg.Quick {
		gens = 6
	}
	for _, shape := range cfg.convShapes() {
		g := workload.ConvChain(shape)
		s := &mapper.TreeSearch{
			G: g, Spec: spec,
			Population: 12, Generations: gens, TileRounds: 40,
			Seed: cfg.Seed + int64(hash(shape.Name)),
		}
		out := s.Run()
		if out.Best == nil {
			continue
		}
		res.Traces = append(res.Traces, Trace{Label: shape.Name, Cycles: out.Trace})
		res.BestEncodings[shape.Name] = out.Encoding.String()
	}
	return res, nil
}

// Render prints traces plus the discovered orderings.
func (r *Fig9bcResult) Render() string {
	out := renderTraces(r.Title, r.Traces)
	t := newTable("workload", "best ordering/binding encoding")
	for _, k := range sortedKeys(r.BestEncodings) {
		t.row(k, r.BestEncodings[k])
	}
	return out + "discovered dataflows\n" + t.String()
}

func renderTraces(title string, traces []Trace) string {
	if len(traces) == 0 {
		return title + "\n(no traces)\n"
	}
	t := newTable(append([]string{"round"}, tracesHeader(traces)...)...)
	n := len(traces[0].Cycles)
	samples := []int{0, n / 8, n / 4, n / 2, 3 * n / 4, n - 1}
	seen := map[int]bool{}
	for _, i := range samples {
		if i < 0 || i >= n || seen[i] {
			continue
		}
		seen[i] = true
		cells := []string{fmt.Sprintf("%d", i+1)}
		for _, tr := range traces {
			norm := tr.Normalized()
			j := i
			if j >= len(norm) {
				j = len(norm) - 1
			}
			cells = append(cells, fmt.Sprintf("%.3f", norm[j]))
		}
		t.row(cells...)
	}
	return title + " (normalized performance, 1.0 = converged)\n" + t.String()
}

func tracesHeader(traces []Trace) []string {
	var out []string
	for _, t := range traces {
		out = append(out, t.Label)
	}
	return out
}
