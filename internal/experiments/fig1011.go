package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// DataflowPoint is one (shape, dataflow) evaluation with mapper-tuned
// tiling factors.
type DataflowPoint struct {
	Shape    string
	Dataflow string
	// OOM marks mappings for which no capacity-respecting tiling exists.
	OOM    bool
	Cycles float64
	// DRAM is off-chip traffic in words; OnChip sums all on-chip levels;
	// L2 and L1PerSubcore split it for the Cloud plots.
	DRAM, OnChip   float64
	L2             float64
	L1PerSubcore   float64
	Utilization    float64
	EnergyPJ       float64
	FillL1, ReadL1 float64
	UpdateL1       float64
	FootprintL1KB  int64
}

// AttentionComparison is the Fig 10 (Edge) / Fig 11 (Cloud) experiment:
// every Table 5 dataflow on every Table 2 shape, tiling tuned per point.
type AttentionComparison struct {
	Spec   string
	Points []DataflowPoint
	// Speedups holds each dataflow's geometric-mean speedup over
	// Layerwise across shapes.
	Speedups map[string]float64
	// DRAMReduction holds each dataflow's mean DRAM traffic reduction vs
	// Layerwise.
	DRAMReduction map[string]float64
}

// RunAttentionComparison evaluates the comparison on the given accelerator.
func RunAttentionComparison(cfg Config, spec *arch.Spec) (*AttentionComparison, error) {
	res := &AttentionComparison{
		Spec:          spec.Name,
		Speedups:      map[string]float64{},
		DRAMReduction: map[string]float64{},
	}
	type agg struct{ speedups, reductions []float64 }
	aggs := map[string]*agg{}

	shapes := cfg.attentionShapes()
	if spec.NumLevels() >= 4 && !cfg.Quick {
		// Fig 11 uses the nine Bert/ViT shapes (no T5/XLM).
		shapes = shapes[:9]
	}
	for _, shape := range shapes {
		var layer *DataflowPoint
		for _, name := range AttentionDataflowNames {
			df := attentionDataflow(name, shape, spec)
			ev := cfg.tune(df, spec, core.Options{})
			pt := DataflowPoint{Shape: shape.Name, Dataflow: name}
			if ev == nil {
				pt.OOM = true
				res.Points = append(res.Points, pt)
				continue
			}
			fill(&pt, ev.Result, spec)
			res.Points = append(res.Points, pt)
			if name == "Layerwise" {
				layer = &res.Points[len(res.Points)-1]
				continue
			}
			if layer != nil && !pt.OOM {
				a := aggs[name]
				if a == nil {
					a = &agg{}
					aggs[name] = a
				}
				a.speedups = append(a.speedups, layer.Cycles/pt.Cycles)
				if layer.DRAM > 0 {
					a.reductions = append(a.reductions, 1-pt.DRAM/layer.DRAM)
				}
			}
		}
	}
	for name, a := range aggs {
		res.Speedups[name] = geomean(a.speedups)
		var s float64
		for _, r := range a.reductions {
			s += r
		}
		if len(a.reductions) > 0 {
			res.DRAMReduction[name] = s / float64(len(a.reductions))
		}
	}
	return res, nil
}

func fill(pt *DataflowPoint, r *core.Result, spec *arch.Spec) {
	pt.Cycles = r.Cycles
	pt.DRAM = r.DRAMTraffic()
	pt.OnChip = r.OnChipTraffic()
	pt.Utilization = r.Utilization
	pt.EnergyPJ = r.EnergyPJ()
	pt.FillL1 = r.DM[1].Fill
	pt.ReadL1 = r.DM[1].Read
	pt.UpdateL1 = r.DM[1].Update
	pt.FootprintL1KB = r.FootprintWords[1] * int64(spec.WordBytes) / 1024
	if spec.NumLevels() >= 4 {
		pt.L2 = r.DM[2].Total()
		pt.L1PerSubcore = r.DM[1].Total() / float64(spec.Instances(1))
	}
}

// Render prints the normalized-cycle / DRAM / on-chip DM tables of
// Fig 10a–c or Fig 11a–d, plus the per-dataflow summary.
func (r *AttentionComparison) Render() string {
	var b []byte
	title := "Fig 10 — self-attention dataflows on Edge"
	if r.Spec != "Edge" {
		title = "Fig 11 — self-attention dataflows on " + r.Spec
	}
	b = append(b, (title + "\n")...)

	byShape := map[string]map[string]DataflowPoint{}
	for _, pt := range r.Points {
		if byShape[pt.Shape] == nil {
			byShape[pt.Shape] = map[string]DataflowPoint{}
		}
		byShape[pt.Shape][pt.Dataflow] = pt
	}
	t := newTable(append([]string{"shape"}, AttentionDataflowNames...)...)
	for _, shape := range sortedKeys(byShape) {
		cells := []string{shape}
		layer := byShape[shape]["Layerwise"]
		for _, name := range AttentionDataflowNames {
			pt := byShape[shape][name]
			if pt.OOM {
				cells = append(cells, "OOM")
			} else if layer.Cycles > 0 {
				cells = append(cells, fmt.Sprintf("%.3f", pt.Cycles/layer.Cycles))
			} else {
				cells = append(cells, fmt.Sprintf("%.3g", pt.Cycles))
			}
		}
		t.row(cells...)
	}
	b = append(b, ("part a) normalized cycles (vs Layerwise)\n" + t.String())...)

	t2 := newTable(append([]string{"shape"}, AttentionDataflowNames...)...)
	for _, shape := range sortedKeys(byShape) {
		cells := []string{shape}
		layer := byShape[shape]["Layerwise"]
		for _, name := range AttentionDataflowNames {
			pt := byShape[shape][name]
			if pt.OOM {
				cells = append(cells, "OOM")
			} else if layer.DRAM > 0 {
				cells = append(cells, fmt.Sprintf("%.3f", pt.DRAM/layer.DRAM))
			} else {
				cells = append(cells, fmt.Sprintf("%.3g", pt.DRAM))
			}
		}
		t2.row(cells...)
	}
	b = append(b, ("part b) normalized DRAM data movement\n" + t2.String())...)

	t3 := newTable(append([]string{"shape"}, AttentionDataflowNames...)...)
	for _, shape := range sortedKeys(byShape) {
		cells := []string{shape}
		layer := byShape[shape]["Layerwise"]
		for _, name := range AttentionDataflowNames {
			pt := byShape[shape][name]
			switch {
			case pt.OOM:
				cells = append(cells, "OOM")
			case layer.OnChip > 0:
				cells = append(cells, fmt.Sprintf("%.2f", pt.OnChip/layer.OnChip))
			default:
				cells = append(cells, fmt.Sprintf("%.3g", pt.OnChip))
			}
		}
		t3.row(cells...)
	}
	b = append(b, ("part c) normalized on-chip data movement\n" + t3.String())...)

	t4 := newTable("dataflow", "geomean speedup vs Layerwise", "mean DRAM reduction", "utilization(first shape)")
	for _, name := range AttentionDataflowNames[1:] {
		util := ""
		for _, pt := range r.Points {
			if pt.Dataflow == name && !pt.OOM {
				util = fmt.Sprintf("%.2f", pt.Utilization)
				break
			}
		}
		t4.row(name, fmt.Sprintf("%.2fx", r.Speedups[name]), fmt.Sprintf("%.1f%%", 100*r.DRAMReduction[name]), util)
	}
	b = append(b, ("summary\n" + t4.String())...)
	return string(b)
}

// BreakdownRow is the Fig 10d L1 traffic split for one dataflow.
type BreakdownRow struct {
	Dataflow                 string
	FillPct, ReadPct, UpdPct float64
}

// Fig10dBreakdown computes the Bert-B L1 data-movement breakdown on Edge.
func Fig10dBreakdown(cfg Config) ([]BreakdownRow, error) {
	spec := arch.Edge()
	shape, _ := workload.AttentionShapeByName("Bert-B")
	var rows []BreakdownRow
	for _, name := range AttentionDataflowNames {
		df := attentionDataflow(name, shape, spec)
		ev := cfg.tune(df, spec, core.Options{})
		if ev == nil {
			continue
		}
		l1 := ev.Result.DM[1]
		total := l1.Total()
		if total == 0 {
			continue
		}
		rows = append(rows, BreakdownRow{
			Dataflow: name,
			FillPct:  100 * l1.Fill / total,
			ReadPct:  100 * l1.Read / total,
			UpdPct:   100 * l1.Update / total,
		})
	}
	return rows, nil
}

// RenderBreakdown prints Fig 10d.
func RenderBreakdown(rows []BreakdownRow) string {
	t := newTable("dataflow", "fill%", "read%", "update%")
	for _, r := range rows {
		t.row(r.Dataflow, fmt.Sprintf("%.1f", r.FillPct), fmt.Sprintf("%.1f", r.ReadPct), fmt.Sprintf("%.1f", r.UpdPct))
	}
	return "Fig 10d — L1 data-movement breakdown (Bert-B, Edge; paper: 80.9% read, 14.7% update)\n" + t.String()
}
