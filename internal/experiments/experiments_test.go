package experiments

import (
	"strings"
	"testing"

	"repro/internal/arch"
)

var quick = Config{Quick: true, Seed: 1}

func TestFig8ab(t *testing.T) {
	r, err := Fig8ab(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.Points < 50 {
		t.Fatalf("only %d points", r.Points)
	}
	if r.CycleR2 < 0.99 {
		t.Errorf("cycle R² %.4f, want ≥ 0.99 (paper 0.999)", r.CycleR2)
	}
	if r.EnergyMeanErr > 0.05 {
		t.Errorf("energy err %.4f, want ≤ 0.05 (paper 0.001)", r.EnergyMeanErr)
	}
	t.Log("\n" + r.Render())
}

func TestFig8cd(t *testing.T) {
	r, err := Fig8cd(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mappings < 4 {
		t.Fatalf("only %d mappings", r.Mappings)
	}
	if r.TileFlowCycleErr > 0.20 {
		t.Errorf("TileFlow cycle err %.3f, want ≤ 0.20 (paper 0.054)", r.TileFlowCycleErr)
	}
	if r.GraphBasedErr < r.TileFlowCycleErr {
		t.Errorf("graph-based err %.3f should exceed tree-based %.3f", r.GraphBasedErr, r.TileFlowCycleErr)
	}
	if r.TileFlowEnergyErr > 0.20 {
		t.Errorf("TileFlow energy err %.3f, want ≤ 0.20 (paper 0.061)", r.TileFlowEnergyErr)
	}
	t.Log("\n" + r.Render())
}

func TestFig10EdgeShape(t *testing.T) {
	r, err := RunAttentionComparison(quick, arch.Edge())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's ordering: TileFlow best, Layerwise worst, fusion
	// dataflows cut DRAM traffic by most of an order of magnitude.
	if r.Speedups["TileFlow"] <= 1.5 {
		t.Errorf("TileFlow speedup %.2f, want > 1.5 (paper 6.65)", r.Speedups["TileFlow"])
	}
	if r.Speedups["TileFlow"] <= r.Speedups["FLAT-HGran"] {
		t.Errorf("TileFlow %.2f must beat FLAT-HGran %.2f (paper: 1.85x apart)",
			r.Speedups["TileFlow"], r.Speedups["FLAT-HGran"])
	}
	for _, name := range []string{"FLAT-HGran", "FLAT-RGran", "TileFlow"} {
		if red := r.DRAMReduction[name]; red < 0.5 {
			t.Errorf("%s DRAM reduction %.2f, want ≥ 0.5 (paper 0.75-0.90)", name, red)
		}
	}
	t.Log("\n" + r.Render())
}

func TestFig10dBreakdown(t *testing.T) {
	rows, err := Fig10dBreakdown(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Reads dominate L1 traffic (paper: 80.9% read on average).
	var readSum float64
	for _, r := range rows {
		readSum += r.ReadPct
	}
	if avg := readSum / float64(len(rows)); avg < 50 {
		t.Errorf("average read share %.1f%%, want ≥ 50%% (paper 80.9%%)", avg)
	}
	t.Log("\n" + RenderBreakdown(rows))
}

func TestFig12Shape(t *testing.T) {
	r, err := RunConvComparison(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedups["TileFlow"] <= 1.0 {
		t.Errorf("TileFlow conv speedup %.2f, want > 1 (paper 1.59)", r.Speedups["TileFlow"])
	}
	if r.Speedups["TileFlow"] <= r.Speedups["Fused-Layer"] {
		t.Errorf("TileFlow %.2f must beat Fused-Layer %.2f (paper 1.59 vs 1.01)",
			r.Speedups["TileFlow"], r.Speedups["Fused-Layer"])
	}
	// Fused-Layer cuts DRAM traffic substantially even when latency is
	// flat (paper: 73% DRAM reduction at 1.01x speedup).
	for _, pt := range r.Points {
		if pt.Dataflow != "Fused-Layer" || pt.OOM {
			continue
		}
		var layer DataflowPoint
		for _, q := range r.Points {
			if q.Shape == pt.Shape && q.Dataflow == "Layerwise" {
				layer = q
			}
		}
		if layer.DRAM > 0 && pt.DRAM > 0.7*layer.DRAM {
			t.Errorf("%s Fused-Layer DRAM %.3g not well below Layerwise %.3g", pt.Shape, pt.DRAM, layer.DRAM)
		}
	}
	t.Log("\n" + r.Render())
}

func TestFig13Shape(t *testing.T) {
	rows, err := Fig13(quick)
	if err != nil {
		t.Fatal(err)
	}
	// The key shape: growing L1 from 200KB to 1MB shifts the breakdown
	// toward L1 energy.
	var small, large []float64
	for _, r := range rows {
		if r.L1 == "200KB" {
			small = append(small, r.L1Pct)
		} else {
			large = append(large, r.L1Pct)
		}
	}
	avg := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if len(small) == 0 || len(large) == 0 {
		t.Fatal("missing rows")
	}
	if avg(large) <= avg(small) {
		t.Errorf("L1 share must grow with capacity: 200KB %.1f%% vs 1MB %.1f%%", avg(small), avg(large))
	}
	t.Log("\n" + RenderFig13(rows))
}

func TestFig14Shape(t *testing.T) {
	traces, err := Fig14(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("no traces")
	}
	for _, tr := range traces {
		if len(tr.Points) < 3 {
			t.Fatalf("%s/%s: only %d points", tr.Chain, tr.Dataflow, len(tr.Points))
		}
		// Slow-down is non-increasing in bandwidth.
		for i := 1; i < len(tr.Points); i++ {
			if tr.Points[i].SlowDown > tr.Points[i-1].SlowDown+1e-9 {
				t.Errorf("%s/%s: slow-down increases with bandwidth", tr.Chain, tr.Dataflow)
			}
		}
		if tr.Points[0].SlowDown <= 1 {
			t.Errorf("%s/%s: no slow-down at 1 GB/s?", tr.Chain, tr.Dataflow)
		}
	}
	// Note: the paper's Fig 14 has TileFlow demanding MORE bandwidth than
	// Fused-Layer (faster compute raises demand); our eviction model
	// charges Fused-Layer's Seq refetches more heavily, which can invert
	// the ordering — see EXPERIMENTS.md. Only monotonicity and a real
	// low-bandwidth slow-down are asserted.
	t.Log("\n" + RenderFig14(traces))
}

func TestTable6Shape(t *testing.T) {
	rows, err := Table6(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatal("too few rows")
	}
	// Cycles decrease (weakly) with PE count until the bandwidth bound.
	for i := 1; i < len(rows); i++ {
		if !rows[i].TileFlowOOM && !rows[i-1].TileFlowOOM &&
			rows[i].TileFlowMCyc > rows[i-1].TileFlowMCyc*1.05 {
			t.Errorf("TileFlow cycles grew with PE size: %v -> %v", rows[i-1], rows[i])
		}
	}
	t.Log("\n" + RenderTable6(rows))
}

func TestTable7Shape(t *testing.T) {
	r, err := Table7(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Memory-limited scenario: MGran and BGran must OOM (paper part c).
	lim := map[string]Table7Cell{}
	for _, c := range r.Limited {
		lim[c.Dataflow] = c
	}
	if !lim["FLAT-MGran"].OOM {
		t.Error("FLAT-MGran should OOM under the memory limit")
	}
	if !lim["FLAT-BGran"].OOM {
		t.Error("FLAT-BGran should OOM under the memory limit")
	}
	if lim["TileFlow"].OOM {
		t.Error("TileFlow should fit under the memory limit")
	}
	// Finer granularity needs less L1 (explored, no limit).
	exp := map[string]Table7Cell{}
	for _, c := range r.Explored {
		exp[c.Dataflow] = c
	}
	if h, rg := exp["FLAT-HGran"], exp["FLAT-RGran"]; !h.OOM && !rg.OOM && rg.L1MB > h.L1MB {
		t.Errorf("RGran L1 %.2fMB should not exceed HGran %.2fMB", rg.L1MB, h.L1MB)
	}
	t.Log("\n" + RenderTable7(r))
}

func TestTable8Shape(t *testing.T) {
	rows, err := Table8(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SeqLen == 262144 && !r.BaseOOM {
			t.Errorf("%s @256k: baseline should OOM (FLAT stages a full softmax row)", r.Model)
		}
		if r.TFOOM {
			t.Errorf("%s @%d: TileFlow should never OOM", r.Model, r.SeqLen)
		}
		if !r.BaseOOM && !r.TFOOM && r.TileFlowMs >= r.BaselineMs {
			t.Errorf("%s @%d: TileFlow %.2fms not below baseline %.2fms", r.Model, r.SeqLen, r.TileFlowMs, r.BaselineMs)
		}
	}
	t.Log("\n" + RenderTable8(rows))
}

func TestFig9aTraces(t *testing.T) {
	r, err := Fig9a(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Traces) < 4 {
		t.Fatalf("only %d traces", len(r.Traces))
	}
	out := r.Render()
	if !strings.Contains(out, "TileFlow") {
		t.Error("render missing TileFlow trace")
	}
	t.Log("\n" + out)
}

func TestAblation(t *testing.T) {
	r, err := Ablation(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Retention) != 3 || len(r.Binding) != 4 {
		t.Fatalf("rows: %d retention, %d binding", len(r.Retention), len(r.Binding))
	}
	// Overestimation is worst for the smallest tiles and at least 1x
	// everywhere.
	for i := 1; i < len(r.Retention); i++ {
		if r.Retention[i].EnergyFactor > r.Retention[i-1].EnergyFactor+1e-9 {
			t.Errorf("overestimation should shrink with tile size: %+v", r.Retention)
		}
	}
	if r.Retention[0].EnergyFactor <= 1 {
		t.Errorf("small tiles show no overestimation: %+v", r.Retention[0])
	}
	// Pipe overlaps compute: its compute-only latency must be the lowest.
	byName := map[string]BindingRow{}
	for _, b := range r.Binding {
		byName[b.Binding] = b
	}
	if p, s := byName["Pipe"], byName["Seq"]; !p.OOM && !s.OOM && p.ComputeCyc >= s.ComputeCyc {
		t.Errorf("Pipe compute %v not below Seq %v", p.ComputeCyc, s.ComputeCyc)
	}
	// Seq eviction moves at least as much DRAM data as Shar retention.
	if q, h := byName["Seq"], byName["Shar"]; !q.OOM && !h.OOM && q.DRAM < h.DRAM-0.5 {
		t.Errorf("Seq DRAM %v below Shar %v", q.DRAM, h.DRAM)
	}
	t.Log("\n" + r.Render())
}

func TestFig9bTraces(t *testing.T) {
	r, err := Fig9b(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Traces) == 0 {
		t.Fatal("no traces")
	}
	for _, tr := range r.Traces {
		norm := tr.Normalized()
		if last := norm[len(norm)-1]; last != 1.0 {
			t.Errorf("%s: trace does not end converged: %v", tr.Label, last)
		}
		for i := 1; i < len(norm); i++ {
			if norm[i] < norm[i-1]-1e-9 {
				t.Errorf("%s: normalized trace not monotone", tr.Label)
			}
		}
	}
	if len(r.BestEncodings) != len(r.Traces) {
		t.Errorf("encodings %d != traces %d", len(r.BestEncodings), len(r.Traces))
	}
	t.Log("\n" + r.Render())
}

func TestFig9cDiscoversPipelinedFusion(t *testing.T) {
	r, err := Fig9c(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Traces) == 0 {
		t.Fatal("no traces")
	}
	// The full-size run (results_full.txt) discovers the pipelined fusion
	// (op0->op1@L1:Pipe) for 4 of 5 chains; under the quick budget a
	// layerwise tie may win, so only convergence is asserted here.
	for _, tr := range r.Traces {
		norm := tr.Normalized()
		if norm[len(norm)-1] != 1.0 {
			t.Errorf("%s: trace does not end converged", tr.Label)
		}
	}
	t.Log("\n" + r.Render())
}
