package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/workload"
)

// Table6Row is one column of Table 6: cycles (in 10⁶) for one PE array
// size, baseline (FLAT-RGran) vs TileFlow.
type Table6Row struct {
	PESize       int // mesh edge (8..256)
	BaselineMCyc float64
	TileFlowMCyc float64
	BaselineOOM  bool
	TileFlowOOM  bool
}

// Table6 sweeps the per-core PE array from 8×8 to 256×256 on the Edge
// accelerator for Bert-B self-attention. The paper's shape: TileFlow is
// ~2× the baseline at small arrays, and both converge to the same
// bandwidth-bound optimum once the array is large enough.
func Table6(cfg Config) ([]Table6Row, error) {
	shape, _ := workload.AttentionShapeByName("Bert-B")
	var rows []Table6Row
	sizes := []int{8, 16, 32, 64, 128, 256}
	if cfg.Quick {
		sizes = []int{8, 32, 128}
	}
	for _, pe := range sizes {
		spec := arch.Edge().WithPEMesh(pe, pe)
		row := Table6Row{PESize: pe}
		if ev := cfg.tune(attentionDataflow("FLAT-RGran", shape, spec), spec, core.Options{}); ev != nil {
			row.BaselineMCyc = ev.Cycles / 1e6
		} else {
			row.BaselineOOM = true
		}
		if ev := cfg.tune(attentionDataflow("TileFlow", shape, spec), spec, core.Options{}); ev != nil {
			row.TileFlowMCyc = ev.Cycles / 1e6
		} else {
			row.TileFlowOOM = true
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable6 prints Table 6.
func RenderTable6(rows []Table6Row) string {
	t := newTable("PE size", "baseline (10^6 cyc)", "TileFlow (10^6 cyc)", "speedup")
	for _, r := range rows {
		base, tf := fmt.Sprintf("%.3f", r.BaselineMCyc), fmt.Sprintf("%.3f", r.TileFlowMCyc)
		sp := "-"
		if r.BaselineOOM {
			base = "OOM"
		}
		if r.TileFlowOOM {
			tf = "OOM"
		}
		if !r.BaselineOOM && !r.TileFlowOOM && r.TileFlowMCyc > 0 {
			sp = fmt.Sprintf("%.2fx", r.BaselineMCyc/r.TileFlowMCyc)
		}
		t.row(fmt.Sprintf("%d^2", r.PESize), base, tf, sp)
	}
	return "Table 6 — PE-array-size sweep, Bert-B attention on Edge (paper: ~2x at small arrays, equal at large)\n" + t.String()
}

// Table7DataflowNames is the granularity ladder of Table 7.
var Table7DataflowNames = []string{"FLAT-MGran", "FLAT-BGran", "FLAT-HGran", "FLAT-RGran", "TileFlow"}

// Table7Cell is one dataflow's result in one Table 7 scenario.
type Table7Cell struct {
	Dataflow string
	OOM      bool
	MCycles  float64
	L1MB     float64
	L2MB     float64
}

// Table7Result holds the three scenarios of Table 7.
type Table7Result struct {
	Fixed    []Table7Cell // part a: fixed factors, no memory limit
	Explored []Table7Cell // part b: tuned factors, no memory limit
	Limited  []Table7Cell // part c: tuned factors, capacity enforced
}

// Table7 compares the FLAT granularities against TileFlow for T5 with batch
// 128 on the Cloud accelerator, with and without tiling exploration and
// memory limits (Sec 7.5).
func Table7(cfg Config) (*Table7Result, error) {
	shape, _ := workload.AttentionShapeByName("T5")
	shape.Batch = 128
	spec := arch.Cloud()
	res := &Table7Result{}

	eval := func(name string, factors map[string]int, opts core.Options) Table7Cell {
		df := attentionDataflow(name, shape, spec)
		cell := Table7Cell{Dataflow: name}
		root, err := df.Build(factors)
		if err != nil {
			cell.OOM = true
			return cell
		}
		r, err := core.Evaluate(root, df.Graph(), spec, opts)
		if err != nil {
			cell.OOM = true
			return cell
		}
		cell.MCycles = r.Cycles / 1e6
		cell.L1MB = float64(r.FootprintWords[1]) * float64(spec.WordBytes) / (1 << 20)
		cell.L2MB = float64(r.FootprintWords[2]) * float64(spec.WordBytes) / (1 << 20)
		return cell
	}
	tuneCell := func(name string, opts core.Options) Table7Cell {
		df := attentionDataflow(name, shape, spec)
		ev := cfg.tune(df, spec, opts)
		cell := Table7Cell{Dataflow: name}
		if ev == nil {
			cell.OOM = true
			return cell
		}
		cell.MCycles = ev.Result.Cycles / 1e6
		cell.L1MB = float64(ev.Result.FootprintWords[1]) * float64(spec.WordBytes) / (1 << 20)
		cell.L2MB = float64(ev.Result.FootprintWords[2]) * float64(spec.WordBytes) / (1 << 20)
		return cell
	}

	for _, name := range Table7DataflowNames {
		df := attentionDataflow(name, shape, spec)
		res.Fixed = append(res.Fixed, eval(name, df.DefaultFactors(), core.Options{SkipCapacityCheck: true}))
		res.Explored = append(res.Explored, tuneCell(name, core.Options{SkipCapacityCheck: true}))
		res.Limited = append(res.Limited, tuneCell(name, core.Options{}))
	}
	return res, nil
}

// RenderTable7 prints the three scenarios.
func RenderTable7(r *Table7Result) string {
	render := func(title string, cells []Table7Cell) string {
		t := newTable("dataflow", "cycles (10^6)", "L1 used (MB)", "L2 used (MB)")
		for _, c := range cells {
			if c.OOM {
				t.row(c.Dataflow, "OOM", "-", "-")
				continue
			}
			t.row(c.Dataflow, fmt.Sprintf("%.2f", c.MCycles), fmt.Sprintf("%.2f", c.L1MB), fmt.Sprintf("%.2f", c.L2MB))
		}
		return title + "\n" + t.String()
	}
	out := "Table 7 — FLAT granularities vs TileFlow, T5 batch 128 on Cloud\n"
	out += render("part a) fixed tiling factors, no memory limit", r.Fixed)
	out += render("part b) explored tiling, no memory limit", r.Explored)
	out += render("part c) explored tiling, memory limit enforced (paper: MGran and BGran OOM)", r.Limited)
	return out
}

// Table8Row is one (model, seq_len) cell of Table 8.
type Table8Row struct {
	Model      string
	SeqLen     int
	BaselineMs float64
	TileFlowMs float64
	BaseOOM    bool
	TFOOM      bool
}

// Table8 evaluates the FLAT-RGran baseline and the TileFlow dataflow for
// T5/XLM attention with long sequences on the A100-like specification (the
// GPU substitution). The paper's shape: TileFlow wins everywhere and the
// baseline runs out of (shared) memory at 256k sequence length because FLAT
// must stage at least one full softmax row on chip.
func Table8(cfg Config) ([]Table8Row, error) {
	seqs := []int{1024, 4096, 16384, 65536, 262144}
	if cfg.Quick {
		seqs = []int{1024, 262144}
	}
	models := []struct {
		name   string
		heads  int
		hidden int
	}{
		{"T5", 16, 1024},
		{"XLM", 12, 768},
	}
	spec := arch.A100Like()
	// The TileFlow template's 8-factor space over long sequences needs a
	// larger search budget than the comparison experiments.
	big := cfg
	if big.Rounds < 400 {
		big.Rounds = 400
	}
	var rows []Table8Row
	for _, mdl := range models {
		for _, seq := range seqs {
			shape := workload.AttentionShape{
				Name: fmt.Sprintf("%s-%dk", mdl.name, seq/1024), Model: mdl.name,
				Heads: mdl.heads, SeqLen: seq, Hidden: mdl.hidden, Batch: 1,
			}
			row := Table8Row{Model: mdl.name, SeqLen: seq}
			if ev := big.tune(dataflows.FLATRGran(shape, spec), spec, core.Options{}); ev != nil {
				row.BaselineMs = ev.Cycles / (spec.FreqGHz * 1e9) * 1e3
			} else {
				row.BaseOOM = true
			}
			if ev := big.tune(dataflows.TileFlowAttention(shape, spec), spec, core.Options{}); ev != nil {
				row.TileFlowMs = ev.Cycles / (spec.FreqGHz * 1e9) * 1e3
			} else {
				row.TFOOM = true
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderTable8 prints Table 8.
func RenderTable8(rows []Table8Row) string {
	t := newTable("model", "seq_len", "baseline (ms)", "TileFlow (ms)", "speedup")
	for _, r := range rows {
		base, tf, sp := fmt.Sprintf("%.2f", r.BaselineMs), fmt.Sprintf("%.2f", r.TileFlowMs), "-"
		if r.BaseOOM {
			base = "OOM"
		}
		if r.TFOOM {
			tf = "OOM"
		}
		if !r.BaseOOM && !r.TFOOM && r.TileFlowMs > 0 {
			sp = fmt.Sprintf("%.2fx", r.BaselineMs/r.TileFlowMs)
		}
		t.row(r.Model, fmt.Sprintf("%d", r.SeqLen), base, tf, sp)
	}
	return "Table 8 — long-sequence attention on the A100-like spec (paper: baseline OOMs at 256k; TileFlow wins throughout)\n" + t.String()
}
