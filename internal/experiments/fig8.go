package experiments

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/graphmodel"
	"repro/internal/sim"
	"repro/internal/timeloop"
	"repro/internal/workload"
)

// Fig8abResult is the model-vs-model validation of Fig 8a/b: TileFlow
// against the independently implemented Timeloop-style polyhedron model
// over an enumerated matmul mapping sweep.
type Fig8abResult struct {
	Points        int
	CycleR2       float64
	EnergyMeanErr float64
	// Pairs are (timeloop, tileflow) cycle pairs for plotting.
	CyclePairs  [][2]float64
	EnergyPairs [][2]float64
}

// Fig8ab enumerates the matmul mapping sweep (the paper uses 1152 mappings
// of a single matrix multiplication on the validation accelerator) and
// evaluates both models on every mapping.
func Fig8ab(cfg Config) (*Fig8abResult, error) {
	spec := arch.Validation()
	const M, N, K = 256, 256, 256
	g := workload.Matmul(M, N, K)
	op := g.Ops[0]

	spatials := []int{4, 8, 16}
	aks := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	if cfg.Quick {
		spatials = []int{4, 16}
		aks = []int{1, 16, 256}
	}

	res := &Fig8abResult{}
	for _, sm := range spatials {
		for _, sn := range spatials {
			for _, am := range divisorsOf(M / sm) {
				for _, an := range divisorsOf(N / sn) {
					for _, ak := range aks {
						if res.Points >= 1152 {
							break
						}
						mp, ok := matmulMapping(M, N, K, am, an, ak, sm, sn, spec)
						if !ok {
							continue
						}
						tree, ok := matmulTree(op, M, N, K, am, an, ak, sm, sn, spec)
						if !ok {
							continue
						}
						r1, err := timeloop.Evaluate(op, mp, spec)
						if err != nil {
							return nil, err
						}
						r2, err := core.Evaluate(tree, g, spec, core.Options{SkipCapacityCheck: true})
						if err != nil {
							return nil, err
						}
						res.CyclePairs = append(res.CyclePairs, [2]float64{r1.Cycles, r2.Cycles})
						res.EnergyPairs = append(res.EnergyPairs, [2]float64{r1.EnergyPJ, r2.EnergyPJ()})
						res.Points++
					}
				}
			}
		}
	}
	res.CycleR2 = pairR2(res.CyclePairs)
	res.EnergyMeanErr = pairMeanErr(res.EnergyPairs)
	return res, nil
}

// Render implements the experiment report.
func (r *Fig8abResult) Render() string {
	t := newTable("metric", "value", "paper")
	t.row("mappings", fmt.Sprintf("%d", r.Points), "1152")
	t.row("cycle R^2 vs Timeloop-model (Fig 8a)", fmt.Sprintf("%.4f", r.CycleR2), "0.999")
	t.row("energy mean |err| vs Timeloop-model (Fig 8b)", fmt.Sprintf("%.4f", r.EnergyMeanErr), "0.001")
	return "Fig 8a/b — validation against the polyhedron model\n" + t.String()
}

// Fig8cdResult is the model-vs-machine validation of Fig 8c/d: TileFlow and
// the graph-based baseline against the cycle-level simulator over a fused
// self-attention mapping sweep.
type Fig8cdResult struct {
	Mappings          int
	TileFlowCycleErr  float64 // mean |relative error|, Fig 8c blue
	GraphBasedErr     float64 // mean |relative error|, Fig 8c yellow
	TileFlowEnergyErr float64 // Fig 8d
	// RelCycles are (mapping, tileflow/sim, graphbased/sim) triples.
	RelCycles [][2]float64
	RelEnergy []float64
}

// Fig8cd runs the attention mapping sweep on the simulator (the RTL
// substitute) and compares both estimators. The paper enumerates 131
// mappings by changing tiling factors and shapes.
func Fig8cd(cfg Config) (*Fig8cdResult, error) {
	m := sim.Validation()
	spec := arch.Validation()

	seqs := []int{64, 128, 192, 256, 320, 384, 448, 512}
	rbs := []int{8, 16, 32, 64, 128}
	cores := []int{1, 2, 4}
	if cfg.Quick {
		seqs = []int{128, 512}
		rbs = []int{16, 64}
		cores = []int{4}
	}

	res := &Fig8cdResult{}
	var tfErr, gbErr, eErr float64
	for _, seq := range seqs {
		for _, rb := range rbs {
			for _, cu := range cores {
				if res.Mappings >= 131 {
					break
				}
				if seq%rb != 0 {
					continue
				}
				shape := workload.AttentionShape{Name: fmt.Sprintf("s%d", seq), Heads: 8, SeqLen: seq, Hidden: 512, Batch: 1}
				am := sim.AttentionMapping{Shape: shape, RowBlock: rb, CoresUsed: cu}
				if err := am.Validate(m); err != nil {
					continue
				}
				prog, err := am.BuildProgram(m)
				if err != nil {
					continue
				}
				st, err := m.Run(prog)
				if err != nil {
					return nil, err
				}
				tree, g, err := am.ModelTree(spec)
				if err != nil {
					continue
				}
				pred, err := core.Evaluate(tree, g, spec, core.Options{SkipCapacityCheck: true})
				if err != nil {
					return nil, err
				}
				gb, err := graphmodel.Estimate(g, spec, cu)
				if err != nil {
					return nil, err
				}
				relTF := pred.Cycles / st.Cycles
				relGB := gb / st.Cycles
				relE := pred.EnergyPJ() / st.EnergyPJ
				res.RelCycles = append(res.RelCycles, [2]float64{relTF, relGB})
				res.RelEnergy = append(res.RelEnergy, relE)
				tfErr += math.Abs(relTF - 1)
				gbErr += math.Abs(relGB - 1)
				eErr += math.Abs(relE - 1)
				res.Mappings++
			}
		}
	}
	n := float64(res.Mappings)
	if n > 0 {
		res.TileFlowCycleErr = tfErr / n
		res.GraphBasedErr = gbErr / n
		res.TileFlowEnergyErr = eErr / n
	}
	return res, nil
}

// Render implements the experiment report.
func (r *Fig8cdResult) Render() string {
	t := newTable("metric", "value", "paper")
	t.row("mappings", fmt.Sprintf("%d", r.Mappings), "131")
	t.row("TileFlow cycle mean |err| vs accelerator (Fig 8c)", fmt.Sprintf("%.3f", r.TileFlowCycleErr), "0.054")
	t.row("graph-based cycle mean |err| (Fig 8c)", fmt.Sprintf("%.3f", r.GraphBasedErr), "0.488")
	t.row("TileFlow energy mean |err| (Fig 8d)", fmt.Sprintf("%.3f", r.TileFlowEnergyErr), "0.061")
	return "Fig 8c/d — validation against the cycle-level accelerator\n" + t.String()
}

// --- shared mapping construction (also used by the timeloop tests) ---

func divisorsOf(n int) []int {
	var out []int
	for d := 1; d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
		}
	}
	return out
}

func matmulMapping(m, n, k, am, an, ak, sm, sn int, spec *arch.Spec) (timeloop.Mapping, bool) {
	bm := m / (am * sm)
	bn := n / (an * sn)
	bk := k / ak
	if am*sm*bm != m || an*sn*bn != n || ak*bk != k || bm < 1 || bn < 1 || bk < 1 {
		return timeloop.Mapping{}, false
	}
	return timeloop.Mapping{Levels: []timeloop.LevelNest{
		{Level: spec.DRAMLevel(), Loops: []timeloop.Loop{{Dim: "m", Bound: am}, {Dim: "n", Bound: an}, {Dim: "k", Bound: ak}}},
		{Level: 1, Loops: []timeloop.Loop{{Dim: "m", Bound: bm}, {Dim: "n", Bound: bn}, {Dim: "k", Bound: bk}}},
		{Level: 0, Loops: []timeloop.Loop{{Dim: "m", Bound: sm, Spatial: true}, {Dim: "n", Bound: sn, Spatial: true}}},
	}}, true
}

func matmulTree(op *workload.Operator, m, n, k, am, an, ak, sm, sn int, spec *arch.Spec) (*core.Node, bool) {
	bm := m / (am * sm)
	bn := n / (an * sn)
	bk := k / ak
	if am*sm*bm != m || an*sn*bn != n || ak*bk != k || bm < 1 || bn < 1 || bk < 1 {
		return nil, false
	}
	leaf := core.Leaf("leaf", op, core.S("m", sm), core.S("n", sn))
	l1 := core.Tile("l1", 1, core.Seq, []core.Loop{core.T("m", bm), core.T("n", bn), core.T("k", bk)}, leaf)
	root := core.Tile("root", spec.DRAMLevel(), core.Seq,
		[]core.Loop{core.T("m", am), core.T("n", an), core.T("k", ak)}, l1)
	return root, true
}

func pairR2(pairs [][2]float64) float64 {
	if len(pairs) == 0 {
		return math.NaN()
	}
	var meanY float64
	for _, p := range pairs {
		meanY += p[1]
	}
	meanY /= float64(len(pairs))
	var ssRes, ssTot float64
	for _, p := range pairs {
		d := p[1] - p[0]
		ssRes += d * d
		dt := p[1] - meanY
		ssTot += dt * dt
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}

func pairMeanErr(pairs [][2]float64) float64 {
	if len(pairs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, p := range pairs {
		if p[0] != 0 {
			s += math.Abs(p[1]-p[0]) / p[0]
		}
	}
	return s / float64(len(pairs))
}
