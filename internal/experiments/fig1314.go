package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// EnergyBreakdownRow is one bar of Fig 13: the energy split of FLAT-RGran
// on Edge for one shape and one L1 capacity.
type EnergyBreakdownRow struct {
	Shape   string
	L1      string
	MACPct  float64
	RegPct  float64
	L1Pct   float64
	DRAMPct float64
}

// Fig13 evaluates FLAT-RGran on Edge with 200 KB and 1 MB L1 buffers and
// reports the energy breakdown (the paper: with the small L1, ~46.5% of
// energy is L1 access and 33.3% DRAM; with the large L1, ~80.1% is L1).
func Fig13(cfg Config) ([]EnergyBreakdownRow, error) {
	var rows []EnergyBreakdownRow
	shapes := cfg.attentionShapes()
	if !cfg.Quick {
		shapes = shapes[:9] // Bert + ViT families as in the figure
	}
	for _, l1 := range []struct {
		name  string
		bytes int64
	}{{"200KB", 200 * 1024}, {"1MB", 1024 * 1024}} {
		spec := arch.Edge().WithLevelCapacity("L1", l1.bytes)
		for _, shape := range shapes {
			df := attentionDataflow("FLAT-RGran", shape, spec)
			ev := cfg.tune(df, spec, core.Options{})
			if ev == nil {
				continue
			}
			bd := ev.Result.Energy
			total := bd.TotalPJ()
			if total <= 0 {
				continue
			}
			rows = append(rows, EnergyBreakdownRow{
				Shape:   shape.Name,
				L1:      l1.name,
				MACPct:  100 * bd.ComputePJ / total,
				RegPct:  100 * bd.PerLevelPJ[0] / total,
				L1Pct:   100 * bd.PerLevelPJ[1] / total,
				DRAMPct: 100 * bd.PerLevelPJ[2] / total,
			})
		}
	}
	return rows, nil
}

// RenderFig13 prints the breakdown table.
func RenderFig13(rows []EnergyBreakdownRow) string {
	t := newTable("shape", "L1 size", "MAC%", "Reg%", "L1%", "DRAM%")
	for _, r := range rows {
		t.row(r.Shape, r.L1,
			fmt.Sprintf("%.1f", r.MACPct), fmt.Sprintf("%.1f", r.RegPct),
			fmt.Sprintf("%.1f", r.L1Pct), fmt.Sprintf("%.1f", r.DRAMPct))
	}
	return "Fig 13 — FLAT-RGran energy breakdown on Edge (paper: 200KB -> ~46.5% L1 / 33.3% DRAM; 1MB -> ~80.1% L1 / 12.3% DRAM)\n" + t.String()
}

// BandwidthPoint is one sample of the Fig 14 sweep.
type BandwidthPoint struct {
	BWGBs    float64
	SlowDown float64
}

// BandwidthTrace is one dataflow's slow-down curve for one conv chain.
type BandwidthTrace struct {
	Chain    string
	Dataflow string
	Points   []BandwidthPoint
	// SuitableBW is the minimal L1 bandwidth with slow-down 1 (the
	// paper's "suitable bandwidth").
	SuitableBW float64
}

// Fig14 sweeps the Edge L1 bandwidth from 1 GB/s to 1200 GB/s and records
// the slow-down metric of Sec 7.5 for CC1 and CC2 under Fused-Layer, ISOS
// and the TileFlow conv dataflow.
func Fig14(cfg Config) ([]BandwidthTrace, error) {
	chains := []string{"CC1", "CC2"}
	flows := []string{"Fused-Layer", "ISOS", "TileFlow"}
	bws := []float64{1, 30, 60, 96, 120, 180, 240, 360, 480, 600, 720, 840, 960, 1080, 1200}
	if cfg.Quick {
		bws = []float64{1, 60, 240, 720, 1200}
	}
	var out []BandwidthTrace
	for _, chain := range chains {
		shape, _ := workload.ConvChainShapeByName(chain)
		for _, flow := range flows {
			// Tune factors once at the stock bandwidth, then sweep: the
			// dataflow stays fixed while the architecture changes, as
			// in the paper's sensitivity study.
			base := arch.Edge()
			df := convDataflow(flow, shape, base)
			ev := cfg.tune(df, base, core.Options{})
			if ev == nil {
				continue
			}
			tr := BandwidthTrace{Chain: chain, Dataflow: flow}
			root, err := df.Build(ev.Factors)
			if err != nil {
				return nil, err
			}
			for _, bw := range bws {
				spec := base.WithLevelBandwidth("L1", bw)
				res, err := core.Evaluate(root, df.Graph(), spec, core.Options{})
				if err != nil {
					continue
				}
				sd := res.SlowDown[1]
				tr.Points = append(tr.Points, BandwidthPoint{BWGBs: bw, SlowDown: sd})
				if tr.SuitableBW == 0 && sd <= 1.0001 {
					tr.SuitableBW = bw
				}
			}
			out = append(out, tr)
		}
	}
	return out, nil
}

// RenderFig14 prints the slow-down curves and suitable bandwidths.
func RenderFig14(traces []BandwidthTrace) string {
	t := newTable("chain", "dataflow", "slow-down @60GB/s", "@240", "@720", "@1200", "suitable BW")
	for _, tr := range traces {
		get := func(bw float64) string {
			for _, p := range tr.Points {
				if p.BWGBs == bw {
					return fmt.Sprintf("%.2f", p.SlowDown)
				}
			}
			return "-"
		}
		suit := "-"
		if tr.SuitableBW > 0 {
			suit = fmt.Sprintf("%.0f GB/s", tr.SuitableBW)
		}
		t.row(tr.Chain, tr.Dataflow, get(60), get(240), get(720), get(1200), suit)
	}
	return "Fig 14 — L1 bandwidth sensitivity on Edge (paper: Fused-Layer/ISOS suitable at ~96 GB/s; TileFlow needs 720-1080 GB/s)\n" + t.String()
}
