package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
)

// ConvComparison is the Fig 12 experiment: the Table 3 3×3 convolution
// chains on the Cloud accelerator across the four conv dataflows.
type ConvComparison struct {
	Points   []DataflowPoint
	Speedups map[string]float64
}

// RunConvComparison evaluates Fig 12.
func RunConvComparison(cfg Config) (*ConvComparison, error) {
	spec := arch.Cloud()
	res := &ConvComparison{Speedups: map[string]float64{}}
	type agg struct{ speedups []float64 }
	aggs := map[string]*agg{}
	for _, shape := range cfg.convShapes() {
		var layer *DataflowPoint
		for _, name := range ConvDataflowNames {
			df := convDataflow(name, shape, spec)
			ev := cfg.tune(df, spec, core.Options{})
			pt := DataflowPoint{Shape: shape.Name, Dataflow: name}
			if ev == nil {
				pt.OOM = true
				res.Points = append(res.Points, pt)
				continue
			}
			fill(&pt, ev.Result, spec)
			res.Points = append(res.Points, pt)
			if name == "Layerwise" {
				layer = &res.Points[len(res.Points)-1]
				continue
			}
			if layer != nil {
				a := aggs[name]
				if a == nil {
					a = &agg{}
					aggs[name] = a
				}
				a.speedups = append(a.speedups, layer.Cycles/pt.Cycles)
			}
		}
	}
	for name, a := range aggs {
		res.Speedups[name] = geomean(a.speedups)
	}
	return res, nil
}

// Render prints the Fig 12 tables.
func (r *ConvComparison) Render() string {
	byShape := map[string]map[string]DataflowPoint{}
	for _, pt := range r.Points {
		if byShape[pt.Shape] == nil {
			byShape[pt.Shape] = map[string]DataflowPoint{}
		}
		byShape[pt.Shape][pt.Dataflow] = pt
	}
	out := "Fig 12 — 3x3 convolution chains on Cloud\n"
	t := newTable(append([]string{"chain"}, ConvDataflowNames...)...)
	t2 := newTable(append([]string{"chain"}, ConvDataflowNames...)...)
	for _, shape := range sortedKeys(byShape) {
		cells := []string{shape}
		cells2 := []string{shape}
		layer := byShape[shape]["Layerwise"]
		for _, name := range ConvDataflowNames {
			pt := byShape[shape][name]
			if pt.OOM {
				cells = append(cells, "OOM")
				cells2 = append(cells2, "OOM")
				continue
			}
			cells = append(cells, fmt.Sprintf("%.3f", pt.Cycles/layer.Cycles))
			cells2 = append(cells2, fmt.Sprintf("%.3f", pt.DRAM/layer.DRAM))
		}
		t.row(cells...)
		t2.row(cells2...)
	}
	out += "part a) normalized cycles (vs Layerwise)\n" + t.String()
	out += "part b) normalized DRAM access\n" + t2.String()
	s := newTable("dataflow", "geomean speedup vs Layerwise", "paper")
	paper := map[string]string{"Fused-Layer": "1.01x", "ISOS": "<1x", "TileFlow": "1.59x"}
	for _, name := range ConvDataflowNames[1:] {
		s.row(name, fmt.Sprintf("%.2fx", r.Speedups[name]), paper[name])
	}
	return out + "summary\n" + s.String()
}
