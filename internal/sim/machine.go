package sim

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/workload"
)

// Machine is the microarchitecture configuration. Defaults follow the
// Sec 7.1 validation accelerator.
type Machine struct {
	Cores int
	// MeshM, MeshN is the matrix array shape; the array retires one
	// K-step of a MeshM×MeshN output tile per cycle.
	MeshM, MeshN int
	// VectorLanes is the vector array throughput in elements/cycle.
	VectorLanes int
	// BufferWords is the per-core scratchpad capacity.
	BufferWords int64
	// DRAMWordsPerCycle is the chip-wide DRAM bandwidth.
	DRAMWordsPerCycle float64
	// PipelineFill is the fixed issue+drain overhead per matrix
	// instruction in cycles (systolic array fill).
	PipelineFill int
}

// Validation returns the Sec 7.1 machine: 4 cores, 16×16 matrix array,
// 16×3 vector array, 384 KB buffers, 25.6 GB/s DRAM at 400 MHz, 16-bit
// words (= 32 words/cycle).
func Validation() *Machine {
	return &Machine{
		Cores:             4,
		MeshM:             16,
		MeshN:             16,
		VectorLanes:       16 * 3,
		BufferWords:       384 * 1024 / 2,
		DRAMWordsPerCycle: 25.6 * 1e9 / (400e6) / 2,
		PipelineFill:      16,
	}
}

// Stats is the simulation outcome.
type Stats struct {
	// Cycles is the makespan across all cores.
	Cycles float64
	// PerCoreCycles is each core's completion time.
	PerCoreCycles []float64
	// DRAMWords is total DMA traffic (loads + stores).
	DRAMWords float64
	// BufferReads/BufferWrites are scratchpad word accesses (operand
	// feeds, DMA deposits, result writebacks).
	BufferReads, BufferWrites float64
	// MACs and VectorOps are the executed compute operation counts.
	MACs, VectorOps float64
	// EnergyPJ is the machine-side energy estimate from the same
	// per-access cost table the model uses, so Fig 8d compares data
	// movement prediction quality, not cost-table choices.
	EnergyPJ float64
}

// Event is one instruction's scheduled execution interval, for timeline
// inspection and regression debugging of model-vs-machine mismatches.
type Event struct {
	Core  int
	Index int
	Op    OpCode
	Start float64
	End   float64
}

// Run simulates the program and returns cycle/energy statistics.
//
// Each core owns three units (DMA, matrix, vector) that execute their
// instruction class in program order but overlap with each other; explicit
// Deps express data hazards. DRAM is a single shared channel: a DMA
// transfer occupies it for Words/bandwidth cycles, arbitrated first-come
// first-served, which reproduces the bandwidth contention the analytical
// model has to predict.
func (m *Machine) Run(p *Program) (*Stats, error) {
	st, _, err := m.RunTraced(p)
	return st, err
}

// RunTraced is Run plus the full per-instruction timeline.
func (m *Machine) RunTraced(p *Program) (*Stats, []Event, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if len(p.Cores) > m.Cores {
		return nil, nil, fmt.Errorf("sim: program uses %d cores, machine has %d", len(p.Cores), m.Cores)
	}
	st := &Stats{PerCoreCycles: make([]float64, len(p.Cores))}
	events := make([]Event, 0, p.NumInstrs())

	// dramFree is when the shared DRAM channel next becomes available.
	dramFree := 0.0

	// Event-driven per core, processing instructions in issue order. A
	// single pass in program order is exact here because each unit is
	// in-order and DRAM arbitration is FCFS by issue time; we interleave
	// cores by always advancing the core whose next DMA would start
	// earliest to keep the arbitration fair.
	type coreState struct {
		done    []float64 // completion time per instruction
		next    int
		dmaFree float64
		mmFree  float64
		vecFree float64
	}
	cores := make([]*coreState, len(p.Cores))
	for i, prog := range p.Cores {
		cores[i] = &coreState{done: make([]float64, len(prog))}
	}

	// readyTime computes when an instruction's dependencies are met.
	readyTime := func(cs *coreState, ins Instr) float64 {
		t := 0.0
		for _, d := range ins.Deps {
			if cs.done[d] > t {
				t = cs.done[d]
			}
		}
		return t
	}

	remaining := 0
	for _, prog := range p.Cores {
		remaining += len(prog)
	}
	for remaining > 0 {
		// Pick the core whose next instruction can start earliest.
		bestCore := -1
		bestStart := 0.0
		for ci, cs := range cores {
			if cs.next >= len(p.Cores[ci]) {
				continue
			}
			ins := p.Cores[ci][cs.next]
			start := readyTime(cs, ins)
			switch ins.Op {
			case OpLoad, OpStore:
				if cs.dmaFree > start {
					start = cs.dmaFree
				}
				if dramFree > start {
					start = dramFree
				}
			case OpMatmul:
				if cs.mmFree > start {
					start = cs.mmFree
				}
			case OpVector:
				if cs.vecFree > start {
					start = cs.vecFree
				}
			}
			if bestCore < 0 || start < bestStart {
				bestCore, bestStart = ci, start
			}
		}
		cs := cores[bestCore]
		ins := p.Cores[bestCore][cs.next]
		start := bestStart
		var dur float64
		switch ins.Op {
		case OpLoad, OpStore:
			dur = float64(ins.Words) / m.DRAMWordsPerCycle
			dramFree = start + dur
			cs.dmaFree = start + dur
			st.DRAMWords += float64(ins.Words)
			if ins.Op == OpLoad {
				st.BufferWrites += float64(ins.Words)
			} else {
				st.BufferReads += float64(ins.Words)
			}
		case OpMatmul:
			tiles := ceilDiv(ins.M, m.MeshM) * ceilDiv(ins.N, m.MeshN)
			dur = float64(tiles*ins.K + m.PipelineFill)
			cs.mmFree = start + dur
			st.MACs += float64(ins.M) * float64(ins.N) * float64(ins.K)
			st.BufferReads += float64(ins.M*ins.K) + float64(ins.K*ins.N)
			st.BufferWrites += float64(ins.M * ins.N)
		case OpVector:
			dur = float64(ceilDiv64(ins.Elems, int64(m.VectorLanes)))
			cs.vecFree = start + dur
			st.VectorOps += float64(ins.Elems)
			st.BufferReads += float64(ins.Elems)
			st.BufferWrites += float64(ins.Elems)
		}
		cs.done[cs.next] = start + dur
		events = append(events, Event{Core: bestCore, Index: cs.next, Op: ins.Op, Start: start, End: start + dur})
		if end := start + dur; end > st.PerCoreCycles[bestCore] {
			st.PerCoreCycles[bestCore] = end
		}
		cs.next++
		remaining--
	}
	for _, c := range st.PerCoreCycles {
		if c > st.Cycles {
			st.Cycles = c
		}
	}

	// Machine-side energy with the shared cost table: DRAM accesses at
	// DRAM cost, scratchpad accesses at the 384 KB SRAM cost, compute and
	// register traffic as in the model.
	sram := energy.SRAMAccessPJ(m.BufferWords * int64(workload.WordBytes))
	st.EnergyPJ = st.DRAMWords*energy.DRAMAccessPJ +
		(st.BufferReads+st.BufferWrites)*sram +
		st.MACs*energy.MACEnergyPJ +
		st.VectorOps*energy.VectorOpPJ +
		2*(st.MACs+st.VectorOps)*energy.RegisterAccessPJ
	return st, events, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func ceilDiv64(a, b int64) int64 { return (a + b - 1) / b }
