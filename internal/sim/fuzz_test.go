package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

// randomProgram builds a random but valid program: dependencies only point
// backwards within the core.
func randomProgram(seed int64, cores int) *Program {
	rng := rand.New(rand.NewSource(seed))
	p := &Program{Cores: make([][]Instr, cores)}
	for c := 0; c < cores; c++ {
		n := rng.Intn(20) + 1
		for i := 0; i < n; i++ {
			var ins Instr
			switch rng.Intn(4) {
			case 0:
				ins = Instr{Op: OpLoad, Words: int64(rng.Intn(4096) + 1)}
			case 1:
				ins = Instr{Op: OpStore, Words: int64(rng.Intn(4096) + 1)}
			case 2:
				ins = Instr{Op: OpMatmul, M: rng.Intn(64) + 1, N: rng.Intn(64) + 1, K: rng.Intn(64) + 1}
			case 3:
				ins = Instr{Op: OpVector, Elems: int64(rng.Intn(4096) + 1), Kind: workload.KindExp}
			}
			for d := 0; d < i; d++ {
				if rng.Float64() < 0.15 {
					ins.Deps = append(ins.Deps, d)
				}
			}
			p.Cores[c] = append(p.Cores[c], ins)
		}
	}
	return p
}

// TestPropertySimulatorInvariants: for arbitrary valid programs the
// simulator never panics, respects dependency ordering, keeps units
// serialized, and its makespan is at least every lower bound (per-unit busy
// time and DRAM channel occupancy).
func TestPropertySimulatorInvariants(t *testing.T) {
	m := Validation()
	prop := func(seed int64, coreCount uint8) bool {
		cores := int(coreCount)%m.Cores + 1
		p := randomProgram(seed, cores)
		st, events, err := m.RunTraced(p)
		if err != nil {
			return false
		}
		// Reconstruct per-(core,unit) serialization and dependency order.
		unitOf := func(op OpCode) int {
			switch op {
			case OpLoad, OpStore:
				return 0
			case OpMatmul:
				return 1
			default:
				return 2
			}
		}
		done := make([][]float64, cores)
		for c := range done {
			done[c] = make([]float64, len(p.Cores[c]))
		}
		unitBusy := map[[2]int]float64{}
		var dramBusy, dramEnd float64
		for _, ev := range events {
			ins := p.Cores[ev.Core][ev.Index]
			if ev.End < ev.Start {
				return false
			}
			done[ev.Core][ev.Index] = ev.End
			key := [2]int{ev.Core, unitOf(ev.Op)}
			unitBusy[key] += ev.End - ev.Start
			if ev.Op == OpLoad || ev.Op == OpStore {
				dramBusy += ev.End - ev.Start
				if ev.End > dramEnd {
					dramEnd = ev.End
				}
			}
			_ = ins
		}
		// Dependencies: every instruction starts after its deps end.
		startOf := map[[2]int]float64{}
		for _, ev := range events {
			startOf[[2]int{ev.Core, ev.Index}] = ev.Start
		}
		for c, prog := range p.Cores {
			for i, ins := range prog {
				for _, d := range ins.Deps {
					if startOf[[2]int{c, i}] < done[c][d]-1e-9 {
						return false
					}
				}
			}
		}
		// Makespan bounds.
		for _, busy := range unitBusy {
			if st.Cycles < busy-1e-9 {
				return false
			}
		}
		if st.Cycles < dramBusy-1e-9 {
			return false // the shared channel serializes all DMA
		}
		return st.Cycles >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestTraceCoversProgram: every instruction appears exactly once in the
// trace and the trace's max end equals the reported cycles.
func TestTraceCoversProgram(t *testing.T) {
	m := Validation()
	p := randomProgram(99, 4)
	st, events, err := m.RunTraced(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != p.NumInstrs() {
		t.Fatalf("trace has %d events, program %d instrs", len(events), p.NumInstrs())
	}
	seen := map[[2]int]bool{}
	maxEnd := 0.0
	for _, ev := range events {
		key := [2]int{ev.Core, ev.Index}
		if seen[key] {
			t.Fatalf("instruction %v traced twice", key)
		}
		seen[key] = true
		if ev.End > maxEnd {
			maxEnd = ev.End
		}
	}
	if maxEnd != st.Cycles {
		t.Errorf("trace end %v != cycles %v", maxEnd, st.Cycles)
	}
}
