package sim

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// ConvChainMapping is a fused two-convolution kernel for the validation
// accelerator, extending the Fig 8c validation methodology to the paper's
// second workload family: rows are processed in blocks (the Fused-Layer
// tiling), weights stay resident, and the intermediate activation tile
// never leaves the core's buffer.
type ConvChainMapping struct {
	Shape workload.ConvChainShape
	// RowBlock is the number of output rows per staged block.
	RowBlock int
	// CoresUsed splits the row blocks across cores.
	CoresUsed int
}

func (cm ConvChainMapping) String() string {
	return fmt.Sprintf("%s/rb%d/c%d", cm.Shape.Name, cm.RowBlock, cm.CoresUsed)
}

// Validate checks the mapping is runnable on the machine.
func (cm ConvChainMapping) Validate(m *Machine) error {
	s := cm.Shape
	if cm.RowBlock <= 0 || s.Height%cm.RowBlock != 0 {
		return fmt.Errorf("sim: row block %d does not divide height %d", cm.RowBlock, s.Height)
	}
	if cm.CoresUsed <= 0 || cm.CoresUsed > m.Cores {
		return fmt.Errorf("sim: %d cores requested, machine has %d", cm.CoresUsed, m.Cores)
	}
	f := s.Filter
	// Per-block working set: input rows (+halo), both weight sets, the
	// activation tile (+halo) and the output tile.
	ws := int64((cm.RowBlock+f-1)*(s.Width+f-1)*s.InC) +
		int64(f*f*s.InC*s.OutC1) + int64(f*f*s.OutC1*s.OutC2) +
		int64((cm.RowBlock+f-1)*(s.Width+f-1)*s.OutC1) +
		int64(cm.RowBlock*s.Width*s.OutC2)
	if ws > m.BufferWords {
		return fmt.Errorf("sim: working set %d words exceeds %d-word buffer", ws, m.BufferWords)
	}
	return nil
}

// BuildProgram emits the fused kernel: per core, weights load once; per row
// block, the input rows stream in, conv1 runs as an im2col matmul
// (pixels × OutC1 × 9·InC), conv2 consumes the staged activation tile
// (pixels × OutC2 × 9·OutC1), and the output block stores back. The
// activation tile never touches DRAM — the Fused-Layer payoff the analytical
// model must predict.
func (cm ConvChainMapping) BuildProgram(m *Machine) (*Program, error) {
	if err := cm.Validate(m); err != nil {
		return nil, err
	}
	s := cm.Shape
	f := s.Filter
	blocks := s.Height / cm.RowBlock
	p := &Program{Cores: make([][]Instr, cm.CoresUsed)}

	// Weights once per core.
	loadW := make([][2]int, cm.CoresUsed)
	for c := 0; c < cm.CoresUsed; c++ {
		p.Cores[c] = append(p.Cores[c], Instr{Op: OpLoad, Words: int64(f * f * s.InC * s.OutC1)})
		p.Cores[c] = append(p.Cores[c], Instr{Op: OpLoad, Words: int64(f * f * s.OutC1 * s.OutC2)})
		loadW[c] = [2]int{0, 1}
	}
	for blk := 0; blk < blocks; blk++ {
		c := blk % cm.CoresUsed
		prog := p.Cores[c]
		add := func(ins Instr) int {
			prog = append(prog, ins)
			return len(prog) - 1
		}
		pixels := cm.RowBlock * s.Width
		haloPixels := (cm.RowBlock + f - 1) * (s.Width + f - 1)
		loadIm := add(Instr{Op: OpLoad, Words: int64(haloPixels * s.InC)})
		// conv1 must produce the activation halo conv2's window needs.
		conv1 := add(Instr{Op: OpMatmul, M: haloPixels, N: s.OutC1, K: f * f * s.InC,
			Deps: []int{loadIm, loadW[c][0]}})
		conv2 := add(Instr{Op: OpMatmul, M: pixels, N: s.OutC2, K: f * f * s.OutC1,
			Deps: []int{conv1, loadW[c][1]}})
		add(Instr{Op: OpStore, Words: int64(pixels * s.OutC2), Deps: []int{conv2}})
		p.Cores[c] = prog
	}
	return p, nil
}

// ModelTree builds the TileFlow analysis tree for the same schedule: row
// blocks staged at L1 with the activation confined, weights resident, rows
// split across the used cores.
func (cm ConvChainMapping) ModelTree(spec *arch.Spec) (*core.Node, *workload.Graph, error) {
	s := cm.Shape
	g := workload.ConvChain(s)
	blocks := s.Height / cm.RowBlock
	if blocks%cm.CoresUsed != 0 && cm.CoresUsed > 1 {
		return nil, nil, fmt.Errorf("sim: %d blocks not divisible across %d cores", blocks, cm.CoresUsed)
	}
	mesh := spec.MeshX

	conv1 := g.Op("Conv1")
	conv2 := g.Op("Conv2")
	// Channel dims map onto the matrix array (the kernel runs im2col
	// matmuls); everything else iterates temporally within the block.
	sl, sc := gcdCap(s.OutC1, mesh), gcdCap(s.InC, mesh)
	se, sl2 := gcdCap(s.OutC2, mesh), gcdCap(s.OutC1, mesh)
	leaf1 := core.Leaf("conv1", conv1,
		core.T("h", cm.RowBlock), core.T("w", s.Width),
		core.T("r", s.Filter), core.T("s", s.Filter),
		core.T("l", s.OutC1/sl), core.T("c", s.InC/sc),
		core.S("l", sl), core.S("c", sc),
	)
	leaf2 := core.Leaf("conv2", conv2,
		core.T("h", cm.RowBlock), core.T("w", s.Width),
		core.T("u", s.Filter), core.T("v", s.Filter),
		core.T("e", s.OutC2/se), core.T("l", s.OutC1/sl2),
		core.S("e", se), core.S("l", sl2),
	)

	stageLoops := []core.Loop{core.T("h", blocks/cm.CoresUsed)}
	stage := core.Tile("stage", 1, core.Shar, stageLoops, leaf1, leaf2)
	var rootLoops []core.Loop
	if cm.CoresUsed > 1 {
		rootLoops = append(rootLoops, core.S("h", cm.CoresUsed))
	}
	root := core.Tile("conv-chain", spec.DRAMLevel(), core.Seq, rootLoops, stage)
	return root, g, nil
}

// gcdCap is the largest divisor of n not exceeding cap.
func gcdCap(n, cap int) int {
	best := 1
	for d := 1; d <= cap; d++ {
		if n%d == 0 {
			best = d
		}
	}
	return best
}
