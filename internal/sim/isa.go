// Package sim is a cycle-level simulator of the TPU-derived validation
// accelerator of Sec 7.1: four cores, each with a 16×16 matrix array, a
// 16×3 vector array and 384 KB of on-chip buffer, sharing 25.6 GB/s of DRAM
// bandwidth at 400 MHz with 16-bit words.
//
// The paper validates TileFlow against a Chisel RTL implementation of this
// machine simulated with Verilator; this package is the substitution: an
// execution engine that is independent of the analytical model, with real
// DMA bandwidth contention, per-unit occupancy and double-buffered overlap,
// driven by an instruction stream ("The accelerator supports matrix,
// vector, load, and store instructions. We program test cases using the
// instructions"). A kernel generator emits fused self-attention programs
// from a mapping's tiling factors, so model-vs-machine error (Fig 8c/d) is
// measured the same way the paper measures it.
package sim

import (
	"fmt"

	"repro/internal/workload"
)

// OpCode is the instruction class; each class executes on its own unit.
type OpCode int

// The four instruction classes of the validation accelerator.
const (
	OpLoad   OpCode = iota // DRAM -> buffer DMA
	OpStore                // buffer -> DRAM DMA
	OpMatmul               // matrix unit tile matmul
	OpVector               // vector unit elementwise/reduction pass
)

// String implements fmt.Stringer.
func (o OpCode) String() string {
	switch o {
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpMatmul:
		return "matmul"
	case OpVector:
		return "vector"
	}
	return fmt.Sprintf("OpCode(%d)", int(o))
}

// Instr is one instruction of a core program. Dependencies reference
// earlier instructions of the same core by index; DMA and compute units
// each execute their own class in order, so the Deps express only
// cross-unit hazards (e.g. a matmul waiting for its operand loads).
type Instr struct {
	Op OpCode

	// Words is the transfer size for Load/Store.
	Words int64

	// M, N, K are the tile shape for Matmul (C[M,N] += A[M,K]·B[K,N]).
	M, N, K int

	// Elems is the element count for Vector, Kind its operation.
	Elems int64
	Kind  workload.OpKind

	// Deps lists indices of instructions that must complete first.
	Deps []int
}

// Program is a whole-chip workload: one instruction stream per core.
type Program struct {
	Cores [][]Instr
}

// NumInstrs counts instructions across all cores.
func (p *Program) NumInstrs() int {
	n := 0
	for _, c := range p.Cores {
		n += len(c)
	}
	return n
}

// Validate checks dependency indices.
func (p *Program) Validate() error {
	for ci, prog := range p.Cores {
		for ii, ins := range prog {
			for _, d := range ins.Deps {
				if d < 0 || d >= ii {
					return fmt.Errorf("sim: core %d instr %d: bad dep %d", ci, ii, d)
				}
			}
			switch ins.Op {
			case OpLoad, OpStore:
				if ins.Words <= 0 {
					return fmt.Errorf("sim: core %d instr %d: %s of %d words", ci, ii, ins.Op, ins.Words)
				}
			case OpMatmul:
				if ins.M <= 0 || ins.N <= 0 || ins.K <= 0 {
					return fmt.Errorf("sim: core %d instr %d: bad matmul %dx%dx%d", ci, ii, ins.M, ins.N, ins.K)
				}
			case OpVector:
				if ins.Elems <= 0 {
					return fmt.Errorf("sim: core %d instr %d: vector of %d elems", ci, ii, ins.Elems)
				}
			}
		}
	}
	return nil
}
