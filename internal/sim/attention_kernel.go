package sim

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// AttentionMapping is one point of the Fig 8c/d validation sweep: a fused
// self-attention kernel for the validation accelerator, parameterized by
// shape and tiling factors ("we program highly optimized fusion kernels for
// our accelerator in assembly and enumerate 131 different mappings (by
// changing tiling factors and shapes)").
type AttentionMapping struct {
	Shape workload.AttentionShape
	// RowBlock is the number of score rows staged per block (the FLAT
	// row granularity).
	RowBlock int
	// CoresUsed is how many cores the heads are distributed across.
	CoresUsed int
}

func (am AttentionMapping) String() string {
	return fmt.Sprintf("%s/rb%d/c%d", am.Shape.Name, am.RowBlock, am.CoresUsed)
}

// Validate checks the mapping is runnable.
func (am AttentionMapping) Validate(m *Machine) error {
	s := am.Shape
	if am.RowBlock <= 0 || s.SeqLen%am.RowBlock != 0 {
		return fmt.Errorf("sim: row block %d does not divide seq_len %d", am.RowBlock, s.SeqLen)
	}
	if am.CoresUsed <= 0 || am.CoresUsed > m.Cores {
		return fmt.Errorf("sim: %d cores requested, machine has %d", am.CoresUsed, m.Cores)
	}
	// Working set per head: K + V + Q block + S block ×2 + A block.
	l, k, n := s.SeqLen, s.HeadDim(), s.HeadDim()
	ws := int64(k*l + l*n + am.RowBlock*k + 2*am.RowBlock*l + am.RowBlock*n)
	if ws > m.BufferWords {
		return fmt.Errorf("sim: working set %d words exceeds %d-word buffer", ws, m.BufferWords)
	}
	return nil
}

// BuildProgram emits the fused attention kernel: per head, K and V are
// loaded once and kept resident; Q streams in row blocks; each block runs
// QK → the five softmax vector passes → LV, and the output block stores
// back. Loads for the next block overlap with compute (the DMA unit runs
// ahead; explicit deps express only true hazards).
func (am AttentionMapping) BuildProgram(m *Machine) (*Program, error) {
	if err := am.Validate(m); err != nil {
		return nil, err
	}
	s := am.Shape
	b := s.Batch
	if b <= 0 {
		b = 1
	}
	heads := b * s.Heads
	mRows, l, k, n := s.SeqLen, s.SeqLen, s.HeadDim(), s.HeadDim()
	rb := am.RowBlock
	blocks := mRows / rb

	p := &Program{Cores: make([][]Instr, am.CoresUsed)}
	for head := 0; head < heads; head++ {
		c := head % am.CoresUsed
		prog := p.Cores[c]
		add := func(ins Instr) int {
			prog = append(prog, ins)
			return len(prog) - 1
		}
		loadK := add(Instr{Op: OpLoad, Words: int64(k * l)})
		loadV := add(Instr{Op: OpLoad, Words: int64(l * n)})
		for blk := 0; blk < blocks; blk++ {
			loadQ := add(Instr{Op: OpLoad, Words: int64(rb * k)})
			qk := add(Instr{Op: OpMatmul, M: rb, N: l, K: k, Deps: []int{loadQ, loadK}})
			prev := qk
			for i := 0; i < 5; i++ { // max, sub, exp, sum, div
				prev = add(Instr{Op: OpVector, Elems: int64(rb * l), Kind: workload.KindExp, Deps: []int{prev}})
			}
			lv := add(Instr{Op: OpMatmul, M: rb, N: n, K: l, Deps: []int{prev, loadV}})
			add(Instr{Op: OpStore, Words: int64(rb * n), Deps: []int{lv}})
		}
		p.Cores[c] = prog
	}
	return p, nil
}

// ModelTree builds the TileFlow analysis tree describing the same mapping,
// so the analytical prediction and the simulation measure the same
// schedule: heads spread spatially across the used cores, K/V resident per
// head (Shar), rows staged in blocks.
func (am AttentionMapping) ModelTree(spec *arch.Spec) (*core.Node, *workload.Graph, error) {
	s := am.Shape
	g := workload.Attention(s)
	b := s.Batch
	if b <= 0 {
		b = 1
	}
	heads := s.Heads
	if (b*heads)%am.CoresUsed != 0 {
		return nil, nil, fmt.Errorf("sim: %d heads not divisible by %d cores", b*heads, am.CoresUsed)
	}
	mRows, l, k, n := s.SeqLen, s.SeqLen, s.HeadDim(), s.HeadDim()
	rb := am.RowBlock
	blocks := mRows / rb
	mesh := spec.MeshX

	leafQK := core.Leaf("QK", g.Op("QK"),
		core.T("m", max(1, rb/mesh)), core.T("l", max(1, l/mesh)), core.T("k", k),
		core.S("m", min(rb, mesh)), core.S("l", min(l, mesh)))
	vecLeaf := func(name string, hasL bool) *core.Node {
		op := g.Op(name)
		lanes := spec.VectorLanesPerSubcore
		loops := []core.Loop{core.T("m", rb)}
		if hasL {
			sl := min(l, lanes)
			for l%sl != 0 {
				sl--
			}
			if l/sl > 1 {
				loops = append(loops, core.T("l", l/sl))
			}
			loops = append(loops, core.S("l", sl))
		}
		return core.Leaf(name, op, loops...)
	}
	leafLV := core.Leaf("LV", g.Op("LV"),
		core.T("m", max(1, rb/mesh)), core.T("n", max(1, n/mesh)), core.T("l", l),
		core.S("m", min(rb, mesh)), core.S("n", min(n, mesh)))

	stageLoops := []core.Loop{}
	if hRem := b * heads / am.CoresUsed; hRem > 1 {
		// Remaining head iterations run temporally per core. Heads and
		// batch fold together; express on h when possible.
		if heads%am.CoresUsed == 0 {
			if b > 1 {
				stageLoops = append(stageLoops, core.T("b", b))
			}
			if heads/am.CoresUsed > 1 {
				stageLoops = append(stageLoops, core.T("h", heads/am.CoresUsed))
			}
		} else {
			stageLoops = append(stageLoops, core.T("h", hRem))
		}
	}
	if blocks > 1 {
		stageLoops = append(stageLoops, core.T("m", blocks))
	}
	stage := core.Tile("stage", 1, core.Shar, stageLoops,
		leafQK,
		vecLeaf("RowMax", true), vecLeaf("Sub", true), vecLeaf("Exp", true),
		vecLeaf("RowSum", true), vecLeaf("Div", true),
		leafLV)

	var rootLoops []core.Loop
	if am.CoresUsed > 1 {
		if heads%am.CoresUsed == 0 {
			rootLoops = append(rootLoops, core.S("h", am.CoresUsed))
		} else {
			return nil, nil, fmt.Errorf("sim: cannot split %d heads across %d cores spatially", heads, am.CoresUsed)
		}
	}
	root := core.Tile("attn", spec.DRAMLevel(), core.Seq, rootLoops, stage)
	return root, g, nil
}
