package sim

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

func TestMachineBasics(t *testing.T) {
	m := Validation()
	// One load, one matmul depending on it, one store.
	p := &Program{Cores: [][]Instr{{
		{Op: OpLoad, Words: 3200},
		{Op: OpMatmul, M: 16, N: 16, K: 16, Deps: []int{0}},
		{Op: OpStore, Words: 256, Deps: []int{1}},
	}}}
	st, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// Load = 3200/32 = 100 cycles; matmul = 16 + 16 fill = 32; store = 8.
	want := 100.0 + 32 + 8
	if st.Cycles != want {
		t.Errorf("cycles = %v, want %v", st.Cycles, want)
	}
	if st.DRAMWords != 3456 {
		t.Errorf("dram words = %v", st.DRAMWords)
	}
	if st.MACs != 16*16*16 {
		t.Errorf("MACs = %v", st.MACs)
	}
}

func TestMachineOverlap(t *testing.T) {
	m := Validation()
	// Two independent loads on two cores contend for DRAM; a third core's
	// matmul with no deps runs immediately.
	p := &Program{Cores: [][]Instr{
		{{Op: OpLoad, Words: 3200}},
		{{Op: OpLoad, Words: 3200}},
		{{Op: OpMatmul, M: 16, N: 16, K: 160}},
	}}
	st, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// The two loads serialize on the shared channel: 100 + 100 = 200.
	if st.Cycles != 200 {
		t.Errorf("cycles = %v, want 200 (DRAM serialization)", st.Cycles)
	}
	if st.PerCoreCycles[2] != 176 {
		t.Errorf("core2 = %v, want 176 (overlapped compute)", st.PerCoreCycles[2])
	}
}

func TestMachineDoubleBuffering(t *testing.T) {
	m := Validation()
	// Load/compute pipeline: compute of block i depends only on load i,
	// so load i+1 overlaps compute i.
	var prog []Instr
	for i := 0; i < 8; i++ {
		prog = append(prog, Instr{Op: OpLoad, Words: 3200})
		prog = append(prog, Instr{Op: OpMatmul, M: 16, N: 16, K: 84, Deps: []int{len(prog) - 1}})
	}
	st, err := m.Run(&Program{Cores: [][]Instr{prog}})
	if err != nil {
		t.Fatal(err)
	}
	// Each load = 100 cycles, each matmul = 100 cycles. Fully pipelined:
	// ≈ 8·100 + 100 = 900, far below the serialized 1600.
	if st.Cycles < 850 || st.Cycles > 1000 {
		t.Errorf("cycles = %v, want ~900 (double-buffered)", st.Cycles)
	}
}

func TestAttentionKernelRuns(t *testing.T) {
	m := Validation()
	shape := workload.AttentionShape{Name: "tiny", Heads: 8, SeqLen: 128, Hidden: 512, Batch: 1}
	am := AttentionMapping{Shape: shape, RowBlock: 32, CoresUsed: 4}
	p, err := am.BuildProgram(m)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles <= 0 {
		t.Fatalf("cycles %v", st.Cycles)
	}
	// Conservation: DMA words must cover Q, K, V in and A out exactly
	// once (K/V per head, Q/A per block).
	k, l, n := shape.HeadDim(), shape.SeqLen, shape.HeadDim()
	want := float64(shape.Heads * (k*l + l*n + shape.SeqLen*k + shape.SeqLen*n))
	if st.DRAMWords != want {
		t.Errorf("DRAM words %v, want %v", st.DRAMWords, want)
	}
	// All MACs executed.
	wantMACs := float64(shape.Heads) * (float64(shape.SeqLen*l*k) + float64(shape.SeqLen*n*l))
	if st.MACs != wantMACs {
		t.Errorf("MACs %v, want %v", st.MACs, wantMACs)
	}
}

// TestModelTracksSimulator is the in-package slice of Fig 8c/d: over a
// small mapping sweep the analytical model's cycles must stay within a
// modest relative error of the simulation (the paper reports 5.4% average
// for cycles and 6.1% for energy against RTL).
func TestModelTracksSimulator(t *testing.T) {
	m := Validation()
	spec := arch.Validation()
	var cycErrs, eErrs []float64
	for _, seq := range []int{128, 256, 512} {
		for _, rb := range []int{16, 32, 64} {
			for _, coresUsed := range []int{2, 4} {
				shape := workload.AttentionShape{Name: "v", Heads: 8, SeqLen: seq, Hidden: 512, Batch: 1}
				am := AttentionMapping{Shape: shape, RowBlock: rb, CoresUsed: coresUsed}
				p, err := am.BuildProgram(m)
				if err != nil {
					t.Fatalf("%v: %v", am, err)
				}
				st, err := m.Run(p)
				if err != nil {
					t.Fatalf("%v: %v", am, err)
				}
				tree, g, err := am.ModelTree(spec)
				if err != nil {
					t.Fatalf("%v: %v", am, err)
				}
				res, err := core.Evaluate(tree, g, spec, core.Options{SkipCapacityCheck: true})
				if err != nil {
					t.Fatalf("%v: %v", am, err)
				}
				ce := math.Abs(res.Cycles-st.Cycles) / st.Cycles
				ee := math.Abs(res.EnergyPJ()-st.EnergyPJ) / st.EnergyPJ
				cycErrs = append(cycErrs, ce)
				eErrs = append(eErrs, ee)
			}
		}
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if m := mean(cycErrs); m > 0.25 {
		t.Errorf("mean cycle error %.3f, want ≤ 0.25", m)
	}
	if m := mean(eErrs); m > 0.25 {
		t.Errorf("mean energy error %.3f, want ≤ 0.25", m)
	}
	t.Logf("mean cycle err %.3f, mean energy err %.3f over %d mappings", mean(cycErrs), mean(eErrs), len(cycErrs))
}

func TestConvKernelRuns(t *testing.T) {
	m := Validation()
	shape := workload.ConvChainShape{Name: "cc", InC: 16, Height: 32, Width: 32, OutC1: 32, OutC2: 16, Filter: 3}
	cm := ConvChainMapping{Shape: shape, RowBlock: 8, CoresUsed: 4}
	p, err := cm.BuildProgram(m)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles <= 0 {
		t.Fatal("no cycles")
	}
	// Conservation: the activation never touches DRAM, so DMA words are
	// exactly weights (per core) + input blocks (with halo) + outputs.
	f := shape.Filter
	blocks := shape.Height / cm.RowBlock
	want := float64(cm.CoresUsed*(f*f*shape.InC*shape.OutC1+f*f*shape.OutC1*shape.OutC2)) +
		float64(blocks*(cm.RowBlock+f-1)*(shape.Width+f-1)*shape.InC) +
		float64(shape.Height*shape.Width*shape.OutC2)
	if st.DRAMWords != want {
		t.Errorf("DRAM words %v, want %v", st.DRAMWords, want)
	}
}

// TestModelTracksSimulatorConv extends the Fig 8c methodology to the conv
// chain family: the analytical prediction stays within a modest relative
// error of the cycle-level machine.
func TestModelTracksSimulatorConv(t *testing.T) {
	m := Validation()
	spec := arch.Validation()
	var errs []float64
	for _, rb := range []int{4, 8, 16} {
		for _, cu := range []int{2, 4} {
			shape := workload.ConvChainShape{Name: "cc", InC: 16, Height: 32, Width: 32, OutC1: 32, OutC2: 16, Filter: 3}
			cm := ConvChainMapping{Shape: shape, RowBlock: rb, CoresUsed: cu}
			if (shape.Height/rb)%cu != 0 {
				continue
			}
			p, err := cm.BuildProgram(m)
			if err != nil {
				t.Fatalf("%v: %v", cm, err)
			}
			st, err := m.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			tree, g, err := cm.ModelTree(spec)
			if err != nil {
				t.Fatalf("%v: %v", cm, err)
			}
			res, err := core.Evaluate(tree, g, spec, core.Options{SkipCapacityCheck: true})
			if err != nil {
				t.Fatalf("%v: %v", cm, err)
			}
			e := math.Abs(res.Cycles-st.Cycles) / st.Cycles
			errs = append(errs, e)
		}
	}
	var sum float64
	for _, e := range errs {
		sum += e
	}
	mean := sum / float64(len(errs))
	t.Logf("mean conv cycle err %.3f over %d mappings", mean, len(errs))
	if mean > 0.35 {
		t.Errorf("mean conv cycle error %.3f, want ≤ 0.35", mean)
	}
}
