package timeloop

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// matmulMapping builds the canonical three-level matmul mapping used by the
// validation sweep: DRAM loops (am, an, ak), L1 loops (bm, bn, bk), and an
// sm×sn spatial inner tile.
func matmulMapping(m, n, k, am, an, ak, sm, sn int, spec *arch.Spec) (Mapping, bool) {
	bm := m / (am * sm)
	bn := n / (an * sn)
	bk := k / ak
	if am*sm*bm != m || an*sn*bn != n || ak*bk != k {
		return Mapping{}, false
	}
	return Mapping{Levels: []LevelNest{
		{Level: spec.DRAMLevel(), Loops: []Loop{{Dim: "m", Bound: am}, {Dim: "n", Bound: an}, {Dim: "k", Bound: ak}}},
		{Level: 1, Loops: []Loop{{Dim: "m", Bound: bm}, {Dim: "n", Bound: bn}, {Dim: "k", Bound: bk}}},
		{Level: 0, Loops: []Loop{{Dim: "m", Bound: sm, Spatial: true}, {Dim: "n", Bound: sn, Spatial: true}}},
	}}, true
}

// matmulTree builds the equivalent TileFlow analysis tree.
func matmulTree(op *workload.Operator, m, n, k, am, an, ak, sm, sn int, spec *arch.Spec) (*core.Node, bool) {
	bm := m / (am * sm)
	bn := n / (an * sn)
	bk := k / ak
	if am*sm*bm != m || an*sn*bn != n || ak*bk != k {
		return nil, false
	}
	leaf := core.Leaf("leaf", op, core.S("m", sm), core.S("n", sn))
	l1 := core.Tile("l1", 1, core.Seq, []core.Loop{core.T("m", bm), core.T("n", bn), core.T("k", bk)}, leaf)
	root := core.Tile("root", spec.DRAMLevel(), core.Seq,
		[]core.Loop{core.T("m", am), core.T("n", an), core.T("k", ak)}, l1)
	return root, true
}

func TestValidateRejects(t *testing.T) {
	g := workload.Matmul(64, 64, 64)
	spec := arch.Validation()
	// Under-factored dim.
	m := Mapping{Levels: []LevelNest{
		{Level: 2, Loops: []Loop{{Dim: "m", Bound: 2}}},
		{Level: 0, Loops: []Loop{{Dim: "n", Bound: 64}, {Dim: "k", Bound: 64}}},
	}}
	if _, err := Evaluate(g.Ops[0], m, spec); err == nil {
		t.Error("want under-factored error")
	}
	// Unknown dim.
	m2 := Mapping{Levels: []LevelNest{{Level: 0, Loops: []Loop{{Dim: "zz", Bound: 2}}}}}
	if _, err := Evaluate(g.Ops[0], m2, spec); err == nil {
		t.Error("want unknown-dim error")
	}
}

// TestAgreementWithCoreModel is the in-package slice of the Fig 8a/b
// experiment: over a sweep of matmul mappings the two independently coded
// models must correlate almost perfectly in cycles and agree closely in
// energy.
func TestAgreementWithCoreModel(t *testing.T) {
	spec := arch.Validation()
	const M, N, K = 256, 256, 256
	g := workload.Matmul(M, N, K)
	op := g.Ops[0]

	var tl, tf []float64
	var tlE, tfE []float64
	for _, sm := range []int{4, 8, 16} {
		for _, am := range []int{1, 4, 16} {
			for _, an := range []int{1, 4, 16} {
				for _, ak := range []int{1, 16, 256} {
					mp, ok := matmulMapping(M, N, K, am, an, ak, sm, sm, spec)
					if !ok {
						continue
					}
					tree, ok := matmulTree(op, M, N, K, am, an, ak, sm, sm, spec)
					if !ok {
						continue
					}
					r1, err := Evaluate(op, mp, spec)
					if err != nil {
						t.Fatalf("timeloop am=%d an=%d ak=%d: %v", am, an, ak, err)
					}
					r2, err := core.Evaluate(tree, g, spec, core.Options{SkipCapacityCheck: true})
					if err != nil {
						t.Fatalf("core am=%d an=%d ak=%d: %v", am, an, ak, err)
					}
					tl = append(tl, r1.Cycles)
					tf = append(tf, r2.Cycles)
					tlE = append(tlE, r1.EnergyPJ)
					tfE = append(tfE, r2.EnergyPJ())
				}
			}
		}
	}
	if len(tl) < 50 {
		t.Fatalf("sweep too small: %d points", len(tl))
	}
	if r2 := RSquared(tl, tf); r2 < 0.95 {
		t.Errorf("cycle R² = %.4f, want ≥ 0.95", r2)
	}
	if e := MeanAbsRelErr(tlE, tfE); e > 0.10 {
		t.Errorf("energy mean |err| = %.4f, want ≤ 0.10", e)
	}
	t.Logf("points=%d cycleR2=%.4f energyErr=%.4f", len(tl), RSquared(tl, tf), MeanAbsRelErr(tlE, tfE))
}

// RSquared is the coefficient of determination of y against x under the
// y=x line (the Fig 8a metric).
func RSquared(x, y []float64) float64 {
	if len(x) == 0 || len(x) != len(y) {
		return math.NaN()
	}
	var meanY float64
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(len(y))
	var ssRes, ssTot float64
	for i := range x {
		d := y[i] - x[i]
		ssRes += d * d
		dt := y[i] - meanY
		ssTot += dt * dt
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}

// MeanAbsRelErr is the mean |y−x|/x (the Fig 8b metric).
func MeanAbsRelErr(x, y []float64) float64 {
	if len(x) == 0 || len(x) != len(y) {
		return math.NaN()
	}
	var s float64
	for i := range x {
		if x[i] == 0 {
			continue
		}
		s += math.Abs(y[i]-x[i]) / x[i]
	}
	return s / float64(len(x))
}

// TestConvolutionAgreement extends the cross-validation to a windowed
// access pattern: single 3x3 convolution, several mappings, both models.
func TestConvolutionAgreement(t *testing.T) {
	spec := arch.Validation()
	g := workload.Conv2D("conv", 32, 32, 16, 32, 3)
	op := g.Ops[0]
	var tl, tf []float64
	for _, hb := range []int{1, 2, 4, 8} {
		mp := Mapping{Levels: []LevelNest{
			{Level: 2, Loops: []Loop{{Dim: "h", Bound: hb}}},
			{Level: 1, Loops: []Loop{
				{Dim: "h", Bound: 32 / hb}, {Dim: "w", Bound: 32},
				{Dim: "r", Bound: 3}, {Dim: "s", Bound: 3},
				{Dim: "l", Bound: 2}, {Dim: "c", Bound: 1},
			}},
			{Level: 0, Loops: []Loop{{Dim: "l", Bound: 16, Spatial: true}, {Dim: "c", Bound: 16, Spatial: true}}},
		}}
		r1, err := Evaluate(op, mp, spec)
		if err != nil {
			t.Fatal(err)
		}
		leaf := core.Leaf("leaf", op, core.S("l", 16), core.S("c", 16))
		l1 := core.Tile("l1", 1, core.Seq, []core.Loop{
			core.T("h", 32/hb), core.T("w", 32), core.T("r", 3), core.T("s", 3), core.T("l", 2),
		}, leaf)
		root := core.Tile("root", 2, core.Seq, []core.Loop{core.T("h", hb)}, l1)
		r2, err := core.Evaluate(root, g, spec, core.Options{SkipCapacityCheck: true})
		if err != nil {
			t.Fatal(err)
		}
		tl = append(tl, r1.Cycles)
		tf = append(tf, r2.Cycles)
	}
	// Windowed accesses diverge more than matmul (the timeloop baseline's
	// tile model ignores halo overlap between refetches); require the two
	// models to stay within 2x of each other everywhere.
	for i := range tl {
		ratio := tf[i] / tl[i]
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("mapping %d: cycle ratio %.2f outside [0.5, 2]", i, ratio)
		}
	}
	t.Logf("conv cycles timeloop=%v tileflow=%v", tl, tf)
}
