// Package timeloop re-implements, from first principles and independently
// of the core package, the classic polyhedron-based single-operator
// performance model of Timeloop (Parashar et al., ISPASS'19) that the paper
// validates TileFlow against in Fig 8a/b.
//
// A mapping assigns every storage level an ordered loop nest over the
// operator's dimensions. For each tensor and level the model computes the
// tile held in the level's buffer and the number of refills driven by the
// loops above; latency assumes double-buffered transfer/compute overlap at
// every level; energy is per-access costs times access counts.
//
// The implementation deliberately shares no analysis code with
// internal/core — the Fig 8a/b experiment compares two independently coded
// models over the same mapping sweep, which is what makes the R² ≈ 0.999
// agreement a meaningful validation rather than a tautology.
package timeloop

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/energy"
	"repro/internal/workload"
)

// Loop is one loop of a mapping level, outermost first within the level.
type Loop struct {
	Dim     string
	Bound   int
	Spatial bool
}

// Mapping assigns loop nests to storage levels, outermost level first.
// Levels[i] corresponds to spec.Levels[Level], and every operator dimension
// must be fully factored across the mapping (the product of all bounds per
// dim equals the dimension size).
type Mapping struct {
	Levels []LevelNest
}

// LevelNest is the loop nest of one storage level.
type LevelNest struct {
	Level int
	Loops []Loop
}

// Result is the model output.
type Result struct {
	Cycles   float64
	EnergyPJ float64
	// AccessesPerLevel counts word accesses (reads in + reads out +
	// updates) per storage level.
	AccessesPerLevel []float64
	MACs             float64
}

// Evaluate runs the model for a single operator.
func Evaluate(op *workload.Operator, m Mapping, spec *arch.Spec) (*Result, error) {
	if err := validate(op, m, spec); err != nil {
		return nil, err
	}

	// tileExtent[level][dim] = product of bounds of dim-loops at this
	// level and all levels below (inner), built by walking from the
	// innermost mapping level (last entry) outward.
	nLv := len(m.Levels)
	tile := make([]map[string]int, nLv)
	acc := map[string]int{}
	for _, d := range op.Dims {
		acc[d.Name] = 1
	}
	for i := nLv - 1; i >= 0; i-- {
		for _, l := range m.Levels[i].Loops {
			acc[l.Dim] *= l.Bound
		}
		snapshot := map[string]int{}
		for k, v := range acc {
			snapshot[k] = v
		}
		tile[i] = snapshot
	}

	// tensorTile computes a tensor's tile size (in words) for the
	// coverage at and below mapping level i.
	tensorTile := func(accs workload.Access, i int) float64 {
		v := 1.0
		for _, ix := range accs.Index {
			e := 1
			for _, t := range ix.Terms {
				e += t.Coef * (tile[i][t.Dim] - 1)
			}
			if e < 1 {
				e = 1
			}
			v *= float64(e)
		}
		return v
	}

	// relevant reports whether a loop dim indexes the tensor.
	relevant := func(accs workload.Access, dim string) bool {
		for _, ix := range accs.Index {
			for _, t := range ix.Terms {
				if t.Dim == dim {
					return true
				}
			}
		}
		return false
	}

	accesses := make([]float64, spec.NumLevels())
	// fills[i] = words entering mapping level i from the level above,
	// per tensor accumulated.
	fills := make([]float64, nLv)
	updates := make([]float64, nLv)

	handle := func(accs workload.Access, isWrite bool) {
		for i := 0; i < nLv; i++ {
			t := tensorTile(accs, i)
			// Refills: every relevant temporal loop above level i
			// multiplies; irrelevant loops reuse the tile in place.
			// Spatial loops above replicate the tile across units,
			// which also multiplies total traffic.
			mult := 1.0
			for j := 0; j < i; j++ {
				for _, l := range m.Levels[j].Loops {
					if l.Spatial || relevant(accs, l.Dim) {
						mult *= float64(l.Bound)
					}
				}
			}
			if isWrite {
				// Outputs drain once per distinct tile version; a
				// reduction loop above the level forces repeated
				// drains and refills of partials.
				red := 1.0
				for j := 0; j < i; j++ {
					for _, l := range m.Levels[j].Loops {
						if !l.Spatial && op.IsReduction(l.Dim) {
							red *= float64(l.Bound)
						}
					}
				}
				updates[i] += t * mult * red
				if red > 1 {
					fills[i] += t * mult * (red - 1)
				}
			} else {
				fills[i] += t * mult
			}
		}
	}
	for _, r := range op.Reads {
		handle(r, false)
	}
	handle(op.Write, true)

	// Attribute to the architecture's levels using the same convention as
	// the core model: a fill into mapping level i is written at its own
	// level and read at the level above; an update is written at the
	// level above.
	for i := 1; i < nLv; i++ {
		accesses[m.Levels[i].Level] += fills[i]
		accesses[m.Levels[i-1].Level] += fills[i] + updates[i]
	}

	// Latency: compute cycles on the spatial array, overlapped with
	// per-level transfers (double buffering), bounded by the slowest.
	spatialPEs := 1
	for _, ln := range m.Levels {
		for _, l := range ln.Loops {
			if l.Spatial {
				spatialPEs *= l.Bound
			}
		}
	}
	if spatialPEs > spec.TotalPEs() {
		return nil, fmt.Errorf("timeloop: mapping uses %d PEs, chip has %d", spatialPEs, spec.TotalPEs())
	}
	computeCycles := float64(op.OpCount()) / float64(spatialPEs*spec.MACsPerPE)
	cycles := computeCycles
	for i := 1; i < nLv; i++ {
		bw := spec.WordsPerCycle(m.Levels[i-1].Level)
		if bw <= 0 {
			continue
		}
		// Loads and stores overlap (separate directions, double
		// buffered), each against the level's bandwidth.
		if t := fills[i] / bw; t > cycles {
			cycles = t
		}
		if t := updates[i] / bw; t > cycles {
			cycles = t
		}
	}

	table := energy.TableFor(spec)
	macs := float64(op.OpCount())
	regAccesses := append([]float64(nil), accesses...)
	regAccesses[0] += 2 * macs
	bd := table.Estimate(regAccesses, macs, 0)

	return &Result{
		Cycles:           cycles,
		EnergyPJ:         bd.TotalPJ(),
		AccessesPerLevel: accesses,
		MACs:             macs,
	}, nil
}

func validate(op *workload.Operator, m Mapping, spec *arch.Spec) error {
	if len(m.Levels) == 0 {
		return fmt.Errorf("timeloop: empty mapping")
	}
	prod := map[string]int{}
	for _, d := range op.Dims {
		prod[d.Name] = 1
	}
	for _, ln := range m.Levels {
		if ln.Level < 0 || ln.Level >= spec.NumLevels() {
			return fmt.Errorf("timeloop: level %d outside architecture", ln.Level)
		}
		for _, l := range ln.Loops {
			if l.Bound < 1 {
				return fmt.Errorf("timeloop: loop %s bound %d", l.Dim, l.Bound)
			}
			if _, ok := prod[l.Dim]; !ok {
				return fmt.Errorf("timeloop: loop over unknown dim %q", l.Dim)
			}
			prod[l.Dim] *= l.Bound
		}
	}
	for _, d := range op.Dims {
		if prod[d.Name] != d.Size {
			return fmt.Errorf("timeloop: dim %s factored to %d, want %d", d.Name, prod[d.Name], d.Size)
		}
	}
	if math.IsNaN(float64(op.OpCount())) {
		return fmt.Errorf("timeloop: bad op count")
	}
	return nil
}
