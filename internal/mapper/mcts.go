// Package mapper implements TileFlow's design-space exploration (Sec 6): a
// Monte Carlo Tree Search over tiling factors, and a genetic algorithm over
// compute ordering and resource binding whose individuals are tuned by the
// MCTS — the combined workflow of Fig 7a.
package mapper

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataflows"
)

// Evaluation is one evaluated mapping: a concrete factor assignment and its
// modeled performance.
type Evaluation struct {
	Factors map[string]int
	Cycles  float64
	Result  *core.Result
}

// TileSearch tunes the tiling factors of one dataflow template with MCTS
// (Sec 6: "for each step, it selects one loop and assigns it a tiling
// factor within its trip counts ... the results are feedbacks to MCTS to
// update upper confidence bounds").
type TileSearch struct {
	Dataflow dataflows.Dataflow
	Spec     *arch.Spec
	Opts     core.Options
	// Rounds is the number of MCTS iterations (each evaluates one
	// complete mapping). The paper samples ~200 tiling choices per round.
	Rounds int
	// Seed makes the search deterministic.
	Seed int64
	// Explore is the UCB exploration constant (default √2).
	Explore float64

	// prog is the compiled program of the template's structure, reused
	// across rollouts when the dataflow declares StructureStable: each
	// candidate then pays only a tiling re-bind plus the evaluate half of
	// the pipeline instead of a full compile.
	prog *core.Program
}

// mctsNode is one node of the search tree: a prefix of factor decisions.
type mctsNode struct {
	visits   int
	total    float64 // sum of rewards
	children map[int]*mctsNode
}

func newMctsNode() *mctsNode { return &mctsNode{children: map[int]*mctsNode{}} }

// Run searches for the factor assignment minimizing cycles. It returns the
// best evaluation found and the best-so-far cycle count after every round
// (the Fig 9a convergence trace). When no valid mapping exists it returns
// nil with a nil error.
func (s *TileSearch) Run() (*Evaluation, []float64) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cancellation: the search stops at the next round
// boundary once ctx is done and returns the best evaluation found so far
// (MCTS is an anytime algorithm), so callers can budget wall time.
func (s *TileSearch) RunContext(ctx context.Context) (*Evaluation, []float64) {
	if ctx == nil {
		ctx = context.Background()
	}
	specs := s.Dataflow.Factors()
	rounds := s.Rounds
	if rounds <= 0 {
		rounds = 200
	}
	explore := s.Explore
	if explore == 0 {
		explore = math.Sqrt2
	}
	rng := rand.New(rand.NewSource(s.Seed))

	// Choice lists per factor, in a fixed decision order.
	choices := make([][]int, len(specs))
	for i, f := range specs {
		choices[i] = f.Choices()
	}

	root := newMctsNode()
	var best *Evaluation
	trace := make([]float64, 0, rounds)
	// worst tracks the largest finite cycle count seen, normalizing
	// rewards into (0, 1].
	worst := 0.0

	// Seed with the template's default factors so the search never
	// returns something worse than the untuned mapping.
	if ev := s.evaluate(ctx, s.Dataflow.DefaultFactors()); ev != nil {
		best = ev
		worst = ev.Cycles
	}

	for r := 0; r < rounds; r++ {
		if ctx.Err() != nil {
			break
		}
		// Selection + expansion.
		node := root
		path := []*mctsNode{root}
		assign := make([]int, 0, len(specs))
		depth := 0
		for depth < len(specs) {
			ci := s.selectChild(node, choices[depth], explore, rng)
			child, ok := node.children[ci]
			if !ok {
				child = newMctsNode()
				node.children[ci] = child
				assign = append(assign, ci)
				depth++
				path = append(path, child)
				node = child
				break // expansion: roll out from here
			}
			assign = append(assign, ci)
			depth++
			path = append(path, child)
			node = child
		}
		// Rollout: random completion.
		for d := depth; d < len(specs); d++ {
			assign = append(assign, rng.Intn(len(choices[d])))
		}
		factors := map[string]int{}
		for i, f := range specs {
			factors[f.Key] = choices[i][assign[i]]
		}
		ev := s.evaluate(ctx, factors)
		reward := 0.0
		if ev != nil {
			if ev.Cycles > worst {
				worst = ev.Cycles
			}
			reward = 1.0 / (1.0 + ev.Cycles/math.Max(1, worst))
			if best == nil || ev.Cycles < best.Cycles {
				best = ev
			}
		}
		for _, n := range path {
			n.visits++
			n.total += reward
		}
		if best != nil {
			trace = append(trace, best.Cycles)
		} else {
			trace = append(trace, math.Inf(1))
		}
	}
	return best, trace
}

// selectChild applies UCB1 over the expanded children, preferring an
// unexpanded choice when one exists.
func (s *TileSearch) selectChild(n *mctsNode, choices []int, explore float64, rng *rand.Rand) int {
	var unexpanded []int
	for i := range choices {
		if _, ok := n.children[i]; !ok {
			unexpanded = append(unexpanded, i)
		}
	}
	if len(unexpanded) > 0 {
		return unexpanded[rng.Intn(len(unexpanded))]
	}
	bestIdx, bestScore := 0, math.Inf(-1)
	// Deterministic iteration order for reproducibility.
	idxs := make([]int, 0, len(n.children))
	for i := range n.children {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		c := n.children[i]
		score := c.total/float64(c.visits) +
			explore*math.Sqrt(math.Log(float64(n.visits+1))/float64(c.visits))
		if score > bestScore {
			bestIdx, bestScore = i, score
		}
	}
	return bestIdx
}

func (s *TileSearch) evaluate(ctx context.Context, factors map[string]int) *Evaluation {
	root, err := s.Dataflow.Build(factors)
	if err != nil {
		return nil
	}
	// Static pre-screen: QuickReject fails with exactly the error the
	// pipeline would produce and passes only points no non-capacity rule
	// rejects, so pruning here discards the same candidates Compile or
	// Evaluate would — just without allocating a Program for them. Valid
	// points proceed to full evaluation unchanged.
	if core.QuickReject(root, s.Dataflow.Graph(), s.Spec, s.Opts) != nil {
		return nil
	}
	res, err := s.evaluateTree(ctx, root)
	if err != nil {
		return nil
	}
	return &Evaluation{Factors: factors, Cycles: res.Cycles, Result: res}
}

// evaluateTree evaluates one candidate tree. When the dataflow declares a
// stable structure the template is compiled once and every further
// candidate re-binds the compiled program to its tiling; otherwise each
// candidate compiles from scratch.
func (s *TileSearch) evaluateTree(ctx context.Context, root *core.Node) (*core.Result, error) {
	if !dataflows.IsStructureStable(s.Dataflow) {
		return core.EvaluateContext(ctx, root, s.Dataflow.Graph(), s.Spec, s.Opts)
	}
	if s.prog == nil {
		p, err := core.Compile(root, s.Dataflow.Graph(), s.Spec)
		if err != nil {
			return nil, err
		}
		s.prog = p
	}
	p, err := s.prog.WithTiling(root)
	if err != nil {
		// A template that mis-declares stability falls back to a fresh
		// compile rather than failing the candidate.
		p, err = core.Compile(root, s.Dataflow.Graph(), s.Spec)
		if err != nil {
			return nil, err
		}
		s.prog = p
	}
	return p.Evaluate(ctx, s.Opts)
}

// Tune is the convenience entry point the experiments use: it MCTS-tunes a
// dataflow's factors and returns the best evaluation, falling back to the
// default factors if the search finds nothing valid.
func Tune(df dataflows.Dataflow, spec *arch.Spec, opts core.Options, rounds int, seed int64) *Evaluation {
	return TuneContext(context.Background(), df, spec, opts, rounds, seed)
}

// TuneContext is Tune with cancellation, returning the best evaluation
// found before ctx expired (or nil when nothing valid was seen).
func TuneContext(ctx context.Context, df dataflows.Dataflow, spec *arch.Spec, opts core.Options, rounds int, seed int64) *Evaluation {
	s := &TileSearch{Dataflow: df, Spec: spec, Opts: opts, Rounds: rounds, Seed: seed}
	best, _ := s.RunContext(ctx)
	if best != nil {
		return best
	}
	// Fall back to defaults (may still be invalid; then nil).
	root, err := df.Build(df.DefaultFactors())
	if err != nil {
		return nil
	}
	res, err := core.EvaluateContext(ctx, root, df.Graph(), spec, opts)
	if err != nil {
		return nil
	}
	return &Evaluation{Factors: df.DefaultFactors(), Cycles: res.Cycles, Result: res}
}
