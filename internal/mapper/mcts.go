// Package mapper implements TileFlow's design-space exploration (Sec 6): a
// Monte Carlo Tree Search over tiling factors, and a genetic algorithm over
// compute ordering and resource binding whose individuals are tuned by the
// MCTS — the combined workflow of Fig 7a.
package mapper

import (
	"context"
	"errors"
	"math"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataflows"
)

// Evaluation is one evaluated mapping: a concrete factor assignment and its
// modeled performance.
type Evaluation struct {
	Factors map[string]int
	Cycles  float64
	Result  *core.Result
}

// TileSearch tunes the tiling factors of one dataflow template with MCTS
// (Sec 6: "for each step, it selects one loop and assigns it a tiling
// factor within its trip counts ... the results are feedbacks to MCTS to
// update upper confidence bounds").
type TileSearch struct {
	Dataflow dataflows.Dataflow
	Spec     *arch.Spec
	Opts     core.Options
	// Rounds is the number of MCTS iterations (each evaluates one
	// complete mapping). The paper samples ~200 tiling choices per round.
	Rounds int
	// Seed makes the search deterministic.
	Seed int64
	// Explore is the UCB exploration constant (default √2).
	Explore float64
	// Domains, when set, restricts each factor's candidate list to the
	// given values before the search starts — the narrowed per-factor
	// domains of the search-space analyzer (spaceck.Report.AllowedMap),
	// passed as plain data so the mapper never depends on the analyzer.
	// Keys absent from the map keep their full divisor list; a key mapped
	// to an empty (or disjoint) set proves the space empty and the search
	// returns immediately. Domains must be sound — only values no
	// feasible point uses may be missing — or the search will skip valid
	// mappings.
	Domains map[string][]int

	// prog is the compiled program of the template's structure, reused
	// across rollouts when the dataflow declares StructureStable: each
	// candidate then pays only a tiling re-bind plus the evaluate half of
	// the pipeline instead of a full compile. delta carries the incremental
	// re-evaluation state across rollouts — successive MCTS candidates
	// differ by a handful of factors, so most of the tree's analysis is
	// replayed from the cache instead of recomputed.
	prog  *core.Program
	delta *core.DeltaState

	// Reusable per-round buffers (one RunContext at a time per TileSearch,
	// which prog/delta already require).
	selBuf  []int
	pathBuf []*mctsNode
	assign  []int
	factors map[string]int
}

// mctsNode is one node of the search tree: a prefix of factor decisions.
// children is indexed by choice position and allocated on first use (leaf
// nodes never allocate one); a nil entry is an unexpanded choice.
type mctsNode struct {
	visits   int
	total    float64 // sum of rewards
	children []*mctsNode
}

func newMctsNode() *mctsNode { return &mctsNode{} }

// ensureChildren sizes the node's child slice for its choice list.
func (n *mctsNode) ensureChildren(k int) {
	if n.children == nil {
		n.children = make([]*mctsNode, k)
	}
}

// Run searches for the factor assignment minimizing cycles. It returns the
// best evaluation found and the best-so-far cycle count after every round
// (the Fig 9a convergence trace). When no valid mapping exists it returns
// nil with a nil error.
func (s *TileSearch) Run() (*Evaluation, []float64) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cancellation: the search stops at the next round
// boundary once ctx is done and returns the best evaluation found so far
// (MCTS is an anytime algorithm), so callers can budget wall time.
func (s *TileSearch) RunContext(ctx context.Context) (*Evaluation, []float64) {
	if ctx == nil {
		ctx = context.Background()
	}
	specs := s.Dataflow.Factors()
	rounds := s.Rounds
	if rounds <= 0 {
		rounds = 200
	}
	explore := s.Explore
	if explore == 0 {
		explore = math.Sqrt2
	}
	rng := rand.New(rand.NewSource(s.Seed))

	// Choice lists per factor, in a fixed decision order, narrowed to the
	// analyzer's domains when the caller provides them: MCTS never expands
	// a pruned value, so the whole subtree under it is skipped rather than
	// sampled and rejected.
	choices := make([][]int, len(specs))
	for i, f := range specs {
		choices[i] = f.Choices()
		if dom, ok := s.Domains[f.Key]; ok {
			choices[i] = intersectChoices(choices[i], dom)
			if len(choices[i]) == 0 {
				// The analyzer proved every value of this factor infeasible:
				// the space has no valid point, matching "no valid mapping"
				// (nil best, empty trace).
				return nil, nil
			}
		}
	}

	root := newMctsNode()
	var best *Evaluation
	trace := make([]float64, 0, rounds)
	// worst tracks the largest finite cycle count seen, normalizing
	// rewards into (0, 1].
	worst := 0.0

	// Seed with the template's default factors so the search never
	// returns something worse than the untuned mapping.
	if ev := s.evaluate(ctx, s.Dataflow.DefaultFactors()); ev != nil {
		ev.Result = ev.Result.Clone() // detach from the delta arena
		best = ev
		worst = ev.Cycles
	}

	// Opening window: the first len(choices[0]) rounds each expand a fresh
	// root child picked by the RNG alone — no selection in this window
	// reads a reward — so their candidates can be constructed up front and
	// evaluated in one EvaluateBatch call without changing the search
	// trajectory. A GA generation tunes every individual through here, so
	// each individual's opening rollouts are amortized over one arena pass.
	startRound := 0
	if len(specs) > 0 && dataflows.IsStructureStable(s.Dataflow) {
		startRound = s.openingBatch(ctx, root, specs, choices, rng, rounds, &best, &worst, &trace)
	}

	if s.factors == nil {
		s.factors = make(map[string]int, len(specs))
	}
	for r := startRound; r < rounds; r++ {
		if ctx.Err() != nil {
			break
		}
		// Selection + expansion.
		node := root
		path := append(s.pathBuf[:0], root)
		assign := s.assign[:0]
		depth := 0
		for depth < len(specs) {
			ci := s.selectChild(node, choices[depth], explore, rng)
			child := node.children[ci]
			if child == nil {
				child = newMctsNode()
				node.children[ci] = child
				assign = append(assign, ci)
				depth++
				path = append(path, child)
				node = child
				break // expansion: roll out from here
			}
			assign = append(assign, ci)
			depth++
			path = append(path, child)
			node = child
		}
		// Rollout: random completion.
		for d := depth; d < len(specs); d++ {
			assign = append(assign, rng.Intn(len(choices[d])))
		}
		s.pathBuf, s.assign = path, assign
		factors := s.factors
		clear(factors)
		for i, f := range specs {
			factors[f.Key] = choices[i][assign[i]]
		}
		ev := s.evaluate(ctx, factors)
		reward := 0.0
		if ev != nil {
			if ev.Cycles > worst {
				worst = ev.Cycles
			}
			reward = 1.0 / (1.0 + ev.Cycles/math.Max(1, worst))
			if best == nil || ev.Cycles < best.Cycles {
				ev.Result = ev.Result.Clone() // detach from the delta arena
				// Detach the factor map too: the rollout buffer is reused
				// next round.
				ev.Factors = make(map[string]int, len(factors))
				for k, v := range factors {
					ev.Factors[k] = v
				}
				best = ev
			}
		}
		for _, n := range path {
			n.visits++
			n.total += reward
		}
		if best != nil {
			trace = append(trace, best.Cycles)
		} else {
			trace = append(trace, math.Inf(1))
		}
	}
	return best, trace
}

// openingBatch runs the first min(len(choices[0]), rounds) MCTS rounds as
// one batched generation: it replays the sequential rounds' RNG draws to
// construct each round's candidate (every round in this window expands an
// unexpanded root child and completes the assignment randomly), evaluates
// all of them through Program.EvaluateBatch, and then backpropagates the
// rewards in round order. Candidate selection, RNG consumption, reward
// normalization, statistics, best-so-far, and trace are identical to the
// sequential rounds — the batch only amortizes the evaluation setup.
// Returns the number of rounds consumed.
func (s *TileSearch) openingBatch(ctx context.Context, root *mctsNode, specs []dataflows.FactorSpec, choices [][]int, rng *rand.Rand, rounds int, best **Evaluation, worst *float64, trace *[]float64) int {
	k := len(choices[0])
	if k > rounds {
		k = rounds
	}
	type cand struct {
		child   *mctsNode
		factors map[string]int
	}
	cands := make([]cand, 0, k)
	trees := make([]*core.Node, 0, k)
	root.ensureChildren(len(choices[0]))
	for r := 0; r < k; r++ {
		// Replicate selectChild on a root with unexpanded children.
		unexpanded := s.selBuf[:0]
		for i := range choices[0] {
			if root.children[i] == nil {
				unexpanded = append(unexpanded, i)
			}
		}
		s.selBuf = unexpanded
		ci := unexpanded[rng.Intn(len(unexpanded))]
		child := newMctsNode()
		root.children[ci] = child
		factors := map[string]int{specs[0].Key: choices[0][ci]}
		for d := 1; d < len(specs); d++ {
			factors[specs[d].Key] = choices[d][rng.Intn(len(choices[d]))]
		}
		tree, err := s.Dataflow.Build(factors)
		if err != nil {
			tree = nil
		}
		cands = append(cands, cand{child: child, factors: factors})
		trees = append(trees, tree)
	}
	// Make sure a compiled program exists (the default-factors seed
	// usually established it; a failed seed Build leaves it nil).
	if s.prog == nil {
		for _, tree := range trees {
			if tree == nil {
				continue
			}
			if p, err := core.Compile(tree, s.Dataflow.Graph(), s.Spec); err == nil {
				s.prog = p
				s.delta = p.NewDelta(s.Opts)
				break
			}
		}
	}
	var results []*core.Result
	var errs []error
	if s.prog != nil {
		results, errs = s.prog.EvaluateBatch(ctx, trees, s.Opts)
	}
	for r := 0; r < k; r++ {
		if ctx.Err() != nil {
			return r
		}
		var ev *Evaluation
		switch {
		case trees[r] == nil || s.prog == nil:
			// Build or compile failed: the sequential round would have
			// discarded the candidate the same way.
		case errs[r] == nil:
			ev = &Evaluation{Factors: cands[r].factors, Cycles: results[r].Cycles, Result: results[r]}
		case errors.Is(errs[r], core.ErrStructureMismatch):
			// Same fallback as evaluateTree: a mis-declared stable
			// structure recompiles. A genuinely invalid tiling (any other
			// ErrInvalidMapping) is discarded exactly as the sequential
			// round would discard it.
			if res, err := s.evaluateTree(ctx, trees[r]); err == nil {
				ev = &Evaluation{Factors: cands[r].factors, Cycles: res.Cycles, Result: res}
			}
		}
		reward := 0.0
		if ev != nil {
			if ev.Cycles > *worst {
				*worst = ev.Cycles
			}
			reward = 1.0 / (1.0 + ev.Cycles/math.Max(1, *worst))
			if *best == nil || ev.Cycles < (*best).Cycles {
				ev.Result = ev.Result.Clone() // detach from the batch/delta arena
				*best = ev
			}
		}
		root.visits++
		root.total += reward
		cands[r].child.visits++
		cands[r].child.total += reward
		if *best != nil {
			*trace = append(*trace, (*best).Cycles)
		} else {
			*trace = append(*trace, math.Inf(1))
		}
	}
	return k
}

// selectChild applies UCB1 over the expanded children, preferring an
// unexpanded choice when one exists.
func (s *TileSearch) selectChild(n *mctsNode, choices []int, explore float64, rng *rand.Rand) int {
	n.ensureChildren(len(choices))
	unexpanded := s.selBuf[:0]
	for i := range choices {
		if n.children[i] == nil {
			unexpanded = append(unexpanded, i)
		}
	}
	s.selBuf = unexpanded
	if len(unexpanded) > 0 {
		return unexpanded[rng.Intn(len(unexpanded))]
	}
	bestIdx, bestScore := 0, math.Inf(-1)
	// Ascending index order (what the map form's sorted iteration gave),
	// for reproducibility.
	for i, c := range n.children {
		if c == nil {
			continue
		}
		score := c.total/float64(c.visits) +
			explore*math.Sqrt(math.Log(float64(n.visits+1))/float64(c.visits))
		if score > bestScore {
			bestIdx, bestScore = i, score
		}
	}
	return bestIdx
}

// evaluate builds and evaluates one factor assignment. On the compiled
// fast path the returned Evaluation's Result aliases the search's delta
// arena and is valid only until the next rollout; RunContext clones it when
// it becomes the best-so-far.
func (s *TileSearch) evaluate(ctx context.Context, factors map[string]int) *Evaluation {
	root, err := s.Dataflow.Build(factors)
	if err != nil {
		return nil
	}
	if !dataflows.IsStructureStable(s.Dataflow) {
		// Static pre-screen: QuickReject fails with exactly the error the
		// pipeline would produce and passes only points no non-capacity
		// rule rejects, so pruning here discards the same candidates
		// Compile or Evaluate would — just without allocating a Program
		// for them. On the compiled path below the pre-screen is skipped:
		// the delta evaluator rejects the same points with the same errors
		// at a fraction of a full static pass's cost.
		if core.QuickReject(root, s.Dataflow.Graph(), s.Spec, s.Opts) != nil {
			return nil
		}
	}
	res, err := s.evaluateTree(ctx, root)
	if err != nil {
		return nil
	}
	return &Evaluation{Factors: factors, Cycles: res.Cycles, Result: res}
}

// evaluateTree evaluates one candidate tree. When the dataflow declares a
// stable structure the template is compiled once and every further
// candidate re-binds into the incremental evaluator, paying only for the
// subtrees whose loop nests changed since the previous rollout; otherwise
// each candidate compiles from scratch.
func (s *TileSearch) evaluateTree(ctx context.Context, root *core.Node) (*core.Result, error) {
	if !dataflows.IsStructureStable(s.Dataflow) {
		return core.EvaluateContext(ctx, root, s.Dataflow.Graph(), s.Spec, s.Opts)
	}
	if s.prog == nil {
		p, err := core.Compile(root, s.Dataflow.Graph(), s.Spec)
		if err != nil {
			return nil, err
		}
		s.prog = p
		s.delta = p.NewDelta(s.Opts)
	}
	res, err := s.prog.EvaluateDelta(ctx, s.delta, root, s.Opts)
	if err == nil {
		return res, nil
	}
	if !errors.Is(err, core.ErrStructureMismatch) {
		// A genuinely invalid tiling of the compiled structure: a fresh
		// compile would reproduce the identical validation error (the delta
		// pass is pinned to the full pass's first error), so return it
		// without paying for one.
		return nil, err
	}
	// The re-bind rejected this tree's shape: the template mis-declares a
	// stable structure. A fresh compile adopts the new structure.
	p, cerr := core.Compile(root, s.Dataflow.Graph(), s.Spec)
	if cerr != nil {
		return nil, cerr
	}
	s.prog = p
	s.delta = p.NewDelta(s.Opts)
	return s.prog.EvaluateDelta(ctx, s.delta, root, s.Opts)
}

// intersectChoices keeps the values of choices present in dom, preserving
// the choice order so the narrowed search stays deterministic.
func intersectChoices(choices, dom []int) []int {
	set := make(map[int]bool, len(dom))
	for _, v := range dom {
		set[v] = true
	}
	out := make([]int, 0, len(choices))
	for _, v := range choices {
		if set[v] {
			out = append(out, v)
		}
	}
	return out
}

// Tune is the convenience entry point the experiments use: it MCTS-tunes a
// dataflow's factors and returns the best evaluation, falling back to the
// default factors if the search finds nothing valid.
func Tune(df dataflows.Dataflow, spec *arch.Spec, opts core.Options, rounds int, seed int64) *Evaluation {
	return TuneContext(context.Background(), df, spec, opts, rounds, seed)
}

// TuneContext is Tune with cancellation, returning the best evaluation
// found before ctx expired (or nil when nothing valid was seen).
func TuneContext(ctx context.Context, df dataflows.Dataflow, spec *arch.Spec, opts core.Options, rounds int, seed int64) *Evaluation {
	s := &TileSearch{Dataflow: df, Spec: spec, Opts: opts, Rounds: rounds, Seed: seed}
	best, _ := s.RunContext(ctx)
	if best != nil {
		return best
	}
	// Fall back to defaults (may still be invalid; then nil).
	root, err := df.Build(df.DefaultFactors())
	if err != nil {
		return nil
	}
	res, err := core.EvaluateContext(ctx, root, df.Graph(), spec, opts)
	if err != nil {
		return nil
	}
	return &Evaluation{Factors: df.DefaultFactors(), Cycles: res.Cycles, Result: res}
}
