package mapper

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/workload"
)

// Encoding is the Fig 7b representation of a point in the ordering/binding
// plane of the 3D design space: one column per operator with a fusion
// target, the memory level where the fusion stages data, and the inter-tile
// binding primitive.
type Encoding struct {
	// Target[i] is the index of the operator that operator i fuses into,
	// or -1 when operator i is mapped at the top level on its own.
	Target []int
	// Mem[i] is the memory level of the fusion (1..DRAM-1); ignored when
	// Target[i] < 0.
	Mem []int
	// Binding[i] is the inter-tile primitive binding operator i to its
	// fusion host's node.
	Binding []core.Binding
}

// Clone deep-copies the encoding.
func (e *Encoding) Clone() *Encoding {
	return &Encoding{
		Target:  append([]int(nil), e.Target...),
		Mem:     append([]int(nil), e.Mem...),
		Binding: append([]core.Binding(nil), e.Binding...),
	}
}

// String renders the encoding as a Fig 7b style table row.
func (e *Encoding) String() string {
	var b strings.Builder
	for i := range e.Target {
		if i > 0 {
			b.WriteString(" ")
		}
		if e.Target[i] < 0 {
			fmt.Fprintf(&b, "op%d:top", i)
		} else {
			fmt.Fprintf(&b, "op%d->op%d@L%d:%s", i, e.Target[i], e.Mem[i], e.Binding[i])
		}
	}
	return b.String()
}

// LayerwiseEncoding maps every operator at the top level (the no-fusion
// point of the ordering plane).
func LayerwiseEncoding(n int) *Encoding {
	e := &Encoding{Target: make([]int, n), Mem: make([]int, n), Binding: make([]core.Binding, n)}
	for i := range e.Target {
		e.Target[i] = -1
		e.Mem[i] = 1
	}
	return e
}

// Repair makes the encoding structurally valid in place: targets must point
// to later operators (keeping the schedule a forest in topological order)
// and fusion levels must fit inside the host's own chain.
func (e *Encoding) Repair(numLevels int) {
	n := len(e.Target)
	maxMem := numLevels - 2 // deepest on-chip level index
	if maxMem < 1 {
		maxMem = 1
	}
	for i := 0; i < n; i++ {
		if e.Target[i] >= 0 && (e.Target[i] <= i || e.Target[i] >= n) {
			e.Target[i] = -1
		}
		if e.Mem[i] < 1 {
			e.Mem[i] = 1
		}
		if e.Mem[i] > maxMem {
			e.Mem[i] = maxMem
		}
	}
	// Clamp fusion levels below the host's own span, walking hosts in
	// reverse topological order so chains settle in one pass. An op whose
	// host has no interior node left to fuse under reverts to top level.
	span := make([]int, n) // top level of each op's chain (0 = leaf only)
	for i := n - 1; i >= 0; i-- {
		if e.Target[i] < 0 {
			span[i] = maxMem
			continue
		}
		host := e.Target[i]
		if span[host] < 1 {
			e.Target[i] = -1
			span[i] = maxMem
			continue
		}
		if e.Mem[i] > span[host] {
			e.Mem[i] = span[host]
		}
		span[i] = e.Mem[i] - 1
	}
}

// GeneratedDataflow wraps an encoding as a dataflows.Dataflow so the MCTS
// tiling search applies unchanged: the tiling plane of the 3D space is the
// per-level, per-dimension factor table of Fig 7c.
type GeneratedDataflow struct {
	Label string
	G     *workload.Graph
	Spec  *arch.Spec
	Enc   *Encoding
	// SpatialDim is split across cores at the root; SubDim across
	// sub-cores at each top chain's innermost node (Cloud).
	SpatialDim string
	SubDim     string
	// LeafSpatial picks leaf spatial dims per op.
	LeafSpatial func(op *workload.Operator) []string
}

// NewGeneratedDataflow builds the wrapper with sensible spatial choices for
// the known workload families.
func NewGeneratedDataflow(label string, g *workload.Graph, spec *arch.Spec, enc *Encoding) *GeneratedDataflow {
	gd := &GeneratedDataflow{Label: label, G: g, Spec: spec, Enc: enc}
	if g.DimSize("h") > 0 && g.DimSize("m") > 0 { // attention
		gd.SpatialDim, gd.SubDim = "h", "m"
		gd.LeafSpatial = func(op *workload.Operator) []string {
			switch {
			case op.Name == "LV":
				return []string{"m", "n"}
			case op.Kind.Vector():
				return []string{"l"}
			default:
				return []string{"m", "l"}
			}
		}
	} else { // convolution chain (any channel-dim naming)
		gd.SpatialDim, gd.SubDim = "h", "w"
		gd.LeafSpatial = func(op *workload.Operator) []string {
			var dims []string
			// Output channels: write dims other than the image plane.
			for _, d := range op.Write.Dims() {
				if d != "h" && d != "w" {
					dims = append(dims, d)
				}
			}
			// Input channels: the largest reduction dim (filter taps are
			// tiny; the channel reduction dominates).
			best, bsz := "", 1
			for _, rd := range op.ReductionDims() {
				if sz := op.DimSize(rd); sz > bsz {
					best, bsz = rd, sz
				}
			}
			if best != "" {
				dims = append(dims, best)
			}
			return dims
		}
	}
	return gd
}

func (d *GeneratedDataflow) Name() string           { return d.Label }
func (d *GeneratedDataflow) Graph() *workload.Graph { return d.G }

// StructureStable: the encoding fixes the tree shape (chains, attach
// points, bindings); the factor assignment fills loop extents only.
func (d *GeneratedDataflow) StructureStable() bool { return true }

// Factors implements Dataflow: one factor per on-chip level per dimension
// ("L<level>_<dim>"), plus the spatial splits.
func (d *GeneratedDataflow) Factors() []dataflows.FactorSpec {
	var fs []dataflows.FactorSpec
	maxMem := d.Spec.NumLevels() - 2
	dims := d.G.AllDims()
	for l := maxMem; l >= 1; l-- {
		for _, dim := range dims {
			if dim.Size <= 1 {
				continue
			}
			fs = append(fs, dataflows.FactorSpec{
				Key:   fmt.Sprintf("L%d_%s", l, dim.Name),
				Total: dim.Size,
				Doc:   fmt.Sprintf("temporal tiles of %s at level %d nodes", dim.Name, l),
			})
		}
	}
	if n := d.G.DimSize(d.SpatialDim); n > 1 {
		fs = append(fs, dataflows.FactorSpec{Key: "sp_c", Total: n, Doc: "spatial split across cores"})
	}
	if d.Spec.NumLevels() >= 4 {
		if n := d.G.DimSize(d.SubDim); n > 1 {
			fs = append(fs, dataflows.FactorSpec{Key: "sp_s", Total: n, Doc: "spatial split across sub-cores"})
		}
	}
	return fs
}

// DefaultFactors implements Dataflow: unit tiling everywhere except the
// spatial splits.
func (d *GeneratedDataflow) DefaultFactors() map[string]int {
	f := map[string]int{}
	if n := d.G.DimSize(d.SpatialDim); n > 1 {
		f["sp_c"] = dataflows.DivisorAtMost(n, d.Spec.Levels[d.Spec.DRAMLevel()].Fanout)
	}
	if d.Spec.NumLevels() >= 4 {
		if n := d.G.DimSize(d.SubDim); n > 1 {
			f["sp_s"] = dataflows.DivisorAtMost(n, d.Spec.Levels[2].Fanout)
		}
	}
	return f
}

// chain is one operator's column of nodes during generation.
type chain struct {
	op    *workload.Operator
	top   int // highest level of the op's own nodes
	nodes map[int]*core.Node
	leaf  *core.Node
}

// Build implements Dataflow: it converts the encoding into an analysis tree
// (Fig 7b) with the factor table as loops (Fig 7c).
func (d *GeneratedDataflow) Build(f map[string]int) (*core.Node, error) {
	enc := d.Enc.Clone()
	enc.Repair(d.Spec.NumLevels())
	n := len(d.G.Ops)
	if n != len(enc.Target) {
		return nil, fmt.Errorf("mapper: encoding for %d ops, graph has %d", len(enc.Target), n)
	}
	maxMem := d.Spec.NumLevels() - 2

	factor := func(level int, dim string) int {
		v := f[fmt.Sprintf("L%d_%s", level, dim)]
		if v <= 0 {
			v = 1
		}
		return v
	}

	// Each op's chain spans levels [1, top] plus its leaf. Top-level ops
	// span the full on-chip hierarchy; fused ops span below their fusion
	// level.
	chains := make([]*chain, n)
	for i := n - 1; i >= 0; i-- {
		op := d.G.Ops[i]
		top := maxMem
		if enc.Target[i] >= 0 {
			top = enc.Mem[i] - 1
		}
		c := &chain{op: op, top: top, nodes: map[int]*core.Node{}}
		for l := top; l >= 1; l-- {
			var loops []core.Loop
			for _, dim := range op.DimNames() {
				if v := factor(l, dim); v > 1 && op.DimSize(dim)%v == 0 {
					loops = append(loops, core.T(dim, v))
				}
			}
			c.nodes[l] = core.Tile(fmt.Sprintf("%s@L%d", op.Name, l), l, core.Seq, loops)
		}
		chains[i] = c
	}

	// Root with the spatial splits.
	var rootLoops []core.Loop
	if v, ok := f["sp_c"]; ok && v > 1 {
		if d.G.DimSize(d.SpatialDim)%v != 0 {
			return nil, fmt.Errorf("mapper: sp_c=%d does not divide %s", v, d.SpatialDim)
		}
		rootLoops = append(rootLoops, core.S(d.SpatialDim, v))
	}
	spS := 1
	if v, ok := f["sp_s"]; ok && v > 1 {
		if d.G.DimSize(d.SubDim)%v != 0 {
			return nil, fmt.Errorf("mapper: sp_s=%d does not divide %s", v, d.SubDim)
		}
		spS = v
	}
	root := core.Tile(d.Label, d.Spec.DRAMLevel(), core.Seq, rootLoops)

	// Assemble: compute each leaf's remaining extents from the factors on
	// its ancestor path, then attach chains.
	attach := func(parent, child *core.Node, binding core.Binding, front bool) {
		if front {
			parent.Children = append([]*core.Node{child}, parent.Children...)
		} else {
			parent.Children = append(parent.Children, child)
		}
		if binding != core.Seq {
			parent.Binding = binding
		}
	}

	// Wire chain interiors and leaves.
	for i, c := range chains {
		// Sub-core spatial split goes on the innermost interior node
		// of top-level chains.
		if enc.Target[i] < 0 && spS > 1 {
			if node := c.nodes[1]; node != nil && c.op.HasDim(d.SubDim) {
				node.Loops = append([]core.Loop{core.S(d.SubDim, spS)}, node.Loops...)
			}
		}
		for l := c.top; l > 1; l-- {
			c.nodes[l].Children = []*core.Node{c.nodes[l-1]}
		}
	}
	// Attach fused chains to their hosts (reverse order keeps producer
	// tiles before their consumers under the same host node).
	for i := n - 1; i >= 0; i-- {
		c := chains[i]
		if enc.Target[i] < 0 {
			continue
		}
		host := chains[enc.Target[i]]
		hostNode := host.nodes[enc.Mem[i]]
		if hostNode == nil {
			return nil, fmt.Errorf("mapper: op %d fused at level %d but host has no node there", i, enc.Mem[i])
		}
		var sub *core.Node
		if c.top >= 1 {
			sub = c.nodes[c.top]
		}
		if sub == nil {
			sub = d.placeholderLeaf(c)
		}
		attach(hostNode, sub, enc.Binding[i], true)
	}
	// Attach top-level chains under the root in topological order.
	for i := 0; i < n; i++ {
		if enc.Target[i] < 0 {
			attach(root, chains[i].nodes[chains[i].top], core.Seq, false)
		}
	}

	// Now that the tree shape is final, compute leaf extents from the
	// actual ancestor paths.
	if err := d.fillLeaves(root, chains); err != nil {
		return nil, err
	}
	return root, nil
}

// placeholderLeaf builds a leaf with loops to be filled in later.
func (d *GeneratedDataflow) placeholderLeaf(c *chain) *core.Node {
	c.leaf = core.Leaf(c.op.Name, c.op)
	return c.leaf
}

// fillLeaves walks the final tree, computes every operator's remaining
// per-dimension extents given its ancestors' loops, and writes the leaf
// loop nests.
func (d *GeneratedDataflow) fillLeaves(root *core.Node, chains []*chain) error {
	// Ensure every chain interior ends in a leaf.
	for _, c := range chains {
		if c.leaf == nil {
			c.leaf = core.Leaf(c.op.Name, c.op)
			bottom := c.nodes[1]
			if bottom == nil {
				// Fused at level 1 with no interior: the leaf was
				// already attached by placeholderLeaf... or the chain
				// is top==0, impossible for top-level ops.
				return fmt.Errorf("mapper: op %s chain has no interior node", c.op.Name)
			}
			bottom.Children = append(bottom.Children, c.leaf)
		}
	}
	// Parent map.
	parent := map[*core.Node]*core.Node{}
	root.Walk(func(n *core.Node) {
		for _, ch := range n.Children {
			parent[ch] = n
		}
	})
	for _, c := range chains {
		covered := map[string]int{}
		for _, dim := range c.op.DimNames() {
			covered[dim] = 1
		}
		for a := parent[c.leaf]; a != nil; a = parent[a] {
			for _, l := range a.Loops {
				if _, ok := covered[l.Dim]; ok {
					covered[l.Dim] *= l.Extent
				}
			}
		}
		rem := map[string]int{}
		for _, dim := range c.op.Dims {
			if dim.Size%covered[dim.Name] != 0 {
				return fmt.Errorf("mapper: op %s dim %s: path factors %d do not divide %d",
					c.op.Name, dim.Name, covered[dim.Name], dim.Size)
			}
			rem[dim.Name] = dim.Size / covered[dim.Name]
		}
		// MAC leaves running concurrently under a Para/Pipe ancestor
		// must share the PE array.
		budget := d.Spec.MeshX * d.Spec.MeshY
		if !c.op.Kind.Vector() {
			for a := parent[c.leaf]; a != nil; a = parent[a] {
				if a.Binding.Spatial() && len(a.Children) > 1 {
					macs := 0
					for _, leaf := range a.Leaves() {
						if !leaf.Op.Kind.Vector() {
							macs++
						}
					}
					if macs > 1 {
						budget = max(1, budget/macs)
					}
					break
				}
			}
		}
		c.leaf.Loops = leafLoopsFor(c.op, d.Spec, rem, d.LeafSpatial(c.op), budget)
	}
	return nil
}

// leafLoopsFor mirrors the dataflows package's leaf construction: temporal
// loops (reductions innermost) then spatial loops sized to the available
// lanes.
func leafLoopsFor(op *workload.Operator, spec *arch.Spec, rem map[string]int, spatialDims []string, budget int) []core.Loop {
	var loops []core.Loop
	spat := map[string]int{}
	if op.Kind.Vector() {
		if len(spatialDims) > 0 {
			d := spatialDims[0]
			spat[d] = dataflows.DivisorAtMost(rem[d], spec.VectorLanesPerSubcore)
		}
	} else {
		used := 1
		if len(spatialDims) > 0 {
			d := spatialDims[0]
			spat[d] = dataflows.DivisorAtMost(rem[d], min(spec.MeshX, budget))
			used = spat[d]
		}
		if len(spatialDims) > 1 {
			d := spatialDims[1]
			spat[d] = dataflows.DivisorAtMost(rem[d], min(spec.MeshY, max(1, budget/used)))
		}
	}
	dims := append([]workload.Dim(nil), op.Dims...)
	sort.SliceStable(dims, func(i, j int) bool {
		ri, rj := op.IsReduction(dims[i].Name), op.IsReduction(dims[j].Name)
		return !ri && rj
	})
	for _, dim := range dims {
		e := rem[dim.Name]
		if e <= 0 {
			e = 1
		}
		s := spat[dim.Name]
		if s < 1 {
			s = 1
		}
		if t := e / s; t > 1 {
			loops = append(loops, core.T(dim.Name, t))
		}
	}
	for _, dim := range dims {
		if s := spat[dim.Name]; s > 1 {
			loops = append(loops, core.S(dim.Name, s))
		}
	}
	return loops
}
