package mapper

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/workload"
)

func checkpointSearch(t *testing.T, parallel int) *TreeSearch {
	t.Helper()
	shape, ok := workload.AttentionShapeByName("ViT/16-B")
	if !ok {
		t.Fatal("shape not found")
	}
	return &TreeSearch{
		G: workload.Attention(shape), Spec: arch.Edge(),
		Population: 5, Generations: 5, TileRounds: 12, Parallel: parallel,
		Seed: 20240805,
	}
}

type fullOutcome struct {
	cycles   float64
	energy   float64
	enc      string
	factors  map[string]int
	trace    []float64
	notation string
}

func outcomeOf(t *testing.T, r *TreeSearchResult) fullOutcome {
	t.Helper()
	if r.Best == nil {
		t.Fatal("search found nothing")
	}
	if r.Best.Result == nil {
		t.Fatal("best has no core.Result")
	}
	return fullOutcome{
		cycles:  r.Best.Cycles,
		energy:  r.Best.Result.EnergyPJ(),
		enc:     r.Encoding.String(),
		factors: r.Best.Factors,
		trace:   r.Trace,
	}
}

func (a fullOutcome) equal(b fullOutcome) bool {
	return a.cycles == b.cycles && a.energy == b.energy && a.enc == b.enc &&
		reflect.DeepEqual(a.factors, b.factors) && reflect.DeepEqual(a.trace, b.trace)
}

// interruptAt runs the search and kills it right after generation k
// completes, returning the checkpoint emitted at that boundary after a
// round-trip through the JSON codec (exactly what the job store and the
// CLI persist).
func interruptAt(t *testing.T, s *TreeSearch, k int) *Checkpoint {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var cp *Checkpoint
	s.Progress = func(p ProgressEvent) {
		if p.Generation == k {
			cp = p.Checkpoint
			cancel()
		}
	}
	s.RunContext(ctx)
	if cp == nil {
		t.Fatalf("no checkpoint captured at generation %d", k)
	}
	b, err := EncodeCheckpoint(cp)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := DecodeCheckpoint(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return decoded
}

// TestKillAndResumeEquivalence is the PR's acceptance gate: a search
// interrupted at ANY generation boundary and resumed from the serialized
// checkpoint produces the identical best encoding, cycles, energy,
// factors, and generation-by-generation trace as the uninterrupted run
// with the same seed.
func TestKillAndResumeEquivalence(t *testing.T) {
	full := checkpointSearch(t, 4)
	want := outcomeOf(t, full.Run())

	for k := 1; k <= 5; k++ {
		cp := interruptAt(t, checkpointSearch(t, 4), k)
		if got, wantGen := cp.NextGen, k; got != wantGen {
			t.Fatalf("checkpoint at generation %d has next_gen %d", k, got)
		}
		resumed := checkpointSearch(t, 4)
		if err := resumed.Resume(cp); err != nil {
			t.Fatalf("resume at gen %d: %v", k, err)
		}
		got := outcomeOf(t, resumed.Run())
		if !got.equal(want) {
			t.Errorf("resume at generation %d diverged:\nwant %+v\ngot  %+v", k, want, got)
		}
	}
}

// TestResumeCompletedCheckpoint: resuming the final checkpoint re-runs
// nothing and still reports the identical winner, with the core.Result
// rebuilt by the finalizer.
func TestResumeCompletedCheckpoint(t *testing.T) {
	want := outcomeOf(t, checkpointSearch(t, 2).Run())

	var last *Checkpoint
	s := checkpointSearch(t, 2)
	s.Progress = func(p ProgressEvent) { last = p.Checkpoint }
	s.Run()
	if last == nil || !last.Complete() {
		t.Fatalf("final checkpoint missing or incomplete: %+v", last)
	}
	b, err := EncodeCheckpoint(last)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := DecodeCheckpoint(b)
	if err != nil {
		t.Fatal(err)
	}
	resumed := checkpointSearch(t, 2)
	if err := resumed.Resume(cp); err != nil {
		t.Fatal(err)
	}
	got := outcomeOf(t, resumed.Run())
	if !got.equal(want) {
		t.Errorf("resumed-complete run differs:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestCheckpointRoundTripInfinities: infeasible fitness and pre-feasible
// trace entries are infinite; the codec must round-trip them bit-exactly.
func TestCheckpointRoundTripInfinities(t *testing.T) {
	cp := &Checkpoint{
		Version:     CheckpointVersion,
		Fingerprint: "abc",
		Population:  2,
		Generations: 4,
		TopK:        2,
		NextGen:     1,
		RNGDraws:    17,
		Individuals: []EncodingState{
			{Target: []int{-1}, Mem: []int{1}, Binding: []int{0}},
			{Target: []int{-1}, Mem: []int{2}, Binding: []int{3}},
		},
		Tuned: []TunedStats{
			{Encoding: EncodingState{Target: []int{-1}, Mem: []int{1}, Binding: []int{0}}, Infeasible: true, Cycles: cpFloat(math.Inf(1)), Rounds: 40},
			{Encoding: EncodingState{Target: []int{-1}, Mem: []int{2}, Binding: []int{3}}, Cycles: 1234.5678901234, Factors: map[string]int{"L1_m": 4}, Rounds: 40},
		},
		Trace: []cpFloat{cpFloat(math.Inf(1)), 1234.5678901234},
	}
	b, err := EncodeCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp, got) {
		t.Errorf("round trip mutated checkpoint:\nwant %+v\ngot  %+v", cp, got)
	}
}

// TestResumeRejectsMismatchedCheckpoint: a checkpoint must only resume the
// exact search it came from.
func TestResumeRejectsMismatchedCheckpoint(t *testing.T) {
	cp := interruptAt(t, checkpointSearch(t, 1), 2)

	other := checkpointSearch(t, 1)
	other.Seed = 999 // different seed → different fingerprint
	if err := other.Resume(cp); err == nil {
		t.Error("Resume accepted a checkpoint from a different seed")
	}

	shaped := checkpointSearch(t, 1)
	shaped.Population = 9 // different GA shape
	if err := shaped.Resume(cp); err == nil {
		t.Error("Resume accepted a checkpoint with a different population")
	}

	if _, err := DecodeCheckpoint([]byte(`{"version":99}`)); err == nil {
		t.Error("DecodeCheckpoint accepted an unknown version")
	}
	if _, err := DecodeCheckpoint([]byte(`not json`)); err == nil {
		t.Error("DecodeCheckpoint accepted garbage")
	}
}

// TestRunContextIgnoresIncompatibleCheckpoint: RunContext with a stale
// checkpoint installed directly (bypassing Resume) starts fresh rather
// than corrupting the run — the recovery behavior a server wants after a
// deploy changes the search configuration.
func TestRunContextIgnoresIncompatibleCheckpoint(t *testing.T) {
	want := outcomeOf(t, checkpointSearch(t, 1).Run())

	cp := interruptAt(t, checkpointSearch(t, 1), 2)
	s := checkpointSearch(t, 1)
	cp.Fingerprint = "stale"
	s.Checkpoint = cp
	got := outcomeOf(t, s.Run())
	if !got.equal(want) {
		t.Errorf("incompatible checkpoint changed the result:\nwant %+v\ngot  %+v", want, got)
	}
}
