package mapper

import (
	"sort"
)

// WarmStart seeds this search's initial population from a donor
// checkpoint of a structurally identical design point (same operator
// count; typically same graph structure with different tensor shapes).
// Donor encodings are taken best-first — the donor's best candidate,
// then its tuned feasible candidates by ascending cycles, then its final
// population in order — deduplicated, and capped at population-1 slots
// (slot 0 stays the layerwise no-fusion anchor). Returns how many seeds
// were installed; zero (donor structurally incompatible, or nothing
// usable) leaves the search cold.
//
// Safety: only encodings (genotypes) cross over. Fitness, tuned factors,
// and RNG state stay behind — the new search re-evaluates every seed
// under its own fitness-cache namespace (which includes the new shapes
// and seed), so a donor from different shapes can cost generations but
// can never import a wrong fitness value. Warm-starting intentionally
// changes the search trajectory versus cold; a checkpoint taken from a
// warm-started run embeds the seeded population, so kill/resume
// byte-identity within the run is unaffected.
func (s *TreeSearch) WarmStart(cp *Checkpoint) int {
	if cp == nil {
		return 0
	}
	n := len(s.G.Ops)
	pop, _, _, _ := s.knobs()
	max := pop - 1
	if max <= 0 {
		return 0
	}

	fits := func(es EncodingState) bool {
		return len(es.Target) == n && len(es.Mem) == n && len(es.Binding) == n
	}

	var donors []EncodingState
	if cp.Best != nil && !cp.Best.Infeasible {
		donors = append(donors, cp.Best.Encoding)
	}
	feasible := make([]TunedStats, 0, len(cp.Tuned))
	for _, ts := range cp.Tuned {
		if !ts.Infeasible {
			feasible = append(feasible, ts)
		}
	}
	sort.SliceStable(feasible, func(a, b int) bool {
		if feasible[a].Cycles != feasible[b].Cycles {
			return feasible[a].Cycles < feasible[b].Cycles
		}
		return feasible[a].Encoding.encoding().String() < feasible[b].Encoding.encoding().String()
	})
	for _, ts := range feasible {
		donors = append(donors, ts.Encoding)
	}
	donors = append(donors, cp.Individuals...)

	numLevels := s.Spec.NumLevels()
	seen := map[string]bool{LayerwiseEncoding(n).String(): true}
	var seeds []EncodingState
	for _, es := range donors {
		if len(seeds) >= max {
			break
		}
		if !fits(es) {
			continue
		}
		enc := es.encoding()
		enc.Repair(numLevels)
		key := enc.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		seeds = append(seeds, encodingState(enc))
	}
	s.SeedPopulation = seeds
	return len(seeds)
}
