package mapper

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/memo"
	"repro/internal/workload"
)

// attentionGraph builds the attention workload for a Table 2 shape name.
func attentionGraph(t *testing.T, name string) *workload.Graph {
	t.Helper()
	shape, ok := workload.AttentionShapeByName(name)
	if !ok {
		t.Fatalf("no attention shape %q", name)
	}
	return workload.Attention(shape)
}

// donorCheckpoint runs a small search to completion and returns its last
// generation-boundary checkpoint.
func donorCheckpoint(t *testing.T, g *workload.Graph, seed int64) *Checkpoint {
	t.Helper()
	var last *Checkpoint
	s := &TreeSearch{
		G: g, Spec: arch.Edge(),
		Population: 6, Generations: 2, TileRounds: 4, TopK: 2, Parallel: 1, Seed: seed,
		Progress: func(ev ProgressEvent) { last = ev.Checkpoint },
	}
	if res := s.Run(); res.Best == nil {
		t.Fatal("donor search found nothing feasible")
	}
	if last == nil {
		t.Fatal("no checkpoint captured")
	}
	return last
}

func TestWarmStartSeedsPopulation(t *testing.T) {
	donor := donorCheckpoint(t, attentionGraph(t, "Bert-S"), 1)

	// Structure-identical, shape-different target.
	warm := &TreeSearch{
		G: attentionGraph(t, "Bert-L"), Spec: arch.Edge(),
		Population: 6, Generations: 2, TileRounds: 4, TopK: 2, Parallel: 1, Seed: 2,
	}
	n := warm.WarmStart(donor)
	if n == 0 || n > 5 { // capped at population-1
		t.Fatalf("installed %d seeds", n)
	}
	if len(warm.SeedPopulation) != n {
		t.Fatalf("SeedPopulation len %d != %d", len(warm.SeedPopulation), n)
	}
	// Best donor candidate leads the seed list.
	if donor.Best == nil {
		t.Fatal("donor has no best")
	}
	bestKey := donor.Best.Encoding.encoding().String()
	lw := LayerwiseEncoding(len(warm.G.Ops)).String()
	if got := warm.SeedPopulation[0].encoding().String(); got != bestKey && bestKey != lw {
		t.Fatalf("first seed %q is not the donor best %q", got, bestKey)
	}
	// No duplicates, and the layerwise anchor is never duplicated.
	seen := map[string]bool{lw: true}
	for _, es := range warm.SeedPopulation {
		k := es.encoding().String()
		if seen[k] {
			t.Fatalf("duplicate seed %q", k)
		}
		seen[k] = true
	}
	if res := warm.Run(); res.Best == nil {
		t.Fatal("warm search found nothing feasible")
	}
}

func TestWarmStartRejectsForeignStructure(t *testing.T) {
	donor := donorCheckpoint(t, attentionGraph(t, "Bert-S"), 1)
	warm := &TreeSearch{
		G: workload.Matmul(32, 32, 32), Spec: arch.Edge(),
		Population: 6, Generations: 2, TileRounds: 6, TopK: 2, Parallel: 1, Seed: 2,
	}
	if n := warm.WarmStart(donor); n != 0 {
		t.Fatalf("foreign-structure donor installed %d seeds", n)
	}
	if warm.WarmStart(nil) != 0 {
		t.Fatal("nil donor installed seeds")
	}
}

// spyCache records every cache key crossing it.
type spyCache struct {
	mu   sync.Mutex
	keys []string
}

func (c *spyCache) Get(key string) (any, bool) { c.record(key); return nil, false }
func (c *spyCache) Put(key string, v any)      { c.record(key) }
func (c *spyCache) Len() int                   { return 0 }
func (c *spyCache) Stats() memo.Stats          { return memo.Stats{} }
func (c *spyCache) record(key string) {
	c.mu.Lock()
	c.keys = append(c.keys, key)
	c.mu.Unlock()
}

var _ memo.Cache = (*spyCache)(nil)

// TestWarmStartNoFitnessCrossesNamespaces is the cache-poisoning safety
// gate: a warm-started search must confine every fitness cache access to
// its OWN namespace (fitness key prefix over its arch, its shapes, its
// seed). Donor fitness values live under the donor's prefix; if any key
// from a warm run ever carried a foreign prefix, a stale donor could
// poison the new search's results.
func TestWarmStartNoFitnessCrossesNamespaces(t *testing.T) {
	donor := donorCheckpoint(t, attentionGraph(t, "Bert-S"), 1)

	spy := &spyCache{}
	warm := &TreeSearch{
		G: attentionGraph(t, "Bert-L"), Spec: arch.Edge(),
		Population: 6, Generations: 2, TileRounds: 4, TopK: 2, Parallel: 1, Seed: 2,
		Cache: spy,
	}
	if warm.WarmStart(donor) == 0 {
		t.Fatal("no seeds installed")
	}
	ownPrefix := warm.fitnessKeyPrefix()

	donorSearch := &TreeSearch{
		G: attentionGraph(t, "Bert-S"), Spec: arch.Edge(),
		Population: 6, Generations: 2, TileRounds: 4, TopK: 2, Parallel: 1, Seed: 1,
	}
	donorPrefix := donorSearch.fitnessKeyPrefix()
	if ownPrefix == donorPrefix {
		t.Fatal("test defeated: prefixes collide")
	}

	warm.Run()
	spy.mu.Lock()
	defer spy.mu.Unlock()
	if len(spy.keys) == 0 {
		t.Fatal("no cache traffic observed")
	}
	for _, k := range spy.keys {
		if !strings.HasPrefix(k, ownPrefix) {
			t.Fatalf("cache key outside own namespace: %q", k)
		}
		if strings.HasPrefix(k, donorPrefix) {
			t.Fatalf("cache key in donor namespace: %q", k)
		}
	}
}
