package mapper

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/memo"
	"repro/internal/workload"
)

func TestGeneratedDataflowLayerwise(t *testing.T) {
	shape, _ := workload.AttentionShapeByName("Bert-S")
	g := workload.Attention(shape)
	spec := arch.Edge()
	gd := NewGeneratedDataflow("layerwise", g, spec, LayerwiseEncoding(len(g.Ops)))
	root, err := gd.Build(gd.DefaultFactors())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Evaluate(root, g, spec, core.Options{SkipCapacityCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatalf("cycles %v", res.Cycles)
	}
}

func TestGeneratedDataflowFused(t *testing.T) {
	shape, _ := workload.AttentionShapeByName("ViT/16-B")
	g := workload.Attention(shape)
	spec := arch.Edge()
	// Fuse everything into LV (the last op) at L1, pipelined: the
	// TileFlow-dataflow shape.
	n := len(g.Ops)
	enc := LayerwiseEncoding(n)
	for i := 0; i < n-1; i++ {
		enc.Target[i] = n - 1
		enc.Mem[i] = 1
		enc.Binding[i] = core.Pipe
	}
	gd := NewGeneratedDataflow("fused", g, spec, enc)
	root, err := gd.Build(gd.DefaultFactors())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Evaluate(root, g, spec, core.Options{SkipCapacityCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	// All intermediates confined on chip: DRAM traffic ≈ inputs + output.
	minIO := float64(g.Tensors["Q"].Volume() + g.Tensors["K"].Volume() +
		g.Tensors["V"].Volume() + g.Tensors["A"].Volume())
	if res.DRAMTraffic() > 4*minIO {
		t.Errorf("fused DRAM traffic %v suspiciously high (io volume %v)", res.DRAMTraffic(), minIO)
	}

	// Layerwise moves more DRAM data.
	lw := NewGeneratedDataflow("layerwise", g, spec, LayerwiseEncoding(n))
	lroot, err := lw.Build(lw.DefaultFactors())
	if err != nil {
		t.Fatal(err)
	}
	lres, err := core.Evaluate(lroot, g, spec, core.Options{SkipCapacityCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.DRAMTraffic() >= lres.DRAMTraffic() {
		t.Errorf("fused DRAM %v not below layerwise %v", res.DRAMTraffic(), lres.DRAMTraffic())
	}
}

func TestTreeSearchFindsFusion(t *testing.T) {
	shape, _ := workload.AttentionShapeByName("ViT/16-B")
	g := workload.Attention(shape)
	spec := arch.Edge()
	s := &TreeSearch{
		G: g, Spec: spec,
		Population: 10, Generations: 8, TileRounds: 30, Seed: 7,
	}
	res := s.Run()
	if res.Best == nil {
		t.Fatal("search found nothing")
	}
	if len(res.Trace) != 8 {
		t.Fatalf("trace length %d", len(res.Trace))
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i] > res.Trace[i-1] {
			t.Fatalf("trace not monotone at %d", i)
		}
	}
	// The search must beat tuned layerwise: fusion is discoverable.
	lw := NewGeneratedDataflow("layerwise", g, spec, LayerwiseEncoding(len(g.Ops)))
	ts := &TileSearch{Dataflow: lw, Spec: spec, Rounds: 100, Seed: 7}
	lbest, _ := ts.Run()
	if lbest == nil {
		t.Fatal("layerwise tuning failed")
	}
	if res.Best.Cycles >= lbest.Cycles {
		t.Errorf("3D search best %v does not beat tuned layerwise %v", res.Best.Cycles, lbest.Cycles)
	}
	t.Logf("3D best %.3g (enc %s) vs layerwise %.3g", res.Best.Cycles, res.Encoding, lbest.Cycles)
}

// TestTreeSearchSharedCacheIsolation: two searches over different design
// points sharing one cache (as requests through the evaluation service do)
// must produce exactly the results they produce with private caches. The
// encoding alone is an ambiguous key — any two workloads with equal op
// counts emit identical encodings — so this guards the fitness-key
// namespacing.
func TestTreeSearchSharedCacheIsolation(t *testing.T) {
	shape, _ := workload.AttentionShapeByName("Bert-S")
	gA := workload.Attention(shape)
	gB := workload.Attention(shape) // same op count, different arch below
	search := func(g *workload.Graph, spec *arch.Spec, cache memo.Cache) *TreeSearchResult {
		s := &TreeSearch{
			G: g, Spec: spec,
			Population: 6, Generations: 2, TileRounds: 6, TopK: 2, Seed: 11,
			Cache: cache,
		}
		return s.Run()
	}

	wantA := search(gA, arch.Edge(), nil)
	wantB := search(gB, arch.Cloud(), nil)
	if wantA.Best == nil || wantB.Best == nil {
		t.Fatal("reference searches found nothing")
	}
	if wantA.Best.Cycles == wantB.Best.Cycles {
		t.Fatal("test vacuous: both design points yield identical cycles")
	}

	shared := memo.NewShardedLRU(4096)
	gotA := search(gA, arch.Edge(), shared)
	gotB := search(gB, arch.Cloud(), shared) // would read A's entries if unprefixed
	if gotA.Best == nil || gotA.Best.Cycles != wantA.Best.Cycles {
		t.Errorf("search A through shared cache: got %v, want %v", gotA.Best, wantA.Best)
	}
	if gotB.Best == nil || gotB.Best.Cycles != wantB.Best.Cycles {
		t.Errorf("search B poisoned by shared cache: got cycles %v, want %v",
			gotB.Best.Cycles, wantB.Best.Cycles)
	}
	if gotB.Encoding.String() != wantB.Encoding.String() {
		t.Errorf("search B encoding drifted under shared cache: %s vs %s",
			gotB.Encoding, wantB.Encoding)
	}
}

func TestEncodingRepair(t *testing.T) {
	e := &Encoding{
		Target:  []int{2, 0, 5, -1, 3, -1}, // op1->op0 invalid (backward), op2->op5
		Mem:     []int{9, 0, 1, 1, 1, 1},
		Binding: make([]core.Binding, 6),
	}
	e.Repair(4) // maxMem = 2
	if e.Target[1] != -1 {
		t.Errorf("backward target not cleared: %v", e.Target)
	}
	for i, m := range e.Mem {
		if e.Target[i] >= 0 && (m < 1 || m > 2) {
			t.Errorf("mem[%d]=%d out of range", i, m)
		}
	}
}

// TestTreeSearchGeneralizesToDeepChains: the 3D-space mapper handles an
// N-operator workload it has no template for — a three-convolution chain —
// and discovers a fusion that beats layerwise, demonstrating the
// generality the paper's introduction claims over layer-pair tools.
func TestTreeSearchGeneralizesToDeepChains(t *testing.T) {
	g := workload.ConvChainN("cc3deep", 32, 32, 3, []int{16, 32, 32, 16})
	spec := arch.Edge()
	s := &TreeSearch{G: g, Spec: spec, Population: 10, Generations: 8, TileRounds: 30, Seed: 21}
	res := s.Run()
	if res.Best == nil {
		t.Fatal("search found nothing")
	}
	lw := NewGeneratedDataflow("layerwise", g, spec, LayerwiseEncoding(len(g.Ops)))
	ts := &TileSearch{Dataflow: lw, Spec: spec, Rounds: 120, Seed: 21}
	lbest, _ := ts.Run()
	if lbest == nil {
		t.Fatal("layerwise tuning failed")
	}
	if res.Best.Cycles > lbest.Cycles {
		t.Errorf("3D search %v worse than layerwise %v on the 3-conv chain", res.Best.Cycles, lbest.Cycles)
	}
	// Whether the winner confines an intermediate depends on whether the
	// chain is memory-bound at this size; log the discovered schedule.
	for _, tensor := range []string{"Act1", "Act2"} {
		if dm := res.Best.Result.TensorDM[tensor]; dm != nil {
			t.Logf("%s DRAM traffic: %.0f", tensor, dm[spec.DRAMLevel()].Total())
		}
	}
	t.Logf("3-conv chain: best %.4g (%s) vs layerwise %.4g", res.Best.Cycles, res.Encoding, lbest.Cycles)
}
