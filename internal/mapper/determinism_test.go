package mapper

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/arch"
	"repro/internal/dataflows"
	"repro/internal/workload"
)

// These regression tests pin seed determinism down to the full trace and
// across scheduler configurations: the searches parallelize fitness
// evaluation, so any reduction that depends on completion order (instead of
// deterministic tie-breaking) shows up as a GOMAXPROCS- or Parallel-
// dependent result.

type gaOutcome struct {
	cycles  float64
	enc     string
	factors map[string]int
	trace   []float64
}

func runGA(t *testing.T, parallel int) gaOutcome {
	t.Helper()
	shape, ok := workload.AttentionShapeByName("ViT/16-B")
	if !ok {
		t.Fatal("shape not found")
	}
	g := workload.Attention(shape)
	s := &TreeSearch{
		G: g, Spec: arch.Edge(),
		Population: 6, Generations: 3, TileRounds: 15, Parallel: parallel,
		Seed: 20240805,
	}
	r := s.Run()
	if r.Best == nil {
		t.Fatal("search found nothing")
	}
	return gaOutcome{cycles: r.Best.Cycles, enc: r.Encoding.String(), factors: r.Best.Factors, trace: r.Trace}
}

func (a gaOutcome) equal(b gaOutcome) bool {
	return a.cycles == b.cycles && a.enc == b.enc &&
		reflect.DeepEqual(a.factors, b.factors) && reflect.DeepEqual(a.trace, b.trace)
}

// TestTreeSearchSeedDeterminismFullTrace: same seed, same best point and
// same generation-by-generation trace across repeat runs and across serial
// vs parallel fitness evaluation.
func TestTreeSearchSeedDeterminismFullTrace(t *testing.T) {
	serial := runGA(t, 1)
	again := runGA(t, 1)
	if !serial.equal(again) {
		t.Fatalf("two serial runs differ:\n%+v\n%+v", serial, again)
	}
	wide := runGA(t, 8)
	if !serial.equal(wide) {
		t.Fatalf("Parallel=1 and Parallel=8 differ:\n%+v\n%+v", serial, wide)
	}
}

// TestTreeSearchDeterminismAcrossParallelismAndResume: the ISSUE 5
// satellite check in one place — the same seed with Parallel ∈ {1, 2, 8}
// and with a mid-run checkpoint/resume (through the JSON codec) all yield
// the identical best encoding, cycles, factors, and trace.
func TestTreeSearchDeterminismAcrossParallelismAndResume(t *testing.T) {
	want := runGA(t, 1)
	for _, p := range []int{2, 8} {
		if got := runGA(t, p); !want.equal(got) {
			t.Fatalf("Parallel=1 and Parallel=%d differ:\n%+v\n%+v", p, got, want)
		}
	}

	cp := interruptAt(t, checkpointSearch(t, 2), 2) // gens 1–2 done, 3–5 to go
	resumed := checkpointSearch(t, 8)               // resume at different parallelism too
	if err := resumed.Resume(cp); err != nil {
		t.Fatal(err)
	}
	got := outcomeOf(t, resumed.Run())
	full := outcomeOf(t, checkpointSearch(t, 1).Run())
	if !got.equal(full) {
		t.Fatalf("checkpoint/resume run differs from uninterrupted run:\n%+v\n%+v", got, full)
	}
}

// TestTreeSearchSeedDeterminismAcrossGOMAXPROCS: the scheduler setting must
// not leak into results either.
func TestTreeSearchSeedDeterminismAcrossGOMAXPROCS(t *testing.T) {
	wide := runGA(t, 0) // default parallelism at default GOMAXPROCS
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	narrow := runGA(t, 0)
	if !wide.equal(narrow) {
		t.Fatalf("GOMAXPROCS=default and GOMAXPROCS=1 differ:\n%+v\n%+v", wide, narrow)
	}
}

type mctsOutcome struct {
	cycles  float64
	factors map[string]int
	trace   []float64
}

func runMCTS(t *testing.T) mctsOutcome {
	t.Helper()
	shape, ok := workload.AttentionShapeByName("ViT/16-B")
	if !ok {
		t.Fatal("shape not found")
	}
	spec := arch.Edge()
	df := dataflows.FLATRGran(shape, spec)
	s := &TileSearch{Dataflow: df, Spec: spec, Rounds: 80, Seed: 20240805}
	best, trace := s.Run()
	if best == nil {
		t.Fatal("no valid mapping")
	}
	return mctsOutcome{cycles: best.Cycles, factors: best.Factors, trace: trace}
}

// TestTileSearchSeedDeterminismFullTrace: repeat runs and GOMAXPROCS=1 must
// reproduce the identical best factors and best-so-far trace.
func TestTileSearchSeedDeterminismFullTrace(t *testing.T) {
	a := runMCTS(t)
	b := runMCTS(t)
	if a.cycles != b.cycles || !reflect.DeepEqual(a.factors, b.factors) || !reflect.DeepEqual(a.trace, b.trace) {
		t.Fatalf("two runs differ:\n%+v\n%+v", a, b)
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	c := runMCTS(t)
	if a.cycles != c.cycles || !reflect.DeepEqual(a.factors, c.factors) || !reflect.DeepEqual(a.trace, c.trace) {
		t.Fatalf("GOMAXPROCS=1 run differs:\n%+v\n%+v", a, c)
	}
}
