package mapper

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/spaceck"
	"repro/internal/workload"
)

// narrowSpec is a 4-PE machine (mesh 2×2): spatial splits past 4 trip the
// pe-budget rule, so the analyzer prunes most of the spatial factor's
// divisor list.
func narrowSpec() *arch.Spec {
	return &arch.Spec{
		Name: "narrow-bench",
		Levels: []arch.Level{
			{Name: "Reg", CapacityBytes: 2 << 10, Fanout: 1},
			{Name: "L1", CapacityBytes: 1 << 20, BandwidthGBs: 100, Fanout: 4},
			{Name: "DRAM", CapacityBytes: 0, BandwidthGBs: 10, Fanout: 1},
		},
		MeshX: 2, MeshY: 2,
		FreqGHz: 1, WordBytes: 2, MACsPerPE: 1, VectorLanesPerSubcore: 2,
	}
}

func narrowGraph(i, k int) *workload.Graph {
	op := &workload.Operator{
		Name: "A", Kind: workload.KindMAC,
		Dims: []workload.Dim{{Name: "i", Size: i}, {Name: "k", Size: k}},
		Reads: []workload.Access{
			{Tensor: "Q", Index: []workload.Index{workload.I("i"), workload.I("k")}},
		},
		Write: workload.Access{Tensor: "O", Index: []workload.Index{workload.I("i")}},
	}
	return workload.MustGraph("narrow", workload.WordBytes, op)
}

// narrowTemplate has a temporal root factor `a` and a spatial leaf factor
// `b`, both over the divisors of i. On narrowSpec every b > 4 is infeasible
// (pe-budget) whatever a is — 4 of b's 7 divisors, so ~57% of uniformly
// sampled assignments carry a provably dead value. Assignments with
// a·b > i fail to build, in or out of the narrowed domains alike.
type narrowTemplate struct {
	g *workload.Graph
	i int
}

func (t *narrowTemplate) Name() string           { return "narrow-template" }
func (t *narrowTemplate) Graph() *workload.Graph { return t.g }
func (t *narrowTemplate) StructureStable() bool  { return false }
func (t *narrowTemplate) Factors() []dataflows.FactorSpec {
	return []dataflows.FactorSpec{
		{Key: "a", Total: t.i, Doc: "temporal i tile at DRAM"},
		{Key: "b", Total: t.i, Doc: "spatial i split at the leaf"},
	}
}
func (t *narrowTemplate) DefaultFactors() map[string]int { return map[string]int{"a": 1, "b": 1} }
func (t *narrowTemplate) Build(f map[string]int) (*core.Node, error) {
	a, b := f["a"], f["b"]
	if a < 1 {
		a = 1
	}
	if b < 1 {
		b = 1
	}
	if t.i%(a*b) != 0 {
		return nil, fmt.Errorf("a*b=%d does not divide %d", a*b, t.i)
	}
	op := t.g.Op("A")
	loops := []core.Loop{core.T("i", t.i/(a*b)), core.T("k", 8)}
	if b > 1 {
		loops = append(loops, core.S("i", b))
	}
	leaf := core.Leaf("lf", op, loops...)
	t1 := core.Tile("t1", 1, core.Seq, nil, leaf)
	return core.Tile("r", 2, core.Seq, []core.Loop{core.T("i", a)}, t1), nil
}

// TestTileSearchDomainsSkipPruned: a search given the analyzer's narrowed
// domains never expands a pruned factor value (beyond the template-default
// seed) and still finds the same optimum as the unnarrowed search.
func TestTileSearchDomainsSkipPruned(t *testing.T) {
	df := &narrowTemplate{g: narrowGraph(16, 8), i: 16}
	spec := narrowSpec()
	rep := spaceck.Analyze(df, spec, spaceck.Options{})
	if !rep.Complete || rep.Empty {
		t.Fatalf("analysis: complete=%v empty=%v", rep.Complete, rep.Empty)
	}
	domains := rep.AllowedMap()
	if len(domains["b"]) >= len(dataflows.Divisors(16)) {
		t.Fatalf("expected b narrowed below its %d divisors, got %v", len(dataflows.Divisors(16)), domains["b"])
	}

	rec := &recordingDataflow{Dataflow: df}
	s := &TileSearch{Dataflow: rec, Spec: spec, Rounds: 120, Seed: 7, Domains: domains}
	best, trace := s.Run()
	if best == nil {
		t.Fatal("narrowed search found nothing")
	}
	if len(trace) == 0 {
		t.Fatal("no trace")
	}
	def := df.DefaultFactors()
	for _, f := range rec.built {
		if mapsEqual(f, def) {
			continue // the default-factors seed bypasses the domains by design
		}
		if !rep.Contains(f) {
			t.Errorf("search built pruned assignment %v", f)
		}
	}

	// Same optimum as the unnarrowed search (soundness end to end: the
	// pruned values cannot hold the best point).
	ref := &TileSearch{Dataflow: df, Spec: spec, Rounds: 120, Seed: 7}
	refBest, _ := ref.Run()
	if refBest == nil {
		t.Fatal("reference search found nothing")
	}
	if best.Cycles != refBest.Cycles {
		t.Errorf("narrowed best %v cycles, unnarrowed %v", best.Cycles, refBest.Cycles)
	}
}

// TestTileSearchEmptyDomain: a factor narrowed to nothing makes the search
// return "no valid mapping" immediately.
func TestTileSearchEmptyDomain(t *testing.T) {
	df := &narrowTemplate{g: narrowGraph(16, 8), i: 16}
	s := &TileSearch{Dataflow: df, Spec: narrowSpec(), Rounds: 50, Seed: 1,
		Domains: map[string][]int{"b": {}}}
	best, trace := s.Run()
	if best != nil || len(trace) != 0 {
		t.Errorf("empty domain: best=%v trace=%v, want nil/empty", best, trace)
	}
}

// TestTreeSearchNarrowInjection: the GA forwards Narrow's domains to every
// individual's tile search and keys the fitness cache on its presence.
func TestTreeSearchNarrowInjection(t *testing.T) {
	g := narrowGraph(16, 8)
	spec := narrowSpec()
	calls := 0
	narrow := func(df dataflows.Dataflow) map[string][]int {
		calls++
		return spaceck.Analyze(df, spec, spaceck.Options{MaxProbes: 2000}).AllowedMap()
	}
	s := &TreeSearch{G: g, Spec: spec, Population: 4, Generations: 2, TileRounds: 10,
		Seed: 3, Parallel: 1, Narrow: narrow}
	res := s.RunContext(nil)
	if calls == 0 {
		t.Fatal("Narrow was never called")
	}
	if res.Best == nil {
		t.Fatal("narrowed GA found nothing on a feasible workload")
	}
	with := s.fitnessKeyPrefix()
	s.Narrow = nil
	without := s.fitnessKeyPrefix()
	if with == without {
		t.Error("fitness cache key ignores narrowing; shared caches would collide")
	}
}

// recordingDataflow wraps a template and records every Build's factors.
type recordingDataflow struct {
	dataflows.Dataflow
	built []map[string]int
}

func (r *recordingDataflow) Build(f map[string]int) (*core.Node, error) {
	cp := make(map[string]int, len(f))
	for k, v := range f {
		cp[k] = v
	}
	r.built = append(r.built, cp)
	return r.Dataflow.Build(f)
}

func mapsEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// spaceckStream samples n factor assignments uniformly over the divisor
// grid — the invalid-heavy candidate stream (~57% carry a dead b value).
func spaceckStream(n int, total int) []map[string]int {
	divs := dataflows.Divisors(total)
	rng := rand.New(rand.NewSource(42))
	out := make([]map[string]int, n)
	for i := range out {
		out[i] = map[string]int{
			"a": divs[rng.Intn(len(divs))],
			"b": divs[rng.Intn(len(divs))],
		}
	}
	return out
}

// TestSpaceckThroughput is the PR 9 bench gate: on the invalid-heavy
// assignment stream, narrowing the space once with spaceck and membership-
// checking each candidate before the QuickReject prescreen must be at least
// 1.3x faster than prescreening every candidate (the PR 4 baseline), while
// accepting exactly the same candidates. Timing assertions are flaky on
// loaded CI machines, so the test only runs when TILEFLOW_BENCH=1; the
// measurements land in BENCH_PR9.json (TILEFLOW_SPACECK_BENCH_OUT) for the
// CI artifact.
func TestSpaceckThroughput(t *testing.T) {
	if os.Getenv("TILEFLOW_BENCH") != "1" {
		t.Skip("set TILEFLOW_BENCH=1 to run the timing assertion")
	}
	const total = 64
	df := &narrowTemplate{g: narrowGraph(total, 8), i: total}
	spec := narrowSpec()
	opts := core.Options{}
	stream := spaceckStream(20000, total)

	accepts := func(f map[string]int) bool {
		root, err := df.Build(f)
		if err != nil {
			return false
		}
		return core.QuickReject(root, df.Graph(), spec, opts) == nil
	}
	baseline := func() int {
		n := 0
		for _, f := range stream {
			if accepts(f) {
				n++
			}
		}
		return n
	}
	narrowed := func() int {
		// The analysis is part of the measured cost: it is paid once per
		// stream, exactly as a mapper narrows once before sampling. The
		// kept domains become per-key membership sets, the same plain-data
		// form TileSearch.Domains consumes.
		rep := spaceck.Analyze(df, spec, spaceck.Options{})
		sets := make(map[string]map[int]bool, len(rep.Factors))
		for k, vals := range rep.AllowedMap() {
			m := make(map[int]bool, len(vals))
			for _, v := range vals {
				m[v] = true
			}
			sets[k] = m
		}
		n := 0
		for _, f := range stream {
			dead := false
			for k, v := range f {
				if m, ok := sets[k]; ok && !m[v] {
					dead = true
					break
				}
			}
			if dead {
				continue // provably infeasible: no Build, no prescreen
			}
			if accepts(f) {
				n++
			}
		}
		return n
	}

	// The two paths must accept identical candidate sets (soundness means
	// membership filtering only drops points the prescreen would drop).
	rep := spaceck.Analyze(df, spec, spaceck.Options{})
	if !rep.Complete {
		t.Fatalf("bench space of %d points should narrow exactly", rep.SpaceSize)
	}
	dead := 0
	for _, f := range stream {
		in, ok := rep.Contains(f), accepts(f)
		if !in && ok {
			t.Fatalf("false prune: accepted assignment %v outside domains", f)
		}
		if !in {
			dead++
		}
	}
	deadFrac := float64(dead) / float64(len(stream))
	if deadFrac < 0.5 {
		t.Fatalf("stream only %.0f%% prunable; the gate wants an invalid-heavy stream", 100*deadFrac)
	}
	if b, n := baseline(), narrowed(); b != n {
		t.Fatalf("accept counts differ: baseline %d, narrowed %d", b, n)
	}

	baseline()
	narrowed() // warm-up
	const rounds = 15
	var tBase, tNarrow time.Duration
	for i := 0; i < rounds; i++ {
		s := time.Now()
		baseline()
		tBase += time.Since(s)
		s = time.Now()
		narrowed()
		tNarrow += time.Since(s)
	}
	ratio := float64(tBase) / float64(tNarrow)
	t.Logf("prescreen-only %v/stream, spaceck-narrowed %v/stream (%.0f%% of stream pruned without building), speedup %.2fx",
		tBase/rounds, tNarrow/rounds, 100*deadFrac, ratio)
	const required = 1.3
	if ratio < required {
		t.Errorf("narrowed stream only %.2fx faster, want >= %.1fx", ratio, required)
	}

	out := os.Getenv("TILEFLOW_SPACECK_BENCH_OUT")
	if out == "" {
		out = "BENCH_PR9.json"
	}
	report := map[string]any{
		"description":  "Search-space abstract interpretation gate (PR 9). Stream of 20000 uniformly sampled factor assignments over a 2-factor template on a 4-PE spec; ~57% carry a spatial factor value the analyzer proves infeasible (pe-budget). Baseline = PR 4's per-candidate Build+QuickReject prescreen; narrowed = one spaceck.Analyze per stream + domain membership check, with surviving candidates still prescreened, so both paths accept identical sets.",
		"cpu":          spaceckCPUModel(),
		"num_cpu":      runtime.NumCPU(),
		"go_bench_cmd": "TILEFLOW_BENCH=1 go test ./internal/mapper/ -run TestSpaceckThroughput -count=1 -v",
		"spaceck": map[string]any{
			"stream_len":           len(stream),
			"prunable_fraction":    spaceckRound3(deadFrac),
			"space_size":           rep.SpaceSize,
			"kept_size":            rep.KeptSize,
			"analyze_probes":       rep.Probes,
			"speedup_vs_prescreen": spaceckRound3(ratio),
			"identical_accepts":    true,
			"soundness_gate":       "internal/conformance TestSpaceckSoundness (>=500 seeded points, -race)",
		},
		"speedup_gate": map[string]any{
			"test":         "TestSpaceckThroughput (TILEFLOW_BENCH=1)",
			"required_min": required,
			"measured":     spaceckRound3(ratio),
		},
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

func spaceckRound3(v float64) float64 { return float64(int(v*1000+0.5)) / 1000 }

func spaceckCPUModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if strings.HasPrefix(line, "model name") {
				if _, after, ok := strings.Cut(line, ":"); ok {
					return strings.TrimSpace(after)
				}
			}
		}
	}
	return fmt.Sprintf("%s/%s (%d cores)", runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
}
