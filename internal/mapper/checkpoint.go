package mapper

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
)

// CheckpointVersion is the serialized checkpoint format version. Decoding
// rejects other versions, so a format change can never silently resume a
// stale file.
const CheckpointVersion = 1

// Checkpoint is the serializable state of a TreeSearch at a generation
// boundary. It captures everything the GA needs to continue exactly where
// it stopped — the current (not yet evaluated) population, the RNG stream
// position, the per-candidate tuning statistics, and the best-so-far — so
// a search killed at any checkpoint and resumed reproduces the identical
// trajectory and final best as an uninterrupted run with the same seed.
//
// The CLI (tileflow-search -checkpoint/-resume) and the job subsystem of
// the evaluation service both persist this one format through
// EncodeCheckpoint/DecodeCheckpoint.
type Checkpoint struct {
	Version int `json:"version"`
	// Fingerprint hashes the architecture, the canonical workload graph,
	// the evaluation options, the MCTS budget, and the seed (the same
	// material as the fitness cache namespace). Resume refuses a
	// checkpoint whose fingerprint does not match the configured search.
	Fingerprint string `json:"fingerprint"`
	Seed        int64  `json:"seed"`
	Population  int    `json:"population"`
	Generations int    `json:"generations"`
	TopK        int    `json:"top_k"`
	TileRounds  int    `json:"tile_rounds"`
	// NextGen is the index of the first generation still to run; equal to
	// Generations when the search already completed.
	NextGen int `json:"next_gen"`
	// RNGDraws counts the raw Int63 draws consumed from the seeded source.
	// Resume rebuilds the source from Seed and skips this many draws,
	// landing on the identical stream state.
	RNGDraws uint64 `json:"rng_draws"`
	// Individuals is the population NextGen will evaluate, in order (order
	// matters: the survivor sort is stable, so ties keep insertion order).
	Individuals []EncodingState `json:"individuals"`
	// Tuned is the per-candidate MCTS statistics accumulated so far: every
	// encoding's tuned outcome, keyed by its (repaired) encoding. Resume
	// seeds the fitness cache from it, so already-tuned candidates skip
	// the MCTS re-run.
	Tuned []TunedStats `json:"tuned,omitempty"`
	// Best is the best-so-far candidate, nil while nothing feasible has
	// been seen.
	Best *TunedStats `json:"best,omitempty"`
	// Trace is the best-so-far cycles after each completed generation
	// (infinite entries mark generations before the first feasible point).
	Trace []cpFloat `json:"trace,omitempty"`
}

// Complete reports whether the checkpoint captured a finished search.
func (cp *Checkpoint) Complete() bool { return cp.NextGen >= cp.Generations }

// EncodingState is the serialized form of an Encoding (one Fig 7b table
// row: per-operator fusion target, staging level, inter-tile binding).
type EncodingState struct {
	Target  []int `json:"target"`
	Mem     []int `json:"mem"`
	Binding []int `json:"binding"`
}

func encodingState(e *Encoding) EncodingState {
	s := EncodingState{
		Target: append([]int(nil), e.Target...),
		Mem:    append([]int(nil), e.Mem...),
	}
	s.Binding = make([]int, len(e.Binding))
	for i, b := range e.Binding {
		s.Binding[i] = int(b)
	}
	return s
}

func (s EncodingState) encoding() *Encoding {
	e := &Encoding{
		Target:  append([]int(nil), s.Target...),
		Mem:     append([]int(nil), s.Mem...),
		Binding: make([]core.Binding, len(s.Binding)),
	}
	for i, b := range s.Binding {
		e.Binding[i] = core.Binding(b)
	}
	return e
}

// TunedStats is one candidate's MCTS tuning outcome: the statistics the GA
// needs to treat the candidate as already evaluated. Infeasible candidates
// (no valid mapping within the budget) carry infinite cycles and no
// factors.
type TunedStats struct {
	Encoding   EncodingState  `json:"encoding"`
	Infeasible bool           `json:"infeasible,omitempty"`
	Cycles     cpFloat        `json:"cycles"`
	Factors    map[string]int `json:"factors,omitempty"`
	// Rounds is the MCTS budget the candidate was tuned with.
	Rounds int `json:"rounds"`
}

// cachedFitness rebuilds the fitness-cache entry for a restored candidate.
// The Evaluation carries no core.Result — the search finalizer re-derives
// the result for the winner, and nothing else reads it.
func (t *TunedStats) cachedFitness() *cachedFitness {
	if t.Infeasible {
		return &cachedFitness{cycles: math.Inf(1)}
	}
	return &cachedFitness{
		cycles: float64(t.Cycles),
		eval:   &Evaluation{Factors: cloneFactors(t.Factors), Cycles: float64(t.Cycles)},
	}
}

func cloneFactors(f map[string]int) map[string]int {
	if f == nil {
		return nil
	}
	out := make(map[string]int, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// cpFloat is a float64 that survives JSON: infinities (which appear in
// traces before the first feasible candidate and as infeasible fitness)
// are encoded as the strings "+inf"/"-inf", finite values as ordinary JSON
// numbers. encoding/json renders float64 with the shortest round-tripping
// representation, so decode(encode(x)) is bit-identical — a requirement,
// since resumed traces are compared for exact equality.
type cpFloat float64

func (f cpFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-inf"`), nil
	}
	return json.Marshal(v)
}

func (f *cpFloat) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"+inf"`:
		*f = cpFloat(math.Inf(1))
		return nil
	case `"-inf"`:
		*f = cpFloat(math.Inf(-1))
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = cpFloat(v)
	return nil
}

// EncodeCheckpoint serializes a checkpoint to its canonical JSON form.
func EncodeCheckpoint(cp *Checkpoint) ([]byte, error) {
	if cp == nil {
		return nil, fmt.Errorf("mapper: nil checkpoint")
	}
	return json.Marshal(cp)
}

// DecodeCheckpoint parses a checkpoint produced by EncodeCheckpoint,
// rejecting unknown versions and structurally inconsistent state.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	cp := &Checkpoint{}
	if err := json.Unmarshal(b, cp); err != nil {
		return nil, fmt.Errorf("mapper: bad checkpoint: %w", err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("mapper: checkpoint version %d, want %d", cp.Version, CheckpointVersion)
	}
	if cp.NextGen < 0 || cp.NextGen > cp.Generations {
		return nil, fmt.Errorf("mapper: checkpoint next_gen %d outside [0, %d]", cp.NextGen, cp.Generations)
	}
	if len(cp.Individuals) != cp.Population {
		return nil, fmt.Errorf("mapper: checkpoint has %d individuals, population is %d", len(cp.Individuals), cp.Population)
	}
	return cp, nil
}

// Resume validates cp against this search's configuration and installs it,
// so the next RunContext continues from the checkpointed generation. The
// checkpoint must come from a search over the same architecture, workload,
// options, and seed (fingerprint) with the same GA shape.
func (s *TreeSearch) Resume(cp *Checkpoint) error {
	if cp == nil {
		return fmt.Errorf("mapper: nil checkpoint")
	}
	if cp.Version != CheckpointVersion {
		return fmt.Errorf("mapper: checkpoint version %d, want %d", cp.Version, CheckpointVersion)
	}
	if got, want := cp.Fingerprint, s.Fingerprint(); got != want {
		return fmt.Errorf("mapper: checkpoint fingerprint %.12s… does not match this search (%.12s…): different arch, workload, options, tile budget, or seed", got, want)
	}
	pop, gens, topK, _ := s.knobs()
	if cp.Population != pop || cp.Generations != gens || cp.TopK != topK {
		return fmt.Errorf("mapper: checkpoint GA shape pop=%d gens=%d topk=%d does not match configured pop=%d gens=%d topk=%d",
			cp.Population, cp.Generations, cp.TopK, pop, gens, topK)
	}
	n := len(s.G.Ops)
	for _, ind := range cp.Individuals {
		if len(ind.Target) != n || len(ind.Mem) != n || len(ind.Binding) != n {
			return fmt.Errorf("mapper: checkpoint encoding width does not match %d-op graph", n)
		}
	}
	s.Checkpoint = cp
	return nil
}

// Fingerprint identifies the search configuration a checkpoint belongs to:
// the SHA-256 over architecture, canonical graph, options, tile budget,
// and seed that also namespaces the fitness cache.
func (s *TreeSearch) Fingerprint() string {
	return strings.TrimSuffix(s.fitnessKeyPrefix(), "|")
}

// checkpoint snapshots the current search state at a generation boundary.
func (s *TreeSearch) checkpoint(fp string, pop, gens, topK, rounds, nextGen int, draws uint64,
	individuals []*individual, tuned map[string]*TunedStats, best *TunedStats, trace []float64) *Checkpoint {
	cp := &Checkpoint{
		Version:     CheckpointVersion,
		Fingerprint: fp,
		Seed:        s.Seed,
		Population:  pop,
		Generations: gens,
		TopK:        topK,
		TileRounds:  rounds,
		NextGen:     nextGen,
		RNGDraws:    draws,
	}
	cp.Individuals = make([]EncodingState, len(individuals))
	for i, ind := range individuals {
		cp.Individuals[i] = encodingState(ind.enc)
	}
	keys := make([]string, 0, len(tuned))
	for k := range tuned {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	cp.Tuned = make([]TunedStats, 0, len(keys))
	for _, k := range keys {
		cp.Tuned = append(cp.Tuned, *tuned[k])
	}
	if best != nil {
		b := *best
		cp.Best = &b
	}
	cp.Trace = make([]cpFloat, len(trace))
	for i, v := range trace {
		cp.Trace[i] = cpFloat(v)
	}
	return cp
}

// countingSource wraps the seeded math/rand source and counts raw Int63
// draws, giving the GA's RNG a serializable stream position. The wrapper
// passes Int63 through unchanged, so the stream is identical to an
// unwrapped rand.NewSource(seed).
type countingSource struct {
	src   rand.Source
	draws uint64
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

// skip fast-forwards the underlying stream to a recorded position. Cheap:
// a search consumes a few draws per individual per generation.
func (c *countingSource) skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.src.Int63()
	}
	c.draws = n
}
