package mapper

import (
	"encoding/json"
	"fmt"
	"math"
)

// fitnessWire is the transport form of one memoized fitness entry — the
// same information TunedStats carries in checkpoints, without the encoding
// (the cache key already names it). The fleet's shared memo tier moves
// these between nodes; the cpFloat codec keeps infeasible (+Inf) entries
// and cycle counts bit-exact across the trip, which the byte-identical
// migration guarantee depends on.
type fitnessWire struct {
	Infeasible bool           `json:"infeasible,omitempty"`
	Cycles     cpFloat        `json:"cycles"`
	Factors    map[string]int `json:"factors,omitempty"`
}

// EncodeFitness renders a fitness-cache value for the wire. ok=false means
// the value is not a fitness entry (the shared service cache also holds
// evaluation outcomes and responses, which stay node-local).
func EncodeFitness(v any) ([]byte, bool) {
	f, ok := v.(*cachedFitness)
	if !ok {
		return nil, false
	}
	w := fitnessWire{Cycles: cpFloat(f.cycles), Infeasible: f.eval == nil}
	if f.eval != nil {
		w.Factors = f.eval.Factors
	}
	b, err := json.Marshal(&w)
	if err != nil {
		return nil, false
	}
	return b, true
}

// DecodeFitness parses a value produced by EncodeFitness back into the
// cache's native entry. Like a checkpoint-restored entry, the Evaluation
// carries no core.Result — the search finalizer re-derives the result for
// the winner, and nothing else reads it.
func DecodeFitness(b []byte) (any, error) {
	var w fitnessWire
	if err := json.Unmarshal(b, &w); err != nil {
		return nil, fmt.Errorf("mapper: bad fitness value: %w", err)
	}
	if w.Infeasible {
		return &cachedFitness{cycles: math.Inf(1)}, nil
	}
	return &cachedFitness{
		cycles: float64(w.Cycles),
		eval:   &Evaluation{Factors: cloneFactors(w.Factors), Cycles: float64(w.Cycles)},
	}, nil
}
