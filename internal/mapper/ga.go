package mapper

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/memo"
	"repro/internal/workload"
)

// TreeSearch explores the full 3D design space (Sec 6): a genetic algorithm
// generates analysis trees by crossover and mutation of Fig 7b encodings
// (compute ordering + resource binding), and every candidate tree's tiling
// factors are tuned by the MCTS tile search. The best tiling feeds back as
// the individual's fitness; the top-K individuals seed the next population.
type TreeSearch struct {
	G    *workload.Graph
	Spec *arch.Spec
	Opts core.Options

	// Population is the number of encodings per generation (the paper
	// samples 20 fusion dataflows per round).
	Population int
	// Generations is the number of GA rounds (the paper converges in
	// under 50).
	Generations int
	// TileRounds is the MCTS budget per individual.
	TileRounds int
	// TopK survivors seed the next generation.
	TopK int
	// Parallel caps concurrent fitness evaluations (default NumCPU).
	Parallel int
	// Seed fixes the random stream.
	Seed int64
	// Cache memoizes fitness by encoding, so GA revisits (and other
	// searches sharing the cache, such as the evaluation service) skip the
	// MCTS re-tuning. Nil allocates a private cache for this run.
	Cache memo.Cache

	// Progress, when set, is called after every completed generation with
	// the best-so-far and a Checkpoint that resumes the search immediately
	// after that generation. Callers persist the checkpoint (the job
	// subsystem writes it to the job store, the CLI to -checkpoint) so a
	// killed search can continue instead of starting over.
	Progress func(ProgressEvent)
	// Checkpoint, when non-nil and valid for this configuration, resumes a
	// previous run at its recorded generation instead of starting fresh.
	// Install it via Resume, which validates compatibility; RunContext
	// silently ignores an incompatible checkpoint (a server recovering a
	// job after a format change restarts the search rather than failing).
	Checkpoint *Checkpoint

	// SeedPopulation warm-starts a fresh search: these encodings fill the
	// initial population after the layerwise anchor (slot 0), before any
	// random individuals. Install via WarmStart, which orders and
	// validates donor checkpoints. Ignored when a Checkpoint resume is in
	// effect — a resumed population already embeds its seeds.
	SeedPopulation []EncodingState

	// Narrow, when set, is called once per candidate dataflow before its
	// MCTS tuning and returns narrowed per-factor domains for
	// TileSearch.Domains (typically spaceck.Analyze(...).AllowedMap(),
	// injected by the composition root so the mapper never imports the
	// analyzer). It must be deterministic and sound — narrowing changes
	// which mappings MCTS samples, so its presence is part of the fitness
	// cache key and two searches sharing a cache must install the same
	// function. Nil means no narrowing.
	Narrow func(df dataflows.Dataflow) map[string][]int
}

// ProgressEvent reports one completed GA generation.
type ProgressEvent struct {
	// Generation counts completed generations (1-based); Generations is
	// the total budget.
	Generation  int
	Generations int
	// BestCycles is the best-so-far cycle count, +Inf while no feasible
	// candidate has been seen; BestEncoding is its Fig 7b rendering.
	BestCycles   float64
	BestEncoding string
	// Checkpoint resumes the search immediately after this generation.
	Checkpoint *Checkpoint
}

// TreeSearchResult is the outcome of a 3D-space exploration.
type TreeSearchResult struct {
	Best     *Evaluation
	Encoding *Encoding
	// Trace is the best-so-far cycles after each generation (the Fig 9b/c
	// exploration traces).
	Trace []float64
}

type individual struct {
	enc    *Encoding
	cycles float64
	eval   *Evaluation
}

// Run executes the combined GA+MCTS search.
func (s *TreeSearch) Run() *TreeSearchResult {
	return s.RunContext(context.Background())
}

// knobs normalizes the GA configuration the same way RunContext applies
// it, so checkpoints and cache keys agree with the effective values.
func (s *TreeSearch) knobs() (pop, gens, topK, rounds int) {
	pop = s.Population
	if pop <= 0 {
		pop = 20
	}
	gens = s.Generations
	if gens <= 0 {
		gens = 50
	}
	topK = s.TopK
	if topK <= 0 {
		topK = pop / 4
		if topK < 2 {
			topK = 2
		}
	}
	rounds = s.TileRounds
	if rounds <= 0 {
		rounds = 40
	}
	return pop, gens, topK, rounds
}

// RunContext is Run with cancellation: the search stops at the next
// generation boundary once ctx is done and returns the best result found so
// far. A cancellation that lands mid-generation discards that generation's
// partial fitness results — they were cut short of their full MCTS budget,
// so keeping them would break both determinism and the shared fitness
// cache — leaving the result exactly at the last completed checkpoint.
func (s *TreeSearch) RunContext(ctx context.Context) *TreeSearchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	pop, gens, topK, rounds := s.knobs()
	n := len(s.G.Ops)

	src := &countingSource{src: rand.NewSource(s.Seed)}
	rng := rand.New(src)

	cache := s.Cache
	if cache == nil {
		cache = memo.NewShardedLRU(4096)
	}
	prefix := s.fitnessKeyPrefix()
	fp := strings.TrimSuffix(prefix, "|")

	res := &TreeSearchResult{}
	tuned := map[string]*TunedStats{}
	var bestStats *TunedStats
	startGen := 0
	var individuals []*individual

	if cp := s.Checkpoint; cp != nil && cp.Fingerprint == fp &&
		cp.Population == pop && cp.Generations == gens && cp.TopK == topK {
		// Restore: population, RNG position, per-candidate statistics (also
		// seeded into the fitness cache so resumed candidates skip MCTS),
		// best-so-far, and trace.
		startGen = cp.NextGen
		src.skip(cp.RNGDraws)
		individuals = make([]*individual, len(cp.Individuals))
		for i, es := range cp.Individuals {
			individuals[i] = &individual{enc: es.encoding()}
		}
		for i := range cp.Tuned {
			ts := cp.Tuned[i]
			key := ts.Encoding.encoding().String()
			tuned[key] = &ts
			if _, ok := cache.Get(prefix + key); !ok {
				cache.Put(prefix+key, ts.cachedFitness())
			}
		}
		if cp.Best != nil {
			b := *cp.Best
			bestStats = &b
			res.Best = &Evaluation{Factors: cloneFactors(b.Factors), Cycles: float64(b.Cycles)}
			res.Encoding = b.Encoding.encoding()
		}
		res.Trace = make([]float64, len(cp.Trace))
		for i, v := range cp.Trace {
			res.Trace[i] = float64(v)
		}
	} else {
		individuals = make([]*individual, pop)
		individuals[0] = &individual{enc: LayerwiseEncoding(n)} // always seed no-fusion
		next := 1
		if len(s.SeedPopulation) > 0 {
			// Warm start: donor encodings (see WarmStart) fill slots after
			// the layerwise anchor, deduplicated post-repair. Only genotypes
			// enter — every seed is re-evaluated under this search's own
			// cache namespace, so no donor fitness can leak in.
			seen := map[string]bool{individuals[0].enc.String(): true}
			for _, es := range s.SeedPopulation {
				if next >= pop {
					break
				}
				if len(es.Target) != n || len(es.Mem) != n || len(es.Binding) != n {
					continue
				}
				enc := es.encoding()
				enc.Repair(s.Spec.NumLevels())
				if key := enc.String(); !seen[key] {
					seen[key] = true
					individuals[next] = &individual{enc: enc}
					next++
				}
			}
		}
		for ; next < pop; next++ {
			individuals[next] = &individual{enc: s.randomEncoding(rng)}
		}
	}

	for g := startGen; g < gens; g++ {
		if ctx.Err() != nil {
			break
		}
		s.evaluatePopulation(ctx, individuals, cache, prefix)
		if ctx.Err() != nil {
			break // mid-generation cancel: discard the partial generation
		}
		for _, ind := range individuals {
			key := ind.enc.String()
			if _, ok := tuned[key]; ok {
				continue
			}
			st := &TunedStats{Encoding: encodingState(ind.enc), Cycles: cpFloat(ind.cycles), Rounds: rounds}
			if ind.eval == nil {
				st.Infeasible = true
			} else {
				st.Factors = cloneFactors(ind.eval.Factors)
			}
			tuned[key] = st
		}
		sort.SliceStable(individuals, func(i, j int) bool {
			return individuals[i].cycles < individuals[j].cycles
		})
		if best := individuals[0]; best.eval != nil &&
			(res.Best == nil || best.cycles < res.Best.Cycles) {
			res.Best = best.eval
			res.Encoding = best.enc.Clone()
			bestStats = tuned[best.enc.String()]
		}
		if res.Best != nil {
			res.Trace = append(res.Trace, res.Best.Cycles)
		} else {
			res.Trace = append(res.Trace, math.Inf(1))
		}
		if g < gens-1 {
			// Next generation: keep the top-K, fill with crossovers and
			// mutations of survivors.
			next := make([]*individual, 0, pop)
			for i := 0; i < topK && i < len(individuals); i++ {
				next = append(next, &individual{enc: individuals[i].enc.Clone()})
			}
			for len(next) < pop {
				a := individuals[rng.Intn(topK)].enc
				b := individuals[rng.Intn(topK)].enc
				child := s.crossover(a, b, rng)
				s.mutate(child, rng)
				next = append(next, &individual{enc: child})
			}
			individuals = next
		}
		if s.Progress != nil {
			bc, be := math.Inf(1), ""
			if res.Best != nil {
				bc, be = res.Best.Cycles, res.Encoding.String()
			}
			s.Progress(ProgressEvent{
				Generation:   g + 1,
				Generations:  gens,
				BestCycles:   bc,
				BestEncoding: be,
				Checkpoint:   s.checkpoint(fp, pop, gens, topK, rounds, g+1, src.draws, individuals, tuned, bestStats, res.Trace),
			})
		}
	}
	s.finalize(res)
	return res
}

// finalize re-derives the winner's full core.Result when the best came out
// of a restored checkpoint (checkpoints store factors and cycles, not the
// whole result). The evaluation is a pure function of the tree, so the
// rebuilt result is identical to the one the original run computed.
func (s *TreeSearch) finalize(res *TreeSearchResult) {
	if res.Best == nil || res.Best.Result != nil {
		return
	}
	gd := NewGeneratedDataflow("candidate", s.G, s.Spec, res.Encoding)
	root, err := gd.Build(res.Best.Factors)
	if err != nil {
		return
	}
	r, err := core.Evaluate(root, s.G, s.Spec, s.Opts)
	if err != nil {
		return
	}
	// Clone rather than mutate: the Result-less Evaluation may be shared
	// through the fitness cache with concurrent searches.
	res.Best = &Evaluation{Factors: res.Best.Factors, Cycles: res.Best.Cycles, Result: r}
}

// cachedFitness is the memoized outcome of tuning one encoding.
type cachedFitness struct {
	cycles float64
	eval   *Evaluation
}

func (s *TreeSearch) evaluatePopulation(ctx context.Context, pop []*individual, cache memo.Cache, prefix string) {
	par := s.Parallel
	if par <= 0 {
		par = runtime.NumCPU()
	}
	type job struct {
		ind  *individual
		seed int64
	}
	var jobs []job
	for _, ind := range pop {
		ind.enc.Repair(s.Spec.NumLevels())
		if hit, ok := cache.Get(prefix + ind.enc.String()); ok {
			f := hit.(*cachedFitness)
			ind.cycles, ind.eval = f.cycles, f.eval
			continue
		}
		jobs = append(jobs, job{ind, s.encodingSeed(ind.enc)})
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(j job) {
			defer wg.Done()
			defer func() { <-sem }()
			j.ind.cycles, j.ind.eval = s.fitness(ctx, j.ind.enc, j.seed)
		}(j)
	}
	wg.Wait()
	if ctx.Err() != nil {
		// The generation was cut short: these fitness values come from
		// truncated MCTS runs, not the deterministic full-budget outcomes.
		// Caching them would poison this search's resume path and every
		// other search sharing the cache, so the whole generation is
		// discarded.
		return
	}
	for _, j := range jobs {
		cache.Put(prefix+j.ind.enc.String(), &cachedFitness{cycles: j.ind.cycles, eval: j.ind.eval})
	}
}

// fitnessKeyPrefix namespaces the fitness cache by everything besides the
// encoding that determines an encoding's fitness: the architecture, the
// workload graph, the evaluation options, the MCTS budget, and the search
// seed (which fixes each encoding's tuning stream via encodingSeed).
// Without it, two searches sharing one cache — as requests through the
// evaluation service do — would collide whenever their workloads happen to
// have equal op counts, poisoning each other's results.
func (s *TreeSearch) fitnessKeyPrefix() string {
	rounds := s.TileRounds
	if rounds <= 0 {
		rounds = 40 // fitness's default, so 0 and 40 share entries
	}
	var b strings.Builder
	b.WriteString("tileflow/v1/ga-fitness\n")
	b.WriteString(arch.FormatSpec(s.Spec))
	b.WriteString(workload.CanonicalGraph(s.G))
	fmt.Fprintf(&b, "opts: skipcap=%v skippe=%v noretention=%v tile=%d seed=%d narrow=%v\n",
		s.Opts.SkipCapacityCheck, s.Opts.SkipPECheck, s.Opts.DisableRetention, rounds, s.Seed, s.Narrow != nil)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:]) + "|"
}

// encodingSeed derives the MCTS seed for one individual from the encoding
// content and the search seed, not from a shared RNG stream, so the same
// encoding is always tuned identically — cached and uncached runs of the
// same TreeSearch seed produce the same TreeSearchResult regardless of
// cache state or evaluation order.
func (s *TreeSearch) encodingSeed(enc *Encoding) int64 {
	h := fnv.New64a()
	h.Write([]byte(enc.String()))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(s.Seed))
	h.Write(b[:])
	return int64(h.Sum64() & math.MaxInt64)
}

// fitness tunes an encoding's tiling with MCTS and returns its best cycles
// (infinite when no valid mapping exists).
func (s *TreeSearch) fitness(ctx context.Context, enc *Encoding, seed int64) (float64, *Evaluation) {
	gd := NewGeneratedDataflow("candidate", s.G, s.Spec, enc)
	rounds := s.TileRounds
	if rounds <= 0 {
		rounds = 40
	}
	ts := &TileSearch{Dataflow: gd, Spec: s.Spec, Opts: s.Opts, Rounds: rounds, Seed: seed}
	if s.Narrow != nil {
		ts.Domains = s.Narrow(gd)
	}
	best, _ := ts.RunContext(ctx)
	if best == nil {
		return math.Inf(1), nil
	}
	return best.Cycles, best
}

// randomEncoding samples the ordering/binding plane uniformly-ish: each op
// fuses into a random later op (biased toward its consumers) at a random
// on-chip level with a random binding, or stays at the top level.
func (s *TreeSearch) randomEncoding(rng *rand.Rand) *Encoding {
	n := len(s.G.Ops)
	maxMem := s.Spec.NumLevels() - 2
	e := LayerwiseEncoding(n)
	for i := 0; i < n-1; i++ {
		if rng.Float64() < 0.3 {
			continue // stay top-level
		}
		// Prefer fusing into a consumer of this op's output.
		var consumers []int
		out := s.G.Ops[i].Write.Tensor
		for j := i + 1; j < n; j++ {
			for _, r := range s.G.Ops[j].Reads {
				if r.Tensor == out {
					consumers = append(consumers, j)
				}
			}
		}
		if len(consumers) > 0 && rng.Float64() < 0.8 {
			e.Target[i] = consumers[rng.Intn(len(consumers))]
		} else {
			e.Target[i] = i + 1 + rng.Intn(n-1-i)
		}
		e.Mem[i] = 1 + rng.Intn(maxMem)
		e.Binding[i] = core.Binding(rng.Intn(4))
	}
	return e
}

// crossover swaps whole operator columns between two parents at a random
// split point.
func (s *TreeSearch) crossover(a, b *Encoding, rng *rand.Rand) *Encoding {
	n := len(a.Target)
	cut := rng.Intn(n)
	child := a.Clone()
	for i := cut; i < n; i++ {
		child.Target[i] = b.Target[i]
		child.Mem[i] = b.Mem[i]
		child.Binding[i] = b.Binding[i]
	}
	return child
}

// mutate rewrites one random column.
func (s *TreeSearch) mutate(e *Encoding, rng *rand.Rand) {
	n := len(e.Target)
	if n == 0 {
		return
	}
	i := rng.Intn(n)
	maxMem := s.Spec.NumLevels() - 2
	switch rng.Intn(3) {
	case 0:
		if i < n-1 && rng.Float64() < 0.7 {
			e.Target[i] = i + 1 + rng.Intn(n-1-i)
		} else {
			e.Target[i] = -1
		}
	case 1:
		e.Mem[i] = 1 + rng.Intn(max(1, maxMem))
	case 2:
		e.Binding[i] = core.Binding(rng.Intn(4))
	}
}
