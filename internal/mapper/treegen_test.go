package mapper

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// TestPropertyRepairAlwaysValid: Repair turns arbitrary encodings into
// structurally valid ones (forward targets, in-range levels, hosts with
// room).
func TestPropertyRepairAlwaysValid(t *testing.T) {
	prop := func(targets [7]int8, mems [7]int8, binds [7]uint8) bool {
		n := 7
		e := &Encoding{Target: make([]int, n), Mem: make([]int, n), Binding: make([]core.Binding, n)}
		for i := 0; i < n; i++ {
			e.Target[i] = int(targets[i])
			e.Mem[i] = int(mems[i])
			e.Binding[i] = core.Binding(int(binds[i]) % 4)
		}
		e.Repair(4) // Cloud-like: levels 0..3, on-chip 1..2
		span := make([]int, n)
		for i := n - 1; i >= 0; i-- {
			if e.Target[i] < 0 {
				span[i] = 2
				continue
			}
			host := e.Target[i]
			if host <= i || host >= n {
				return false // backward/self target survived
			}
			if e.Mem[i] < 1 || e.Mem[i] > span[host] {
				return false // level outside the host's chain
			}
			span[i] = e.Mem[i] - 1
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropertyGeneratedTreesEvaluate: any repaired encoding with default
// factors either builds a tree that passes full evaluation, or fails with
// a typed error — never panics and never produces invalid metrics.
func TestPropertyGeneratedTreesEvaluate(t *testing.T) {
	shape, _ := workload.AttentionShapeByName("ViT/16-B")
	g := workload.Attention(shape)
	spec := arch.Edge()
	n := len(g.Ops)
	prop := func(targets [7]uint8, mems [7]uint8, binds [7]uint8) bool {
		e := LayerwiseEncoding(n)
		for i := 0; i < n && i < 7; i++ {
			if targets[i]%3 != 0 && i < n-1 {
				e.Target[i] = i + 1 + int(targets[i])%(n-1-i)
			}
			e.Mem[i] = 1 + int(mems[i])%2
			e.Binding[i] = core.Binding(int(binds[i]) % 4)
		}
		gd := NewGeneratedDataflow("fuzz", g, spec, e)
		root, err := gd.Build(gd.DefaultFactors())
		if err != nil {
			return true // structurally impossible combinations may fail
		}
		res, err := core.Evaluate(root, g, spec, core.Options{SkipCapacityCheck: true, SkipPECheck: true})
		if err != nil {
			return true
		}
		return res.Cycles > 0 && res.DRAMTraffic() > 0 && res.EnergyPJ() > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestEncodingStringStable: the cache key is deterministic and
// distinguishes encodings.
func TestEncodingStringStable(t *testing.T) {
	a := LayerwiseEncoding(3)
	b := LayerwiseEncoding(3)
	if a.String() != b.String() {
		t.Error("identical encodings render differently")
	}
	b.Target[0] = 2
	b.Mem[0] = 1
	b.Binding[0] = core.Pipe
	if a.String() == b.String() {
		t.Error("different encodings render identically")
	}
	c := b.Clone()
	if c.String() != b.String() {
		t.Error("clone differs")
	}
	c.Target[0] = -1
	if c.String() == b.String() {
		t.Error("clone mutation leaked")
	}
}

// TestCrossoverAndMutatePreserveShape: GA operators keep column counts and
// produce repairable children.
func TestCrossoverAndMutatePreserveShape(t *testing.T) {
	shape, _ := workload.AttentionShapeByName("ViT/16-B")
	g := workload.Attention(shape)
	s := &TreeSearch{G: g, Spec: arch.Edge(), Seed: 3}
	rng := rand.New(rand.NewSource(3))
	a := s.randomEncoding(rng)
	b := s.randomEncoding(rng)
	for i := 0; i < 50; i++ {
		child := s.crossover(a, b, rng)
		s.mutate(child, rng)
		if len(child.Target) != len(a.Target) || len(child.Mem) != len(a.Mem) || len(child.Binding) != len(a.Binding) {
			t.Fatal("shape changed")
		}
		child.Repair(s.Spec.NumLevels())
		for j, tgt := range child.Target {
			if tgt >= 0 && tgt <= j {
				t.Fatalf("repair left backward target at %d", j)
			}
		}
	}
}

// TestTreeSearchDeterministic: same seed, same best.
func TestTreeSearchDeterministic(t *testing.T) {
	shape, _ := workload.AttentionShapeByName("ViT/16-B")
	g := workload.Attention(shape)
	run := func() (float64, string) {
		s := &TreeSearch{G: g, Spec: arch.Edge(), Population: 8, Generations: 4, TileRounds: 20, Parallel: 1, Seed: 11}
		r := s.Run()
		if r.Best == nil {
			t.Fatal("nothing found")
		}
		return r.Best.Cycles, r.Encoding.String()
	}
	c1, e1 := run()
	c2, e2 := run()
	if c1 != c2 || e1 != e2 {
		t.Errorf("nondeterministic: %v/%s vs %v/%s", c1, e1, c2, e2)
	}
}
