package mapper

import (
	"errors"
	"os"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/workload"
)

// prescreenStream builds the benchmark candidate stream: clones of the
// canonical FLAT-RGran design point, three of every five mutated to be
// statically invalid (a doubled loop extent breaks tiling coverage) —
// modelling a mapper exploring a factor space where many points are
// illegal.
func prescreenStream(tb testing.TB, n int) ([]*core.Node, *workload.Graph, *arch.Spec) {
	tb.Helper()
	shape, ok := workload.AttentionShapeByName("Bert-S")
	if !ok {
		tb.Fatal("attention shape Bert-S not found")
	}
	spec := arch.Edge()
	df := dataflows.FLATRGran(shape, spec)
	root, err := df.Build(df.DefaultFactors())
	if err != nil {
		tb.Fatal(err)
	}
	cands := make([]*core.Node, n)
	for i := range cands {
		c := root.Clone()
		if i%5 < 3 {
			breakCoverage(tb, c)
		}
		cands[i] = c
	}
	return cands, df.Graph(), spec
}

// breakCoverage doubles the first loop extent it finds, so the extents
// along that dim's path no longer multiply to the dim size.
func breakCoverage(tb testing.TB, root *core.Node) {
	tb.Helper()
	done := false
	root.Walk(func(n *core.Node) {
		if done {
			return
		}
		for i := range n.Loops {
			if n.Loops[i].Extent > 1 {
				n.Loops[i].Extent *= 2
				done = true
				return
			}
		}
	})
	if !done {
		tb.Fatal("no loop to break")
	}
}

// TestPrescreenAgreesWithPipeline: on the benchmark stream, QuickReject
// accepts exactly the candidates the full pipeline accepts and rejects with
// the identical error — so pruning on it cannot change search results.
func TestPrescreenAgreesWithPipeline(t *testing.T) {
	cands, g, spec := prescreenStream(t, 40)
	valid := 0
	for i, c := range cands {
		qerr := core.QuickReject(c, g, spec, core.Options{})
		_, perr := core.Evaluate(c, g, spec, core.Options{})
		if (qerr == nil) != (perr == nil) {
			t.Fatalf("candidate %d: QuickReject=%v pipeline=%v", i, qerr, perr)
		}
		if qerr != nil {
			if qerr.Error() != perr.Error() {
				t.Errorf("candidate %d: QuickReject %q, pipeline %q", i, qerr, perr)
			}
			if !errors.Is(perr, core.ErrInvalidMapping) {
				t.Errorf("candidate %d: broken clone rejected for the wrong reason: %v", i, perr)
			}
		} else {
			valid++
		}
	}
	if valid != 2*len(cands)/5 {
		t.Fatalf("stream has %d valid of %d, want two fifths", valid, len(cands))
	}
}

// TestPrescreenThroughput asserts the pre-screen contract: on a stream
// with 60% of its points statically invalid, screening with QuickReject
// before evaluating is at least 1.5x faster than pushing every candidate
// through the full pipeline. Timing assertions are flaky on loaded CI
// machines, so the test only runs when TILEFLOW_BENCH=1.
func TestPrescreenThroughput(t *testing.T) {
	if os.Getenv("TILEFLOW_BENCH") != "1" {
		t.Skip("set TILEFLOW_BENCH=1 to run the timing assertion")
	}
	cands, g, spec := prescreenStream(t, 40)
	opts := core.Options{}

	full := func() {
		for _, c := range cands {
			_, _ = core.Evaluate(c, g, spec, opts)
		}
	}
	screened := func() {
		for _, c := range cands {
			if core.QuickReject(c, g, spec, opts) != nil {
				continue
			}
			_, _ = core.Evaluate(c, g, spec, opts)
		}
	}

	// Warm up, then interleave rounds so CPU frequency drift hits both.
	full()
	screened()
	const rounds = 15
	var tFull, tScreened time.Duration
	for i := 0; i < rounds; i++ {
		s := time.Now()
		full()
		tFull += time.Since(s)
		s = time.Now()
		screened()
		tScreened += time.Since(s)
	}
	ratio := float64(tFull) / float64(tScreened)
	t.Logf("full pipeline %v/stream, prescreened %v/stream, speedup %.2fx",
		tFull/rounds, tScreened/rounds, ratio)
	if ratio < 1.5 {
		t.Errorf("prescreened stream only %.2fx faster, want >= 1.5x", ratio)
	}
}

// BenchmarkRejectPipeline and BenchmarkRejectPrescreen expose the per-
// rejection cost difference the throughput test aggregates.
func BenchmarkRejectPipeline(b *testing.B) {
	cands, g, spec := prescreenStream(b, 5)
	bad := cands[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Evaluate(bad, g, spec, core.Options{}); err == nil {
			b.Fatal("candidate unexpectedly valid")
		}
	}
}

func BenchmarkRejectPrescreen(b *testing.B) {
	cands, g, spec := prescreenStream(b, 5)
	bad := cands[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.QuickReject(bad, g, spec, core.Options{}); err == nil {
			b.Fatal("candidate unexpectedly valid")
		}
	}
}
