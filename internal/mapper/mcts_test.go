package mapper

import (
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/workload"
)

func TestTileSearchImprovesOverDefaults(t *testing.T) {
	shape, _ := workload.AttentionShapeByName("Bert-S")
	spec := arch.Edge()
	df := dataflows.TileFlowAttention(shape, spec)

	root, err := df.Build(df.DefaultFactors())
	if err != nil {
		t.Fatal(err)
	}
	def, err := core.Evaluate(root, df.Graph(), spec, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	s := &TileSearch{Dataflow: df, Spec: spec, Rounds: 300, Seed: 1}
	best, trace := s.Run()
	if best == nil {
		t.Fatal("search found no valid mapping")
	}
	if len(trace) != 300 {
		t.Fatalf("trace length %d", len(trace))
	}
	// Trace must be monotonically non-increasing (best-so-far).
	for i := 1; i < len(trace); i++ {
		if trace[i] > trace[i-1] {
			t.Fatalf("trace not monotone at %d: %v > %v", i, trace[i], trace[i-1])
		}
	}
	if best.Cycles > def.Cycles {
		t.Errorf("search best %v worse than defaults %v", best.Cycles, def.Cycles)
	}
	t.Logf("default=%.3g tuned=%.3g factors=%v", def.Cycles, best.Cycles, best.Factors)
}

func TestTileSearchDeterministic(t *testing.T) {
	shape, _ := workload.AttentionShapeByName("ViT/16-B")
	spec := arch.Edge()
	run := func() float64 {
		df := dataflows.FLATRGran(shape, spec)
		s := &TileSearch{Dataflow: df, Spec: spec, Rounds: 100, Seed: 42}
		best, _ := s.Run()
		if best == nil {
			t.Fatal("no valid mapping")
		}
		return best.Cycles
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed gave %v and %v", a, b)
	}
}

// hideStability wraps a dataflow behind the bare Dataflow interface so the
// StructureStable capability is invisible: TileSearch then takes the cold
// per-candidate compile path.
type hideStability struct{ dataflows.Dataflow }

// TestTileSearchProgramReuseMatchesCold: the compiled fast path (one
// Compile, per-rollout re-binds) must visit the same candidates and return
// the same best evaluation as the cold path for the same seed.
func TestTileSearchProgramReuseMatchesCold(t *testing.T) {
	shape, _ := workload.AttentionShapeByName("ViT/16-B")
	spec := arch.Edge()
	run := func(df dataflows.Dataflow) (*Evaluation, []float64) {
		s := &TileSearch{Dataflow: df, Spec: spec, Rounds: 120, Seed: 7}
		best, trace := s.Run()
		if best == nil {
			t.Fatal("no valid mapping")
		}
		return best, trace
	}
	fast, fastTrace := run(dataflows.FLATRGran(shape, spec))
	cold, coldTrace := run(hideStability{dataflows.FLATRGran(shape, spec)})

	if !reflect.DeepEqual(fast.Factors, cold.Factors) {
		t.Errorf("fast path best factors %v, cold %v", fast.Factors, cold.Factors)
	}
	if !reflect.DeepEqual(fast.Result, cold.Result) {
		t.Errorf("fast path best Result differs from cold path")
	}
	if !reflect.DeepEqual(fastTrace, coldTrace) {
		t.Errorf("fast path trace differs from cold path")
	}
}
