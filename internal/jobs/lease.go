package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"
)

// Lease is a claim on a running job. The Token is a fencing token: it
// increases monotonically across every claim the store ever grants, so a
// write stamped with an old token — a worker that lost its lease to a
// partition, an expiry, or a re-claim — is always distinguishable from the
// current owner's writes and is rejected with ErrStaleLease.
//
// A zero Expires marks a process-local lease: the claim of an in-process
// worker, valid until the owning process exits. Process-local leases are
// never swept by the TTL sweeper (the process renews by existing) but are
// always re-queued by crash recovery at the next Open. Remote leases carry
// a real expiry and must be renewed before it passes.
type Lease struct {
	Owner   string    `json:"owner"`
	Token   uint64    `json:"token"`
	Expires time.Time `json:"expires,omitempty"`
}

// Expired reports whether the lease's TTL has passed at time now.
// Process-local leases (zero Expires) never expire.
func (l *Lease) Expired(now time.Time) bool {
	return l != nil && !l.Expires.IsZero() && !now.Before(l.Expires)
}

// Coded lease errors. The fleet protocol maps these onto wire codes
// ("stale_lease", "unknown_job", ...) so a remote worker sees the same
// taxonomy as an in-process one.
var (
	// ErrStaleLease rejects a lease-guarded write whose token no longer
	// matches the job's current lease — the writer's claim expired, was
	// re-assigned, or never existed. A worker receiving it must discard its
	// in-flight work; the job's truth lives with the current lease holder.
	ErrStaleLease = errors.New("jobs: stale lease")
	// ErrNoQueuedJob means ClaimNext found nothing to hand out.
	ErrNoQueuedJob = errors.New("jobs: no queued job")
	// ErrNotQueued means ClaimID lost the race: the job is running under
	// someone else's claim, finished, or was cancelled while queued.
	ErrNotQueued = errors.New("jobs: job not queued")
	// ErrUnknownJob names a job the store has never seen (or has evicted).
	ErrUnknownJob = errors.New("jobs: unknown job")
)

// Picker is the scheduler's dequeue hook: given ID-ordered snapshots of
// every claimable queued job and every running job, it returns the ID of
// the job the claim should hand out, or "" to decline the claim entirely
// (every queued job's tenant is at its running quota, say). It runs under
// the store lock, so it must be fast, must not call back into the store,
// and must be deterministic — two stores replaying the same sequence of
// claims must pick the same jobs.
type Picker func(queued, running []*Job) string

// ClaimNext atomically claims the next queued job for owner: the job
// moves to Running with a fresh fencing token and, for ttl > 0, an expiry
// of now+ttl. Expired leases are swept first, so a claim after a worker
// death hands out the dead worker's job (checkpoint intact). With no
// picker installed the oldest queued job wins (FIFO); a picker sees
// queued and running snapshots and chooses, which is how the weighted-
// fair scheduler and tenant quotas govern both the local worker pool and
// fleet claims through one code path. Returns ErrNoQueuedJob when the
// queue is empty or the picker declines.
func (s *Store) ClaimNext(owner string, ttl time.Duration) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLeasesLocked()
	queued := make([]*Job, 0, len(s.jobs))
	running := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		switch {
		case j.State == Queued && !j.CancelRequested:
			queued = append(queued, j)
		case j.State == Running:
			running = append(running, j)
		}
	}
	if len(queued) == 0 {
		return nil, ErrNoQueuedJob
	}
	sort.Slice(queued, func(a, b int) bool { return queued[a].ID < queued[b].ID })
	if s.picker == nil {
		return s.claimLocked(queued[0], owner, ttl) // oldest first: IDs are zero-padded creation order
	}
	sort.Slice(running, func(a, b int) bool { return running[a].ID < running[b].ID })
	qs := make([]*Job, len(queued))
	for i, j := range queued {
		qs[i] = j.Clone()
	}
	rs := make([]*Job, len(running))
	for i, j := range running {
		rs[i] = j.Clone()
	}
	id := s.picker(qs, rs)
	if id == "" {
		return nil, ErrNoQueuedJob
	}
	j, ok := s.jobs[id]
	if !ok || j.State != Queued || j.CancelRequested {
		return nil, fmt.Errorf("jobs: picker chose unclaimable job %q", id)
	}
	return s.claimLocked(j, owner, ttl)
}

// ClaimID claims one specific queued job (the in-process manager's path:
// its queue already names the job). Returns ErrNotQueued when the job is
// no longer claimable and ErrUnknownJob when it does not exist.
func (s *Store) ClaimID(id, owner string, ttl time.Duration) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if j.State != Queued {
		return nil, fmt.Errorf("%w: %s is %s", ErrNotQueued, id, j.State)
	}
	return s.claimLocked(j, owner, ttl)
}

func (s *Store) claimLocked(j *Job, owner string, ttl time.Duration) (*Job, error) {
	s.leaseSeq++
	lease := &Lease{Owner: owner, Token: s.leaseSeq}
	if ttl > 0 {
		lease.Expires = s.now().UTC().Add(ttl)
	}
	j.State = Running
	j.Lease = lease
	j.Attempts++
	j.StartedAt = s.now().UTC()
	if err := s.appendLocked(j); err != nil {
		return nil, err
	}
	return j.Clone(), nil
}

// leaseWriteLocked validates a lease-guarded write: the job must exist, be
// running, and carry an unexpired lease with exactly this token.
func (s *Store) leaseWriteLocked(id string, token uint64) (*Job, error) {
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if j.State != Running || j.Lease == nil || j.Lease.Token != token {
		return nil, fmt.Errorf("%w: job %s is not running under token %d", ErrStaleLease, id, token)
	}
	if j.Lease.Expired(s.now()) {
		return nil, fmt.Errorf("%w: lease on %s expired at %s", ErrStaleLease, id, j.Lease.Expires.Format(time.RFC3339))
	}
	return j, nil
}

// Renew extends a lease by ttl from now. It is the heartbeat of the fleet
// protocol: a renewal that comes back ErrStaleLease tells the worker its
// claim is gone and its job now belongs to someone else. The returned
// snapshot carries CancelRequested, so cancellation rides the heartbeat.
func (s *Store) Renew(id string, token uint64, ttl time.Duration) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, err := s.leaseWriteLocked(id, token)
	if err != nil {
		return nil, err
	}
	if !j.Lease.Expires.IsZero() || ttl > 0 {
		if ttl <= 0 {
			return nil, fmt.Errorf("jobs: renew of %s needs a positive ttl", id)
		}
		j.Lease.Expires = s.now().UTC().Add(ttl)
	}
	if err := s.appendLocked(j); err != nil {
		return nil, err
	}
	return j.Clone(), nil
}

// CommitUpdate is the lease-guarded progress/checkpoint write. A nil field
// leaves the stored value unchanged. Renews nothing: pair it with Renew
// (remote workers ship checkpoints and heartbeats on separate cadences).
func (s *Store) CommitUpdate(id string, token uint64, progress, checkpoint json.RawMessage) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, err := s.leaseWriteLocked(id, token)
	if err != nil {
		return nil, err
	}
	if progress != nil {
		j.Progress = append(json.RawMessage(nil), progress...)
	}
	if checkpoint != nil {
		j.Checkpoint = append(json.RawMessage(nil), checkpoint...)
		j.CheckpointAt = s.now().UTC()
	}
	if err := s.appendLocked(j); err != nil {
		return nil, err
	}
	return j.Clone(), nil
}

// Complete finalizes a running job under its lease: state must be Done,
// Failed, or Cancelled. The lease is consumed. A stale token cannot commit
// a result — the acceptance rule that makes multi-node execution safe.
func (s *Store) Complete(id string, token uint64, state State, result json.RawMessage, errMsg string) (*Job, error) {
	if !state.Terminal() {
		return nil, fmt.Errorf("jobs: complete with non-terminal state %s", state)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j, err := s.leaseWriteLocked(id, token)
	if err != nil {
		return nil, err
	}
	j.State = state
	j.Result = append(json.RawMessage(nil), result...)
	j.Error = errMsg
	j.FinishedAt = s.now().UTC()
	j.Lease = nil
	if err := s.appendLocked(j); err != nil {
		return nil, err
	}
	return j.Clone(), nil
}

// Release hands a running job back to the queue under its lease — the
// graceful half of failover, used by drains: the checkpoint stays, so the
// next claimant resumes instead of restarting. decAttempt compensates the
// claim's increment for a job that was claimed but never actually ran.
func (s *Store) Release(id string, token uint64, decAttempt bool) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, err := s.leaseWriteLocked(id, token)
	if err != nil {
		return nil, err
	}
	s.requeueLocked(j)
	if decAttempt {
		j.Attempts--
	}
	if err := s.appendLocked(j); err != nil {
		return nil, err
	}
	return j.Clone(), nil
}

// requeueLocked puts a running job back in the queue, keeping checkpoint
// and attempt count.
func (s *Store) requeueLocked(j *Job) {
	j.State = Queued
	j.StartedAt = time.Time{}
	j.Lease = nil
}

// RequestCancel flags a remotely-leased running job for cancellation. The
// owning worker observes the flag on its next renew or checkpoint; queued
// and terminal jobs are the manager's to finalize directly.
func (s *Store) RequestCancel(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if j.CancelRequested || j.State.Terminal() {
		return j.Clone(), nil
	}
	j.CancelRequested = true
	if err := s.appendLocked(j); err != nil {
		return nil, err
	}
	return j.Clone(), nil
}

// SweepExpiredLeases re-queues every running job whose lease TTL has
// passed — the failover path for a crashed or partitioned worker. A job
// whose cancellation was requested while its worker died is finalized as
// Cancelled instead of re-queued, and a job whose failover budget is
// exhausted (Attempts >= MaxAttempts) is quarantined in state Poisoned
// rather than handed to yet another worker. Returns the re-queued,
// cancelled, and poisoned snapshots so the caller can emit events and
// notify schedulers.
func (s *Store) SweepExpiredLeases() (requeued, cancelled, poisoned []*Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sweepLeasesLocked()
}

func (s *Store) sweepLeasesLocked() (requeued, cancelled, poisoned []*Job) {
	now := s.now()
	ids := make([]string, 0, len(s.jobs))
	for id, j := range s.jobs {
		if j.State == Running && j.Lease.Expired(now) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		j := s.jobs[id]
		if j.CancelRequested {
			j.State = Cancelled
			j.Error = ErrCancelled.Error()
			j.FinishedAt = s.now().UTC()
			j.Lease = nil
			if s.appendLocked(j) == nil {
				cancelled = append(cancelled, j.Clone())
			}
			continue
		}
		j.Trail = trailAppend(j.Trail, fmt.Sprintf("%s attempt %d (%s): lease expired; failing over", now.UTC().Format(time.RFC3339), j.Attempts, j.Lease.Owner))
		if s.exhaustedLocked(j) {
			s.poisonLocked(j)
			if s.appendLocked(j) == nil {
				poisoned = append(poisoned, j.Clone())
			}
			continue
		}
		s.requeueLocked(j)
		if s.appendLocked(j) == nil {
			requeued = append(requeued, j.Clone())
		}
	}
	return requeued, cancelled, poisoned
}

// maxTrail bounds one job's retained failure trail; older entries are
// dropped first, so the quarantine decision and the freshest failures
// always survive.
const maxTrail = 32

func trailAppend(trail []string, entry string) []string {
	trail = append(trail, entry)
	if len(trail) > maxTrail {
		trail = append([]string(nil), trail[len(trail)-maxTrail:]...)
	}
	return trail
}

// exhaustedLocked reports whether one more failover would exceed the
// job's attempt budget.
func (s *Store) exhaustedLocked(j *Job) bool {
	return j.MaxAttempts > 0 && j.Attempts >= j.MaxAttempts
}

// poisonLocked quarantines a job that kept killing its workers (or kept
// being killed by them): terminal state Poisoned, failure trail closed
// with the verdict, checkpoint retained for post-mortems.
func (s *Store) poisonLocked(j *Job) {
	j.Trail = trailAppend(j.Trail, fmt.Sprintf("%s poisoned after %d attempts (max_attempts %d)", s.now().UTC().Format(time.RFC3339), j.Attempts, j.MaxAttempts))
	j.State = Poisoned
	j.Error = fmt.Sprintf("jobs: poisoned after %d failed attempts", j.Attempts)
	j.FinishedAt = s.now().UTC()
	j.Lease = nil
	s.poisonSeq++
}

// SweepRetention deletes terminal jobs whose FinishedAt lies past the
// retention horizon, oldest first, so the store stops growing forever.
// Deletions are durable (tombstones in the append log, absent from the
// next snapshot). Returns the removed job IDs so callers can drop
// associated state such as event logs. A horizon <= 0 keeps everything.
func (s *Store) SweepRetention(horizon time.Duration) []string {
	if horizon <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cutoff := s.now().Add(-horizon)
	type victim struct {
		id  string
		fin time.Time
	}
	var victims []victim
	for id, j := range s.jobs {
		if j.State.Terminal() && !j.FinishedAt.IsZero() && j.FinishedAt.Before(cutoff) {
			victims = append(victims, victim{id, j.FinishedAt})
		}
	}
	sort.Slice(victims, func(a, b int) bool {
		if !victims[a].fin.Equal(victims[b].fin) {
			return victims[a].fin.Before(victims[b].fin)
		}
		return victims[a].id < victims[b].id
	})
	removed := make([]string, 0, len(victims))
	for _, v := range victims {
		// Delete before appending: the append may rotate the log into a
		// snapshot, and the snapshot must not contain the job the tombstone
		// is deleting.
		delete(s.jobs, v.id)
		if err := s.appendLocked(&Job{ID: v.id, Tombstone: true}); err != nil {
			break
		}
		removed = append(removed, v.id)
	}
	return removed
}
