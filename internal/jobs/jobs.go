// Package jobs is the search-job orchestration subsystem: a durable store
// (JSONL append log + periodic snapshot) plus a worker-pool manager that
// runs jobs through an injected Runner, checkpoints them on drain, and
// recovers interrupted work after a restart.
//
// The package is a stdlib-only leaf below internal/serve: the server
// injects the runner (which closes over its caches and the mapper), so
// jobs knows nothing about HTTP or search internals. It lives inside the
// determinism lint scope, so all clock reads go through an injected
// now() — tests drive it with a fake clock.
package jobs

import (
	"encoding/json"
	"time"
)

// State is a job's lifecycle phase.
type State string

const (
	Queued    State = "queued"
	Running   State = "running"
	Done      State = "done"
	Failed    State = "failed"
	Cancelled State = "cancelled"
	// Poisoned is the quarantine state: the job exhausted its failover
	// budget (MaxAttempts) without ever completing, so the store stopped
	// re-queuing it. The failure trail records each attempt's demise.
	Poisoned State = "poisoned"
)

// Terminal reports whether the state is final: the job will never run
// again and its Result/Error fields are settled.
func (s State) Terminal() bool {
	return s == Done || s == Failed || s == Cancelled || s == Poisoned
}

// Job is one unit of durable work. Request, Progress, Checkpoint, and
// Result are opaque to this package — the runner defines their schema —
// which keeps the store reusable for future job kinds.
type Job struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State State  `json:"state"`

	Request json.RawMessage `json:"request"`

	// Tenant names the submitting principal for quota accounting; empty
	// means the anonymous default tenant. Class is the scheduling priority
	// class ("interactive", "batch", "bulk" — the scheduler parses it; the
	// store only persists it so admission survives restart).
	Tenant string `json:"tenant,omitempty"`
	Class  string `json:"class,omitempty"`

	CreatedAt  time.Time `json:"created_at"`
	StartedAt  time.Time `json:"started_at,omitempty"`
	FinishedAt time.Time `json:"finished_at,omitempty"`

	// Attempts counts how many times a worker picked the job up. A value
	// above 1 means the job survived a drain, crash, or requeue.
	Attempts int `json:"attempts,omitempty"`

	// MaxAttempts bounds failovers: when a lease expiry or crash recovery
	// would re-queue the job for attempt MaxAttempts+1, the store instead
	// quarantines it in state Poisoned. Zero means unlimited.
	MaxAttempts int `json:"max_attempts,omitempty"`

	// Trail is the failure trail: one line per failover (lease expiry,
	// crash recovery) and for the final quarantine decision, oldest first,
	// capped at maxTrail entries.
	Trail []string `json:"trail,omitempty"`

	// Lease is the claim currently held on a running job: which worker owns
	// it, the fencing token guarding its writes, and when the claim expires.
	// Nil for jobs that are not running.
	Lease *Lease `json:"lease,omitempty"`

	// CancelRequested marks a job a client asked to cancel while it was
	// running under a remote lease. The owning worker learns about it on its
	// next renew or checkpoint and winds the job down; if the worker is gone,
	// the lease sweep finalizes the cancellation instead of re-queuing.
	CancelRequested bool `json:"cancel_requested,omitempty"`

	// Tombstone marks a deletion record in the append log (retention sweep).
	// Tombstoned jobs never appear in the in-memory map or snapshots.
	Tombstone bool `json:"tombstone,omitempty"`

	// Progress is the runner's latest progress report (for search jobs:
	// generation counters and best-so-far).
	Progress json.RawMessage `json:"progress,omitempty"`

	// Checkpoint is the runner's latest resumable state; a recovered or
	// drained job restarts from it instead of from scratch.
	Checkpoint   json.RawMessage `json:"checkpoint,omitempty"`
	CheckpointAt time.Time       `json:"checkpoint_at,omitempty"`

	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// Clone deep-copies the job so callers can hand snapshots across
// goroutines without aliasing the store's copy.
func (j *Job) Clone() *Job {
	if j == nil {
		return nil
	}
	c := *j
	c.Request = append(json.RawMessage(nil), j.Request...)
	c.Progress = append(json.RawMessage(nil), j.Progress...)
	c.Checkpoint = append(json.RawMessage(nil), j.Checkpoint...)
	c.Result = append(json.RawMessage(nil), j.Result...)
	if j.Trail != nil {
		c.Trail = append([]string(nil), j.Trail...)
	}
	if j.Lease != nil {
		l := *j.Lease
		c.Lease = &l
	}
	return &c
}
