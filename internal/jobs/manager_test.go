package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"
)

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, m *Manager, id string, want State) *Job {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		j, ok := m.Get(id)
		if ok && j.State == want {
			return j
		}
		select {
		case <-deadline:
			t.Fatalf("job %s never reached %s (now %+v)", id, want, j)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func TestManagerRunsJobs(t *testing.T) {
	s, _ := Open("", newFakeClock().Now)
	m, err := NewManager(s, Config{Workers: 2, Runner: func(ctx context.Context, j *Job, upd func(p, c json.RawMessage)) (json.RawMessage, error) {
		upd(json.RawMessage(`{"generation":1}`), json.RawMessage(`{"cp":1}`))
		return json.RawMessage(`{"echo":` + string(j.Request) + `}`), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain(context.Background())

	j, err := m.Submit("search", json.RawMessage(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, j.ID, Done)
	if string(got.Result) != `{"echo":{"x":1}}` {
		t.Errorf("result %s", got.Result)
	}
	if got.Attempts != 1 || string(got.Progress) != `{"generation":1}` || got.CheckpointAt.IsZero() {
		t.Errorf("job bookkeeping wrong: %+v", got)
	}
	if got.FinishedAt.Before(got.StartedAt) {
		t.Errorf("finished %v before started %v", got.FinishedAt, got.StartedAt)
	}
}

func TestManagerFailureAndPanic(t *testing.T) {
	s, _ := Open("", newFakeClock().Now)
	m, err := NewManager(s, Config{Workers: 1, Runner: func(ctx context.Context, j *Job, upd func(p, c json.RawMessage)) (json.RawMessage, error) {
		if string(j.Request) == `"boom"` {
			panic("kaboom")
		}
		return nil, errors.New("no feasible mapping")
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain(context.Background())

	bad, _ := m.Submit("search", json.RawMessage(`"err"`))
	j := waitState(t, m, bad.ID, Failed)
	if j.Error != "no feasible mapping" {
		t.Errorf("error %q", j.Error)
	}
	pan, _ := m.Submit("search", json.RawMessage(`"boom"`))
	j = waitState(t, m, pan.ID, Failed)
	if j.Error == "" {
		t.Error("panic did not surface as job error")
	}
	// The worker survived the panic and still runs jobs.
	ok3, _ := m.Submit("search", json.RawMessage(`"err"`))
	waitState(t, m, ok3.ID, Failed)
}

func TestManagerCancelRunningAndQueued(t *testing.T) {
	s, _ := Open("", newFakeClock().Now)
	started := make(chan string, 8)
	m, err := NewManager(s, Config{Workers: 1, Runner: func(ctx context.Context, j *Job, upd func(p, c json.RawMessage)) (json.RawMessage, error) {
		started <- j.ID
		<-ctx.Done()
		return nil, context.Cause(ctx)
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain(context.Background())

	run, _ := m.Submit("search", nil)
	queued, _ := m.Submit("search", nil)
	<-started // `run` occupies the only worker; `queued` still queued

	if _, err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	j := waitState(t, m, queued.ID, Cancelled)
	if j.Attempts != 0 {
		t.Errorf("queued-cancelled job has attempts %d", j.Attempts)
	}

	if _, err := m.Cancel(run.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, run.ID, Cancelled)

	// Idempotent on terminal jobs.
	if _, err := m.Cancel(run.ID); err != nil {
		t.Errorf("cancel of terminal job: %v", err)
	}
	if _, err := m.Cancel("j99999999"); err == nil {
		t.Error("cancel of unknown job succeeded")
	}
}

func TestManagerDrainRequeuesWithCheckpoint(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	s, err := Open(dir, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	runner := func(ctx context.Context, j *Job, upd func(p, c json.RawMessage)) (json.RawMessage, error) {
		upd(json.RawMessage(`{"generation":2}`), json.RawMessage(`{"next_gen":2}`))
		close(started)
		<-ctx.Done()
		return nil, context.Cause(ctx)
	}
	m, err := NewManager(s, Config{Workers: 1, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := m.Submit("search", json.RawMessage(`{"w":"x"}`))
	<-started

	if err := m.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(j.ID)
	if got.State != Queued {
		t.Fatalf("drained job state %s, want queued", got.State)
	}
	if string(got.Checkpoint) != `{"next_gen":2}` {
		t.Errorf("drained job lost checkpoint: %q", got.Checkpoint)
	}
	if got.Attempts != 1 {
		t.Errorf("attempts %d, want 1", got.Attempts)
	}
	if _, err := m.Submit("search", nil); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after drain: %v", err)
	}
	s.Close()

	// Restart: the new manager resumes the re-queued job to completion.
	s2, err := Open(dir, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	m2, err := NewManager(s2, Config{Workers: 1, Runner: func(ctx context.Context, j *Job, upd func(p, c json.RawMessage)) (json.RawMessage, error) {
		if string(j.Checkpoint) != `{"next_gen":2}` {
			return nil, fmt.Errorf("resumed without checkpoint: %q", j.Checkpoint)
		}
		return json.RawMessage(`{"resumed":true}`), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Drain(context.Background())
	got = waitState(t, m2, j.ID, Done)
	if got.Attempts != 2 {
		t.Errorf("attempts %d after resume, want 2", got.Attempts)
	}
	if string(got.Result) != `{"resumed":true}` {
		t.Errorf("result %s", got.Result)
	}
}

func TestManagerEventsReplayAndLive(t *testing.T) {
	s, _ := Open("", newFakeClock().Now)
	release := make(chan struct{})
	m, err := NewManager(s, Config{Workers: 1, Runner: func(ctx context.Context, j *Job, upd func(p, c json.RawMessage)) (json.RawMessage, error) {
		upd(json.RawMessage(`{"generation":1}`), nil)
		<-release
		upd(json.RawMessage(`{"generation":2}`), nil)
		return json.RawMessage(`{}`), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain(context.Background())

	j, _ := m.Submit("search", nil)
	waitState(t, m, j.ID, Running)

	ch, stop := m.Subscribe(j.ID, 0)
	defer stop()
	close(release)

	var states []State
	var lastSeq int
	for ev := range ch {
		if ev.Seq <= lastSeq {
			t.Fatalf("seq went backwards: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		states = append(states, ev.Job.State)
		if ev.Job.State.Terminal() {
			break
		}
	}
	if len(states) == 0 || states[len(states)-1] != Done {
		t.Fatalf("event stream states %v, want trailing done", states)
	}

	// A late subscriber replays history and the channel closes (job is
	// terminal).
	waitState(t, m, j.ID, Done)
	ch2, stop2 := m.Subscribe(j.ID, 0)
	defer stop2()
	n := 0
	for ev := range ch2 {
		n++
		lastSeq = ev.Seq
	}
	if n == 0 {
		t.Fatal("late subscriber got no replay")
	}
	// Resume-from-seq skips history already seen.
	ch3, stop3 := m.Subscribe(j.ID, lastSeq)
	defer stop3()
	if _, open := <-ch3; open {
		t.Error("subscribe after last seq replayed something")
	}
}

func TestManagerStats(t *testing.T) {
	clk := newFakeClock()
	s, _ := Open("", clk.Now)
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	m, err := NewManager(s, Config{Workers: 1, Runner: func(ctx context.Context, j *Job, upd func(p, c json.RawMessage)) (json.RawMessage, error) {
		upd(nil, json.RawMessage(`{}`))
		started <- struct{}{}
		select {
		case <-block:
			return json.RawMessage(`{}`), nil
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain(context.Background())

	a, _ := m.Submit("search", nil)
	b, _ := m.Submit("search", nil)
	<-started
	clk.Advance(30 * time.Second)

	st := m.Stats()
	if st.Running != 1 || st.QueueDepth != 1 {
		t.Errorf("stats %+v, want 1 running + 1 queued", st)
	}
	if st.CheckpointAge < 30*time.Second {
		t.Errorf("checkpoint age %v, want ≥ 30s", st.CheckpointAge)
	}
	close(block)
	waitState(t, m, a.ID, Done)
	<-started
	waitState(t, m, b.ID, Done)
	if st := m.Stats(); st.Done != 2 || st.Running != 0 || st.CheckpointAge != 0 {
		t.Errorf("final stats %+v", st)
	}
}
