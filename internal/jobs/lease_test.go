package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestLeaseLifecycle(t *testing.T) {
	s, _ := Open("", newFakeClock().Now)
	defer s.Close()
	created, err := s.Create("search", json.RawMessage(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}

	j, err := s.ClaimNext("w1", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != created.ID || j.State != Running || j.Attempts != 1 {
		t.Fatalf("claim gave %+v", j)
	}
	if j.Lease == nil || j.Lease.Owner != "w1" || j.Lease.Token == 0 || j.Lease.Expires.IsZero() {
		t.Fatalf("claim lease %+v", j.Lease)
	}
	token := j.Lease.Token

	r, err := s.Renew(j.ID, token, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Lease.Expires.After(j.Lease.Expires) {
		t.Errorf("renew did not extend: %v -> %v", j.Lease.Expires, r.Lease.Expires)
	}

	u, err := s.CommitUpdate(j.ID, token, json.RawMessage(`{"generation":2}`), json.RawMessage(`{"cp":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(u.Progress) != `{"generation":2}` || string(u.Checkpoint) != `{"cp":2}` || u.CheckpointAt.IsZero() {
		t.Errorf("commit update lost payloads: %+v", u)
	}

	fin, err := s.Complete(j.ID, token, Done, json.RawMessage(`{"cycles":7}`), "")
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != Done || fin.Lease != nil || fin.FinishedAt.IsZero() {
		t.Errorf("complete gave %+v", fin)
	}
	// The consumed lease guards nothing anymore.
	if _, err := s.Renew(j.ID, token, time.Hour); !errors.Is(err, ErrStaleLease) {
		t.Errorf("renew after complete: %v, want ErrStaleLease", err)
	}
}

func TestCompleteRejectsNonTerminalState(t *testing.T) {
	s, _ := Open("", newFakeClock().Now)
	defer s.Close()
	s.Create("search", nil)
	j, _ := s.ClaimNext("w1", time.Hour)
	if _, err := s.Complete(j.ID, j.Lease.Token, Running, nil, ""); err == nil {
		t.Error("complete accepted a non-terminal state")
	}
}

// TestStaleLeaseCannotCommit is the lease-safety acceptance test at the
// store layer: once a partitioned worker's lease expires and the job moves
// on, every write under the old fencing token is rejected with the coded
// ErrStaleLease — the stale worker can never commit a result.
func TestStaleLeaseCannotCommit(t *testing.T) {
	clk := newFakeClock()
	s, _ := Open("", clk.Now)
	defer s.Close()
	s.Create("search", nil)

	j1, err := s.ClaimNext("w1", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	old := j1.Lease.Token

	// w1 goes silent; its lease expires and the sweep re-queues the job.
	clk.Advance(2 * time.Minute)
	requeued, cancelled, _ := s.SweepExpiredLeases()
	if len(requeued) != 1 || len(cancelled) != 0 {
		t.Fatalf("sweep: requeued %d cancelled %d", len(requeued), len(cancelled))
	}
	if requeued[0].State != Queued || requeued[0].Lease != nil {
		t.Fatalf("sweep left %+v", requeued[0])
	}

	// w2 claims it; the fencing token moved past w1's.
	j2, err := s.ClaimNext("w2", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Lease.Token <= old {
		t.Fatalf("token did not advance: %d -> %d", old, j2.Lease.Token)
	}
	if j2.Attempts != 2 {
		t.Errorf("attempts %d after failover, want 2", j2.Attempts)
	}

	// The partitioned w1 comes back: every write path is refused.
	if _, err := s.Renew(j2.ID, old, time.Minute); !errors.Is(err, ErrStaleLease) {
		t.Errorf("stale renew: %v", err)
	}
	if _, err := s.CommitUpdate(j2.ID, old, nil, json.RawMessage(`{"cp":1}`)); !errors.Is(err, ErrStaleLease) {
		t.Errorf("stale checkpoint: %v", err)
	}
	if _, err := s.Complete(j2.ID, old, Done, json.RawMessage(`{"cycles":1}`), ""); !errors.Is(err, ErrStaleLease) {
		t.Errorf("stale complete: %v", err)
	}
	if _, err := s.Release(j2.ID, old, false); !errors.Is(err, ErrStaleLease) {
		t.Errorf("stale release: %v", err)
	}
	// The current owner is untouched by the stale attempts.
	got, _ := s.Get(j2.ID)
	if got.State != Running || got.Lease.Owner != "w2" {
		t.Errorf("stale writes disturbed the job: %+v", got)
	}
	// An expired-but-unswept lease is just as dead: writes under it fail
	// even before any sweep runs.
	clk.Advance(2 * time.Minute)
	if _, err := s.CommitUpdate(j2.ID, j2.Lease.Token, nil, json.RawMessage(`{"cp":2}`)); !errors.Is(err, ErrStaleLease) {
		t.Errorf("write under expired lease: %v", err)
	}
}

func TestClaimNextOrdersOldestFirstAndSkipsCancelRequested(t *testing.T) {
	s, _ := Open("", newFakeClock().Now)
	defer s.Close()
	a, _ := s.Create("search", nil)
	b, _ := s.Create("search", nil)
	c, _ := s.Create("search", nil)
	if _, err := s.RequestCancel(a.ID); err != nil {
		t.Fatal(err)
	}

	j1, err := s.ClaimNext("w", time.Hour)
	if err != nil || j1.ID != b.ID {
		t.Fatalf("first claim %v, %v; want %s", j1, err, b.ID)
	}
	j2, err := s.ClaimNext("w", time.Hour)
	if err != nil || j2.ID != c.ID {
		t.Fatalf("second claim %v, %v; want %s", j2, err, c.ID)
	}
	if _, err := s.ClaimNext("w", time.Hour); !errors.Is(err, ErrNoQueuedJob) {
		t.Errorf("claim from empty queue: %v", err)
	}
}

func TestSweepFinalizesCancelRequestedExpiredLease(t *testing.T) {
	clk := newFakeClock()
	s, _ := Open("", clk.Now)
	defer s.Close()
	s.Create("search", nil)
	j, _ := s.ClaimNext("w1", time.Minute)
	if _, err := s.RequestCancel(j.ID); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Minute)
	requeued, cancelled, _ := s.SweepExpiredLeases()
	if len(requeued) != 0 || len(cancelled) != 1 {
		t.Fatalf("sweep: requeued %d cancelled %d", len(requeued), len(cancelled))
	}
	got := cancelled[0]
	if got.State != Cancelled || got.Lease != nil || got.FinishedAt.IsZero() {
		t.Errorf("sweep-cancelled job %+v", got)
	}
}

func TestReleaseKeepsCheckpointForNextClaimant(t *testing.T) {
	s, _ := Open("", newFakeClock().Now)
	defer s.Close()
	s.Create("search", nil)
	j, _ := s.ClaimNext("w1", time.Hour)
	if _, err := s.CommitUpdate(j.ID, j.Lease.Token, nil, json.RawMessage(`{"next_gen":4}`)); err != nil {
		t.Fatal(err)
	}
	rel, err := s.Release(j.ID, j.Lease.Token, false)
	if err != nil {
		t.Fatal(err)
	}
	if rel.State != Queued || rel.Lease != nil || string(rel.Checkpoint) != `{"next_gen":4}` {
		t.Fatalf("release gave %+v", rel)
	}
	if rel.Attempts != 1 {
		t.Errorf("attempts %d after release, want 1", rel.Attempts)
	}

	j2, err := s.ClaimID(j.ID, "w2", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Attempts != 2 || string(j2.Checkpoint) != `{"next_gen":4}` {
		t.Errorf("re-claim got %+v", j2)
	}
	// decAttempt compensates a claim that never ran.
	rel2, err := s.Release(j2.ID, j2.Lease.Token, true)
	if err != nil {
		t.Fatal(err)
	}
	if rel2.Attempts != 1 {
		t.Errorf("attempts %d after compensated release, want 1", rel2.Attempts)
	}
}

// TestRecoveryRespectsLiveRemoteLeases pins the crash-recovery split: a
// coordinator restart must not steal jobs from fleet workers that are
// still out there heartbeating, while process-local (zero-expiry) leases
// and expired remote leases die with the crash and re-queue.
func TestRecoveryRespectsLiveRemoteLeases(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	s, err := Open(dir, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	s.Create("search", nil) // claimed remotely, lease stays live
	s.Create("search", nil) // claimed remotely, lease expires
	s.Create("search", nil) // claimed locally (zero TTL)

	live, _ := s.ClaimNext("remote-live", time.Hour)
	dead, _ := s.ClaimNext("remote-dead", time.Minute)
	local, _ := s.ClaimNext("local", 0)
	clk.Advance(5 * time.Minute) // past remote-dead's TTL, inside remote-live's

	// Crash: reopen the same dir without Close.
	s2, err := Open(dir, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	gotLive, _ := s2.Get(live.ID)
	if gotLive.State != Running || gotLive.Lease == nil || gotLive.Lease.Owner != "remote-live" {
		t.Errorf("live remote lease not preserved: %+v", gotLive)
	}
	gotDead, _ := s2.Get(dead.ID)
	if gotDead.State != Queued || gotDead.Lease != nil {
		t.Errorf("expired remote lease not re-queued: %+v", gotDead)
	}
	gotLocal, _ := s2.Get(local.ID)
	if gotLocal.State != Queued || gotLocal.Lease != nil {
		t.Errorf("process-local lease survived the process: %+v", gotLocal)
	}

	// The fencing counter persisted: a new claim's token is strictly above
	// every token granted before the crash.
	j, err := s2.ClaimNext("w2", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if j.Lease.Token <= local.Lease.Token {
		t.Errorf("token %d not above pre-crash %d", j.Lease.Token, local.Lease.Token)
	}
	// ...and the live remote worker can still renew against the recovered
	// store.
	if _, err := s2.Renew(live.ID, live.Lease.Token, time.Hour); err != nil {
		t.Errorf("surviving worker's renew failed: %v", err)
	}
}

func TestRetentionSweepEvictsOldestTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	s, err := Open(dir, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	finish := func() string {
		j, _ := s.Create("search", nil)
		c, _ := s.ClaimID(j.ID, "w", time.Hour)
		s.Complete(j.ID, c.Lease.Token, Done, nil, "")
		return j.ID
	}
	old1 := finish()
	old2 := finish()
	clk.Advance(3 * time.Hour)
	fresh := finish()
	running, _ := s.Create("search", nil)
	s.ClaimID(running.ID, "w", time.Hour)

	removed := s.SweepRetention(time.Hour)
	if len(removed) != 2 || removed[0] != old1 || removed[1] != old2 {
		t.Fatalf("removed %v, want [%s %s] oldest-first", removed, old1, old2)
	}
	if _, ok := s.Get(old1); ok {
		t.Error("evicted job still readable")
	}
	if _, ok := s.Get(fresh); !ok {
		t.Error("fresh terminal job evicted")
	}
	if _, ok := s.Get(running.ID); !ok {
		t.Error("running job evicted")
	}
	if got := s.SweepRetention(0); got != nil {
		t.Errorf("zero horizon evicted %v", got)
	}

	// Tombstones are durable: the deletion survives reopen.
	s.Close()
	s2, err := Open(dir, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get(old1); ok {
		t.Error("evicted job resurrected by reopen")
	}
	if _, ok := s2.Get(fresh); !ok {
		t.Error("kept job lost across reopen")
	}
}

// TestRetentionTombstoneSurvivesRotation drives the append counter to the
// snapshot boundary so the tombstone append itself triggers a log
// rotation, then reopens: the snapshot must not resurrect the evicted job.
func TestRetentionTombstoneSurvivesRotation(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	s, err := Open(dir, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	victim, _ := s.Create("search", nil)
	c, _ := s.ClaimID(victim.ID, "w", time.Hour)
	s.Complete(victim.ID, c.Lease.Token, Done, nil, "")
	keeper, _ := s.Create("search", nil)

	clk.Advance(3 * time.Hour)
	// Park the log one append short of rotation.
	for s.appends < snapshotEvery-1 {
		if err := s.Update(keeper); err != nil {
			t.Fatal(err)
		}
	}
	if removed := s.SweepRetention(time.Hour); len(removed) != 1 {
		t.Fatalf("sweep removed %v", removed)
	}
	if s.appends != 0 {
		t.Fatalf("tombstone append did not rotate (appends=%d)", s.appends)
	}
	s.Close()

	s2, err := Open(dir, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get(victim.ID); ok {
		t.Error("rotation resurrected the tombstoned job")
	}
	if _, ok := s2.Get(keeper.ID); !ok {
		t.Error("keeper lost across rotation")
	}
}

// TestStoreCompactionRacesInFlightAppends hammers Update from several
// goroutines across multiple snapshot rotations (run under -race), then
// reopens and checks every job kept its final write.
func TestStoreCompactionRacesInFlightAppends(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	s, err := Open(dir, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const updates = 2 * snapshotEvery // ~8 rotations across all writers
	ids := make([]string, writers)
	for i := range ids {
		j, err := s.Create("search", nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = j.ID
	}
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 1; n <= updates; n++ {
				j, _ := s.Get(ids[i])
				j.Progress = json.RawMessage(fmt.Sprintf(`{"n":%d}`, n))
				if err := s.Update(j); err != nil {
					t.Errorf("update %s: %v", ids[i], err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	s.Close()

	s2, err := Open(dir, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	want := fmt.Sprintf(`{"n":%d}`, updates)
	for _, id := range ids {
		j, ok := s2.Get(id)
		if !ok {
			t.Fatalf("job %s lost across racing compaction", id)
		}
		if string(j.Progress) != want {
			t.Errorf("job %s progress %s, want %s", id, j.Progress, want)
		}
	}
}

// TestManagerEventHistoryCompaction floods one job's event log past the
// retention cap and checks replay semantics: a subscriber from before the
// retained window starts at the oldest retained event, and one pointing
// past the end of a closed log gets an immediately closed channel.
func TestManagerEventHistoryCompaction(t *testing.T) {
	s, _ := Open("", newFakeClock().Now)
	defer s.Close()
	m, err := NewManager(s, Config{Workers: -1, Runner: func(ctx context.Context, j *Job, upd func(p, c json.RawMessage)) (json.RawMessage, error) {
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Drain(context.Background())

	j, _ := s.Create("search", nil)
	total := maxEventHistory + 37
	for i := 0; i < total; i++ {
		m.emit(j)
	}

	ch, stop := m.Subscribe(j.ID, 0)
	defer stop()
	first := <-ch
	if want := total - maxEventHistory + 1; first.Seq != want {
		t.Errorf("replay starts at seq %d, want %d (oldest retained)", first.Seq, want)
	}
	n := 1
	for len(ch) > 0 {
		<-ch
		n++
	}
	if n != maxEventHistory {
		t.Errorf("replayed %d events, want %d", n, maxEventHistory)
	}

	// Terminal job + replay pointer past the end: closed immediately.
	m.closeEvents(j.ID)
	ch2, stop2 := m.Subscribe(j.ID, total+100)
	defer stop2()
	if _, open := <-ch2; open {
		t.Error("past-end subscription on closed log delivered an event")
	}
}
