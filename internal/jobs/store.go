package jobs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

const (
	logName      = "jobs.log"
	snapshotName = "snapshot.json"
	// snapshotEvery bounds log growth: after this many appended mutations
	// the store rewrites the snapshot and truncates the log.
	snapshotEvery = 256
	// maxRecordBytes caps one log line; checkpoints dominate record size
	// and stay far below this.
	maxRecordBytes = 64 << 20
)

// Store is the durable job store: an in-memory map backed by a JSONL
// append log (one full job JSON per mutation, last write wins on replay)
// plus a periodic snapshot. With dir == "" it is memory-only, which tests
// and ephemeral servers use.
//
// Crash safety comes from the append log being redundant with the
// snapshot: replay applies the snapshot first, then the log on top, and a
// torn final line (a crash mid-append) is detected and dropped.
type Store struct {
	mu   sync.Mutex
	dir  string
	now  func() time.Time
	jobs map[string]*Job
	seq  uint64
	// picker, when set, chooses which queued job ClaimNext hands out
	// (the scheduler's dequeue hook). Nil keeps the FIFO default.
	picker Picker
	// poisonSeq counts quarantine transitions for metrics.
	poisonSeq uint64
	// leaseSeq is the fencing-token counter: monotonic across the store's
	// whole lifetime (persisted), so a token granted before a restart can
	// never collide with one granted after.
	leaseSeq uint64
	log      *os.File
	// appends counts log lines since the last snapshot.
	appends int
}

// snapshotFile is the on-disk snapshot payload.
type snapshotFile struct {
	Seq      uint64 `json:"seq"`
	LeaseSeq uint64 `json:"lease_seq,omitempty"`
	Jobs     []*Job `json:"jobs"`
}

// Open loads (or creates) a store under dir. A nil now defaults to the
// wall clock; tests inject a fake. Jobs found in state Running were
// interrupted by a crash or kill — Open re-queues them (checkpoint and
// attempt count retained) so the manager resumes them.
func Open(dir string, now func() time.Time) (*Store, error) {
	if now == nil {
		now = time.Now
	}
	s := &Store{dir: dir, now: now, jobs: map[string]*Job{}}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: create data dir: %w", err)
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	s.recover()
	// Persist recovery edits and fold the replayed log into a fresh
	// snapshot, so the next open replays nothing.
	if err := s.compact(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: open log: %w", err)
	}
	s.log = f
	return s, nil
}

// load replays snapshot.json then jobs.log into the in-memory map.
func (s *Store) load() error {
	if b, err := os.ReadFile(filepath.Join(s.dir, snapshotName)); err == nil {
		var snap snapshotFile
		if err := json.Unmarshal(b, &snap); err != nil {
			return fmt.Errorf("jobs: corrupt snapshot: %w", err)
		}
		s.seq = snap.Seq
		s.leaseSeq = snap.LeaseSeq
		for _, j := range snap.Jobs {
			s.jobs[j.ID] = j
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("jobs: read snapshot: %w", err)
	}

	f, err := os.Open(filepath.Join(s.dir, logName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("jobs: read log: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), maxRecordBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var j Job
		if err := json.Unmarshal(line, &j); err != nil || j.ID == "" {
			// A torn tail from a crash mid-append; everything before it
			// already applied, so stop replaying here.
			break
		}
		if j.Tombstone {
			delete(s.jobs, j.ID)
		} else {
			s.jobs[j.ID] = &j
		}
		if n := idSeq(j.ID); n > s.seq {
			s.seq = n
		}
		if j.Lease != nil && j.Lease.Token > s.leaseSeq {
			s.leaseSeq = j.Lease.Token
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("jobs: scan log: %w", err)
	}
	return nil
}

// recover re-queues jobs a previous process died while running. Jobs held
// under a live remote lease are left alone: the worker renewing that lease
// is on another node and survived this process's crash — it will keep
// checkpointing against the recovered store. Process-local leases (zero
// expiry) died with the process, and expired remote leases are dead by
// definition; both re-queue, checkpoint and attempts intact — unless the
// job has exhausted its failover budget, in which case it is quarantined.
func (s *Store) recover() {
	now := s.now()
	for _, j := range s.jobs {
		if j.State != Running {
			continue
		}
		if j.Lease != nil && !j.Lease.Expires.IsZero() && now.Before(j.Lease.Expires) {
			continue // live remote lease: the worker is still out there
		}
		owner := "?"
		if j.Lease != nil {
			owner = j.Lease.Owner
		}
		j.Trail = trailAppend(j.Trail, fmt.Sprintf("%s attempt %d (%s): interrupted by restart", now.UTC().Format(time.RFC3339), j.Attempts, owner))
		if s.exhaustedLocked(j) {
			s.poisonLocked(j)
			continue
		}
		s.requeueLocked(j)
	}
}

// idSeq parses the numeric part of a "jNNNNNNNN" id, 0 if malformed.
func idSeq(id string) uint64 {
	var n uint64
	if _, err := fmt.Sscanf(id, "j%d", &n); err != nil {
		return 0
	}
	return n
}

// Create appends a new queued job and returns a snapshot of it.
func (s *Store) Create(kind string, req json.RawMessage) (*Job, error) {
	return s.CreateWith(CreateSpec{Kind: kind, Request: req}, nil)
}

// CreateSpec names everything a new job carries besides its payload.
type CreateSpec struct {
	Kind        string
	Request     json.RawMessage
	Tenant      string
	Class       string
	MaxAttempts int
}

// CreateWith appends a new queued job after running the admission check
// under the store lock: admit sees a snapshot of every non-terminal job
// (ordered by ID) and a non-nil return refuses the submission with that
// error, atomically with respect to concurrent creates and claims. This
// is what makes per-tenant quotas race-free and — because tenant and
// class are persisted on the record — restart-proof.
func (s *Store) CreateWith(spec CreateSpec, admit func(active []*Job) error) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if admit != nil {
		active := make([]*Job, 0, len(s.jobs))
		for _, j := range s.jobs {
			if !j.State.Terminal() {
				active = append(active, j.Clone())
			}
		}
		sort.Slice(active, func(a, b int) bool { return active[a].ID < active[b].ID })
		if err := admit(active); err != nil {
			return nil, err
		}
	}
	s.seq++
	j := &Job{
		ID:          fmt.Sprintf("j%08d", s.seq),
		Kind:        spec.Kind,
		State:       Queued,
		Request:     append(json.RawMessage(nil), spec.Request...),
		Tenant:      spec.Tenant,
		Class:       spec.Class,
		MaxAttempts: spec.MaxAttempts,
		CreatedAt:   s.now().UTC(),
	}
	s.jobs[j.ID] = j
	if err := s.appendLocked(j); err != nil {
		return nil, err
	}
	return j.Clone(), nil
}

// SetPicker installs the scheduler's dequeue hook (see Picker). Install
// it before workers start claiming; nil restores FIFO.
func (s *Store) SetPicker(p Picker) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.picker = p
}

// PoisonCount reports how many quarantine transitions this store has
// performed since open (metrics counter; not persisted).
func (s *Store) PoisonCount() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.poisonSeq
}

// Get returns a snapshot of one job.
func (s *Store) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	return j.Clone(), true
}

// List returns snapshots of all jobs ordered by ID (= creation order).
func (s *Store) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.Clone())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Update persists a new version of the job (whole-record, last-wins).
func (s *Store) Update(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[j.ID]; !ok {
		return fmt.Errorf("jobs: update unknown job %s", j.ID)
	}
	c := j.Clone()
	s.jobs[j.ID] = c
	return s.appendLocked(c)
}

// Now returns the store's clock reading (the injected clock in tests).
func (s *Store) Now() time.Time { return s.now() }

// appendLocked writes one log line and snapshots when the log has grown.
func (s *Store) appendLocked(j *Job) error {
	if s.log == nil {
		return nil
	}
	b, err := json.Marshal(j)
	if err != nil {
		return fmt.Errorf("jobs: marshal job: %w", err)
	}
	if _, err := s.log.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("jobs: append log: %w", err)
	}
	s.appends++
	if s.appends >= snapshotEvery {
		return s.rotateLocked()
	}
	return nil
}

// compact writes a snapshot and truncates the log (open-time path, before
// the append handle exists).
func (s *Store) compact() error {
	if err := s.writeSnapshot(); err != nil {
		return err
	}
	if err := os.Truncate(filepath.Join(s.dir, logName), 0); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("jobs: truncate log: %w", err)
	}
	s.appends = 0
	return nil
}

// rotateLocked is compact for a live store: snapshot, then reset the open
// append handle.
func (s *Store) rotateLocked() error {
	if err := s.writeSnapshot(); err != nil {
		return err
	}
	if err := s.log.Truncate(0); err != nil {
		return fmt.Errorf("jobs: truncate log: %w", err)
	}
	if _, err := s.log.Seek(0, 0); err != nil {
		return fmt.Errorf("jobs: rewind log: %w", err)
	}
	s.appends = 0
	return nil
}

// writeSnapshot atomically replaces snapshot.json (tmp + rename).
func (s *Store) writeSnapshot() error {
	jobsByID := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobsByID = append(jobsByID, j)
	}
	sort.Slice(jobsByID, func(a, b int) bool { return jobsByID[a].ID < jobsByID[b].ID })
	b, err := json.Marshal(snapshotFile{Seq: s.seq, LeaseSeq: s.leaseSeq, Jobs: jobsByID})
	if err != nil {
		return fmt.Errorf("jobs: marshal snapshot: %w", err)
	}
	tmp := filepath.Join(s.dir, snapshotName+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("jobs: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		return fmt.Errorf("jobs: install snapshot: %w", err)
	}
	return nil
}

// Close flushes and closes the append log. The store must not be used
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	err := s.log.Sync()
	if cerr := s.log.Close(); err == nil {
		err = cerr
	}
	s.log = nil
	return err
}
