package jobs

import (
	"strings"
	"testing"
	"time"
)

// TestPoisonQuarantineAfterMaxAttempts drives a job through repeated
// lease-expiry failovers until its attempt budget runs out: the sweep
// must quarantine it in state Poisoned with the failure trail recording
// each failover and the final verdict.
func TestPoisonQuarantineAfterMaxAttempts(t *testing.T) {
	clk := newFakeClock()
	s, err := Open("", clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.CreateWith(CreateSpec{Kind: "k", Request: []byte(`{}`), Tenant: "t", Class: "bulk", MaxAttempts: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}

	for attempt := 1; attempt <= 3; attempt++ {
		c, err := s.ClaimNext("w"+string(rune('0'+attempt)), time.Minute)
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		if c.ID != j.ID || c.Attempts != attempt {
			t.Fatalf("attempt %d: claimed %+v", attempt, c)
		}
		clk.Advance(2 * time.Minute)
		requeued, cancelled, poisoned := s.SweepExpiredLeases()
		if attempt < 3 {
			if len(requeued) != 1 || len(poisoned) != 0 {
				t.Fatalf("attempt %d: requeued %d poisoned %d", attempt, len(requeued), len(poisoned))
			}
			continue
		}
		if len(requeued) != 0 || len(cancelled) != 0 || len(poisoned) != 1 {
			t.Fatalf("final sweep: %d/%d/%d", len(requeued), len(cancelled), len(poisoned))
		}
		p := poisoned[0]
		if p.State != Poisoned || !p.State.Terminal() || p.Lease != nil {
			t.Fatalf("poisoned job: %+v", p)
		}
		if len(p.Trail) != 4 { // 3 failovers + verdict
			t.Fatalf("trail: %q", p.Trail)
		}
		if !strings.Contains(p.Trail[3], "poisoned after 3 attempts") {
			t.Fatalf("verdict line: %q", p.Trail[3])
		}
	}

	if _, err := s.ClaimNext("w9", time.Minute); err != ErrNoQueuedJob {
		t.Fatalf("poisoned job claimable: %v", err)
	}
	if n := s.PoisonCount(); n != 1 {
		t.Fatalf("poison count %d", n)
	}
}

// TestPoisonOnCrashRecovery covers the other failover path: a store
// reopened with a running job whose budget is spent quarantines it
// during recovery instead of re-queuing it.
func TestPoisonOnCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	s, err := Open(dir, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.CreateWith(CreateSpec{Kind: "k", Request: []byte(`{}`), MaxAttempts: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ClaimID(j.ID, localOwner, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // process "crashes" holding a local lease
		t.Fatal(err)
	}

	s2, err := Open(dir, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok := s2.Get(j.ID)
	if !ok || got.State != Poisoned {
		t.Fatalf("after recovery: %+v ok=%v", got, ok)
	}
	if len(got.Trail) != 2 || !strings.Contains(got.Trail[0], "interrupted by restart") {
		t.Fatalf("trail: %q", got.Trail)
	}
}

// TestClaimNextHonorsPicker checks the dequeue hook: the picker sees
// ID-ordered queued and running snapshots, its choice wins, and an empty
// choice turns into ErrNoQueuedJob.
func TestClaimNextHonorsPicker(t *testing.T) {
	clk := newFakeClock()
	s, err := Open("", clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	var j2 *Job
	for i := 0; i < 3; i++ {
		j, err := s.Create("k", []byte(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			j2 = j
		}
	}

	picked := ""
	s.SetPicker(func(queued, running []*Job) string {
		for i := 1; i < len(queued); i++ {
			if queued[i-1].ID >= queued[i].ID {
				t.Fatalf("queued not ID-ordered: %s, %s", queued[i-1].ID, queued[i].ID)
			}
		}
		return picked
	})

	if _, err := s.ClaimNext("w", 0); err != ErrNoQueuedJob {
		t.Fatalf("decline: %v", err)
	}
	picked = j2.ID
	c, err := s.ClaimNext("w", 0)
	if err != nil || c.ID != j2.ID {
		t.Fatalf("picker choice: %+v, %v", c, err)
	}
	// A picker naming an unclaimable job is a hard error, not a silent
	// FIFO fallback.
	picked = j2.ID // now running
	if _, err := s.ClaimNext("w", 0); err == nil || err == ErrNoQueuedJob {
		t.Fatalf("unclaimable choice: %v", err)
	}
}
