package jobs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic injected clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Second)
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestStorePersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	s, err := Open(dir, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Create("search", json.RawMessage(`{"workload":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Create("search", json.RawMessage(`{"workload":"y"}`))
	if err != nil {
		t.Fatal(err)
	}
	b.State = Done
	b.Result = json.RawMessage(`{"cycles":42}`)
	if err := s.Update(b); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	jobs := s2.List()
	if len(jobs) != 2 {
		t.Fatalf("got %d jobs after reopen, want 2", len(jobs))
	}
	if jobs[0].ID != a.ID || jobs[0].State != Queued {
		t.Errorf("job %s state %s, want queued", jobs[0].ID, jobs[0].State)
	}
	if jobs[1].State != Done || string(jobs[1].Result) != `{"cycles":42}` {
		t.Errorf("job %s lost its result: %+v", jobs[1].ID, jobs[1])
	}
	// IDs keep increasing after reopen — no reuse.
	c, err := s2.Create("search", nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID <= b.ID {
		t.Errorf("new id %s not after %s", c.ID, b.ID)
	}
}

func TestStoreRecoveryRequeuesRunning(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	s, err := Open(dir, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	j, _ := s.Create("search", nil)
	j.State = Running
	j.Attempts = 1
	j.StartedAt = clk.Now()
	j.Checkpoint = json.RawMessage(`{"next_gen":3}`)
	j.CheckpointAt = clk.Now()
	if err := s.Update(j); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: no Close, just reopen the directory.
	s2, err := Open(dir, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok := s2.Get(j.ID)
	if !ok {
		t.Fatal("job lost across crash")
	}
	if got.State != Queued {
		t.Errorf("state %s after recovery, want queued", got.State)
	}
	if got.Attempts != 1 {
		t.Errorf("attempts %d, want 1 (preserved)", got.Attempts)
	}
	if string(got.Checkpoint) != `{"next_gen":3}` {
		t.Errorf("checkpoint lost in recovery: %q", got.Checkpoint)
	}
	if !got.StartedAt.IsZero() {
		t.Errorf("started_at not cleared: %v", got.StartedAt)
	}
}

func TestStoreTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	s, err := Open(dir, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	j, _ := s.Create("search", nil)
	s.Close()
	// Append a torn half-record, as if the process died mid-write.
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"j000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir, clk.Now)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer s2.Close()
	if _, ok := s2.Get(j.ID); !ok {
		t.Error("intact record before the torn tail was lost")
	}
}

func TestStoreSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	s, err := Open(dir, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	j, _ := s.Create("search", nil)
	for i := 0; i < snapshotEvery+5; i++ {
		j.Progress = json.RawMessage(`{"generation":` + string(rune('0'+i%10)) + `}`)
		if err := s.Update(j); err != nil {
			t.Fatal(err)
		}
	}
	// The log must have been truncated by the rotation; only the few
	// post-snapshot appends remain.
	fi, err := os.Stat(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 10_000 {
		t.Errorf("log is %d bytes after %d updates; compaction is not running", fi.Size(), snapshotEvery+5)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Errorf("no snapshot written: %v", err)
	}
	s.Close()
	s2, err := Open(dir, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get(j.ID); !ok {
		t.Error("job lost across compaction + reopen")
	}
}

func TestStoreMemoryOnly(t *testing.T) {
	s, err := Open("", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j, err := s.Create("search", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(j.ID); !ok {
		t.Error("memory-only store dropped the job")
	}
}
