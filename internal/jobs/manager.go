package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Cancellation causes, distinguishable via context.Cause inside a runner
// and inspected by the worker to pick the job's final state.
var (
	// ErrCancelled means a client cancelled the job; it finishes in state
	// Cancelled.
	ErrCancelled = errors.New("jobs: cancelled by client")
	// ErrDraining means the server is shutting down; the job goes back to
	// Queued with its checkpoint retained, to be resumed after restart.
	ErrDraining = errors.New("jobs: server draining")
)

// Runner executes one job. It must honor ctx (returning context.Cause(ctx)
// once cancelled) and should call upd with fresh progress and checkpoint
// payloads as it goes — the checkpoint is what makes drain and crash
// recovery resume instead of restart. On success it returns the job's
// result payload.
type Runner func(ctx context.Context, job *Job, upd func(progress, checkpoint json.RawMessage)) (json.RawMessage, error)

// Event is one observation of a job: a state change or a progress update.
// Seq increases by 1 per job starting at 1, so clients resume streams with
// "events after seq N".
type Event struct {
	Seq int
	Job *Job
}

// Config sizes a Manager.
type Config struct {
	// Workers is the number of concurrent job executors. Zero means 1; a
	// negative value means none — a coordinator-only node that stores and
	// leases jobs out to fleet workers but never runs one itself.
	Workers int
	// Runner executes jobs; required.
	Runner Runner
}

// localOwner names the lease owner of this process's own workers. Their
// leases are process-local (no TTL): they die with the process and are
// re-queued by crash recovery, not by the sweep.
const localOwner = "local"

// maxEventHistory bounds one job's retained event history. A long search
// emits one event per generation; past the cap the oldest events are
// compacted away and a subscriber replaying from before the retained
// window simply starts at the oldest retained event.
const maxEventHistory = 512

// Manager owns the worker pool on top of a Store. Workers pull work by
// claiming through Store.ClaimNext — the same scheduler-governed path
// fleet claims use — rather than from a private FIFO list, so an
// installed Picker (priority classes, tenant quotas) governs local
// execution too. Jobs found queued in the store at construction (fresh
// submissions from a previous process, or running jobs the store
// re-queued during crash recovery) are scheduled immediately.
type Manager struct {
	store   *Store
	runner  Runner
	workers int

	mu sync.Mutex
	// cond + wake form the scheduling signal: every event that could make
	// a claim succeed where it previously failed (submit, requeue, job
	// finish, remote complete) bumps wake and broadcasts; workers rescan
	// the store whenever wake moves past what they last saw. This is what
	// lets a quota-blocked worker sleep instead of busy-polling.
	cond     *sync.Cond
	wake     uint64
	running  map[string]context.CancelCauseFunc
	draining bool
	closed   bool
	wg       sync.WaitGroup

	evmu   sync.Mutex
	events map[string]*eventLog
}

// eventLog is one job's event history plus live subscribers.
type eventLog struct {
	seq    int
	hist   []Event
	subs   map[chan Event]bool
	closed bool
}

// NewManager starts the worker pool. The caller keeps ownership of the
// store and closes it after Drain.
func NewManager(store *Store, cfg Config) (*Manager, error) {
	if cfg.Runner == nil {
		return nil, fmt.Errorf("jobs: config needs a Runner")
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.Workers < 0 {
		cfg.Workers = 0
	}
	m := &Manager{
		store:   store,
		runner:  cfg.Runner,
		workers: cfg.Workers,
		running: map[string]context.CancelCauseFunc{},
		events:  map[string]*eventLog{},
	}
	m.cond = sync.NewCond(&m.mu)
	// wake starts at 1 while workers start having seen 0, so each worker's
	// first act is a store scan — that is what picks up recovered jobs.
	m.wake = 1
	for i := 0; i < m.workers; i++ {
		m.wg.Add(1)
		go m.work()
	}
	return m, nil
}

// Submit enqueues a new job and returns its stored snapshot.
func (m *Manager) Submit(kind string, req json.RawMessage) (*Job, error) {
	return m.SubmitWith(CreateSpec{Kind: kind, Request: req}, nil)
}

// SubmitWith enqueues a new job with scheduling attributes after the
// admission check (run atomically inside the store; see CreateWith). An
// admission refusal returns the admit error unwrapped so callers can map
// it onto their own taxonomy (the server turns quota errors into 429s).
func (m *Manager) SubmitWith(spec CreateSpec, admit func(active []*Job) error) (*Job, error) {
	m.mu.Lock()
	if m.draining || m.closed {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	m.mu.Unlock()

	j, err := m.store.CreateWith(spec, admit)
	if err != nil {
		return nil, err
	}
	m.emit(j)
	m.Kick()
	return j, nil
}

// Kick wakes the worker pool to rescan the store for claimable work. Any
// event that frees capacity — a submission, a requeue, a finished or
// remotely-completed job releasing its tenant's quota — should kick.
func (m *Manager) Kick() {
	m.mu.Lock()
	m.wake++
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Get returns a snapshot of one job.
func (m *Manager) Get(id string) (*Job, bool) { return m.store.Get(id) }

// List returns snapshots of all jobs in creation order.
func (m *Manager) List() []*Job { return m.store.List() }

// Cancel stops a job. A queued job is finalized immediately; a locally
// running job's context is cancelled with ErrCancelled and its worker
// finalizes it; a job running under a remote fleet lease is flagged
// CancelRequested — the owning worker learns on its next heartbeat, and
// if that worker is dead, the lease sweep finalizes the cancellation.
// Cancelling a terminal job is a no-op. The returned snapshot may still
// show state Running for an in-flight cancellation.
func (m *Manager) Cancel(id string) (*Job, error) {
	m.mu.Lock()
	cancel, isRunning := m.running[id]
	m.mu.Unlock()
	if isRunning {
		cancel(ErrCancelled)
		j, _ := m.store.Get(id)
		return j, nil
	}

	j, ok := m.store.Get(id)
	if !ok {
		return nil, fmt.Errorf("jobs: no job %s", id)
	}
	if j.State.Terminal() {
		return j, nil
	}
	if j.State == Running {
		// Running somewhere else: a fleet worker holds the lease.
		j2, err := m.store.RequestCancel(id)
		if err != nil {
			return nil, err
		}
		m.emit(j2)
		return j2, nil
	}
	// Queued: finalize in place; workers skip non-queued entries.
	j.State = Cancelled
	j.Error = ErrCancelled.Error()
	j.FinishedAt = m.store.Now().UTC()
	if err := m.store.Update(j); err != nil {
		return nil, err
	}
	m.emit(j)
	m.closeEvents(id)
	return j, nil
}

// Requeue schedules an already-queued job on the local worker pool — the
// coordinator calls it when a lease sweep hands a dead fleet worker's job
// back. The id is advisory: workers rescan the whole store, and whichever
// claim wins, wins.
func (m *Manager) Requeue(id string) {
	_ = id
	m.mu.Lock()
	if m.draining || m.closed {
		m.mu.Unlock()
		return
	}
	m.wake++
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Publish fans a job snapshot mutated outside the manager — by the fleet
// coordinator's claim/checkpoint/complete handlers — into the job's event
// stream, closing it when the job reached a terminal state. This is what
// lets an SSE watcher on the coordinator follow a search executing on a
// different node. A terminal snapshot also kicks the worker pool: a
// remote completion may have freed its tenant's running quota.
func (m *Manager) Publish(j *Job) {
	m.emit(j)
	if j.State.Terminal() {
		m.closeEvents(j.ID)
		m.Kick()
	}
}

// SweepRetention deletes terminal jobs older than the horizon from the
// store (oldest first) and drops their event logs. Returns how many jobs
// were evicted.
func (m *Manager) SweepRetention(horizon time.Duration) int {
	removed := m.store.SweepRetention(horizon)
	for _, id := range removed {
		m.dropEvents(id)
	}
	return len(removed)
}

// dropEvents forgets a deleted job's event history entirely.
func (m *Manager) dropEvents(id string) {
	m.evmu.Lock()
	defer m.evmu.Unlock()
	if log, ok := m.events[id]; ok {
		for ch := range log.subs {
			delete(log.subs, ch)
			close(ch)
		}
		delete(m.events, id)
	}
}

// Stats is the metrics view of the job system.
type Stats struct {
	QueueDepth int
	Running    int
	Done       int
	Failed     int
	Cancelled  int
	Poisoned   int
	// CheckpointAge is the staleness of the most out-of-date checkpoint
	// among running jobs, 0 when no running job has checkpointed yet.
	CheckpointAge time.Duration
	// QueueDepthByClass and QueueDepthByTenant break the queue down for
	// the scheduler metrics; keys are the raw persisted strings.
	QueueDepthByClass  map[string]int
	QueueDepthByTenant map[string]int
}

// Stats derives gauges from the store, so they survive restarts.
func (m *Manager) Stats() Stats {
	now := m.store.Now()
	st := Stats{QueueDepthByClass: map[string]int{}, QueueDepthByTenant: map[string]int{}}
	for _, j := range m.store.List() {
		switch j.State {
		case Queued:
			st.QueueDepth++
			st.QueueDepthByClass[j.Class]++
			st.QueueDepthByTenant[j.Tenant]++
		case Running:
			st.Running++
			if !j.CheckpointAt.IsZero() {
				if age := now.Sub(j.CheckpointAt); age > st.CheckpointAge {
					st.CheckpointAge = age
				}
			}
		case Done:
			st.Done++
		case Failed:
			st.Failed++
		case Cancelled:
			st.Cancelled++
		case Poisoned:
			st.Poisoned++
		}
	}
	return st
}

// Drain stops the manager for shutdown: new submissions are refused,
// running jobs are cancelled with ErrDraining (their runners checkpoint
// and the workers re-queue them), and Drain blocks until every worker has
// finished or ctx expires.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	m.closed = true
	for _, cancel := range m.running {
		cancel(ErrDraining)
	}
	m.cond.Broadcast()
	m.mu.Unlock()

	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: drain timed out: %w", ctx.Err())
	}
}

// work is one worker's loop: wait for a wake signal, then keep claiming
// and running jobs until the store has nothing claimable for us.
func (m *Manager) work() {
	defer m.wg.Done()
	var seen uint64
	for {
		m.mu.Lock()
		for m.wake == seen && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		seen = m.wake
		m.mu.Unlock()
		for m.runNext() {
		}
	}
}

// runNext claims one job through the scheduler-governed store path and
// runs it to completion. Returns false when nothing was claimable —
// queue empty, every queued tenant at quota, or the manager draining.
func (m *Manager) runNext() bool {
	m.mu.Lock()
	if m.draining || m.closed {
		m.mu.Unlock()
		return false
	}
	m.mu.Unlock()
	j, err := m.store.ClaimNext(localOwner, 0)
	if err != nil {
		return false
	}
	m.runOne(j)
	// Finishing a job may unblock quota-held work for the other workers.
	m.Kick()
	return true
}

// runOne executes a single claimed job end to end. The claim went
// through the same lease path fleet workers use — a process-local lease
// with a fencing token — so every write to a running job, local or
// remote, is guarded by the same stale-lease check.
func (m *Manager) runOne(j *Job) {
	id := j.ID
	token := j.Lease.Token

	ctx, cancel := context.WithCancelCause(context.Background())
	m.mu.Lock()
	if m.draining {
		// Drain won the race: put the job back without running it.
		m.mu.Unlock()
		cancel(ErrDraining)
		m.store.Release(id, token, true)
		return
	}
	m.running[id] = cancel
	m.mu.Unlock()
	m.emit(j)

	upd := func(progress, checkpoint json.RawMessage) {
		if j2, err := m.store.CommitUpdate(id, token, progress, checkpoint); err == nil {
			m.emit(j2)
		}
	}

	result, err := m.runProtected(ctx, j, upd)

	m.mu.Lock()
	delete(m.running, id)
	m.mu.Unlock()
	cancel(nil)

	cause := context.Cause(ctx)
	var fin *Job
	var ferr error
	switch {
	case err == nil:
		fin, ferr = m.store.Complete(id, token, Done, result, "")
	case errors.Is(cause, ErrDraining) || errors.Is(err, ErrDraining):
		// Back to the queue with the latest checkpoint; the next start
		// resumes it.
		if rel, rerr := m.store.Release(id, token, false); rerr == nil {
			m.emit(rel)
		}
		return
	case errors.Is(cause, ErrCancelled) || errors.Is(err, ErrCancelled):
		fin, ferr = m.store.Complete(id, token, Cancelled, nil, ErrCancelled.Error())
	default:
		fin, ferr = m.store.Complete(id, token, Failed, nil, err.Error())
	}
	if ferr != nil {
		return // lease lost mid-run; the current owner's writes stand
	}
	m.emit(fin)
	m.closeEvents(id)
}

// runProtected invokes the runner, converting a panic into a job failure
// instead of killing the worker.
func (m *Manager) runProtected(ctx context.Context, j *Job, upd func(progress, checkpoint json.RawMessage)) (result json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("jobs: runner panicked: %v", r)
		}
	}()
	return m.runner(ctx, j, upd)
}

// emit appends a job snapshot to its event log and fans it out. A
// subscriber too slow to keep up has its channel closed; it can
// re-subscribe from the last seq it saw.
func (m *Manager) emit(j *Job) {
	snap := j.Clone()
	m.evmu.Lock()
	defer m.evmu.Unlock()
	log := m.eventLogLocked(j.ID)
	log.seq++
	ev := Event{Seq: log.seq, Job: snap}
	log.hist = append(log.hist, ev)
	if len(log.hist) > maxEventHistory {
		// Compact: drop the oldest events. Seq numbering is untouched, so a
		// subscriber resuming from before the retained window replays from
		// the oldest retained event (and one pointing past the end replays
		// nothing at all).
		drop := len(log.hist) - maxEventHistory
		log.hist = append([]Event(nil), log.hist[drop:]...)
	}
	for ch := range log.subs {
		select {
		case ch <- ev:
		default:
			delete(log.subs, ch)
			close(ch)
		}
	}
}

// closeEvents marks a job's stream finished: live subscribers are closed
// after the history they already received, and later subscribers get the
// replay followed by an immediate close.
func (m *Manager) closeEvents(id string) {
	m.evmu.Lock()
	defer m.evmu.Unlock()
	log := m.eventLogLocked(id)
	log.closed = true
	for ch := range log.subs {
		delete(log.subs, ch)
		close(ch)
	}
}

func (m *Manager) eventLogLocked(id string) *eventLog {
	log, ok := m.events[id]
	if !ok {
		log = &eventLog{subs: map[chan Event]bool{}}
		m.events[id] = log
	}
	return log
}

// Subscribe returns a channel that replays the job's event history with
// Seq > after and then streams live events. The channel closes when the
// job reaches a terminal state or the subscriber falls too far behind
// (re-subscribe with the last seq to continue). The returned stop function
// must be called when done.
func (m *Manager) Subscribe(id string, after int) (<-chan Event, func()) {
	m.evmu.Lock()
	defer m.evmu.Unlock()
	log := m.eventLogLocked(id)
	ch := make(chan Event, len(log.hist)+64)
	for _, ev := range log.hist {
		if ev.Seq > after {
			ch <- ev
		}
	}
	if log.closed {
		close(ch)
		return ch, func() {}
	}
	log.subs[ch] = true
	stop := func() {
		m.evmu.Lock()
		defer m.evmu.Unlock()
		if log.subs[ch] {
			delete(log.subs, ch)
			close(ch)
		}
	}
	return ch, stop
}
