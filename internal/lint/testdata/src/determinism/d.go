// Fixture for the determinism analyzer, checked as repro/internal/core with
// full type information (all imports are standard library, so the offline
// gc importer resolves them).
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

var start = time.Now() // want `time\.Now reads the wall clock`

func stamp() int64 {
	return time.Now().Unix() // want `time\.Now reads the wall clock`
}

func elapsed() time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func roll() int {
	return rand.Intn(6) // want `rand\.Intn draws from the process-global source`
}

// seeded is the sanctioned pattern: a constructor draw is deterministic.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order leaks into ordered output`
		out = append(out, k)
	}
	return out
}

// keysSorted is the collect-then-sort idiom the search code uses; the sort
// call downstream of the range keeps it quiet.
func keysSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// total accumulates commutatively; order cannot change the answer.
func total(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

func dump(m map[string]int) {
	for k, v := range m { // want `map iteration order leaks into ordered output`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func join(m map[string]int) string {
	var s string
	for k := range m { // want `map iteration order leaks into ordered output`
		s += k
	}
	return s
}

// describe ranges over a slice: ordered output is fine there.
func describe(ks []string) string {
	var b strings.Builder
	for _, k := range ks {
		b.WriteString(k)
	}
	return b.String()
}
