// Benchmarks and tests time themselves on purpose; the analyzer exempts
// _test.go files, so nothing here is flagged.
package core

import (
	"testing"
	"time"
)

func BenchmarkStamp(b *testing.B) {
	s := time.Now()
	for i := 0; i < b.N; i++ {
		_ = stamp
	}
	_ = time.Since(s)
}
