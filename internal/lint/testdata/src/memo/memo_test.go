// Test files are exempt from layering: differential tests legitimately wire
// layers together. No diagnostics expected here.
package memo

import (
	"testing"

	"repro/internal/serve"
)

func TestUsesServe(t *testing.T) { _ = serve.Config{} }
