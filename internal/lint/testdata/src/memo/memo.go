// Fixture for the layering analyzer, checked as repro/internal/memo: the
// cache layer may import nothing internal, so reaching up into the HTTP
// service is the canonical inversion.
package memo

import (
	"fmt"

	"repro/internal/serve" // want `forbidden import of repro/internal/serve from repro/internal/memo`
)

var _ = fmt.Sprint
var _ = serve.Config{}
