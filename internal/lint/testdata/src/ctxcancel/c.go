// Package ctxcancel is a lint fixture: each // want comment pins one
// diagnostic of the ctxcancel analyzer.
package ctxcancel

import (
	"context"
	"errors"
	"time"
)

func discarded(parent context.Context) context.Context {
	ctx, _ := context.WithCancel(parent) // want `cancel function returned by context.WithCancel is discarded`
	return ctx
}

func discardedCause(parent context.Context) context.Context {
	ctx, _ := context.WithCancelCause(parent) // want `cancel function returned by context.WithCancelCause is discarded`
	return ctx
}

func neverUsed(parent context.Context) context.Context {
	ctx, cancel := context.WithTimeout(parent, time.Second) // want `cancel function "cancel" is never used`
	return ctx
}

func deferred(parent context.Context) context.Context {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	return ctx
}

func passedAlong(parent context.Context, sink func(context.CancelFunc)) context.Context {
	ctx, cancel := context.WithDeadline(parent, time.Now())
	sink(cancel)
	return ctx
}

func returned(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	return ctx, cancel
}

func rebound(parent context.Context) context.Context {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	// The defer above captured the first cancel; this one has no reference
	// after its assignment and leaks.
	ctx, cancel = context.WithDeadline(ctx, time.Now()) // want `cancel function "cancel" is never used`
	return ctx
}

func reboundAndUsed(parent context.Context) context.Context {
	ctx, cancel := context.WithCancel(parent)
	cancel()
	ctx, cancel = context.WithCancelCause(ctx)
	cancel(errors.New("done"))
	return ctx
}

func closureUse(parent context.Context) (context.Context, func()) {
	ctx, cancel := context.WithCancel(parent)
	stop := func() { cancel() }
	return ctx, stop
}
