// Fixture for the layering analyzer, checked as repro/internal/core: the
// analysis engine must not depend on the search strategies above it, while
// its real dependencies (arch, energy, workload) stay legal.
package core

import (
	"repro/internal/energy"
	"repro/internal/mapper" // want `forbidden import of repro/internal/mapper from repro/internal/core`
	"repro/internal/serve"  // want `forbidden import of repro/internal/serve from repro/internal/core`
	"repro/internal/workload"
)

var (
	_ = energy.Table{}
	_ = mapper.Evaluation{}
	_ = serve.Config{}
	_ = workload.Graph{}
)
