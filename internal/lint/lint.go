// Package lint hosts TileFlow's project-specific static analyzers: small
// go/analysis-style checkers built only on the standard library's go/ast and
// go/types (the go.mod has no dependencies, so golang.org/x/tools is out of
// reach). Three analyzers are defined:
//
//   - layering enforces the package dependency discipline with a table-driven
//     allowlist of internal imports (e.g. internal/memo must never import
//     internal/serve, internal/core must never import internal/mapper).
//   - determinism flags nondeterminism sources in the modeling and search
//     layers: wall-clock reads, the unseeded global math/rand source, and
//     map iterations that accumulate ordered output without sorting.
//   - ctxcancel flags context cancel functions that can never run: the
//     cancel result of context.WithCancel/WithTimeout/WithDeadline dropped
//     into the blank identifier or never referenced again.
//
// The analyzers run two ways: in-process via Run (used by the tests, which
// replay testdata fixtures annotated with // want comments), and under
// `go vet -vettool=tileflow-lint` via cmd/tileflow-lint, which speaks the
// unit-checker protocol so the toolchain supplies parsed files and export
// data per package.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// Analyzer is one named check over a single package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's syntax (and, when available, types) to an
// analyzer. TypesInfo may be nil: analyzers must degrade to their purely
// syntactic checks rather than fail.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	PkgPath   string
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Analyzers returns every analyzer in this package, in a fixed order.
func Analyzers() []*Analyzer { return []*Analyzer{Layering, Determinism, CtxCancel} }

// Run applies the analyzers to one parsed package and returns the findings
// sorted by position. info may be nil when type information is unavailable.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkgPath string, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, PkgPath: pkgPath, TypesInfo: info, diags: &diags}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}

// isTestFile reports whether the file came from a _test.go source. Both
// analyzers exempt tests: fixtures deliberately build forbidden shapes, and
// benchmarks legitimately read the clock.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Package).Filename, "_test.go")
}

// fileImports maps the local name of each import in f to its import path
// (named imports respected, dot and blank imports skipped).
func fileImports(f *ast.File) map[string]string {
	m := map[string]string{}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
			if name == "." || name == "_" {
				continue
			}
		}
		m[name] = path
	}
	return m
}
