package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// parseDir parses every top-level .go file in dir, _test.go included — the
// analyzers decide for themselves that test files are exempt.
func parseDir(t *testing.T, fset *token.FileSet, dir string) []*ast.File {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no Go files in %s (%v)", dir, err)
	}
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", p, err)
		}
		files = append(files, f)
	}
	return files
}

// expectation is one `// want` comment: a regexp that must match exactly one
// diagnostic on its line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile("// want `([^`]+)`")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Slash)
				wants = append(wants, &expectation{
					file: pos.Filename,
					line: pos.Line,
					re:   regexp.MustCompile(m[1]),
				})
			}
		}
	}
	return wants
}

// runFixture replays one testdata package under the given import path and
// compares the analyzers' findings against its // want comments, in the
// style of x/tools' analysistest.
func runFixture(t *testing.T, dir, pkgPath string, typed bool) {
	t.Helper()
	fset := token.NewFileSet()
	files := parseDir(t, fset, dir)
	var info *types.Info
	if typed {
		info = &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Defs:  map[*ast.Ident]types.Object{},
			Uses:  map[*ast.Ident]types.Object{},
		}
		conf := types.Config{Importer: importer.Default()}
		if _, err := conf.Check(pkgPath, fset, files, info); err != nil {
			t.Fatalf("type-checking %s: %v", dir, err)
		}
	}
	diags, err := Run(Analyzers(), fset, files, pkgPath, info)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, fset, files)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestLayeringFixtures(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "src", "memo"), "repro/internal/memo", false)
	runFixture(t, filepath.Join("testdata", "src", "corelayer"), "repro/internal/core", false)
}

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "src", "determinism"), "repro/internal/core", true)
}

// TestCtxCancelFixture replays the ctxcancel patterns untyped — the
// analyzer is purely syntactic, so no type information is needed. The
// import path is deliberately outside DeterminismScope (the fixture reads
// time.Now, which is the determinism analyzer's business, not this one's).
func TestCtxCancelFixture(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "src", "ctxcancel"), "repro/internal/lintfixture", false)
}

// TestDeterminismOutOfScope: the same fixture analyzed under an import path
// outside DeterminismScope reports nothing.
func TestDeterminismOutOfScope(t *testing.T) {
	fset := token.NewFileSet()
	files := parseDir(t, fset, filepath.Join("testdata", "src", "determinism"))
	diags, err := Run([]*Analyzer{Determinism}, fset, files, "repro/internal/serve", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("out-of-scope package flagged: %v", diags)
	}
}

// TestRepoClean runs both analyzers over every real internal package. The
// syntactic checks (layering table, clock reads, global RNG) must come back
// clean; this pins the allowlist table to the actual import graph so table
// drift fails loudly. The type-dependent map-order check additionally runs
// under `go vet -vettool=tileflow-lint` in CI, where the toolchain supplies
// export data.
func TestRepoClean(t *testing.T) {
	entries, err := os.ReadDir("..")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		pkgPath := "repro/internal/" + e.Name()
		t.Run(e.Name(), func(t *testing.T) {
			fset := token.NewFileSet()
			files := parseDir(t, fset, filepath.Join("..", e.Name()))
			diags, err := Run(Analyzers(), fset, files, pkgPath, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				t.Errorf("%s", d)
			}
		})
	}
}

// TestAllowlistCoversRealImports is the inverse guard: every constrained
// package's allowlist entry must itself be a real package, so stale rows
// are caught when packages move.
func TestAllowlistCoversRealImports(t *testing.T) {
	for pkg, allowed := range allowedImports {
		for _, p := range append([]string{pkg}, allowed...) {
			dir := filepath.Join("..", "..", "internal", p[len(internalPrefix):])
			if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
				t.Errorf("allowlist references %s but %s is not a package directory", p, dir)
			}
		}
	}
}

// TestDiagnosticString pins the rendering the vettool prints.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Analyzer: "layering",
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 2},
		Message:  "forbidden import",
	}
	want := fmt.Sprintf("%s: %s (%s)", "x.go:3:2", "forbidden import", "layering")
	if d.String() != want {
		t.Errorf("String() = %q, want %q", d.String(), want)
	}
}
