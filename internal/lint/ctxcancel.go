package lint

import (
	"go/ast"
	"go/token"
)

// CtxCancel flags context cancel functions that can never run, in the
// style of x/tools' lostcancel but purely syntactic:
//
//   - the cancel result of context.WithCancel / WithTimeout / WithDeadline
//     (and their *Cause variants) assigned to the blank identifier — the
//     derived context can then never be released before its parent;
//   - a named cancel variable that is never referenced again anywhere in
//     the enclosing function: not called, not deferred, not passed along
//     and not returned.
//
// A single reference suffices to stay quiet — whether every path reaches
// it is control-flow analysis this stdlib-only checker does not attempt.
// Test files are exempt like the other analyzers, though the fixtures
// still replay the patterns there.
var CtxCancel = &Analyzer{
	Name: "ctxcancel",
	Doc:  "flag discarded or never-used context cancel functions",
	Run:  runCtxCancel,
}

// cancelFuncs are the context constructors whose last result releases the
// derived context's resources.
var cancelFuncs = map[string]bool{
	"WithCancel": true, "WithCancelCause": true,
	"WithTimeout": true, "WithTimeoutCause": true,
	"WithDeadline": true, "WithDeadlineCause": true,
}

func runCtxCancel(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		imports := fileImports(f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkCancels(pass, imports, fn.Body)
		}
	}
	return nil
}

// checkCancels finds every cancel-returning assignment in the body and
// verifies the cancel identifier is referenced somewhere else in it.
func checkCancels(pass *Pass, imports map[string]string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) != 2 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name := pkgCall(imports, call)
		if pkg != "context" || !cancelFuncs[name] {
			return true
		}
		cancel, ok := assign.Lhs[1].(*ast.Ident)
		if !ok {
			return true
		}
		if cancel.Name == "_" {
			pass.Reportf(cancel.Pos(),
				"the cancel function returned by context.%s is discarded; the derived context leaks until its parent ends", name)
			return true
		}
		// := defines the variable; plain = may rebind one defined earlier,
		// in which case earlier references don't belong to this cancel.
		if !referencedElsewhere(body, cancel, assign.Tok == token.ASSIGN) {
			pass.Reportf(cancel.Pos(),
				"cancel function %q is never used; defer %s() so the context.%s context is released", cancel.Name, cancel.Name, name)
		}
		return true
	})
}

// referencedElsewhere reports whether an identifier with def's name occurs
// in body at a position other than def itself — after def when afterOnly is
// set, anywhere otherwise (closures may call the cancel before its textual
// assignment).
func referencedElsewhere(body *ast.BlockStmt, def *ast.Ident, afterOnly bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != def.Name || id.Pos() == def.Pos() {
			return !found
		}
		if afterOnly && id.Pos() < def.Pos() {
			return !found
		}
		found = true
		return false
	})
	return found
}
