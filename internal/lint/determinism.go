package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeterminismScope lists the packages whose outputs must be bit-for-bit
// reproducible: the analysis engine and the (seeded) search layer. The
// determinism tests pin full search traces, so any wall-clock read, global
// RNG draw, or map-order-dependent accumulation in these packages is a bug.
var DeterminismScope = []string{
	"repro/internal/core",
	"repro/internal/fleet",
	"repro/internal/jobs",
	"repro/internal/mapper",
	"repro/internal/sched",
	"repro/internal/yamlfe",
}

// Determinism flags nondeterminism sources inside DeterminismScope:
//
//   - wall-clock reads (time.Now, time.Since, time.Until);
//   - draws from the process-global math/rand source (rand.Intn, ...);
//     constructing a seeded generator via rand.New(rand.NewSource(seed))
//     is the sanctioned pattern and stays allowed;
//   - ranging over a map while accumulating ordered output (append, string
//     concatenation, printing). Collect-then-sort is fine: a function that
//     calls into sort or slices anywhere is trusted to have restored a
//     deterministic order, which keeps idioms like mapper's selectChild
//     (gather keys, sort.Ints, then iterate) quiet.
//
// The map check needs type information to recognize map operands and string
// accumulators; without it (TypesInfo == nil) only the syntactic clock and
// RNG checks run. Test files are exempt throughout — benchmarks time
// themselves with time.Now by design.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag wall-clock, global-RNG, and map-order nondeterminism in model code",
	Run:  runDeterminism,
}

var (
	clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}
	// Seeded-generator constructors across math/rand and math/rand/v2.
	randAllowed = map[string]bool{"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true}
	printFuncs  = map[string]bool{
		"Print": true, "Printf": true, "Println": true,
		"Fprint": true, "Fprintf": true, "Fprintln": true,
	}
)

func runDeterminism(pass *Pass) error {
	inScope := false
	for _, p := range DeterminismScope {
		if pass.PkgPath == p {
			inScope = true
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		imports := fileImports(f)
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkFunc(pass, imports, fn.Body)
				continue
			}
			// Package-level initializers can read the clock or RNG too.
			checkCalls(pass, imports, decl)
		}
	}
	return nil
}

// checkFunc runs every determinism check over one function body. Sorting
// anywhere in the same function suppresses the map-order check for all of
// its ranges.
func checkFunc(pass *Pass, imports map[string]string, body *ast.BlockStmt) {
	checkCalls(pass, imports, body)
	if pass.TypesInfo == nil || sortsSomewhere(imports, body) {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if accumulatesOrdered(pass, imports, rng.Body) {
			pass.Reportf(rng.For, "map iteration order leaks into ordered output; collect the keys and sort them first")
		}
		return true
	})
}

// checkCalls flags clock reads and global-RNG draws under n.
func checkCalls(pass *Pass, imports map[string]string, n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name := pkgCall(imports, call)
		switch {
		case pkg == "time" && clockFuncs[name]:
			pass.Reportf(call.Pos(), "time.%s reads the wall clock; model code must be deterministic, so thread times in as parameters", name)
		case (pkg == "math/rand" || pkg == "math/rand/v2") && !randAllowed[name]:
			pass.Reportf(call.Pos(), "rand.%s draws from the process-global source; use rand.New(rand.NewSource(seed)) so runs replay", name)
		}
		return true
	})
}

// pkgCall resolves a call of the form pkgident.Func to (import path, Func),
// or ("", "") when the callee is anything else.
func pkgCall(imports map[string]string, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	return imports[id.Name], sel.Sel.Name
}

// sortsSomewhere reports whether the body calls into sort or slices.
func sortsSomewhere(imports map[string]string, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if pkg, _ := pkgCall(imports, call); pkg == "sort" || pkg == "slices" {
				found = true
			}
		}
		return !found
	})
	return found
}

// accumulatesOrdered reports whether the loop body builds order-sensitive
// output: appends to a slice, concatenates strings, or prints. Numeric
// accumulation (sums, maxima) is order-insensitive and stays quiet.
func accumulatesOrdered(pass *Pass, imports map[string]string, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				found = true
			}
			if pkg, name := pkgCall(imports, n); pkg == "fmt" && printFuncs[name] {
				found = true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && strings.HasPrefix(sel.Sel.Name, "Write") {
				found = true
			}
		case *ast.AssignStmt:
			if n.Tok != token.ADD_ASSIGN || len(n.Lhs) != 1 {
				return true
			}
			if t := pass.TypesInfo.TypeOf(n.Lhs[0]); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
