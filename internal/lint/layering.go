package lint

import (
	"strings"
)

// allowedImports is the layering table: for each constrained package, the
// exact set of repro/internal packages it may import. Imports of packages
// outside the module and self-imports are always fine; internal imports not
// in the row are layering violations. Packages without a row (serve-level
// composition roots, experiments, cmd/*) are unconstrained.
//
// The table encodes the architecture's load-bearing edges. In particular:
//
//   - internal/memo is a generic memoization layer and must not know the
//     HTTP service exists (memo -> serve would invert the cache layering);
//   - internal/core is the analysis engine and must not depend on the
//     search strategies built on top of it (core -> mapper);
//   - internal/diag is a leaf so every layer can report through it.
var allowedImports = map[string][]string{
	"repro/internal/diag":      {},
	"repro/internal/arch":      {},
	"repro/internal/workload":  {},
	"repro/internal/memo":      {},
	// jobs is a stdlib-only leaf: the server injects the runner, so the
	// job subsystem must never reach back into serve or the mapper.
	"repro/internal/jobs": {},
	// fleet moves jobs and memoized fitness between nodes; the fitness
	// value codec is injected by the composition root, so fleet must never
	// import the mapper (or serve) directly.
	"repro/internal/fleet": {"repro/internal/jobs", "repro/internal/memo"},
	// sched decides which queued job runs next and who may submit; it
	// plugs into the store as a picker callback, so it may see job records
	// but never the runner, the mapper, or the HTTP layer.
	"repro/internal/sched": {"repro/internal/jobs"},
	"repro/internal/energy":    {"repro/internal/arch"},
	"repro/internal/core":      {"repro/internal/arch", "repro/internal/energy", "repro/internal/workload"},
	"repro/internal/notation":  {"repro/internal/core", "repro/internal/diag", "repro/internal/workload"},
	"repro/internal/dataflows": {"repro/internal/arch", "repro/internal/core", "repro/internal/workload"},
	"repro/internal/check": {
		"repro/internal/arch", "repro/internal/core", "repro/internal/diag",
		"repro/internal/notation", "repro/internal/workload",
	},
	"repro/internal/mapper": {
		"repro/internal/arch", "repro/internal/core", "repro/internal/dataflows",
		"repro/internal/memo", "repro/internal/workload",
	},
	"repro/internal/sim": {
		"repro/internal/arch", "repro/internal/core", "repro/internal/energy",
		"repro/internal/workload",
	},
	"repro/internal/timeloop":  {"repro/internal/arch", "repro/internal/energy", "repro/internal/workload"},
	// yamlfe translates Timeloop-style configs into the same triple the
	// notation route produces; it must not reach into serve or check.
	"repro/internal/yamlfe": {
		"repro/internal/arch", "repro/internal/core", "repro/internal/diag",
		"repro/internal/workload",
	},
	// spaceck interprets the legality rules over factor domains; it sits
	// beside the mapper (which consumes its narrowed domains as plain data,
	// never the package) and must not reach into search or serve layers.
	"repro/internal/spaceck": {
		"repro/internal/arch", "repro/internal/check", "repro/internal/core",
		"repro/internal/dataflows", "repro/internal/diag", "repro/internal/workload",
	},
	"repro/internal/graphmodel": {
		"repro/internal/arch", "repro/internal/timeloop", "repro/internal/workload",
	},
}

// Layering rejects internal imports outside the allowlist table. Test files
// are exempt — fixtures and differential tests legitimately reach across
// layers.
var Layering = &Analyzer{
	Name: "layering",
	Doc:  "enforce the internal package dependency allowlist",
	Run:  runLayering,
}

const internalPrefix = "repro/internal/"

func runLayering(pass *Pass) error {
	allowed, constrained := allowedImports[pass.PkgPath]
	if !constrained {
		return nil
	}
	set := map[string]bool{}
	for _, p := range allowed {
		set[p] = true
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !strings.HasPrefix(path, internalPrefix) || path == pass.PkgPath || set[path] {
				continue
			}
			why := "allowed internal imports: none"
			if len(allowed) > 0 {
				why = "allowed internal imports: " + strings.Join(allowed, ", ")
			}
			pass.Reportf(imp.Path.Pos(), "forbidden import of %s from %s (%s)", path, pass.PkgPath, why)
		}
	}
	return nil
}
