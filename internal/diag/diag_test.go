package diag

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, s := range []Severity{Warning, Error} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal %v: %v", s, err)
		}
		var back Severity
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != s {
			t.Fatalf("round trip %v -> %s -> %v", s, b, back)
		}
	}
	var bad Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &bad); err == nil {
		t.Fatal("unknown severity decoded without error")
	}
}

func TestRegistry(t *testing.T) {
	code := Register(Info{Code: "TF-TEST-001", Severity: Warning, Title: "test rule", Hint: "do the thing"})
	info, ok := Lookup(code)
	if !ok || info.Title != "test rule" {
		t.Fatalf("Lookup(%s) = %+v, %v", code, info, ok)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate Register did not panic")
			}
		}()
		Register(Info{Code: "TF-TEST-001"})
	}()
	found := false
	for _, i := range Codes() {
		if i.Code == code {
			found = true
		}
	}
	if !found {
		t.Fatal("Codes() misses registered code")
	}

	// Reporter fills severity and hint from the registry.
	var r Reporter
	r.Reportf(code, Span{}, "tile", "message %d", 7)
	got := r.List()
	if len(got) != 1 || got[0].Severity != Warning || got[0].Hint != "do the thing" || got[0].Message != "message 7" {
		t.Fatalf("reporter filled %+v", got)
	}
}

func TestListSortAndCounts(t *testing.T) {
	l := List{
		{Code: "TF-B-001", Severity: Warning, Span: Span{Start: Pos{Offset: 40, Line: 3, Col: 1}}},
		{Code: "TF-A-001", Severity: Error, Span: Span{Start: Pos{Offset: 10, Line: 1, Col: 11}}},
		{Code: "TF-C-001", Severity: Error}, // unpositioned sorts last
		{Code: "TF-A-002", Severity: Warning, Span: Span{Start: Pos{Offset: 10, Line: 1, Col: 11}}},
	}
	l.Sort()
	wantOrder := []Code{"TF-A-001", "TF-A-002", "TF-B-001", "TF-C-001"}
	for i, c := range wantOrder {
		if l[i].Code != c {
			t.Fatalf("sort order %d = %s, want %s\n%s", i, l[i].Code, c, l)
		}
	}
	if l.Errors() != 2 || l.Warnings() != 2 || !l.HasErrors() || l.ExitCode() != 2 {
		t.Fatalf("counts: errors=%d warnings=%d exit=%d", l.Errors(), l.Warnings(), l.ExitCode())
	}
	if (List{}).ExitCode() != 0 {
		t.Fatal("empty list exit code != 0")
	}
	warnOnly := List{{Code: "TF-W", Severity: Warning}}
	if warnOnly.ExitCode() != 1 {
		t.Fatal("warnings-only exit code != 1")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Code:     "TF-TILE-003",
		Severity: Error,
		Span:     Span{Start: Pos{Offset: 20, Line: 3, Col: 14}, End: Pos{Offset: 25, Line: 3, Col: 19}},
		Node:     "T0_1",
		Message:  `tile "T0_1": dim "i" tiled to 8, want 32`,
		Hint:     "make the path factors multiply to the dim size",
	}
	s := d.String()
	for _, want := range []string{"notation:3:14:", "error[TF-TILE-003]", `dim "i" tiled to 8`, "(make the path"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestDiagnosticJSONShape(t *testing.T) {
	d := Diagnostic{Code: "TF-CAP-001", Severity: Error, Message: "over capacity"}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["code"] != "TF-CAP-001" || m["severity"] != "error" || m["message"] != "over capacity" {
		t.Fatalf("JSON shape %s", b)
	}
	if _, has := m["node"]; has {
		t.Fatalf("empty node not omitted: %s", b)
	}
	var back Diagnostic
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Code != d.Code || back.Severity != d.Severity {
		t.Fatalf("round trip %+v", back)
	}
}

func TestListError(t *testing.T) {
	l := List{
		{Code: "TF-W", Severity: Warning, Message: "meh"},
		{Code: "TF-E", Severity: Error, Message: "boom"},
	}
	msg := l.Error()
	if !strings.Contains(msg, "boom") || !strings.Contains(msg, "1 more") {
		t.Fatalf("Error() = %q", msg)
	}
}
