// Package diag is the diagnostics core of TileFlow's static analysis
// front-end: stable machine-readable codes, error/warning severities,
// source spans into the tile-centric notation, and a collecting Reporter
// that accumulates every problem found instead of stopping at the first.
//
// The package is a leaf: it imports nothing from the rest of the repo, so
// every layer — the notation parser, the internal/check analyzer, the
// evaluation service, the CLI — can depend on it without cycles.
package diag

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Severity classifies a diagnostic. Errors mark mappings the evaluator
// would reject (structural illegality, resource infeasibility); warnings
// mark legal but suspicious design points (degenerate loops, dominated
// tilings, bandwidth-doomed mappings).
type Severity int

// Severities, ordered so that higher is worse.
const (
	Warning Severity = iota + 1
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// MarshalJSON renders the severity as its lowercase name, the form API
// clients switch on.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the names produced by MarshalJSON.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "warning":
		*s = Warning
	case "error":
		*s = Error
	default:
		return fmt.Errorf("diag: unknown severity %q", name)
	}
	return nil
}

// Pos is one position in a notation source text. Offset is a 0-based byte
// offset; Line and Col are 1-based (Col counts bytes, matching how editors
// address ASCII notation sources).
type Pos struct {
	Offset int `json:"offset"`
	Line   int `json:"line"`
	Col    int `json:"col"`
}

// IsZero reports whether the position is unset.
func (p Pos) IsZero() bool { return p.Line == 0 }

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Span is a half-open byte range [Start, End) in a notation source. The
// zero Span means "no source location" (diagnostics produced from trees
// built programmatically rather than parsed).
type Span struct {
	Start Pos `json:"start"`
	End   Pos `json:"end"`
}

// IsZero reports whether the span carries no location.
func (s Span) IsZero() bool { return s.Start.IsZero() }

// String renders "line:col-line:col" (or "line:col" for empty spans).
func (s Span) String() string {
	if s.IsZero() {
		return "-"
	}
	if s.End == s.Start || s.End.IsZero() {
		return s.Start.String()
	}
	return s.Start.String() + "-" + s.End.String()
}

// Code is a stable diagnostic code such as "TF-STRUCT-003" or "TF-CAP-001".
// Codes never change meaning once released; clients may switch on them.
type Code string

// Info is the registry entry behind a code: its default severity, a
// one-line explanation of the rule, and a fix hint.
type Info struct {
	Code     Code     `json:"code"`
	Severity Severity `json:"severity"`
	Title    string   `json:"title"`
	Hint     string   `json:"hint,omitempty"`
}

var (
	regMu    sync.RWMutex
	registry = map[Code]Info{}
)

// Register records a code in the global registry and returns it, so rule
// packages can register at init:
//
//	var codeOverCap = diag.Register(diag.Info{Code: "TF-CAP-001", ...})
//
// Registering the same code twice panics: codes are append-only.
func Register(info Info) Code {
	regMu.Lock()
	defer regMu.Unlock()
	if info.Code == "" {
		panic("diag: Register with empty code")
	}
	if _, dup := registry[info.Code]; dup {
		panic(fmt.Sprintf("diag: code %s registered twice", info.Code))
	}
	if info.Severity == 0 {
		info.Severity = Error
	}
	registry[info.Code] = info
	return info.Code
}

// Lookup returns the registry entry for a code.
func Lookup(code Code) (Info, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	info, ok := registry[code]
	return info, ok
}

// Codes lists every registered code sorted lexicographically, for the
// documentation table and registry tests.
func Codes() []Info {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Info, 0, len(registry))
	for _, info := range registry {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// Diagnostic is one analysis finding: a coded, positioned, severity-tagged
// message with an optional fix hint and the name of the tile it concerns.
type Diagnostic struct {
	Code     Code     `json:"code"`
	Severity Severity `json:"severity"`
	Span     Span     `json:"span"`
	Node     string   `json:"node,omitempty"`
	Message  string   `json:"message"`
	Hint     string   `json:"hint,omitempty"`
}

// String renders the human one-liner form:
//
//	notation:3:14: error[TF-TILE-003]: tile T0_1: dim "i" tiled to 8, want 32 (split the remaining factor across the path)
func (d Diagnostic) String() string {
	var b strings.Builder
	if !d.Span.IsZero() {
		fmt.Fprintf(&b, "notation:%s: ", d.Span.Start)
	}
	fmt.Fprintf(&b, "%s[%s]: %s", d.Severity, d.Code, d.Message)
	if d.Hint != "" {
		fmt.Fprintf(&b, " (%s)", d.Hint)
	}
	return b.String()
}

// List is an ordered collection of diagnostics.
type List []Diagnostic

// HasErrors reports whether any diagnostic is an error.
func (l List) HasErrors() bool {
	for _, d := range l {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Errors counts the error-severity diagnostics.
func (l List) Errors() int {
	n := 0
	for _, d := range l {
		if d.Severity == Error {
			n++
		}
	}
	return n
}

// Warnings counts the warning-severity diagnostics.
func (l List) Warnings() int { return len(l) - l.Errors() }

// ExitCode is the vet process exit status for this list: 0 clean, 1
// warnings only, 2 any error.
func (l List) ExitCode() int {
	if l.HasErrors() {
		return 2
	}
	if len(l) > 0 {
		return 1
	}
	return 0
}

// Sort orders the list by source position (unpositioned diagnostics last),
// then severity (errors first), then code, then message — a deterministic
// order independent of rule execution order.
func (l List) Sort() {
	sort.SliceStable(l, func(i, j int) bool {
		a, b := l[i], l[j]
		if a.Span.IsZero() != b.Span.IsZero() {
			return !a.Span.IsZero()
		}
		if a.Span.Start.Offset != b.Span.Start.Offset {
			return a.Span.Start.Offset < b.Span.Start.Offset
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}

// String renders the list one diagnostic per line.
func (l List) String() string {
	var b strings.Builder
	for _, d := range l {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Error makes a non-empty list usable as a Go error summarizing the first
// error diagnostic and the total count.
func (l List) Error() string {
	for _, d := range l {
		if d.Severity == Error {
			extra := ""
			if n := len(l); n > 1 {
				extra = fmt.Sprintf(" (and %d more diagnostics)", n-1)
			}
			return d.String() + extra
		}
	}
	if len(l) > 0 {
		return l[0].String()
	}
	return "no diagnostics"
}

// Reporter accumulates diagnostics. The zero value is ready to use. It is
// not safe for concurrent use; analyses are single-goroutine passes.
type Reporter struct {
	diags List
}

// Report appends a fully built diagnostic, filling severity and hint from
// the registry when unset.
func (r *Reporter) Report(d Diagnostic) {
	if info, ok := Lookup(d.Code); ok {
		if d.Severity == 0 {
			d.Severity = info.Severity
		}
		if d.Hint == "" {
			d.Hint = info.Hint
		}
	} else if d.Severity == 0 {
		d.Severity = Error
	}
	r.diags = append(r.diags, d)
}

// Reportf reports a diagnostic for code at span concerning node, with a
// formatted message. Severity and hint come from the code's registry entry.
func (r *Reporter) Reportf(code Code, span Span, node, format string, args ...any) {
	r.Report(Diagnostic{
		Code:    code,
		Span:    span,
		Node:    node,
		Message: fmt.Sprintf(format, args...),
	})
}

// List returns the accumulated diagnostics, sorted.
func (r *Reporter) List() List {
	r.diags.Sort()
	return r.diags
}

// Len reports how many diagnostics have been accumulated.
func (r *Reporter) Len() int { return len(r.diags) }

// HasErrors reports whether any accumulated diagnostic is an error.
func (r *Reporter) HasErrors() bool { return r.diags.HasErrors() }
