// Package check is the tileflow vet analyzer: it runs the static legality
// and resource rules over a mapping without compiling a Program, maps every
// violation to a stable diagnostic code positioned via the notation
// SourceMap, and adds warnings for legal-but-suspicious design points. The
// CLI vet subcommand and the evaluation service's /v1/vet endpoint are thin
// wrappers over this package, sharing the VetReport codec so their JSON
// output is byte-identical.
package check

import (
	"encoding/json"
	"io"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/notation"
	"repro/internal/workload"
)

// Diagnostic codes for the tree-level rules. Each is the public face of one
// core static rule; the mapping is stable so clients may switch on codes.
var (
	CodeArch = diag.Register(diag.Info{Code: "TF-ARCH-001", Title: "invalid architecture spec",
		Hint: "check level order, fanouts and the PE mesh in the arch spec"})

	CodeLeafChildren = diag.Register(diag.Info{Code: "TF-STRUCT-001", Title: "leaf tile has children",
		Hint: "a leaf binds one operator; move the children to an enclosing tile"})
	CodeInteriorEmpty = diag.Register(diag.Info{Code: "TF-STRUCT-002", Title: "interior tile has no children",
		Hint: "give the tile children or make it a leaf with an operator"})
	CodeDupOp = diag.Register(diag.Info{Code: "TF-STRUCT-003", Title: "operator mapped to two leaves",
		Hint: "each operator must appear in exactly one leaf tile"})
	CodeOpNoLeaf = diag.Register(diag.Info{Code: "TF-STRUCT-004", Title: "operator has no leaf tile",
		Hint: "every workload operator needs a leaf tile in the tree"})
	CodeLevelOrder = diag.Register(diag.Info{Code: "TF-STRUCT-005", Title: "child level above parent level",
		Hint: "memory levels must be monotone along every root-to-leaf path"})
	CodeLevelRange = diag.Register(diag.Info{Code: "TF-STRUCT-006", Title: "tile level outside the architecture",
		Hint: "levels range from 0 (innermost) to the DRAM level of the arch spec"})

	CodeLoopExtent = diag.Register(diag.Info{Code: "TF-TILE-001", Title: "loop extent below 1",
		Hint: "every tiling factor must be a positive integer"})
	CodeLoopDim = diag.Register(diag.Info{Code: "TF-TILE-002", Title: "loop over a foreign dimension",
		Hint: "a tile may only iterate dimensions of operators in its subtree"})
	CodeCoverage = diag.Register(diag.Info{Code: "TF-TILE-003", Title: "tiling does not cover the dimension",
		Hint: "the loop extents along the leaf-to-root path must multiply to the dim size"})

	CodePEBudget = diag.Register(diag.Info{Code: "TF-RES-001", Title: "spatial fanout exceeds the PE array",
		Hint: "shrink the Sp(...) loop extents or use a larger architecture"})
	CodeUnitUsage = diag.Register(diag.Info{Code: "TF-RES-002", Title: "memory-level instances oversubscribed",
		Hint: "parallel siblings occupy disjoint instances; reduce spatial splits at this level"})
	CodeCapacity = diag.Register(diag.Info{Code: "TF-CAP-001", Title: "tile footprint exceeds buffer capacity",
		Hint: "shrink the staged tiles at this level or skip the capacity check"})

	CodeDegenerateLoop = diag.Register(diag.Info{Code: "TF-WARN-001", Severity: diag.Warning,
		Title: "degenerate loop",
		Hint:  "an extent-1 loop does nothing; drop it for a cleaner mapping"})
	CodeUnderutilized = diag.Register(diag.Info{Code: "TF-WARN-002", Severity: diag.Warning,
		Title: "PE array underutilized",
		Hint:  "spatial loops cover half the array or less; widen Sp(...) extents"})
	CodeBandwidthBound = diag.Register(diag.Info{Code: "TF-WARN-003", Severity: diag.Warning,
		Title: "DRAM bandwidth-bound",
		Hint:  "compulsory DRAM traffic already exceeds peak compute time; improve fusion or reuse"})
)

// ruleCode maps core static rule keys to their public diagnostic codes.
var ruleCode = map[string]diag.Code{
	core.RuleArch:          CodeArch,
	core.RuleLeafChildren:  CodeLeafChildren,
	core.RuleInteriorEmpty: CodeInteriorEmpty,
	core.RuleDupOp:         CodeDupOp,
	core.RuleOpNoLeaf:      CodeOpNoLeaf,
	core.RuleLevelOrder:    CodeLevelOrder,
	core.RuleLevelRange:    CodeLevelRange,
	core.RuleLoopExtent:    CodeLoopExtent,
	core.RuleLoopDim:       CodeLoopDim,
	core.RuleCoverage:      CodeCoverage,
	core.RulePEBudget:      CodePEBudget,
	core.RuleUnitUsage:     CodeUnitUsage,
	core.RuleCapacity:      CodeCapacity,
}

// RuleCode reports the public diagnostic code behind a core static rule
// key, for packages (the search-space analyzer) that attribute findings to
// rules without re-running the vet passes.
func RuleCode(rule string) (diag.Code, bool) {
	c, ok := ruleCode[rule]
	return c, ok
}

// spanFor picks the most precise source span for a violation: the loop item
// for loop rules, the @L token for level rules, the defining name token
// otherwise. Architecture- and graph-level violations stay unpositioned.
func spanFor(sm *notation.SourceMap, v core.Violation) diag.Span {
	switch v.Rule {
	case core.RuleLoopExtent, core.RuleLoopDim:
		return sm.Loop(v.Node, v.Loop)
	case core.RuleLevelOrder, core.RuleLevelRange:
		return sm.Level(v.Node)
	}
	if v.Node != "" {
		return sm.Span(v.Node)
	}
	return diag.Span{}
}

// Analyze runs every static rule over a built tree and returns the coded,
// positioned diagnostics. sm may be nil (programmatic trees); diagnostics
// are then unpositioned but otherwise identical. When no rule errors, the
// warning passes run too. No Program is compiled.
func Analyze(root *core.Node, sm *notation.SourceMap, g *workload.Graph, spec *arch.Spec, opts core.Options) diag.List {
	var r diag.Reporter
	for _, v := range core.AnalyzeStatic(root, g, spec, opts) {
		code, ok := ruleCode[v.Rule]
		if !ok {
			// Safety net for a rule added to core but not mapped here: keep
			// the no-false-clean property, just without a precise code.
			code = CodeArch
		}
		r.Report(diag.Diagnostic{
			Code:    code,
			Span:    spanFor(sm, v),
			Node:    v.Node,
			Message: strings.TrimPrefix(v.Err.Error(), "core: "),
		})
	}
	if !r.HasErrors() {
		warn(&r, root, sm, g, spec, opts)
	}
	return r.List()
}

// AnalyzeSource parses notation source and analyzes the resulting tree.
// Parse errors come back as the diagnostics themselves; the tree rules run
// only when the source yields a tree.
func AnalyzeSource(src string, g *workload.Graph, spec *arch.Spec, opts core.Options) diag.List {
	root, sm, diags := notation.ParseSource(src, g)
	if root == nil {
		return diags
	}
	out := append(diags, Analyze(root, sm, g, spec, opts)...)
	out.Sort()
	return out
}

// warn runs the legal-but-suspicious passes: degenerate loops, PE-array
// underutilization and the compulsory-traffic bandwidth bound. They only
// run on mappings with no errors, where the quantities are meaningful.
func warn(r *diag.Reporter, root *core.Node, sm *notation.SourceMap, g *workload.Graph, spec *arch.Spec, opts core.Options) {
	root.Walk(func(n *core.Node) {
		for i, l := range n.Loops {
			if l.Extent == 1 {
				r.Reportf(CodeDegenerateLoop, sm.Loop(n.Name, i), n.Name,
					"node %q loop %s has extent 1", n.Name, l)
			}
		}
	})
	if !opts.SkipPECheck {
		if used, have := core.NumPE(root), spec.TotalPEs(); used*2 <= have {
			r.Reportf(CodeUnderutilized, sm.Span(root.Name), root.Name,
				"mapping uses %d of %d PEs (%.1f%%)", used, have, 100*float64(used)/float64(have))
		}
	}
	// Compulsory DRAM traffic: every graph input is read at least once and
	// every output written at least once, whatever the dataflow. If moving
	// just that already takes longer than peak-rate compute, the mapping is
	// bandwidth-bound before any tiling decision.
	var words float64
	for _, name := range append(g.InputTensors(), g.OutputTensors()...) {
		t := g.Tensors[name]
		words += float64(t.Volume()) * t.EffDensity()
	}
	wpc := spec.WordsPerCycle(spec.DRAMLevel())
	if peak := spec.PeakMACsPerCycle(); wpc > 0 && peak > 0 {
		computeCycles := float64(g.MACOps()) / peak
		trafficCycles := words / wpc
		if trafficCycles > computeCycles {
			r.Reportf(CodeBandwidthBound, diag.Span{}, root.Name,
				"compulsory DRAM traffic needs %.4g cycles, peak compute only %.4g", trafficCycles, computeCycles)
		}
	}
}

// VetReport is the JSON document both `tileflow vet -json` and the
// service's /v1/vet endpoint emit. Both sides encode it with
// json.NewEncoder().Encode on the same struct, so the outputs are
// byte-identical for the same input.
type VetReport struct {
	Valid       bool      `json:"valid"`
	Errors      int       `json:"errors"`
	Warnings    int       `json:"warnings"`
	Diagnostics diag.List `json:"diagnostics"`
}

// NewReport summarizes a diagnostic list. Diagnostics is never nil, so the
// JSON field is always an array.
func NewReport(l diag.List) VetReport {
	if l == nil {
		l = diag.List{}
	}
	return VetReport{
		Valid:       !l.HasErrors(),
		Errors:      l.Errors(),
		Warnings:    l.Warnings(),
		Diagnostics: l,
	}
}

// ExitCode is the vet process exit status: 0 clean, 1 warnings only, 2 any
// error.
func (v VetReport) ExitCode() int { return v.Diagnostics.ExitCode() }

// WriteJSON encodes the report in the canonical newline-terminated form
// shared by the CLI and the service.
func (v VetReport) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(v)
}
