package check

import (
	"context"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/notation"
	"repro/internal/workload"
)

// sec42Source is the Sec 4.2 example dataflow (i=32, j=64, l=64, k=32).
const sec42Source = `
# Sec 4.2 example: A = Q·K, B = exp(A), C = B·V
leaf T0_0 = op A { Sp(i:4), l:32, k:32 }
leaf T1_0 = op B { Sp(i:4), l:32 }
leaf T2_0 = op C { Sp(i:4), j:16, l:32 }
tile T0_1 @L1 = { Sp(i:2), l:2 } (T0_0, T1_0)
tile T1_1 @L1 = { Sp(i:2), j:4, l:2 } (T2_0)
tile T0_2 @L2 = { i:4 } (T0_1, T1_1)
bind Pipe(T0_0, T1_0)
bind Shar(T0_1, T1_1)
`

func sec42Graph() *workload.Graph {
	opA := &workload.Operator{
		Name: "A", Kind: workload.KindMAC,
		Dims: []workload.Dim{{Name: "i", Size: 32}, {Name: "l", Size: 64}, {Name: "k", Size: 32}},
		Reads: []workload.Access{
			{Tensor: "Q", Index: []workload.Index{workload.I("i"), workload.I("k")}},
			{Tensor: "K", Index: []workload.Index{workload.I("k"), workload.I("l")}},
		},
		Write: workload.Access{Tensor: "A", Index: []workload.Index{workload.I("i"), workload.I("l")}},
	}
	opB := &workload.Operator{
		Name: "B", Kind: workload.KindExp,
		Dims: []workload.Dim{{Name: "i", Size: 32}, {Name: "l", Size: 64}},
		Reads: []workload.Access{
			{Tensor: "A", Index: []workload.Index{workload.I("i"), workload.I("l")}},
		},
		Write: workload.Access{Tensor: "B", Index: []workload.Index{workload.I("i"), workload.I("l")}},
	}
	opC := &workload.Operator{
		Name: "C", Kind: workload.KindMAC,
		Dims: []workload.Dim{{Name: "i", Size: 32}, {Name: "j", Size: 64}, {Name: "l", Size: 64}},
		Reads: []workload.Access{
			{Tensor: "B", Index: []workload.Index{workload.I("i"), workload.I("l")}},
			{Tensor: "V", Index: []workload.Index{workload.I("l"), workload.I("j")}},
		},
		Write: workload.Access{Tensor: "C", Index: []workload.Index{workload.I("i"), workload.I("j")}},
	}
	return workload.MustGraph("sec42", workload.WordBytes, opA, opB, opC)
}

func textAt(src string, s diag.Span) string {
	if s.IsZero() {
		return ""
	}
	return src[s.Start.Offset:s.End.Offset]
}

// TestRuleCodesTotal pins the rule→code mapping: every core static rule has
// a distinct, registered diagnostic code.
func TestRuleCodesTotal(t *testing.T) {
	rules := []string{
		core.RuleArch, core.RuleLeafChildren, core.RuleDupOp, core.RuleInteriorEmpty,
		core.RuleLevelOrder, core.RuleOpNoLeaf, core.RuleLevelRange, core.RuleCoverage,
		core.RuleLoopExtent, core.RuleLoopDim, core.RulePEBudget, core.RuleUnitUsage,
		core.RuleCapacity,
	}
	seen := map[diag.Code]string{}
	for _, rule := range rules {
		code, ok := ruleCode[rule]
		if !ok {
			t.Errorf("rule %s has no diagnostic code", rule)
			continue
		}
		if info, ok := diag.Lookup(code); !ok {
			t.Errorf("code %s for rule %s is not registered", code, rule)
		} else if info.Severity != diag.Error {
			t.Errorf("code %s is not an error", code)
		}
		if prev, dup := seen[code]; dup {
			t.Errorf("code %s used by both %s and %s", code, prev, rule)
		}
		seen[code] = rule
	}
	if len(ruleCode) != len(rules) {
		t.Errorf("ruleCode has %d entries, want %d", len(ruleCode), len(rules))
	}
}

func TestAnalyzeSourceCleanMapping(t *testing.T) {
	diags := AnalyzeSource(sec42Source, sec42Graph(), arch.Cloud(), core.Options{})
	if diags.HasErrors() {
		t.Fatalf("errors on the Sec 4.2 example:\n%s", diags)
	}
	for _, d := range diags {
		if _, ok := diag.Lookup(d.Code); !ok {
			t.Errorf("unregistered code %s", d.Code)
		}
		if d.Severity != diag.Warning {
			t.Errorf("non-warning diagnostic on a valid mapping: %s", d)
		}
	}
	// The 16-PE mapping on Cloud's huge array must trip the utilization
	// warning, positioned at the root tile's name.
	found := false
	for _, d := range diags {
		if d.Code == CodeUnderutilized {
			found = true
			if textAt(sec42Source, d.Span) != "T0_2" {
				t.Errorf("underutilization span = %q, want T0_2", textAt(sec42Source, d.Span))
			}
		}
	}
	if !found {
		t.Errorf("no %s warning in:\n%s", CodeUnderutilized, diags)
	}
}

// TestAnalyzeSourcePositioned breaks the source in targeted ways and checks
// the diagnostic lands on the right token with the right code.
func TestAnalyzeSourcePositioned(t *testing.T) {
	g := sec42Graph()
	spec := arch.Cloud()

	// Undertiled k: coverage error anchored at the leaf's name token.
	src := strings.Replace(sec42Source, "k:32", "k:16", 1)
	diags := AnalyzeSource(src, g, spec, core.Options{})
	var cov *diag.Diagnostic
	for i := range diags {
		if diags[i].Code == CodeCoverage {
			cov = &diags[i]
		}
	}
	if cov == nil {
		t.Fatalf("no %s in:\n%s", CodeCoverage, diags)
	}
	if got := textAt(src, cov.Span); got != "T0_0" {
		t.Errorf("coverage span = %q, want the leaf name", got)
	}
	if cov.Span.Start.Line != 3 {
		t.Errorf("coverage line = %d, want 3", cov.Span.Start.Line)
	}
	if !strings.Contains(cov.Message, `dim "k" tiled to 16, want 32`) {
		t.Errorf("coverage message = %q", cov.Message)
	}
	if cov.Hint == "" || cov.Node != "T0_0" {
		t.Errorf("coverage hint/node not filled: %+v", cov)
	}

	// Foreign dim: loop-dim error anchored at the loop item itself.
	src = strings.Replace(sec42Source, "{ i:4 }", "{ i:4, zz:1 }", 1)
	diags = AnalyzeSource(src, g, spec, core.Options{})
	var ld *diag.Diagnostic
	for i := range diags {
		if diags[i].Code == CodeLoopDim {
			ld = &diags[i]
		}
	}
	if ld == nil {
		t.Fatalf("no %s in:\n%s", CodeLoopDim, diags)
	}
	if got := textAt(src, ld.Span); got != "zz:1" {
		t.Errorf("loop-dim span = %q, want the loop item", got)
	}
	if ld.Severity != diag.Error {
		t.Errorf("loop-dim severity = %v", ld.Severity)
	}
	// Warnings stay suppressed while errors exist.
	for _, d := range diags {
		if d.Severity == diag.Warning {
			t.Errorf("warning emitted alongside errors: %s", d)
		}
	}
}

func TestAnalyzeSourceParseErrors(t *testing.T) {
	diags := AnalyzeSource("leaf = op A {", sec42Graph(), arch.Cloud(), core.Options{})
	if !diags.HasErrors() {
		t.Fatal("garbage source produced no errors")
	}
	for _, d := range diags {
		if d.Code == "" {
			t.Errorf("uncoded diagnostic: %s", d)
		}
	}
}

func TestWarnDegenerateLoop(t *testing.T) {
	// k:1 at the root is legal (coverage of k stays 32) but useless.
	src := strings.Replace(sec42Source, "{ i:4 }", "{ i:4, k:1 }", 1)
	diags := AnalyzeSource(src, sec42Graph(), arch.Cloud(), core.Options{})
	if diags.HasErrors() {
		t.Fatalf("unexpected errors:\n%s", diags)
	}
	var deg *diag.Diagnostic
	for i := range diags {
		if diags[i].Code == CodeDegenerateLoop {
			deg = &diags[i]
		}
	}
	if deg == nil {
		t.Fatalf("no %s in:\n%s", CodeDegenerateLoop, diags)
	}
	if got := textAt(src, deg.Span); got != "k:1" {
		t.Errorf("degenerate span = %q, want k:1", got)
	}
	if diags.ExitCode() != 1 {
		t.Errorf("exit code = %d, want 1 (warnings only)", diags.ExitCode())
	}
}

func TestAnalyzeProgrammaticTree(t *testing.T) {
	// A tree with no source: diagnostics come back unpositioned but coded.
	g := sec42Graph()
	root, _, _ := notation.ParseSource(sec42Source, g)
	if root == nil {
		t.Fatal("sec42 source did not parse")
	}
	root.Loops[0].Extent = 7 // break coverage of i
	diags := Analyze(root, nil, g, arch.Cloud(), core.Options{})
	if !diags.HasErrors() {
		t.Fatal("broken tree produced no errors")
	}
	for _, d := range diags {
		if !d.Span.IsZero() {
			t.Errorf("positioned diagnostic without a source map: %s", d)
		}
	}
}

func TestVetReportJSON(t *testing.T) {
	r := NewReport(nil)
	if !r.Valid || r.Errors != 0 || r.Warnings != 0 {
		t.Fatalf("empty report = %+v", r)
	}
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	want := `{"valid":true,"errors":0,"warnings":0,"diagnostics":[]}` + "\n"
	if b.String() != want {
		t.Errorf("empty report JSON = %q, want %q", b.String(), want)
	}

	diags := AnalyzeSource(strings.Replace(sec42Source, "k:32", "k:16", 1), sec42Graph(), arch.Cloud(), core.Options{})
	r = NewReport(diags)
	if r.Valid || r.Errors == 0 || r.ExitCode() != 2 {
		t.Errorf("error report = %+v, exit %d", r, r.ExitCode())
	}
}

// FuzzVet: the analyzer never panics, flags every evaluator-rejected input
// with at least one error diagnostic, and never flags an accepted one.
func FuzzVet(f *testing.F) {
	f.Add(sec42Source)
	f.Add(strings.Replace(sec42Source, "k:32", "k:16", 1))
	f.Add(strings.Replace(sec42Source, "@L1", "@L9", 1))
	f.Add(strings.Replace(sec42Source, "bind Pipe", "bind Zip", 1))
	f.Add("leaf = op A {")
	f.Add("tile T @L1 = { } ()")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		g := sec42Graph()
		spec := arch.Edge()
		opts := core.Options{}
		diags := AnalyzeSource(src, g, spec, opts)

		root, _, _ := notation.ParseSource(src, g)
		if root == nil {
			if !diags.HasErrors() {
				t.Fatalf("unparseable source with no error diagnostics: %q", src)
			}
			return
		}
		var pipeErr error
		p, err := core.Compile(root, g, spec)
		if err != nil {
			pipeErr = err
		} else if _, err := p.Evaluate(context.Background(), opts); err != nil {
			pipeErr = err
		}
		if pipeErr != nil && !diags.HasErrors() {
			t.Fatalf("false clean: pipeline rejects with %v, vet says ok for:\n%s", pipeErr, src)
		}
		if pipeErr == nil && diags.HasErrors() {
			t.Fatalf("false positive: pipeline accepts, vet errors:\n%s", diags)
		}
	})
}
