package workload

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMatmulGraph(t *testing.T) {
	g := Matmul(8, 16, 32)
	op := g.Ops[0]
	if got := op.OpCount(); got != 8*16*32 {
		t.Errorf("OpCount = %d", got)
	}
	if red := op.ReductionDims(); len(red) != 1 || red[0] != "k" {
		t.Errorf("reduction dims = %v", red)
	}
	if !op.IsReduction("k") || op.IsReduction("m") {
		t.Error("IsReduction misclassifies")
	}
	if g.Tensors["A"].Volume() != 8*32 || g.Tensors["B"].Volume() != 32*16 || g.Tensors["C"].Volume() != 8*16 {
		t.Errorf("tensor volumes wrong: %v", g.Tensors)
	}
	if g.Tensors["C"].Bytes() != 8*16*2 {
		t.Errorf("bytes = %d", g.Tensors["C"].Bytes())
	}
	if !g.IsInput("A") || !g.IsOutput("C") || g.IsIntermediate("A") {
		t.Error("tensor classification wrong")
	}
}

func TestAttentionGraphStructure(t *testing.T) {
	shape, ok := AttentionShapeByName("Bert-B")
	if !ok {
		t.Fatal("Bert-B missing")
	}
	if shape.HeadDim() != 64 {
		t.Errorf("head dim = %d", shape.HeadDim())
	}
	g := Attention(shape)
	if len(g.Ops) != 7 {
		t.Fatalf("want 7 ops (QK + 5 softmax + LV), got %d", len(g.Ops))
	}
	// Softmax expansion per Sec 7.2: max, sub, exp, sum, div.
	for _, name := range []string{"QK", "RowMax", "Sub", "Exp", "RowSum", "Div", "LV"} {
		if g.Op(name) == nil {
			t.Errorf("missing op %s", name)
		}
	}
	// Intermediates: everything between the graph inputs and A.
	inter := g.IntermediateTensors()
	want := map[string]bool{"S": true, "Mx": true, "Sh": true, "E": true, "Sm": true, "L": true}
	for _, tensor := range inter {
		if !want[tensor] {
			t.Errorf("unexpected intermediate %q", tensor)
		}
		delete(want, tensor)
	}
	for k := range want {
		t.Errorf("missing intermediate %q", k)
	}
	// Producers and readers wire up.
	if g.Producer("S") != g.Op("QK") {
		t.Error("S producer wrong")
	}
	if rs := g.Readers("S"); len(rs) != 2 {
		t.Errorf("S readers = %d, want 2 (RowMax, Sub)", len(rs))
	}
	// MAC vs vector split.
	if g.MACOps() != 2*int64(shape.Heads)*int64(shape.SeqLen)*int64(shape.SeqLen)*int64(shape.HeadDim()) {
		t.Errorf("MAC ops = %d", g.MACOps())
	}
}

func TestConvChainGraph(t *testing.T) {
	shape, ok := ConvChainShapeByName("CC4")
	if !ok {
		t.Fatal("CC4 missing")
	}
	g := ConvChain(shape)
	if len(g.Ops) != 2 {
		t.Fatalf("ops = %d", len(g.Ops))
	}
	// Halo: Im extends by filter−1 in h and w.
	im := g.Tensors["Im"]
	if im.Dims[0] != shape.Height+2 || im.Dims[1] != shape.Width+2 {
		t.Errorf("Im dims = %v, want halo-extended %dx%d", im.Dims, shape.Height+2, shape.Width+2)
	}
	if !g.IsIntermediate("Act") {
		t.Error("Act must be the intermediate")
	}
	// Conv2 reads Act through a window: the access must reference u and v.
	conv2 := g.Op("Conv2")
	var actAcc Access
	for _, r := range conv2.Reads {
		if r.Tensor == "Act" {
			actAcc = r
		}
	}
	dims := strings.Join(actAcc.Dims(), ",")
	if !strings.Contains(dims, "u") || !strings.Contains(dims, "v") {
		t.Errorf("Act access dims = %s, want window over u,v", dims)
	}
}

func TestGraphValidation(t *testing.T) {
	bad := &Operator{
		Name: "bad", Kind: KindMAC,
		Dims:  []Dim{{Name: "i", Size: 4}},
		Reads: []Access{{Tensor: "X", Index: []Index{I("zz")}}},
		Write: Access{Tensor: "Y", Index: []Index{I("i")}},
	}
	if _, err := NewGraph("g", 2, bad); err == nil {
		t.Error("want unknown-dim error")
	}
	// Double writer.
	a := &Operator{Name: "a", Kind: KindMAC, Dims: []Dim{{Name: "i", Size: 4}},
		Reads: []Access{{Tensor: "X", Index: []Index{I("i")}}},
		Write: Access{Tensor: "Y", Index: []Index{I("i")}}}
	b := &Operator{Name: "b", Kind: KindMAC, Dims: []Dim{{Name: "i", Size: 4}},
		Reads: []Access{{Tensor: "X", Index: []Index{I("i")}}},
		Write: Access{Tensor: "Y", Index: []Index{I("i")}}}
	if _, err := NewGraph("g", 2, a, b); err == nil {
		t.Error("want double-writer error")
	}
	// Read before produced.
	c := &Operator{Name: "c", Kind: KindMAC, Dims: []Dim{{Name: "i", Size: 4}},
		Reads: []Access{{Tensor: "Mid", Index: []Index{I("i")}}},
		Write: Access{Tensor: "Out", Index: []Index{I("i")}}}
	d := &Operator{Name: "d", Kind: KindMAC, Dims: []Dim{{Name: "i", Size: 4}},
		Reads: []Access{{Tensor: "X", Index: []Index{I("i")}}},
		Write: Access{Tensor: "Mid", Index: []Index{I("i")}}}
	if _, err := NewGraph("g", 2, c, d); err == nil {
		t.Error("want topological-order error")
	}
}

func TestIndexStringAndIdx(t *testing.T) {
	ix := Idx("h", 1, "r", 2)
	if ix.String() != "h+2*r" {
		t.Errorf("String = %q", ix.String())
	}
	if got := I("m").String(); got != "m" {
		t.Errorf("I(m) = %q", got)
	}
	acc := Access{Tensor: "T", Index: []Index{I("a"), Idx("b", 1, "c", 1)}}
	if acc.String() != "T[a, b+c]" {
		t.Errorf("access = %q", acc.String())
	}
	dims := acc.Dims()
	if len(dims) != 3 {
		t.Errorf("dims = %v", dims)
	}
}

func TestShapeTablesComplete(t *testing.T) {
	if len(AttentionShapes) != 11 {
		t.Errorf("Table 2 rows = %d, want 11", len(AttentionShapes))
	}
	if len(ConvChainShapes) != 5 {
		t.Errorf("Table 3 rows = %d, want 5", len(ConvChainShapes))
	}
	for _, s := range AttentionShapes {
		if s.Hidden%s.Heads != 0 {
			t.Errorf("%s: hidden %d not divisible by heads %d", s.Name, s.Hidden, s.Heads)
		}
		g := Attention(s)
		if g.TotalOps() <= 0 {
			t.Errorf("%s: bad op count", s.Name)
		}
	}
	for _, s := range ConvChainShapes {
		g := ConvChain(s)
		want := int64(s.Height)*int64(s.Width)*int64(s.OutC1)*9*int64(s.InC) +
			int64(s.Height)*int64(s.Width)*int64(s.OutC2)*9*int64(s.OutC1)
		if g.MACOps() != want {
			t.Errorf("%s: MACs = %d, want %d", s.Name, g.MACOps(), want)
		}
	}
}

// TestPropertyTensorShapeFromAccess: inferred tensor extents always cover
// the maximal index reach.
func TestPropertyTensorShapeFromAccess(t *testing.T) {
	prop := func(h, r uint8) bool {
		hs, rs := int(h)%64+2, int(r)%5+1
		op := &Operator{
			Name: "win", Kind: KindMAC,
			Dims:  []Dim{{Name: "h", Size: hs}, {Name: "r", Size: rs}},
			Reads: []Access{{Tensor: "In", Index: []Index{Idx("h", 1, "r", 1)}}},
			Write: Access{Tensor: "Out", Index: []Index{I("h")}},
		}
		g, err := NewGraph("g", 2, op)
		if err != nil {
			return false
		}
		return g.Tensors["In"].Dims[0] == hs+rs-1 && g.Tensors["Out"].Dims[0] == hs
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestPropertyOpCountMultiplicative: op count is the product of dim sizes.
func TestPropertyOpCountMultiplicative(t *testing.T) {
	prop := func(a, b, c uint8) bool {
		m, n, k := int(a)%16+1, int(b)%16+1, int(c)%16+1
		g := Matmul(m, n, k)
		return g.Ops[0].OpCount() == int64(m)*int64(n)*int64(k)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBatchedConv1DMatchesFigure5(t *testing.T) {
	g := BatchedConv1D()
	op := g.Ops[0]
	if op.DimSize("i") != 12 || op.DimSize("j") != 12 || op.DimSize("k") != 3 {
		t.Errorf("dims = %v", op.Dims)
	}
	// A is 12 × 14 (the j+k window).
	if a := g.Tensors["A"]; a.Dims[0] != 12 || a.Dims[1] != 14 {
		t.Errorf("A dims = %v", a.Dims)
	}
}

func TestConvChainN(t *testing.T) {
	g := ConvChainN("deep", 16, 16, 3, []int{8, 16, 32, 8})
	if len(g.Ops) != 3 {
		t.Fatalf("ops = %d", len(g.Ops))
	}
	inter := g.IntermediateTensors()
	if len(inter) != 2 {
		t.Fatalf("intermediates = %v", inter)
	}
	// Chained channel dims: Conv2 reduces over c1, Conv1's output width.
	conv2 := g.Op("Conv2")
	if !conv2.IsReduction("c1") || conv2.IsReduction("c2") {
		t.Error("channel chaining wrong")
	}
	if g.Producer("Act1") != g.Op("Conv1") {
		t.Error("Act1 producer wrong")
	}
	if !g.IsOutput("Out") {
		t.Error("Out not terminal")
	}
	// Each weight tensor has filter² × in × out elements.
	if got := g.Tensors["W2"].Volume(); got != 9*16*32 {
		t.Errorf("W2 volume = %d", got)
	}
}

func TestAttentionCoarse(t *testing.T) {
	shape, _ := AttentionShapeByName("Bert-S")
	g := AttentionCoarse(shape)
	if len(g.Ops) != 3 {
		t.Fatalf("coarse ops = %d, want 3 (QK, Softmax, LV)", len(g.Ops))
	}
	fine := Attention(shape)
	// The coarse and fine views agree on MAC work and on the fusion
	// targets S and L.
	if g.MACOps() != fine.MACOps() {
		t.Errorf("MACs differ: %d vs %d", g.MACOps(), fine.MACOps())
	}
	for _, tensor := range []string{"S", "L"} {
		if !g.IsIntermediate(tensor) || !fine.IsIntermediate(tensor) {
			t.Errorf("%s must be intermediate in both views", tensor)
		}
		if g.Tensors[tensor].Volume() != fine.Tensors[tensor].Volume() {
			t.Errorf("%s volume differs", tensor)
		}
	}
}
