package workload

import (
	"strings"
	"testing"
)

// TestParseGraphRoundTrip pins ParseGraph as the exact inverse of
// CanonicalGraph on every builder family the repo ships.
func TestParseGraphRoundTrip(t *testing.T) {
	att := Attention(AttentionShape{Name: "tiny", Heads: 2, SeqLen: 4, Hidden: 8})
	sparse := Matmul(8, 8, 8)
	sparse.Tensors["A"].Density = 0.25
	sparse.Tensors["B"].Density = 0.5
	graphs := []*Graph{
		Matmul(16, 16, 16),
		sparse,
		att,
		AttentionCoarse(AttentionShape{Name: "tiny", Heads: 2, SeqLen: 4, Hidden: 8}),
		ConvChain(ConvChainShape{Name: "tiny", InC: 4, Height: 8, Width: 8, OutC1: 4, OutC2: 4, Filter: 2}),
		ConvChainN("chain3", 8, 8, 2, []int{2, 4, 2, 4}),
		BatchedConv1D(),
	}
	for _, g := range graphs {
		want := CanonicalGraph(g)
		parsed, err := ParseGraph(want)
		if err != nil {
			t.Fatalf("%s: ParseGraph: %v", g.Name, err)
		}
		if got := CanonicalGraph(parsed); got != want {
			t.Errorf("%s: round-trip mismatch\n--- want ---\n%s--- got ---\n%s", g.Name, want, got)
		}
	}
}

// TestParseGraphOffsetsAndCoefs checks the affine index expression parser on
// forms the builders do not exercise together: coefficients, offsets and
// bare-constant indices.
func TestParseGraphOffsetsAndCoefs(t *testing.T) {
	src := `name strided
op gather kind=copy dims=i:4,j:2 reads=A[2*i+j+1, 3] write=B[i, j]
`
	g, err := ParseGraph(src)
	if err != nil {
		t.Fatal(err)
	}
	op := g.Ops[0]
	read := op.Reads[0]
	if got := read.String(); got != "A[2*i+j+1, 3]" {
		t.Fatalf("access re-render: got %q", got)
	}
	if got := CanonicalGraph(g); !strings.Contains(got, "reads=A[2*i+j+1, 3]") {
		t.Fatalf("canonical output lost the affine form:\n%s", got)
	}
	// Inferred reach: 2*3+1+1+1 = 9 along dim 0, offset-only index reach 4.
	if dims := g.Tensors["A"].Dims; dims[0] != 9 || dims[1] != 4 {
		t.Fatalf("inferred A dims = %v, want [9 4]", dims)
	}
}

func TestParseGraphErrors(t *testing.T) {
	cases := []string{
		"",                                  // no ops
		"op x kind=mac dims=i:4 reads=A[i]", // missing write=
		"op x kind=wat dims=i:4 reads= write=B[i]", // unknown kind
		"op x kind=mac dims=i reads= write=B[i]",   // dim without size
		"op x kind=mac dims=i:4 reads= write=B[q]", // unknown dim in access
		"bogus line", // unknown directive
		"op x kind=mac dims=i:4 reads= write=B[i]\ntensor Z dims=[4] elem=2 density=1", // tensor never accessed
	}
	for _, src := range cases {
		if _, err := ParseGraph(src); err == nil {
			t.Errorf("ParseGraph(%q): want error, got nil", src)
		}
	}
}

func TestParseGraphDensityAndElem(t *testing.T) {
	src := `name g
op mm kind=mac dims=m:4,n:4,k:4 reads=A[m, k];B[k, n] write=C[m, n]
tensor A dims=[4 4] elem=4 density=0.25
tensor B dims=[4 4] elem=4 density=1
`
	g, err := ParseGraph(src)
	if err != nil {
		t.Fatal(err)
	}
	if d := g.Tensors["A"].EffDensity(); d != 0.25 {
		t.Fatalf("A density = %g, want 0.25", d)
	}
	if e := g.Tensors["C"].ElemBytes; e != 4 {
		t.Fatalf("C elem = %d, want 4 (uniform)", e)
	}
	// Conflicting element sizes must be rejected.
	bad := src + "tensor C dims=[4 4] elem=2 density=1\n"
	if _, err := ParseGraph(bad); err == nil {
		t.Fatal("conflicting elem sizes: want error")
	}
}
