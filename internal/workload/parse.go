package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseGraph reads the textual graph format emitted by CanonicalGraph and
// rebuilds the workload graph, so arbitrary (non-catalog) workloads can
// travel through the evaluation service and test harnesses as text:
//
//	name matmul_4x4x4
//	op mm kind=mac dims=m:4,n:4,k:4 reads=A[m, k];B[k, n] write=C[m, n]
//	tensor A dims=[4 4] elem=2 density=1
//
// Lines starting with '#' and blank lines are ignored. Tensor lines are
// optional: shapes are re-inferred from the accesses exactly as NewGraph
// does, and a tensor line only overrides the element size, the density and
// (when wider than the inferred reach) the shape. ParseGraph and
// CanonicalGraph round-trip: ParseGraph(CanonicalGraph(g)) is canonically
// equal to g.
func ParseGraph(src string) (*Graph, error) {
	name := "parsed"
	var ops []*Operator
	type tensorLine struct {
		dims    []int
		elem    int
		density float64
	}
	tensors := map[string]tensorLine{}
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		bad := func(why string) error {
			return fmt.Errorf("workload: line %d: %s: %q", ln+1, why, line)
		}
		switch {
		case strings.HasPrefix(line, "name "):
			name = strings.TrimSpace(strings.TrimPrefix(line, "name "))
		case strings.HasPrefix(line, "op "):
			op, err := parseOpLine(strings.TrimPrefix(line, "op "))
			if err != nil {
				return nil, bad(err.Error())
			}
			ops = append(ops, op)
		case strings.HasPrefix(line, "tensor "):
			fields := strings.Fields(strings.TrimPrefix(line, "tensor "))
			if len(fields) < 1 {
				return nil, bad("want 'tensor <name> dims=[...] elem=<n> density=<d>'")
			}
			tl := tensorLine{elem: WordBytes, density: 1}
			for _, f := range fields[1:] {
				switch {
				case strings.HasPrefix(f, "dims=["):
					// dims=[4 8] renders with spaces, so re-join the
					// bracketed fields before splitting on whitespace.
					i := strings.Index(line, "dims=[")
					j := strings.Index(line[i:], "]")
					if j < 0 {
						return nil, bad("unterminated dims list")
					}
					for _, d := range strings.Fields(line[i+len("dims=[") : i+j]) {
						v, err := strconv.Atoi(d)
						if err != nil {
							return nil, bad("bad tensor dim " + d)
						}
						tl.dims = append(tl.dims, v)
					}
				case strings.HasPrefix(f, "elem="):
					v, err := strconv.Atoi(strings.TrimPrefix(f, "elem="))
					if err != nil || v <= 0 {
						return nil, bad("bad elem size")
					}
					tl.elem = v
				case strings.HasPrefix(f, "density="):
					v, err := strconv.ParseFloat(strings.TrimPrefix(f, "density="), 64)
					if err != nil || v <= 0 || v > 1 {
						return nil, bad("bad density")
					}
					tl.density = v
				}
			}
			tensors[fields[0]] = tl
		default:
			return nil, bad("expected name/op/tensor")
		}
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("workload: graph %q has no operators", name)
	}
	// NewGraph takes one element size for every tensor; require the tensor
	// lines to agree on it (the dense default applies when absent).
	elem := WordBytes
	seen := false
	for tn, tl := range tensors {
		if seen && tl.elem != elem {
			return nil, fmt.Errorf("workload: tensor %q elem=%d conflicts with %d (uniform element size required)", tn, tl.elem, elem)
		}
		elem, seen = tl.elem, true
	}
	g, err := NewGraph(name, elem, ops...)
	if err != nil {
		return nil, err
	}
	for tn, tl := range tensors {
		t, ok := g.Tensors[tn]
		if !ok {
			return nil, fmt.Errorf("workload: tensor line %q names a tensor no operator accesses", tn)
		}
		if tl.density < 1 {
			t.Density = tl.density
		}
		if len(tl.dims) > 0 {
			if len(tl.dims) != len(t.Dims) {
				return nil, fmt.Errorf("workload: tensor %q rank %d conflicts with accesses (rank %d)", tn, len(tl.dims), len(t.Dims))
			}
			for i, d := range tl.dims {
				if d > t.Dims[i] {
					t.Dims[i] = d
				}
			}
		}
	}
	return g, nil
}

// parseOpLine reads "mm kind=mac dims=m:4,k:4 reads=A[m, k] write=C[m]".
// Accesses contain spaces, so the line is split on the key markers rather
// than on whitespace.
func parseOpLine(rest string) (*Operator, error) {
	cut := func(s, marker string) (before, after string, err error) {
		i := strings.Index(s, marker)
		if i < 0 {
			return "", "", fmt.Errorf("missing %q", strings.TrimSpace(marker))
		}
		return strings.TrimSpace(s[:i]), s[i+len(marker):], nil
	}
	opName, rest, err := cut(rest, " kind=")
	if err != nil {
		return nil, err
	}
	kindSrc, rest, err := cut(rest, " dims=")
	if err != nil {
		return nil, err
	}
	dimsSrc, rest, err := cut(rest, " reads=")
	if err != nil {
		return nil, err
	}
	readsSrc, writeSrc, err := cut(rest, " write=")
	if err != nil {
		return nil, err
	}
	op := &Operator{Name: opName}
	if op.Kind, err = parseOpKind(kindSrc); err != nil {
		return nil, err
	}
	for _, d := range strings.Split(dimsSrc, ",") {
		dn, ds, ok := strings.Cut(strings.TrimSpace(d), ":")
		if !ok {
			return nil, fmt.Errorf("bad dim %q (want name:size)", d)
		}
		size, err := strconv.Atoi(ds)
		if err != nil || size < 1 {
			return nil, fmt.Errorf("bad dim size in %q", d)
		}
		op.Dims = append(op.Dims, Dim{Name: dn, Size: size})
	}
	for _, a := range strings.Split(readsSrc, ";") {
		if strings.TrimSpace(a) == "" {
			continue
		}
		acc, err := parseAccess(a)
		if err != nil {
			return nil, err
		}
		op.Reads = append(op.Reads, acc)
	}
	if op.Write, err = parseAccess(writeSrc); err != nil {
		return nil, err
	}
	return op, nil
}

func parseOpKind(s string) (OpKind, error) {
	for _, k := range []OpKind{KindMAC, KindExp, KindMax, KindSum, KindSub, KindDiv, KindCopy} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown op kind %q", s)
}

// parseAccess reads "Q[m, k]" or "Im[h+r, w+2*s+1, c]".
func parseAccess(s string) (Access, error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "[")
	if open < 0 || !strings.HasSuffix(s, "]") {
		return Access{}, fmt.Errorf("bad access %q (want Tensor[indices])", s)
	}
	acc := Access{Tensor: strings.TrimSpace(s[:open])}
	if acc.Tensor == "" {
		return Access{}, fmt.Errorf("bad access %q: empty tensor name", s)
	}
	inner := strings.TrimSpace(s[open+1 : len(s)-1])
	if inner == "" {
		return acc, nil
	}
	for _, ixSrc := range strings.Split(inner, ",") {
		ix, err := parseIndexExpr(ixSrc)
		if err != nil {
			return Access{}, fmt.Errorf("access %q: %w", s, err)
		}
		acc.Index = append(acc.Index, ix)
	}
	return acc, nil
}

// parseIndexExpr reads the Index.String rendering: a '+'-joined list of
// terms, each "dim", "coef*dim", or a bare integer offset.
func parseIndexExpr(s string) (Index, error) {
	var ix Index
	for _, part := range strings.Split(s, "+") {
		part = strings.TrimSpace(part)
		if part == "" {
			return Index{}, fmt.Errorf("bad index expression %q", s)
		}
		if n, err := strconv.Atoi(part); err == nil {
			ix.Offset += n
			continue
		}
		coef := 1
		dim := part
		if cs, ds, ok := strings.Cut(part, "*"); ok {
			c, err := strconv.Atoi(strings.TrimSpace(cs))
			if err != nil {
				return Index{}, fmt.Errorf("bad coefficient in %q", part)
			}
			coef, dim = c, strings.TrimSpace(ds)
		}
		if dim == "" {
			return Index{}, fmt.Errorf("bad term %q", part)
		}
		ix.Terms = append(ix.Terms, Term{Dim: dim, Coef: coef})
	}
	return ix, nil
}
