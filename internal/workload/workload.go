// Package workload models dense DNN workloads as graphs of perfect-loop-nest
// operators with affine tensor accesses.
//
// TileFlow (Sec 2.2, Sec 4) treats every operator as a polyhedron of
// iterations over globally named dimensions. Fusing two operators means the
// operators share some of those dimension names (for example the row
// dimension "m" is shared by Q×K, softmax and L×V in self-attention), which
// is what lets a single tile loop in the analysis tree cover matching
// iterations of several operators at once.
//
// An operator reads and writes tensors through affine index expressions
// ("accesses"). The expression for one tensor dimension is a sum of
// coefficient×iteration-dimension terms plus a constant offset, which is
// general enough for matrix multiplication (S[m,l] from Q[m,k]·K[k,l]),
// convolution windows (Im[h+r, w+s, c]) and strided layouts (A[i1*4+i0]).
package workload

import (
	"fmt"
	"sort"
	"strings"
)

// Dim is one iteration dimension of an operator: a graph-global name and the
// full trip count of that dimension for this workload instance.
type Dim struct {
	Name string
	Size int
}

// Term is one coefficient×dimension term of an affine index expression.
type Term struct {
	Dim  string
	Coef int
}

// Index is an affine expression over iteration dimensions used to address
// one dimension of a tensor: Offset + Σ Coef·dim.
type Index struct {
	Terms  []Term
	Offset int
}

// Idx builds an Index from alternating (dim, coef) pairs, a convenience for
// workload constructors. Idx("h", 1, "r", 1) addresses a convolution window.
func Idx(pairs ...any) Index {
	if len(pairs)%2 != 0 {
		panic("workload.Idx: want (dim string, coef int) pairs")
	}
	ix := Index{}
	for i := 0; i < len(pairs); i += 2 {
		d, ok := pairs[i].(string)
		if !ok {
			panic("workload.Idx: dim must be a string")
		}
		c, ok := pairs[i+1].(int)
		if !ok {
			panic("workload.Idx: coef must be an int")
		}
		ix.Terms = append(ix.Terms, Term{Dim: d, Coef: c})
	}
	return ix
}

// I is shorthand for a single unit-coefficient index expression, the common
// case of A[i][j] style addressing.
func I(dim string) Index { return Index{Terms: []Term{{Dim: dim, Coef: 1}}} }

// String renders the index expression in a compact human form such as
// "h+2*r" or "i".
func (ix Index) String() string {
	if len(ix.Terms) == 0 {
		return fmt.Sprintf("%d", ix.Offset)
	}
	var b strings.Builder
	for i, t := range ix.Terms {
		if i > 0 {
			b.WriteString("+")
		}
		if t.Coef == 1 {
			b.WriteString(t.Dim)
		} else {
			fmt.Fprintf(&b, "%d*%s", t.Coef, t.Dim)
		}
	}
	if ix.Offset != 0 {
		fmt.Fprintf(&b, "+%d", ix.Offset)
	}
	return b.String()
}

// Dims reports the set of iteration dimensions the expression refers to.
func (ix Index) Dims() []string {
	out := make([]string, 0, len(ix.Terms))
	for _, t := range ix.Terms {
		out = append(out, t.Dim)
	}
	return out
}

// Access describes how an operator touches one tensor: one affine index
// expression per tensor dimension.
type Access struct {
	Tensor string
	Index  []Index
}

// String renders an access like "Q[m, k]".
func (a Access) String() string {
	parts := make([]string, len(a.Index))
	for i, ix := range a.Index {
		parts[i] = ix.String()
	}
	return fmt.Sprintf("%s[%s]", a.Tensor, strings.Join(parts, ", "))
}

// Dims reports every iteration dimension the access refers to.
func (a Access) Dims() []string {
	seen := map[string]bool{}
	var out []string
	for _, ix := range a.Index {
		for _, d := range ix.Dims() {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	return out
}

// OpKind classifies the per-iteration computation of an operator, which the
// energy and latency models use to pick compute unit and per-op cost.
type OpKind int

// Operator kinds. MAC ops run on the matrix array; the others run on the
// vector unit.
const (
	KindMAC  OpKind = iota // multiply-accumulate (matmul, convolution)
	KindExp                // exponential
	KindMax                // running maximum (reduction)
	KindSum                // running sum (reduction)
	KindSub                // elementwise subtract
	KindDiv                // elementwise divide
	KindCopy               // elementwise copy / activation passthrough
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case KindMAC:
		return "mac"
	case KindExp:
		return "exp"
	case KindMax:
		return "max"
	case KindSum:
		return "sum"
	case KindSub:
		return "sub"
	case KindDiv:
		return "div"
	case KindCopy:
		return "copy"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Vector reports whether the kind runs on the vector unit rather than the
// matrix (MAC) array.
func (k OpKind) Vector() bool { return k != KindMAC }

// Operator is a perfect loop nest over globally named iteration dimensions.
// Reduction dimensions are those that appear in a read access but not in the
// write access; they are derived, not declared.
type Operator struct {
	Name  string
	Kind  OpKind
	Dims  []Dim // full iteration space; order is canonical loop order
	Reads []Access
	Write Access
}

// DimSize reports the trip count of the named dimension, or 0 when the
// operator does not iterate over it.
func (o *Operator) DimSize(name string) int {
	for _, d := range o.Dims {
		if d.Name == name {
			return d.Size
		}
	}
	return 0
}

// HasDim reports whether the operator iterates over the named dimension.
func (o *Operator) HasDim(name string) bool { return o.DimSize(name) > 0 }

// DimNames lists the iteration dimension names in canonical order.
func (o *Operator) DimNames() []string {
	out := make([]string, len(o.Dims))
	for i, d := range o.Dims {
		out[i] = d.Name
	}
	return out
}

// ReductionDims reports the dimensions that are reduced away: iterated by the
// operator but absent from the write access.
func (o *Operator) ReductionDims() []string {
	written := map[string]bool{}
	for _, d := range o.Write.Dims() {
		written[d] = true
	}
	var out []string
	for _, d := range o.Dims {
		if !written[d.Name] {
			out = append(out, d.Name)
		}
	}
	return out
}

// IsReduction reports whether dim is a reduction dimension of the operator.
// It is equivalent to scanning ReductionDims but allocation-free: dataflow
// builders call it per dim per leaf on the mapper's hot path.
func (o *Operator) IsReduction(dim string) bool {
	if !o.HasDim(dim) {
		return false
	}
	for _, ix := range o.Write.Index {
		for _, t := range ix.Terms {
			if t.Dim == dim {
				return false
			}
		}
	}
	return true
}

// OpCount is the total number of scalar operations the operator performs:
// the product of all dimension trip counts.
func (o *Operator) OpCount() int64 {
	n := int64(1)
	for _, d := range o.Dims {
		n *= int64(d.Size)
	}
	return n
}

// Accesses returns all accesses, reads first then the write.
func (o *Operator) Accesses() []Access {
	out := make([]Access, 0, len(o.Reads)+1)
	out = append(out, o.Reads...)
	out = append(out, o.Write)
	return out
}

// String renders the operator as a one-line statement, e.g.
// "S[m, l] += Q[m, k] * K[k, l]".
func (o *Operator) String() string {
	reads := make([]string, len(o.Reads))
	for i, r := range o.Reads {
		reads[i] = r.String()
	}
	op := "+="
	if len(o.ReductionDims()) == 0 {
		op = "="
	}
	return fmt.Sprintf("%s %s %s(%s)", o.Write.String(), op, o.Kind, strings.Join(reads, ", "))
}

// Tensor is a multidimensional array referenced by operators. Density
// below 1 marks a sparse tensor stored in a compressed format (the Sec 7.7
// extension: "SparseLoop proposes to use sparse acceleration features ...
// this is also applicable to TileFlow"): data movement, staging and — on
// hardware that gates zero operands — compute scale with it.
type Tensor struct {
	Name      string
	Dims      []int
	ElemBytes int
	// Density is the non-zero fraction; 0 means unset (treated as 1.0,
	// fully dense).
	Density float64
}

// EffDensity is the tensor's density with the dense default applied.
func (t *Tensor) EffDensity() float64 {
	if t.Density <= 0 || t.Density > 1 {
		return 1
	}
	return t.Density
}

// Volume is the number of elements in the tensor.
func (t *Tensor) Volume() int64 {
	v := int64(1)
	for _, d := range t.Dims {
		v *= int64(d)
	}
	return v
}

// Bytes is the total byte size of the tensor.
func (t *Tensor) Bytes() int64 { return t.Volume() * int64(t.ElemBytes) }

// Graph is a DAG of operators connected through tensors. Operators appear in
// a valid topological order. A tensor written by one operator and read by
// another is an intermediate; intermediates are the targets of fusion.
type Graph struct {
	Name    string
	Ops     []*Operator
	Tensors map[string]*Tensor

	producer map[string]*Operator   // tensor -> writer
	readers  map[string][]*Operator // tensor -> readers
}

// NewGraph assembles a graph from operators. Tensor shapes are inferred from
// the maximal index reach of each access; elemBytes is the element size used
// for all tensors (the paper uses 16-bit words throughout).
func NewGraph(name string, elemBytes int, ops ...*Operator) (*Graph, error) {
	g := &Graph{
		Name:     name,
		Ops:      ops,
		Tensors:  map[string]*Tensor{},
		producer: map[string]*Operator{},
		readers:  map[string][]*Operator{},
	}
	for _, op := range ops {
		if len(op.Dims) == 0 {
			return nil, fmt.Errorf("workload: operator %q has no iteration dims", op.Name)
		}
		for _, acc := range op.Accesses() {
			for _, d := range acc.Dims() {
				if !op.HasDim(d) {
					return nil, fmt.Errorf("workload: operator %q access %s uses unknown dim %q", op.Name, acc, d)
				}
			}
			shape := make([]int, len(acc.Index))
			for i, ix := range acc.Index {
				extent := ix.Offset + 1
				for _, t := range ix.Terms {
					extent += t.Coef * (op.DimSize(t.Dim) - 1)
				}
				shape[i] = extent
			}
			t, ok := g.Tensors[acc.Tensor]
			if !ok {
				g.Tensors[acc.Tensor] = &Tensor{Name: acc.Tensor, Dims: shape, ElemBytes: elemBytes}
				continue
			}
			if len(t.Dims) != len(shape) {
				return nil, fmt.Errorf("workload: tensor %q rank mismatch (%d vs %d)", acc.Tensor, len(t.Dims), len(shape))
			}
			for i := range shape {
				if shape[i] > t.Dims[i] {
					t.Dims[i] = shape[i]
				}
			}
		}
		if prev, dup := g.producer[op.Write.Tensor]; dup {
			return nil, fmt.Errorf("workload: tensor %q written by both %q and %q", op.Write.Tensor, prev.Name, op.Name)
		}
		g.producer[op.Write.Tensor] = op
		for _, r := range op.Reads {
			g.readers[r.Tensor] = append(g.readers[r.Tensor], op)
		}
	}
	// Verify topological order: every read tensor must be a graph input or
	// already produced.
	produced := map[string]bool{}
	for _, op := range ops {
		for _, r := range op.Reads {
			if g.producer[r.Tensor] != nil && !produced[r.Tensor] {
				return nil, fmt.Errorf("workload: graph %q: operator %q reads %q before it is produced", name, op.Name, r.Tensor)
			}
		}
		produced[op.Write.Tensor] = true
	}
	return g, nil
}

// MustGraph is NewGraph that panics on error, for static workload tables.
func MustGraph(name string, elemBytes int, ops ...*Operator) *Graph {
	g, err := NewGraph(name, elemBytes, ops...)
	if err != nil {
		panic(err)
	}
	return g
}

// Op finds an operator by name, or nil.
func (g *Graph) Op(name string) *Operator {
	for _, op := range g.Ops {
		if op.Name == name {
			return op
		}
	}
	return nil
}

// Producer reports the operator that writes the tensor, or nil for graph
// inputs.
func (g *Graph) Producer(tensor string) *Operator { return g.producer[tensor] }

// Readers reports the operators that read the tensor.
func (g *Graph) Readers(tensor string) []*Operator { return g.readers[tensor] }

// IsIntermediate reports whether the tensor is both produced and consumed
// inside the graph — the class of tensors fusion keeps on chip.
func (g *Graph) IsIntermediate(tensor string) bool {
	return g.producer[tensor] != nil && len(g.readers[tensor]) > 0
}

// IsInput reports whether the tensor is a pure graph input.
func (g *Graph) IsInput(tensor string) bool { return g.producer[tensor] == nil }

// IsOutput reports whether the tensor is produced but never consumed inside
// the graph.
func (g *Graph) IsOutput(tensor string) bool {
	return g.producer[tensor] != nil && len(g.readers[tensor]) == 0
}

// InputTensors lists graph inputs in deterministic order.
func (g *Graph) InputTensors() []string { return g.tensorsWhere(g.IsInput) }

// OutputTensors lists graph outputs in deterministic order.
func (g *Graph) OutputTensors() []string { return g.tensorsWhere(g.IsOutput) }

// IntermediateTensors lists intermediates in deterministic order.
func (g *Graph) IntermediateTensors() []string { return g.tensorsWhere(g.IsIntermediate) }

func (g *Graph) tensorsWhere(pred func(string) bool) []string {
	var out []string
	for name := range g.Tensors {
		if pred(name) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// SetDensity marks a tensor as sparse with the given non-zero fraction.
func (g *Graph) SetDensity(tensor string, density float64) error {
	t, ok := g.Tensors[tensor]
	if !ok {
		return fmt.Errorf("workload: no tensor %q", tensor)
	}
	if density <= 0 || density > 1 {
		return fmt.Errorf("workload: density %v outside (0, 1]", density)
	}
	t.Density = density
	return nil
}

// Density reports a tensor's effective density (1.0 for unknown tensors).
func (g *Graph) Density(tensor string) float64 {
	if t, ok := g.Tensors[tensor]; ok {
		return t.EffDensity()
	}
	return 1
}

// OpDensity is the fraction of an operator's iterations that touch nonzero
// data on gating hardware: the product of its read tensors' densities.
func (g *Graph) OpDensity(op *Operator) float64 {
	d := 1.0
	for _, r := range op.Reads {
		d *= g.Density(r.Tensor)
	}
	return d
}

// DimSize reports the maximal trip count of the named dimension across all
// operators, or 0 when no operator iterates over it.
func (g *Graph) DimSize(name string) int {
	n := 0
	for _, op := range g.Ops {
		if s := op.DimSize(name); s > n {
			n = s
		}
	}
	return n
}

// AllDims lists every iteration dimension used anywhere in the graph, in
// first-use order.
func (g *Graph) AllDims() []Dim {
	seen := map[string]bool{}
	var out []Dim
	for _, op := range g.Ops {
		for _, d := range op.Dims {
			if !seen[d.Name] {
				seen[d.Name] = true
				out = append(out, Dim{Name: d.Name, Size: g.DimSize(d.Name)})
			}
		}
	}
	return out
}

// TotalOps is the total scalar op count of the graph.
func (g *Graph) TotalOps() int64 {
	var n int64
	for _, op := range g.Ops {
		n += op.OpCount()
	}
	return n
}

// MACOps is the scalar op count restricted to MAC operators.
func (g *Graph) MACOps() int64 {
	var n int64
	for _, op := range g.Ops {
		if op.Kind == KindMAC {
			n += op.OpCount()
		}
	}
	return n
}

// String summarizes the graph, one operator per line.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s:\n", g.Name)
	for _, op := range g.Ops {
		fmt.Fprintf(&b, "  %s: %s\n", op.Name, op)
	}
	return b.String()
}
