package workload

import (
	"fmt"
	"sort"
	"strings"
)

// CanonicalGraph dumps everything about a workload graph that affects the
// analysis: operators in graph order with their full iteration spaces and
// affine accesses, and tensors (sorted) with shape, element size and
// density. Cache layers (the serve subsystem's design-point keys, the
// mapper's fitness memoization) hash this text so that equal graphs share
// entries regardless of how a request spelled them.
func CanonicalGraph(g *Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "name %s\n", g.Name)
	for _, op := range g.Ops {
		fmt.Fprintf(&b, "op %s kind=%s dims=", op.Name, op.Kind)
		for i, d := range op.Dims {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, "%s:%d", d.Name, d.Size)
		}
		b.WriteString(" reads=")
		for i, r := range op.Reads {
			if i > 0 {
				b.WriteString(";")
			}
			b.WriteString(r.String())
		}
		fmt.Fprintf(&b, " write=%s\n", op.Write.String())
	}
	names := make([]string, 0, len(g.Tensors))
	for name := range g.Tensors {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := g.Tensors[name]
		fmt.Fprintf(&b, "tensor %s dims=%v elem=%d density=%g\n", t.Name, t.Dims, t.ElemBytes, t.EffDensity())
	}
	return b.String()
}

// StructureSignature renders only the SHAPE-FREE structure of a graph:
// operators in graph order with kind, iteration-dimension names (sizes
// dropped), and affine accesses, plus each tensor's rank and element
// width. Two graphs with the same signature are the same computation over
// different tensor sizes — e.g. Bert-S and Bert-L attention. The warm-
// start library keys donor checkpoints by this text (hashed together
// with the architecture's structure), so a search can seed its
// population from a structurally identical design point without ever
// conflating the shape-specific caches, which keep using CanonicalGraph.
func StructureSignature(g *Graph) string {
	var b strings.Builder
	for _, op := range g.Ops {
		fmt.Fprintf(&b, "op %s kind=%s dims=", op.Name, op.Kind)
		for i, d := range op.Dims {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(d.Name)
		}
		b.WriteString(" reads=")
		for i, r := range op.Reads {
			if i > 0 {
				b.WriteString(";")
			}
			b.WriteString(r.String())
		}
		fmt.Fprintf(&b, " write=%s\n", op.Write.String())
	}
	names := make([]string, 0, len(g.Tensors))
	for name := range g.Tensors {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := g.Tensors[name]
		fmt.Fprintf(&b, "tensor %s rank=%d elem=%d\n", t.Name, len(t.Dims), t.ElemBytes)
	}
	return b.String()
}
