package workload

import (
	"fmt"
	"sort"
	"strings"
)

// CanonicalGraph dumps everything about a workload graph that affects the
// analysis: operators in graph order with their full iteration spaces and
// affine accesses, and tensors (sorted) with shape, element size and
// density. Cache layers (the serve subsystem's design-point keys, the
// mapper's fitness memoization) hash this text so that equal graphs share
// entries regardless of how a request spelled them.
func CanonicalGraph(g *Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "name %s\n", g.Name)
	for _, op := range g.Ops {
		fmt.Fprintf(&b, "op %s kind=%s dims=", op.Name, op.Kind)
		for i, d := range op.Dims {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, "%s:%d", d.Name, d.Size)
		}
		b.WriteString(" reads=")
		for i, r := range op.Reads {
			if i > 0 {
				b.WriteString(";")
			}
			b.WriteString(r.String())
		}
		fmt.Fprintf(&b, " write=%s\n", op.Write.String())
	}
	names := make([]string, 0, len(g.Tensors))
	for name := range g.Tensors {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := g.Tensors[name]
		fmt.Fprintf(&b, "tensor %s dims=%v elem=%d density=%g\n", t.Name, t.Dims, t.ElemBytes, t.EffDensity())
	}
	return b.String()
}
