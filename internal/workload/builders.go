package workload

import "fmt"

// WordBytes is the element size used throughout the paper's evaluation
// (16-bit words).
const WordBytes = 2

// Matmul builds a single matrix multiplication C[m,n] += A[m,k]·B[k,n] as a
// one-operator graph. It is the workload used for the Timeloop validation
// sweep (Fig 8a/b).
func Matmul(m, n, k int) *Graph {
	op := &Operator{
		Name: "mm",
		Kind: KindMAC,
		Dims: []Dim{{"m", m}, {"n", n}, {"k", k}},
		Reads: []Access{
			{Tensor: "A", Index: []Index{I("m"), I("k")}},
			{Tensor: "B", Index: []Index{I("k"), I("n")}},
		},
		Write: Access{Tensor: "C", Index: []Index{I("m"), I("n")}},
	}
	return MustGraph(fmt.Sprintf("matmul_%dx%dx%d", m, n, k), WordBytes, op)
}

// AttentionShape is one row of Table 2: a self-attention configuration.
type AttentionShape struct {
	Name   string
	Model  string
	Heads  int // num_heads
	SeqLen int // seq_len
	Hidden int // hidden
	Batch  int // mini-batch size (1 in Table 2 experiments, 128 in Table 7)
}

// HeadDim is the per-head hidden size hidden/num_heads, the reduction
// dimension of Q×K.
func (s AttentionShape) HeadDim() int { return s.Hidden / s.Heads }

// AttentionShapes is Table 2 of the paper.
var AttentionShapes = []AttentionShape{
	{Name: "Bert-S", Model: "Bert", Heads: 8, SeqLen: 512, Hidden: 512, Batch: 1},
	{Name: "Bert-B", Model: "Bert", Heads: 12, SeqLen: 512, Hidden: 768, Batch: 1},
	{Name: "Bert-L", Model: "Bert", Heads: 16, SeqLen: 512, Hidden: 1024, Batch: 1},
	{Name: "ViT/14-B", Model: "ViT", Heads: 12, SeqLen: 256, Hidden: 768, Batch: 1},
	{Name: "ViT/14-L", Model: "ViT", Heads: 16, SeqLen: 256, Hidden: 1024, Batch: 1},
	{Name: "ViT/14-H", Model: "ViT", Heads: 16, SeqLen: 256, Hidden: 1280, Batch: 1},
	{Name: "ViT/16-B", Model: "ViT", Heads: 12, SeqLen: 196, Hidden: 768, Batch: 1},
	{Name: "ViT/16-L", Model: "ViT", Heads: 16, SeqLen: 196, Hidden: 1024, Batch: 1},
	{Name: "ViT/16-H", Model: "ViT", Heads: 16, SeqLen: 196, Hidden: 1280, Batch: 1},
	{Name: "T5", Model: "T5", Heads: 16, SeqLen: 1024, Hidden: 1024, Batch: 1},
	{Name: "XLM", Model: "XLM", Heads: 12, SeqLen: 1024, Hidden: 768, Batch: 1},
}

// AttentionShapeByName looks up a Table 2 row.
func AttentionShapeByName(name string) (AttentionShape, bool) {
	for _, s := range AttentionShapes {
		if s.Name == name {
			return s, true
		}
	}
	return AttentionShape{}, false
}

// Attention builds the self-attention workload of Fig 1b:
//
//	S = Q × Kᵀ        (batch matmul over heads)
//	L = Softmax(S)    (expanded to max, sub, exp, sum, div per Sec 7.2)
//	A = L × V         (batch matmul over heads)
//
// Iteration dimensions: b (batch), h (head), m (query row), l (key column /
// softmax axis), n (output feature), k (per-head hidden). The softmax is
// expanded into five small operators as the paper requires for modeling
// ("we need to expand it into five small operators (max, sub, exp, sum,
// div)"), each a loop nest over shared dimensions.
func Attention(shape AttentionShape) *Graph {
	b, h := shape.Batch, shape.Heads
	m, l := shape.SeqLen, shape.SeqLen
	n, k := shape.HeadDim(), shape.HeadDim()
	if b <= 0 {
		b = 1
	}

	bh := []Dim{{"b", b}, {"h", h}}
	bhIdx := []Index{I("b"), I("h")}

	qk := &Operator{
		Name: "QK",
		Kind: KindMAC,
		Dims: append(append([]Dim{}, bh...), Dim{"m", m}, Dim{"l", l}, Dim{"k", k}),
		Reads: []Access{
			{Tensor: "Q", Index: append(append([]Index{}, bhIdx...), I("m"), I("k"))},
			{Tensor: "K", Index: append(append([]Index{}, bhIdx...), I("k"), I("l"))},
		},
		Write: Access{Tensor: "S", Index: append(append([]Index{}, bhIdx...), I("m"), I("l"))},
	}
	rowMax := &Operator{
		Name: "RowMax",
		Kind: KindMax,
		Dims: append(append([]Dim{}, bh...), Dim{"m", m}, Dim{"l", l}),
		Reads: []Access{
			{Tensor: "S", Index: append(append([]Index{}, bhIdx...), I("m"), I("l"))},
		},
		Write: Access{Tensor: "Mx", Index: append(append([]Index{}, bhIdx...), I("m"))},
	}
	sub := &Operator{
		Name: "Sub",
		Kind: KindSub,
		Dims: append(append([]Dim{}, bh...), Dim{"m", m}, Dim{"l", l}),
		Reads: []Access{
			{Tensor: "S", Index: append(append([]Index{}, bhIdx...), I("m"), I("l"))},
			{Tensor: "Mx", Index: append(append([]Index{}, bhIdx...), I("m"))},
		},
		Write: Access{Tensor: "Sh", Index: append(append([]Index{}, bhIdx...), I("m"), I("l"))},
	}
	exp := &Operator{
		Name: "Exp",
		Kind: KindExp,
		Dims: append(append([]Dim{}, bh...), Dim{"m", m}, Dim{"l", l}),
		Reads: []Access{
			{Tensor: "Sh", Index: append(append([]Index{}, bhIdx...), I("m"), I("l"))},
		},
		Write: Access{Tensor: "E", Index: append(append([]Index{}, bhIdx...), I("m"), I("l"))},
	}
	rowSum := &Operator{
		Name: "RowSum",
		Kind: KindSum,
		Dims: append(append([]Dim{}, bh...), Dim{"m", m}, Dim{"l", l}),
		Reads: []Access{
			{Tensor: "E", Index: append(append([]Index{}, bhIdx...), I("m"), I("l"))},
		},
		Write: Access{Tensor: "Sm", Index: append(append([]Index{}, bhIdx...), I("m"))},
	}
	div := &Operator{
		Name: "Div",
		Kind: KindDiv,
		Dims: append(append([]Dim{}, bh...), Dim{"m", m}, Dim{"l", l}),
		Reads: []Access{
			{Tensor: "E", Index: append(append([]Index{}, bhIdx...), I("m"), I("l"))},
			{Tensor: "Sm", Index: append(append([]Index{}, bhIdx...), I("m"))},
		},
		Write: Access{Tensor: "L", Index: append(append([]Index{}, bhIdx...), I("m"), I("l"))},
	}
	lv := &Operator{
		Name: "LV",
		Kind: KindMAC,
		Dims: append(append([]Dim{}, bh...), Dim{"m", m}, Dim{"n", n}, Dim{"l", l}),
		Reads: []Access{
			{Tensor: "L", Index: append(append([]Index{}, bhIdx...), I("m"), I("l"))},
			{Tensor: "V", Index: append(append([]Index{}, bhIdx...), I("l"), I("n"))},
		},
		Write: Access{Tensor: "A", Index: append(append([]Index{}, bhIdx...), I("m"), I("n"))},
	}
	return MustGraph("attention_"+shape.Name, WordBytes, qk, rowMax, sub, exp, rowSum, div, lv)
}

// AttentionCoarse builds the three-operator view of self-attention used when
// the softmax interior does not need to be modeled per-op: QK, a single
// fused softmax operator, and LV. Some dataflow constructors and the
// simulator kernel generator use this form.
func AttentionCoarse(shape AttentionShape) *Graph {
	b, h := shape.Batch, shape.Heads
	m, l := shape.SeqLen, shape.SeqLen
	n, k := shape.HeadDim(), shape.HeadDim()
	if b <= 0 {
		b = 1
	}
	bh := []Dim{{"b", b}, {"h", h}}
	bhIdx := []Index{I("b"), I("h")}

	qk := &Operator{
		Name: "QK",
		Kind: KindMAC,
		Dims: append(append([]Dim{}, bh...), Dim{"m", m}, Dim{"l", l}, Dim{"k", k}),
		Reads: []Access{
			{Tensor: "Q", Index: append(append([]Index{}, bhIdx...), I("m"), I("k"))},
			{Tensor: "K", Index: append(append([]Index{}, bhIdx...), I("k"), I("l"))},
		},
		Write: Access{Tensor: "S", Index: append(append([]Index{}, bhIdx...), I("m"), I("l"))},
	}
	softmax := &Operator{
		Name: "Softmax",
		Kind: KindExp,
		Dims: append(append([]Dim{}, bh...), Dim{"m", m}, Dim{"l", l}),
		Reads: []Access{
			{Tensor: "S", Index: append(append([]Index{}, bhIdx...), I("m"), I("l"))},
		},
		Write: Access{Tensor: "L", Index: append(append([]Index{}, bhIdx...), I("m"), I("l"))},
	}
	lv := &Operator{
		Name: "LV",
		Kind: KindMAC,
		Dims: append(append([]Dim{}, bh...), Dim{"m", m}, Dim{"n", n}, Dim{"l", l}),
		Reads: []Access{
			{Tensor: "L", Index: append(append([]Index{}, bhIdx...), I("m"), I("l"))},
			{Tensor: "V", Index: append(append([]Index{}, bhIdx...), I("l"), I("n"))},
		},
		Write: Access{Tensor: "A", Index: append(append([]Index{}, bhIdx...), I("m"), I("n"))},
	}
	return MustGraph("attention3_"+shape.Name, WordBytes, qk, softmax, lv)
}

// ConvChainShape is one row of Table 3: two chained 3×3 convolutions.
type ConvChainShape struct {
	Name   string
	InC    int // In_C
	Height int
	Width  int
	OutC1  int // Out_C1
	OutC2  int // Out_C2
	Filter int // filter size (3 in all Table 3 experiments)
}

// ConvChainShapes is Table 3 of the paper.
var ConvChainShapes = []ConvChainShape{
	{Name: "CC1", InC: 64, Height: 112, Width: 112, OutC1: 192, OutC2: 128, Filter: 3},
	{Name: "CC2", InC: 32, Height: 147, Width: 147, OutC1: 64, OutC2: 80, Filter: 3},
	{Name: "CC3", InC: 64, Height: 56, Width: 56, OutC1: 128, OutC2: 64, Filter: 3},
	{Name: "CC4", InC: 128, Height: 28, Width: 28, OutC1: 256, OutC2: 128, Filter: 3},
	{Name: "CC5", InC: 16, Height: 227, Width: 227, OutC1: 64, OutC2: 16, Filter: 3},
}

// ConvChainShapeByName looks up a Table 3 row.
func ConvChainShapeByName(name string) (ConvChainShape, bool) {
	for _, s := range ConvChainShapes {
		if s.Name == name {
			return s, true
		}
	}
	return ConvChainShape{}, false
}

// ConvChain builds the two-convolution chain of Fig 1c:
//
//	Act[h,w,l] += Im[h+r, w+s, c] · W1[r,s,c,l]
//	Out[h,w,e] += Act[h+u, w+v, l] · W2[u,v,l,e]
//
// Both convolutions use the shape's filter size with unit stride ("same"
// output extent, halo materialized in the tensor shape as the paper's
// Fused-Layer setting does). Dimensions h, w, l are shared between the two
// operators so that height/width/channel tiling can fuse them.
func ConvChain(shape ConvChainShape) *Graph {
	f := shape.Filter
	if f <= 0 {
		f = 3
	}
	conv1 := &Operator{
		Name: "Conv1",
		Kind: KindMAC,
		Dims: []Dim{
			{"h", shape.Height}, {"w", shape.Width},
			{"l", shape.OutC1},
			{"r", f}, {"s", f}, {"c", shape.InC},
		},
		Reads: []Access{
			{Tensor: "Im", Index: []Index{Idx("h", 1, "r", 1), Idx("w", 1, "s", 1), I("c")}},
			{Tensor: "W1", Index: []Index{I("r"), I("s"), I("c"), I("l")}},
		},
		Write: Access{Tensor: "Act", Index: []Index{I("h"), I("w"), I("l")}},
	}

	conv2 := &Operator{
		Name: "Conv2",
		Kind: KindMAC,
		Dims: []Dim{
			{"h", shape.Height}, {"w", shape.Width},
			{"e", shape.OutC2},
			{"u", f}, {"v", f}, {"l", shape.OutC1},
		},
		Reads: []Access{
			{Tensor: "Act", Index: []Index{Idx("h", 1, "u", 1), Idx("w", 1, "v", 1), I("l")}},
			{Tensor: "W2", Index: []Index{I("u"), I("v"), I("l"), I("e")}},
		},
		Write: Access{Tensor: "Out", Index: []Index{I("h"), I("w"), I("e")}},
	}
	return MustGraph("convchain_"+shape.Name, WordBytes, conv1, conv2)
}

// ConvChainN builds a chain of n 3×3 convolutions with the given channel
// widths (len(channels) = n+1: input channels followed by each layer's
// output channels). The height/width dims are shared along the whole chain
// and each intermediate activation is a fusion candidate — the general
// multi-layer fusion setting the paper's introduction motivates (SET,
// Tangram). Channel dims are named c0 (input), c1..cn (outputs).
func ConvChainN(name string, h, w, filter int, channels []int) *Graph {
	if len(channels) < 2 {
		panic("workload.ConvChainN: need input + at least one output width")
	}
	var ops []*Operator
	for i := 1; i < len(channels); i++ {
		inT := "Im"
		if i > 1 {
			inT = fmt.Sprintf("Act%d", i-1)
		}
		outT := fmt.Sprintf("Act%d", i)
		if i == len(channels)-1 {
			outT = "Out"
		}
		rdim := fmt.Sprintf("r%d", i)
		sdim := fmt.Sprintf("s%d", i)
		cin := fmt.Sprintf("c%d", i-1)
		cout := fmt.Sprintf("c%d", i)
		ops = append(ops, &Operator{
			Name: fmt.Sprintf("Conv%d", i),
			Kind: KindMAC,
			Dims: []Dim{
				{"h", h}, {"w", w},
				{cout, channels[i]},
				{rdim, filter}, {sdim, filter}, {cin, channels[i-1]},
			},
			Reads: []Access{
				{Tensor: inT, Index: []Index{Idx("h", 1, rdim, 1), Idx("w", 1, sdim, 1), I(cin)}},
				{Tensor: fmt.Sprintf("W%d", i), Index: []Index{I(rdim), I(sdim), I(cin), I(cout)}},
			},
			Write: Access{Tensor: outT, Index: []Index{I("h"), I("w"), I(cout)}},
		})
	}
	return MustGraph(name, WordBytes, ops...)
}

// Conv2D builds a single convolution operator graph, used by the layerwise
// conv baseline and by unit tests.
func Conv2D(name string, h, w, inC, outC, filter int) *Graph {
	op := &Operator{
		Name: "Conv",
		Kind: KindMAC,
		Dims: []Dim{
			{"h", h}, {"w", w}, {"l", outC},
			{"r", filter}, {"s", filter}, {"c", inC},
		},
		Reads: []Access{
			{Tensor: "Im", Index: []Index{Idx("h", 1, "r", 1), Idx("w", 1, "s", 1), I("c")}},
			{Tensor: "W", Index: []Index{I("r"), I("s"), I("c"), I("l")}},
		},
		Write: Access{Tensor: "Out", Index: []Index{I("h"), I("w"), I("l")}},
	}
	return MustGraph(name, WordBytes, op)
}

// BatchedConv1D builds the worked example of Figure 5 in the paper: a
// batched 1D convolution whose single-tile data-movement volume for tensor A
// is exactly 168 elements. It is the golden test for single-tile analysis.
//
//	for i1=0..2, j1=0..2 @temporal
//	  for i0=0..3, j0=0..3, k0=0..2 @spatial
//	    C[i1*4+i0, j1*4+j0] += A[i1*4+i0, j1*4+j0+k0] * B[i1*4+i0, k0]
func BatchedConv1D() *Graph {
	op := &Operator{
		Name: "bconv",
		Kind: KindMAC,
		Dims: []Dim{{"i", 12}, {"j", 12}, {"k", 3}},
		Reads: []Access{
			{Tensor: "A", Index: []Index{I("i"), Idx("j", 1, "k", 1)}},
			{Tensor: "B", Index: []Index{I("i"), I("k")}},
		},
		Write: Access{Tensor: "C", Index: []Index{I("i"), I("j")}},
	}
	return MustGraph("fig5_bconv1d", WordBytes, op)
}
