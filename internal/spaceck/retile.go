package spaceck

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/workload"
)

// Retile wraps a concrete analysis tree as a dataflow template whose
// factor space is the set of retilings of that tree: every loop keeps its
// node, dimension and kind, but its extent becomes a searchable factor
// ranging over the divisors of the dimension's trip count. Per (leaf, dim)
// the first temporal leaf loop is held back as the remainder: Build
// derives its extent from the dim size and the other factors on the path,
// so coverage holds by construction whenever the factors divide. The
// template declares a stable structure (only loop extents vary), and the
// concrete input tree is exactly Build(DefaultFactors()) when the input
// itself satisfies coverage — which is what lets the conformance soundness
// gate compare narrowed domains against points the pipeline accepts.
//
// This is what gives `tileflow analyze` a meaning on notation and YAML
// config inputs: the analyzed space is "your mapping, retiled every legal
// way", and an empty space is the proof that no retiling of the given
// structure can satisfy the architecture.
func Retile(name string, root *core.Node, g *workload.Graph) (dataflows.Dataflow, error) {
	if root == nil || g == nil {
		return nil, fmt.Errorf("spaceck: retile needs a tree and a graph")
	}
	rt := &retile{name: name, g: g, root: root}
	rt.index()
	return rt, nil
}

// loopRef addresses one loop by preorder node index and loop index.
type loopRef struct {
	node, loop int
}

type retile struct {
	name  string
	g     *workload.Graph
	root  *core.Node
	nodes []*core.Node // preorder
	specs []dataflows.FactorSpec
	refs  []loopRef // parallel to specs
	// remainder marks the loops Build derives instead of reading from the
	// factor assignment, keyed by loopRef.
	remainder map[loopRef]bool
	defaults  map[string]int
}

func (rt *retile) Name() string           { return rt.name }
func (rt *retile) Graph() *workload.Graph { return rt.g }
func (rt *retile) StructureStable() bool  { return true }
func (rt *retile) Factors() []dataflows.FactorSpec {
	return append([]dataflows.FactorSpec(nil), rt.specs...)
}
func (rt *retile) DefaultFactors() map[string]int {
	out := make(map[string]int, len(rt.defaults))
	for k, v := range rt.defaults {
		out[k] = v
	}
	return out
}

// index walks the tree once, assigning every non-remainder loop a factor
// key "<node>.<dim>#<i>" (deduplicated if node names repeat) with the
// dimension's trip count as Total.
func (rt *retile) index() {
	rt.remainder = map[loopRef]bool{}
	rt.defaults = map[string]int{}
	seen := map[string]int{}
	var walk func(n *core.Node)
	walk = func(n *core.Node) {
		ni := len(rt.nodes)
		rt.nodes = append(rt.nodes, n)
		for li, l := range n.Loops {
			if n.IsLeaf() && l.Kind == core.Temporal && rt.firstTemporal(n, l.Dim) == li {
				rt.remainder[loopRef{ni, li}] = true
				continue
			}
			total := rt.dimSize(n, l.Dim)
			if total <= 0 {
				// A loop over a dim no operator below iterates: every
				// assignment trips the loop-dim rule; give the factor its
				// current extent as the (degenerate) trip count.
				total = l.Extent
			}
			key := fmt.Sprintf("%s.%s#%d", n.Name, l.Dim, li)
			if c := seen[key]; c > 0 {
				key = fmt.Sprintf("%s~%d", key, c)
			}
			seen[fmt.Sprintf("%s.%s#%d", n.Name, l.Dim, li)]++
			rt.specs = append(rt.specs, dataflows.FactorSpec{
				Key: key, Total: total,
				Doc: fmt.Sprintf("retiling of loop %s at tile %s", l, n.Name),
			})
			rt.refs = append(rt.refs, loopRef{ni, li})
			def := l.Extent
			if def < 1 || total < 1 || total%def != 0 {
				def = 1
			}
			rt.defaults[key] = def
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(rt.root)
}

// firstTemporal is the index of the first temporal loop over dim at n, -1
// if none.
func (rt *retile) firstTemporal(n *core.Node, dim string) int {
	for li, l := range n.Loops {
		if l.Kind == core.Temporal && l.Dim == dim {
			return li
		}
	}
	return -1
}

// dimSize is the trip count of dim below n: the dim's size in the first
// subtree operator iterating it.
func (rt *retile) dimSize(n *core.Node, dim string) int {
	size := 0
	var walk func(m *core.Node) bool
	walk = func(m *core.Node) bool {
		if m.IsLeaf() {
			for _, d := range m.Op.Dims {
				if d.Name == dim {
					size = d.Size
					return true
				}
			}
			return false
		}
		for _, c := range m.Children {
			if walk(c) {
				return true
			}
		}
		return false
	}
	walk(n)
	return size
}

// Build clones the tree, installs the factor extents, and derives each
// remainder loop so every (operator, dim) path product equals the dim
// size. Assignments whose factors do not divide the remaining extent fail,
// mirroring the divisibility errors of the named templates.
func (rt *retile) Build(f map[string]int) (*core.Node, error) {
	clones := make([]*core.Node, 0, len(rt.nodes))
	var cloneWalk func(n *core.Node) *core.Node
	cloneWalk = func(n *core.Node) *core.Node {
		c := &core.Node{Name: n.Name, Level: n.Level, Binding: n.Binding, Op: n.Op,
			Loops: append([]core.Loop(nil), n.Loops...)}
		clones = append(clones, c)
		for _, ch := range n.Children {
			c.Children = append(c.Children, cloneWalk(ch))
		}
		return c
	}
	root := cloneWalk(rt.root)

	for fi, spec := range rt.specs {
		v, ok := f[spec.Key]
		if !ok || v <= 0 {
			v = 1
		}
		if spec.Total > 0 && spec.Total%v != 0 {
			return nil, fmt.Errorf("spaceck: factor %s=%d does not divide %d", spec.Key, v, spec.Total)
		}
		ref := rt.refs[fi]
		clones[ref.node].Loops[ref.loop].Extent = v
	}

	// Derive remainders: per (leaf, dim) the product of the fixed loops on
	// the root-to-leaf path must divide the dim size.
	var derive func(n *core.Node, path []*core.Node) error
	derive = func(n *core.Node, path []*core.Node) error {
		path = append(path, n)
		if n.IsLeaf() {
			for _, d := range n.Op.Dims {
				prod := 1
				remLoop := -1
				for _, m := range path {
					for li, l := range m.Loops {
						if l.Dim != d.Name {
							continue
						}
						if m == n && l.Kind == core.Temporal && remLoop < 0 {
							remLoop = li
							continue
						}
						prod *= l.Extent
					}
				}
				if prod <= 0 || d.Size%prod != 0 {
					return fmt.Errorf("spaceck: factors over dim %s multiply to %d, not a divisor of %d", d.Name, prod, d.Size)
				}
				q := d.Size / prod
				if remLoop >= 0 {
					n.Loops[remLoop].Extent = q
				} else if q > 1 {
					n.Loops = append(n.Loops, core.T(d.Name, q))
				}
			}
			return nil
		}
		for _, c := range n.Children {
			if err := derive(c, path); err != nil {
				return err
			}
		}
		return nil
	}
	if err := derive(root, nil); err != nil {
		return nil, err
	}
	return root, nil
}
