// Package spaceck is the search-space abstract interpreter: it evaluates
// the static legality pipeline over factor *domains* instead of concrete
// tilings. For a dataflow template it takes the per-factor candidate sets
// (the divisors of each trip count, exactly as mapper.TileSearch enumerates
// them via Dataflow.Factors) and returns narrowed per-factor domains in
// which every removed value is attributed to the rule that refutes it, a
// proof when a subspace is entirely infeasible, and a machine-readable
// SpaceReport shared byte-for-byte by `tileflow analyze` and the service's
// /v1/analyze endpoint.
//
// The abstract domain is the divisor lattice: one subset of Divisors(Total)
// per factor, ordered by inclusion, with the concretization "every
// assignment drawing each factor from its subset". The transfer function is
// slice refutation: a value v of factor k is removed only when every point
// of the slice {k=v} has been evaluated through core.AnalyzeStatic (plus
// the template's own Build divisibility checks) and rejected. Soundness is
// therefore absolute by construction — a value is never removed on the
// strength of a heuristic — while completeness is best-effort: when the
// product space exceeds the probe budget the analyzer only certifies
// witnesses (values it has *seen* in an accepted point) and removes
// nothing. The per-rule monotonicity metadata of internal/core
// (core.RuleMonotonicity) orders the sweep so low-pressure corners are
// probed first: the monotone-increasing resource rules (pe-budget,
// unit-usage, capacity) make small-factor corners the likeliest witnesses,
// which lets valid-heavy spaces terminate after a handful of probes.
package spaceck

import (
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"sort"

	"repro/internal/arch"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/diag"
)

// Diagnostic codes of the search-space analyzer.
var (
	// CodeEmptySpace proves the whole factor space infeasible: no
	// assignment the template builds passes the static rules.
	CodeEmptySpace = diag.Register(diag.Info{Code: "TF-SPACE-001",
		Title: "search space provably empty",
		Hint:  "every factor assignment violates a static rule; relax the architecture or the tiling template"})
	// CodePrunedValue marks one removed factor value.
	CodePrunedValue = diag.Register(diag.Info{Code: "TF-SPACE-002", Severity: diag.Warning,
		Title: "factor value infeasible",
		Hint:  "no completion of the other factors makes this value legal; the mapper skips it"})
	// CodeIncomplete reports a space too large for exact narrowing.
	CodeIncomplete = diag.Register(diag.Info{Code: "TF-SPACE-003", Severity: diag.Warning,
		Title: "search-space narrowing incomplete",
		Hint:  "the space exceeds the probe budget; domains are witness-only and nothing was pruned"})
	// CodeBuildReject summarizes assignments the template itself rejects.
	CodeBuildReject = diag.Register(diag.Info{Code: "TF-SPACE-004", Severity: diag.Warning,
		Title: "factor assignments fail to build",
		Hint:  "the template's divisibility checks reject these assignments before any rule runs"})
)

// RuleBuild is the pseudo-rule attributed to values refuted by the
// template's Build rejecting every completion, before any core rule runs.
const RuleBuild = "template-build"

// DefaultMaxProbes bounds how many concrete design points Analyze
// evaluates when Options.MaxProbes is zero.
const DefaultMaxProbes = 100_000

// Options configures one analysis.
type Options struct {
	// MaxProbes bounds the concrete points evaluated. Spaces no larger
	// than the budget are narrowed exactly; larger spaces get a
	// witness-only pass that removes nothing. 0 means DefaultMaxProbes.
	MaxProbes int
	// Core is forwarded to the static rules, so the narrowed domains match
	// a pipeline run under the same skip flags.
	Core core.Options
}

// Removal is one factor value proven infeasible, attributed to the static
// rule (or RuleBuild) that rejected every point of its slice.
type Removal struct {
	Value int       `json:"value"`
	Rule  string    `json:"rule"`
	Code  diag.Code `json:"code,omitempty"`
}

// Domain is one factor's narrowed candidate set.
type Domain struct {
	Key     string    `json:"key"`
	Total   int       `json:"total"`
	Kept    []int     `json:"kept"`
	Removed []Removal `json:"removed,omitempty"`
}

// Has reports whether v survived the narrowing.
func (d *Domain) Has(v int) bool {
	for _, k := range d.Kept {
		if k == v {
			return true
		}
	}
	return false
}

// Report is the machine-readable result of one space analysis: the
// SpaceReport codec both `tileflow analyze -json` and POST /v1/analyze
// emit. Both sides encode the same struct with json.NewEncoder().Encode,
// so the outputs are byte-identical for the same input.
type Report struct {
	Dataflow string   `json:"dataflow"`
	Factors  []Domain `json:"factors"`
	// Empty is the infeasibility proof: the space was exhaustively swept
	// and no assignment passed.
	Empty bool `json:"empty"`
	// Complete reports whether the narrowing is exact (the space fit the
	// probe budget). When false the kept sets are unpruned supersets.
	Complete  bool  `json:"complete"`
	Probes    int   `json:"probes"`
	SpaceSize int64 `json:"space_size"`
	KeptSize  int64 `json:"kept_size"`
	// BuildRejects counts probed assignments the template's own Build
	// refused (divisibility and the like) before any rule ran. Purely
	// informational: build rejections only gate the exit status when a
	// value's removal is attributed to them (TF-SPACE-004).
	BuildRejects int `json:"build_rejects,omitempty"`
	// Diagnostics carries the positioned TF-SPACE-* findings.
	Diagnostics diag.List `json:"diagnostics"`
}

// Domain returns the narrowed domain for a factor key, or nil.
func (r *Report) Domain(key string) *Domain {
	for i := range r.Factors {
		if r.Factors[i].Key == key {
			return &r.Factors[i]
		}
	}
	return nil
}

// Allowed filters a choice list down to the values the narrowing kept. An
// unknown key passes the list through unchanged, so stale reports degrade
// to no pruning rather than wrong pruning.
func (r *Report) Allowed(key string, choices []int) []int {
	d := r.Domain(key)
	if d == nil {
		return choices
	}
	out := make([]int, 0, len(choices))
	for _, v := range choices {
		if d.Has(v) {
			out = append(out, v)
		}
	}
	return out
}

// AllowedMap renders the kept domains as plain per-key choice lists — the
// form mapper.TileSearch and the GA consume without importing this package.
func (r *Report) AllowedMap() map[string][]int {
	out := make(map[string][]int, len(r.Factors))
	for _, d := range r.Factors {
		out[d.Key] = append([]int(nil), d.Kept...)
	}
	return out
}

// Contains reports whether every factor of a concrete assignment lies in
// its kept domain (factors the report does not know pass).
func (r *Report) Contains(f map[string]int) bool {
	for k, v := range f {
		if d := r.Domain(k); d != nil && !d.Has(v) {
			return false
		}
	}
	return true
}

// ExitCode is the analyze process exit status: 0 clean, 1 warnings only
// (values pruned or narrowing incomplete), 2 when the space is empty.
func (r *Report) ExitCode() int { return r.Diagnostics.ExitCode() }

// WriteJSON encodes the report in the canonical newline-terminated form
// shared by the CLI and the service.
func (r *Report) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(r)
}

// Analyze narrows a dataflow template's factor space against the static
// legality rules under spec. See the package comment for the soundness
// contract: a removed value provably cannot appear in any design point the
// Compile/Evaluate pipeline accepts under the same core options.
func Analyze(df dataflows.Dataflow, spec *arch.Spec, opt Options) *Report {
	specs := df.Factors()
	budget := opt.MaxProbes
	if budget <= 0 {
		budget = DefaultMaxProbes
	}

	n := len(specs)
	choices := make([][]int, n)
	spaceSize := int64(1)
	for i, f := range specs {
		choices[i] = orderForSweep(f.Choices())
		if len(choices[i]) == 0 {
			spaceSize = 0
		} else if spaceSize > 0 && spaceSize <= math.MaxInt64/int64(len(choices[i])) {
			spaceSize *= int64(len(choices[i]))
		} else if spaceSize > 0 {
			spaceSize = math.MaxInt64
		}
	}

	rep := &Report{Dataflow: df.Name(), SpaceSize: spaceSize}
	if spaceSize == 0 {
		// A factor with no candidate values: the space has no points at all.
		rep.Empty, rep.Complete = true, true
		rep.Factors = emptyDomains(specs, choices)
		var r diag.Reporter
		r.Reportf(CodeEmptySpace, diag.Span{}, "",
			"dataflow %s: a factor has no candidate values; the space has no points", df.Name())
		rep.Diagnostics = r.List()
		return rep
	}

	st := &sweep{
		df: df, spec: spec, opts: opt.Core,
		specs: specs, choices: choices,
		witness: make([][]bool, n),
		rejects: make([]map[int]map[string]int, n),
		factors: make(map[string]int, n),
	}
	remaining := 0
	for i := range specs {
		st.witness[i] = make([]bool, len(choices[i]))
		st.rejects[i] = make(map[int]map[string]int, len(choices[i]))
		remaining += len(choices[i])
	}
	st.unwitnessed = remaining

	if spaceSize <= int64(budget) {
		st.exhaust()
		rep.Complete = true
	} else {
		st.sample(budget)
	}
	rep.Probes = st.probes

	// Assemble domains and diagnostics.
	var r diag.Reporter
	anyWitness := false
	rep.KeptSize = 1
	for i, f := range specs {
		dom := Domain{Key: f.Key, Total: f.Total, Kept: []int{}}
		vals := append([]int(nil), choices[i]...)
		sort.Ints(vals)
		for _, v := range vals {
			vi := indexOf(choices[i], v)
			switch {
			case st.witness[i][vi]:
				anyWitness = true
				dom.Kept = append(dom.Kept, v)
			case !rep.Complete:
				// Unwitnessed but unproven: keep (soundness over precision).
				dom.Kept = append(dom.Kept, v)
			default:
				rule := dominantRule(st.rejects[i][vi])
				code, ok := check.RuleCode(rule)
				if !ok {
					code = CodeBuildReject
				}
				dom.Removed = append(dom.Removed, Removal{Value: v, Rule: rule, Code: code})
			}
		}
		if len(dom.Kept) == 0 {
			rep.KeptSize = 0
		} else if rep.KeptSize <= math.MaxInt64/int64(len(dom.Kept)) {
			rep.KeptSize *= int64(len(dom.Kept))
		}
		rep.Factors = append(rep.Factors, dom)
	}
	rep.Empty = rep.Complete && !anyWitness
	if rep.Empty {
		rep.KeptSize = 0
		r.Reportf(CodeEmptySpace, diag.Span{}, "",
			"dataflow %s: all %d assignments of %d factors are rejected (dominant rule %s)",
			df.Name(), rep.Probes, n, dominantRule(st.allRejects))
	} else {
		for _, dom := range rep.Factors {
			for _, rm := range dom.Removed {
				r.Reportf(CodePrunedValue, diag.Span{}, "",
					"factor %s=%d: every completion violates %s [%s]", dom.Key, rm.Value, rm.Rule, rm.Code)
			}
		}
	}
	if !rep.Complete {
		r.Reportf(CodeIncomplete, diag.Span{}, "",
			"space of %d points exceeds the %d-probe budget; %d of %d factor values witnessed feasible, none pruned",
			rep.SpaceSize, budget, remaining-st.unwitnessed, remaining)
	}
	rep.BuildRejects = st.buildFails
	buildAttributed := rep.Empty && dominantRule(st.allRejects) == RuleBuild
	for _, dom := range rep.Factors {
		for _, rm := range dom.Removed {
			if rm.Rule == RuleBuild {
				buildAttributed = true
			}
		}
	}
	if buildAttributed {
		r.Reportf(CodeBuildReject, diag.Span{}, "",
			"%d of %d probed assignments fail to build", st.buildFails, st.probes)
	}
	rep.Diagnostics = r.List()
	return rep
}

// sweep carries the probe state of one analysis.
type sweep struct {
	df      dataflows.Dataflow
	spec    *arch.Spec
	opts    core.Options
	specs   []dataflows.FactorSpec
	choices [][]int

	witness     [][]bool
	rejects     []map[int]map[string]int
	allRejects  map[string]int
	unwitnessed int
	probes      int
	buildFails  int
	factors     map[string]int
}

// probe evaluates one assignment given by per-factor choice indices,
// updating witnesses or rule attributions.
func (st *sweep) probe(idx []int) {
	st.probes++
	clear(st.factors)
	for i, f := range st.specs {
		st.factors[f.Key] = st.choices[i][idx[i]]
	}
	rule := st.verdict()
	if rule == "" {
		for i, vi := range idx {
			if !st.witness[i][vi] {
				st.witness[i][vi] = true
				st.unwitnessed--
			}
		}
		return
	}
	if st.allRejects == nil {
		st.allRejects = map[string]int{}
	}
	st.allRejects[rule]++
	for i, vi := range idx {
		m := st.rejects[i][vi]
		if m == nil {
			m = map[string]int{}
			st.rejects[i][vi] = m
		}
		m[rule]++
	}
}

// verdict evaluates the current factor assignment: "" when the point
// passes every static rule, otherwise the first refuting rule key.
func (st *sweep) verdict() string {
	root, err := st.df.Build(st.factors)
	if err != nil {
		st.buildFails++
		return RuleBuild
	}
	vs := core.AnalyzeStatic(root, st.df.Graph(), st.spec, st.opts)
	if len(vs) == 0 {
		return ""
	}
	return vs[0].Rule
}

// exhaust sweeps the whole product space with an odometer, stopping early
// once every factor value has a feasibility witness (nothing left to
// prune). The per-factor choice lists are pre-ordered low-pressure-first
// (orderForSweep), so under the monotone-increasing resource rules the
// early witnesses arrive in the first corners visited.
func (st *sweep) exhaust() {
	idx := make([]int, len(st.specs))
	for {
		st.probe(idx)
		if st.unwitnessed == 0 {
			return
		}
		// Advance the odometer, last factor fastest.
		i := len(idx) - 1
		for i >= 0 {
			idx[i]++
			if idx[i] < len(st.choices[i]) {
				break
			}
			idx[i] = 0
			i--
		}
		if i < 0 {
			return
		}
	}
}

// sample is the witness-only pass for spaces beyond the probe budget: a
// deterministic PRNG draws assignments (seeded with the template's default
// factors first), marking values seen in accepted points. It never removes
// anything.
func (st *sweep) sample(budget int) {
	if def := st.df.DefaultFactors(); def != nil {
		idx := make([]int, len(st.specs))
		ok := true
		for i, f := range st.specs {
			vi := indexOf(st.choices[i], def[f.Key])
			if vi < 0 {
				ok = false
				break
			}
			idx[i] = vi
		}
		if ok {
			st.probe(idx)
		}
	}
	rng := rand.New(rand.NewSource(1))
	idx := make([]int, len(st.specs))
	for st.probes < budget && st.unwitnessed > 0 {
		for i := range idx {
			idx[i] = rng.Intn(len(st.choices[i]))
		}
		st.probe(idx)
	}
}

// orderForSweep returns the candidate values smallest-first: the probe
// order that reaches low-pressure corners (the likeliest witnesses under
// the monotone-increasing rules) earliest.
func orderForSweep(vals []int) []int {
	out := append([]int(nil), vals...)
	sort.Ints(out)
	return out
}

func indexOf(vals []int, v int) int {
	for i, x := range vals {
		if x == v {
			return i
		}
	}
	return -1
}

// dominantRule picks the most frequent rule of an attribution count map,
// breaking ties toward the lexicographically smallest key so reports are
// deterministic.
func dominantRule(m map[string]int) string {
	best, bestN := "", -1
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if m[k] > bestN {
			best, bestN = k, m[k]
		}
	}
	return best
}

// emptyDomains renders the all-removed domain list for a space with no
// points (a factor had no candidates).
func emptyDomains(specs []dataflows.FactorSpec, choices [][]int) []Domain {
	out := make([]Domain, 0, len(specs))
	for i, f := range specs {
		dom := Domain{Key: f.Key, Total: f.Total, Kept: []int{}}
		for _, v := range choices[i] {
			dom.Removed = append(dom.Removed, Removal{Value: v, Rule: RuleBuild, Code: CodeBuildReject})
		}
		out = append(out, dom)
	}
	return out
}
