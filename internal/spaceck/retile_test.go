package spaceck

import (
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// retileTree is a small valid two-level tiling of the tiny graph:
//
//	r @2:  T(i,2)
//	t1 @1: T(i,2)
//	lf @0: T(i,2) T(k,2)   (i: 2*2*2 = 8 ✓, k: 2 ✓)
func retileTree(g *workload.Graph) *core.Node {
	lf := core.Leaf("lf", g.Op("A"), core.T("i", 2), core.T("k", 2))
	t1 := core.Tile("t1", 1, core.Seq, []core.Loop{core.T("i", 2)}, lf)
	return core.Tile("r", 2, core.Seq, []core.Loop{core.T("i", 2)}, t1)
}

func treeEqual(a, b *core.Node) bool {
	if a.Name != b.Name || a.Level != b.Level || a.Binding != b.Binding ||
		!reflect.DeepEqual(a.Loops, b.Loops) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !treeEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

func TestRetileDefaultsReproduceInput(t *testing.T) {
	g := tinyGraph(8, 2)
	orig := retileTree(g)
	df, err := Retile("rt", orig, g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := df.Build(df.DefaultFactors())
	if err != nil {
		t.Fatal(err)
	}
	if !treeEqual(got, orig) {
		t.Errorf("Build(DefaultFactors()) != input tree:\n got %+v\nwant %+v", got, orig)
	}
}

func TestRetileFactorSpace(t *testing.T) {
	g := tinyGraph(8, 2)
	df, err := Retile("rt", retileTree(g), g)
	if err != nil {
		t.Fatal(err)
	}
	specs := df.Factors()
	// Remainders held back: the leaf's first temporal loop per dim (i and
	// k). Searchable factors: r's T(i), t1's T(i).
	if len(specs) != 2 {
		t.Fatalf("factors = %+v, want 2 (leaf temporal loops are remainders)", specs)
	}
	for _, f := range specs {
		if f.Total != 8 {
			t.Errorf("factor %s total = %d, want 8", f.Key, f.Total)
		}
	}

	// Any dividing assignment rebuilds a coverage-valid tree.
	root, err := df.Build(map[string]int{specs[0].Key: 4, specs[1].Key: 2})
	if err != nil {
		t.Fatal(err)
	}
	if vs := core.AnalyzeStatic(root, g, arch.Edge(), core.Options{}); len(vs) > 0 {
		for _, v := range vs {
			if v.Rule == core.RuleCoverage || v.Rule == core.RuleLoopExtent {
				t.Errorf("retiled tree breaks %s: %v", v.Rule, v.Err)
			}
		}
	}
	// The leaf remainder shrank to cover i: 4*2*rem = 8 → rem = 1.
	lf := root.Children[0].Children[0]
	if lf.Loops[0].Extent != 1 {
		t.Errorf("leaf remainder extent = %d, want 1", lf.Loops[0].Extent)
	}

	// Non-dividing path products fail to build: 4*4 = 16 > 8.
	if _, err := df.Build(map[string]int{specs[0].Key: 4, specs[1].Key: 4}); err == nil {
		t.Error("Build accepted factors multiplying past the dim size")
	}
}

func TestRetileAnalyzeSound(t *testing.T) {
	g := tinyGraph(8, 2)
	df, err := Retile("rt", retileTree(g), g)
	if err != nil {
		t.Fatal(err)
	}
	spec := arch.Edge()
	rep := Analyze(df, spec, Options{})
	if !rep.Complete {
		t.Fatalf("retiling space of %d points should sweep exactly", rep.SpaceSize)
	}
	if rep.Empty {
		t.Fatal("the input tree itself is feasible; space cannot be empty")
	}
	// The defaults (the input tree) must survive narrowing.
	if !rep.Contains(df.DefaultFactors()) {
		t.Errorf("narrowing pruned the input tree's own factors: %+v", rep.Factors)
	}
}

func TestRetileRejectsNilInputs(t *testing.T) {
	g := tinyGraph(8, 2)
	if _, err := Retile("rt", nil, g); err == nil {
		t.Error("nil tree accepted")
	}
	if _, err := Retile("rt", retileTree(g), nil); err == nil {
		t.Error("nil graph accepted")
	}
}

// TestRetileSpatialLoopsAreFactors pins that spatial loops (never
// remainders) become searchable factors even at leaves.
func TestRetileSpatialLoopsAreFactors(t *testing.T) {
	g := tinyGraph(8, 2)
	lf := core.Leaf("lf", g.Op("A"), core.T("i", 2), core.T("k", 2), core.S("i", 2))
	t1 := core.Tile("t1", 1, core.Seq, nil, lf)
	root := core.Tile("r", 2, core.Seq, []core.Loop{core.T("i", 2)}, t1)
	df, err := Retile("rt", root, g)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range df.Factors() {
		if f.Key == "lf.i#2" {
			found = true
		}
	}
	if !found {
		t.Errorf("leaf spatial loop missing from factors: %+v", df.Factors())
	}
}
