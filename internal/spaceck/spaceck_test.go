package spaceck

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/diag"
	"repro/internal/workload"
)

// tinySpec is a 2-PE machine (mesh 1×2, one L1, DRAM) that makes the
// resource rules easy to trip on purpose.
func tinySpec() *arch.Spec {
	return &arch.Spec{
		Name: "tiny",
		Levels: []arch.Level{
			{Name: "Reg", CapacityBytes: 2 << 10, BandwidthGBs: 0, Fanout: 1},
			{Name: "L1", CapacityBytes: 1 << 20, BandwidthGBs: 100, Fanout: 2},
			{Name: "DRAM", CapacityBytes: 0, BandwidthGBs: 10, Fanout: 1},
		},
		MeshX: 1, MeshY: 2,
		FreqGHz:               1,
		WordBytes:             2,
		MACsPerPE:             1,
		VectorLanesPerSubcore: 2,
	}
}

func tinyGraph(i, k int) *workload.Graph {
	op := &workload.Operator{
		Name: "A", Kind: workload.KindMAC,
		Dims: []workload.Dim{{Name: "i", Size: i}, {Name: "k", Size: k}},
		Reads: []workload.Access{
			{Tensor: "Q", Index: []workload.Index{workload.I("i"), workload.I("k")}},
		},
		Write: workload.Access{Tensor: "O", Index: []workload.Index{workload.I("i")}},
	}
	return workload.MustGraph("tiny", workload.WordBytes, op)
}

// tinyTemplate is a two-factor template over the tiny graph: `a` tiles i
// temporally at the root, `b` splits i spatially at the leaf, and the leaf
// absorbs the remainder. Assignments where a·b does not divide i fail to
// build, and b > TotalPEs trips the pe-budget rule for every a.
type tinyTemplate struct {
	g *workload.Graph
	i int
}

func (t *tinyTemplate) Name() string           { return "tiny-template" }
func (t *tinyTemplate) Graph() *workload.Graph { return t.g }
func (t *tinyTemplate) StructureStable() bool  { return true }
func (t *tinyTemplate) Factors() []dataflows.FactorSpec {
	return []dataflows.FactorSpec{
		{Key: "a", Total: t.i, Doc: "temporal i tile at DRAM"},
		{Key: "b", Total: 4, Doc: "spatial i split at the leaf"},
	}
}
func (t *tinyTemplate) DefaultFactors() map[string]int { return map[string]int{"a": 1, "b": 1} }
func (t *tinyTemplate) Build(f map[string]int) (*core.Node, error) {
	a, b := f["a"], f["b"]
	if a < 1 {
		a = 1
	}
	if b < 1 {
		b = 1
	}
	if t.i%(a*b) != 0 {
		return nil, fmt.Errorf("a*b=%d does not divide %d", a*b, t.i)
	}
	op := t.g.Op("A")
	loops := []core.Loop{core.T("i", t.i/(a*b)), core.T("k", 2)}
	if b > 1 {
		loops = append(loops, core.S("i", b))
	}
	leaf := core.Leaf("lf", op, loops...)
	t1 := core.Tile("t1", 1, core.Seq, nil, leaf)
	return core.Tile("r", 2, core.Seq, []core.Loop{core.T("i", a)}, t1), nil
}

// pipelineAccepts runs the real Compile/Evaluate pipeline.
func pipelineAccepts(tb testing.TB, df dataflows.Dataflow, spec *arch.Spec, f map[string]int) bool {
	tb.Helper()
	root, err := df.Build(f)
	if err != nil {
		return false
	}
	_, err = core.EvaluateContext(context.Background(), root, df.Graph(), spec, core.Options{})
	return err == nil
}

func TestAnalyzeNarrowsAndAttributes(t *testing.T) {
	df := &tinyTemplate{g: tinyGraph(8, 2), i: 8}
	spec := tinySpec() // 2 PEs: b=4 is infeasible for every a
	rep := Analyze(df, spec, Options{})

	if !rep.Complete {
		t.Fatalf("space of %d points should be swept exactly", rep.SpaceSize)
	}
	if rep.Empty {
		t.Fatal("space is not empty: a=1,b=1 is valid")
	}
	b := rep.Domain("b")
	if b == nil {
		t.Fatal("no domain for factor b")
	}
	if !reflect.DeepEqual(b.Kept, []int{1, 2}) {
		t.Errorf("b kept = %v, want [1 2]", b.Kept)
	}
	if len(b.Removed) != 1 || b.Removed[0].Value != 4 || b.Removed[0].Rule != core.RulePEBudget {
		t.Errorf("b removed = %+v, want value 4 attributed to %s", b.Removed, core.RulePEBudget)
	}
	if b.Removed[0].Code != "TF-RES-001" {
		t.Errorf("removal code = %s, want TF-RES-001", b.Removed[0].Code)
	}
	a := rep.Domain("a")
	if len(a.Removed) != 0 || len(a.Kept) != 4 {
		t.Errorf("a = %+v, want all 4 divisors kept", a)
	}
	// The pruned value shows up as a positioned TF-SPACE-002 diagnostic.
	found := false
	for _, d := range rep.Diagnostics {
		if d.Code == CodePrunedValue {
			found = true
		}
	}
	if !found {
		t.Errorf("no %s diagnostic in %v", CodePrunedValue, rep.Diagnostics)
	}
	if rep.ExitCode() != 1 {
		t.Errorf("exit code = %d, want 1 (warnings only)", rep.ExitCode())
	}

	// Soundness, the hard way: every pipeline-accepted point of the full
	// space lies inside the narrowed domains.
	for _, a := range dataflows.Divisors(8) {
		for _, b := range dataflows.Divisors(4) {
			f := map[string]int{"a": a, "b": b}
			if pipelineAccepts(t, df, spec, f) && !rep.Contains(f) {
				t.Errorf("false prune: accepted point %v outside domains", f)
			}
		}
	}
}

func TestAnalyzeEmptySpace(t *testing.T) {
	// One PE: even b=1 needs... b=1 is fine; shrink the PE budget to zero
	// by demanding b >= 2 through the template instead — use a graph whose
	// k loop is fine but give the spec a 1-PE mesh and a template always
	// splitting spatially by at least 2.
	df := &alwaysSpatial{g: tinyGraph(8, 2)}
	spec := tinySpec()
	spec.MeshX, spec.MeshY = 1, 1
	spec.Levels[1].Fanout = 1 // keep Validate happy: fanout == mesh
	rep := Analyze(df, spec, Options{})
	if !rep.Empty || !rep.Complete {
		t.Fatalf("want a complete emptiness proof, got empty=%v complete=%v", rep.Empty, rep.Complete)
	}
	if rep.KeptSize != 0 {
		t.Errorf("kept size = %d, want 0", rep.KeptSize)
	}
	found := false
	for _, d := range rep.Diagnostics {
		if d.Code == CodeEmptySpace {
			found = true
		}
	}
	if !found {
		t.Errorf("no %s diagnostic in:\n%s", CodeEmptySpace, rep.Diagnostics)
	}
	if rep.ExitCode() != 2 {
		t.Errorf("exit code = %d, want 2", rep.ExitCode())
	}
}

// alwaysSpatial always splits i spatially by 2: on a 1-PE machine every
// assignment trips pe-budget.
type alwaysSpatial struct{ g *workload.Graph }

func (t *alwaysSpatial) Name() string           { return "always-spatial" }
func (t *alwaysSpatial) Graph() *workload.Graph { return t.g }
func (t *alwaysSpatial) Factors() []dataflows.FactorSpec {
	return []dataflows.FactorSpec{{Key: "a", Total: 4, Doc: "temporal i tile"}}
}
func (t *alwaysSpatial) DefaultFactors() map[string]int { return map[string]int{"a": 1} }
func (t *alwaysSpatial) Build(f map[string]int) (*core.Node, error) {
	a := f["a"]
	if a < 1 {
		a = 1
	}
	op := t.g.Op("A")
	leaf := core.Leaf("lf", op, core.T("i", 8/(2*a)), core.T("k", 2), core.S("i", 2))
	t1 := core.Tile("t1", 1, core.Seq, nil, leaf)
	return core.Tile("r", 2, core.Seq, []core.Loop{core.T("i", a)}, t1), nil
}

func TestAnalyzeBudgetedSpaceRemovesNothing(t *testing.T) {
	df := &tinyTemplate{g: tinyGraph(8, 2), i: 8}
	rep := Analyze(df, tinySpec(), Options{MaxProbes: 3}) // space is 20 points
	if rep.Complete {
		t.Fatal("3-probe budget cannot sweep 20 points")
	}
	for _, d := range rep.Factors {
		if len(d.Removed) != 0 {
			t.Errorf("budgeted pass removed values: %+v", d.Removed)
		}
	}
	found := false
	for _, d := range rep.Diagnostics {
		if d.Code == CodeIncomplete {
			found = true
		}
	}
	if !found {
		t.Errorf("no %s diagnostic", CodeIncomplete)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	df := &tinyTemplate{g: tinyGraph(8, 2), i: 8}
	rep := Analyze(df, tinySpec(), Options{})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := back.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Errorf("round trip changed the encoding:\n%s\n%s", buf.Bytes(), buf2.Bytes())
	}
	// Every diagnostic code is registered.
	for _, d := range back.Diagnostics {
		if _, ok := diag.Lookup(d.Code); !ok {
			t.Errorf("uncoded diagnostic %s", d.Code)
		}
	}
}

func TestAllowedMapAndAllowed(t *testing.T) {
	df := &tinyTemplate{g: tinyGraph(8, 2), i: 8}
	rep := Analyze(df, tinySpec(), Options{})
	m := rep.AllowedMap()
	if !reflect.DeepEqual(m["b"], []int{1, 2}) {
		t.Errorf("AllowedMap b = %v", m["b"])
	}
	if got := rep.Allowed("b", []int{1, 2, 4}); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("Allowed b = %v", got)
	}
	if got := rep.Allowed("nope", []int{7}); !reflect.DeepEqual(got, []int{7}) {
		t.Errorf("unknown key must pass through, got %v", got)
	}
}
