// Package arch describes spatial-accelerator architectures as a hierarchy of
// memory levels feeding a PE array (Fig 1a of the paper), plus the concrete
// specifications used in the evaluation: the Edge and Cloud accelerators of
// Table 4, the TPU-derived validation accelerator of Sec 7.1, and an
// A100-like specification standing in for the GPU of Sec 7.6.
package arch

import (
	"fmt"
	"math"
	"strings"
)

// Level is one storage level of the hierarchy. Levels are ordered from the
// innermost (index 0, the per-PE register file / L0 buffer) to the outermost
// (DRAM). Each level consists of a number of identical instances; transfers
// between a level and the level below it share the level's bandwidth.
type Level struct {
	Name string

	// CapacityBytes is the byte capacity of one instance. Zero means
	// unbounded (DRAM).
	CapacityBytes int64

	// BandwidthGBs is the aggregate bandwidth, in GB/s across the whole
	// chip, for transfers between this level and the level below it.
	// For DRAM this is the off-chip memory bandwidth.
	BandwidthGBs float64

	// Fanout is the number of instances of the level below fed by one
	// instance of this level. For the innermost level it is 1.
	Fanout int
}

// Spec is a complete accelerator specification.
type Spec struct {
	Name string

	// Levels lists the memory hierarchy from innermost (0 = registers at
	// the PEs) to outermost (DRAM).
	Levels []Level

	// MeshX, MeshY give the PE array shape of one innermost compute unit
	// (sub-core). MeshX*MeshY must equal the fanout of the level directly
	// above the registers.
	MeshX, MeshY int

	// FreqGHz is the clock frequency used to convert bandwidths to
	// words/cycle and cycles to wall time.
	FreqGHz float64

	// WordBytes is the data word size (2 bytes / 16 bits throughout the
	// paper).
	WordBytes int

	// MACsPerPE is multiply-accumulates one PE completes per cycle.
	MACsPerPE int

	// VectorLanesPerSubcore is the throughput, in elementwise operations
	// per cycle, of the vector unit attached to one sub-core. Softmax's
	// max/sub/exp/sum/div operators run here.
	VectorLanesPerSubcore int

	// DirectAccess lists level pairs {inner, outer} that can exchange
	// data directly without staging at the levels in between (Sec 5.1.2,
	// Fig 6 bottom: "If level X and level Y has direct access, move data
	// from level X to level Y" — otherwise traffic routes through every
	// intermediate level, which is the common DNN-accelerator design and
	// the default here).
	DirectAccess [][2]int
}

// HasDirectAccess reports whether the inner and outer levels exchange data
// directly. Adjacent levels are always direct.
func (s *Spec) HasDirectAccess(inner, outer int) bool {
	if outer-inner <= 1 {
		return true
	}
	for _, p := range s.DirectAccess {
		if p[0] == inner && p[1] == outer {
			return true
		}
	}
	return false
}

// Validate checks internal consistency of the specification.
func (s *Spec) Validate() error {
	if len(s.Levels) < 2 {
		return fmt.Errorf("arch %q: need at least registers and DRAM, got %d levels", s.Name, len(s.Levels))
	}
	if s.Levels[len(s.Levels)-1].CapacityBytes != 0 {
		return fmt.Errorf("arch %q: outermost level %q must be unbounded DRAM", s.Name, s.Levels[len(s.Levels)-1].Name)
	}
	for i, l := range s.Levels {
		if i > 0 && l.Fanout <= 0 {
			return fmt.Errorf("arch %q: level %q has non-positive fanout", s.Name, l.Name)
		}
		if l.BandwidthGBs <= 0 && i > 0 {
			return fmt.Errorf("arch %q: level %q has non-positive bandwidth", s.Name, l.Name)
		}
	}
	if s.MeshX <= 0 || s.MeshY <= 0 {
		return fmt.Errorf("arch %q: non-positive PE mesh %dx%d", s.Name, s.MeshX, s.MeshY)
	}
	if got := s.Levels[1].Fanout; got != s.MeshX*s.MeshY {
		return fmt.Errorf("arch %q: level %q fanout %d != PE mesh %dx%d", s.Name, s.Levels[1].Name, got, s.MeshX, s.MeshY)
	}
	if s.FreqGHz <= 0 || s.WordBytes <= 0 || s.MACsPerPE <= 0 {
		return fmt.Errorf("arch %q: frequency, word size and MACs/PE must be positive", s.Name)
	}
	return nil
}

// NumLevels is the number of storage levels including registers and DRAM.
func (s *Spec) NumLevels() int { return len(s.Levels) }

// DRAMLevel is the index of the outermost level.
func (s *Spec) DRAMLevel() int { return len(s.Levels) - 1 }

// Instances reports how many instances exist of the given level across the
// whole chip: the product of the fanouts of all levels above it.
func (s *Spec) Instances(level int) int {
	n := 1
	for i := level + 1; i < len(s.Levels); i++ {
		n *= s.Levels[i].Fanout
	}
	return n
}

// TotalPEs is the total number of processing elements on the chip.
func (s *Spec) TotalPEs() int { return s.Instances(0) }

// AggregateMesh views the whole chip's PE array as one logical mesh: the
// per-sub-core meshes arranged in a near-square grid. Cloud's 64 sub-cores
// of 32×32 form the 256×256 array of Table 4; Edge's 4 cores form 64×64.
// Workloads whose spatial parallelism spans sub-cores (convolution channel
// mappings) are bounded by these edges.
func (s *Spec) AggregateMesh() (x, y int) {
	sub := s.TotalPEs() / (s.MeshX * s.MeshY)
	fx := 1
	for fx*fx*4 <= sub {
		fx *= 2
	}
	fy := sub / fx
	if fy < 1 {
		fy = 1
	}
	return s.MeshX * fx, s.MeshY * fy
}

// PeakMACsPerCycle is the chip-wide peak MAC throughput.
func (s *Spec) PeakMACsPerCycle() float64 {
	return float64(s.TotalPEs()) * float64(s.MACsPerPE)
}

// WordsPerCycle converts a level's aggregate bandwidth to words per cycle.
func (s *Spec) WordsPerCycle(level int) float64 {
	return s.Levels[level].BandwidthGBs / s.FreqGHz / float64(s.WordBytes)
}

// CapacityWords is the per-instance capacity of a level in words.
// math.MaxInt64 is returned for unbounded levels.
func (s *Spec) CapacityWords(level int) int64 {
	c := s.Levels[level].CapacityBytes
	if c == 0 {
		return math.MaxInt64
	}
	return c / int64(s.WordBytes)
}

// LevelIndex finds a level by name (case-insensitive), or -1.
func (s *Spec) LevelIndex(name string) int {
	for i, l := range s.Levels {
		if strings.EqualFold(l.Name, name) {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy, for the With* modifiers.
func (s *Spec) Clone() *Spec {
	c := *s
	c.Levels = append([]Level(nil), s.Levels...)
	c.DirectAccess = append([][2]int(nil), s.DirectAccess...)
	return &c
}

// WithDirectAccess returns a copy granting the level pair a direct datapath.
func (s *Spec) WithDirectAccess(inner, outer int) *Spec {
	c := s.Clone()
	c.DirectAccess = append(c.DirectAccess, [2]int{inner, outer})
	return c
}

// WithPEMesh returns a copy with the per-sub-core PE array resized, used by
// the Table 6 PE-size sweep. The fanout of the level above the registers is
// adjusted to match.
func (s *Spec) WithPEMesh(x, y int) *Spec {
	c := s.Clone()
	c.MeshX, c.MeshY = x, y
	c.Levels[1].Fanout = x * y
	c.Name = fmt.Sprintf("%s-pe%dx%d", s.Name, x, y)
	return c
}

// WithLevelCapacity returns a copy with the named level's per-instance
// capacity replaced, used by the Fig 13 L1-size sweep.
func (s *Spec) WithLevelCapacity(name string, bytes int64) *Spec {
	c := s.Clone()
	i := c.LevelIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("arch: no level %q in %q", name, s.Name))
	}
	c.Levels[i].CapacityBytes = bytes
	return c
}

// WithLevelBandwidth returns a copy with the named level's aggregate
// bandwidth replaced, used by the Fig 14 bandwidth sweep.
func (s *Spec) WithLevelBandwidth(name string, gbs float64) *Spec {
	c := s.Clone()
	i := c.LevelIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("arch: no level %q in %q", name, s.Name))
	}
	c.Levels[i].BandwidthGBs = gbs
	return c
}

// String summarizes the spec.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "arch %s: %dx%d PEs/sub-core, %.2f GHz, %dB words\n", s.Name, s.MeshX, s.MeshY, s.FreqGHz, s.WordBytes)
	for i := len(s.Levels) - 1; i >= 0; i-- {
		l := s.Levels[i]
		cap := "inf"
		if l.CapacityBytes > 0 {
			cap = fmt.Sprintf("%dKB", l.CapacityBytes/1024)
		}
		fmt.Fprintf(&b, "  L%d %-6s cap=%s bw=%.1fGB/s fanout=%d instances=%d\n",
			i, l.Name, cap, l.BandwidthGBs, l.Fanout, s.Instances(i))
	}
	return b.String()
}

const (
	kb = int64(1024)
	mb = 1024 * kb
)

// Edge is the Edge accelerator of Table 4: 4 cores, each one sub-core with a
// 32×32 PE array and a 4 MB L1 buffer; 60 GB/s DRAM; 1.2 TB/s aggregate L1
// bandwidth (Sec 7.2).
func Edge() *Spec {
	return &Spec{
		Name: "Edge",
		Levels: []Level{
			{Name: "Reg", CapacityBytes: 2 * kb, BandwidthGBs: 0, Fanout: 1},
			{Name: "L1", CapacityBytes: 4 * mb, BandwidthGBs: 1200, Fanout: 32 * 32},
			{Name: "DRAM", CapacityBytes: 0, BandwidthGBs: 60, Fanout: 4},
		},
		MeshX: 32, MeshY: 32,
		FreqGHz:               1.0,
		WordBytes:             2,
		MACsPerPE:             1,
		VectorLanesPerSubcore: 32,
	}
}

// Cloud is the Cloud accelerator of Table 4: 4 cores, each with a 40 MB L2
// and 16 sub-cores; each sub-core has a 32×32 PE slice of the 256×256 array
// and a 20 MB L1; 384 GB/s DRAM, 1.9 TB/s L2, 9.6 TB/s L1 (Sec 7.3).
func Cloud() *Spec {
	return &Spec{
		Name: "Cloud",
		Levels: []Level{
			{Name: "Reg", CapacityBytes: 2 * kb, BandwidthGBs: 0, Fanout: 1},
			{Name: "L1", CapacityBytes: 20 * mb, BandwidthGBs: 9600, Fanout: 32 * 32},
			{Name: "L2", CapacityBytes: 40 * mb, BandwidthGBs: 1900, Fanout: 16},
			{Name: "DRAM", CapacityBytes: 0, BandwidthGBs: 384, Fanout: 4},
		},
		MeshX: 32, MeshY: 32,
		FreqGHz:               1.0,
		WordBytes:             2,
		MACsPerPE:             1,
		VectorLanesPerSubcore: 32,
	}
}

// Validation is the TPU-derived accelerator implemented in Chisel for model
// validation (Sec 7.1): 4 cores, each with a 16×16 matrix array, a 16×3
// vector array, and 384 KB of on-chip buffer; 25.6 GB/s DRAM; 16-bit words;
// 400 MHz. The cycle-level simulator in internal/sim implements the same
// microarchitecture.
func Validation() *Spec {
	return &Spec{
		Name: "Validation",
		Levels: []Level{
			{Name: "Reg", CapacityBytes: 1 * kb, BandwidthGBs: 0, Fanout: 1},
			{Name: "L1", CapacityBytes: 384 * kb, BandwidthGBs: 409.6, Fanout: 16 * 16},
			{Name: "DRAM", CapacityBytes: 0, BandwidthGBs: 25.6, Fanout: 4},
		},
		MeshX: 16, MeshY: 16,
		FreqGHz:               0.4,
		WordBytes:             2,
		MACsPerPE:             1,
		VectorLanesPerSubcore: 16 * 3,
	}
}

// A100Like is the GPU substitute for the Sec 7.6 experiments: 108 SMs
// modeled as sub-cores with 192 KB of shared memory each (the OOM limit the
// paper's baseline hits at 256k sequence length), a 40 MB L2, and ~2 TB/s of
// HBM bandwidth. Tensor-core compute is modeled as a 32×32 MAC mesh per SM
// at 1.41 GHz, which lands near the A100's 312 TFLOP/s FP16 peak.
func A100Like() *Spec {
	return &Spec{
		Name: "A100",
		Levels: []Level{
			{Name: "Reg", CapacityBytes: 8 * kb, BandwidthGBs: 0, Fanout: 1},
			{Name: "SMEM", CapacityBytes: 192 * kb, BandwidthGBs: 19400, Fanout: 32 * 32},
			{Name: "L2", CapacityBytes: 40 * mb, BandwidthGBs: 4800, Fanout: 108},
			{Name: "DRAM", CapacityBytes: 0, BandwidthGBs: 2039, Fanout: 1},
		},
		MeshX: 32, MeshY: 32,
		FreqGHz:               1.41,
		WordBytes:             2,
		MACsPerPE:             1,
		VectorLanesPerSubcore: 128,
	}
}
