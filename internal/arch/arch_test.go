package arch

import (
	"testing"
	"testing/quick"
)

func TestSpecsValidate(t *testing.T) {
	for _, s := range []*Spec{Edge(), Cloud(), Validation(), A100Like()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestInstancesAndPEs(t *testing.T) {
	e := Edge()
	if got := e.Instances(1); got != 4 {
		t.Errorf("Edge L1 instances = %d, want 4 cores", got)
	}
	if got := e.TotalPEs(); got != 4*32*32 {
		t.Errorf("Edge PEs = %d", got)
	}
	c := Cloud()
	if got := c.Instances(2); got != 4 {
		t.Errorf("Cloud L2 instances = %d, want 4 cores", got)
	}
	if got := c.Instances(1); got != 64 {
		t.Errorf("Cloud L1 instances = %d, want 64 sub-cores", got)
	}
	if got := c.TotalPEs(); got != 256*256 {
		t.Errorf("Cloud PEs = %d, want the Table 4 256x256", got)
	}
}

func TestAggregateMesh(t *testing.T) {
	cases := []struct {
		spec *Spec
		x, y int
	}{
		{Edge(), 64, 64},
		{Cloud(), 256, 256},
		{Validation(), 32, 32},
	}
	for _, c := range cases {
		x, y := c.spec.AggregateMesh()
		if x != c.x || y != c.y {
			t.Errorf("%s aggregate mesh = %dx%d, want %dx%d", c.spec.Name, x, y, c.x, c.y)
		}
		if x*y != c.spec.TotalPEs() {
			t.Errorf("%s aggregate mesh %dx%d != total PEs %d", c.spec.Name, x, y, c.spec.TotalPEs())
		}
	}
}

func TestWordsPerCycle(t *testing.T) {
	e := Edge()
	// 60 GB/s at 1 GHz, 2-byte words = 30 words/cycle.
	if got := e.WordsPerCycle(e.DRAMLevel()); got != 30 {
		t.Errorf("DRAM words/cycle = %v, want 30", got)
	}
	v := Validation()
	// 25.6 GB/s at 0.4 GHz, 2-byte words = 32 words/cycle.
	if got := v.WordsPerCycle(v.DRAMLevel()); got != 32 {
		t.Errorf("validation DRAM words/cycle = %v, want 32", got)
	}
}

func TestModifiers(t *testing.T) {
	base := Edge()
	pe := base.WithPEMesh(16, 16)
	if pe.TotalPEs() != 4*256 {
		t.Errorf("resized PEs = %d", pe.TotalPEs())
	}
	if base.MeshX != 32 {
		t.Error("WithPEMesh mutated the original")
	}
	capd := base.WithLevelCapacity("L1", 1024)
	if capd.Levels[1].CapacityBytes != 1024 || base.Levels[1].CapacityBytes == 1024 {
		t.Error("WithLevelCapacity wrong or mutating")
	}
	bw := base.WithLevelBandwidth("DRAM", 100)
	if bw.Levels[2].BandwidthGBs != 100 || base.Levels[2].BandwidthGBs == 100 {
		t.Error("WithLevelBandwidth wrong or mutating")
	}
	if base.LevelIndex("l1") != 1 || base.LevelIndex("nope") != -1 {
		t.Error("LevelIndex")
	}
}

func TestValidateRejects(t *testing.T) {
	s := Edge()
	s.Levels[2].CapacityBytes = 1 // DRAM must be unbounded
	if err := s.Validate(); err == nil {
		t.Error("want bounded-DRAM error")
	}
	s2 := Edge()
	s2.MeshX = 7 // fanout mismatch
	if err := s2.Validate(); err == nil {
		t.Error("want mesh/fanout mismatch error")
	}
	s3 := Edge()
	s3.Levels = s3.Levels[:1]
	if err := s3.Validate(); err == nil {
		t.Error("want too-few-levels error")
	}
}

// TestPropertyAggregateMeshCoversPEs: for power-of-two sub-core grids the
// aggregate mesh tiles the chip exactly.
func TestPropertyAggregateMeshCoversPEs(t *testing.T) {
	prop := func(cores, meshPow uint8) bool {
		nc := 1 << (int(cores) % 5)     // 1..16 cores
		mesh := 8 << (int(meshPow) % 3) // 8..32
		s := &Spec{
			Name: "t",
			Levels: []Level{
				{Name: "Reg", CapacityBytes: 1024, Fanout: 1},
				{Name: "L1", CapacityBytes: 1 << 20, BandwidthGBs: 100, Fanout: mesh * mesh},
				{Name: "DRAM", BandwidthGBs: 10, Fanout: nc},
			},
			MeshX: mesh, MeshY: mesh,
			FreqGHz: 1, WordBytes: 2, MACsPerPE: 1, VectorLanesPerSubcore: 32,
		}
		if err := s.Validate(); err != nil {
			return false
		}
		x, y := s.AggregateMesh()
		return x*y == s.TotalPEs() && x >= mesh && y >= mesh
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	for _, s := range []*Spec{Edge(), Cloud(), Validation(), A100Like()} {
		text := FormatSpec(s)
		back, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("%s: %v\n%s", s.Name, err, text)
		}
		if FormatSpec(back) != text {
			t.Errorf("%s: round trip changed\n%s\nvs\n%s", s.Name, text, FormatSpec(back))
		}
		if back.TotalPEs() != s.TotalPEs() || back.NumLevels() != s.NumLevels() {
			t.Errorf("%s: structure changed", s.Name)
		}
	}
}

func TestParseSpecExample(t *testing.T) {
	src := `
arch MyEdge
mesh 32 32
freq 1.0
word 2
macs-per-pe 1
vector-lanes 32
# levels innermost first
level Reg  2KB   0    1
level L1   4MB   1200 1024
level DRAM inf   60   4
direct 0 2
`
	s, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "MyEdge" || s.TotalPEs() != 4096 {
		t.Errorf("parsed wrong: %s %d PEs", s.Name, s.TotalPEs())
	}
	if s.Levels[1].CapacityBytes != 4<<20 {
		t.Errorf("L1 capacity = %d", s.Levels[1].CapacityBytes)
	}
	if !s.HasDirectAccess(0, 2) {
		t.Error("direct access not parsed")
	}
	if s.HasDirectAccess(0, 3) {
		t.Error("phantom direct access")
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []string{
		"arch",              // missing name
		"mesh 32",           // missing dim
		"level Reg 2KB 0",   // missing fanout
		"level Reg 2xx 0 1", // bad capacity
		"bogus 1 2 3",       // unknown directive
		"arch x\nmesh 8 8\nlevel Reg 1KB 0 1\nlevel L1 1KB 1 64\nlevel DRAM 1KB 1 1", // bounded DRAM
	}
	for _, src := range cases {
		if _, err := ParseSpec(src); err == nil {
			t.Errorf("want error for %q", src)
		}
	}
}
