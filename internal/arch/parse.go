package arch

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec reads an accelerator description from a simple line-based
// format, mirroring the configuration-file interface the paper's artifact
// exposes ("TileFlow also has a programming interface using configuration
// files"). Example:
//
//	arch MyEdge
//	mesh 32 32
//	freq 1.0
//	word 2
//	macs-per-pe 1
//	vector-lanes 32
//	# levels innermost first: name capacity bandwidthGBs fanout
//	level Reg  2KB   0    1
//	level L1   4MB   1200 1024
//	level DRAM inf   60   4
//	direct 0 2
//
// Capacities accept KB/MB/GB suffixes or "inf" for unbounded (DRAM).
// "direct inner outer" grants a direct datapath between two levels.
func ParseSpec(src string) (*Spec, error) {
	s := &Spec{FreqGHz: 1, WordBytes: 2, MACsPerPE: 1, VectorLanesPerSubcore: 32}
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		bad := func(why string) error {
			return fmt.Errorf("arch: line %d: %s: %q", ln+1, why, line)
		}
		switch fields[0] {
		case "arch":
			if len(fields) != 2 {
				return nil, bad("want 'arch <name>'")
			}
			s.Name = fields[1]
		case "mesh":
			if len(fields) != 3 {
				return nil, bad("want 'mesh <x> <y>'")
			}
			x, errX := strconv.Atoi(fields[1])
			y, errY := strconv.Atoi(fields[2])
			if errX != nil || errY != nil {
				return nil, bad("bad mesh dims")
			}
			s.MeshX, s.MeshY = x, y
		case "freq":
			if len(fields) != 2 {
				return nil, bad("want 'freq <GHz>'")
			}
			f, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, bad("bad frequency")
			}
			s.FreqGHz = f
		case "word":
			if len(fields) != 2 {
				return nil, bad("want 'word <bytes>'")
			}
			w, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, bad("bad word size")
			}
			s.WordBytes = w
		case "macs-per-pe":
			if len(fields) != 2 {
				return nil, bad("want 'macs-per-pe <n>'")
			}
			m, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, bad("bad MACs/PE")
			}
			s.MACsPerPE = m
		case "vector-lanes":
			if len(fields) != 2 {
				return nil, bad("want 'vector-lanes <n>'")
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, bad("bad lane count")
			}
			s.VectorLanesPerSubcore = v
		case "level":
			if len(fields) != 5 {
				return nil, bad("want 'level <name> <capacity> <bwGBs> <fanout>'")
			}
			cap, err := parseCapacity(fields[2])
			if err != nil {
				return nil, bad(err.Error())
			}
			bw, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, bad("bad bandwidth")
			}
			fan, err := strconv.Atoi(fields[4])
			if err != nil {
				return nil, bad("bad fanout")
			}
			s.Levels = append(s.Levels, Level{
				Name: fields[1], CapacityBytes: cap, BandwidthGBs: bw, Fanout: fan,
			})
		case "direct":
			if len(fields) != 3 {
				return nil, bad("want 'direct <inner> <outer>'")
			}
			in, errI := strconv.Atoi(fields[1])
			out, errO := strconv.Atoi(fields[2])
			if errI != nil || errO != nil {
				return nil, bad("bad level indices")
			}
			s.DirectAccess = append(s.DirectAccess, [2]int{in, out})
		default:
			return nil, bad("unknown directive")
		}
	}
	if s.Name == "" {
		s.Name = "custom"
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// parseCapacity reads "384KB", "4MB", "2GB", a plain byte count, or "inf".
func parseCapacity(src string) (int64, error) {
	low := strings.ToLower(src)
	if low == "inf" || low == "0" {
		return 0, nil
	}
	mult := int64(1)
	num := low
	switch {
	case strings.HasSuffix(low, "gb"):
		mult, num = 1<<30, strings.TrimSuffix(low, "gb")
	case strings.HasSuffix(low, "mb"):
		mult, num = 1<<20, strings.TrimSuffix(low, "mb")
	case strings.HasSuffix(low, "kb"):
		mult, num = 1<<10, strings.TrimSuffix(low, "kb")
	case strings.HasSuffix(low, "b"):
		num = strings.TrimSuffix(low, "b")
	}
	v, err := strconv.ParseInt(num, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad capacity %q", src)
	}
	return v * mult, nil
}

// FormatSpec renders a spec back into the ParseSpec format.
func FormatSpec(s *Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "arch %s\n", s.Name)
	fmt.Fprintf(&b, "mesh %d %d\n", s.MeshX, s.MeshY)
	fmt.Fprintf(&b, "freq %g\n", s.FreqGHz)
	fmt.Fprintf(&b, "word %d\n", s.WordBytes)
	fmt.Fprintf(&b, "macs-per-pe %d\n", s.MACsPerPE)
	fmt.Fprintf(&b, "vector-lanes %d\n", s.VectorLanesPerSubcore)
	for _, l := range s.Levels {
		cap := "inf"
		switch {
		case l.CapacityBytes == 0:
		case l.CapacityBytes%(1<<20) == 0:
			cap = fmt.Sprintf("%dMB", l.CapacityBytes>>20)
		case l.CapacityBytes%(1<<10) == 0:
			cap = fmt.Sprintf("%dKB", l.CapacityBytes>>10)
		default:
			cap = fmt.Sprintf("%d", l.CapacityBytes)
		}
		fmt.Fprintf(&b, "level %s %s %g %d\n", l.Name, cap, l.BandwidthGBs, l.Fanout)
	}
	for _, p := range s.DirectAccess {
		fmt.Fprintf(&b, "direct %d %d\n", p[0], p[1])
	}
	return b.String()
}

// StructureSignature renders only the structural skeleton of an
// architecture: the memory hierarchy's level names, each level's fanout,
// and the direct-access edges — with capacities, bandwidths, clocking,
// and datapath scale dropped. Two specs with the same signature accept
// the same mapping encodings (same levels to stage at, same spatial
// splits), which is the compatibility the warm-start library needs: a
// checkpoint donated across such specs transfers encodings that remain
// well-formed, while every capacity- or bandwidth-dependent number is
// recomputed from scratch.
func StructureSignature(s *Spec) string {
	var b strings.Builder
	for _, l := range s.Levels {
		fmt.Fprintf(&b, "level %s %d\n", l.Name, l.Fanout)
	}
	for _, p := range s.DirectAccess {
		fmt.Fprintf(&b, "direct %d %d\n", p[0], p[1])
	}
	return b.String()
}
