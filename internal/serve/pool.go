package serve

import (
	"context"
	"runtime"
	"sync/atomic"
)

// Pool bounds the number of concurrently running evaluations. The HTTP
// layer accepts arbitrarily many connections; analysis work queues here so
// the process never runs more tree traversals than it has cores, and a
// caller whose context expires while queued leaves without running.
type Pool struct {
	sem      chan struct{}
	inFlight atomic.Int64
}

// NewPool sizes the pool to workers slots (GOMAXPROCS when <= 0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Do runs fn in the caller's goroutine once a slot frees up, or returns
// ctx.Err() if the context expires first.
func (p *Pool) Do(ctx context.Context, fn func() error) error {
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	p.inFlight.Add(1)
	defer func() {
		p.inFlight.Add(-1)
		<-p.sem
	}()
	return fn()
}

// InFlight reports how many evaluations hold a slot right now.
func (p *Pool) InFlight() int64 { return p.inFlight.Load() }

// Workers is the slot count.
func (p *Pool) Workers() int { return cap(p.sem) }
