package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/arch"
	"repro/internal/diag"
	"repro/internal/notation"
	"repro/internal/workload"
	"repro/internal/yamlfe"
)

// configFixture renders a matmul design point as a YAML config alongside
// the equivalent notation-route request.
func configFixture(t *testing.T) (string, EvaluateRequest) {
	t.Helper()
	g := workload.Matmul(8, 8, 8)
	root, err := notation.Parse(vetMatmulSrc, g)
	if err != nil {
		t.Fatal(err)
	}
	spec := arch.Edge()
	cfg := yamlfe.Render(spec, g, root)
	ref := EvaluateRequest{
		ArchSpec:     arch.FormatSpec(spec),
		WorkloadSpec: workload.CanonicalGraph(g),
		Notation:     vetMatmulSrc,
	}
	return cfg, ref
}

// TestConfigEvaluate: POST /v1/evaluate with config_yaml answers the same
// result bytes as the equivalent notation-route request.
func TestConfigEvaluate(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	cfg, ref := configFixture(t)

	resp, body := postJSON(t, hs.URL+"/v1/evaluate", &EvaluateRequest{ConfigYAML: cfg})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("config route status %d: %s", resp.StatusCode, body)
	}
	var got EvaluateResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Dataflow != "config" {
		t.Errorf("dataflow = %q, want config", got.Dataflow)
	}

	resp, body = postJSON(t, hs.URL+"/v1/evaluate", &ref)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("notation route status %d: %s", resp.StatusCode, body)
	}
	var want EvaluateResponse
	if err := json.Unmarshal(body, &want); err != nil {
		t.Fatal(err)
	}
	gb, _ := json.Marshal(got.Result)
	wb, _ := json.Marshal(want.Result)
	if string(gb) != string(wb) {
		t.Errorf("config result differs from notation result:\n got %s\nwant %s", gb, wb)
	}
}

// TestConfigVet: /v1/vet accepts config_yaml; a config that fails to load
// is a successful vet whose body carries the positioned TF-YAML codes.
func TestConfigVet(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	cfg, _ := configFixture(t)

	resp, body := postJSON(t, hs.URL+"/v1/vet", &EvaluateRequest{ConfigYAML: cfg})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rep struct {
		Valid       bool      `json:"valid"`
		Diagnostics diag.List `json:"diagnostics"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Valid {
		t.Errorf("clean config vets invalid: %s", body)
	}

	resp, body = postJSON(t, hs.URL+"/v1/vet", &EvaluateRequest{ConfigYAML: "just a scalar"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("broken config: status %d, want 200 (diagnostics are the answer): %s", resp.StatusCode, body)
	}
	rep.Valid = true
	rep.Diagnostics = nil
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Valid {
		t.Errorf("broken config vets valid: %s", body)
	}
	found := false
	for _, d := range rep.Diagnostics {
		if d.Code == yamlfe.CodeKind {
			found = true
			if d.Span.IsZero() {
				t.Error("TF-YAML diagnostic is unpositioned")
			}
		}
	}
	if !found {
		t.Errorf("no %s in vet body: %s", yamlfe.CodeKind, body)
	}
}

// TestConfigInputSelection pins the unified mutual-exclusion check: mixing
// config_yaml with any other input form is a 400 carrying TF-REQ-001, on
// both endpoints.
func TestConfigInputSelection(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	cfg, _ := configFixture(t)
	cases := []struct {
		name string
		req  EvaluateRequest
	}{
		{"config and notation", EvaluateRequest{ConfigYAML: cfg, Notation: "x"}},
		{"config and dataflow", EvaluateRequest{ConfigYAML: cfg, Dataflow: "Layerwise"}},
		{"config and arch", EvaluateRequest{ConfigYAML: cfg, Arch: "edge"}},
		{"config and workload", EvaluateRequest{ConfigYAML: cfg, Workload: "attention:Bert-S"}},
		{"config and tune", EvaluateRequest{ConfigYAML: cfg, Tune: 5}},
		{"config and factors", EvaluateRequest{ConfigYAML: cfg, Factors: map[string]int{"m": 2}}},
		{"nothing at all", EvaluateRequest{}},
	}
	for _, tc := range cases {
		for _, path := range []string{"/v1/evaluate", "/v1/vet"} {
			t.Run(tc.name+path, func(t *testing.T) {
				resp, body := postJSON(t, hs.URL+path, &tc.req)
				if resp.StatusCode != http.StatusBadRequest {
					t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
				}
				var eb struct {
					Error       string    `json:"error"`
					Diagnostics diag.List `json:"diagnostics"`
				}
				if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
					t.Fatalf("error body %s (%v)", body, err)
				}
				found := false
				for _, d := range eb.Diagnostics {
					if d.Code == CodeRequest {
						found = true
					}
				}
				if !found {
					t.Errorf("400 body has no %s: %s", CodeRequest, body)
				}
			})
		}
	}
}

// TestConfigEvaluateInvalid: an invalid config on /v1/evaluate is a coded
// 400, never an uncoded error.
func TestConfigEvaluateInvalid(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, body := postJSON(t, hs.URL+"/v1/evaluate", &EvaluateRequest{ConfigYAML: "just a scalar"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	var eb struct {
		Error       string    `json:"error"`
		Diagnostics diag.List `json:"diagnostics"`
	}
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Fatalf("error body %s (%v)", body, err)
	}
	found := false
	for _, d := range eb.Diagnostics {
		if d.Code == yamlfe.CodeKind {
			found = true
		}
	}
	if !found {
		t.Errorf("400 body carries no TF-YAML code: %s", body)
	}
}
