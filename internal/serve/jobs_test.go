package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// smallSearch is a search small enough for fast tests but with enough
// generations to interrupt mid-run.
func smallSearch() SearchRequest {
	return SearchRequest{
		Arch: "edge", Workload: "attention:Bert-S",
		Population: 4, Generations: 2, TileRounds: 4, TopK: 2, Seed: 3,
	}
}

func getJSON(t testing.TB, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// waitJob polls the job endpoint until pred is satisfied.
func waitJob(t *testing.T, base, id string, pred func(*JobJSON) bool) *JobJSON {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var j JobJSON
		resp := getJSON(t, base+"/v1/jobs/"+id, &j)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job get status %d", resp.StatusCode)
		}
		if pred(&j) {
			return &j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never satisfied predicate; last: %+v", id, j)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func submitJob(t *testing.T, base string, req *SearchRequest) *JobJSON {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/jobs/search", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var j JobJSON
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	if j.ID == "" || j.State != "queued" {
		t.Fatalf("implausible submitted job: %s", body)
	}
	return &j
}

// TestAsyncSearchMatchesSync: a job's result must be byte-identical to the
// synchronous /v1/search answer for the same request, and completing the
// job warms the synchronous cache.
func TestAsyncSearchMatchesSync(t *testing.T) {
	req := smallSearch()

	// Reference from a separate fresh server, so neither path sees the
	// other's cache entries while computing.
	_, ref := newTestServer(t, Config{})
	resp, refBody := postJSON(t, ref.URL+"/v1/search", &req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync status %d: %s", resp.StatusCode, refBody)
	}
	var want SearchResponse
	if err := json.Unmarshal(refBody, &want); err != nil {
		t.Fatal(err)
	}

	_, hs := newTestServer(t, Config{})
	j := submitJob(t, hs.URL, &req)
	done := waitJob(t, hs.URL, j.ID, func(j *JobJSON) bool { return j.State == "done" })
	if done.Attempts != 1 || done.Error != "" {
		t.Fatalf("job finished oddly: %+v", done)
	}
	wantBytes, err := json.Marshal(&want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(done.Result, wantBytes) {
		t.Errorf("async result differs from sync:\nsync  %s\nasync %s", wantBytes, done.Result)
	}
	if done.Progress == nil {
		t.Error("done job has no progress payload")
	} else {
		var p SearchProgress
		if err := json.Unmarshal(done.Progress, &p); err != nil {
			t.Fatal(err)
		}
		if p.Generation != p.Generations || p.BestCycles == nil || *p.BestCycles != want.Cycles {
			t.Errorf("final progress %+v inconsistent with result cycles %g", p, want.Cycles)
		}
	}
	if !done.HasCheckpoint {
		t.Error("done job reports no checkpoint")
	}

	// The job warmed the synchronous search cache.
	resp, body := postJSON(t, hs.URL+"/v1/search", &req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm sync status %d: %s", resp.StatusCode, body)
	}
	var cached SearchResponse
	if err := json.Unmarshal(body, &cached); err != nil {
		t.Fatal(err)
	}
	if !cached.Cached {
		t.Error("sync search after the job was not a cache hit")
	}
	if cached.Cycles != want.Cycles || cached.Encoding != want.Encoding {
		t.Errorf("cached sync answer differs: %g/%s vs %g/%s", cached.Cycles, cached.Encoding, want.Cycles, want.Encoding)
	}

	// The job shows up in the listing.
	var list JobListResponse
	getJSON(t, hs.URL+"/v1/jobs", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != j.ID {
		t.Errorf("job listing wrong: %+v", list)
	}
}

// TestJobEventsSSE: the events endpoint streams the job's history as SSE
// with increasing ids, ending at a terminal state, and honors ?after=.
func TestJobEventsSSE(t *testing.T) {
	req := smallSearch()
	req.Seed = 7 // distinct design point from other tests
	_, hs := newTestServer(t, Config{})
	j := submitJob(t, hs.URL, &req)

	resp, err := http.Get(hs.URL + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	lastID, n := 0, 0
	var lastState string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			var id int
			if _, err := fmt.Sscanf(line, "id: %d", &id); err != nil {
				t.Fatalf("bad id line %q", line)
			}
			if id <= lastID {
				t.Fatalf("SSE ids not increasing: %d after %d", id, lastID)
			}
			lastID = id
		case strings.HasPrefix(line, "data: "):
			n++
			var ev JobJSON
			if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
				t.Fatalf("bad event payload: %v in %q", err, line)
			}
			lastState = ev.State
		}
		if lastState == "done" || lastState == "failed" || lastState == "cancelled" {
			break
		}
	}
	if n == 0 || lastState != "done" {
		t.Fatalf("stream delivered %d events, last state %q; want terminal done", n, lastState)
	}

	// Replay after the last id: nothing new, stream ends immediately.
	resp2, err := http.Get(hs.URL + "/v1/jobs/" + j.ID + "/events?after=" + strconv.Itoa(lastID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	rest, _ := io.ReadAll(resp2.Body)
	if strings.Contains(string(rest), "data: ") {
		t.Errorf("after=%d replayed events: %q", lastID, rest)
	}

	if resp, _ := http.Get(hs.URL + "/v1/jobs/nope/events"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("events for unknown job: status %d", resp.StatusCode)
	}
}

// TestJobCancel: cancelling a running job finalizes it as cancelled and
// keeps its checkpoint.
func TestJobCancel(t *testing.T) {
	req := SearchRequest{
		Arch: "edge", Workload: "attention:Bert-S",
		Population: 10, Generations: 200, TileRounds: 150, TopK: 3, Seed: 11,
	}
	_, hs := newTestServer(t, Config{})
	j := submitJob(t, hs.URL, &req)
	waitJob(t, hs.URL, j.ID, func(j *JobJSON) bool { return j.State == "running" })

	httpReq, err := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+j.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	got := waitJob(t, hs.URL, j.ID, func(j *JobJSON) bool { return j.State == "cancelled" })
	if got.Result != nil {
		t.Errorf("cancelled job has a result: %s", got.Result)
	}

	del, err := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/nope", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown job: status %d", resp.StatusCode)
	}
}

// TestJobSubmitValidation: invalid requests fail at submit time with a
// 400 instead of becoming failed jobs.
func TestJobSubmitValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	bad := SearchRequest{Arch: "edge", Workload: "no-such-workload"}
	resp, _ := postJSON(t, hs.URL+"/v1/jobs/search", &bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad workload: status %d, want 400", resp.StatusCode)
	}
	var list JobListResponse
	getJSON(t, hs.URL+"/v1/jobs", &list)
	if len(list.Jobs) != 0 {
		t.Errorf("rejected submit still created a job: %+v", list)
	}
	if resp := getJSON(t, hs.URL+"/v1/jobs/j00000042", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestJobMetricsScrape: the job gauges appear on /metrics and move with
// the job lifecycle.
func TestJobMetricsScrape(t *testing.T) {
	req := smallSearch()
	req.Seed = 13
	_, hs := newTestServer(t, Config{})
	j := submitJob(t, hs.URL, &req)
	waitJob(t, hs.URL, j.ID, func(j *JobJSON) bool { return j.State == "done" })

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"tileflow_jobs_queue_depth 0\n",
		"tileflow_jobs_running 0\n",
		"tileflow_jobs_completed_total 1\n",
		"tileflow_jobs_failed_total 0\n",
		"tileflow_jobs_cancelled_total 0\n",
		"tileflow_job_checkpoint_age_seconds 0\n",
		`tileflow_requests_total{endpoint="jobs_submit"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestServerRestartRecovery is the second half of the PR's acceptance
// gate: a server killed mid-job recovers the job on restart, resumes it
// from the checkpoint, and produces a result byte-identical to an
// uninterrupted run of the same request.
func TestServerRestartRecovery(t *testing.T) {
	req := SearchRequest{
		Arch: "edge", Workload: "attention:Bert-S",
		// Sized so the search runs long past its first per-generation
		// checkpoint: the batched/delta evaluator clears ~50k evals/sec,
		// so a small request would finish between two 5ms polls and the
		// test could never interrupt it.
		Population: 16, Generations: 96, TileRounds: 120, TopK: 2, Seed: 17,
	}

	// Control: the same job on an undisturbed server.
	ctl := New(Config{})
	ctlHS := httptest.NewServer(ctl.Handler())
	defer ctlHS.Close()
	cj := submitJob(t, ctlHS.URL, &req)
	want := waitJob(t, ctlHS.URL, cj.ID, func(j *JobJSON) bool { return j.State == "done" })

	// Interrupted run: durable store, drain mid-search, reopen.
	dir := t.TempDir()
	s1, err := Open(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(s1.Handler())
	j := submitJob(t, hs1.URL, &req)
	terminal := func(state string) bool {
		return state == "done" || state == "failed" || state == "cancelled"
	}
	interrupted := waitJob(t, hs1.URL, j.ID, func(j *JobJSON) bool {
		return terminal(j.State) || j.HasCheckpoint
	})
	if terminal(interrupted.State) {
		t.Fatalf("search finished before it could be interrupted (%s); enlarge the request", interrupted.State)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Close(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	hs1.Close()

	// "Restart": a new server over the same data dir picks the job up.
	s2, err := Open(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	got := waitJob(t, hs2.URL, j.ID, func(j *JobJSON) bool { return j.State == "done" })
	if got.Attempts < 2 {
		t.Errorf("recovered job ran %d attempts; want ≥ 2 (it must have been interrupted)", got.Attempts)
	}
	if !bytes.Equal(got.Result, want.Result) {
		t.Errorf("recovered result differs from uninterrupted run:\nwant %s\ngot  %s", want.Result, got.Result)
	}
	closeCtx, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := s2.Close(closeCtx); err != nil {
		t.Fatal(err)
	}
}
