package serve

import (
	"errors"
	"fmt"

	"repro/internal/diag"
)

// CodeRequest flags a request that mixes, or names none of, the mutually
// exclusive input forms. It is the one coded rejection shared by
// /v1/evaluate, /v1/vet, and the CLI's flag validation, so every surface
// reports the same TF-REQ-001 for the same mistake.
var CodeRequest = diag.Register(diag.Info{
	Code:  "TF-REQ-001",
	Title: "invalid input selection",
	Hint:  "give exactly one of config_yaml, notation, or dataflow, plus only the fields that form accepts",
})

// requestError is an input-selection mistake: a plain error for the CLI,
// and a carrier of the coded TF-REQ-001 diagnostic for HTTP error bodies.
type requestError struct{ msg string }

func (e *requestError) Error() string { return e.msg }

// Diagnostics renders the mistake as a one-element coded list. Request
// shape has no source position, so the span is zero.
func (e *requestError) Diagnostics() diag.List {
	var r diag.Reporter
	r.Reportf(CodeRequest, diag.Span{}, "", "%s", e.msg)
	return r.List()
}

func reqErrf(format string, args ...any) error {
	return &requestError{msg: fmt.Sprintf(format, args...)}
}

// The three mapping forms a request can select.
const (
	inputConfig   = "config"
	inputNotation = "notation"
	inputDataflow = "dataflow"
)

// SelectInput decides which input form an EvaluateRequest uses and
// enforces their mutual exclusion in one place, for resolve (evaluate),
// vetOne (vet), and the CLI alike. config_yaml is self-contained — it
// carries the architecture, problem, and mapping — so it excludes every
// other design-point field; notation keeps its historical rule of
// excluding templates and tuning.
func SelectInput(req *EvaluateRequest) (string, error) {
	switch {
	case req.ConfigYAML != "":
		switch {
		case req.Notation != "" || req.Dataflow != "":
			return "", reqErrf("config_yaml excludes notation and dataflow")
		case req.Arch != "" || req.ArchSpec != "" || req.Workload != "" || req.WorkloadSpec != "":
			return "", reqErrf("config_yaml is self-contained; drop arch, arch_spec, workload and workload_spec")
		case req.Tune > 0 || len(req.Factors) > 0:
			return "", reqErrf("config_yaml excludes factors and tune")
		}
		return inputConfig, nil
	case req.Notation != "":
		if req.Dataflow != "" || req.Tune > 0 {
			return "", reqErrf("notation excludes dataflow and tune")
		}
		return inputNotation, nil
	case req.Dataflow != "":
		return inputDataflow, nil
	}
	return "", reqErrf("one of config_yaml, notation or dataflow is required")
}

// requestDiagnostics extracts the coded diagnostic from an input-selection
// rejection, unwrapping the HTTP status layer; nil for every other error.
func requestDiagnostics(err error) diag.List {
	var re *requestError
	if errors.As(err, &re) {
		return re.Diagnostics()
	}
	return nil
}
