package serve

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// benchSearch returns a small distinct search per index, so the shared
// caches cannot collapse the fleet into one computation.
func benchSearch(i int) SearchRequest {
	return SearchRequest{
		Arch: "edge", Workload: "attention:Bert-S",
		Population: 4, Generations: 3, TileRounds: 10, TopK: 2,
		Seed: int64(1000 + i),
	}
}

// runJobFleet submits n jobs through the HTTP API and waits for all of
// them to finish, returning the wall time. Evaluation workers are pinned
// to 1 so each search runs serially and the measurement isolates
// job-level concurrency (a production server parallelizes both).
func runJobFleet(tb testing.TB, workers, n int) time.Duration {
	tb.Helper()
	s := New(Config{Workers: 1, JobWorkers: workers})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	start := time.Now()
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		req := benchSearch(i)
		resp, body := postJSON(tb, hs.URL+"/v1/jobs/search", &req)
		if resp.StatusCode != 202 {
			tb.Fatalf("submit status %d: %s", resp.StatusCode, body)
		}
		var j JobJSON
		if err := json.Unmarshal(body, &j); err != nil {
			tb.Fatal(err)
		}
		ids[i] = j.ID
	}
	deadline := time.Now().Add(10 * time.Minute)
	for _, id := range ids {
		for {
			var j JobJSON
			getJSON(tb, hs.URL+"/v1/jobs/"+id, &j)
			if j.State == "done" {
				break
			}
			if j.State == "failed" || j.State == "cancelled" {
				tb.Fatalf("job %s ended %s: %s", id, j.State, j.Error)
			}
			if time.Now().After(deadline) {
				tb.Fatalf("job %s still %s", id, j.State)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return time.Since(start)
}

// BenchmarkJobsThroughput drives the full async pipeline — HTTP submit,
// durable store (memory mode), worker pool, checkpoint persistence per
// generation — with 4 job workers.
func BenchmarkJobsThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		elapsed := runJobFleet(b, 4, 8)
		b.ReportMetric(8/elapsed.Seconds(), "jobs/s")
	}
}

// TestJobsThroughput is the TILEFLOW_BENCH-gated concurrent-jobs
// benchmark: a fleet of distinct search jobs through 4 workers must beat
// the same fleet through 1 worker, and the measurements are written as a
// JSON report (TILEFLOW_BENCH_OUT, default BENCH_PR5.json) for the CI
// artifact.
func TestJobsThroughput(t *testing.T) {
	if os.Getenv("TILEFLOW_BENCH") != "1" {
		t.Skip("set TILEFLOW_BENCH=1 to run the timing assertion")
	}
	const fleet = 12
	serial := runJobFleet(t, 1, fleet)
	concurrent := runJobFleet(t, 4, fleet)
	speedup := serial.Seconds() / concurrent.Seconds()
	t.Logf("fleet of %d jobs: serial %s, 4 workers %s (%.2fx, %.1f jobs/s)",
		fleet, serial, concurrent, speedup, fleet/concurrent.Seconds())
	// On one core, job concurrency cannot buy wall clock; the speedup
	// assertion only means something with real parallel hardware.
	if runtime.NumCPU() >= 2 && speedup < 1.2 {
		t.Errorf("4 job workers only %.2fx faster than 1; the pool is not delivering concurrency", speedup)
	}

	out := os.Getenv("TILEFLOW_BENCH_OUT")
	if out == "" {
		out = "BENCH_PR5.json"
	}
	report := map[string]any{
		"description": "Async search-job subsystem throughput (PR 5). A fleet of distinct small searches (attention:Bert-S, pop=4 gens=3 rounds=10) submitted via POST /v1/jobs/search and driven to completion, including per-generation checkpoint persistence. Serial = 1 job worker, concurrent = 4 job workers, same fleet.",
		"cpu":         cpuModel(),
		"go_bench_cmd": "TILEFLOW_BENCH=1 go test ./internal/serve/ -run TestJobsThroughput -count=1 -v; " +
			"go test ./internal/serve/ -run '^$' -bench BenchmarkJobsThroughput -benchtime 2x",
		"num_cpu":                 runtime.NumCPU(),
		"fleet_jobs":              fleet,
		"serial_seconds":          round3(serial.Seconds()),
		"concurrent_seconds":      round3(concurrent.Seconds()),
		"speedup_4_workers":       round3(speedup),
		"concurrent_jobs_per_sec": round3(fleet / concurrent.Seconds()),
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

func round3(v float64) float64 { return float64(int(v*1000+0.5)) / 1000 }

// cpuModel best-effort reads the CPU model for the report.
func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if strings.HasPrefix(line, "model name") {
				if _, after, ok := strings.Cut(line, ":"); ok {
					return strings.TrimSpace(after)
				}
			}
		}
	}
	return fmt.Sprintf("%s/%s (%d cores)", runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
}
