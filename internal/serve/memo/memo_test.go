package memo

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLRUBasic(t *testing.T) {
	c := NewShardedLRU(64)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("get a = %v, %v", v, ok)
	}
	c.Put("a", 3) // overwrite
	if v, _ := c.Get("a"); v.(int) != 3 {
		t.Fatalf("overwrite lost: %v", v)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("stats %+v", st)
	}
	if c.Len() != 2 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	c := NewShardedLRU(numShards) // one entry per shard
	// Fill one shard far past capacity: only the most recent survives.
	var keys []string
	for i := 0; i < 50; i++ {
		keys = append(keys, fmt.Sprintf("k%d", i))
		c.Put(keys[i], i)
	}
	if c.Len() >= 50 {
		t.Fatalf("no eviction: len %d", c.Len())
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatalf("stats %+v", st)
	}
	// Recency: re-touch a resident key, add another to the same shard, and
	// the touched key must survive within its shard. (Exact residency
	// depends on shard hashing, so just check the global invariants.)
	if c.Len() > numShards {
		t.Fatalf("len %d exceeds capacity %d", c.Len(), numShards)
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := NewShardedLRU(1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%97)
				c.Put(key, i)
				c.Get(key)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() == 0 || c.Len() > 97 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestFlightCacheCollapsesConcurrentCalls(t *testing.T) {
	f := NewFlightCache(nil, 128)
	var executions atomic.Int64
	release := make(chan struct{})
	const n = 20
	var wg sync.WaitGroup
	results := make([]any, n)
	hits := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, hit, err := f.Do(context.Background(), "key", func() (any, error) {
				executions.Add(1)
				<-release // hold the flight open so others pile up
				return "value", nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], hits[i] = v, hit
		}(i)
	}
	close(release)
	wg.Wait()
	if got := executions.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	misses := 0
	for i := range results {
		if results[i].(string) != "value" {
			t.Fatalf("result[%d] = %v", i, results[i])
		}
		if !hits[i] {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d leaders, want 1", misses)
	}
	st := f.Stats()
	if st.Misses != 1 || st.Hits != n-1 {
		t.Fatalf("stats %+v", st)
	}
	// Subsequent call is a plain cache hit.
	if _, hit, _ := f.Do(context.Background(), "key", func() (any, error) { t.Fatal("recomputed"); return nil, nil }); !hit {
		t.Fatal("expected cache hit")
	}
}

func TestFlightCacheErrorNotCached(t *testing.T) {
	f := NewFlightCache(nil, 16)
	boom := fmt.Errorf("boom")
	if _, _, err := f.Do(context.Background(), "k", func() (any, error) { return nil, boom }); err != boom {
		t.Fatalf("err %v", err)
	}
	ran := false
	v, hit, err := f.Do(context.Background(), "k", func() (any, error) { ran = true; return 42, nil })
	if err != nil || hit || !ran || v.(int) != 42 {
		t.Fatalf("retry after error: v=%v hit=%v ran=%v err=%v", v, hit, ran, err)
	}
}
