// Package serve exposes TileFlow's tree-based analysis as a concurrent
// evaluation service: an HTTP/JSON API backed by a bounded worker pool,
// per-request cancellation threaded down into core.EvaluateContext and
// mapper.TreeSearch.RunContext, and a sharded LRU memoization cache keyed
// by a canonical hash of (architecture, workload graph, mapping, options),
// so identical design points — whether re-requested by a client or
// revisited by an outer search loop — are analyzed once.
package serve

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/notation"
	"repro/internal/workload"
	"repro/internal/yamlfe"
)

// EvaluateRequest selects one design point: an architecture, a workload
// graph, and a mapping given either as a named dataflow template with
// tiling factors (optionally mapper-tuned) or as tile-centric notation.
type EvaluateRequest struct {
	// Arch names a built-in accelerator (edge, cloud, validation, a100);
	// ArchSpec supplies an inline spec in arch.ParseSpec format instead.
	Arch     string `json:"arch,omitempty"`
	ArchSpec string `json:"arch_spec,omitempty"`
	// Workload is attention:<Table2 name> or conv:<Table3 name>.
	Workload string `json:"workload,omitempty"`
	// WorkloadSpec supplies an inline workload graph in the
	// workload.CanonicalGraph text format instead of a catalog name; it
	// requires a notation mapping (templates are catalog-shaped).
	WorkloadSpec string `json:"workload_spec,omitempty"`
	// Dataflow names a Table 5 template; Factors overrides its tiling
	// factors (defaults when empty).
	Dataflow string         `json:"dataflow,omitempty"`
	Factors  map[string]int `json:"factors,omitempty"`
	// Notation gives the mapping in the tile-centric DSL instead of a
	// template.
	Notation string `json:"notation,omitempty"`
	// ConfigYAML supplies the whole design point — architecture, problem
	// and mapping — as one Timeloop-style YAML config (internal/yamlfe).
	// It is self-contained and excludes every other design-point field.
	ConfigYAML string `json:"config_yaml,omitempty"`
	// Tune > 0 runs that many MCTS rounds to tune the template's factors
	// before evaluating (deterministic given Seed).
	Tune int   `json:"tune,omitempty"`
	Seed int64 `json:"seed,omitempty"`

	SkipCapacityCheck bool `json:"skip_capacity_check,omitempty"`
	SkipPECheck       bool `json:"skip_pe_check,omitempty"`
	DisableRetention  bool `json:"disable_retention,omitempty"`

	// MaxProbes bounds the design points the /v1/analyze space analyzer
	// evaluates (0 = spaceck.DefaultMaxProbes). Ignored by the other
	// endpoints.
	MaxProbes int `json:"max_probes,omitempty"`

	// TimeoutMS bounds this request below the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// NoCache bypasses the memoization cache (the result is still stored).
	NoCache bool `json:"no_cache,omitempty"`
}

// EvaluateResponse is the service's answer for one design point. The CLI's
// -json mode prints the identical structure, so the two outputs are
// byte-comparable.
type EvaluateResponse struct {
	Workload     string         `json:"workload"`
	Dataflow     string         `json:"dataflow"`
	Arch         string         `json:"arch"`
	Cached       bool           `json:"cached,omitempty"`
	TunedFactors map[string]int `json:"tuned_factors,omitempty"`
	Result       *ResultJSON    `json:"result"`
}

// LevelDMJSON is core.LevelDM tagged with the level name.
type LevelDMJSON struct {
	Level  string  `json:"level"`
	Fill   float64 `json:"fill"`
	Read   float64 `json:"read"`
	Update float64 `json:"update"`
}

// ResultJSON is the machine-readable rendering of core.Result shared by
// the server and the CLI's -json flag.
type ResultJSON struct {
	Cycles             float64                  `json:"cycles"`
	TimeMS             float64                  `json:"time_ms"`
	ComputeCycles      float64                  `json:"compute_cycles"`
	MACs               float64                  `json:"macs"`
	VectorOps          float64                  `json:"vector_ops"`
	DRAMTrafficWords   float64                  `json:"dram_traffic_words"`
	OnChipTrafficWords float64                  `json:"onchip_traffic_words"`
	DM                 []LevelDMJSON            `json:"dm"`
	TensorDM           map[string][]LevelDMJSON `json:"tensor_dm,omitempty"`
	EnergyPJ           float64                  `json:"energy_pj"`
	EnergyPerLevelPJ   []float64                `json:"energy_per_level_pj"`
	ComputeEnergyPJ    float64                  `json:"compute_energy_pj"`
	PEsUsed            int                      `json:"pes_used"`
	TotalPEs           int                      `json:"total_pes"`
	Utilization        float64                  `json:"utilization"`
	UnitUsage          []int                    `json:"unit_usage"`
	FootprintWords     []int64                  `json:"footprint_words"`
	SlowDown           []float64                `json:"slow_down"`
	BandwidthReqGBs    []float64                `json:"bandwidth_req_gbs"`
}

// NewResultJSON converts a core.Result for the given architecture.
func NewResultJSON(res *core.Result, spec *arch.Spec) *ResultJSON {
	dmJSON := func(dm []core.LevelDM) []LevelDMJSON {
		out := make([]LevelDMJSON, len(dm))
		for i, d := range dm {
			out[i] = LevelDMJSON{Level: spec.Levels[i].Name, Fill: d.Fill, Read: d.Read, Update: d.Update}
		}
		return out
	}
	r := &ResultJSON{
		Cycles:             res.Cycles,
		TimeMS:             res.Cycles / (spec.FreqGHz * 1e9) * 1e3,
		ComputeCycles:      res.ComputeCycles,
		MACs:               res.MACs,
		VectorOps:          res.VectorOps,
		DRAMTrafficWords:   res.DRAMTraffic(),
		OnChipTrafficWords: res.OnChipTraffic(),
		DM:                 dmJSON(res.DM),
		EnergyPJ:           res.EnergyPJ(),
		EnergyPerLevelPJ:   res.Energy.PerLevelPJ,
		ComputeEnergyPJ:    res.Energy.ComputePJ,
		PEsUsed:            res.PEsUsed,
		TotalPEs:           res.TotalPEs,
		Utilization:        res.Utilization,
		UnitUsage:          res.UnitUsage,
		FootprintWords:     res.FootprintWords,
		SlowDown:           res.SlowDown,
		BandwidthReqGBs:    res.BandwidthReqGBs,
	}
	if len(res.TensorDM) > 0 {
		r.TensorDM = make(map[string][]LevelDMJSON, len(res.TensorDM))
		for tensor, dm := range res.TensorDM {
			r.TensorDM[tensor] = dmJSON(dm)
		}
	}
	return r
}

// PickArch resolves a built-in accelerator name.
func PickArch(name string) (*arch.Spec, error) {
	switch strings.ToLower(name) {
	case "edge":
		return arch.Edge(), nil
	case "cloud":
		return arch.Cloud(), nil
	case "validation":
		return arch.Validation(), nil
	case "a100":
		return arch.A100Like(), nil
	}
	return nil, fmt.Errorf("unknown arch %q (want edge, cloud, validation or a100)", name)
}

// PickGraph resolves "attention:<name>", "conv:<name>", or
// "matmul:<M>x<N>x<K>" to a workload graph.
func PickGraph(wl string) (*workload.Graph, error) {
	kind, name, ok := strings.Cut(wl, ":")
	if !ok {
		return nil, fmt.Errorf("workload must be attention:<name>, conv:<name>, or matmul:<M>x<N>x<K>")
	}
	switch kind {
	case "matmul":
		dims := strings.Split(name, "x")
		sizes := make([]int, 0, 3)
		for _, d := range dims {
			v, err := strconv.Atoi(d)
			if err != nil || v < 1 {
				sizes = nil
				break
			}
			sizes = append(sizes, v)
		}
		if len(dims) != 3 || len(sizes) != 3 {
			return nil, fmt.Errorf("matmul workload must be matmul:<M>x<N>x<K> with positive sizes")
		}
		return workload.Matmul(sizes[0], sizes[1], sizes[2]), nil
	case "attention":
		shape, ok := workload.AttentionShapeByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown attention shape %q (Table 2 names)", name)
		}
		return workload.Attention(shape), nil
	case "conv":
		shape, ok := workload.ConvChainShapeByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown conv chain %q (Table 3 names)", name)
		}
		return workload.ConvChain(shape), nil
	}
	return nil, fmt.Errorf("unknown workload kind %q", kind)
}

// PickDataflow resolves a Table 5 dataflow template for a workload.
func PickDataflow(df, wl string, spec *arch.Spec) (dataflows.Dataflow, error) {
	kind, name, ok := strings.Cut(wl, ":")
	if !ok {
		return nil, fmt.Errorf("workload must be attention:<name> or conv:<name>")
	}
	switch kind {
	case "attention":
		shape, ok := workload.AttentionShapeByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown attention shape %q (Table 2 names)", name)
		}
		switch df {
		case "Layerwise":
			return dataflows.LayerwiseAttention(shape, spec), nil
		case "Uni-pipe":
			return dataflows.UniPipe(shape, spec), nil
		case "FLAT-MGran":
			return dataflows.FLATMGran(shape, spec), nil
		case "FLAT-BGran":
			return dataflows.FLATBGran(shape, spec), nil
		case "FLAT-HGran":
			return dataflows.FLATHGran(shape, spec), nil
		case "FLAT-RGran":
			return dataflows.FLATRGran(shape, spec), nil
		case "Chimera":
			return dataflows.Chimera(shape, spec), nil
		case "TileFlow":
			return dataflows.TileFlowAttention(shape, spec), nil
		}
		return nil, fmt.Errorf("unknown attention dataflow %q", df)
	case "conv":
		shape, ok := workload.ConvChainShapeByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown conv chain %q (Table 3 names)", name)
		}
		switch df {
		case "Layerwise":
			return dataflows.LayerwiseConv(shape, spec), nil
		case "Fused-Layer":
			return dataflows.FusedLayer(shape, spec), nil
		case "ISOS":
			return dataflows.ISOS(shape, spec), nil
		case "TileFlow":
			return dataflows.TileFlowConv(shape, spec), nil
		}
		return nil, fmt.Errorf("unknown conv dataflow %q", df)
	}
	return nil, fmt.Errorf("unknown workload kind %q", kind)
}

// designPoint is a fully resolved EvaluateRequest.
type designPoint struct {
	spec   *arch.Spec
	g      *workload.Graph
	opts   core.Options
	dfName string

	// Exactly one of the two mapping forms is set: a concrete tree, or a
	// template plus a tuning budget.
	root *core.Node
	df   dataflows.Dataflow
	tune int
	seed int64
}

// resolveArchGraph resolves just an architecture and the full workload
// graph, for search requests that explore mappings rather than name one.
func resolveArchGraph(archName, archSpec, wl string) (*arch.Spec, *workload.Graph, error) {
	var spec *arch.Spec
	var err error
	switch {
	case archSpec != "":
		spec, err = arch.ParseSpec(archSpec)
	case archName != "":
		spec, err = PickArch(archName)
	default:
		err = fmt.Errorf("one of arch or arch_spec is required")
	}
	if err != nil {
		return nil, nil, err
	}
	if wl == "" {
		return nil, nil, fmt.Errorf("workload is required")
	}
	g, err := PickGraph(wl)
	if err != nil {
		return nil, nil, err
	}
	return spec, g, nil
}

// resolve validates an EvaluateRequest against the built-in catalogs and
// parses inline specs and notation.
func resolve(req *EvaluateRequest) (*designPoint, error) {
	dp := &designPoint{
		opts: core.Options{
			SkipCapacityCheck: req.SkipCapacityCheck,
			SkipPECheck:       req.SkipPECheck,
			DisableRetention:  req.DisableRetention,
		},
		tune: req.Tune,
		seed: req.Seed,
	}
	form, err := SelectInput(req)
	if err != nil {
		return nil, err
	}
	if form == inputConfig {
		cfg, err := yamlfe.LoadStrict(req.ConfigYAML)
		if err != nil {
			return nil, err
		}
		dp.spec, dp.g, dp.root = cfg.Spec, cfg.Graph, cfg.Root
		dp.dfName = "config"
		return dp, nil
	}
	switch {
	case req.ArchSpec != "":
		dp.spec, err = arch.ParseSpec(req.ArchSpec)
	case req.Arch != "":
		dp.spec, err = PickArch(req.Arch)
	default:
		err = fmt.Errorf("one of arch or arch_spec is required")
	}
	if err != nil {
		return nil, err
	}
	if req.Workload == "" && req.WorkloadSpec == "" {
		return nil, fmt.Errorf("one of workload or workload_spec is required")
	}
	if req.WorkloadSpec != "" && req.Notation == "" {
		return nil, fmt.Errorf("workload_spec requires a notation mapping (dataflow templates are catalog-shaped)")
	}
	switch form {
	case inputNotation:
		dp.dfName = "notation"
		if req.WorkloadSpec != "" {
			if req.Workload != "" {
				return nil, fmt.Errorf("workload and workload_spec are mutually exclusive")
			}
			dp.g, err = workload.ParseGraph(req.WorkloadSpec)
		} else {
			dp.g, err = PickGraph(req.Workload)
		}
		if err != nil {
			return nil, err
		}
		if dp.root, err = notation.Parse(req.Notation, dp.g); err != nil {
			return nil, err
		}
	case inputDataflow:
		dp.dfName = req.Dataflow
		if dp.df, err = PickDataflow(req.Dataflow, req.Workload, dp.spec); err != nil {
			return nil, err
		}
		// Templates schedule their own graph view (a template may model a
		// sub-graph of the named workload), exactly as the CLI does.
		dp.g = dp.df.Graph()
		if req.Tune <= 0 {
			factors := dp.df.DefaultFactors()
			if len(req.Factors) > 0 {
				factors = req.Factors
			}
			if dp.root, err = dp.df.Build(factors); err != nil {
				return nil, err
			}
		} else if len(req.Factors) > 0 {
			return nil, fmt.Errorf("factors and tune are mutually exclusive")
		}
	}
	return dp, nil
}
