package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/mapper"
)

// pr10BenchOut resolves the shared artifact path for both PR 10 bench
// gates; the two tests merge their sections into one JSON file.
func pr10BenchOut() string {
	if out := os.Getenv("TILEFLOW_SCHED_BENCH_OUT"); out != "" {
		return out
	}
	return "BENCH_PR10.json"
}

// writeBenchSection merges one test's measurements into the shared PR 10
// report, preserving the other test's section if it already ran.
func writeBenchSection(t *testing.T, section string, data map[string]any) {
	t.Helper()
	out := pr10BenchOut()
	report := map[string]any{}
	if b, err := os.ReadFile(out); err == nil {
		json.Unmarshal(b, &report)
	}
	report[section] = data
	report["cpu"] = cpuModel()
	report["num_cpu"] = runtime.NumCPU()
	report["go_bench_cmd"] = "TILEFLOW_BENCH=1 go test ./internal/serve/ -run 'TestSchedulerFairness|TestWarmStartGenerations' -count=1 -v"
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s section %q", out, section)
}

func percentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	return sorted[int(q*float64(len(sorted)-1))]
}

// TestSchedulerFairness is the TILEFLOW_BENCH-gated starvation gate: one
// tenant floods the queue with a saturating bulk sweep, then a second
// tenant submits a handful of interactive searches. Under weighted-fair
// dequeue the interactive jobs must cut the line — their p95 queue wait
// stays below the bulk median — where FIFO would park them behind the
// whole sweep.
func TestSchedulerFairness(t *testing.T) {
	if os.Getenv("TILEFLOW_BENCH") != "1" {
		t.Skip("set TILEFLOW_BENCH=1 to run the fairness assertion")
	}
	const bulkJobs, interJobs = 100, 10
	s := New(Config{Workers: 1, JobWorkers: 2})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	// Submissions go out concurrently: serial HTTP round-trips are as
	// slow as the jobs themselves, and the workers would drain the queue
	// as fast as the test fills it, collapsing every queue wait to noise.
	// Distinct seeds keep the search cache from collapsing the sweep
	// into one evaluation. Queue waits are measured from the server's
	// own CreatedAt/StartedAt stamps, so client timing does not matter.
	submitAll := func(n, seedBase int, tenant, class string) []string {
		ids := make([]string, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				req := SearchRequest{
					Arch: "edge", Workload: "attention:Bert-S",
					Population: 4, Generations: 2, TileRounds: 20, TopK: 2,
					Seed:   int64(seedBase + i),
					Tenant: tenant, Class: class,
				}
				body, err := json.Marshal(&req)
				if err != nil {
					errs[i] = err
					return
				}
				resp, err := http.Post(hs.URL+"/v1/jobs/search", "application/json", bytes.NewReader(body))
				if err != nil {
					errs[i] = err
					return
				}
				defer resp.Body.Close()
				var j JobJSON
				if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
					errs[i] = err
					return
				}
				if resp.StatusCode != http.StatusAccepted {
					errs[i] = fmt.Errorf("submission status %d", resp.StatusCode)
					return
				}
				ids[i] = j.ID
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		return ids
	}

	start := time.Now()
	bulk := submitAll(bulkJobs, 1, "flood", "bulk")
	inter := submitAll(interJobs, 1001, "alice", "interactive")

	wait := func(ids []string) []time.Duration {
		waits := make([]time.Duration, 0, len(ids))
		for _, id := range ids {
			j := waitJob(t, hs.URL, id, func(j *JobJSON) bool { return j.State == "done" })
			if j.StartedAt == nil {
				t.Fatalf("done job %s has no StartedAt", id)
			}
			waits = append(waits, j.StartedAt.Sub(j.CreatedAt))
		}
		return waits
	}
	interWaits := wait(inter)
	bulkWaits := wait(bulk)
	elapsed := time.Since(start)

	interP95 := percentile(interWaits, 0.95)
	bulkP50 := percentile(bulkWaits, 0.50)
	t.Logf("%d bulk + %d interactive jobs in %s: interactive p95 wait %s, bulk p50 wait %s",
		bulkJobs, interJobs, elapsed, interP95, bulkP50)
	// The interactive jobs were submitted LAST, behind the whole sweep:
	// FIFO would give them the worst waits in the system. Weighted-fair
	// dequeue must start them ahead of the median bulk job.
	if interP95 >= bulkP50 {
		t.Errorf("interactive p95 wait %s not below bulk p50 wait %s: bulk sweep starves interactive", interP95, bulkP50)
	}

	writeBenchSection(t, "fairness", map[string]any{
		"description":                "Starvation demo (PR 10): tenant 'flood' submits 100 bulk searches, then tenant 'alice' submits 10 interactive ones. Queue wait = StartedAt - CreatedAt per job; weighted-fair stride dequeue (16/4/1) must start the late interactive jobs ahead of the bulk median.",
		"bulk_jobs":                  bulkJobs,
		"interactive_jobs":           interJobs,
		"interactive_p95_wait_ms":    round3(float64(interP95.Microseconds()) / 1000),
		"interactive_max_wait_ms":    round3(float64(percentile(interWaits, 1.0).Microseconds()) / 1000),
		"bulk_p50_wait_ms":           round3(float64(bulkP50.Microseconds()) / 1000),
		"bulk_max_wait_ms":           round3(float64(percentile(bulkWaits, 1.0).Microseconds()) / 1000),
		"total_elapsed_ms":           round3(float64(elapsed.Microseconds()) / 1000),
		"interactive_below_bulk_p50": interP95 < bulkP50,
	})
}

// TestWarmStartGenerations is the TILEFLOW_BENCH-gated warm-start gate:
// seeding a Bert-L search from a finished Bert-S donor (structurally
// identical, different tensor shapes) must reach the better of the two
// runs' final best qualities in no more generations than the cold run —
// generations-to-target with min(cold final, warm final) as the target.
func TestWarmStartGenerations(t *testing.T) {
	if os.Getenv("TILEFLOW_BENCH") != "1" {
		t.Skip("set TILEFLOW_BENCH=1 to run the warm-start assertion")
	}
	spec := arch.Edge()
	donorG, err := PickGraph("attention:Bert-S")
	if err != nil {
		t.Fatal(err)
	}
	targetG, err := PickGraph("attention:Bert-L")
	if err != nil {
		t.Fatal(err)
	}

	var donorCP *mapper.Checkpoint
	donor := &mapper.TreeSearch{
		G: donorG, Spec: spec,
		Population: 8, Generations: 6, TileRounds: 20, TopK: 2, Parallel: 1, Seed: 11,
		Progress: func(ev mapper.ProgressEvent) { donorCP = ev.Checkpoint },
	}
	if res := donor.Run(); res.Best == nil {
		t.Fatal("donor search found nothing feasible")
	}
	if donorCP == nil {
		t.Fatal("donor produced no checkpoint")
	}

	// A small population over the large Bert encoding space makes the
	// cold run actually climb across generations instead of lucking into
	// its best in the initial draw; the warm run starts from the donor's
	// tuned encodings and should already be at or past the target early.
	newTarget := func() *mapper.TreeSearch {
		return &mapper.TreeSearch{
			G: targetG, Spec: spec,
			Population: 4, Generations: 8, TileRounds: 20, TopK: 2, Parallel: 1, Seed: 12,
		}
	}
	// gensToTarget: first generation whose best-so-far is at or below the
	// target (len+1 = never reached within budget).
	gensToTarget := func(trace []float64, target float64) int {
		for i, c := range trace {
			if c <= target*(1+1e-9) {
				return i + 1
			}
		}
		return len(trace) + 1
	}

	cold := newTarget()
	coldRes := cold.Run()
	if coldRes.Best == nil {
		t.Fatal("cold search found nothing feasible")
	}
	warm := newTarget()
	seeds := warm.WarmStart(donorCP)
	if seeds == 0 {
		t.Fatal("warm start installed no seeds")
	}
	warmRes := warm.Run()
	if warmRes.Best == nil {
		t.Fatal("warm search found nothing feasible")
	}

	// Target = the better final best of the two runs: the quality the
	// search space demonstrably offers under this budget. gens==budget+1
	// means the run never got there at all.
	target := coldRes.Best.Cycles
	if warmRes.Best.Cycles < target {
		target = warmRes.Best.Cycles
	}
	coldGens := gensToTarget(coldRes.Trace, target)
	warmGens := gensToTarget(warmRes.Trace, target)
	t.Logf("target %.4g cycles: cold best %.4g reaches it in %d/%d generations, warm (%d seeds) best %.4g in %d",
		target, coldRes.Best.Cycles, coldGens, len(coldRes.Trace), seeds, warmRes.Best.Cycles, warmGens)
	if warmGens > coldGens {
		t.Errorf("warm start needed %d generations to reach %.4g cycles; cold needed %d", warmGens, target, coldGens)
	}

	writeBenchSection(t, "warm_start", map[string]any{
		"description":                "Warm-start gate (PR 10): a Bert-L search seeded from a finished Bert-S donor checkpoint (same graph structure, different tensor shapes; encodings only, fitness recomputed) must reach the better of the two runs' final best qualities in no more generations than the cold run; generations == budget+1 means never reached within budget.",
		"donor_workload":             donorG.Name,
		"target_workload":            targetG.Name,
		"seeds_installed":            seeds,
		"target_cycles":              target,
		"cold_generations_to_target": coldGens,
		"warm_generations_to_target": warmGens,
		"cold_best_cycles":           coldRes.Best.Cycles,
		"warm_best_cycles":           warmRes.Best.Cycles,
		"generations_budget":         len(coldRes.Trace),
		"warm_not_slower":            warmGens <= coldGens,
	})
}
