package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/workload"
)

const vetMatmulSrc = `leaf mm = op mm { Sp(m:2), m:4, n:8, k:8 }
tile root @L2 = { m:1 } (mm)
`

// TestVetEndpoint checks POST /v1/vet answers with the shared VetReport
// codec, byte-identical to what check.AnalyzeSource + WriteJSON produce —
// which is exactly what `tileflow vet -json` prints.
func TestVetEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	g := workload.Matmul(8, 8, 8)
	canonical := workload.CanonicalGraph(g)

	for _, tc := range []struct {
		name  string
		src   string
		valid bool
		code  diag.Code
	}{
		{"clean mapping", vetMatmulSrc, true, ""},
		{"undertiled", strings.Replace(vetMatmulSrc, "k:8", "k:4", 1), false, check.CodeCoverage},
		{"parse error", "nonsense statement\n", false, "TF-PARSE-001"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req := EvaluateRequest{Arch: "edge", WorkloadSpec: canonical, Notation: tc.src}
			resp, body := postJSON(t, hs.URL+"/v1/vet", &req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			g2, err := workload.ParseGraph(canonical)
			if err != nil {
				t.Fatal(err)
			}
			var want strings.Builder
			rep := check.NewReport(check.AnalyzeSource(tc.src, g2, arch.Edge(), core.Options{}))
			if err := rep.WriteJSON(&want); err != nil {
				t.Fatal(err)
			}
			if string(body) != want.String() {
				t.Errorf("served vet body differs from the CLI codec:\n got %s\nwant %s", body, want.String())
			}
			if rep.Valid != tc.valid {
				t.Errorf("valid = %v, want %v", rep.Valid, tc.valid)
			}
			if tc.code != "" {
				found := false
				for _, d := range rep.Diagnostics {
					if d.Code == tc.code {
						found = true
					}
				}
				if !found {
					t.Errorf("no %s in %s", tc.code, body)
				}
			}
		})
	}
}

// TestVetRequestValidation pins the request-shape 400s of /v1/vet.
func TestVetRequestValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	spec := workload.CanonicalGraph(workload.Matmul(4, 4, 4))
	cases := []struct {
		name string
		req  EvaluateRequest
	}{
		{"no mapping form", EvaluateRequest{Arch: "edge", Workload: "attention:Bert-S"}},
		{"no arch", EvaluateRequest{Workload: "attention:Bert-S", Notation: "x"}},
		{"tune", EvaluateRequest{Arch: "edge", Workload: "attention:Bert-S", Dataflow: "Layerwise", Tune: 5}},
		{"workload and workload_spec", EvaluateRequest{Arch: "edge", Workload: "attention:Bert-S", WorkloadSpec: spec, Notation: "x"}},
		{"unknown arch", EvaluateRequest{Arch: "tpu", Workload: "attention:Bert-S", Notation: "x"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, hs.URL+"/v1/vet", &tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
			}
			var eb struct {
				Error       string    `json:"error"`
				Diagnostics diag.List `json:"diagnostics"`
			}
			if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
				t.Fatalf("error body %s (%v)", body, err)
			}
		})
	}
}

// TestMalformedBody pins the codec's 400 on undecodable JSON, for both the
// evaluate and vet endpoints.
func TestMalformedBody(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	for _, path := range []string{"/v1/evaluate", "/v1/vet"} {
		resp, err := http.Post(hs.URL+path, "application/json", strings.NewReader(`{"arch": edge}`))
		if err != nil {
			t.Fatal(err)
		}
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
		if !strings.Contains(eb.Error, "bad request body") {
			t.Errorf("%s: error = %q", path, eb.Error)
		}
		if len(eb.Diagnostics) != 0 {
			t.Errorf("%s: diagnostics on a codec error: %v", path, eb.Diagnostics)
		}
	}
}

// TestEvaluateErrorCarriesDiagnostics: 400 and 422 rejections from
// /v1/evaluate carry the analyzer's coded diagnostics alongside the error
// string.
func TestEvaluateErrorCarriesDiagnostics(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	canonical := workload.CanonicalGraph(workload.Matmul(8, 8, 8))

	// Structurally invalid: undertiled k → 400 with a positioned TF-TILE-003.
	req := EvaluateRequest{Arch: "edge", WorkloadSpec: canonical,
		Notation: strings.Replace(vetMatmulSrc, "k:8", "k:4", 1)}
	resp, body := postJSON(t, hs.URL+"/v1/evaluate", &req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range eb.Diagnostics {
		if d.Code == check.CodeCoverage {
			found = true
			if d.Span.IsZero() {
				t.Error("coverage diagnostic is unpositioned")
			}
		}
	}
	if !found {
		t.Errorf("400 body has no %s diagnostic: %s", check.CodeCoverage, body)
	}

	// Infeasible: 128×128 spatial fanout on Edge's 4096 PEs → 422 with
	// TF-RES-001.
	big := workload.CanonicalGraph(workload.Matmul(128, 128, 8))
	req = EvaluateRequest{Arch: "edge", WorkloadSpec: big,
		Notation: "leaf mm = op mm { Sp(m:128), Sp(n:128), k:8 }\ntile root @L2 = { m:1 } (mm)\n"}
	resp, body = postJSON(t, hs.URL+"/v1/evaluate", &req)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, body)
	}
	eb = errorBody{}
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	found = false
	for _, d := range eb.Diagnostics {
		if d.Code == check.CodePEBudget {
			found = true
		}
	}
	if !found {
		t.Errorf("422 body has no %s diagnostic: %s", check.CodePEBudget, body)
	}
}
