package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fleetClock is a manually advanced clock shared by every node in a test
// fleet, so lease expiry is driven by the test, not the wall.
type fleetClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFleetClock() *fleetClock {
	return &fleetClock{t: time.Date(2026, 8, 6, 10, 0, 0, 0, time.UTC)}
}

func (c *fleetClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fleetClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// newWorkerNode opens a serve.Server configured as a fleet worker of the
// given coordinator, with cadences shrunk for tests.
func newWorkerNode(t *testing.T, clk *fleetClock, coordinatorURL, node string) *Server {
	t.Helper()
	s, err := Open(Config{
		Clock:          clk.Now,
		JobWorkers:     1,
		Coordinator:    coordinatorURL,
		FleetNode:      node,
		FleetPoll:      2 * time.Millisecond,
		FleetHeartbeat: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func closeNode(t testing.TB, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("close node: %v", err)
	}
}

// readJobEvents replays a job's full SSE history from the given server and
// returns the decoded snapshots, ending at the first terminal event. The
// job must already be terminal.
func readJobEvents(t *testing.T, base, id string) []JobJSON {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var evs []JobJSON
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev JobJSON
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			t.Fatalf("bad event payload %q: %v", line, err)
		}
		evs = append(evs, ev)
		if ev.State == "done" || ev.State == "failed" || ev.State == "cancelled" {
			return evs
		}
	}
	t.Fatalf("event stream ended without a terminal event (%d events)", len(evs))
	return nil
}

// progressSequence extracts the distinct progress payloads from an event
// history, in order. Re-publishes around claims and requeues repeat the
// latest progress, so consecutive duplicates collapse; what remains is the
// generation-by-generation trajectory of the search.
func progressSequence(evs []JobJSON) []string {
	var seq []string
	for _, ev := range evs {
		if len(ev.Progress) == 0 {
			continue
		}
		p := string(ev.Progress)
		if len(seq) == 0 || seq[len(seq)-1] != p {
			seq = append(seq, p)
		}
	}
	return seq
}

// TestFleetMigrationEquivalence is the PR's acceptance gate: a search job
// killed at every generation boundary — each time on a different worker
// process, with failover through lease expiry and the checkpoint handed to
// the next claimant — must produce a result (best, trace) and a progress
// trajectory byte-identical to an uninterrupted single-node run.
func TestFleetMigrationEquivalence(t *testing.T) {
	req := SearchRequest{
		Arch: "edge", Workload: "attention:Bert-S",
		// TileRounds sized so each generation outlasts a 5ms status poll:
		// with the batched/delta evaluator a 50-round generation completes
		// between polls and the boundary-kill choreography can never catch
		// the worker mid-run.
		Population: 8, Generations: 5, TileRounds: 1000, TopK: 2, Seed: 21,
	}

	// Control: the same job, uninterrupted, on a plain single node.
	_, ctlHS := newTestServer(t, Config{})
	cj := submitJob(t, ctlHS.URL, &req)
	want := waitJob(t, ctlHS.URL, cj.ID, func(j *JobJSON) bool { return j.State == "done" })
	wantSeq := progressSequence(readJobEvents(t, ctlHS.URL, cj.ID))
	if len(wantSeq) < req.Generations {
		t.Fatalf("control run published %d progress payloads; want >= %d", len(wantSeq), req.Generations)
	}

	// Fleet: a coordinator that never executes jobs itself, plus a
	// succession of worker processes that each get killed at the next
	// generation boundary.
	clk := newFleetClock()
	coord, err := Open(Config{
		Clock:      clk.Now,
		JobWorkers: -1, // coordinator-only: store and lease, never run
		LeaseTTL:   time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNode(t, coord)
	coordHS := httptest.NewServer(coord.Handler())
	defer coordHS.Close()

	j := submitJob(t, coordHS.URL, &req)
	terminal := func(s string) bool { return s == "done" || s == "failed" || s == "cancelled" }

	workers := 0
	spawn := func() *Server {
		workers++
		return newWorkerNode(t, clk, coordHS.URL, fmt.Sprintf("w%d", workers))
	}
	w := spawn()
	for boundary := 1; boundary < req.Generations; boundary++ {
		// Wait for the running worker to commit the checkpoint at this
		// generation boundary (it may already be past it).
		var prog SearchProgress
		last := waitJob(t, coordHS.URL, j.ID, func(j *JobJSON) bool {
			if terminal(j.State) {
				return true
			}
			if len(j.Progress) == 0 {
				return false
			}
			if err := json.Unmarshal(j.Progress, &prog); err != nil {
				t.Fatalf("bad progress: %v", err)
			}
			return prog.Generation >= boundary && j.HasCheckpoint
		})
		if terminal(last.State) {
			t.Fatalf("search finished (%s) before boundary %d; enlarge the request", last.State, boundary)
		}
		if last.Worker != fmt.Sprintf("w%d", workers) {
			t.Fatalf("job leased to %q at boundary %d; want w%d", last.Worker, boundary, workers)
		}

		// Crash the worker: no release, no complete — its lease just stops
		// being renewed. Failover must come from expiry + sweep.
		w.worker.Kill()
		closeNode(t, w)
		clk.Advance(2 * time.Minute)
		coord.SweepFleet()
		requeued := waitJob(t, coordHS.URL, j.ID, func(j *JobJSON) bool { return j.State == "queued" })
		if !requeued.HasCheckpoint {
			t.Fatal("failover dropped the checkpoint")
		}
		w = spawn()
	}
	got := waitJob(t, coordHS.URL, j.ID, func(j *JobJSON) bool { return terminal(j.State) })
	closeNode(t, w)

	if got.State != "done" {
		t.Fatalf("fleet job ended %s: %s", got.State, got.Error)
	}
	if got.Attempts != workers {
		t.Errorf("fleet job ran %d attempts across %d workers", got.Attempts, workers)
	}
	if fo := coord.coord.Stats().Failovers; fo != uint64(workers-1) {
		t.Errorf("coordinator counted %d failovers; want %d", fo, workers-1)
	}
	if !bytes.Equal(got.Result, want.Result) {
		t.Errorf("migrated result differs from uninterrupted run:\nwant %s\ngot  %s", want.Result, got.Result)
	}
	gotSeq := progressSequence(readJobEvents(t, coordHS.URL, j.ID))
	if len(gotSeq) != len(wantSeq) {
		t.Fatalf("progress trajectory length %d vs control %d:\ngot  %v\nwant %v", len(gotSeq), len(wantSeq), gotSeq, wantSeq)
	}
	for i := range wantSeq {
		if gotSeq[i] != wantSeq[i] {
			t.Errorf("progress payload %d differs:\nwant %s\ngot  %s", i, wantSeq[i], gotSeq[i])
		}
	}
}

// TestFleetFailoverTwoWorkers runs a coordinator with two live worker
// nodes, kills whichever one holds the lease, and checks the survivor
// finishes the job from the checkpoint after the sweep fails it over.
func TestFleetFailoverTwoWorkers(t *testing.T) {
	req := SearchRequest{
		Arch: "edge", Workload: "attention:Bert-S",
		Population: 6, Generations: 8, TileRounds: 40, TopK: 2, Seed: 23,
	}
	clk := newFleetClock()
	coord, err := Open(Config{Clock: clk.Now, JobWorkers: -1, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNode(t, coord)
	coordHS := httptest.NewServer(coord.Handler())
	defer coordHS.Close()

	w1 := newWorkerNode(t, clk, coordHS.URL, "w1")
	w2 := newWorkerNode(t, clk, coordHS.URL, "w2")

	j := submitJob(t, coordHS.URL, &req)
	running := waitJob(t, coordHS.URL, j.ID, func(j *JobJSON) bool {
		return j.State == "running" && j.HasCheckpoint && j.Worker != ""
	})
	owner, survivor := w1, w2
	if running.Worker == "w2" {
		owner, survivor = w2, w1
	}
	owner.worker.Kill()
	closeNode(t, owner)
	clk.Advance(2 * time.Minute)
	coord.SweepFleet()

	got := waitJob(t, coordHS.URL, j.ID, func(j *JobJSON) bool { return j.State == "done" })
	if got.Attempts != 2 {
		t.Errorf("job ran %d attempts; want 2", got.Attempts)
	}

	// The coordinator's /metrics shows the failover and the fleet counters.
	resp, err := http.Get(coordHS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"tileflow_fleet_failovers_total 1\n",
		"tileflow_fleet_claims_total 2\n",
		"tileflow_fleet_completes_total 1\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("coordinator metrics missing %q", want)
		}
	}

	// The survivor's /metrics carries its worker gauges.
	shs := httptest.NewServer(survivor.Handler())
	resp, err = http.Get(shs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	shs.Close()
	stext := string(body)
	node := fmt.Sprintf("node=%q", survivor.cfg.FleetNode)
	for _, want := range []string{
		"tileflow_fleet_worker_claims_total{" + node + "} 1",
		"tileflow_fleet_worker_leases{" + node + "} 0",
	} {
		if !strings.Contains(stext, want) {
			t.Errorf("survivor metrics missing %q", want)
		}
	}
	closeNode(t, survivor)
}

// TestFleetProtocolMounted checks every node answers the peer protocol on
// its main mux (and on the dedicated FleetHandler), so any node can be
// pointed at as a coordinator.
func TestFleetProtocolMounted(t *testing.T) {
	s, hs := newTestServer(t, Config{JobWorkers: -1})
	for _, h := range []string{hs.URL} {
		resp, err := http.Post(h+"/v1/fleet/claim", "application/json", strings.NewReader(`{"node":"x"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Errorf("empty claim on %s: status %d, want 204", h, resp.StatusCode)
		}
	}
	fhs := httptest.NewServer(s.FleetHandler())
	defer fhs.Close()
	resp, err := http.Post(fhs.URL+"/v1/fleet/claim", "application/json", strings.NewReader(`{"node":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("empty claim on fleet listener: status %d, want 204", resp.StatusCode)
	}

	// Stale writes are coded on the wire for workers to distinguish from
	// transient faults.
	j, err := s.store.Create("search", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.store.ClaimID(j.ID, "a", 0); err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"id":%q,"token":99,"state":"done"}`, j.ID)
	resp, err = http.Post(hs.URL+"/v1/fleet/complete", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb struct {
		Code string `json:"code"`
	}
	json.NewDecoder(resp.Body).Decode(&eb)
	if resp.StatusCode != http.StatusConflict || eb.Code != "stale_lease" {
		t.Errorf("stale complete: status %d code %q; want 409 stale_lease", resp.StatusCode, eb.Code)
	}
}

// TestJobEventsReplayAfterCompaction pins the SSE contract once a job's
// event history outgrows the in-memory window: a Last-Event-ID from before
// the window replays from the oldest retained event (ids still increasing),
// and one past the end of a finished job's log ends the stream immediately
// with nothing.
func TestJobEventsReplayAfterCompaction(t *testing.T) {
	const window = 512 // jobs.maxEventHistory
	s, hs := newTestServer(t, Config{JobWorkers: -1})
	j := submitJob(t, hs.URL, func() *SearchRequest { r := smallSearch(); r.Seed = 29; return &r }())

	// Publish far more snapshots than the window holds; no worker runs the
	// job, so the history is exactly what we publish (after the submit
	// event).
	stored, ok := s.store.Get(j.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	const extra = 140
	for i := 0; i < window+extra; i++ {
		snap := stored.Clone()
		snap.Progress = json.RawMessage(fmt.Sprintf(`{"i":%d}`, i))
		s.jobs.Publish(snap)
	}

	// Replay from before the window: the stream starts at the oldest
	// retained event, not at 2, and delivers the full window.
	req, err := http.NewRequest(http.MethodGet, hs.URL+"/v1/jobs/"+j.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "1")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resp, err := http.DefaultClient.Do(req.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	total := 1 + window + extra // submit event + published snapshots
	oldest := total - window + 1
	firstID, n := 0, 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "id: ") {
			var id int
			fmt.Sscanf(line, "id: %d", &id)
			if firstID == 0 {
				firstID = id
			}
			n++
			if id == total {
				break // caught up to everything published
			}
		}
	}
	cancel()
	if firstID != oldest {
		t.Errorf("replay started at id %d; want oldest retained %d", firstID, oldest)
	}
	if n != window {
		t.Errorf("replay delivered %d events; want the full window of %d", n, window)
	}

	// Finish the job, then ask for events past the end: immediate EOF, no
	// data.
	if _, err := s.jobs.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	waitJob(t, hs.URL, j.ID, func(j *JobJSON) bool { return j.State == "cancelled" })
	req2, err := http.NewRequest(http.MethodGet, hs.URL+"/v1/jobs/"+j.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("Last-Event-ID", "999999")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	rest, _ := io.ReadAll(resp2.Body)
	if strings.Contains(string(rest), "data: ") {
		t.Errorf("past-end replay produced events: %q", rest)
	}
}

// TestRetentionSweepServeLevel wires -job-retention through the server: a
// finished job older than the horizon disappears from the API after a
// sweep, newer ones stay.
func TestRetentionSweepServeLevel(t *testing.T) {
	clk := newFleetClock()
	s, err := Open(Config{Clock: clk.Now, JobRetention: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNode(t, s)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	old := submitJob(t, hs.URL, func() *SearchRequest { r := smallSearch(); r.Seed = 31; return &r }())
	waitJob(t, hs.URL, old.ID, func(j *JobJSON) bool { return j.State == "done" })
	clk.Advance(2 * time.Hour)
	fresh := submitJob(t, hs.URL, func() *SearchRequest { r := smallSearch(); r.Seed = 37; return &r }())
	waitJob(t, hs.URL, fresh.ID, func(j *JobJSON) bool { return j.State == "done" })

	if n := s.SweepRetention(); n != 1 {
		t.Fatalf("retention sweep evicted %d jobs; want 1", n)
	}
	if resp := getJSON(t, hs.URL+"/v1/jobs/"+old.ID, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job still answers: status %d", resp.StatusCode)
	}
	if resp := getJSON(t, hs.URL+"/v1/jobs/"+fresh.ID, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("fresh job gone: status %d", resp.StatusCode)
	}
}
