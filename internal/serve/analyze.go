package serve

import (
	"fmt"
	"net/http"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/notation"
	"repro/internal/spaceck"
	"repro/internal/workload"
	"repro/internal/yamlfe"
)

// AnalyzeSpace runs the search-space abstract interpreter over the design
// point a request names: narrowed per-factor domains, rule-attributed
// removals, and an emptiness proof when no assignment is feasible. The
// request selects its input with the same mutual-exclusion rule as evaluate
// and vet (SelectInput). A dataflow form analyzes the named template's own
// factor space; notation and config_yaml forms analyze the retiling space
// of the concrete tree (spaceck.Retile) — every legal reassignment of its
// loop extents. The CLI's `tileflow analyze -json` calls this same
// function, so the two JSON outputs are byte-identical.
func AnalyzeSpace(req *EvaluateRequest) (*spaceck.Report, error) {
	form, err := SelectInput(req)
	if err != nil {
		return nil, badRequest(err)
	}
	if req.Tune > 0 {
		return nil, badRequest(fmt.Errorf("analyze explores the whole factor space; drop tune"))
	}
	if len(req.Factors) > 0 {
		return nil, badRequest(fmt.Errorf("analyze explores the whole factor space; drop factors"))
	}
	opt := spaceck.Options{
		MaxProbes: req.MaxProbes,
		Core: core.Options{
			SkipCapacityCheck: req.SkipCapacityCheck,
			SkipPECheck:       req.SkipPECheck,
			DisableRetention:  req.DisableRetention,
		},
	}
	if form == inputConfig {
		// Analysis needs a loadable design point: unlike vet, a config that
		// fails to load is a bad request (its diagnostics ride the error
		// body), not an analysis answer.
		cfg, err := yamlfe.LoadStrict(req.ConfigYAML)
		if err != nil {
			return nil, badRequest(err)
		}
		df, err := spaceck.Retile("config", cfg.Root, cfg.Graph)
		if err != nil {
			return nil, badRequest(err)
		}
		return spaceck.Analyze(df, cfg.Spec, opt), nil
	}
	var spec *arch.Spec
	switch {
	case req.ArchSpec != "":
		spec, err = arch.ParseSpec(req.ArchSpec)
	case req.Arch != "":
		spec, err = PickArch(req.Arch)
	default:
		err = fmt.Errorf("one of arch or arch_spec is required")
	}
	if err != nil {
		return nil, badRequest(err)
	}
	switch form {
	case inputNotation:
		var g *workload.Graph
		switch {
		case req.WorkloadSpec != "":
			if req.Workload != "" {
				return nil, badRequest(fmt.Errorf("workload and workload_spec are mutually exclusive"))
			}
			g, err = workload.ParseGraph(req.WorkloadSpec)
		case req.Workload != "":
			g, err = PickGraph(req.Workload)
		default:
			err = fmt.Errorf("one of workload or workload_spec is required")
		}
		if err != nil {
			return nil, badRequest(err)
		}
		root, err := notation.Parse(req.Notation, g)
		if err != nil {
			return nil, badRequest(err)
		}
		df, err := spaceck.Retile("notation", root, g)
		if err != nil {
			return nil, badRequest(err)
		}
		return spaceck.Analyze(df, spec, opt), nil
	case inputDataflow:
		df, err := PickDataflow(req.Dataflow, req.Workload, spec)
		if err != nil {
			return nil, badRequest(err)
		}
		return spaceck.Analyze(df, spec, opt), nil
	}
	return nil, badRequest(fmt.Errorf("unreachable input form %q", form))
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("analyze")
	var req EvaluateRequest
	if !s.decode(w, r, &req) {
		return
	}
	report, err := AnalyzeSpace(&req)
	if err != nil {
		s.writeErrorDiags(w, statusFor(err), err, requestDiagnostics(err))
		return
	}
	// Encode with the shared Report codec so the body is byte-identical to
	// `tileflow analyze -json` for the same design point.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	report.WriteJSON(w)
}
