package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// schedJobSet is the mixed-class, multi-tenant workload the determinism
// differential runs on both dequeue policies: every job has its own seed,
// so no two results can collide by accident.
func schedJobSet() []SearchRequest {
	classes := []string{"interactive", "batch", "bulk"}
	reqs := make([]SearchRequest, 6)
	for i := range reqs {
		reqs[i] = SearchRequest{
			Arch: "edge", Workload: "attention:Bert-S",
			Population: 3, Generations: 1, TileRounds: 3, TopK: 2, Seed: int64(i + 1),
			Tenant: fmt.Sprintf("t%d", i%2),
			Class:  classes[i%3],
		}
	}
	return reqs
}

// TestScheduledVsFIFOByteIdentical is the scheduling-independence gate:
// with priority classes active and a per-tenant running quota forcing
// deferrals, every job's result must be byte-identical to the same job
// executed under plain FIFO dequeue. Scheduling may reorder work; it may
// never change what any job computes. Run under -race, this also
// exercises the picker/claim/quota paths for data races.
func TestScheduledVsFIFOByteIdentical(t *testing.T) {
	reqs := schedJobSet()
	run := func(cfg Config) map[int]json.RawMessage {
		_, hs := newTestServer(t, cfg)
		ids := make([]string, len(reqs))
		for i := range reqs {
			ids[i] = submitJob(t, hs.URL, &reqs[i]).ID
		}
		out := map[int]json.RawMessage{}
		for i, id := range ids {
			done := waitJob(t, hs.URL, id, func(j *JobJSON) bool { return j.State == "done" })
			out[i] = done.Result
		}
		return out
	}

	sched := run(Config{JobWorkers: 2, TenantMaxRunning: 1, SchedSeed: 7})
	fifo := run(Config{JobWorkers: 2, DisableScheduler: true})
	for i := range reqs {
		if !bytes.Equal(sched[i], fifo[i]) {
			t.Errorf("job %d result differs between scheduled and FIFO dequeue:\nfifo  %s\nsched %s",
				i, fifo[i], sched[i])
		}
	}
}

// TestTenantQuotaCoded429 drives the admission quota end to end over
// HTTP: the tenant at its active limit gets a 429 carrying the stable
// machine code, other tenants are unaffected, and — because tenant and
// class persist on the job records — the same refusal holds after a
// restart over the durable store.
func TestTenantQuotaCoded429(t *testing.T) {
	dir := t.TempDir()
	// JobWorkers: -1 keeps everything queued, so "active" is fully under
	// the test's control.
	cfg := Config{DataDir: dir, JobWorkers: -1, TenantMaxActive: 2}
	s1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(s1.Handler())

	req := smallSearch()
	req.Tenant = "alice"
	req.Class = "interactive"
	submitJob(t, hs1.URL, &req)
	submitJob(t, hs1.URL, &req)

	resp, body := postJSON(t, hs1.URL+"/v1/jobs/search", &req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submission: status %d body %s", resp.StatusCode, body)
	}
	var eb struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != "tenant_quota_exhausted" || !strings.Contains(eb.Error, `"alice"`) {
		t.Fatalf("quota envelope: %s", body)
	}

	// Another tenant still gets in.
	other := req
	other.Tenant = "bob"
	submitJob(t, hs1.URL, &other)

	// Restart: admission state is derived from the persisted job records,
	// so alice is still at quota with zero extra bookkeeping.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Close(ctx); err != nil {
		t.Fatal(err)
	}
	hs1.Close()
	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	resp, body = postJSON(t, hs2.URL+"/v1/jobs/search", &req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("post-restart submission: status %d body %s", resp.StatusCode, body)
	}
	if err := s2.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestJobSubmitRejectsBadClass: an unknown priority class is a 400 at
// submission, not a failed job later.
func TestJobSubmitRejectsBadClass(t *testing.T) {
	_, hs := newTestServer(t, Config{JobWorkers: -1})
	req := smallSearch()
	req.Class = "platinum"
	resp, body := postJSON(t, hs.URL+"/v1/jobs/search", &req)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "platinum") {
		t.Fatalf("bad class: status %d body %s", resp.StatusCode, body)
	}
}

// TestWarmStartAcrossJobs: a finished search registers in the warm
// library under its structure-only key, and a later warm_start job over
// a shape variant of the same structure finds and uses it. The job's
// snapshot carries tenant/class/attempt metadata through the API.
func TestWarmStartAcrossJobs(t *testing.T) {
	s, hs := newTestServer(t, Config{})

	donor := SearchRequest{
		Arch: "edge", Workload: "attention:Bert-S",
		Population: 4, Generations: 2, TileRounds: 4, TopK: 2, Seed: 1,
		Tenant: "alice", Class: "batch", MaxAttempts: 3,
	}
	dj := submitJob(t, hs.URL, &donor)
	if dj.Tenant != "alice" || dj.Class != "batch" || dj.MaxAttempts != 3 {
		t.Fatalf("scheduling attributes lost in snapshot: %+v", dj)
	}
	waitJob(t, hs.URL, dj.ID, func(j *JobJSON) bool { return j.State == "done" })
	if st := s.warm.Stats(); st.Puts == 0 {
		t.Fatalf("donor did not register in the warm library: %+v", st)
	}

	// Structure-identical, shape-different target.
	target := SearchRequest{
		Arch: "edge", Workload: "attention:Bert-L",
		Population: 4, Generations: 2, TileRounds: 4, TopK: 2, Seed: 2,
		WarmStart: true,
	}
	tj := submitJob(t, hs.URL, &target)
	done := waitJob(t, hs.URL, tj.ID, func(j *JobJSON) bool { return j.State == "done" })
	if done.Error != "" {
		t.Fatalf("warm-started job failed: %s", done.Error)
	}
	if st := s.warm.Stats(); st.Hits == 0 {
		t.Fatalf("warm_start job never consulted the library: %+v", st)
	}
}

// TestFleetNodesEndpoint: the inventory distinguishes a node that polls
// an empty queue (idle: recent heartbeat, no leases) from one that holds
// a lease (busy), and /metrics carries the per-node heartbeat-age gauge.
func TestFleetNodesEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{JobWorkers: -1})

	var nodes struct {
		Nodes []struct {
			Node       string  `json:"node"`
			AgeSeconds float64 `json:"age_seconds"`
			Leases     int     `json:"leases_held"`
			State      string  `json:"state"`
		} `json:"nodes"`
	}
	getJSON(t, hs.URL+"/v1/fleet/nodes", &nodes)
	if len(nodes.Nodes) != 0 {
		t.Fatalf("fresh coordinator knows nodes: %+v", nodes.Nodes)
	}

	// An empty-queue claim poll is still node contact: w1 shows up idle.
	resp, body := postJSON(t, hs.URL+"/v1/fleet/claim", map[string]string{"node": "w1"})
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("claim on empty queue: status %d body %s", resp.StatusCode, body)
	}
	// With a job queued, w2's claim grants a lease: busy.
	req := smallSearch()
	submitJob(t, hs.URL, &req)
	resp, body = postJSON(t, hs.URL+"/v1/fleet/claim", map[string]string{"node": "w2"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("claim with queued job: status %d body %s", resp.StatusCode, body)
	}

	getJSON(t, hs.URL+"/v1/fleet/nodes", &nodes)
	states := map[string]string{}
	leases := map[string]int{}
	for _, n := range nodes.Nodes {
		states[n.Node] = n.State
		leases[n.Node] = n.Leases
	}
	if states["w1"] != "idle" || states["w2"] != "busy" || leases["w2"] != 1 {
		t.Fatalf("inventory: %+v", nodes.Nodes)
	}

	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mb, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(mb)
	for _, want := range []string{
		`tileflow_fleet_node_heartbeat_age_seconds{node="w1",state="idle"}`,
		`tileflow_fleet_node_heartbeat_age_seconds{node="w2",state="busy"}`,
		`tileflow_fleet_node_leases_held{node="w2"} 1`,
		"tileflow_sched_picks_total{class=\"batch\"}",
		"tileflow_jobs_poisoned_total 0",
		"tileflow_warmstart_entries 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
