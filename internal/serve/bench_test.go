package serve

import (
	"context"
	"testing"
)

var benchReq = EvaluateRequest{Arch: "edge", Workload: "attention:Bert-S", Dataflow: "FLAT-RGran"}

// BenchmarkEvaluateCold measures the full pipeline with the cache
// bypassed: resolve, canonical key, tree evaluation, response build.
func BenchmarkEvaluateCold(b *testing.B) {
	s := New(Config{})
	req := benchReq
	req.NoCache = true
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.evaluateOne(ctx, &req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateCached measures the repeat-request path: request key
// lookup, cache lookup, pre-serialized response. Compare against
// BenchmarkEvaluateCold for the memoization speedup.
func BenchmarkEvaluateCached(b *testing.B) {
	s := New(Config{})
	ctx := context.Background()
	req := benchReq
	if _, _, err := s.evaluateOne(ctx, &req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, _, err := s.evaluateOne(ctx, &req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Cached {
			b.Fatal("request not served from cache")
		}
	}
}
