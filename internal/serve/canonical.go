package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/notation"
	"repro/internal/workload"
)

// Canonical keys identify design points independently of how a request
// spelled them: the architecture is rendered through arch.FormatSpec, the
// workload graph through a sorted structural dump, and the mapping through
// the tile-centric notation — so a design point reached via a named
// template with explicit factors and the same point written directly in
// the DSL hash to the same key and share one cache entry. The key is the
// hex SHA-256 of that canonical text.

// EvaluateKey is the canonical cache key for one fully specified design
// point (a concrete analysis tree).
func EvaluateKey(spec *arch.Spec, g *workload.Graph, root *core.Node, opts core.Options) string {
	var b strings.Builder
	b.WriteString("tileflow/v1/evaluate\n")
	writeCommon(&b, spec, g, opts)
	b.WriteString("mapping:\n")
	b.WriteString(notation.Print(root))
	return digest(b.String())
}

// tunedKey is the canonical key for a template request whose factors are
// chosen by the mapper: the mapping is determined by (template, budget,
// seed) rather than a concrete tree.
func tunedKey(spec *arch.Spec, g *workload.Graph, dfName string, tune int, seed int64, opts core.Options) string {
	var b strings.Builder
	b.WriteString("tileflow/v1/evaluate-tuned\n")
	writeCommon(&b, spec, g, opts)
	fmt.Fprintf(&b, "template: %s tune=%d seed=%d\n", dfName, tune, seed)
	return digest(b.String())
}

// searchKey is the canonical key for a 3D design-space search request.
func searchKey(spec *arch.Spec, g *workload.Graph, pop, gens, tileRounds, topK int, seed int64, opts core.Options) string {
	var b strings.Builder
	b.WriteString("tileflow/v1/search\n")
	writeCommon(&b, spec, g, opts)
	fmt.Fprintf(&b, "search: pop=%d gens=%d tile=%d topk=%d seed=%d\n", pop, gens, tileRounds, topK, seed)
	return digest(b.String())
}

// programKey is the canonical key of a compiled core.Program: the
// structure-only prefix of a design point — architecture, workload graph
// and the tree's structure signature, with no tiling factors and no
// evaluation options (a Program is options-independent). Requests that
// differ only in tiling or options share one compiled Program under it.
func programKey(spec *arch.Spec, g *workload.Graph, root *core.Node) string {
	var b strings.Builder
	b.WriteString("tileflow/v1/program\n")
	b.WriteString("arch:\n")
	b.WriteString(arch.FormatSpec(spec))
	b.WriteString("graph:\n")
	b.WriteString(workload.CanonicalGraph(g))
	b.WriteString("structure:\n")
	b.WriteString(core.StructureSignature(root))
	return digest(b.String())
}

func writeCommon(b *strings.Builder, spec *arch.Spec, g *workload.Graph, opts core.Options) {
	b.WriteString("arch:\n")
	b.WriteString(arch.FormatSpec(spec))
	b.WriteString("graph:\n")
	b.WriteString(workload.CanonicalGraph(g))
	fmt.Fprintf(b, "options: skipcap=%v skippe=%v noretention=%v\n",
		opts.SkipCapacityCheck, opts.SkipPECheck, opts.DisableRetention)
}

func digest(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// warmKey is the structure-only canonical prefix used by the warm-start
// checkpoint library: architecture levels (names/fanout, no capacities)
// plus the workload graph's operator/tensor structure (dimension names,
// no sizes). Two design points that differ only in tensor shapes —
// e.g. Bert-S vs Bert-L attention on the same machine — share one key,
// so a finished search on one can seed the GA population of the other.
// Anything affecting fitness (shapes, capacities, options, seed) is
// deliberately excluded: only encodings are transferred under this key,
// never fitness values.
func warmKey(spec *arch.Spec, g *workload.Graph) string {
	var b strings.Builder
	b.WriteString("tileflow/v1/warmstart\n")
	b.WriteString("arch-structure:\n")
	b.WriteString(arch.StructureSignature(spec))
	b.WriteString("graph-structure:\n")
	b.WriteString(workload.StructureSignature(g))
	return digest(b.String())
}
