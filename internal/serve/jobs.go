package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/mapper"
	"repro/internal/memo"
)

// searchJobKind tags search jobs in the store; future job kinds dispatch
// on it.
const searchJobKind = "search"

// SearchProgress is the progress payload attached to a running search
// job: how far the GA is and the best design point so far. BestCycles is
// omitted until the first feasible candidate (its value would be +Inf,
// which JSON cannot carry).
type SearchProgress struct {
	Generation  int      `json:"generation"`
	Generations int      `json:"generations"`
	BestCycles  *float64 `json:"best_cycles,omitempty"`
	BestEncoding string  `json:"best_encoding,omitempty"`
}

// runSearchJob is the jobs.Runner for searchJobKind on this node's own
// worker pool, searching against the local service cache.
func (s *Server) runSearchJob(ctx context.Context, job *jobs.Job, upd func(progress, checkpoint json.RawMessage)) (json.RawMessage, error) {
	return s.runSearch(ctx, job, upd, s.cache)
}

// runSearch replays the synchronous /v1/search pipeline asynchronously,
// reusing the given fitness cache (the local service cache, or the fleet's
// remote write-through tier on a worker node) and the shared worker width,
// checkpointing at every generation boundary, and resuming from
// job.Checkpoint when present. On success it also warms the synchronous
// search cache, so a later POST /v1/search for the same point is a hit.
func (s *Server) runSearch(ctx context.Context, job *jobs.Job, upd func(progress, checkpoint json.RawMessage), cache memo.Cache) (json.RawMessage, error) {
	var req SearchRequest
	if err := json.Unmarshal(job.Request, &req); err != nil {
		return nil, fmt.Errorf("bad search request: %w", err)
	}
	spec, g, err := resolveArchGraph(req.Arch, req.ArchSpec, req.Workload)
	if err != nil {
		return nil, err
	}
	opts := core.Options{
		SkipCapacityCheck: req.SkipCapacityCheck,
		SkipPECheck:       req.SkipPECheck,
		DisableRetention:  req.DisableRetention,
	}
	ts := &mapper.TreeSearch{
		G: g, Spec: spec, Opts: opts,
		Population: req.Population, Generations: req.Generations,
		TileRounds: req.TileRounds, TopK: req.TopK,
		Parallel: s.pool.Workers(), Seed: req.Seed,
		Cache: cache,
	}
	if len(job.Checkpoint) > 0 {
		// A checkpoint that no longer matches (deploy changed defaults,
		// hand-edited store) must not poison the job: fall back to a fresh
		// start, which is always correct, just slower.
		if cp, err := mapper.DecodeCheckpoint(job.Checkpoint); err == nil {
			ts.Resume(cp)
		}
	}
	ts.Progress = func(p mapper.ProgressEvent) {
		prog := SearchProgress{
			Generation:   p.Generation,
			Generations:  p.Generations,
			BestEncoding: p.BestEncoding,
		}
		if !math.IsInf(p.BestCycles, 0) {
			c := p.BestCycles
			prog.BestCycles = &c
		}
		pb, err := json.Marshal(&prog)
		if err != nil {
			return
		}
		cb, err := mapper.EncodeCheckpoint(p.Checkpoint)
		if err != nil {
			return
		}
		upd(pb, cb)
	}

	res := ts.RunContext(ctx)
	if err := context.Cause(ctx); err != nil {
		// Cancelled or draining: the manager decides the final state from
		// the cause; the latest checkpoint is already persisted.
		return nil, err
	}
	if res.Best == nil {
		return nil, unprocessable(fmt.Errorf("no valid dataflow found for %s on %s", g.Name, spec.Name))
	}
	resp, err := NewSearchResponse(g, spec, res, false)
	if err != nil {
		return nil, err
	}
	key := searchKey(spec, g, req.Population, req.Generations, req.TileRounds, req.TopK, req.Seed, opts)
	s.cache.Put(key, resp)
	b, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// JobJSON is the API view of a job. Result is the full SearchResponse of
// a done job; Progress is a SearchProgress while running. The raw
// checkpoint stays server-side — clients only see that (and when) one
// exists.
type JobJSON struct {
	ID            string          `json:"id"`
	Kind          string          `json:"kind"`
	State         string          `json:"state"`
	CreatedAt     time.Time       `json:"created_at"`
	StartedAt     *time.Time      `json:"started_at,omitempty"`
	FinishedAt    *time.Time      `json:"finished_at,omitempty"`
	Attempts      int             `json:"attempts,omitempty"`
	// Worker names the node whose lease the job is running under; empty
	// unless running. "local" is this process's own worker pool.
	Worker        string          `json:"worker,omitempty"`
	Progress      json.RawMessage `json:"progress,omitempty"`
	HasCheckpoint bool            `json:"has_checkpoint,omitempty"`
	CheckpointAt  *time.Time      `json:"checkpoint_at,omitempty"`
	Result        json.RawMessage `json:"result,omitempty"`
	Error         string          `json:"error,omitempty"`
}

// NewJobJSON converts a stored job to its API view.
func NewJobJSON(j *jobs.Job) *JobJSON {
	v := &JobJSON{
		ID:            j.ID,
		Kind:          j.Kind,
		State:         string(j.State),
		CreatedAt:     j.CreatedAt,
		Attempts:      j.Attempts,
		Progress:      j.Progress,
		HasCheckpoint: len(j.Checkpoint) > 0,
		Result:        j.Result,
		Error:         j.Error,
	}
	if j.Lease != nil {
		v.Worker = j.Lease.Owner
	}
	if !j.StartedAt.IsZero() {
		t := j.StartedAt
		v.StartedAt = &t
	}
	if !j.FinishedAt.IsZero() {
		t := j.FinishedAt
		v.FinishedAt = &t
	}
	if !j.CheckpointAt.IsZero() {
		t := j.CheckpointAt
		v.CheckpointAt = &t
	}
	return v
}

// handleJobSubmit answers POST /v1/jobs/search: validate eagerly (a bad
// request earns a 400 now, not a failed job later), then enqueue and
// return 202 with the job snapshot.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("jobs_submit")
	var req SearchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if _, _, err := resolveArchGraph(req.Arch, req.ArchSpec, req.Workload); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	body, err := json.Marshal(&req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.jobs.Submit(searchJobKind, body)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, jobs.ErrDraining) {
			status = http.StatusServiceUnavailable
		}
		s.writeError(w, status, err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, NewJobJSON(j))
}

// JobListResponse answers GET /v1/jobs.
type JobListResponse struct {
	Jobs []*JobJSON `json:"jobs"`
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("jobs_list")
	all := s.jobs.List()
	out := &JobListResponse{Jobs: make([]*JobJSON, len(all))}
	for i, j := range all {
		out.Jobs[i] = NewJobJSON(j)
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("jobs_get")
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no job %s", r.PathValue("id")))
		return
	}
	s.writeJSON(w, http.StatusOK, NewJobJSON(j))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("jobs_cancel")
	j, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	s.writeJSON(w, http.StatusOK, NewJobJSON(j))
}

// handleJobEvents answers GET /v1/jobs/{id}/events with a Server-Sent
// Events stream of job snapshots: the full history first (or the part
// after ?after=N / Last-Event-ID), then live updates until the job
// reaches a terminal state or the client goes away.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("jobs_events")
	id := r.PathValue("id")
	if _, ok := s.jobs.Get(id); !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no job %s", id))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	after := 0
	if v := r.URL.Query().Get("after"); v != "" {
		after, _ = strconv.Atoi(v)
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		after, _ = strconv.Atoi(v)
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	for {
		ch, stop := s.jobs.Subscribe(id, after)
		streaming := true
		for streaming {
			select {
			case <-r.Context().Done():
				stop()
				return
			case ev, open := <-ch:
				if !open {
					// Terminal job, or this client fell behind and was
					// dropped; re-subscribing after the last seq resolves
					// both (the loop ends below if the job is finished).
					streaming = false
					break
				}
				after = ev.Seq
				b, err := json.Marshal(NewJobJSON(ev.Job))
				if err != nil {
					continue
				}
				fmt.Fprintf(w, "id: %d\nevent: job\ndata: %s\n\n", ev.Seq, b)
				flusher.Flush()
			}
		}
		stop()
		if j, ok := s.jobs.Get(id); !ok || j.State.Terminal() {
			return
		}
	}
}
