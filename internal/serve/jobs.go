package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/mapper"
	"repro/internal/memo"
	"repro/internal/sched"
)

// searchJobKind tags search jobs in the store; future job kinds dispatch
// on it.
const searchJobKind = "search"

// SearchProgress is the progress payload attached to a running search
// job: how far the GA is and the best design point so far. BestCycles is
// omitted until the first feasible candidate (its value would be +Inf,
// which JSON cannot carry).
type SearchProgress struct {
	Generation   int      `json:"generation"`
	Generations  int      `json:"generations"`
	BestCycles   *float64 `json:"best_cycles,omitempty"`
	BestEncoding string   `json:"best_encoding,omitempty"`
}

// runSearchJob is the jobs.Runner for searchJobKind on this node's own
// worker pool, searching against the local service cache.
func (s *Server) runSearchJob(ctx context.Context, job *jobs.Job, upd func(progress, checkpoint json.RawMessage)) (json.RawMessage, error) {
	return s.runSearch(ctx, job, upd, s.cache)
}

// runSearch replays the synchronous /v1/search pipeline asynchronously,
// reusing the given fitness cache (the local service cache, or the fleet's
// remote write-through tier on a worker node) and the shared worker width,
// checkpointing at every generation boundary, and resuming from
// job.Checkpoint when present. On success it also warms the synchronous
// search cache, so a later POST /v1/search for the same point is a hit.
func (s *Server) runSearch(ctx context.Context, job *jobs.Job, upd func(progress, checkpoint json.RawMessage), cache memo.Cache) (json.RawMessage, error) {
	var req SearchRequest
	if err := json.Unmarshal(job.Request, &req); err != nil {
		return nil, fmt.Errorf("bad search request: %w", err)
	}
	spec, g, err := resolveArchGraph(req.Arch, req.ArchSpec, req.Workload)
	if err != nil {
		return nil, err
	}
	opts := core.Options{
		SkipCapacityCheck: req.SkipCapacityCheck,
		SkipPECheck:       req.SkipPECheck,
		DisableRetention:  req.DisableRetention,
	}
	ts := &mapper.TreeSearch{
		G: g, Spec: spec, Opts: opts,
		Population: req.Population, Generations: req.Generations,
		TileRounds: req.TileRounds, TopK: req.TopK,
		Parallel: s.pool.Workers(), Seed: req.Seed,
		Cache: cache,
	}
	if len(job.Checkpoint) > 0 {
		// A checkpoint that no longer matches (deploy changed defaults,
		// hand-edited store) must not poison the job: fall back to a fresh
		// start, which is always correct, just slower.
		if cp, err := mapper.DecodeCheckpoint(job.Checkpoint); err == nil {
			ts.Resume(cp)
		}
	} else if req.WarmStart && s.warm != nil {
		// Fresh start with warm_start requested: seed the population from
		// the best finished search sharing this point's structure-only key.
		// Only encodings transfer — fitness is recomputed under this
		// search's own cache namespace — so a donor can speed the search
		// up but never corrupt it. A job resuming its own checkpoint
		// skips this: its population is already decided.
		if e, ok := s.warm.Get(warmKey(spec, g)); ok {
			if cp, err := mapper.DecodeCheckpoint(e.Checkpoint); err == nil {
				ts.WarmStart(cp)
			}
		}
	}
	var lastCP json.RawMessage
	ts.Progress = func(p mapper.ProgressEvent) {
		prog := SearchProgress{
			Generation:   p.Generation,
			Generations:  p.Generations,
			BestEncoding: p.BestEncoding,
		}
		if !math.IsInf(p.BestCycles, 0) {
			c := p.BestCycles
			prog.BestCycles = &c
		}
		pb, err := json.Marshal(&prog)
		if err != nil {
			return
		}
		cb, err := mapper.EncodeCheckpoint(p.Checkpoint)
		if err != nil {
			return
		}
		lastCP = cb
		upd(pb, cb)
	}

	res := ts.RunContext(ctx)
	if err := context.Cause(ctx); err != nil {
		// Cancelled or draining: the manager decides the final state from
		// the cause; the latest checkpoint is already persisted.
		return nil, err
	}
	if res.Best == nil {
		return nil, unprocessable(fmt.Errorf("no valid dataflow found for %s on %s", g.Name, spec.Name))
	}
	resp, err := NewSearchResponse(g, spec, res, false)
	if err != nil {
		return nil, err
	}
	key := searchKey(spec, g, req.Population, req.Generations, req.TileRounds, req.TopK, req.Seed, opts)
	s.cache.Put(key, resp)
	if s.warm != nil {
		// Offer this search's final checkpoint to the warm library; it is
		// kept only if it beats the incumbent donor for the structure key.
		cp := lastCP
		if cp == nil {
			cp = job.Checkpoint
		}
		s.warm.Put(warmKey(spec, g), job.ID, resp.Cycles, cp, s.store.Now().UTC())
	}
	b, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// registerWarm re-indexes a finished search into the warm-start library —
// used at open (rebuilding the index from the durable store) and when a
// fleet worker completes a job remotely. Malformed records are skipped:
// the library is an optimization, never a correctness dependency.
func (s *Server) registerWarm(j *jobs.Job) {
	if j.Kind != searchJobKind || len(j.Checkpoint) == 0 || len(j.Result) == 0 {
		return
	}
	var req SearchRequest
	if err := json.Unmarshal(j.Request, &req); err != nil {
		return
	}
	spec, g, err := resolveArchGraph(req.Arch, req.ArchSpec, req.Workload)
	if err != nil {
		return
	}
	var res struct {
		Cycles float64 `json:"cycles"`
	}
	if err := json.Unmarshal(j.Result, &res); err != nil {
		return
	}
	s.warm.Put(warmKey(spec, g), j.ID, res.Cycles, j.Checkpoint, j.FinishedAt)
}

// JobJSON is the API view of a job. Result is the full SearchResponse of
// a done job; Progress is a SearchProgress while running. The raw
// checkpoint stays server-side — clients only see that (and when) one
// exists.
type JobJSON struct {
	ID          string     `json:"id"`
	Kind        string     `json:"kind"`
	State       string     `json:"state"`
	CreatedAt   time.Time  `json:"created_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	Attempts    int        `json:"attempts,omitempty"`
	Tenant      string     `json:"tenant,omitempty"`
	Class       string     `json:"class,omitempty"`
	MaxAttempts int        `json:"max_attempts,omitempty"`
	// Trail is the failure trail of a job that has failed over: one line
	// per interrupted attempt, plus the quarantine verdict if poisoned.
	Trail []string `json:"trail,omitempty"`
	// Worker names the node whose lease the job is running under; empty
	// unless running. "local" is this process's own worker pool.
	Worker        string          `json:"worker,omitempty"`
	Progress      json.RawMessage `json:"progress,omitempty"`
	HasCheckpoint bool            `json:"has_checkpoint,omitempty"`
	CheckpointAt  *time.Time      `json:"checkpoint_at,omitempty"`
	Result        json.RawMessage `json:"result,omitempty"`
	Error         string          `json:"error,omitempty"`
}

// NewJobJSON converts a stored job to its API view.
func NewJobJSON(j *jobs.Job) *JobJSON {
	v := &JobJSON{
		ID:            j.ID,
		Kind:          j.Kind,
		State:         string(j.State),
		CreatedAt:     j.CreatedAt,
		Attempts:      j.Attempts,
		Tenant:        j.Tenant,
		Class:         j.Class,
		MaxAttempts:   j.MaxAttempts,
		Trail:         j.Trail,
		Progress:      j.Progress,
		HasCheckpoint: len(j.Checkpoint) > 0,
		Result:        j.Result,
		Error:         j.Error,
	}
	if j.Lease != nil {
		v.Worker = j.Lease.Owner
	}
	if !j.StartedAt.IsZero() {
		t := j.StartedAt
		v.StartedAt = &t
	}
	if !j.FinishedAt.IsZero() {
		t := j.FinishedAt
		v.FinishedAt = &t
	}
	if !j.CheckpointAt.IsZero() {
		t := j.CheckpointAt
		v.CheckpointAt = &t
	}
	return v
}

// handleJobSubmit answers POST /v1/jobs/search: validate eagerly (a bad
// request earns a 400 now, not a failed job later), then enqueue and
// return 202 with the job snapshot.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("jobs_submit")
	var req SearchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if _, _, err := resolveArchGraph(req.Arch, req.ArchSpec, req.Workload); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	class, err := sched.ParseClass(req.Class)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	req.Class = string(class)
	if req.MaxAttempts < 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("max_attempts must be >= 0"))
		return
	}
	maxAttempts := req.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = s.cfg.DefaultMaxAttempts
	}
	body, err := json.Marshal(&req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	// Admission (the per-tenant active quota) runs inside the store lock,
	// atomically with the create: two racing submissions cannot both
	// squeeze under the limit.
	j, err := s.jobs.SubmitWith(jobs.CreateSpec{
		Kind:        searchJobKind,
		Request:     body,
		Tenant:      req.Tenant,
		Class:       req.Class,
		MaxAttempts: maxAttempts,
	}, s.sched.Admit(req.Tenant))
	if err != nil {
		var qe *sched.QuotaError
		if errors.As(err, &qe) {
			s.writeErrorCode(w, http.StatusTooManyRequests, sched.CodeTenantQuota, err)
			return
		}
		status := http.StatusInternalServerError
		if errors.Is(err, jobs.ErrDraining) {
			status = http.StatusServiceUnavailable
		}
		s.writeError(w, status, err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, NewJobJSON(j))
}

// JobListResponse answers GET /v1/jobs.
type JobListResponse struct {
	Jobs []*JobJSON `json:"jobs"`
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("jobs_list")
	all := s.jobs.List()
	out := &JobListResponse{Jobs: make([]*JobJSON, len(all))}
	for i, j := range all {
		out.Jobs[i] = NewJobJSON(j)
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("jobs_get")
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no job %s", r.PathValue("id")))
		return
	}
	s.writeJSON(w, http.StatusOK, NewJobJSON(j))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("jobs_cancel")
	j, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeError(w, http.StatusNotFound, err)
		return
	}
	s.writeJSON(w, http.StatusOK, NewJobJSON(j))
}

// handleJobEvents answers GET /v1/jobs/{id}/events with a Server-Sent
// Events stream of job snapshots: the full history first (or the part
// after ?after=N / Last-Event-ID), then live updates until the job
// reaches a terminal state or the client goes away.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("jobs_events")
	id := r.PathValue("id")
	if _, ok := s.jobs.Get(id); !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no job %s", id))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	after := 0
	if v := r.URL.Query().Get("after"); v != "" {
		after, _ = strconv.Atoi(v)
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		after, _ = strconv.Atoi(v)
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	for {
		ch, stop := s.jobs.Subscribe(id, after)
		streaming := true
		for streaming {
			select {
			case <-r.Context().Done():
				stop()
				return
			case ev, open := <-ch:
				if !open {
					// Terminal job, or this client fell behind and was
					// dropped; re-subscribing after the last seq resolves
					// both (the loop ends below if the job is finished).
					streaming = false
					break
				}
				after = ev.Seq
				b, err := json.Marshal(NewJobJSON(ev.Job))
				if err != nil {
					continue
				}
				fmt.Fprintf(w, "id: %d\nevent: job\ndata: %s\n\n", ev.Seq, b)
				flusher.Flush()
			}
		}
		stop()
		if j, ok := s.jobs.Get(id); !ok || j.State.Terminal() {
			return
		}
	}
}
