package serve

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/fleet"
)

// benchFleetSearch returns the i-th job of the fleet benchmark. Only
// uniqueConfigs distinct design points exist, so a multi-node fleet
// re-encounters configurations another node already evaluated — the shared
// memo tier's reason to exist.
const benchUniqueConfigs = 6

func benchFleetSearch(i int) SearchRequest {
	return SearchRequest{
		Arch: "edge", Workload: "attention:Bert-S",
		Population: 4, Generations: 3, TileRounds: 10, TopK: 2,
		Seed: int64(2000 + i%benchUniqueConfigs),
	}
}

// runFleetThroughput stands up one coordinator-only node plus workerNodes
// fleet workers, pushes n jobs through the coordinator's API, and waits for
// all of them. It returns the wall time and the coordinator's protocol
// counters (for the memo-tier hit rate).
func runFleetThroughput(tb testing.TB, workerNodes, n int) (time.Duration, fleet.CoordinatorStats) {
	tb.Helper()
	coord, err := Open(Config{Workers: 1, JobWorkers: -1, LeaseTTL: time.Minute})
	if err != nil {
		tb.Fatal(err)
	}
	hs := httptest.NewServer(coord.Handler())
	defer hs.Close()

	workers := make([]*Server, workerNodes)
	for i := range workers {
		w, err := Open(Config{
			Workers:        1, // serial evaluation: measure node-level scaling
			JobWorkers:     1,
			Coordinator:    hs.URL,
			FleetNode:      fmt.Sprintf("bench-w%d", i),
			FleetPoll:      2 * time.Millisecond,
			FleetHeartbeat: 50 * time.Millisecond,
		})
		if err != nil {
			tb.Fatal(err)
		}
		workers[i] = w
	}

	start := time.Now()
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		req := benchFleetSearch(i)
		resp, body := postJSON(tb, hs.URL+"/v1/jobs/search", &req)
		if resp.StatusCode != 202 {
			tb.Fatalf("submit status %d: %s", resp.StatusCode, body)
		}
		var j JobJSON
		if err := json.Unmarshal(body, &j); err != nil {
			tb.Fatal(err)
		}
		ids[i] = j.ID
	}
	deadline := time.Now().Add(10 * time.Minute)
	for _, id := range ids {
		for {
			var j JobJSON
			getJSON(tb, hs.URL+"/v1/jobs/"+id, &j)
			if j.State == "done" {
				break
			}
			if j.State == "failed" || j.State == "cancelled" {
				tb.Fatalf("job %s ended %s: %s", id, j.State, j.Error)
			}
			if time.Now().After(deadline) {
				tb.Fatalf("job %s still %s", id, j.State)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	elapsed := time.Since(start)
	stats := coord.coord.Stats()

	for _, w := range workers {
		closeNode(tb, w)
	}
	closeNode(tb, coord)
	return elapsed, stats
}

// TestFleetThroughput is the TILEFLOW_BENCH-gated fleet benchmark: the same
// fleet of jobs through 3 worker nodes vs 1, every claim, checkpoint,
// completion, and fitness memo crossing the HTTP peer protocol. The
// measurements land in BENCH_PR6.json for the CI artifact, including the
// shared memo tier's hit rate (duplicate design points evaluated on one
// node and answered from the coordinator's cache on another).
func TestFleetThroughput(t *testing.T) {
	if os.Getenv("TILEFLOW_BENCH") != "1" {
		t.Skip("set TILEFLOW_BENCH=1 to run the timing assertion")
	}
	const fleet = 12
	serial, _ := runFleetThroughput(t, 1, fleet)
	multi, stats := runFleetThroughput(t, 3, fleet)
	speedup := serial.Seconds() / multi.Seconds()
	lookups := stats.MemoHits + stats.MemoMisses
	hitRate := 0.0
	if lookups > 0 {
		hitRate = float64(stats.MemoHits) / float64(lookups)
	}
	t.Logf("fleet of %d jobs (%d unique): 1 node %s, 3 nodes %s (%.2fx); memo tier %d/%d hits (%.0f%%)",
		fleet, benchUniqueConfigs, serial, multi, speedup, stats.MemoHits, lookups, hitRate*100)
	if stats.MemoPuts == 0 || stats.MemoHits == 0 {
		t.Errorf("shared memo tier idle (puts=%d hits=%d); workers are not writing through", stats.MemoPuts, stats.MemoHits)
	}
	// On one core three nodes just timeslice; the scaling assertion only
	// means something with real parallel hardware.
	if runtime.NumCPU() >= 2 && speedup < 1.2 {
		t.Errorf("3 worker nodes only %.2fx faster than 1; the fleet is not delivering concurrency", speedup)
	}

	out := os.Getenv("TILEFLOW_FLEET_BENCH_OUT")
	if out == "" {
		out = "BENCH_PR6.json"
	}
	report := map[string]any{
		"description": "Distributed search fleet throughput (PR 6). A fleet of small search jobs (attention:Bert-S, pop=4 gens=3 rounds=10, 6 unique design points x2) submitted to a coordinator-only node and executed by fleet worker nodes over the HTTP peer protocol: lease claims, heartbeats, per-generation checkpoint shipping, and the shared fitness memo tier. Serial = 1 worker node, fleet = 3 worker nodes, same jobs.",
		"cpu":         cpuModel(),
		"go_bench_cmd": "TILEFLOW_BENCH=1 go test ./internal/serve/ -run TestFleetThroughput -count=1 -v; " +
			"go test ./internal/serve/ -run '^$' -bench BenchmarkFleetThroughput -benchtime 2x",
		"num_cpu":            runtime.NumCPU(),
		"fleet_jobs":         fleet,
		"unique_configs":     benchUniqueConfigs,
		"serial_seconds":     round3(serial.Seconds()),
		"fleet_seconds":      round3(multi.Seconds()),
		"speedup_3_nodes":    round3(speedup),
		"fleet_jobs_per_sec": round3(fleet / multi.Seconds()),
		"memo_tier_hits":     stats.MemoHits,
		"memo_tier_misses":   stats.MemoMisses,
		"memo_tier_puts":     stats.MemoPuts,
		"memo_tier_hit_rate": round3(hitRate),
		"fleet_claims":       stats.Claims,
		"fleet_checkpoints":  stats.Checkpoints,
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// BenchmarkFleetThroughput drives the full fleet pipeline — coordinator,
// three worker nodes, every byte over HTTP — as a standard benchmark.
func BenchmarkFleetThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		elapsed, _ := runFleetThroughput(b, 3, 8)
		b.ReportMetric(8/elapsed.Seconds(), "jobs/s")
	}
}
