package serve

import (
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"testing"

	"repro/internal/spaceck"
	"repro/internal/workload"
)

// TestAnalyzeEndpoint checks POST /v1/analyze answers with the shared
// spaceck.Report codec, byte-identical to AnalyzeSpace + WriteJSON — which
// is exactly what `tileflow analyze -json` prints.
func TestAnalyzeEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	canonical := workload.CanonicalGraph(workload.Matmul(8, 8, 8))

	for _, tc := range []struct {
		name string
		req  EvaluateRequest
	}{
		{"dataflow template", EvaluateRequest{Arch: "edge", Workload: "attention:Bert-S", Dataflow: "FLAT-RGran"}},
		{"notation retiling", EvaluateRequest{Arch: "edge", WorkloadSpec: canonical, Notation: vetMatmulSrc}},
		{"config retiling", EvaluateRequest{ConfigYAML: analyzeConfigYAML(t)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, hs.URL+"/v1/analyze", &tc.req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			rep, err := AnalyzeSpace(&tc.req)
			if err != nil {
				t.Fatal(err)
			}
			var want strings.Builder
			if err := rep.WriteJSON(&want); err != nil {
				t.Fatal(err)
			}
			if string(body) != want.String() {
				t.Errorf("served analyze body differs from the CLI codec:\n got %s\nwant %s", body, want.String())
			}
			var back spaceck.Report
			if err := json.Unmarshal(body, &back); err != nil {
				t.Fatalf("response does not round-trip: %v", err)
			}
			if back.SpaceSize <= 0 || len(back.Factors) == 0 {
				t.Errorf("degenerate report: %s", body)
			}
		})
	}
}

// analyzeConfigYAML loads the matmul golden config from the yamlfe corpus.
func analyzeConfigYAML(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile("../yamlfe/testdata/cases/matmul.yaml")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestAnalyzeRequestValidation pins the request-shape 400s of /v1/analyze.
func TestAnalyzeRequestValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  EvaluateRequest
	}{
		{"no mapping form", EvaluateRequest{Arch: "edge", Workload: "attention:Bert-S"}},
		{"no arch", EvaluateRequest{Workload: "attention:Bert-S", Notation: "x"}},
		{"tune", EvaluateRequest{Arch: "edge", Workload: "attention:Bert-S", Dataflow: "Layerwise", Tune: 5}},
		{"factors", EvaluateRequest{Arch: "edge", Workload: "attention:Bert-S", Dataflow: "Layerwise",
			Factors: map[string]int{"t_m": 2}}},
		{"unknown arch", EvaluateRequest{Arch: "tpu", Workload: "attention:Bert-S", Notation: "x"}},
		{"bad notation", EvaluateRequest{Arch: "edge", Workload: "attention:Bert-S", Notation: "nonsense\n"}},
		{"bad config", EvaluateRequest{ConfigYAML: "not: [valid"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, hs.URL+"/v1/analyze", &tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
			}
			var eb struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
				t.Fatalf("error body %s (%v)", body, err)
			}
		})
	}
}

// tinyArchSpec is a 1-PE accelerator in arch.ParseSpec's text format; it
// starves the spatial loops of the notation below so the analyzer narrows
// their factors down to 1.
const tinyArchSpec = `arch tiny
mesh 1 1
freq 1
word 2
macs-per-pe 1
vector-lanes 1
level Reg  1KB 0   1
level L1   1MB 100 1
level DRAM inf 10  1
`

// TestAnalyzeNarrowsOverInlineArch: on a 1-PE arch the spatial loops of the
// leaf can only take the value 1, and the removals carry a pe-budget
// attribution.
func TestAnalyzeNarrowsOverInlineArch(t *testing.T) {
	big := workload.CanonicalGraph(workload.Matmul(128, 128, 8))
	req := EvaluateRequest{ArchSpec: tinyArchSpec, WorkloadSpec: big,
		Notation: "leaf mm = op mm { Sp(m:128), Sp(n:128), k:8 }\ntile root @L2 = { m:1 } (mm)\n"}
	rep, err := AnalyzeSpace(&req)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || rep.Empty {
		t.Fatalf("want a complete, non-empty sweep; got complete=%v empty=%v", rep.Complete, rep.Empty)
	}
	if rep.KeptSize >= rep.SpaceSize {
		t.Fatalf("1-PE arch should narrow the space: kept %d of %d", rep.KeptSize, rep.SpaceSize)
	}
	found := false
	for _, d := range rep.Factors {
		for _, rm := range d.Removed {
			if rm.Code == "TF-RES-001" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no pe-budget attribution in %+v", rep.Factors)
	}
	if ec := rep.ExitCode(); ec != 1 {
		t.Errorf("exit code %d, want 1 (pruned values warn)", ec)
	}
}

// TestAnalyzeEmptySpaceOverHTTP: a tile level the architecture does not
// have fails every retiling at build time, so the whole space collapses to
// a complete emptiness proof with TF-SPACE-001 (and a TF-SPACE-004 build
// attribution).
func TestAnalyzeEmptySpaceOverHTTP(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	big := workload.CanonicalGraph(workload.Matmul(128, 128, 8))
	resp, body := postJSON(t, hs.URL+"/v1/analyze", &EvaluateRequest{
		ArchSpec: tinyArchSpec, WorkloadSpec: big,
		Notation: "leaf mm = op mm { Sp(m:128), Sp(n:128), k:8 }\ntile root @L7 = { m:1 } (mm)\n"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var back spaceck.Report
	if err := json.Unmarshal(body, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Complete {
		t.Fatalf("space of %d points should sweep exactly", back.SpaceSize)
	}
	if !back.Empty {
		t.Fatalf("tile level beyond the arch should empty the space: %s", body)
	}
	var haveEmpty, haveBuild bool
	for _, d := range back.Diagnostics {
		switch d.Code {
		case spaceck.CodeEmptySpace:
			haveEmpty = true
		case spaceck.CodeBuildReject:
			haveBuild = true
		}
	}
	if !haveEmpty {
		t.Errorf("no %s diagnostic: %s", spaceck.CodeEmptySpace, body)
	}
	if !haveBuild {
		t.Errorf("no %s build attribution: %s", spaceck.CodeBuildReject, body)
	}
	if ec := back.ExitCode(); ec != 2 {
		t.Errorf("exit code %d, want 2", ec)
	}
	if !back.Diagnostics.HasErrors() {
		t.Error("emptiness proof should be error severity")
	}
}

// TestAnalyzeMaxProbes: a probe budget smaller than the space yields an
// incomplete report that prunes nothing (soundness) and says so.
func TestAnalyzeMaxProbes(t *testing.T) {
	req := EvaluateRequest{Arch: "edge", Workload: "attention:Bert-S",
		Dataflow: "FLAT-RGran", MaxProbes: 3}
	rep, err := AnalyzeSpace(&req)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete {
		t.Fatalf("budget 3 over %d points should be incomplete", rep.SpaceSize)
	}
	for _, d := range rep.Factors {
		if len(d.Removed) != 0 {
			t.Fatalf("incomplete analysis must prune nothing: %+v", d)
		}
	}
	found := false
	for _, d := range rep.Diagnostics {
		if d.Code == spaceck.CodeIncomplete {
			found = true
		}
	}
	if !found {
		t.Errorf("no %s diagnostic in %v", spaceck.CodeIncomplete, rep.Diagnostics)
	}
}
