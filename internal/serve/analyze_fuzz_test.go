package serve

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/diag"
	"repro/internal/spaceck"
)

// FuzzAnalyze pushes arbitrary config text through the full analyze path —
// yamlfe load, retiling adapter, abstract interpretation, report codec —
// seeded from the yamlfe golden corpus (valid and invalid fixtures alike).
// Invariants:
//
//   - AnalyzeSpace never panics; a failed load is an error, never both an
//     error and a report.
//   - Every diagnostic in a report carries a registered code.
//   - The report is internally consistent (kept never exceeds the space,
//     emptiness matches a zero kept count, exit codes stay in 0..2).
//   - WriteJSON output round-trips: decoding and re-encoding reproduces
//     the bytes, which is what keeps the CLI and HTTP answers identical.
func FuzzAnalyze(f *testing.F) {
	for _, pat := range []string{
		filepath.Join("..", "yamlfe", "testdata", "cases", "*.yaml"),
		filepath.Join("..", "yamlfe", "testdata", "cases", "invalid", "*.yaml"),
	} {
		files, err := filepath.Glob(pat)
		if err != nil || len(files) == 0 {
			f.Fatalf("no seed corpus at %s (%v)", pat, err)
		}
		for _, file := range files {
			src, err := os.ReadFile(file)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(src))
		}
	}
	f.Add("architecture: 1\nproblem: 2\nmapping: 3\n")

	f.Fuzz(func(t *testing.T, src string) {
		req := EvaluateRequest{ConfigYAML: src, MaxProbes: 200}
		rep, err := AnalyzeSpace(&req)
		if err != nil {
			if rep != nil {
				t.Fatalf("error %v alongside a report", err)
			}
			return
		}
		if rep == nil {
			t.Fatal("nil report without error")
		}
		if rep.KeptSize > rep.SpaceSize || rep.KeptSize < 0 {
			t.Fatalf("kept %d outside space %d", rep.KeptSize, rep.SpaceSize)
		}
		if rep.Complete && rep.Empty != (rep.KeptSize == 0) {
			t.Fatalf("complete sweep: empty=%v but kept=%d", rep.Empty, rep.KeptSize)
		}
		if ec := rep.ExitCode(); ec < 0 || ec > 2 {
			t.Fatalf("exit code %d out of range", ec)
		}
		for _, d := range rep.Diagnostics {
			if _, ok := diag.Lookup(d.Code); !ok {
				t.Fatalf("unregistered diagnostic code %q", d.Code)
			}
		}
		var buf strings.Builder
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		var back spaceck.Report
		if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
			t.Fatalf("round-trip decode: %v", err)
		}
		var again strings.Builder
		if err := back.WriteJSON(&again); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if buf.String() != again.String() {
			t.Fatalf("codec not a fixpoint:\n%s\nvs\n%s", buf.String(), again.String())
		}
	})
}
