package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/fleet"
	"repro/internal/jobs"
	"repro/internal/mapper"
	"repro/internal/memo"
	"repro/internal/notation"
	"repro/internal/sched"
	"repro/internal/workload"
	"repro/internal/yamlfe"
)

// Config tunes the evaluation service.
type Config struct {
	// CacheEntries is the memoization cache capacity (default 8192).
	CacheEntries int
	// Workers bounds concurrent evaluations (default GOMAXPROCS).
	Workers int
	// Timeout is the per-request deadline (default 60s); a request may
	// lower it with timeout_ms but not raise it.
	Timeout time.Duration
	// MaxBatch caps the requests accepted in one batch call (default 256).
	MaxBatch int
	// DataDir is where the async job store persists its log and snapshot.
	// Empty means memory-only jobs: fully functional, lost on restart.
	DataDir string
	// JobWorkers bounds concurrently running search jobs. Zero scales with
	// runtime.GOMAXPROCS(0); a negative value runs none — a
	// coordinator-only node that stores and leases jobs to fleet workers
	// but never executes one itself.
	JobWorkers int
	// Clock overrides the wall clock for job timestamps (tests only).
	Clock func() time.Time

	// Coordinator, when set, turns this node into a fleet worker: it claims
	// jobs from the coordinator at this base URL (e.g. "http://host:8080"),
	// runs them under heartbeated leases, and consults the coordinator's
	// shared fitness cache through a local write-through tier.
	Coordinator string
	// FleetNode names this node in lease ownership and metrics; defaults to
	// hostname-pid.
	FleetNode string
	// LeaseTTL is the lease duration this node grants when acting as
	// coordinator (default fleet.DefaultLeaseTTL).
	LeaseTTL time.Duration
	// JobRetention evicts terminal jobs older than this horizon from the
	// store (oldest first). Zero keeps everything forever.
	JobRetention time.Duration
	// SweepEvery is the cadence of the background lease + retention sweep
	// (default 1s).
	SweepEvery time.Duration
	// FleetPoll and FleetHeartbeat tune the worker's claim poll and lease
	// renewal cadences (defaults 500ms and 3s; tests shrink them).
	FleetPoll      time.Duration
	FleetHeartbeat time.Duration

	// TenantMaxRunning caps one tenant's concurrently running jobs across
	// the local worker pool and all fleet claims. Zero means unlimited.
	TenantMaxRunning int
	// TenantMaxActive caps one tenant's active (queued + running) jobs at
	// admission; past it, submissions are refused with a coded 429. Zero
	// means unlimited.
	TenantMaxActive int
	// SchedSeed feeds the scheduler's deterministic tie-breaker.
	SchedSeed int64
	// DefaultMaxAttempts is applied to submissions that leave max_attempts
	// unset: after that many failovers a job is quarantined as poisoned.
	// Zero retries forever.
	DefaultMaxAttempts int
	// DisableScheduler keeps the store's plain FIFO dequeue instead of
	// installing the weighted-fair scheduler; admission quotas still
	// apply. Only the scheduled-vs-FIFO differential tests use it.
	DisableScheduler bool
}

// Server is the concurrent evaluation service. All mutable state is the
// cache and the counters, both safe for concurrent use; one Server handles
// any number of in-flight HTTP requests.
type Server struct {
	cfg   Config
	cache *memo.FlightCache
	// reqKeys short-circuits repeated literal requests: it maps a
	// normalized request rendering to the canonical design-point key, so a
	// hot request skips catalog resolution and canonical hashing entirely
	// and a cache hit costs two lookups.
	reqKeys *memo.ShardedLRU
	// programs is the second-level cache of compiled core.Programs keyed
	// by the structure-only prefix of the canonical key: requests that
	// differ only in tiling factors (or evaluation options) re-bind a
	// cached Program instead of recompiling the tree's structure.
	programs *memo.ShardedLRU
	pool     *Pool
	metrics  *Metrics
	mux      *http.ServeMux
	started  time.Time
	store    *jobs.Store
	jobs     *jobs.Manager
	// sched is the weighted-fair dequeue policy + tenant accounting; warm
	// is the checkpoint library keyed by structure-only canonical prefix.
	sched *sched.Scheduler
	warm  *sched.WarmStore

	// coord serves the fleet peer protocol over this node's store (every
	// node can coordinate); worker and remote are set only when
	// cfg.Coordinator points this node at a peer.
	coord     *fleet.Coordinator
	worker    *fleet.Worker
	remote    *fleet.RemoteCache
	sweepStop chan struct{}
	sweepDone chan struct{}
}

// New builds a Server with the config's defaults applied. It panics when
// the job store cannot be opened; use Open to handle that error (a config
// without DataDir cannot fail).
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open builds a Server, opening (and recovering) the durable job store
// under cfg.DataDir. Jobs interrupted by a previous crash or drain are
// queued again and resume from their checkpoints as soon as the job
// workers start.
func Open(cfg Config) (*Server, error) {
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 8192
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.JobWorkers == 0 {
		// One searching job saturates roughly one core (its fitness
		// evaluations fan out over the shared pool), so the default tracks
		// the core count rather than a flat constant.
		cfg.JobWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.SweepEvery <= 0 {
		cfg.SweepEvery = time.Second
	}
	if cfg.FleetNode == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "node"
		}
		cfg.FleetNode = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	s := &Server{
		cfg:      cfg,
		cache:    memo.NewFlightCache(nil, cfg.CacheEntries),
		reqKeys:  memo.NewShardedLRU(cfg.CacheEntries),
		programs: memo.NewShardedLRU(cfg.CacheEntries),
		pool:     NewPool(cfg.Workers),
		metrics:  NewMetrics(),
		mux:      http.NewServeMux(),
		started:  time.Now(),
	}
	store, err := jobs.Open(cfg.DataDir, cfg.Clock)
	if err != nil {
		return nil, err
	}
	s.store = store
	// One scheduler instance governs every dequeue path: installed as the
	// store's Picker, it decides both local worker claims and fleet
	// /v1/fleet/claim grants, so priority weights and tenant quotas hold
	// across the whole fleet.
	s.sched = sched.New(sched.Config{
		TenantMaxRunning: cfg.TenantMaxRunning,
		TenantMaxActive:  cfg.TenantMaxActive,
		Seed:             cfg.SchedSeed,
	})
	if !cfg.DisableScheduler {
		store.SetPicker(s.sched.Pick)
	}
	// The warm-start library is an in-memory index over the durable store:
	// recovered Done jobs with checkpoints re-register here, so warm
	// starting survives restarts without any persistence of its own.
	s.warm = sched.NewWarmStore()
	for _, j := range store.List() {
		if j.State == jobs.Done {
			s.registerWarm(j)
		}
	}
	s.jobs, err = jobs.NewManager(store, jobs.Config{Workers: cfg.JobWorkers, Runner: s.runSearchJob})
	if err != nil {
		store.Close()
		return nil, err
	}
	// Every node can coordinate: the peer protocol leases out this node's
	// own store, sharing the service cache as the fleet memo tier. Job
	// snapshots the protocol mutates flow into the local event streams, so
	// SSE watchers here follow searches executing on other nodes.
	fitnessCodec := fleet.Codec{Encode: mapper.EncodeFitness, Decode: mapper.DecodeFitness}
	s.coord = &fleet.Coordinator{
		Store: store,
		TTL:   cfg.LeaseTTL,
		Cache: s.cache,
		Codec: fitnessCodec,
		OnEvent: func(j *jobs.Job) {
			s.jobs.Publish(j)
			if j.State == jobs.Done {
				// A fleet worker finished this search remotely; index its
				// final checkpoint for warm starting.
				s.registerWarm(j)
			}
		},
		OnRequeue: func(id string) { s.jobs.Requeue(id) },
	}
	if cfg.Coordinator != "" {
		s.remote = &fleet.RemoteCache{
			Local:       s.cache,
			Coordinator: cfg.Coordinator,
			Codec:       fitnessCodec,
		}
		slots := cfg.JobWorkers
		if slots < 1 {
			slots = 1
		}
		s.worker, err = fleet.NewWorker(fleet.WorkerConfig{
			Coordinator: cfg.Coordinator,
			Node:        cfg.FleetNode,
			Slots:       slots,
			Poll:        cfg.FleetPoll,
			Heartbeat:   cfg.FleetHeartbeat,
			Clock:       cfg.Clock,
			Runner: func(ctx context.Context, job *jobs.Job, upd func(progress, checkpoint json.RawMessage)) (json.RawMessage, error) {
				return s.runSearch(ctx, job, upd, s.remote)
			},
		})
		if err != nil {
			store.Close()
			return nil, err
		}
		s.worker.Start()
	}
	s.sweepStop = make(chan struct{})
	s.sweepDone = make(chan struct{})
	go s.sweepLoop(cfg.SweepEvery)
	s.mux.Handle("/v1/fleet/", s.coord.Handler())
	s.mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	s.mux.HandleFunc("POST /v1/evaluate/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/search", s.handleSearch)
	s.mux.HandleFunc("POST /v1/vet", s.handleVet)
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/jobs/search", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler is the HTTP entry point.
func (s *Server) Handler() http.Handler { return s.mux }

// FleetHandler serves only the fleet peer protocol, for a dedicated
// -fleet-listen port that keeps peer traffic off the public listener.
func (s *Server) FleetHandler() http.Handler { return s.coord.Handler() }

// sweepLoop periodically fails over expired leases and evicts terminal
// jobs past the retention horizon. Tests drive the same steps directly via
// SweepFleet/SweepRetention with an injected clock.
func (s *Server) sweepLoop(every time.Duration) {
	defer close(s.sweepDone)
	tk := time.NewTicker(every)
	defer tk.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case <-tk.C:
			s.SweepFleet()
			s.SweepRetention()
		}
	}
}

// SweepFleet re-queues jobs whose fleet leases expired (finalizing
// expired cancel-requested ones and quarantining jobs past their attempt
// budget), returning all three counts.
func (s *Server) SweepFleet() (requeued, cancelled, poisoned int) { return s.coord.Sweep() }

// SweepRetention evicts terminal jobs older than the configured retention
// horizon, returning how many were removed. A zero horizon keeps all.
func (s *Server) SweepRetention() int {
	if s.cfg.JobRetention <= 0 {
		return 0
	}
	return s.jobs.SweepRetention(s.cfg.JobRetention)
}

// Close shuts the node down: the sweeper stops, a fleet worker drains
// (its jobs are released back to the coordinator with checkpoints), local
// jobs are cancelled with the draining cause and re-queued on disk, and
// the store closes.
func (s *Server) Close(ctx context.Context) error {
	close(s.sweepStop)
	<-s.sweepDone
	var err error
	if s.worker != nil {
		err = s.worker.Close(ctx)
	}
	if derr := s.jobs.Drain(ctx); err == nil {
		err = derr
	}
	if cerr := s.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// CacheStats snapshots the memoization counters.
func (s *Server) CacheStats() memo.Stats { return s.cache.Stats() }

// httpError carries a status code chosen by the evaluation pipeline.
type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

func badRequest(err error) error { return &httpError{status: http.StatusBadRequest, err: err} }

func unprocessable(err error) error {
	return &httpError{status: http.StatusUnprocessableEntity, err: err}
}

// statusClientClosedRequest is nginx's non-standard code for a client that
// went away before the response. context.Canceled means exactly that here
// — it is neither a timeout (504) nor a server fault (500).
const statusClientClosedRequest = 499

// statusFor maps pipeline errors to HTTP statuses: caller mistakes
// (including structurally invalid mappings) are 400, infeasible design
// points (over capacity, over the PE budget, nothing valid in the search
// budget) are 422, expired deadlines are 504, canceled clients are 499,
// and anything unrecognized is a 500 server fault.
func statusFor(err error) int {
	var he *httpError
	if errors.As(err, &he) {
		return he.status
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, core.ErrInvalidMapping):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrInfeasible):
		return http.StatusUnprocessableEntity
	}
	return http.StatusInternalServerError
}

// evalOutcome is the cache value for one evaluate key: everything needed
// to rebuild a response except the per-request cached flag.
type evalOutcome struct {
	workload     string
	dfName       string
	archName     string
	tunedFactors map[string]int
	result       *ResultJSON

	// encodeOnce fills cachedBytes, the pre-serialized cached:true
	// response body, so the hot hit path writes stored bytes instead of
	// re-marshaling the result.
	encodeOnce  sync.Once
	cachedBytes []byte
}

func (o *evalOutcome) response(cached bool) *EvaluateResponse {
	return &EvaluateResponse{
		Workload:     o.workload,
		Dataflow:     o.dfName,
		Arch:         o.archName,
		Cached:       cached,
		TunedFactors: o.tunedFactors,
		Result:       o.result,
	}
}

// cachedJSON is the serialized cached:true response, built once per
// outcome. Nil on a marshal failure (the caller falls back to writeJSON).
func (o *evalOutcome) cachedJSON() []byte {
	o.encodeOnce.Do(func() {
		if b, err := json.Marshal(o.response(true)); err == nil {
			o.cachedBytes = append(b, '\n')
		}
	})
	return o.cachedBytes
}

// requestKey renders a request into a normalized literal key for the
// request-level fast path: Go's encoding/json emits struct fields in
// declaration order and map keys sorted, so equal decoded requests render
// identically. Per-call knobs that do not change the design point are
// dropped.
func requestKey(req *EvaluateRequest) (string, bool) {
	norm := *req
	norm.TimeoutMS = 0
	norm.NoCache = false
	b, err := json.Marshal(&norm)
	if err != nil {
		return "", false
	}
	return "req:" + string(b), true
}

// run executes the analysis for a resolved design point: tuning first when
// the request asked for it, then the tree-based evaluation through the
// compiled-program cache.
func (dp *designPoint) run(ctx context.Context, programs *memo.ShardedLRU) (*evalOutcome, error) {
	out := &evalOutcome{workload: dp.g.Name, dfName: dp.dfName, archName: dp.spec.Name}
	root := dp.root
	if root == nil {
		ev := mapper.TuneContext(ctx, dp.df, dp.spec, dp.opts, dp.tune, dp.seed)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if ev == nil {
			return nil, unprocessable(fmt.Errorf("no valid mapping found for %s", dp.dfName))
		}
		out.tunedFactors = ev.Factors
		var err error
		if root, err = dp.df.Build(ev.Factors); err != nil {
			return nil, err
		}
	}
	res, err := evaluateWithPrograms(ctx, programs, root, dp.g, dp.spec, dp.opts)
	if err != nil {
		return nil, err
	}
	out.result = NewResultJSON(res, dp.spec)
	return out, nil
}

// evaluateWithPrograms evaluates a tree, sharing the compile half of the
// Compile → Evaluate pipeline across requests: a Program cached under the
// structure-only key is re-bound to this request's tiling, and only the
// tiling-dependent analysis runs. Program re-binding matches operators by
// name, so a cached Program serves trees built over any canonically equal
// instance of the graph (the key includes the canonical graph dump).
func evaluateWithPrograms(ctx context.Context, programs *memo.ShardedLRU, root *core.Node, g *workload.Graph, spec *arch.Spec, opts core.Options) (*core.Result, error) {
	if programs == nil {
		return core.EvaluateContext(ctx, root, g, spec, opts)
	}
	key := programKey(spec, g, root)
	if v, ok := programs.Get(key); ok {
		if p, err := v.(*core.Program).WithTiling(root); err == nil {
			return p.Evaluate(ctx, opts)
		}
		// Re-bind refused the tree: fall through to a fresh compile, which
		// also refreshes the cached entry.
	}
	p, err := core.Compile(root, g, spec)
	if err != nil {
		return nil, err
	}
	programs.Put(key, p)
	return p.Evaluate(ctx, opts)
}

// key is the canonical cache key of the design point.
func (dp *designPoint) key() string {
	if dp.root == nil {
		return tunedKey(dp.spec, dp.g, dp.dfName, dp.tune, dp.seed, dp.opts)
	}
	return EvaluateKey(dp.spec, dp.g, dp.root, dp.opts)
}

// requestTimeout clamps a request's timeout_ms to the server deadline.
func (s *Server) requestTimeout(ms int) time.Duration {
	t := s.cfg.Timeout
	if ms > 0 {
		if d := time.Duration(ms) * time.Millisecond; d < t {
			t = d
		}
	}
	return t
}

// evaluateOne is the shared pipeline behind /v1/evaluate and the batch
// endpoint: resolve, key, then single-flight through the cache and the
// worker pool. On a hit it also returns the pre-serialized response body,
// so repeat traffic skips resolution, hashing, and JSON encoding.
func (s *Server) evaluateOne(ctx context.Context, req *EvaluateRequest) (*EvaluateResponse, []byte, error) {
	start := time.Now()
	defer func() { s.metrics.ObserveLatency(time.Since(start)) }()

	// Fast path: a request literal seen before maps straight to its
	// canonical key, making a repeat hit two cache lookups.
	rk, rok := requestKey(req)
	var key string
	if rok && !req.NoCache {
		if ck, ok := s.reqKeys.Get(rk); ok {
			key = ck.(string)
			if v, ok := s.cache.Get(key); ok {
				out := v.(*evalOutcome)
				return out.response(true), out.cachedJSON(), nil
			}
		}
	}

	var dp *designPoint
	if key == "" {
		var err error
		if dp, err = resolve(req); err != nil {
			return nil, nil, badRequest(err)
		}
		key = dp.key()
	}
	ctx, cancel := context.WithTimeout(ctx, s.requestTimeout(req.TimeoutMS))
	defer cancel()

	compute := func() (any, error) {
		if dp == nil {
			// reqKeys still knew the canonical key but the outcome was
			// evicted; resolve lazily, only now that we must recompute.
			var err error
			if dp, err = resolve(req); err != nil {
				return nil, badRequest(err)
			}
		}
		var out *evalOutcome
		perr := s.pool.Do(ctx, func() error {
			var rerr error
			out, rerr = dp.run(ctx, s.programs)
			return rerr
		})
		if perr != nil {
			return nil, perr
		}
		return out, nil
	}

	if req.NoCache {
		v, err := compute()
		if err != nil {
			return nil, nil, err
		}
		out := v.(*evalOutcome)
		s.cache.Put(key, out)
		if rok {
			s.reqKeys.Put(rk, key)
		}
		return out.response(false), nil, nil
	}
	v, cached, err := s.cache.Do(ctx, key, compute)
	if err != nil {
		return nil, nil, err
	}
	if rok {
		s.reqKeys.Put(rk, key)
	}
	out := v.(*evalOutcome)
	if cached {
		return out.response(true), out.cachedJSON(), nil
	}
	return out.response(false), nil, nil
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("evaluate")
	var req EvaluateRequest
	if !s.decode(w, r, &req) {
		return
	}
	resp, raw, err := s.evaluateOne(r.Context(), &req)
	if err != nil {
		s.writeErrorDiags(w, statusFor(err), err, rejectionDiagnostics(&req, err, statusFor(err)))
		return
	}
	if raw != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(raw)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// BatchRequest evaluates many design points in one call; items are
// processed concurrently under the same worker pool and cache.
type BatchRequest struct {
	Requests []EvaluateRequest `json:"requests"`
}

// BatchItem is the per-request outcome of a batch: exactly one of Response
// and Error is set, at the same index as the request.
type BatchItem struct {
	Response *EvaluateResponse `json:"response,omitempty"`
	Error    string            `json:"error,omitempty"`
}

// BatchResponse answers /v1/evaluate/batch.
type BatchResponse struct {
	Items []BatchItem `json:"items"`
}

// batchGroupKey identifies one Program.EvaluateBatch call: design points
// sharing a compiled structure and evaluation options run as a single
// batch. core.Options is a flat struct of bools, so the composite key is
// comparable.
type batchGroupKey struct {
	pk   string
	opts core.Options
}

// batchPoint is one batch item headed for the grouped fast path.
type batchPoint struct {
	idx int
	dp  *designPoint
	key string // canonical outcome cache key
	rk  string // request-literal fast-path key ("" when unusable)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("evaluate_batch")
	var breq BatchRequest
	if !s.decode(w, r, &breq) {
		return
	}
	if len(breq.Requests) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(breq.Requests) > s.cfg.MaxBatch {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("batch of %d exceeds limit %d", len(breq.Requests), s.cfg.MaxBatch))
		return
	}
	items := make([]BatchItem, len(breq.Requests))

	// Resolve phase: answer cache hits inline, route explicit-tree items
	// into per-structure groups for Program.EvaluateBatch, and leave the
	// rest (tuned templates, per-item timeouts) to the general pipeline.
	groups := map[batchGroupKey][]*batchPoint{}
	var loose []int
	for i := range breq.Requests {
		req := &breq.Requests[i]
		if req.TimeoutMS != 0 {
			// A per-item deadline cannot ride a shared batch evaluation.
			loose = append(loose, i)
			continue
		}
		rk, rok := requestKey(req)
		if rok && !req.NoCache {
			if ck, ok := s.reqKeys.Get(rk); ok {
				if v, ok := s.cache.Get(ck.(string)); ok {
					items[i].Response = v.(*evalOutcome).response(true)
					continue
				}
			}
		}
		dp, err := resolve(req)
		if err != nil {
			items[i].Error = err.Error()
			continue
		}
		key := dp.key()
		if !req.NoCache {
			if v, ok := s.cache.Get(key); ok {
				if rok {
					s.reqKeys.Put(rk, key)
				}
				items[i].Response = v.(*evalOutcome).response(true)
				continue
			}
		}
		if dp.root == nil {
			loose = append(loose, i)
			continue
		}
		if !rok {
			rk = ""
		}
		gk := batchGroupKey{pk: programKey(dp.spec, dp.g, dp.root), opts: dp.opts}
		groups[gk] = append(groups[gk], &batchPoint{idx: i, dp: dp, key: key, rk: rk})
	}

	done := make(chan struct{})
	launched := 0
	for gk, pts := range groups {
		launched++
		go func(gk batchGroupKey, pts []*batchPoint) {
			defer func() { done <- struct{}{} }()
			// net/http's panic recovery only covers the handler goroutine;
			// without this a panic in one group would kill the daemon.
			defer func() {
				if p := recover(); p != nil {
					for _, pt := range pts {
						if items[pt.idx].Response == nil && items[pt.idx].Error == "" {
							items[pt.idx].Error = fmt.Sprintf("internal error: %v", p)
						}
					}
				}
			}()
			s.evaluateGroup(r.Context(), gk, pts, items)
		}(gk, pts)
	}
	for _, i := range loose {
		launched++
		go func(i int) {
			defer func() { done <- struct{}{} }()
			defer func() {
				if p := recover(); p != nil {
					items[i].Error = fmt.Sprintf("internal error: %v", p)
				}
			}()
			resp, _, err := s.evaluateOne(r.Context(), &breq.Requests[i])
			if err != nil {
				items[i].Error = err.Error()
				return
			}
			items[i].Response = resp
		}(i)
	}
	for n := 0; n < launched; n++ {
		<-done
	}
	s.writeJSON(w, http.StatusOK, &BatchResponse{Items: items})
}

// evaluateGroup runs one structure-sharing group of batch items through
// Program.EvaluateBatch under a single worker-pool slot: the compiled
// Program is fetched from (or installed into) the program cache once, and
// every tiling is re-bound into it instead of compiling per item. Each
// item's result is bit-identical to the single-request route (pinned by
// the conformance differentials), so outcomes enter the same response
// cache.
func (s *Server) evaluateGroup(ctx context.Context, gk batchGroupKey, pts []*batchPoint, items []BatchItem) {
	start := time.Now()
	defer func() {
		elapsed := time.Since(start)
		for range pts {
			s.metrics.ObserveLatency(elapsed)
		}
	}()
	ctx, cancel := context.WithTimeout(ctx, s.cfg.Timeout)
	defer cancel()

	dp0 := pts[0].dp
	roots := make([]*core.Node, len(pts))
	for j, pt := range pts {
		roots[j] = pt.dp.root
	}
	var results []*core.Result
	var errs []error
	perr := s.pool.Do(ctx, func() error {
		var p *core.Program
		if v, ok := s.programs.Get(gk.pk); ok {
			cp := v.(*core.Program)
			if _, err := cp.WithTiling(roots[0]); !errors.Is(err, core.ErrStructureMismatch) {
				// Re-bind accepts the structure (a tiling-validation error
				// still means the shapes line up); reuse the compilation.
				p = cp
			}
		}
		if p == nil {
			// Seed the Program from the first compilable tiling; items whose
			// own tiling is invalid get their per-item error from the batch
			// re-bind below, identical to what their own compile would say.
			cerrs := make([]error, len(roots))
			for j, root := range roots {
				cp, cerr := core.Compile(root, dp0.g, dp0.spec)
				if cerr == nil {
					p = cp
					s.programs.Put(gk.pk, p)
					break
				}
				cerrs[j] = cerr
			}
			if p == nil {
				// Every tiling failed to compile: report each item's own error.
				for j, pt := range pts {
					if cerrs[j] != nil {
						items[pt.idx].Error = cerrs[j].Error()
					}
				}
				return nil
			}
		}
		results, errs = p.EvaluateBatch(ctx, roots, gk.opts)
		return nil
	})
	if perr != nil {
		for _, pt := range pts {
			if items[pt.idx].Error == "" {
				items[pt.idx].Error = perr.Error()
			}
		}
		return
	}
	if results == nil {
		return // every tiling failed to compile; errors already set
	}
	for j, pt := range pts {
		if errs[j] != nil {
			items[pt.idx].Error = errs[j].Error()
			continue
		}
		out := &evalOutcome{
			workload: pt.dp.g.Name,
			dfName:   pt.dp.dfName,
			archName: pt.dp.spec.Name,
			result:   NewResultJSON(results[j], pt.dp.spec),
		}
		s.cache.Put(pt.key, out)
		if pt.rk != "" {
			s.reqKeys.Put(pt.rk, pt.key)
		}
		items[pt.idx].Response = out.response(false)
	}
}

// SearchRequest runs the Sec 6 GA+MCTS mapper over the full 3D fusion
// design space for a workload.
type SearchRequest struct {
	Arch     string `json:"arch,omitempty"`
	ArchSpec string `json:"arch_spec,omitempty"`
	Workload string `json:"workload"`

	Population  int   `json:"population,omitempty"`
	Generations int   `json:"generations,omitempty"`
	TileRounds  int   `json:"tile_rounds,omitempty"`
	TopK        int   `json:"top_k,omitempty"`
	Seed        int64 `json:"seed,omitempty"`

	SkipCapacityCheck bool `json:"skip_capacity_check,omitempty"`
	SkipPECheck       bool `json:"skip_pe_check,omitempty"`
	DisableRetention  bool `json:"disable_retention,omitempty"`

	TimeoutMS int  `json:"timeout_ms,omitempty"`
	NoCache   bool `json:"no_cache,omitempty"`

	// Async-job scheduling attributes (ignored by the synchronous
	// /v1/search endpoint): who is submitting, at which priority class,
	// how many failovers before quarantine, and whether to seed the GA
	// population from the best checkpoint of a structurally identical
	// finished search.
	Tenant      string `json:"tenant,omitempty"`
	Class       string `json:"class,omitempty"`
	MaxAttempts int    `json:"max_attempts,omitempty"`
	WarmStart   bool   `json:"warm_start,omitempty"`
}

// SearchResponse reports the best mapping the search found. TimedOut marks
// a best-so-far answer cut short by the deadline; such responses are not
// cached.
type SearchResponse struct {
	Workload string         `json:"workload"`
	Arch     string         `json:"arch"`
	Cached   bool           `json:"cached,omitempty"`
	TimedOut bool           `json:"timed_out,omitempty"`
	Cycles   float64        `json:"cycles"`
	Encoding string         `json:"encoding"`
	Factors  map[string]int `json:"factors"`
	Notation string         `json:"notation"`
	Trace    []float64      `json:"trace"`
	Result   *ResultJSON    `json:"result"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("search")
	var req SearchRequest
	if !s.decode(w, r, &req) {
		return
	}
	resp, err := s.searchOne(r.Context(), &req)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) searchOne(ctx context.Context, req *SearchRequest) (*SearchResponse, error) {
	spec, g, err := resolveArchGraph(req.Arch, req.ArchSpec, req.Workload)
	if err != nil {
		return nil, badRequest(err)
	}
	opts := core.Options{
		SkipCapacityCheck: req.SkipCapacityCheck,
		SkipPECheck:       req.SkipPECheck,
		DisableRetention:  req.DisableRetention,
	}
	key := searchKey(spec, g, req.Population, req.Generations, req.TileRounds, req.TopK, req.Seed, opts)
	if !req.NoCache {
		if v, ok := s.cache.Get(key); ok {
			resp := *v.(*SearchResponse)
			resp.Cached = true
			return &resp, nil
		}
	}
	ctx, cancel := context.WithTimeout(ctx, s.requestTimeout(req.TimeoutMS))
	defer cancel()

	var resp *SearchResponse
	perr := s.pool.Do(ctx, func() error {
		ts := &mapper.TreeSearch{
			G: g, Spec: spec, Opts: opts,
			Population: req.Population, Generations: req.Generations,
			TileRounds: req.TileRounds, TopK: req.TopK,
			Parallel: s.pool.Workers(), Seed: req.Seed,
			Cache: s.cache, // GA fitness memoization shares the service cache
		}
		res := ts.RunContext(ctx)
		if res.Best == nil {
			if err := ctx.Err(); err != nil {
				return err
			}
			return unprocessable(fmt.Errorf("no valid dataflow found for %s on %s", g.Name, spec.Name))
		}
		var err error
		resp, err = NewSearchResponse(g, spec, res, ctx.Err() != nil)
		return err
	})
	if perr != nil {
		return nil, perr
	}
	if !resp.TimedOut {
		s.cache.Put(key, resp)
	}
	return resp, nil
}

// NewSearchResponse renders a finished search into the shared response
// shape: it rebuilds the winning tree for the notation dump and result
// block, so the synchronous endpoint, the async jobs, and the CLI all
// report a search identically.
func NewSearchResponse(g *workload.Graph, spec *arch.Spec, res *mapper.TreeSearchResult, timedOut bool) (*SearchResponse, error) {
	gd := mapper.NewGeneratedDataflow("best", g, spec, res.Encoding)
	root, err := gd.Build(res.Best.Factors)
	if err != nil {
		return nil, err
	}
	return &SearchResponse{
		Workload: g.Name,
		Arch:     spec.Name,
		TimedOut: timedOut,
		Cycles:   res.Best.Cycles,
		Encoding: res.Encoding.String(),
		Factors:  res.Best.Factors,
		Notation: notation.Print(root),
		Trace:    res.Trace,
		Result:   NewResultJSON(res.Best.Result, spec),
	}, nil
}

// Healthz answers liveness probes.
type Healthz struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	CacheEntries  int     `json:"cache_entries"`
	InFlight      int64   `json:"in_flight"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, &Healthz{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
		CacheEntries:  s.cache.Len(),
		InFlight:      s.pool.InFlight(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w, s)
}

// decode reads a size-limited JSON body, answering 400 itself on failure.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, 4<<20)
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// errorBody is the JSON error envelope. Structurally invalid (400) and
// infeasible (422) mappings additionally carry the static analyzer's
// diagnostics, so API clients get the same coded, positioned findings as
// `tileflow vet`.
type errorBody struct {
	Error string `json:"error"`
	// Code is a stable machine-readable cause (e.g. sched.CodeTenantQuota
	// on a 429); clients branch on it instead of parsing Error.
	Code        string    `json:"code,omitempty"`
	Diagnostics diag.List `json:"diagnostics,omitempty"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeErrorDiags(w, status, err, nil)
}

// writeErrorCode writes a coded error envelope. The CLI's server-submit
// mode relays these bodies byte-for-byte, so a quota refusal renders
// identically whether it reached the client over HTTP or through
// `tileflow-search -json`.
func (s *Server) writeErrorCode(w http.ResponseWriter, status int, code string, err error) {
	s.metrics.IncError()
	s.writeJSON(w, status, &errorBody{Error: err.Error(), Code: code})
}

func (s *Server) writeErrorDiags(w http.ResponseWriter, status int, err error, diags diag.List) {
	s.metrics.IncError()
	s.writeJSON(w, status, &errorBody{Error: err.Error(), Diagnostics: diags})
}

// vetOne statically analyzes the design point a request names, without
// evaluating (or even compiling) it. It mirrors resolve()'s request
// validation, but a mapping that fails analysis is a successful vet: the
// diagnostics are the answer, not an error.
func (s *Server) vetOne(req *EvaluateRequest) (check.VetReport, error) {
	form, err := SelectInput(req)
	if err != nil {
		return check.VetReport{}, badRequest(err)
	}
	opts := core.Options{
		SkipCapacityCheck: req.SkipCapacityCheck,
		SkipPECheck:       req.SkipPECheck,
		DisableRetention:  req.DisableRetention,
	}
	if form == inputConfig {
		// A config that fails to load is a successful vet: the positioned
		// TF-YAML diagnostics are the answer. A config that loads merges
		// any loader warnings with the analyzer's findings.
		cfg, diags := yamlfe.Load(req.ConfigYAML)
		if cfg == nil {
			return check.NewReport(diags), nil
		}
		diags = append(diags, check.Analyze(cfg.Root, nil, cfg.Graph, cfg.Spec, opts)...)
		diags.Sort()
		return check.NewReport(diags), nil
	}
	var spec *arch.Spec
	switch {
	case req.ArchSpec != "":
		spec, err = arch.ParseSpec(req.ArchSpec)
	case req.Arch != "":
		spec, err = PickArch(req.Arch)
	default:
		err = fmt.Errorf("one of arch or arch_spec is required")
	}
	if err != nil {
		return check.VetReport{}, badRequest(err)
	}
	switch form {
	case inputNotation:
		var g *workload.Graph
		switch {
		case req.WorkloadSpec != "":
			if req.Workload != "" {
				return check.VetReport{}, badRequest(fmt.Errorf("workload and workload_spec are mutually exclusive"))
			}
			g, err = workload.ParseGraph(req.WorkloadSpec)
		case req.Workload != "":
			g, err = PickGraph(req.Workload)
		default:
			err = fmt.Errorf("one of workload or workload_spec is required")
		}
		if err != nil {
			return check.VetReport{}, badRequest(err)
		}
		return check.NewReport(check.AnalyzeSource(req.Notation, g, spec, opts)), nil
	case inputDataflow:
		if req.Tune > 0 {
			return check.VetReport{}, badRequest(fmt.Errorf("vet analyzes one concrete mapping; drop tune"))
		}
		df, err := PickDataflow(req.Dataflow, req.Workload, spec)
		if err != nil {
			return check.VetReport{}, badRequest(err)
		}
		factors := df.DefaultFactors()
		if len(req.Factors) > 0 {
			factors = req.Factors
		}
		root, err := df.Build(factors)
		if err != nil {
			return check.VetReport{}, badRequest(err)
		}
		return check.NewReport(check.Analyze(root, nil, df.Graph(), spec, opts)), nil
	}
	return check.VetReport{}, badRequest(fmt.Errorf("unreachable input form %q", form))
}

// rejectionDiagnostics recomputes the static diagnostics behind a 400/422
// rejection so the error body can carry them. Requests without one concrete
// mapping (tuned templates, malformed requests) yield nil — the error
// string stands alone.
func rejectionDiagnostics(req *EvaluateRequest, err error, status int) diag.List {
	if diags := requestDiagnostics(err); diags != nil {
		return diags
	}
	if status != http.StatusBadRequest && status != http.StatusUnprocessableEntity {
		return nil
	}
	if req.Tune > 0 {
		return nil
	}
	s := &Server{} // vetOne touches no server state
	rep, err := s.vetOne(req)
	if err != nil {
		return nil
	}
	return rep.Diagnostics
}

func (s *Server) handleVet(w http.ResponseWriter, r *http.Request) {
	s.metrics.IncRequest("vet")
	var req EvaluateRequest
	if !s.decode(w, r, &req) {
		return
	}
	report, err := s.vetOne(&req)
	if err != nil {
		s.writeErrorDiags(w, statusFor(err), err, requestDiagnostics(err))
		return
	}
	// Encode with the shared VetReport codec so the body is byte-identical
	// to `tileflow vet -json` for the same design point.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	report.WriteJSON(w)
}
