package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/notation"
	"repro/internal/workload"
)

// TestEvaluateWorkloadSpec posts an inline (non-catalog) workload graph in
// the CanonicalGraph text format together with a notation mapping and checks
// the served result byte-matches a direct core.Evaluate of the same point.
func TestEvaluateWorkloadSpec(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	g := workload.Matmul(8, 8, 8)
	spec := arch.Edge()
	src := `leaf mm = op mm { Sp(m:2), m:4, n:8, k:8 }
tile root @L2 = { m:1 } (mm)
`
	req := EvaluateRequest{
		Arch:         "edge",
		WorkloadSpec: workload.CanonicalGraph(g),
		Notation:     src,
	}
	resp, body := postJSON(t, hs.URL+"/v1/evaluate", &req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got EvaluateResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Workload != g.Name {
		t.Errorf("workload = %q, want parsed graph name %q", got.Workload, g.Name)
	}
	root, err := notation.Parse(src, g)
	if err != nil {
		t.Fatalf("notation.Parse: %v", err)
	}
	res, err := core.Evaluate(root, g, spec, core.Options{})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	want := &EvaluateResponse{Workload: g.Name, Dataflow: "notation", Arch: spec.Name, Result: NewResultJSON(res, spec)}
	if gotJSON, wantJSON := canonicalJSON(t, &got), canonicalJSON(t, want); gotJSON != wantJSON {
		t.Errorf("served response differs from direct evaluation:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

// TestWorkloadSpecValidation pins the request-shape rules for the inline
// workload form.
func TestWorkloadSpecValidation(t *testing.T) {
	spec := workload.CanonicalGraph(workload.Matmul(4, 4, 4))
	cases := []struct {
		name string
		req  EvaluateRequest
	}{
		{"workload_spec without notation", EvaluateRequest{Arch: "edge", WorkloadSpec: spec, Dataflow: "Layerwise"}},
		{"workload_spec with workload", EvaluateRequest{Arch: "edge", Workload: "attention:Bert-S", WorkloadSpec: spec, Notation: "x"}},
		{"malformed workload_spec", EvaluateRequest{Arch: "edge", WorkloadSpec: "op broken", Notation: "x"}},
		{"neither workload form", EvaluateRequest{Arch: "edge", Notation: "x"}},
	}
	for _, tc := range cases {
		if _, err := resolve(&tc.req); err == nil {
			t.Errorf("%s: want resolve error, got nil", tc.name)
		}
	}
}
