package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jobs"
	"repro/internal/sched"
)

// endpoints the request counter tracks, in stable output order.
var endpointNames = []string{
	"evaluate", "evaluate_batch", "search", "vet",
	"jobs_submit", "jobs_list", "jobs_get", "jobs_events", "jobs_cancel",
}

// Metrics collects the service counters exported at /metrics in Prometheus
// text exposition format, using only the standard library.
type Metrics struct {
	requests map[string]*atomic.Uint64
	errors   atomic.Uint64
	latency  latencySampler
}

// NewMetrics allocates the counter set.
func NewMetrics() *Metrics {
	m := &Metrics{requests: make(map[string]*atomic.Uint64, len(endpointNames))}
	for _, e := range endpointNames {
		m.requests[e] = &atomic.Uint64{}
	}
	return m
}

// IncRequest counts one request against a known endpoint.
func (m *Metrics) IncRequest(endpoint string) {
	if c, ok := m.requests[endpoint]; ok {
		c.Add(1)
	}
}

// IncError counts one request that ended in an error response.
func (m *Metrics) IncError() { m.errors.Add(1) }

// ObserveLatency records one evaluate latency sample.
func (m *Metrics) ObserveLatency(d time.Duration) { m.latency.observe(d.Seconds()) }

// latencySampler keeps a fixed-size ring of recent latency samples plus
// running count/sum, enough for the p50/p99 summary quantiles without any
// dependency.
type latencySampler struct {
	mu    sync.Mutex
	ring  [4096]float64
	next  int
	count uint64
	sum   float64
}

func (s *latencySampler) observe(sec float64) {
	s.mu.Lock()
	s.ring[s.next] = sec
	s.next = (s.next + 1) % len(s.ring)
	s.count++
	s.sum += sec
	s.mu.Unlock()
}

// quantiles reports the requested quantiles over the retained window, plus
// lifetime count and sum. With no samples it returns zeros.
func (s *latencySampler) quantiles(qs []float64) (vals []float64, count uint64, sum float64) {
	s.mu.Lock()
	n := int(s.count)
	if n > len(s.ring) {
		n = len(s.ring)
	}
	samples := make([]float64, n)
	copy(samples, s.ring[:n])
	count, sum = s.count, s.sum
	s.mu.Unlock()

	vals = make([]float64, len(qs))
	if n == 0 {
		return vals, count, sum
	}
	sort.Float64s(samples)
	for i, q := range qs {
		idx := int(q * float64(n-1))
		vals[i] = samples[idx]
	}
	return vals, count, sum
}

// WritePrometheus renders all metrics. Cache and pool state are passed in
// so the metrics object itself stays a plain counter bag.
func (m *Metrics) WritePrometheus(w io.Writer, s *Server) {
	fmt.Fprintf(w, "# HELP tileflow_requests_total Requests received, by endpoint.\n")
	fmt.Fprintf(w, "# TYPE tileflow_requests_total counter\n")
	for _, e := range endpointNames {
		fmt.Fprintf(w, "tileflow_requests_total{endpoint=%q} %d\n", e, m.requests[e].Load())
	}
	fmt.Fprintf(w, "# HELP tileflow_request_errors_total Requests answered with an error status.\n")
	fmt.Fprintf(w, "# TYPE tileflow_request_errors_total counter\n")
	fmt.Fprintf(w, "tileflow_request_errors_total %d\n", m.errors.Load())

	st := s.CacheStats()
	fmt.Fprintf(w, "# HELP tileflow_cache_hits_total Evaluations served from the memoization cache (including shared in-flight results).\n")
	fmt.Fprintf(w, "# TYPE tileflow_cache_hits_total counter\n")
	fmt.Fprintf(w, "tileflow_cache_hits_total %d\n", st.Hits)
	fmt.Fprintf(w, "# HELP tileflow_cache_misses_total Evaluations that ran the analysis.\n")
	fmt.Fprintf(w, "# TYPE tileflow_cache_misses_total counter\n")
	fmt.Fprintf(w, "tileflow_cache_misses_total %d\n", st.Misses)
	fmt.Fprintf(w, "# HELP tileflow_cache_evictions_total Entries evicted by the LRU policy.\n")
	fmt.Fprintf(w, "# TYPE tileflow_cache_evictions_total counter\n")
	fmt.Fprintf(w, "tileflow_cache_evictions_total %d\n", st.Evictions)
	fmt.Fprintf(w, "# HELP tileflow_cache_entries Resident cache entries.\n")
	fmt.Fprintf(w, "# TYPE tileflow_cache_entries gauge\n")
	fmt.Fprintf(w, "tileflow_cache_entries %d\n", s.cache.Len())

	fmt.Fprintf(w, "# HELP tileflow_inflight_evaluations Evaluations currently holding a worker slot.\n")
	fmt.Fprintf(w, "# TYPE tileflow_inflight_evaluations gauge\n")
	fmt.Fprintf(w, "tileflow_inflight_evaluations %d\n", s.pool.InFlight())
	fmt.Fprintf(w, "# HELP tileflow_worker_slots Worker pool size.\n")
	fmt.Fprintf(w, "# TYPE tileflow_worker_slots gauge\n")
	fmt.Fprintf(w, "tileflow_worker_slots %d\n", s.pool.Workers())

	js := s.jobs.Stats()
	fmt.Fprintf(w, "# HELP tileflow_jobs_queue_depth Search jobs waiting for a worker.\n")
	fmt.Fprintf(w, "# TYPE tileflow_jobs_queue_depth gauge\n")
	fmt.Fprintf(w, "tileflow_jobs_queue_depth %d\n", js.QueueDepth)
	fmt.Fprintf(w, "# HELP tileflow_jobs_running Search jobs currently executing.\n")
	fmt.Fprintf(w, "# TYPE tileflow_jobs_running gauge\n")
	fmt.Fprintf(w, "tileflow_jobs_running %d\n", js.Running)
	fmt.Fprintf(w, "# HELP tileflow_jobs_completed_total Jobs that finished successfully.\n")
	fmt.Fprintf(w, "# TYPE tileflow_jobs_completed_total counter\n")
	fmt.Fprintf(w, "tileflow_jobs_completed_total %d\n", js.Done)
	fmt.Fprintf(w, "# HELP tileflow_jobs_failed_total Jobs that ended in an error.\n")
	fmt.Fprintf(w, "# TYPE tileflow_jobs_failed_total counter\n")
	fmt.Fprintf(w, "tileflow_jobs_failed_total %d\n", js.Failed)
	fmt.Fprintf(w, "# HELP tileflow_jobs_cancelled_total Jobs cancelled by clients.\n")
	fmt.Fprintf(w, "# TYPE tileflow_jobs_cancelled_total counter\n")
	fmt.Fprintf(w, "tileflow_jobs_cancelled_total %d\n", js.Cancelled)
	fmt.Fprintf(w, "# HELP tileflow_jobs_poisoned_total Jobs quarantined after exhausting their attempt budget.\n")
	fmt.Fprintf(w, "# TYPE tileflow_jobs_poisoned_total counter\n")
	fmt.Fprintf(w, "tileflow_jobs_poisoned_total %d\n", s.store.PoisonCount())
	fmt.Fprintf(w, "# HELP tileflow_job_checkpoint_age_seconds Staleness of the most out-of-date checkpoint among running jobs.\n")
	fmt.Fprintf(w, "# TYPE tileflow_job_checkpoint_age_seconds gauge\n")
	fmt.Fprintf(w, "tileflow_job_checkpoint_age_seconds %g\n", js.CheckpointAge.Seconds())

	m.writeSched(w, s, js)
	m.writeFleet(w, s)

	qs, count, sum := m.latency.quantiles([]float64{0.5, 0.99})
	fmt.Fprintf(w, "# HELP tileflow_evaluate_latency_seconds Evaluate request latency.\n")
	fmt.Fprintf(w, "# TYPE tileflow_evaluate_latency_seconds summary\n")
	fmt.Fprintf(w, "tileflow_evaluate_latency_seconds{quantile=\"0.5\"} %g\n", qs[0])
	fmt.Fprintf(w, "tileflow_evaluate_latency_seconds{quantile=\"0.99\"} %g\n", qs[1])
	fmt.Fprintf(w, "tileflow_evaluate_latency_seconds_sum %g\n", sum)
	fmt.Fprintf(w, "tileflow_evaluate_latency_seconds_count %d\n", count)
}

// writeSched renders the scheduler, quota, and warm-start library state.
func (m *Metrics) writeSched(w io.Writer, s *Server, js jobs.Stats) {
	ss := s.sched.Stats()
	schedClasses := []sched.Class{sched.Interactive, sched.Batch, sched.Bulk}
	fmt.Fprintf(w, "# HELP tileflow_sched_picks_total Scheduler dequeues, by priority class.\n")
	fmt.Fprintf(w, "# TYPE tileflow_sched_picks_total counter\n")
	for _, c := range schedClasses {
		fmt.Fprintf(w, "tileflow_sched_picks_total{class=%q} %d\n", c, ss.Picks[c])
	}
	fmt.Fprintf(w, "# HELP tileflow_jobs_queue_depth_class Queued jobs, by priority class.\n")
	fmt.Fprintf(w, "# TYPE tileflow_jobs_queue_depth_class gauge\n")
	depth := map[sched.Class]int{}
	for raw, n := range js.QueueDepthByClass {
		depth[sched.ClassOf(raw)] += n
	}
	for _, c := range schedClasses {
		fmt.Fprintf(w, "tileflow_jobs_queue_depth_class{class=%q} %d\n", c, depth[c])
	}
	tenants := make([]string, 0, len(js.QueueDepthByTenant))
	for t := range js.QueueDepthByTenant {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	fmt.Fprintf(w, "# HELP tileflow_jobs_queue_depth_tenant Queued jobs, by tenant.\n")
	fmt.Fprintf(w, "# TYPE tileflow_jobs_queue_depth_tenant gauge\n")
	for _, t := range tenants {
		fmt.Fprintf(w, "tileflow_jobs_queue_depth_tenant{tenant=%q} %d\n", t, js.QueueDepthByTenant[t])
	}
	fmt.Fprintf(w, "# HELP tileflow_sched_quota_deferrals_total Claims declined because every queued job's tenant was at its running quota.\n")
	fmt.Fprintf(w, "# TYPE tileflow_sched_quota_deferrals_total counter\n")
	fmt.Fprintf(w, "tileflow_sched_quota_deferrals_total %d\n", ss.QuotaDeferrals)
	fmt.Fprintf(w, "# HELP tileflow_sched_quota_rejects_total Submissions refused at admission because the tenant was at its active quota.\n")
	fmt.Fprintf(w, "# TYPE tileflow_sched_quota_rejects_total counter\n")
	fmt.Fprintf(w, "tileflow_sched_quota_rejects_total %d\n", ss.QuotaRejects)

	ws := s.warm.Stats()
	fmt.Fprintf(w, "# HELP tileflow_warmstart_entries Structure keys with a stored donor checkpoint.\n")
	fmt.Fprintf(w, "# TYPE tileflow_warmstart_entries gauge\n")
	fmt.Fprintf(w, "tileflow_warmstart_entries %d\n", ws.Entries)
	fmt.Fprintf(w, "# HELP tileflow_warmstart_hits_total Warm-start lookups that found a donor.\n")
	fmt.Fprintf(w, "# TYPE tileflow_warmstart_hits_total counter\n")
	fmt.Fprintf(w, "tileflow_warmstart_hits_total %d\n", ws.Hits)
	fmt.Fprintf(w, "# HELP tileflow_warmstart_misses_total Warm-start lookups that found no donor.\n")
	fmt.Fprintf(w, "# TYPE tileflow_warmstart_misses_total counter\n")
	fmt.Fprintf(w, "tileflow_warmstart_misses_total %d\n", ws.Misses)
	fmt.Fprintf(w, "# HELP tileflow_warmstart_puts_total Donor checkpoints installed (new key or better cycles).\n")
	fmt.Fprintf(w, "# TYPE tileflow_warmstart_puts_total counter\n")
	fmt.Fprintf(w, "tileflow_warmstart_puts_total %d\n", ws.Puts)
}

// writeFleet renders the coordinator-side protocol counters, and — on a
// node running a fleet worker — the per-worker gauges and the remote memo
// tier's traffic.
func (m *Metrics) writeFleet(w io.Writer, s *Server) {
	cs := s.coord.Stats()
	fmt.Fprintf(w, "# HELP tileflow_fleet_claims_total Job leases granted to workers.\n")
	fmt.Fprintf(w, "# TYPE tileflow_fleet_claims_total counter\n")
	fmt.Fprintf(w, "tileflow_fleet_claims_total %d\n", cs.Claims)
	fmt.Fprintf(w, "# HELP tileflow_fleet_renews_total Lease heartbeats accepted.\n")
	fmt.Fprintf(w, "# TYPE tileflow_fleet_renews_total counter\n")
	fmt.Fprintf(w, "tileflow_fleet_renews_total %d\n", cs.Renews)
	fmt.Fprintf(w, "# HELP tileflow_fleet_stale_rejections_total Writes refused because the sender's fencing token was superseded.\n")
	fmt.Fprintf(w, "# TYPE tileflow_fleet_stale_rejections_total counter\n")
	fmt.Fprintf(w, "tileflow_fleet_stale_rejections_total %d\n", cs.StaleRejections)
	fmt.Fprintf(w, "# HELP tileflow_fleet_checkpoints_total Checkpoint payloads applied from workers.\n")
	fmt.Fprintf(w, "# TYPE tileflow_fleet_checkpoints_total counter\n")
	fmt.Fprintf(w, "tileflow_fleet_checkpoints_total %d\n", cs.Checkpoints)
	fmt.Fprintf(w, "# HELP tileflow_fleet_completes_total Jobs finalized by fleet workers.\n")
	fmt.Fprintf(w, "# TYPE tileflow_fleet_completes_total counter\n")
	fmt.Fprintf(w, "tileflow_fleet_completes_total %d\n", cs.Completes)
	fmt.Fprintf(w, "# HELP tileflow_fleet_releases_total Jobs handed back to the queue by draining workers.\n")
	fmt.Fprintf(w, "# TYPE tileflow_fleet_releases_total counter\n")
	fmt.Fprintf(w, "tileflow_fleet_releases_total %d\n", cs.Releases)
	fmt.Fprintf(w, "# HELP tileflow_fleet_failovers_total Jobs re-queued after their worker's lease expired.\n")
	fmt.Fprintf(w, "# TYPE tileflow_fleet_failovers_total counter\n")
	fmt.Fprintf(w, "tileflow_fleet_failovers_total %d\n", cs.Failovers)
	fmt.Fprintf(w, "# HELP tileflow_fleet_sweep_poisons_total Jobs the lease sweep quarantined after their last allowed failover.\n")
	fmt.Fprintf(w, "# TYPE tileflow_fleet_sweep_poisons_total counter\n")
	fmt.Fprintf(w, "tileflow_fleet_sweep_poisons_total %d\n", cs.SweepPoisons)

	// Per-node presence: the heartbeat-age gauge is what separates an idle
	// worker (recent empty claim polls keep its age small) from a gone one
	// (age grows without bound once it stops polling).
	if nodes := s.coord.Nodes(); len(nodes) > 0 {
		fmt.Fprintf(w, "# HELP tileflow_fleet_node_heartbeat_age_seconds Seconds since this node last contacted the coordinator.\n")
		fmt.Fprintf(w, "# TYPE tileflow_fleet_node_heartbeat_age_seconds gauge\n")
		for _, ni := range nodes {
			fmt.Fprintf(w, "tileflow_fleet_node_heartbeat_age_seconds{node=%q,state=%q} %g\n", ni.Node, ni.State, ni.AgeSeconds)
		}
		fmt.Fprintf(w, "# HELP tileflow_fleet_node_leases_held Leases each known node currently holds.\n")
		fmt.Fprintf(w, "# TYPE tileflow_fleet_node_leases_held gauge\n")
		for _, ni := range nodes {
			fmt.Fprintf(w, "tileflow_fleet_node_leases_held{node=%q} %d\n", ni.Node, ni.LeasesHeld)
		}
	}
	fmt.Fprintf(w, "# HELP tileflow_fleet_memo_hits_total Shared-cache lookups from workers that hit.\n")
	fmt.Fprintf(w, "# TYPE tileflow_fleet_memo_hits_total counter\n")
	fmt.Fprintf(w, "tileflow_fleet_memo_hits_total %d\n", cs.MemoHits)
	fmt.Fprintf(w, "# HELP tileflow_fleet_memo_misses_total Shared-cache lookups from workers that missed.\n")
	fmt.Fprintf(w, "# TYPE tileflow_fleet_memo_misses_total counter\n")
	fmt.Fprintf(w, "tileflow_fleet_memo_misses_total %d\n", cs.MemoMisses)
	fmt.Fprintf(w, "# HELP tileflow_fleet_memo_puts_total Shared-cache values written through by workers.\n")
	fmt.Fprintf(w, "# TYPE tileflow_fleet_memo_puts_total counter\n")
	fmt.Fprintf(w, "tileflow_fleet_memo_puts_total %d\n", cs.MemoPuts)

	if s.worker == nil {
		return
	}
	ws := s.worker.Stats()
	fmt.Fprintf(w, "# HELP tileflow_fleet_worker_leases Jobs this node currently runs under fleet leases.\n")
	fmt.Fprintf(w, "# TYPE tileflow_fleet_worker_leases gauge\n")
	fmt.Fprintf(w, "tileflow_fleet_worker_leases{node=%q} %d\n", ws.Node, ws.LeasesHeld)
	fmt.Fprintf(w, "# HELP tileflow_fleet_worker_claims_total Jobs this node claimed from the coordinator.\n")
	fmt.Fprintf(w, "# TYPE tileflow_fleet_worker_claims_total counter\n")
	fmt.Fprintf(w, "tileflow_fleet_worker_claims_total{node=%q} %d\n", ws.Node, ws.Claims)
	fmt.Fprintf(w, "# HELP tileflow_fleet_worker_checkpoints_shipped_total Checkpoints this node shipped to the coordinator.\n")
	fmt.Fprintf(w, "# TYPE tileflow_fleet_worker_checkpoints_shipped_total counter\n")
	fmt.Fprintf(w, "tileflow_fleet_worker_checkpoints_shipped_total{node=%q} %d\n", ws.Node, ws.CheckpointsShipped)
	fmt.Fprintf(w, "# HELP tileflow_fleet_worker_renew_latency_seconds Most recent lease renewal round-trip.\n")
	fmt.Fprintf(w, "# TYPE tileflow_fleet_worker_renew_latency_seconds gauge\n")
	fmt.Fprintf(w, "tileflow_fleet_worker_renew_latency_seconds{node=%q} %g\n", ws.Node, ws.RenewLatency.Seconds())
	fmt.Fprintf(w, "# HELP tileflow_fleet_worker_stale_losses_total Jobs this node abandoned after losing their lease.\n")
	fmt.Fprintf(w, "# TYPE tileflow_fleet_worker_stale_losses_total counter\n")
	fmt.Fprintf(w, "tileflow_fleet_worker_stale_losses_total{node=%q} %d\n", ws.Node, ws.StaleLosses)

	rs := s.remote.RemoteStats()
	fmt.Fprintf(w, "# HELP tileflow_fleet_remote_memo_hits_total Local cache misses served by the coordinator's memo tier.\n")
	fmt.Fprintf(w, "# TYPE tileflow_fleet_remote_memo_hits_total counter\n")
	fmt.Fprintf(w, "tileflow_fleet_remote_memo_hits_total{node=%q} %d\n", ws.Node, rs.Hits)
	fmt.Fprintf(w, "# HELP tileflow_fleet_remote_memo_misses_total Remote memo lookups that came back empty.\n")
	fmt.Fprintf(w, "# TYPE tileflow_fleet_remote_memo_misses_total counter\n")
	fmt.Fprintf(w, "tileflow_fleet_remote_memo_misses_total{node=%q} %d\n", ws.Node, rs.Misses)
}
