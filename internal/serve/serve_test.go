package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

func postJSON(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, data
}

// directResponse computes the reference answer for a template design point
// without going through the service, the way cmd/tileflow does it.
func directResponse(t *testing.T, archName, wl, dfName string, opts core.Options) *EvaluateResponse {
	t.Helper()
	spec, err := PickArch(archName)
	if err != nil {
		t.Fatalf("PickArch: %v", err)
	}
	df, err := PickDataflow(dfName, wl, spec)
	if err != nil {
		t.Fatalf("PickDataflow: %v", err)
	}
	g := df.Graph()
	root, err := df.Build(df.DefaultFactors())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := core.Evaluate(root, g, spec, opts)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	return &EvaluateResponse{Workload: g.Name, Dataflow: dfName, Arch: spec.Name, Result: NewResultJSON(res, spec)}
}

// canonicalJSON marshals with the cached flag cleared, so served and direct
// responses compare byte-for-byte.
func canonicalJSON(t *testing.T, resp *EvaluateResponse) string {
	t.Helper()
	c := *resp
	c.Cached = false
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatalf("marshal response: %v", err)
	}
	return string(b)
}

func TestEvaluateMatchesDirect(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	req := EvaluateRequest{Arch: "edge", Workload: "attention:Bert-S", Dataflow: "FLAT-RGran"}
	resp, body := postJSON(t, hs.URL+"/v1/evaluate", &req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got EvaluateResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := directResponse(t, "edge", "attention:Bert-S", "FLAT-RGran", core.Options{})
	if gotJSON, wantJSON := canonicalJSON(t, &got), canonicalJSON(t, want); gotJSON != wantJSON {
		t.Errorf("served response differs from direct evaluation:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	if got.Result.Cycles <= 0 {
		t.Errorf("cycles = %v, want > 0", got.Result.Cycles)
	}
}

// metricValue parses one un-labeled counter from Prometheus text output.
func metricValue(t *testing.T, metrics, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(metrics, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parse %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, metrics)
	return 0
}

func fetchMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	return string(b)
}

// TestConcurrentRequestsHitRate fires 100 parallel requests over 10
// distinct design points: every response must match the sequential
// reference, and single-flight collapsing must hold the cache hit rate at
// or above 85% (exactly 10 design points are ever analyzed).
func TestConcurrentRequestsHitRate(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	opts := core.Options{SkipCapacityCheck: true, SkipPECheck: true}
	var points []EvaluateRequest
	for _, df := range []string{"Layerwise", "Uni-pipe", "FLAT-MGran", "FLAT-BGran", "FLAT-HGran", "FLAT-RGran", "Chimera", "TileFlow"} {
		points = append(points, EvaluateRequest{
			Arch: "edge", Workload: "attention:Bert-S", Dataflow: df,
			SkipCapacityCheck: true, SkipPECheck: true,
		})
	}
	points = append(points,
		EvaluateRequest{Arch: "cloud", Workload: "attention:Bert-B", Dataflow: "Layerwise", SkipCapacityCheck: true, SkipPECheck: true},
		EvaluateRequest{Arch: "cloud", Workload: "conv:CC1", Dataflow: "Fused-Layer", SkipCapacityCheck: true, SkipPECheck: true},
	)
	if len(points) != 10 {
		t.Fatalf("want 10 design points, have %d", len(points))
	}
	want := make([]string, len(points))
	for i, p := range points {
		want[i] = canonicalJSON(t, directResponse(t, p.Arch, p.Workload, p.Dataflow, opts))
	}

	const requests = 100
	got := make([]string, requests)
	errs := make([]error, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, hs.URL+"/v1/evaluate", &points[i%len(points)])
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			var er EvaluateResponse
			if err := json.Unmarshal(body, &er); err != nil {
				errs[i] = err
				return
			}
			got[i] = canonicalJSON(t, &er)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d (%s): %v", i, points[i%len(points)].Dataflow, err)
		}
		if got[i] != want[i%len(points)] {
			t.Errorf("request %d: response differs from direct evaluation\n got %s\nwant %s", i, got[i], want[i%len(points)])
		}
	}

	metrics := fetchMetrics(t, hs.URL)
	hits := metricValue(t, metrics, "tileflow_cache_hits_total")
	misses := metricValue(t, metrics, "tileflow_cache_misses_total")
	if misses != float64(len(points)) {
		t.Errorf("misses = %v, want exactly %d (one analysis per design point)", misses, len(points))
	}
	if rate := hits / (hits + misses); rate < 0.85 {
		t.Errorf("cache hit rate = %.2f (hits=%v misses=%v), want >= 0.85", rate, hits, misses)
	}
}

// TestCanonicalKeyEquivalence: two literally different requests that
// resolve to the same design point (explicit default factors vs none)
// must share one cache entry.
func TestCanonicalKeyEquivalence(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	first := EvaluateRequest{Arch: "edge", Workload: "attention:Bert-S", Dataflow: "FLAT-RGran"}
	resp, body := postJSON(t, hs.URL+"/v1/evaluate", &first)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first: status %d: %s", resp.StatusCode, body)
	}

	spec, err := PickArch("edge")
	if err != nil {
		t.Fatal(err)
	}
	df, err := PickDataflow("FLAT-RGran", "attention:Bert-S", spec)
	if err != nil {
		t.Fatal(err)
	}
	second := first
	second.Factors = df.DefaultFactors()
	resp, body = postJSON(t, hs.URL+"/v1/evaluate", &second)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second: status %d: %s", resp.StatusCode, body)
	}
	var er EvaluateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !er.Cached {
		t.Errorf("explicit-default-factors request missed the cache; canonical keys differ")
	}
}

func TestCachedResponseBytesMatchCold(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	req := EvaluateRequest{Arch: "edge", Workload: "attention:Bert-S", Dataflow: "Chimera"}
	resp, cold := postJSON(t, hs.URL+"/v1/evaluate", &req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold: status %d: %s", resp.StatusCode, cold)
	}
	resp, warm := postJSON(t, hs.URL+"/v1/evaluate", &req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm: status %d: %s", resp.StatusCode, warm)
	}
	var coldResp, warmResp EvaluateResponse
	if err := json.Unmarshal(cold, &coldResp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(warm, &warmResp); err != nil {
		t.Fatal(err)
	}
	if coldResp.Cached {
		t.Errorf("first request reported cached")
	}
	if !warmResp.Cached {
		t.Errorf("second request not served from cache")
	}
	if got, want := canonicalJSON(t, &warmResp), canonicalJSON(t, &coldResp); got != want {
		t.Errorf("cached response differs from cold response:\n got %s\nwant %s", got, want)
	}
}

// TestCachedSpeedup checks the acceptance criterion directly at the
// pipeline layer: a repeated identical request must be served at least
// 10x faster than the cold evaluation.
func TestCachedSpeedup(t *testing.T) {
	s := New(Config{})
	req := EvaluateRequest{Arch: "edge", Workload: "attention:Bert-S", Dataflow: "FLAT-RGran"}
	ctx := context.Background()

	coldStart := time.Now()
	if _, _, err := s.evaluateOne(ctx, &req); err != nil {
		t.Fatalf("cold evaluate: %v", err)
	}
	cold := time.Since(coldStart)

	// Median of repeated hits, so one scheduler hiccup cannot fail the test.
	const warmRuns = 64
	warm := make([]time.Duration, warmRuns)
	for i := range warm {
		start := time.Now()
		resp, _, err := s.evaluateOne(ctx, &req)
		if err != nil {
			t.Fatalf("warm evaluate: %v", err)
		}
		if !resp.Cached {
			t.Fatalf("warm run %d not served from cache", i)
		}
		warm[i] = time.Since(start)
	}
	for i := range warm { // insertion sort; n is tiny
		for j := i; j > 0 && warm[j] < warm[j-1]; j-- {
			warm[j], warm[j-1] = warm[j-1], warm[j]
		}
	}
	median := warm[warmRuns/2]
	if median*10 > cold {
		t.Errorf("cached median %v vs cold %v: speedup %.1fx, want >= 10x",
			median, cold, float64(cold)/float64(median))
	}
}

func TestBatchAlignsItemsWithRequests(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	breq := BatchRequest{Requests: []EvaluateRequest{
		{Arch: "edge", Workload: "attention:Bert-S", Dataflow: "FLAT-RGran"},
		{Arch: "edge", Workload: "attention:Bert-S", Dataflow: "NoSuchDataflow"},
		{Arch: "edge", Workload: "attention:Bert-S", Dataflow: "Layerwise"},
	}}
	resp, body := postJSON(t, hs.URL+"/v1/evaluate/batch", &breq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var bresp BatchResponse
	if err := json.Unmarshal(body, &bresp); err != nil {
		t.Fatal(err)
	}
	if len(bresp.Items) != 3 {
		t.Fatalf("items = %d, want 3", len(bresp.Items))
	}
	if bresp.Items[0].Response == nil || bresp.Items[0].Error != "" {
		t.Errorf("item 0: want response, got error %q", bresp.Items[0].Error)
	}
	if bresp.Items[1].Response != nil || bresp.Items[1].Error == "" {
		t.Errorf("item 1: want error for unknown dataflow")
	}
	if bresp.Items[2].Response == nil {
		t.Errorf("item 2: want response, got error %q", bresp.Items[2].Error)
	}
	if bresp.Items[0].Response.Dataflow != "FLAT-RGran" || bresp.Items[2].Response.Dataflow != "Layerwise" {
		t.Errorf("batch items out of order: %q, %q",
			bresp.Items[0].Response.Dataflow, bresp.Items[2].Response.Dataflow)
	}
}

func TestBatchLimits(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxBatch: 2})
	breq := BatchRequest{Requests: make([]EvaluateRequest, 3)}
	resp, _ := postJSON(t, hs.URL+"/v1/evaluate/batch", &breq)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, hs.URL+"/v1/evaluate/batch", &BatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
}

func TestSearchEndpointCaches(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	req := SearchRequest{
		Arch: "edge", Workload: "attention:Bert-S",
		Population: 4, Generations: 2, TileRounds: 4, TopK: 2, Seed: 3,
	}
	resp, body := postJSON(t, hs.URL+"/v1/search", &req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var first SearchResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cycles <= 0 || first.Notation == "" || first.Result == nil {
		t.Fatalf("implausible search result: %s", body)
	}
	if first.Cached {
		t.Errorf("first search reported cached")
	}

	resp, body = postJSON(t, hs.URL+"/v1/search", &req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat: status %d: %s", resp.StatusCode, body)
	}
	var second SearchResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Errorf("repeated search not served from cache")
	}
	if second.Cycles != first.Cycles || second.Encoding != first.Encoding ||
		!reflect.DeepEqual(second.Factors, first.Factors) {
		t.Errorf("cached search differs: first %v/%s, second %v/%s",
			first.Cycles, first.Encoding, second.Cycles, second.Encoding)
	}
}

// TestSearchSharedCacheIsolation: two different search requests through
// one server share the service cache; the second must not be poisoned by
// the first's GA fitness entries. Bert-S and Bert-B have equal op counts,
// so with the same seed the two searches visit identical encodings — a
// fitness cache keyed by encoding alone would hand the second search the
// first one's results wholesale.
func TestSearchSharedCacheIsolation(t *testing.T) {
	reqS := SearchRequest{
		Arch: "edge", Workload: "attention:Bert-S",
		Population: 4, Generations: 2, TileRounds: 4, TopK: 2, Seed: 3,
	}
	reqB := reqS
	reqB.Workload = "attention:Bert-B"

	// Reference: Bert-B search on a fresh server, nothing else cached.
	_, fresh := newTestServer(t, Config{})
	resp, body := postJSON(t, fresh.URL+"/v1/search", &reqB)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference: status %d: %s", resp.StatusCode, body)
	}
	var want SearchResponse
	if err := json.Unmarshal(body, &want); err != nil {
		t.Fatal(err)
	}

	// Same Bert-B search after a Bert-S search warmed the shared cache.
	_, hs := newTestServer(t, Config{})
	if resp, body := postJSON(t, hs.URL+"/v1/search", &reqS); resp.StatusCode != http.StatusOK {
		t.Fatalf("Bert-S search: status %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, hs.URL+"/v1/search", &reqB)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("Bert-B search: status %d: %s", resp.StatusCode, body)
	}
	var got SearchResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Cached {
		t.Errorf("distinct search request reported cached")
	}
	if got.Cycles != want.Cycles || got.Encoding != want.Encoding {
		t.Errorf("Bert-B search poisoned by prior Bert-S search: %v/%s, want %v/%s",
			got.Cycles, got.Encoding, want.Cycles, want.Encoding)
	}
}

func TestStatusFor(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{badRequest(fmt.Errorf("bad")), http.StatusBadRequest},
		{unprocessable(fmt.Errorf("no mapping")), http.StatusUnprocessableEntity},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, statusClientClosedRequest},
		{&core.CapacityError{Level: 1, LevelName: "L1"}, http.StatusUnprocessableEntity},
		{fmt.Errorf("evaluate: %w", core.ErrInfeasible), http.StatusUnprocessableEntity},
		{fmt.Errorf("evaluate: %w", core.ErrInvalidMapping), http.StatusBadRequest},
		{fmt.Errorf("template exploded"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := statusFor(tc.err); got != tc.want {
			t.Errorf("statusFor(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

func TestSearchIsDeterministic(t *testing.T) {
	req := SearchRequest{
		Arch: "edge", Workload: "attention:Bert-S",
		Population: 4, Generations: 2, TileRounds: 4, TopK: 2, Seed: 3,
		NoCache: true,
	}
	var got []SearchResponse
	for i := 0; i < 2; i++ {
		_, hs := newTestServer(t, Config{})
		resp, body := postJSON(t, hs.URL+"/v1/search", &req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d: %s", i, resp.StatusCode, body)
		}
		var sr SearchResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		got = append(got, sr)
	}
	if got[0].Cycles != got[1].Cycles || got[0].Encoding != got[1].Encoding {
		t.Errorf("same seed, different outcome across fresh servers: %v/%s vs %v/%s",
			got[0].Cycles, got[0].Encoding, got[1].Cycles, got[1].Encoding)
	}
}

func TestEvaluateTimeout(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	req := EvaluateRequest{
		Arch: "edge", Workload: "attention:Bert-S", Dataflow: "FLAT-RGran",
		Tune: 20000, TimeoutMS: 1,
	}
	resp, body := postJSON(t, hs.URL+"/v1/evaluate", &req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 504; body: %s", resp.StatusCode, body)
	}
}

func TestEvaluateValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  EvaluateRequest
	}{
		{"missing arch", EvaluateRequest{Workload: "attention:Bert-S", Dataflow: "Layerwise"}},
		{"missing workload", EvaluateRequest{Arch: "edge", Dataflow: "Layerwise"}},
		{"missing mapping", EvaluateRequest{Arch: "edge", Workload: "attention:Bert-S"}},
		{"unknown arch", EvaluateRequest{Arch: "warp-core", Workload: "attention:Bert-S", Dataflow: "Layerwise"}},
		{"factors with tune", EvaluateRequest{Arch: "edge", Workload: "attention:Bert-S", Dataflow: "Layerwise", Tune: 5, Factors: map[string]int{"X": 2}}},
		{"notation with dataflow", EvaluateRequest{Arch: "edge", Workload: "attention:Bert-S", Dataflow: "Layerwise", Notation: "T(512,L2) QK"}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, hs.URL+"/v1/evaluate", &tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400; body: %s", tc.name, resp.StatusCode, body)
		}
	}
	resp, err := http.Post(hs.URL+"/v1/evaluate", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Errorf("healthz: status %d body %+v", resp.StatusCode, h)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	postJSON(t, hs.URL+"/v1/evaluate", &EvaluateRequest{Arch: "edge", Workload: "attention:Bert-S", Dataflow: "Layerwise"})
	metrics := fetchMetrics(t, hs.URL)
	for _, want := range []string{
		`tileflow_requests_total{endpoint="evaluate"} 1`,
		"# TYPE tileflow_cache_hits_total counter",
		"# TYPE tileflow_evaluate_latency_seconds summary",
		"tileflow_evaluate_latency_seconds_count 1",
		"tileflow_worker_slots",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics output missing %q:\n%s", want, metrics)
		}
	}
}

func TestRequestKeyNormalization(t *testing.T) {
	a := EvaluateRequest{Arch: "edge", Workload: "attention:Bert-S", Dataflow: "Layerwise", TimeoutMS: 5000}
	b := EvaluateRequest{Arch: "edge", Workload: "attention:Bert-S", Dataflow: "Layerwise", NoCache: true}
	ka, oka := requestKey(&a)
	kb, okb := requestKey(&b)
	if !oka || !okb {
		t.Fatal("requestKey failed")
	}
	if ka != kb {
		t.Errorf("timeout_ms/no_cache must not change the request key:\n%s\n%s", ka, kb)
	}
	c := EvaluateRequest{Arch: "edge", Workload: "attention:Bert-S", Dataflow: "Uni-pipe"}
	if kc, _ := requestKey(&c); kc == ka {
		t.Errorf("distinct design points share a request key: %s", kc)
	}
}

// TestProgramCacheSharedAcrossTilings: evaluate requests that differ only
// in tiling factors miss the result cache but share one compiled
// core.Program under the structure-only key — and every response still
// matches a direct one-shot core.Evaluate.
func TestProgramCacheSharedAcrossTilings(t *testing.T) {
	s := New(Config{})
	ctx := context.Background()
	spec, err := PickArch("edge")
	if err != nil {
		t.Fatal(err)
	}
	df, err := PickDataflow("FLAT-RGran", "attention:Bert-S", spec)
	if err != nil {
		t.Fatal(err)
	}

	variants := []map[string]int{df.DefaultFactors()}
	for _, fs := range df.Factors() {
		if len(variants) >= 4 {
			break
		}
		for _, c := range fs.Choices() {
			f := df.DefaultFactors()
			if f[fs.Key] == c {
				continue
			}
			f[fs.Key] = c
			variants = append(variants, f)
			break
		}
	}
	if len(variants) < 3 {
		t.Fatalf("only %d tiling variants derived", len(variants))
	}

	evaluated := 0
	for _, f := range variants {
		root, err := df.Build(f)
		if err != nil {
			continue
		}
		want, wantErr := core.Evaluate(root, df.Graph(), spec, core.Options{})
		req := EvaluateRequest{Arch: "edge", Workload: "attention:Bert-S", Dataflow: "FLAT-RGran", Factors: f}
		resp, _, err := s.evaluateOne(ctx, &req)
		if wantErr != nil {
			if err == nil {
				t.Fatalf("factors %v: served OK, direct evaluation failed: %v", f, wantErr)
			}
			continue
		}
		if err != nil {
			t.Fatalf("factors %v: %v", f, err)
		}
		if resp.Cached {
			t.Fatalf("factors %v: distinct tiling served from the result cache", f)
		}
		if resp.Result.Cycles != want.Cycles {
			t.Errorf("factors %v: served cycles %v, direct %v", f, resp.Result.Cycles, want.Cycles)
		}
		evaluated++
	}
	if evaluated < 2 {
		t.Fatalf("only %d variants evaluated; cannot observe program sharing", evaluated)
	}
	if n := s.programs.Len(); n != 1 {
		t.Errorf("program cache holds %d entries after %d same-structure tilings, want 1", n, evaluated)
	}
}
