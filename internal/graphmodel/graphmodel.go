// Package graphmodel implements the graph-based fusion estimation approach
// the paper compares against in Fig 8c (the yellow circles, ~48.8% average
// error): each operator is evaluated separately with a polyhedron-based
// single-operator model, and the unneeded inter-operator DRAM transfers are
// stripped from the sum according to the compute-graph topology (Sec 2.3,
// "other lines of work handle fusion by first evaluating each operator
// separately ... and then eliminate unwanted inter-operator data transfer
// according to the DNN model topology").
//
// The approach ignores on-chip staging, intra-fusion pipelining and
// resource sharing — which is exactly why it misses: stages that overlap in
// the real machine are summed, and the stripped DRAM time is a crude
// correction.
package graphmodel

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/timeloop"
	"repro/internal/workload"
)

// Estimate predicts the latency of a fused graph executed on coresUsed
// cores by the graph-based method: per-operator polyhedron model, summed,
// minus the DRAM transfer time of intermediate tensors that fusion keeps on
// chip.
func Estimate(g *workload.Graph, spec *arch.Spec, coresUsed int) (float64, error) {
	if coresUsed <= 0 {
		coresUsed = 1
	}
	var total float64
	for _, op := range g.Ops {
		c, err := operatorCycles(op, spec)
		if err != nil {
			return 0, fmt.Errorf("graphmodel: op %s: %w", op.Name, err)
		}
		total += c / float64(coresUsed)
	}
	// Strip the inter-operator traffic fusion eliminates: each on-chip
	// intermediate saves its DRAM write and read.
	wpc := spec.WordsPerCycle(spec.DRAMLevel())
	for _, name := range g.IntermediateTensors() {
		vol := float64(g.Tensors[name].Volume())
		total -= 2 * vol / wpc / float64(coresUsed)
	}
	if total < 0 {
		total = 0
	}
	return total, nil
}

// operatorCycles evaluates one operator in isolation with the timeloop
// model under a canonical mapping: the whole iteration space staged at L1,
// the output's leading dimensions spatial on the array.
func operatorCycles(op *workload.Operator, spec *arch.Spec) (float64, error) {
	var spatial []timeloop.Loop
	budget := spec.MeshX * spec.MeshY
	if op.Kind.Vector() {
		budget = spec.VectorLanesPerSubcore
	}
	used := map[string]int{}
	for _, d := range op.Write.Dims() {
		if budget <= 1 {
			break
		}
		sz := op.DimSize(d)
		s := 1
		for f := 2; f <= sz && f <= budget; f++ {
			if sz%f == 0 {
				s = f
			}
		}
		if s > 1 {
			spatial = append(spatial, timeloop.Loop{Dim: d, Bound: s, Spatial: true})
			used[d] = s
			budget /= s
		}
	}
	var l1 []timeloop.Loop
	for _, d := range op.Dims {
		rem := d.Size / max(1, used[d.Name])
		if rem > 1 {
			l1 = append(l1, timeloop.Loop{Dim: d.Name, Bound: rem})
		}
	}
	m := timeloop.Mapping{Levels: []timeloop.LevelNest{
		{Level: spec.DRAMLevel(), Loops: nil},
		{Level: 1, Loops: l1},
		{Level: 0, Loops: spatial},
	}}
	res, err := timeloop.Evaluate(op, m, spec)
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}
