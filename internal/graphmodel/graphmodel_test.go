package graphmodel

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestGraphBasedIsWorseThanTreeBased reproduces the Fig 8c ordering in
// miniature: against the cycle-level simulator, the graph-based estimate
// must carry substantially more error than TileFlow's tree-based model.
func TestGraphBasedIsWorseThanTreeBased(t *testing.T) {
	m := sim.Validation()
	spec := arch.Validation()
	var tfErr, gbErr []float64
	for _, seq := range []int{128, 256, 512} {
		for _, rb := range []int{16, 64} {
			shape := workload.AttentionShape{Name: "v", Heads: 8, SeqLen: seq, Hidden: 512, Batch: 1}
			am := sim.AttentionMapping{Shape: shape, RowBlock: rb, CoresUsed: 4}
			p, err := am.BuildProgram(m)
			if err != nil {
				t.Fatal(err)
			}
			st, err := m.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			tree, g, err := am.ModelTree(spec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Evaluate(tree, g, spec, core.Options{SkipCapacityCheck: true})
			if err != nil {
				t.Fatal(err)
			}
			gb, err := Estimate(g, spec, am.CoresUsed)
			if err != nil {
				t.Fatal(err)
			}
			tfErr = append(tfErr, math.Abs(res.Cycles-st.Cycles)/st.Cycles)
			gbErr = append(gbErr, math.Abs(gb-st.Cycles)/st.Cycles)
		}
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	mt, mg := mean(tfErr), mean(gbErr)
	t.Logf("tree-based err %.3f, graph-based err %.3f", mt, mg)
	if mg <= mt {
		t.Errorf("graph-based error %.3f not worse than tree-based %.3f", mg, mt)
	}
	if mg < 0.15 {
		t.Errorf("graph-based error %.3f implausibly low", mg)
	}
}

func TestEstimateRejectsNothing(t *testing.T) {
	shape, _ := workload.AttentionShapeByName("Bert-S")
	g := workload.Attention(shape)
	c, err := Estimate(g, arch.Validation(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 {
		t.Fatalf("cycles %v", c)
	}
}
