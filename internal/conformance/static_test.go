package conformance

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/notation"
)

// staticPointBudget keeps the static differential fast enough for tier-1:
// each point spawns five variants and each variant runs the full pipeline
// once plus the static pass three ways.
const staticPointBudget = 120

// mutateStatic builds invalid variants of a generated point's tree, each
// designed to trip a *positioned* rule once the tree round-trips through
// the notation printer: a doubled extent (coverage, anchored at the leaf
// name), a zeroed extent (rejected by the positioned parser), a foreign
// dim (anchored at the loop item), and a level inversion (anchored at the
// @L token).
func mutateStatic(p *Point) map[string]*core.Node {
	out := map[string]*core.Node{}

	doubled := p.Root.Clone()
	if mutateFirstLoop(doubled, func(l *core.Loop) { l.Extent *= 2 }) {
		out["doubled extent"] = doubled
	}
	zeroed := p.Root.Clone()
	if mutateFirstLoop(zeroed, func(l *core.Loop) { l.Extent = 0 }) {
		out["zero extent"] = zeroed
	}
	foreign := p.Root.Clone()
	foreign.Loops = append(foreign.Loops, core.Loop{Dim: "zzq", Extent: 2, Kind: core.Temporal})
	out["foreign dim"] = foreign

	// Only interior children carry an @L token in the notation; a leaf's
	// level would silently reset in the Print → Parse round-trip.
	inverted := p.Root.Clone()
	for _, c := range inverted.Children {
		if !c.IsLeaf() {
			c.Level = inverted.Level + 1
			out["level inversion"] = inverted
			break
		}
	}
	return out
}

func mutateFirstLoop(root *core.Node, f func(*core.Loop)) bool {
	done := false
	root.Walk(func(n *core.Node) {
		if done {
			return
		}
		for i := range n.Loops {
			if n.Loops[i].Extent > 1 {
				f(&n.Loops[i])
				done = true
				return
			}
		}
	})
	return done
}

// pipelineErr is the fail-fast Compile → Evaluate verdict on a tree.
func pipelineErr(p *Point, root *core.Node) error {
	prog, err := core.Compile(root, p.Graph, p.Spec)
	if err != nil {
		return err
	}
	_, err = prog.Evaluate(context.Background(), p.Opts)
	return err
}

// TestStaticDifferential is the vet acceptance harness: over the
// conformance generator's corpus (valid points plus targeted mutations),
// the static analyzer must flag every pipeline-rejected mapping with at
// least one coded, positioned diagnostic (no false clean), must stay
// silent on every accepted one (no false positive), and must do all of it
// without compiling a single Program.
func TestStaticDifferential(t *testing.T) {
	for seed := int64(1); seed <= staticPointBudget; seed++ {
		p := Generate(seed)
		variants := map[string]*core.Node{"original": p.Root}
		for name, root := range mutateStatic(p) {
			variants[name] = root
		}
		for name, root := range variants {
			if err := checkStaticVariant(p, root, name == "original"); err != nil {
				t.Fatalf("seed %d, variant %q: %v", seed, name, err)
			}
		}
	}
}

func checkStaticVariant(p *Point, root *core.Node, expectValid bool) error {
	src := notation.Print(root)

	// The entire static side runs first, bracketed by the compile counter:
	// none of it may allocate a Program.
	before := core.CompileCount()
	vs := core.AnalyzeStatic(root, p.Graph, p.Spec, p.Opts)
	qerr := core.QuickReject(root, p.Graph, p.Spec, p.Opts)
	diags := check.AnalyzeSource(src, p.Graph, p.Spec, p.Opts)
	if after := core.CompileCount(); after != before {
		return fmt.Errorf("static pass compiled %d Programs", after-before)
	}

	perr := pipelineErr(p, root)
	if expectValid && perr != nil {
		return fmt.Errorf("generated point not valid: %w", perr)
	}

	if perr == nil {
		if len(vs) != 0 {
			return fmt.Errorf("false positive: AnalyzeStatic says %v, pipeline accepts", vs)
		}
		if qerr != nil {
			return fmt.Errorf("false positive: QuickReject says %v, pipeline accepts", qerr)
		}
		if diags.HasErrors() {
			return fmt.Errorf("false positive: vet errors on an accepted point:\n%s", diags)
		}
		return nil
	}

	// No false clean, with the exact pipeline error first.
	if len(vs) == 0 {
		return fmt.Errorf("false clean: pipeline rejects with %v, AnalyzeStatic finds nothing", perr)
	}
	if vs[0].Err.Error() != perr.Error() {
		return fmt.Errorf("first violation %q, pipeline %q", vs[0].Err, perr)
	}
	// QuickReject skips only capacity; these points skip the capacity check
	// anyway (generator opts), so it must agree exactly.
	if qerr == nil || qerr.Error() != perr.Error() {
		return fmt.Errorf("QuickReject %v, pipeline %v", qerr, perr)
	}
	// The vet view: at least one coded, positioned error diagnostic.
	if !diags.HasErrors() {
		return fmt.Errorf("false clean: vet has no errors for pipeline rejection %v", perr)
	}
	positioned := false
	for _, d := range diags {
		if d.Severity != diag.Error {
			continue
		}
		if d.Code == "" {
			return fmt.Errorf("uncoded error diagnostic: %s", d)
		}
		if !d.Span.IsZero() {
			positioned = true
		}
	}
	if !positioned {
		return fmt.Errorf("no positioned error diagnostic for %v in:\n%s", perr, diags)
	}
	return nil
}
