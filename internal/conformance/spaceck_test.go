package conformance

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataflows"
	"repro/internal/spaceck"
)

// TestSpaceckSoundness is the space-analysis backstop referenced by the
// BENCH_PR9 gate: across hundreds of seeded design points, every factor
// assignment the real Compile/Evaluate pipeline accepts must lie inside the
// narrowed domains spaceck.Analyze reports (zero false prunes). Soundness
// is absolute; completeness (how much gets pruned) is best-effort and not
// asserted here beyond counting complete sweeps.
func TestSpaceckSoundness(t *testing.T) {
	const (
		seeds          = 50
		probeBudget    = 1500
		samplesPerSeed = 10
	)
	var checked, accepted, complete, retiled int
	for seed := int64(0); seed < seeds; seed++ {
		p := Generate(seed)
		df, err := spaceck.Retile("conf", p.Root, p.Graph)
		if err != nil {
			// The generator can emit trees outside the retiling adapter's
			// domain; those points simply don't contribute.
			continue
		}
		retiled++
		rep := spaceck.Analyze(df, p.Spec, spaceck.Options{
			MaxProbes: probeBudget,
			Core:      p.Opts,
		})
		if rep.Complete {
			complete++
		}
		// The default assignment reproduces the generated tree, which is
		// valid by construction — it must never be pruned.
		for _, f := range sampleAssignments(seed, df, samplesPerSeed) {
			checked++
			root, err := df.Build(f)
			if err != nil {
				continue
			}
			if _, err := core.EvaluateContext(context.Background(), root, p.Graph, p.Spec, p.Opts); err != nil {
				continue
			}
			accepted++
			if !rep.Contains(f) {
				t.Errorf("seed %d: false prune: pipeline accepts %v but the report excludes it (complete=%v)",
					seed, f, rep.Complete)
			}
		}
	}
	if retiled < seeds/2 {
		t.Fatalf("only %d of %d generated points retiled; the gate lost its coverage", retiled, seeds)
	}
	if checked < 500 {
		t.Fatalf("only %d assignments checked, want >= 500", checked)
	}
	if accepted == 0 {
		t.Fatal("no sampled assignment was pipeline-accepted; the gate is vacuous")
	}
	if complete == 0 {
		t.Fatal("no analysis completed its sweep; raise the probe budget")
	}
	t.Logf("retiled %d/%d points, %d complete sweeps, %d/%d sampled assignments accepted",
		retiled, seeds, complete, accepted, checked)
}

// sampleAssignments draws deterministic factor assignments for one seed:
// the template's defaults first (always valid by construction), then random
// picks across every factor's divisor choices.
func sampleAssignments(seed int64, df dataflows.Dataflow, n int) []map[string]int {
	rng := rand.New(rand.NewSource(seed ^ 0x5bacec))
	out := []map[string]int{df.DefaultFactors()}
	specs := df.Factors()
	for i := 1; i < n; i++ {
		f := make(map[string]int, len(specs))
		for _, s := range specs {
			cs := s.Choices()
			f[s.Key] = cs[rng.Intn(len(cs))]
		}
		out = append(out, f)
	}
	return out
}
