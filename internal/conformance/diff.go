package conformance

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/notation"
	"repro/internal/serve"
	"repro/internal/workload"
	"repro/internal/yamlfe"
)

// Divergence reports a disagreement between two evaluation routes (or
// between the model and the oracle) for one generated point.
type Divergence struct {
	Seed  int64
	Route string
	Err   error
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("seed %d, route %s: %v", d.Seed, d.Route, d.Err)
}

// resultBytes is the comparison currency for every route: the shared
// CLI/server JSON codec, marshaled (Go marshals maps with sorted keys, so
// equal results produce equal bytes).
func resultBytes(res *core.Result, spec *arch.Spec) []byte {
	b, err := json.Marshal(serve.NewResultJSON(res, spec))
	if err != nil {
		panic(err)
	}
	return b
}

// RunPoint feeds one generated point through every evaluation route the
// repo ships and fails on the first divergence:
//
//  1. cold core.Evaluate on Root (the reference),
//  2. core.Compile + Program.Evaluate,
//  3. Program.WithTiling re-binding (Alt-compiled program evaluating Root,
//     and Root-compiled program evaluating Alt against a cold Alt run),
//  4. Program.EvaluateBatch over [Root, Alt, Root] (the repeat proves the
//     shared scratch arena carries no state between items),
//  5. Program.EvaluateDelta chained Root → Alt → Root through one
//     DeltaState (incremental re-evaluation in both directions),
//  6. notation round-trip: Parse(Print(Root)) evaluated locally,
//  7. the HTTP service: POST /v1/evaluate with arch_spec + workload_spec +
//     notation, for both Root and Alt (the second request exercises the
//     server-side program cache re-bind), byte-comparing served results,
//  8. YAML config round-trip: yamlfe.Render(spec, graph, Root) loaded back
//     and evaluated locally, then POST /v1/evaluate with config_yaml —
//     the Timeloop-style frontend must name the same design point.
//
// baseURL may be empty to skip the HTTP route (used by the minimizer,
// which re-checks candidates locally for speed unless the divergence was
// HTTP-specific).
func RunPoint(p *Point, baseURL string, client *http.Client) error {
	fail := func(route string, err error) error {
		return &Divergence{Seed: p.Seed, Route: route, Err: err}
	}
	ref, err := core.Evaluate(p.Root, p.Graph, p.Spec, p.Opts)
	if err != nil {
		return fail("cold", err)
	}
	refBytes := resultBytes(ref, p.Spec)

	prog, err := core.Compile(p.Root, p.Graph, p.Spec)
	if err != nil {
		return fail("compile", err)
	}
	res2, err := prog.Evaluate(context.Background(), p.Opts)
	if err != nil {
		return fail("compiled", err)
	}
	if b := resultBytes(res2, p.Spec); !bytes.Equal(b, refBytes) {
		return fail("compiled", diffBytes(refBytes, b))
	}

	altProg, err := core.Compile(p.Alt, p.Graph, p.Spec)
	if err != nil {
		return fail("compile-alt", err)
	}
	rebound, err := altProg.WithTiling(p.Root)
	if err != nil {
		return fail("rebind", err)
	}
	res3, err := rebound.Evaluate(context.Background(), p.Opts)
	if err != nil {
		return fail("rebind", err)
	}
	if b := resultBytes(res3, p.Spec); !bytes.Equal(b, refBytes) {
		return fail("rebind", diffBytes(refBytes, b))
	}
	altRef, err := core.Evaluate(p.Alt, p.Graph, p.Spec, p.Opts)
	if err != nil {
		return fail("cold-alt", err)
	}
	altBytes := resultBytes(altRef, p.Spec)
	reboundAlt, err := prog.WithTiling(p.Alt)
	if err != nil {
		return fail("rebind-alt", err)
	}
	res3b, err := reboundAlt.Evaluate(context.Background(), p.Opts)
	if err != nil {
		return fail("rebind-alt", err)
	}
	if b := resultBytes(res3b, p.Spec); !bytes.Equal(b, altBytes) {
		return fail("rebind-alt", diffBytes(altBytes, b))
	}

	batchRes, batchErrs := prog.EvaluateBatch(context.Background(), []*core.Node{p.Root, p.Alt, p.Root}, p.Opts)
	wantBatch := [][]byte{refBytes, altBytes, refBytes}
	for i, berr := range batchErrs {
		if berr != nil {
			return fail("batch", fmt.Errorf("item %d: %w", i, berr))
		}
		if b := resultBytes(batchRes[i], p.Spec); !bytes.Equal(b, wantBatch[i]) {
			return fail("batch", fmt.Errorf("item %d: %w", i, diffBytes(wantBatch[i], b)))
		}
	}

	ds := prog.NewDelta(p.Opts)
	for i, step := range []struct {
		root *core.Node
		want []byte
	}{{p.Root, refBytes}, {p.Alt, altBytes}, {p.Root, refBytes}} {
		res5, err := prog.EvaluateDelta(context.Background(), ds, step.root, p.Opts)
		if err != nil {
			return fail("delta", fmt.Errorf("step %d: %w", i, err))
		}
		if b := resultBytes(res5, p.Spec); !bytes.Equal(b, step.want) {
			return fail("delta", fmt.Errorf("step %d: %w", i, diffBytes(step.want, b)))
		}
	}

	src := notation.Print(p.Root)
	parsed, err := notation.Parse(src, p.Graph)
	if err != nil {
		return fail("notation", fmt.Errorf("reparse of printed tree: %w\n%s", err, src))
	}
	res4, err := core.Evaluate(parsed, p.Graph, p.Spec, p.Opts)
	if err != nil {
		return fail("notation", err)
	}
	if b := resultBytes(res4, p.Spec); !bytes.Equal(b, refBytes) {
		return fail("notation", diffBytes(refBytes, b))
	}

	ysrc := yamlfe.Render(p.Spec, p.Graph, p.Root)
	cfg, err := yamlfe.LoadStrict(ysrc)
	if err != nil {
		return fail("yaml", fmt.Errorf("reload of rendered config: %w\n%s", err, ysrc))
	}
	res6, err := core.Evaluate(cfg.Root, cfg.Graph, cfg.Spec, p.Opts)
	if err != nil {
		return fail("yaml", err)
	}
	if b := resultBytes(res6, cfg.Spec); !bytes.Equal(b, refBytes) {
		return fail("yaml", diffBytes(refBytes, b))
	}

	if baseURL != "" {
		if err := checkHTTP(p, baseURL, client, src, refBytes); err != nil {
			return fail("http", err)
		}
		if err := checkHTTP(p, baseURL, client, notation.Print(p.Alt), altBytes); err != nil {
			return fail("http-alt", err)
		}
		if err := checkHTTPConfig(p, baseURL, client, ysrc, refBytes); err != nil {
			return fail("http-yaml", err)
		}
	}
	return nil
}

// checkHTTPConfig posts the rendered YAML config through the config_yaml
// field and byte-compares the served result to the local reference.
func checkHTTPConfig(p *Point, baseURL string, client *http.Client, ysrc string, want []byte) error {
	req := serve.EvaluateRequest{
		ConfigYAML:        ysrc,
		SkipCapacityCheck: p.Opts.SkipCapacityCheck,
		SkipPECheck:       p.Opts.SkipPECheck,
		DisableRetention:  p.Opts.DisableRetention,
	}
	body, err := json.Marshal(&req)
	if err != nil {
		return err
	}
	httpResp, err := client.Post(baseURL+"/v1/evaluate", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	if err != nil {
		return err
	}
	if httpResp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", httpResp.StatusCode, raw)
	}
	var resp serve.EvaluateResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	got, err := json.Marshal(resp.Result)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return diffBytes(want, got)
	}
	return nil
}

func checkHTTP(p *Point, baseURL string, client *http.Client, src string, want []byte) error {
	req := serve.EvaluateRequest{
		ArchSpec:          arch.FormatSpec(p.Spec),
		WorkloadSpec:      workload.CanonicalGraph(p.Graph),
		Notation:          src,
		SkipCapacityCheck: p.Opts.SkipCapacityCheck,
		SkipPECheck:       p.Opts.SkipPECheck,
		DisableRetention:  p.Opts.DisableRetention,
	}
	body, err := json.Marshal(&req)
	if err != nil {
		return err
	}
	httpResp, err := client.Post(baseURL+"/v1/evaluate", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	if err != nil {
		return err
	}
	if httpResp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", httpResp.StatusCode, raw)
	}
	var resp serve.EvaluateResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return fmt.Errorf("decode response: %w", err)
	}
	got, err := json.Marshal(resp.Result)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return diffBytes(want, got)
	}
	return nil
}

// diffBytes points at the first byte where two marshaled results part ways,
// with a little context on each side.
func diffBytes(want, got []byte) error {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	at := n
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			at = i
			break
		}
	}
	window := func(b []byte) string {
		lo, hi := at-40, at+40
		if lo < 0 {
			lo = 0
		}
		if hi > len(b) {
			hi = len(b)
		}
		return string(b[lo:hi])
	}
	return fmt.Errorf("results diverge at byte %d:\nwant ...%s...\n got ...%s...", at, window(want), window(got))
}

// Minimize shrinks a failing point while the predicate keeps failing. It
// tries, to fixpoint: converting spatial loops to temporal, relaxing
// bindings to Seq, and deleting a loop whose dim is fully dominated by its
// node (shrinking the workload dim to match, so the tiling stays exact).
// Alt is re-derived as a clone so the reduced reproducer stays
// self-consistent across the rebind route.
func Minimize(p *Point, failing func(*Point) bool) *Point {
	cur := p
	for budget := 200; budget > 0; {
		next := shrinkOnce(cur, failing, &budget)
		if next == nil {
			break
		}
		cur = next
	}
	return cur
}

func shrinkOnce(p *Point, failing func(*Point) bool, budget *int) *Point {
	try := func(cand *Point) *Point {
		if *budget <= 0 {
			return nil
		}
		*budget--
		if failing(cand) {
			return cand
		}
		return nil
	}
	var nodes []*core.Node
	p.Root.Walk(func(n *core.Node) { nodes = append(nodes, n) })

	// 1. Spatial → temporal, one loop at a time.
	for ni, n := range nodes {
		for li, l := range n.Loops {
			if l.Kind != core.Spatial {
				continue
			}
			root := p.Root.Clone()
			var clones []*core.Node
			root.Walk(func(m *core.Node) { clones = append(clones, m) })
			clones[ni].Loops[li].Kind = core.Temporal
			if got := try(rederive(p, root, p.Graph)); got != nil {
				return got
			}
		}
	}
	// 2. Bindings → Seq.
	for ni, n := range nodes {
		if n.IsLeaf() || n.Binding == core.Seq {
			continue
		}
		root := p.Root.Clone()
		var clones []*core.Node
		root.Walk(func(m *core.Node) { clones = append(clones, m) })
		clones[ni].Binding = core.Seq
		if got := try(rederive(p, root, p.Graph)); got != nil {
			return got
		}
	}
	// 3. Dominated-dim shrink: a loop at node n over dim d can be deleted —
	// with the graph dim divided by its extent — when every leaf using d
	// lies inside n's subtree, so no other loop's coverage changes.
	for ni, n := range nodes {
		for li, l := range n.Loops {
			if l.Extent <= 1 {
				continue
			}
			if !subtreeOwnsDim(p.Root, n, l.Dim) {
				continue
			}
			g2, err := shrinkGraphDim(p.Graph, l.Dim, l.Extent)
			if err != nil {
				continue
			}
			root := p.Root.Clone()
			var clones []*core.Node
			root.Walk(func(m *core.Node) { clones = append(clones, m) })
			tgt := clones[ni]
			tgt.Loops = append(append([]core.Loop{}, tgt.Loops[:li]...), tgt.Loops[li+1:]...)
			if !retarget(root, g2) {
				continue
			}
			if got := try(rederive(p, root, g2)); got != nil {
				return got
			}
		}
	}
	return nil
}

// subtreeOwnsDim reports whether every leaf of root that uses dim lies in
// n's subtree.
func subtreeOwnsDim(root, n *core.Node, dim string) bool {
	inside := map[*core.Node]bool{}
	n.Walk(func(m *core.Node) { inside[m] = true })
	owns := true
	root.Walk(func(m *core.Node) {
		if m.IsLeaf() && m.Op.HasDim(dim) && !inside[m] {
			owns = false
		}
	})
	return owns
}

// rederive builds a candidate point around a transformed root: Alt becomes
// a plain clone so rebind and HTTP-alt routes remain well-formed.
func rederive(p *Point, root *core.Node, g *workload.Graph) *Point {
	return &Point{
		Seed:  p.Seed,
		Spec:  p.Spec,
		Graph: g,
		Root:  root,
		Alt:   root.Clone(),
		Opts:  p.Opts,
	}
}

// shrinkGraphDim rebuilds the graph with dim's size divided by factor.
func shrinkGraphDim(g *workload.Graph, dim string, factor int) (*workload.Graph, error) {
	elem := 2
	for _, t := range g.Tensors {
		elem = t.ElemBytes
		break
	}
	ops := make([]*workload.Operator, len(g.Ops))
	for i, op := range g.Ops {
		cp := *op
		cp.Dims = append([]workload.Dim{}, op.Dims...)
		for j, d := range cp.Dims {
			if d.Name == dim {
				if d.Size%factor != 0 || d.Size/factor < 1 {
					return nil, fmt.Errorf("dim %s size %d not divisible by %d", dim, d.Size, factor)
				}
				cp.Dims[j].Size = d.Size / factor
			}
		}
		ops[i] = &cp
	}
	g2, err := workload.NewGraph(g.Name, elem, ops...)
	if err != nil {
		return nil, err
	}
	for name, t := range g.Tensors {
		if t.Density > 0 && t.Density < 1 {
			if err := g2.SetDensity(name, t.Density); err != nil {
				return nil, err
			}
		}
	}
	return g2, nil
}

// retarget points a cloned tree's leaves at the equivalent operators of a
// rebuilt graph.
func retarget(root *core.Node, g *workload.Graph) bool {
	ok := true
	root.Walk(func(n *core.Node) {
		if !n.IsLeaf() {
			return
		}
		op := g.Op(n.Op.Name)
		if op == nil {
			ok = false
			return
		}
		n.Op = op
	})
	return ok
}

// Reproducer renders a self-contained textual reproduction of a point:
// seed, options, and the exact arch, workload and both mappings in their
// parseable text formats. Feeding the three specs back through
// arch.ParseSpec, workload.ParseGraph and notation.Parse reconstructs the
// point without the generator.
func (p *Point) Reproducer() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# conformance reproducer, seed %d\n", p.Seed)
	fmt.Fprintf(&b, "# options: skip_capacity=%v skip_pe=%v disable_retention=%v\n",
		p.Opts.SkipCapacityCheck, p.Opts.SkipPECheck, p.Opts.DisableRetention)
	b.WriteString("--- arch ---\n")
	b.WriteString(arch.FormatSpec(p.Spec))
	b.WriteString("--- workload ---\n")
	b.WriteString(workload.CanonicalGraph(p.Graph))
	b.WriteString("--- mapping (root) ---\n")
	b.WriteString(notation.Print(p.Root))
	b.WriteString("--- mapping (alt) ---\n")
	b.WriteString(notation.Print(p.Alt))
	return b.String()
}
