package conformance

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

func oracleSpec(levels int) *arch.Spec {
	s := &arch.Spec{
		Name:  "oracle-test",
		MeshX: 2, MeshY: 2,
		FreqGHz:               1,
		WordBytes:             2,
		MACsPerPE:             1,
		VectorLanesPerSubcore: 4,
	}
	s.Levels = append(s.Levels, arch.Level{Name: "Reg", CapacityBytes: 1 << 10, BandwidthGBs: 16, Fanout: 1})
	s.Levels = append(s.Levels, arch.Level{Name: "L1", CapacityBytes: 1 << 14, BandwidthGBs: 16, Fanout: 4})
	for i := 2; i < levels-1; i++ {
		s.Levels = append(s.Levels, arch.Level{Name: "L2", CapacityBytes: 1 << 18, BandwidthGBs: 16, Fanout: 1})
	}
	s.Levels = append(s.Levels, arch.Level{Name: "DRAM", CapacityBytes: 0, BandwidthGBs: 16, Fanout: 1})
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// TestOracleHandBuiltTrees cross-checks the oracle on deliberately chosen
// trees: a plain matmul, a fused matmul chain under each binding, and the
// paper's strided batched 1-D conv (halo reuse with overlapping slices).
func TestOracleHandBuiltTrees(t *testing.T) {
	spec := oracleSpec(4)
	opts := core.Options{SkipCapacityCheck: true, SkipPECheck: true}

	mm := workload.Matmul(8, 8, 8)
	mmTree := core.Tile("root", 3, core.Seq,
		[]core.Loop{core.T("m", 2), core.T("k", 2)},
		core.Tile("inner", 1, core.Seq,
			[]core.Loop{core.T("n", 4), core.S("m", 2)},
			core.Leaf("mac", mm.Ops[0], core.T("m", 2), core.T("n", 2), core.T("k", 4)),
		),
	)

	conv := workload.BatchedConv1D()
	convTree := core.Tile("root", 3, core.Seq,
		[]core.Loop{core.T("j", 3)},
		core.Tile("buf", 1, core.Seq,
			[]core.Loop{core.T("i", 3), core.T("j", 2)},
			core.Leaf("conv", conv.Ops[0], core.T("i", 4), core.T("j", 2), core.T("k", 3)),
		),
	)

	points := []*Point{
		{Seed: -1, Spec: spec, Graph: mm, Root: mmTree, Opts: opts},
		{Seed: -2, Spec: spec, Graph: conv, Root: convTree, Opts: opts},
	}
	for _, b := range []core.Binding{core.Seq, core.Shar, core.Para, core.Pipe} {
		chain := fusedChain(t, b)
		points = append(points, chain)
	}
	for _, p := range points {
		p.Alt = p.Root.Clone()
		if err := CheckOracle(p); err != nil {
			t.Errorf("seed %d: %v", p.Seed, err)
		}
	}
}

// fusedChain builds a two-matmul chain fused under the given binding, with
// the intermediate tensor confined to the fusion node.
func fusedChain(t *testing.T, b core.Binding) *Point {
	t.Helper()
	a := &workload.Operator{
		Name: "mm1", Kind: workload.KindMAC,
		Dims: []workload.Dim{{Name: "m", Size: 4}, {Name: "n1", Size: 4}, {Name: "k0", Size: 4}},
		Reads: []workload.Access{
			{Tensor: "A", Index: []workload.Index{workload.I("m"), workload.I("k0")}},
			{Tensor: "W1", Index: []workload.Index{workload.I("k0"), workload.I("n1")}},
		},
		Write: workload.Access{Tensor: "C1", Index: []workload.Index{workload.I("m"), workload.I("n1")}},
	}
	c := &workload.Operator{
		Name: "mm2", Kind: workload.KindMAC,
		Dims: []workload.Dim{{Name: "m", Size: 4}, {Name: "n2", Size: 4}, {Name: "k1", Size: 4}},
		Reads: []workload.Access{
			{Tensor: "C1", Index: []workload.Index{workload.I("m"), workload.I("k1")}},
			{Tensor: "W2", Index: []workload.Index{workload.I("k1"), workload.I("n2")}},
		},
		Write: workload.Access{Tensor: "C2", Index: []workload.Index{workload.I("m"), workload.I("n2")}},
	}
	g, err := workload.NewGraph("chain-"+b.String(), 2, a, c)
	if err != nil {
		t.Fatal(err)
	}
	root := core.Tile("root", 3, core.Seq,
		[]core.Loop{core.T("m", 2)},
		core.Tile("fuse", 1, b,
			[]core.Loop{core.T("m", 2), core.S("n1", 2), core.S("n2", 2)},
			core.Leaf("l1", a, core.T("n1", 2), core.T("k0", 4)),
			core.Leaf("l2", c, core.T("n2", 2), core.T("k1", 4)),
		),
	)
	return &Point{
		Seed: -10 - int64(b), Spec: oracleSpec(4), Graph: g, Root: root,
		Opts: core.Options{SkipCapacityCheck: true, SkipPECheck: true},
	}
}

// TestEnumSliceStrided hand-counts a strided halo access to pin the
// enumeration itself (independent of the model): A[2*i+j] with i in [0,3),
// j in [0,4) touches 2*2+3 = 7 elements, not 3*4 = 12.
func TestEnumSliceStrided(t *testing.T) {
	acc := workload.Access{Tensor: "A", Index: []workload.Index{workload.Idx("i", 2, "j", 1)}}
	set := map[int64]struct{}{}
	enumSlice(acc, []string{"i", "j"}, map[string]int{"i": 0, "j": 0}, map[string]int{"i": 3, "j": 4}, set)
	if len(set) != 8 {
		t.Fatalf("strided slice size = %d, want 8 (offsets 0..7)", len(set))
	}
}

// TestOracleCatchesCorruption makes sure the cross-check actually has
// teeth: corrupting a loop extent after compilation must trip the oracle.
func TestOracleCatchesCorruption(t *testing.T) {
	p := Generate(7)
	// Perturb the model's input relative to what the oracle sees by
	// evaluating a tree whose root gained a refetch-multiplying loop while
	// the oracle is given the original. Simplest corruption: compare the
	// oracle of a *different* seed's tree against this point's model run.
	q := Generate(8)
	if workload.CanonicalGraph(p.Graph) == workload.CanonicalGraph(q.Graph) {
		t.Skip("seeds collided; pick different seeds")
	}
	bad := &Point{Seed: p.Seed, Spec: p.Spec, Graph: p.Graph, Root: p.Root, Alt: p.Alt, Opts: p.Opts}
	if err := CheckOracle(bad); err != nil {
		t.Fatalf("sanity: unmodified point must pass, got %v", err)
	}
	// Now corrupt: double one temporal loop extent on a copy of the tree and
	// check the oracle (built from the corrupted tree) disagrees with the
	// model run on the original tree by comparing their DMs directly.
	orig := NewOracle(p.Root, p.Graph, p.Spec)
	dmA, _ := orig.DataMovement()
	corrupted := p.Root.Clone()
	bumpFirstTemporal(corrupted)
	corr := NewOracle(corrupted, p.Graph, p.Spec)
	dmB, _ := corr.DataMovement()
	same := true
	for l := range dmA {
		if dmClose(dmA[l], dmB[l]) != nil {
			same = false
		}
	}
	if same {
		t.Fatalf("oracle DM identical after corrupting a loop extent — the check has no teeth")
	}
}

func bumpFirstTemporal(root *core.Node) {
	done := false
	root.Walk(func(n *core.Node) {
		if done {
			return
		}
		for i, l := range n.Loops {
			if l.Kind == core.Temporal && l.Extent > 1 {
				n.Loops[i].Extent *= 2
				done = true
				return
			}
		}
	})
}
