package conformance

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/notation"
	"repro/internal/serve"
	"repro/internal/workload"
)

// defaultPoints is the acceptance floor from the conformance plan; raise it
// locally with TILEFLOW_CONFORMANCE_POINTS for longer soaks.
const defaultPoints = 500

func pointBudget() int {
	if s := os.Getenv("TILEFLOW_CONFORMANCE_POINTS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return defaultPoints
}

// TestConformance is the differential harness: every generated point runs
// through all the evaluation routes (cold, compiled, re-bound, batched,
// delta, notation + HTTP service) and through the slice-enumeration
// oracle. Any divergence is minimized and written out as a textual
// reproducer.
func TestConformance(t *testing.T) {
	n := pointBudget()
	srv := serve.New(serve.Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	client := hs.Client()

	bindings := map[core.Binding]int{}
	for seed := int64(1); seed <= int64(n); seed++ {
		p := Generate(seed)
		countInterTile(p.Root, bindings)
		if err := RunPoint(p, hs.URL, client); err != nil {
			failWithRepro(t, p, err, func(c *Point) bool {
				return RunPoint(c, hs.URL, client) != nil
			})
		}
		if err := CheckOracle(p); err != nil {
			failWithRepro(t, p, err, func(c *Point) bool {
				return CheckOracle(c) != nil
			})
		}
	}
	// Acceptance: the oracle must have exercised each inter-tile binding on
	// at least 50 generated points.
	for _, b := range []core.Binding{core.Seq, core.Shar, core.Para, core.Pipe} {
		if bindings[b] < 50 {
			t.Errorf("binding %s covered by %d points, want >= 50 (raise the generator's binding diversity)", b, bindings[b])
		}
	}
}

// countInterTile counts each binding once per point when it appears on a
// node with at least two children — the inter-tile position the paper's
// binding semantics are about.
func countInterTile(root *core.Node, counts map[core.Binding]int) {
	seen := map[core.Binding]bool{}
	root.Walk(func(n *core.Node) {
		if len(n.Children) >= 2 {
			seen[n.Binding] = true
		}
	})
	for b := range seen {
		counts[b]++
	}
}

func failWithRepro(t *testing.T, p *Point, err error, failing func(*Point) bool) {
	t.Helper()
	min := Minimize(p, failing)
	repro := min.Reproducer()
	if dir := os.Getenv("TILEFLOW_REPRO_DIR"); dir != "" {
		if mkErr := os.MkdirAll(dir, 0o755); mkErr == nil {
			path := filepath.Join(dir, fmt.Sprintf("seed%d.txt", p.Seed))
			if wErr := os.WriteFile(path, []byte(repro), 0o644); wErr == nil {
				t.Logf("reproducer written to %s", path)
			}
		}
	}
	t.Fatalf("divergence: %v\nminimized reproducer:\n%s", err, repro)
}

// TestGeneratorDeterministic pins Generate as a pure function of its seed:
// the textual renderings of arch, workload and both mappings must be
// identical across calls, or printed seeds would not reproduce failures.
func TestGeneratorDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		a, b := Generate(seed), Generate(seed)
		if arch.FormatSpec(a.Spec) != arch.FormatSpec(b.Spec) {
			t.Fatalf("seed %d: arch differs between calls", seed)
		}
		if workload.CanonicalGraph(a.Graph) != workload.CanonicalGraph(b.Graph) {
			t.Fatalf("seed %d: workload differs between calls", seed)
		}
		if notation.Print(a.Root) != notation.Print(b.Root) {
			t.Fatalf("seed %d: root mapping differs between calls", seed)
		}
		if notation.Print(a.Alt) != notation.Print(b.Alt) {
			t.Fatalf("seed %d: alt mapping differs between calls", seed)
		}
	}
}

// TestGeneratorExactTilings checks the generator invariant the oracle
// relies on: along every root-to-leaf path, the loop extents over each of
// an operator's dims multiply exactly to the dim size.
func TestGeneratorExactTilings(t *testing.T) {
	for seed := int64(1); seed <= 100; seed++ {
		p := Generate(seed)
		p.Root.Walk(func(n *core.Node) {
			if !n.IsLeaf() {
				return
			}
			for _, d := range n.Op.Dims {
				prod := pathProduct(p.Root, n, d.Name)
				if prod != d.Size {
					t.Fatalf("seed %d: leaf %s dim %s: path product %d, size %d\n%s",
						seed, n.Name, d.Name, prod, d.Size, notation.Print(p.Root))
				}
			}
		})
	}
}

func pathProduct(root, leaf *core.Node, dim string) int {
	parent := map[*core.Node]*core.Node{}
	root.Walk(func(n *core.Node) {
		for _, c := range n.Children {
			parent[c] = n
		}
	})
	prod := 1
	for m := leaf; m != nil; m = parent[m] {
		prod *= m.DimExtent(dim)
	}
	return prod
}

// TestMinimizerShrinks feeds the minimizer an always-failing predicate and
// checks it reaches a strictly simpler, still-valid point.
func TestMinimizerShrinks(t *testing.T) {
	p := Generate(3)
	valid := func(c *Point) bool {
		_, err := core.Evaluate(c.Root, c.Graph, c.Spec, c.Opts)
		return err == nil
	}
	if !valid(p) {
		t.Fatalf("seed point invalid before minimization")
	}
	min := Minimize(p, valid) // "failing" = still evaluates, so it shrinks maximally
	if !valid(min) {
		t.Fatalf("minimized point no longer evaluates:\n%s", min.Reproducer())
	}
	if size(min.Root) > size(p.Root) {
		t.Fatalf("minimizer grew the tree: %d -> %d loops", size(p.Root), size(min.Root))
	}
	if err := RunPoint(min, "", http.DefaultClient); err != nil {
		t.Fatalf("minimized point diverges across local routes: %v", err)
	}
}

func size(root *core.Node) int {
	loops := 0
	root.Walk(func(n *core.Node) { loops += len(n.Loops) })
	return loops
}
