package conformance

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// Oracle recomputes the analysis model's data movement and footprint for
// one tree by brute force: instead of the closed-form slice extents of
// Sec 5.1.1, it materializes every time-step slice as an explicit set of
// tensor coordinates and takes literal set differences — the paper's
// defining equation DM = |S_0| + Σ_t |S_t \ S_{t-1}|. It shares no code
// with internal/core beyond the exported Node/Graph/Spec types, so a bug in
// the closed forms cannot cancel out.
//
// The oracle models the no-retention semantics (Options.DisableRetention);
// the differential driver evaluates the model with retention disabled when
// cross-checking against it.
type Oracle struct {
	g    *workload.Graph
	spec *arch.Spec
	root *core.Node

	parent  map[*core.Node]*core.Node
	order   []*core.Node // pre-order
	dims    map[*core.Node]map[string]bool
	groups  map[*core.Node][]*oGroup
	confine map[string]*core.Node
	density map[string]float64
}

// oRef is one (leaf, access) occurrence of a tensor in a subtree.
type oRef struct {
	leaf *core.Node
	op   *workload.Operator
	acc  workload.Access
	dims map[string]bool
}

// oGroup aggregates a subtree's accesses to one tensor, mirroring the
// model's tensorGroup semantics independently.
type oGroup struct {
	tensor    string
	reads     []oRef
	writes    []oRef
	readDims  map[string]bool
	writeDims map[string]bool
	evicts    bool
}

// NewOracle indexes the tree for enumeration.
func NewOracle(root *core.Node, g *workload.Graph, spec *arch.Spec) *Oracle {
	o := &Oracle{
		g:       g,
		spec:    spec,
		root:    root,
		parent:  map[*core.Node]*core.Node{},
		dims:    subtreeDims(root),
		groups:  map[*core.Node][]*oGroup{},
		confine: map[string]*core.Node{},
		density: map[string]float64{},
	}
	root.Walk(func(n *core.Node) {
		o.order = append(o.order, n)
		for _, c := range n.Children {
			o.parent[c] = n
		}
	})
	o.buildGroups(root)
	leafOf := map[string]*core.Node{}
	root.Walk(func(n *core.Node) {
		if n.IsLeaf() {
			leafOf[n.Op.Name] = n
		}
	})
	for _, tensor := range g.IntermediateTensors() {
		var users []*core.Node
		if p := g.Producer(tensor); p != nil && leafOf[p.Name] != nil {
			users = append(users, leafOf[p.Name])
		}
		for _, r := range g.Readers(tensor) {
			if leafOf[r.Name] != nil {
				users = append(users, leafOf[r.Name])
			}
		}
		if len(users) > 0 {
			o.confine[tensor] = o.lca(users)
		}
	}
	for name, t := range g.Tensors {
		if d := t.EffDensity(); d < 1 {
			o.density[name] = d
		}
	}
	return o
}

// buildGroups assembles per-node tensor groups bottom-up, in first-use
// order with leaf references in pre-order — the same ordering the model's
// compile step produces, so "first write access" tie-breaks agree.
func (o *Oracle) buildGroups(n *core.Node) {
	var groups []*oGroup
	idx := map[string]*oGroup{}
	grp := func(tensor string) *oGroup {
		g, ok := idx[tensor]
		if !ok {
			g = &oGroup{tensor: tensor, readDims: map[string]bool{}, writeDims: map[string]bool{}}
			idx[tensor] = g
			groups = append(groups, g)
		}
		return g
	}
	if n.IsLeaf() {
		for _, r := range n.Op.Reads {
			g := grp(r.Tensor)
			g.reads = append(g.reads, oRef{leaf: n, op: n.Op, acc: r, dims: dimSet(r)})
		}
		w := n.Op.Write
		g := grp(w.Tensor)
		g.writes = append(g.writes, oRef{leaf: n, op: n.Op, acc: w, dims: dimSet(w)})
	} else {
		for _, c := range n.Children {
			o.buildGroups(c)
			for _, cg := range o.groups[c] {
				g := grp(cg.tensor)
				g.reads = append(g.reads, cg.reads...)
				g.writes = append(g.writes, cg.writes...)
			}
		}
	}
	for _, g := range groups {
		for _, r := range g.reads {
			for d := range r.dims {
				g.readDims[d] = true
			}
		}
		for _, w := range g.writes {
			for d := range w.dims {
				g.writeDims[d] = true
			}
			for _, rd := range w.op.ReductionDims() {
				g.writeDims[rd] = true
			}
		}
		if n.Binding == core.Seq && len(n.Children) >= 2 {
			for _, c := range n.Children {
				uses := false
				for _, cg := range o.groups[c] {
					if cg.tensor == g.tensor {
						uses = true
						break
					}
				}
				if !uses {
					g.evicts = true
					break
				}
			}
		}
	}
	o.groups[n] = groups
}

func dimSet(acc workload.Access) map[string]bool {
	m := map[string]bool{}
	for _, d := range acc.Dims() {
		m[d] = true
	}
	return m
}

func (o *Oracle) lca(nodes []*core.Node) *core.Node {
	onPath := map[*core.Node]int{}
	for _, n := range nodes {
		for m := n; m != nil; m = o.parent[m] {
			onPath[m]++
		}
	}
	for m := nodes[0]; m != nil; m = o.parent[m] {
		if onPath[m] == len(nodes) {
			return m
		}
	}
	return o.root
}

// inSubtree reports whether m is inside n's subtree.
func (o *Oracle) inSubtree(n, m *core.Node) bool {
	for x := m; x != nil; x = o.parent[x] {
		if x == n {
			return true
		}
	}
	return false
}

// covBelow is the chunk of dim covered per step of n toward leaf: the
// product of extents of dim loops strictly below n on the path.
func (o *Oracle) covBelow(n, leaf *core.Node, dim string) int {
	cov := 1
	for m := leaf; m != nil && m != n; m = o.parent[m] {
		cov *= m.DimExtent(dim)
	}
	return cov
}

func (o *Oracle) stepCov(n, leaf *core.Node, dim string) int {
	return n.SpatialExtent(dim) * o.covBelow(n, leaf, dim)
}

func (o *Oracle) covAt(n, leaf *core.Node, dim string) int {
	return n.DimExtent(dim) * o.covBelow(n, leaf, dim)
}

// coordKey packs tensor coordinates into one comparable integer. Oracle
// shapes are tiny, so 16 bits per tensor dimension is ample.
func coordKey(coords []int) int64 {
	var k int64
	for _, c := range coords {
		if c < 0 || c >= 1<<16 {
			panic(fmt.Sprintf("conformance: coordinate %d out of oracle range", c))
		}
		k = k<<16 | int64(c)
	}
	return k
}

// enumSlice materializes the set of tensor coordinates the access touches
// when, for each iteration dim d of the access, d sweeps
// [base[d], base[d]+ext[d]). It is the literal "slice" of Sec 5.1.1.
func enumSlice(acc workload.Access, dims []string, base, ext map[string]int, out map[int64]struct{}) {
	point := make(map[string]int, len(dims))
	coords := make([]int, len(acc.Index))
	var rec func(i int)
	rec = func(i int) {
		if i == len(dims) {
			for ci, ix := range acc.Index {
				v := ix.Offset
				for _, t := range ix.Terms {
					v += t.Coef * point[t.Dim]
				}
				coords[ci] = v
			}
			out[coordKey(coords)] = struct{}{}
			return
		}
		d := dims[i]
		for j := base[d]; j < base[d]+ext[d]; j++ {
			point[d] = j
			rec(i + 1)
		}
	}
	rec(0)
}

// enumPerExec is the oracle's replacement for the closed-form perExecDM
// (retention off): it walks node n's temporal steps in execution order,
// materializes each step's slice, and sums |S_0| + Σ |S_t \ S_{t-1}|.
func (o *Oracle) enumPerExec(n, leaf *core.Node, acc workload.Access) int64 {
	dims := acc.Dims()
	ext := map[string]int{}
	for _, d := range dims {
		ext[d] = o.stepCov(n, leaf, d)
	}
	var tloops []core.Loop
	for _, l := range n.Loops {
		if l.Kind == core.Temporal {
			tloops = append(tloops, l)
		}
	}
	// Per-loop slice stride: step coverage of its dim times the extents of
	// inner loops over the same dim.
	strides := make([]int, len(tloops))
	for k, lk := range tloops {
		s := o.stepCov(n, leaf, lk.Dim)
		for j := k + 1; j < len(tloops); j++ {
			if tloops[j].Dim == lk.Dim {
				s *= tloops[j].Extent
			}
		}
		strides[k] = s
	}
	idx := make([]int, len(tloops))
	base := map[string]int{}
	var prev map[int64]struct{}
	var total int64
	for {
		for _, d := range dims {
			base[d] = 0
		}
		for k, lk := range tloops {
			if _, ok := ext[lk.Dim]; ok {
				base[lk.Dim] += idx[k] * strides[k]
			}
		}
		cur := make(map[int64]struct{})
		enumSlice(acc, dims, base, ext, cur)
		if prev == nil {
			total += int64(len(cur))
		} else {
			for k := range cur {
				if _, ok := prev[k]; !ok {
					total++
				}
			}
		}
		prev = cur
		// Advance the odometer, innermost loop fastest.
		k := len(tloops) - 1
		for ; k >= 0; k-- {
			idx[k]++
			if idx[k] < tloops[k].Extent {
				break
			}
			idx[k] = 0
		}
		if k < 0 {
			break
		}
	}
	return total
}

// enumSliceSize is the materialized size of one time-step slice.
func (o *Oracle) enumSliceSize(n, leaf *core.Node, acc workload.Access) int64 {
	return o.enumBox(acc, func(d string) int { return o.stepCov(n, leaf, d) })
}

// enumCovered is the distinct data one whole execution of n touches.
func (o *Oracle) enumCovered(n, leaf *core.Node, acc workload.Access) int64 {
	return o.enumBox(acc, func(d string) int { return o.covAt(n, leaf, d) })
}

// enumPerInstance is the per-hardware-instance slice size: coverage of
// everything strictly below n, excluding n's own loops.
func (o *Oracle) enumPerInstance(n, leaf *core.Node, acc workload.Access) int64 {
	return o.enumBox(acc, func(d string) int { return o.covBelow(n, leaf, d) })
}

func (o *Oracle) enumBox(acc workload.Access, extent func(dim string) int) int64 {
	dims := acc.Dims()
	base := map[string]int{}
	ext := map[string]int{}
	for _, d := range dims {
		base[d] = 0
		ext[d] = extent(d)
	}
	set := make(map[int64]struct{})
	enumSlice(acc, dims, base, ext, set)
	return int64(len(set))
}

// invWhere mirrors the model's ancestor-invocation count: the product over
// strict ancestors of extents of loops whose dim is relevant to the subtree
// toward n (restricted to onlyDims when non-nil).
func (o *Oracle) invWhere(n *core.Node, onlyDims map[string]bool) float64 {
	inv := 1.0
	child := n
	for a := o.parent[n]; a != nil; a = o.parent[a] {
		rel := o.dims[child]
		for _, l := range a.Loops {
			if !rel[l.Dim] {
				continue
			}
			if onlyDims != nil && !onlyDims[l.Dim] {
				continue
			}
			inv *= float64(l.Extent)
		}
		child = a
	}
	return inv
}

func (o *Oracle) parentLevel(n *core.Node) (int, bool) {
	p := o.parent[n]
	if p == nil {
		if n.Level < o.spec.DRAMLevel() {
			return o.spec.DRAMLevel(), true
		}
		return 0, false
	}
	if p.Level == n.Level {
		return 0, false
	}
	return p.Level, true
}

// DataMovement computes per-level and per-tensor data movement under the
// no-retention semantics by pure enumeration, following the documented
// inter-tile rules (confinement, Seq eviction, RMW partial refills, sparse
// compression, level attribution with direct access) with every geometric
// volume replaced by an enumerated set size.
func (o *Oracle) DataMovement() ([]core.LevelDM, map[string][]core.LevelDM) {
	nl := o.spec.NumLevels()
	dm := make([]core.LevelDM, nl)
	tensorDM := map[string][]core.LevelDM{}
	for _, n := range o.order {
		pLevel, ok := o.parentLevel(n)
		if !ok {
			continue
		}
		for _, grp := range o.groups[n] {
			if lca, ok := o.confine[grp.tensor]; ok && o.inSubtree(n, lca) {
				continue
			}
			var tf, tu float64
			perExec := func(refs []oRef) float64 {
				var best float64
				for _, r := range refs {
					var v float64
					if grp.evicts {
						v = float64(n.TemporalTrips()) * float64(o.enumSliceSize(n, r.leaf, r.acc))
					} else {
						v = float64(o.enumPerExec(n, r.leaf, r.acc))
					}
					if v > best {
						best = v
					}
				}
				return best
			}
			if len(grp.reads) > 0 {
				per := perExec(grp.reads)
				if grp.evicts {
					tf = per * o.invWhere(n, nil)
				} else {
					tf = per * o.invWhere(n, grp.readDims)
				}
			}
			if len(grp.writes) > 0 {
				per := perExec(grp.writes)
				tu = per * o.invWhere(n, grp.writeDims)
				w := grp.writes[0]
				distinct := float64(o.enumCovered(n, w.leaf, w.acc)) * o.invWhere(n, w.dims)
				if rmw := tu - distinct; rmw > 0 {
					tf += rmw
				}
			}
			if d, sparse := o.density[grp.tensor]; sparse {
				tf *= d
				tu *= d
			}
			td, ok := tensorDM[grp.tensor]
			if !ok {
				td = make([]core.LevelDM, nl)
				tensorDM[grp.tensor] = td
			}
			attribute := func(dst []core.LevelDM) {
				dst[n.Level].Fill += tf
				dst[pLevel].Read += tf
				dst[pLevel].Update += tu
				if !o.spec.HasDirectAccess(n.Level, pLevel) {
					for l := n.Level + 1; l < pLevel; l++ {
						dst[l].Fill += tf
						dst[l].Read += tf
						dst[l].Update += tu
					}
				}
			}
			attribute(dm)
			attribute(td)
		}
	}
	return dm, tensorDM
}

// Footprint computes the per-instance buffer occupancy per level with
// enumerated slice sizes, mirroring the staging rules: the tensor's home
// level stages the full per-instance slice, pass-through levels stage a
// double-buffered child chunk, children combine element-wise by max.
func (o *Oracle) Footprint() []int64 {
	return o.footprintAt(o.root)
}

func (o *Oracle) footprintAt(n *core.Node) []int64 {
	nl := o.spec.NumLevels()
	f := make([]int64, nl)
	var own int64
	for _, grp := range o.groups[n] {
		lca, confined := o.confine[grp.tensor]
		if confined && lca != n && o.inSubtree(n, lca) {
			continue
		}
		home := (confined && lca == n) || n.IsLeaf()
		var best int64
		stage := func(refs []oRef) {
			for _, r := range refs {
				var v int64
				if home {
					v = o.enumPerInstance(n, r.leaf, r.acc)
				} else {
					child := r.leaf
					for m := r.leaf; m != nil && m != n; m = o.parent[m] {
						child = m
					}
					v = 2 * o.enumPerInstance(child, r.leaf, r.acc)
				}
				if v > best {
					best = v
				}
			}
		}
		stage(grp.reads)
		stage(grp.writes)
		if d, ok := o.density[grp.tensor]; ok && d < 1 {
			best = int64(float64(best) * d)
		}
		own += best
	}
	f[n.Level] += own
	if n.IsLeaf() {
		return f
	}
	combined := make([]int64, nl)
	for _, c := range n.Children {
		cf := o.footprintAt(c)
		for l := range combined {
			if cf[l] > combined[l] {
				combined[l] = cf[l]
			}
		}
	}
	for l := range f {
		f[l] += combined[l]
	}
	return f
}

// LatencyLowerBound is a route-independent floor on compute cycles: every
// operator must stream its (density-gated) iterations through the compute
// units it can reach, discounted by all spatial parallelism on its leaf's
// path. The model's ComputeCycles and Cycles may exceed it but never
// undercut it.
func (o *Oracle) LatencyLowerBound() float64 {
	peakMAC := float64(o.spec.TotalPEs() * o.spec.MACsPerPE)
	lanes := float64(o.spec.VectorLanesPerSubcore)
	if lanes < 1 {
		lanes = 1
	}
	var bound float64
	o.root.Walk(func(n *core.Node) {
		if !n.IsLeaf() {
			return
		}
		spAbove := 1.0
		for m := o.parent[n]; m != nil; m = o.parent[m] {
			spAbove *= float64(m.SpatialProduct())
		}
		work := float64(n.Op.OpCount()) * o.g.OpDensity(n.Op)
		var b float64
		if n.Op.Kind.Vector() {
			b = work / (spAbove * lanes)
		} else {
			b = work / (spAbove * peakMAC)
		}
		if b > bound {
			bound = b
		}
	})
	return bound
}

// CheckOracle cross-checks the analytical model against the enumeration
// oracle for one point: exact data movement and footprint under
// no-retention options, plus latency lower bounds and op-count identities
// under the point's own options. A non-nil error describes the first
// disagreement.
func CheckOracle(p *Point) error {
	opts := p.Opts
	opts.DisableRetention = true
	res, err := core.Evaluate(p.Root, p.Graph, p.Spec, opts)
	if err != nil {
		return fmt.Errorf("oracle reference evaluation failed: %w", err)
	}
	o := NewOracle(p.Root, p.Graph, p.Spec)
	dm, tensorDM := o.DataMovement()
	for l := range dm {
		if err := dmClose(res.DM[l], dm[l]); err != nil {
			return fmt.Errorf("level %d (%s) DM: %w", l, p.Spec.Levels[l].Name, err)
		}
	}
	for tensor, want := range tensorDM {
		got, ok := res.TensorDM[tensor]
		if !ok {
			if nonZero(want) {
				return fmt.Errorf("tensor %q: model has no DM entry, oracle moves data", tensor)
			}
			continue
		}
		for l := range want {
			if err := dmClose(got[l], want[l]); err != nil {
				return fmt.Errorf("tensor %q level %d DM: %w", tensor, l, err)
			}
		}
	}
	fp := o.Footprint()
	for l := range fp {
		if fp[l] != res.FootprintWords[l] {
			return fmt.Errorf("level %d footprint: model %d, oracle %d", l, res.FootprintWords[l], fp[l])
		}
	}
	// Latency bounds hold for the point's own options too.
	own, err := core.Evaluate(p.Root, p.Graph, p.Spec, p.Opts)
	if err != nil {
		return fmt.Errorf("evaluation failed: %w", err)
	}
	const slack = 1 - 1e-9
	for _, r := range []*core.Result{res, own} {
		lb := o.LatencyLowerBound()
		if r.ComputeCycles < lb*slack {
			return fmt.Errorf("compute cycles %g below oracle lower bound %g", r.ComputeCycles, lb)
		}
		if r.Cycles < r.ComputeCycles*slack {
			return fmt.Errorf("cycles %g below compute cycles %g", r.Cycles, r.ComputeCycles)
		}
		var macs, vops float64
		for _, op := range p.Graph.Ops {
			w := float64(op.OpCount()) * p.Graph.OpDensity(op)
			if op.Kind == workload.KindMAC {
				macs += w
			} else {
				vops += w
			}
		}
		if !approxEqual(r.MACs, macs) || !approxEqual(r.VectorOps, vops) {
			return fmt.Errorf("op counts: model (%g macs, %g vops), workload (%g, %g)", r.MACs, r.VectorOps, macs, vops)
		}
		for l := range r.DM {
			if r.DM[l].Fill < 0 || r.DM[l].Read < 0 || r.DM[l].Update < 0 {
				return fmt.Errorf("level %d: negative data movement %+v", l, r.DM[l])
			}
		}
	}
	return nil
}

func approxEqual(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

func dmClose(got, want core.LevelDM) error {
	if !approxEqual(got.Fill, want.Fill) || !approxEqual(got.Read, want.Read) || !approxEqual(got.Update, want.Update) {
		return fmt.Errorf("model %+v, oracle %+v", got, want)
	}
	return nil
}

func nonZero(dm []core.LevelDM) bool {
	for _, d := range dm {
		if d.Fill != 0 || d.Read != 0 || d.Update != 0 {
			return true
		}
	}
	return false
}
