// Package conformance is the correctness backstop for the tree-based
// analysis: a seeded generator of random valid design points spanning the
// full binding space, a brute-force slice-enumeration oracle that recomputes
// per-level data movement by literally materializing time-step slices, and a
// differential driver that pushes every point through all four evaluation
// routes (cold Evaluate, Compile+Evaluate, WithTiling re-bind, and the HTTP
// service codec) and fails on any divergence with a minimized reproducer in
// notation DSL.
package conformance

import (
	"fmt"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// Point is one generated design point: an architecture, a workload graph,
// and two tilings (Root and Alt) of one tree structure, so the re-bind
// route has a second tiling to cross over from.
type Point struct {
	Seed  int64
	Spec  *arch.Spec
	Graph *workload.Graph
	Root  *core.Node
	Alt   *core.Node
	Opts  core.Options
}

// Generate builds the design point for one seed. The same seed always
// yields the identical point (the generator owns its rand.Source), so a
// printed seed is a complete reproducer.
//
// Coverage is steered by the seed index: graph families (matmul chains,
// conv chains, attention) rotate, the number of on-chip memory levels
// cycles 1–3, and for multi-op graphs the fusion node's inter-tile binding
// cycles Seq, Shar, Para, Pipe so every binding accumulates oracle points.
func Generate(seed int64) *Point {
	rng := rand.New(rand.NewSource(seed))
	spec := randomSpec(rng, int(seed%3)+1)
	g := randomGraph(rng, seed)
	focus := core.Binding(seed % 4)
	root := randomTree(rng, g, spec, focus)
	alt := root.Clone()
	wipeLoops(alt)
	assignTiling(rng, alt, g)
	p := &Point{
		Seed:  seed,
		Spec:  spec,
		Graph: g,
		Root:  root,
		Alt:   alt,
		// Capacity and PE feasibility are orthogonal to route equivalence;
		// skipping both keeps every generated point evaluable. Retention is
		// randomized so both closed-form branches are exercised.
		Opts: core.Options{
			SkipCapacityCheck: true,
			SkipPECheck:       true,
			DisableRetention:  rng.Intn(2) == 0,
		},
	}
	return p
}

// randomSpec builds a small valid architecture with the given number of
// on-chip buffer levels between the registers and DRAM (1–3).
func randomSpec(rng *rand.Rand, onChip int) *arch.Spec {
	meshes := [][2]int{{2, 2}, {4, 2}, {4, 4}}
	mesh := meshes[rng.Intn(len(meshes))]
	bws := []float64{8, 16, 25.5, 32, 64, 128}
	bw := func() float64 { return bws[rng.Intn(len(bws))] }
	levels := []arch.Level{
		{Name: "Reg", CapacityBytes: 1 << uint(8+rng.Intn(3)), BandwidthGBs: bw(), Fanout: 1},
		{Name: "L1", CapacityBytes: 1 << uint(13+rng.Intn(3)), BandwidthGBs: bw(), Fanout: mesh[0] * mesh[1]},
	}
	fanouts := []int{1, 2, 4}
	for i := 2; i <= onChip; i++ {
		levels = append(levels, arch.Level{
			Name:          fmt.Sprintf("L%d", i),
			CapacityBytes: 1 << uint(15+2*i+rng.Intn(2)),
			BandwidthGBs:  bw(),
			Fanout:        fanouts[rng.Intn(len(fanouts))],
		})
	}
	levels = append(levels, arch.Level{Name: "DRAM", BandwidthGBs: bw(), Fanout: fanouts[rng.Intn(len(fanouts))]})
	s := &arch.Spec{
		Name:                  fmt.Sprintf("gen%d", onChip),
		Levels:                levels,
		MeshX:                 mesh[0],
		MeshY:                 mesh[1],
		FreqGHz:               1,
		WordBytes:             2,
		MACsPerPE:             1,
		VectorLanesPerSubcore: 1 << uint(2+rng.Intn(3)),
	}
	// Occasionally grant the registers direct access to the outermost
	// level, exercising the Sec 5.1.2 bypass attribution.
	if len(levels) >= 4 && rng.Intn(4) == 0 {
		s.DirectAccess = [][2]int{{0, len(levels) - 1}}
	}
	if err := s.Validate(); err != nil {
		panic("conformance: generated invalid spec: " + err.Error())
	}
	return s
}

// randomGraph builds a small multi-op workload. Shapes are kept tiny (op
// spaces of at most a few hundred iterations) so the enumeration oracle
// stays cheap, and all index expressions use unit coefficients, where box
// slices are exact (the closed forms and the enumerated sets provably
// agree; strided layouts are covered by the Fig 5 golden test instead).
func randomGraph(rng *rand.Rand, seed int64) *workload.Graph {
	small := []int{2, 4, 8}
	pick := func() int { return small[rng.Intn(len(small))] }
	switch seed % 3 {
	case 0: // matmul chain, 1–3 ops
		n := 1 + rng.Intn(3)
		sizes := make([]int, n+1)
		for i := range sizes {
			sizes[i] = pick()
		}
		m := pick()
		var ops []*workload.Operator
		for i := 0; i < n; i++ {
			in := "A"
			if i > 0 {
				in = fmt.Sprintf("C%d", i)
			}
			out := fmt.Sprintf("C%d", i+1)
			ki := fmt.Sprintf("k%d", i)
			ni := fmt.Sprintf("n%d", i+1)
			ops = append(ops, &workload.Operator{
				Name: fmt.Sprintf("mm%d", i+1),
				Kind: workload.KindMAC,
				Dims: []workload.Dim{{Name: "m", Size: m}, {Name: ni, Size: sizes[i+1]}, {Name: ki, Size: sizes[i]}},
				Reads: []workload.Access{
					{Tensor: in, Index: []workload.Index{workload.I("m"), workload.I(ki)}},
					{Tensor: fmt.Sprintf("W%d", i+1), Index: []workload.Index{workload.I(ki), workload.I(ni)}},
				},
				Write: workload.Access{Tensor: out, Index: []workload.Index{workload.I("m"), workload.I(ni)}},
			})
		}
		g := workload.MustGraph(fmt.Sprintf("mmchain%d_%d", n, seed), workload.WordBytes, ops...)
		if rng.Intn(3) == 0 {
			g.Tensors["A"].Density = 0.5
		}
		return g
	case 1: // conv chain, 2–3 layers, 2x2 filters
		nLayers := 2 + rng.Intn(2)
		channels := make([]int, nLayers+1)
		for i := range channels {
			channels[i] = 1 + rng.Intn(3)
		}
		h := 2 + rng.Intn(2)*2 // 2 or 4
		w := 2 + rng.Intn(2)*2
		return workload.ConvChainN(fmt.Sprintf("ccgen%d", seed), h, w, 2, channels)
	default: // attention, 7-op expanded or 3-op coarse
		shape := workload.AttentionShape{
			Name:   fmt.Sprintf("gen%d", seed),
			Heads:  1 + rng.Intn(2),
			SeqLen: 2 + rng.Intn(2)*2,
			Batch:  1,
		}
		shape.Hidden = shape.Heads * (2 << uint(rng.Intn(2))) // head dim 2 or 4
		if rng.Intn(2) == 0 {
			return workload.AttentionCoarse(shape)
		}
		return workload.Attention(shape)
	}
}

// randomTree builds a valid analysis tree over the graph: leaves grouped
// into contiguous segments, each multi-op segment fused under an interior
// tile, the whole thing under a root tile. When the graph has more than one
// operator, the node owning the (multi-child) fusion decision gets the
// focus binding, guaranteeing per-binding oracle coverage.
func randomTree(rng *rand.Rand, g *workload.Graph, spec *arch.Spec, focus core.Binding) *core.Node {
	dram := spec.DRAMLevel()
	leaves := make([]*core.Node, len(g.Ops))
	for i, op := range g.Ops {
		leaves[i] = core.Leaf("t_"+op.Name, op)
	}
	// Partition the leaves into contiguous segments.
	var segments [][]*core.Node
	for i := 0; i < len(leaves); {
		n := 1 + rng.Intn(len(leaves)-i)
		segments = append(segments, leaves[i:i+n])
		i += n
	}
	randBinding := func() core.Binding { return core.Binding(rng.Intn(4)) }
	maxInner := dram - 1 // deepest on-chip tile level
	if maxInner < 1 {
		maxInner = 1
	}
	children := make([]*core.Node, len(segments))
	for i, seg := range segments {
		if len(seg) == 1 {
			children[i] = seg[0]
			continue
		}
		lvl := 1 + rng.Intn(maxInner)
		children[i] = core.Tile(fmt.Sprintf("fuse%d", i), lvl, randBinding(), nil, seg...)
	}
	rootLevel := dram
	if rng.Intn(5) == 0 && dram > 1 {
		// An on-chip root exercises the implicit-DRAM-parent boundary.
		rootLevel = dram - 1
	}
	root := core.Tile("root", rootLevel, randBinding(), nil, children...)
	// Interior child levels must not exceed the root's.
	for _, c := range children {
		if c.Level > rootLevel {
			c.Level = rootLevel
		}
	}
	// Hand the focus binding to the widest interior node so multi-op graphs
	// always contribute an oracle point for it.
	if len(g.Ops) > 1 {
		widest := root
		for _, c := range children {
			if len(c.Children) > len(widest.Children) && !c.IsLeaf() {
				widest = c
			}
		}
		if len(root.Children) > 1 {
			widest = root
		}
		widest.Binding = focus
	}
	assignTiling(rng, root, g)
	return root
}

// wipeLoops clears every loop nest in the subtree, keeping the structure.
func wipeLoops(n *core.Node) {
	n.Loops = nil
	for _, c := range n.Children {
		wipeLoops(c)
	}
}

// assignTiling assigns loop nests making the tree an exact tiling: for each
// iteration dimension the extents along every root-to-leaf path multiply to
// the dimension's full size, by construction. Interior nodes take random
// divisors (temporal or spatial); leaves absorb the remainder, split into a
// spatial and a temporal part.
func assignTiling(rng *rand.Rand, root *core.Node, g *workload.Graph) {
	dims := map[string]int{}
	order := []string{}
	for _, op := range g.Ops {
		for _, d := range op.Dims {
			if _, ok := dims[d.Name]; !ok {
				order = append(order, d.Name)
			}
			dims[d.Name] = d.Size
		}
	}
	uses := subtreeDims(root)
	var distribute func(n *core.Node, dim string, remaining int)
	distribute = func(n *core.Node, dim string, remaining int) {
		if n.IsLeaf() {
			if !n.Op.HasDim(dim) {
				return
			}
			sp := randomDivisor(rng, remaining)
			tp := remaining / sp
			if sp > 1 {
				n.Loops = append(n.Loops, core.S(dim, sp))
			}
			appendFactor(rng, n, dim, tp, core.Temporal)
			return
		}
		f := 1
		if remaining > 1 && rng.Intn(2) == 0 {
			f = randomDivisor(rng, remaining)
		}
		if f > 1 {
			kind := core.Temporal
			if rng.Intn(4) == 0 {
				kind = core.Spatial
			}
			appendFactor(rng, n, dim, f, kind)
		} else if rng.Intn(8) == 0 {
			// Extent-1 loops are legal; sprinkle a few in.
			n.Loops = append(n.Loops, core.T(dim, 1))
		}
		for _, c := range n.Children {
			if uses[c][dim] {
				distribute(c, dim, remaining/f)
			}
		}
	}
	for _, d := range order {
		distribute(root, d, dims[d])
	}
	shuffleLoops(rng, root)
}

// appendFactor adds loops over dim with the given total extent, sometimes
// split into two same-dimension loops so the stride math (inner wraps of
// the same dim) gets exercised.
func appendFactor(rng *rand.Rand, n *core.Node, dim string, extent int, kind core.LoopKind) {
	if extent <= 1 {
		return
	}
	if kind == core.Temporal && rng.Intn(3) == 0 {
		if a := randomDivisor(rng, extent); a > 1 && a < extent {
			n.Loops = append(n.Loops, core.T(dim, a), core.T(dim, extent/a))
			return
		}
	}
	n.Loops = append(n.Loops, core.Loop{Dim: dim, Extent: extent, Kind: kind})
}

// shuffleLoops randomizes loop order within every node (loop order is part
// of the modeled mapping — the analysis must agree across routes for any
// order).
func shuffleLoops(rng *rand.Rand, n *core.Node) {
	rng.Shuffle(len(n.Loops), func(i, j int) { n.Loops[i], n.Loops[j] = n.Loops[j], n.Loops[i] })
	for _, c := range n.Children {
		shuffleLoops(rng, c)
	}
}

// randomDivisor picks a divisor of n, biased toward small factors.
func randomDivisor(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 1
	}
	var divs []int
	for d := 1; d <= n; d++ {
		if n%d == 0 {
			divs = append(divs, d)
		}
	}
	// Two draws, keep the smaller ~half the time, biasing toward 1/2/small.
	a, b := divs[rng.Intn(len(divs))], divs[rng.Intn(len(divs))]
	if a > b {
		a = b
	}
	return a
}

// subtreeDims maps every node to the union of iteration dims of the
// operators in its subtree.
func subtreeDims(root *core.Node) map[*core.Node]map[string]bool {
	out := map[*core.Node]map[string]bool{}
	var walk func(n *core.Node) map[string]bool
	walk = func(n *core.Node) map[string]bool {
		dims := map[string]bool{}
		if n.IsLeaf() {
			for _, d := range n.Op.Dims {
				dims[d.Name] = true
			}
		} else {
			for _, c := range n.Children {
				for d := range walk(c) {
					dims[d] = true
				}
			}
		}
		out[n] = dims
		return dims
	}
	walk(root)
	return out
}
