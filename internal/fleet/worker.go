package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jobs"
)

// ErrLeaseLost is the cancellation cause a worker uses when the coordinator
// rejected its fencing token (or its lease expired while partitioned): the
// job now belongs to another node, so the worker abandons its in-flight
// work without reporting anything — its writes would be refused anyway.
var ErrLeaseLost = errors.New("fleet: lease lost")

// WorkerConfig wires one fleet worker to a coordinator.
type WorkerConfig struct {
	// Coordinator is the peer base URL, e.g. "http://10.0.0.1:8081".
	Coordinator string
	// Node names this worker; it becomes the lease owner in the store and
	// the worker label on /metrics. Required.
	Node string
	// Slots is the number of jobs run concurrently (default 1).
	Slots int
	// Poll is how long to wait after an empty claim before asking again
	// (default 500ms).
	Poll time.Duration
	// Heartbeat is the lease renewal cadence (default 3s). Keep it well
	// under the coordinator's lease TTL: a worker that misses every renew
	// inside one TTL loses its jobs to the sweep.
	Heartbeat time.Duration
	// Runner executes claimed jobs; required. It must honor ctx exactly as
	// the in-process manager's runner does.
	Runner jobs.Runner
	// Clock is the injected time source (tests); nil means the wall clock.
	Clock func() time.Time
	// Client is the HTTP client for peer calls (default http.DefaultClient).
	Client *http.Client
}

// Worker claims jobs from a coordinator and runs them under a heartbeated
// lease. Start launches the slot loops; Close drains gracefully (jobs are
// released back with their checkpoints); Kill abandons everything without
// contacting the coordinator, simulating a crash — the lease sweep then
// re-queues the work.
type Worker struct {
	cfg    WorkerConfig
	now    func() time.Time
	client *http.Client

	mu      sync.Mutex
	running map[string]context.CancelCauseFunc
	stop    chan struct{}
	stopped bool
	wg      sync.WaitGroup

	claims      atomic.Uint64
	emptyClaims atomic.Uint64
	renews      atomic.Uint64
	renewNanos  atomic.Int64
	checkpoints atomic.Uint64
	completes   atomic.Uint64
	staleLosses atomic.Uint64
}

// WorkerStats is the per-worker metrics snapshot.
type WorkerStats struct {
	Node string
	// LeasesHeld is the number of jobs currently running under this
	// worker's leases.
	LeasesHeld int
	// Claims counts successful claims; EmptyClaims, polls that found the
	// queue empty.
	Claims      uint64
	EmptyClaims uint64
	// Renews counts successful heartbeats; RenewLatency is the most recent
	// renew round-trip as measured by the injected clock.
	Renews       uint64
	RenewLatency time.Duration
	// CheckpointsShipped counts checkpoint payloads accepted by the
	// coordinator; Completes, finalizations (or releases) it accepted.
	CheckpointsShipped uint64
	Completes          uint64
	// StaleLosses counts jobs abandoned because the lease was lost.
	StaleLosses uint64
}

// NewWorker validates the config and builds a worker; Start launches it.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("fleet: worker needs a coordinator URL")
	}
	if cfg.Node == "" {
		return nil, fmt.Errorf("fleet: worker needs a node name")
	}
	if cfg.Runner == nil {
		return nil, fmt.Errorf("fleet: worker needs a runner")
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 500 * time.Millisecond
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 3 * time.Second
	}
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	return &Worker{
		cfg:     cfg,
		now:     now,
		client:  client,
		running: map[string]context.CancelCauseFunc{},
		stop:    make(chan struct{}),
	}, nil
}

// Start launches the slot loops.
func (w *Worker) Start() {
	for i := 0; i < w.cfg.Slots; i++ {
		w.wg.Add(1)
		go w.slot()
	}
}

// Stats snapshots the worker counters.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	held := len(w.running)
	w.mu.Unlock()
	return WorkerStats{
		Node:               w.cfg.Node,
		LeasesHeld:         held,
		Claims:             w.claims.Load(),
		EmptyClaims:        w.emptyClaims.Load(),
		Renews:             w.renews.Load(),
		RenewLatency:       time.Duration(w.renewNanos.Load()),
		CheckpointsShipped: w.checkpoints.Load(),
		Completes:          w.completes.Load(),
		StaleLosses:        w.staleLosses.Load(),
	}
}

// Close drains the worker: no new claims, running jobs are cancelled with
// the draining cause (their runners checkpoint), and each job is released
// back to the coordinator's queue with its checkpoint intact. Blocks until
// every slot exits or ctx expires.
func (w *Worker) Close(ctx context.Context) error {
	w.shutdown(jobs.ErrDraining)
	done := make(chan struct{})
	go func() { w.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("fleet: worker drain timed out: %w", ctx.Err())
	}
}

// Kill abandons the worker as a crash would: runners are cancelled with the
// lease-lost cause and nothing is reported to the coordinator. The jobs
// stay Running in the store until their leases expire and the sweep hands
// them to another worker — the failover path under test.
func (w *Worker) Kill() {
	w.shutdown(ErrLeaseLost)
	w.wg.Wait()
}

func (w *Worker) shutdown(cause error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.stopped {
		w.stopped = true
		close(w.stop)
	}
	for _, cancel := range w.running {
		cancel(cause)
	}
}

// slot is one claim-run-complete loop.
func (w *Worker) slot() {
	defer w.wg.Done()
	for {
		select {
		case <-w.stop:
			return
		default:
		}
		j, err := w.claim()
		if err != nil || j == nil {
			// Empty queue or unreachable coordinator: back off one poll.
			t := time.NewTimer(w.cfg.Poll)
			select {
			case <-w.stop:
				t.Stop()
				return
			case <-t.C:
			}
			continue
		}
		w.runJob(j)
	}
}

// runJob executes one claimed job under its lease: a heartbeat goroutine
// renews on a ticker while the runner works, checkpoints ship through upd,
// and the outcome is reported under the fencing token — unless the lease
// was lost, in which case the worker walks away silently.
func (w *Worker) runJob(j *jobs.Job) {
	token := j.Lease.Token
	expires := j.Lease.Expires

	ctx, cancel := context.WithCancelCause(context.Background())
	w.mu.Lock()
	if w.stopped {
		// Shutdown raced the claim: release the job right back.
		w.mu.Unlock()
		cancel(jobs.ErrDraining)
		w.complete(j.ID, token, jobs.Queued, nil, "")
		return
	}
	w.running[j.ID] = cancel
	w.mu.Unlock()

	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	go w.heartbeat(ctx, cancel, j.ID, token, expires, hbStop, hbDone)

	upd := func(progress, checkpoint json.RawMessage) {
		var lease leaseResponse
		err := w.post("/v1/fleet/checkpoint",
			&checkpointRequest{ID: j.ID, Token: token, Progress: progress, Checkpoint: checkpoint}, &lease)
		if err != nil {
			if isLeaseFatal(err) {
				cancel(ErrLeaseLost)
			}
			return // transient: the next checkpoint or renew retries
		}
		w.checkpoints.Add(1)
		if lease.CancelRequested {
			cancel(jobs.ErrCancelled)
		}
	}

	result, err := w.runProtected(ctx, j, upd)

	close(hbStop)
	<-hbDone
	w.mu.Lock()
	delete(w.running, j.ID)
	w.mu.Unlock()
	cancel(nil)

	cause := context.Cause(ctx)
	switch {
	case errors.Is(cause, ErrLeaseLost):
		// The job belongs to another node now; saying anything would only
		// earn a stale-lease rejection.
		w.staleLosses.Add(1)
	case err == nil:
		w.complete(j.ID, token, jobs.Done, result, "")
	case errors.Is(cause, jobs.ErrDraining) || errors.Is(err, jobs.ErrDraining):
		w.complete(j.ID, token, jobs.Queued, nil, "")
	case errors.Is(cause, jobs.ErrCancelled) || errors.Is(err, jobs.ErrCancelled):
		w.complete(j.ID, token, jobs.Cancelled, nil, jobs.ErrCancelled.Error())
	default:
		w.complete(j.ID, token, jobs.Failed, nil, err.Error())
	}
}

// heartbeat renews the lease on a ticker until the job ends. A stale
// rejection cancels the runner with ErrLeaseLost; a cancel request rides
// back on the renew response; and when the coordinator is unreachable past
// the lease expiry (by this worker's own clock), the worker assumes the
// sweep took the job and abandons it — the partitioned-worker half of lease
// safety.
func (w *Worker) heartbeat(ctx context.Context, cancel context.CancelCauseFunc,
	id string, token uint64, expires time.Time, stop, done chan struct{}) {
	defer close(done)
	tk := time.NewTicker(w.cfg.Heartbeat)
	defer tk.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-tk.C:
			start := w.now()
			var lease leaseResponse
			err := w.post("/v1/fleet/renew", &renewRequest{ID: id, Token: token}, &lease)
			if err != nil {
				if isLeaseFatal(err) {
					cancel(ErrLeaseLost)
					return
				}
				if !expires.IsZero() && w.now().After(expires) {
					cancel(ErrLeaseLost)
					return
				}
				continue
			}
			w.renews.Add(1)
			w.renewNanos.Store(int64(w.now().Sub(start)))
			if !lease.Expires.IsZero() {
				expires = lease.Expires
			}
			if lease.CancelRequested {
				// Keep renewing while the runner winds down, so the lease
				// stays ours until the Cancelled completion commits.
				cancel(jobs.ErrCancelled)
			}
		}
	}
}

// runProtected converts a runner panic into a job failure.
func (w *Worker) runProtected(ctx context.Context, j *jobs.Job, upd func(progress, checkpoint json.RawMessage)) (result json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("fleet: runner panicked: %v", r)
		}
	}()
	return w.cfg.Runner(ctx, j, upd)
}

// claim asks the coordinator for a job; nil without error means the queue
// was empty.
func (w *Worker) claim() (*jobs.Job, error) {
	var resp claimResponse
	status, err := w.postStatus("/v1/fleet/claim", &claimRequest{Node: w.cfg.Node}, &resp)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNoContent || resp.Job == nil {
		w.emptyClaims.Add(1)
		return nil, nil
	}
	if resp.Job.Lease == nil {
		return nil, fmt.Errorf("fleet: claim response carries no lease")
	}
	w.claims.Add(1)
	return resp.Job, nil
}

func (w *Worker) complete(id string, token uint64, state jobs.State, result json.RawMessage, errMsg string) {
	var resp completeResponse
	err := w.post("/v1/fleet/complete",
		&completeRequest{ID: id, Token: token, State: state, Result: result, Error: errMsg}, &resp)
	if err != nil {
		if isLeaseFatal(err) {
			w.staleLosses.Add(1)
		}
		return
	}
	w.completes.Add(1)
}

// wireError is a decoded protocol error response.
type wireError struct {
	Status int
	Code   string
	Msg    string
}

func (e *wireError) Error() string {
	return fmt.Sprintf("fleet: peer answered %d (%s): %s", e.Status, e.Code, e.Msg)
}

// isLeaseFatal reports whether a peer error means this worker's claim on
// the job is gone for good (as opposed to a transient network or server
// hiccup worth retrying).
func isLeaseFatal(err error) bool {
	var we *wireError
	return errors.As(err, &we) && (we.Code == CodeStaleLease || we.Code == CodeUnknownJob)
}

func (w *Worker) post(path string, body, into any) error {
	_, err := w.postStatus(path, body, into)
	return err
}

// postStatus POSTs JSON to the coordinator, decoding a 2xx body into `into`
// and a non-2xx body into a *wireError.
func (w *Worker) postStatus(path string, body, into any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := w.client.Post(w.cfg.Coordinator+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return resp.StatusCode, nil
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		return resp.StatusCode, &wireError{Status: resp.StatusCode, Code: eb.Code, Msg: eb.Error}
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			return resp.StatusCode, fmt.Errorf("fleet: bad peer response: %w", err)
		}
	}
	return resp.StatusCode, nil
}
