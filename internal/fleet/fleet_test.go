package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/memo"
)

// testClock is a manually advanced clock shared by the store and workers.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	return &testClock{t: time.Date(2026, 8, 6, 9, 0, 0, 0, time.UTC)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// testValue is the toy cache value the test codec moves across the wire.
type testValue struct {
	X int `json:"x"`
}

func testCodec() Codec {
	return Codec{
		Encode: func(v any) ([]byte, bool) {
			tv, ok := v.(*testValue)
			if !ok {
				return nil, false
			}
			b, _ := json.Marshal(tv)
			return b, true
		},
		Decode: func(b []byte) (any, error) {
			tv := &testValue{}
			if err := json.Unmarshal(b, tv); err != nil {
				return nil, err
			}
			return tv, nil
		},
	}
}

// harness bundles a store, a coordinator, and its HTTP server.
type harness struct {
	clk   *testClock
	store *jobs.Store
	coord *Coordinator
	srv   *httptest.Server
}

func newHarness(t *testing.T, ttl time.Duration) *harness {
	t.Helper()
	clk := newTestClock()
	store, err := jobs.Open("", clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	coord := &Coordinator{Store: store, TTL: ttl, Cache: memo.NewShardedLRU(64), Codec: testCodec()}
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		srv.Close()
		store.Close()
	})
	return &harness{clk: clk, store: store, coord: coord, srv: srv}
}

func (h *harness) newWorker(t *testing.T, node string, runner jobs.Runner) *Worker {
	t.Helper()
	w, err := NewWorker(WorkerConfig{
		Coordinator: h.srv.URL,
		Node:        node,
		Poll:        5 * time.Millisecond,
		Heartbeat:   10 * time.Millisecond,
		Clock:       h.clk.Now,
		Runner:      runner,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func waitState(t *testing.T, s *jobs.Store, id string, want jobs.State) *jobs.Job {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		j, ok := s.Get(id)
		if ok && j.State == want {
			return j
		}
		select {
		case <-deadline:
			t.Fatalf("job %s never reached %s (now %+v)", id, want, j)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func TestWorkerClaimsRunsCompletes(t *testing.T) {
	h := newHarness(t, time.Hour)
	w := h.newWorker(t, "w1", func(ctx context.Context, j *jobs.Job, upd func(p, c json.RawMessage)) (json.RawMessage, error) {
		upd(json.RawMessage(`{"generation":1}`), json.RawMessage(`{"cp":1}`))
		return json.RawMessage(`{"echo":` + string(j.Request) + `}`), nil
	})
	w.Start()
	defer w.Kill()

	j, err := h.store.Create("search", json.RawMessage(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, h.store, j.ID, jobs.Done)
	if string(got.Result) != `{"echo":{"x":1}}` {
		t.Errorf("result %s", got.Result)
	}
	if got.Attempts != 1 || string(got.Progress) != `{"generation":1}` || string(got.Checkpoint) != `{"cp":1}` {
		t.Errorf("bookkeeping: %+v", got)
	}
	cs := h.coord.Stats()
	if cs.Claims != 1 || cs.Checkpoints != 1 || cs.Completes != 1 {
		t.Errorf("coordinator stats %+v", cs)
	}
	// The store turns Done inside the complete handler, a beat before the
	// worker bumps its own counter — poll briefly.
	deadline := time.After(2 * time.Second)
	for {
		ws := w.Stats()
		if ws.Claims == 1 && ws.CheckpointsShipped == 1 && ws.Completes == 1 && ws.LeasesHeld == 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("worker stats %+v", ws)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// TestFailoverHandsCheckpointToNextWorker kills a worker mid-job and
// checks the sweep re-queues the job with the dead worker's checkpoint,
// and that the next claimant picks it up with the attempt counted.
func TestFailoverHandsCheckpointToNextWorker(t *testing.T) {
	h := newHarness(t, time.Minute)
	checkpointed := make(chan struct{})
	var once sync.Once
	blockingRunner := func(ctx context.Context, j *jobs.Job, upd func(p, c json.RawMessage)) (json.RawMessage, error) {
		upd(json.RawMessage(`{"generation":2}`), json.RawMessage(`{"next_gen":2}`))
		once.Do(func() { close(checkpointed) })
		<-ctx.Done()
		return nil, context.Cause(ctx)
	}
	a := h.newWorker(t, "a", blockingRunner)
	a.Start()

	j, _ := h.store.Create("search", nil)
	<-checkpointed
	a.Kill() // crash: nothing reported, lease left dangling
	if st := a.Stats(); st.StaleLosses != 1 {
		t.Errorf("killed worker stale losses %d, want 1", st.StaleLosses)
	}

	running, _ := h.store.Get(j.ID)
	if running.State != jobs.Running || running.Lease.Owner != "a" {
		t.Fatalf("job after kill: %+v", running)
	}

	// Nothing to sweep until the TTL passes.
	if rq, cc, _ := h.coord.Sweep(); rq != 0 || cc != 0 {
		t.Fatalf("premature sweep: %d %d", rq, cc)
	}
	h.clk.Advance(2 * time.Minute)
	if rq, cc, _ := h.coord.Sweep(); rq != 1 || cc != 0 {
		t.Fatalf("sweep after expiry: %d %d", rq, cc)
	}
	if h.coord.Stats().Failovers != 1 {
		t.Errorf("failovers %d, want 1", h.coord.Stats().Failovers)
	}

	got := make(chan *jobs.Job, 1)
	b := h.newWorker(t, "b", func(ctx context.Context, j *jobs.Job, upd func(p, c json.RawMessage)) (json.RawMessage, error) {
		got <- j
		return json.RawMessage(`{"done":true}`), nil
	})
	b.Start()
	defer b.Kill()

	claimed := <-got
	if string(claimed.Checkpoint) != `{"next_gen":2}` {
		t.Errorf("failover lost the checkpoint: %q", claimed.Checkpoint)
	}
	if claimed.Attempts != 2 {
		t.Errorf("attempts %d, want 2", claimed.Attempts)
	}
	waitState(t, h.store, j.ID, jobs.Done)
}

// TestStaleCompleteRejectedOnWire exercises lease safety over HTTP: a
// worker that lost its lease gets 409 {code: "stale_lease"} when it tries
// to commit, and the job's true result is untouched.
func TestStaleCompleteRejectedOnWire(t *testing.T) {
	h := newHarness(t, time.Minute)
	post := func(path string, body any) (int, errorBody) {
		b, _ := json.Marshal(body)
		resp, err := http.Post(h.srv.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		return resp.StatusCode, eb
	}

	j, _ := h.store.Create("search", nil)
	first, err := h.store.ClaimNext("a", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	h.clk.Advance(2 * time.Minute)
	h.coord.Sweep()
	second, err := h.store.ClaimNext("b", time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	status, eb := post("/v1/fleet/complete", &completeRequest{
		ID: j.ID, Token: first.Lease.Token, State: jobs.Done,
		Result: json.RawMessage(`{"cycles":666}`),
	})
	if status != http.StatusConflict || eb.Code != CodeStaleLease {
		t.Fatalf("stale complete: status %d code %q", status, eb.Code)
	}
	if h.coord.Stats().StaleRejections != 1 {
		t.Errorf("stale rejections %d, want 1", h.coord.Stats().StaleRejections)
	}
	got, _ := h.store.Get(j.ID)
	if got.State != jobs.Running || got.Result != nil {
		t.Errorf("stale write landed: %+v", got)
	}

	status, eb = post("/v1/fleet/renew", &renewRequest{ID: "j99999999", Token: 1})
	if status != http.StatusNotFound || eb.Code != CodeUnknownJob {
		t.Errorf("unknown job: status %d code %q", status, eb.Code)
	}

	// The rightful owner still commits fine.
	status, _ = post("/v1/fleet/complete", &completeRequest{
		ID: j.ID, Token: second.Lease.Token, State: jobs.Done,
		Result: json.RawMessage(`{"cycles":7}`),
	})
	if status != http.StatusOK {
		t.Fatalf("owner complete: status %d", status)
	}
}

// TestCancelRidesHeartbeat flags a running remote job for cancellation and
// checks the worker learns of it on renew and finalizes as Cancelled.
func TestCancelRidesHeartbeat(t *testing.T) {
	h := newHarness(t, time.Hour)
	started := make(chan struct{})
	var once sync.Once
	w := h.newWorker(t, "w1", func(ctx context.Context, j *jobs.Job, upd func(p, c json.RawMessage)) (json.RawMessage, error) {
		once.Do(func() { close(started) })
		<-ctx.Done()
		return nil, context.Cause(ctx)
	})
	w.Start()
	defer w.Kill()

	j, _ := h.store.Create("search", nil)
	<-started
	if _, err := h.store.RequestCancel(j.ID); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, h.store, j.ID, jobs.Cancelled)
	if got.Error != jobs.ErrCancelled.Error() {
		t.Errorf("cancelled job error %q", got.Error)
	}
}

// TestWorkerCloseReleasesJobs drains a worker and checks its job goes back
// to the queue with the latest checkpoint instead of finishing.
func TestWorkerCloseReleasesJobs(t *testing.T) {
	h := newHarness(t, time.Hour)
	started := make(chan struct{})
	var once sync.Once
	w := h.newWorker(t, "w1", func(ctx context.Context, j *jobs.Job, upd func(p, c json.RawMessage)) (json.RawMessage, error) {
		upd(nil, json.RawMessage(`{"next_gen":5}`))
		once.Do(func() { close(started) })
		<-ctx.Done()
		return nil, context.Cause(ctx)
	})
	w.Start()

	j, _ := h.store.Create("search", nil)
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
	got, _ := h.store.Get(j.ID)
	if got.State != jobs.Queued || got.Lease != nil {
		t.Fatalf("drained job %+v", got)
	}
	if string(got.Checkpoint) != `{"next_gen":5}` {
		t.Errorf("drain lost checkpoint: %q", got.Checkpoint)
	}
	if h.coord.Stats().Releases != 1 {
		t.Errorf("releases %d, want 1", h.coord.Stats().Releases)
	}
}

// TestRemoteCacheWriteThrough checks the two-tier memo path: a value Put
// on one node is readable from another via the coordinator, with the
// second node's local tier warmed by the remote hit.
func TestRemoteCacheWriteThrough(t *testing.T) {
	h := newHarness(t, time.Hour)
	nodeA := &RemoteCache{Local: memo.NewShardedLRU(16), Coordinator: h.srv.URL, Codec: testCodec()}
	nodeB := &RemoteCache{Local: memo.NewShardedLRU(16), Coordinator: h.srv.URL, Codec: testCodec()}

	if _, ok := nodeA.Get("k"); ok {
		t.Fatal("empty cache hit")
	}
	if rs := nodeA.RemoteStats(); rs.Misses != 1 {
		t.Errorf("remote misses %d, want 1", rs.Misses)
	}

	nodeA.Put("k", &testValue{X: 42})
	// The coordinator's shared cache holds the decoded value.
	if v, ok := h.coord.Cache.Get("k"); !ok || v.(*testValue).X != 42 {
		t.Fatalf("coordinator cache: %v %v", v, ok)
	}

	v, ok := nodeB.Get("k")
	if !ok || v.(*testValue).X != 42 {
		t.Fatalf("nodeB remote get: %v %v", v, ok)
	}
	if rs := nodeB.RemoteStats(); rs.Hits != 1 {
		t.Errorf("nodeB remote hits %d, want 1", rs.Hits)
	}
	// Warmed locally: the next lookup never leaves the node.
	if v, ok := nodeB.Local.Get("k"); !ok || v.(*testValue).X != 42 {
		t.Errorf("nodeB local tier not warmed: %v %v", v, ok)
	}

	// Untransportable values stay local-only and break nothing.
	nodeA.Put("weird", &struct{ y int }{y: 1})
	if _, ok := nodeA.Local.Get("weird"); !ok {
		t.Error("untransportable value not kept locally")
	}
	if _, ok := h.coord.Cache.Get("weird"); ok {
		t.Error("untransportable value leaked to the coordinator")
	}

	// A dead coordinator degrades to local-only.
	dead := &RemoteCache{Local: memo.NewShardedLRU(16), Coordinator: "http://127.0.0.1:1", Codec: testCodec()}
	dead.Put("k2", &testValue{X: 1})
	if v, ok := dead.Get("k2"); !ok || v.(*testValue).X != 1 {
		t.Errorf("local tier broken with dead peer: %v %v", v, ok)
	}
	if rs := dead.RemoteStats(); rs.Errors == 0 {
		t.Error("dead peer produced no error counts")
	}
}

// TestNoDoubleExecution pins the no-two-nodes-run-one-job invariant under
// concurrency: many workers, many jobs, every job runs its attempts under
// distinct fencing tokens and completes exactly once.
func TestNoDoubleExecution(t *testing.T) {
	h := newHarness(t, time.Hour)
	var mu sync.Mutex
	runs := map[string]int{}
	runner := func(ctx context.Context, j *jobs.Job, upd func(p, c json.RawMessage)) (json.RawMessage, error) {
		mu.Lock()
		runs[j.ID]++
		mu.Unlock()
		return json.RawMessage(`{}`), nil
	}
	for i := 0; i < 3; i++ {
		w := h.newWorker(t, fmt.Sprintf("w%d", i), runner)
		w.Start()
		defer w.Kill()
	}
	const n = 12
	ids := make([]string, n)
	for i := range ids {
		j, _ := h.store.Create("search", nil)
		ids[i] = j.ID
	}
	for _, id := range ids {
		waitState(t, h.store, id, jobs.Done)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, id := range ids {
		if runs[id] != 1 {
			t.Errorf("job %s ran %d times", id, runs[id])
		}
	}
}
