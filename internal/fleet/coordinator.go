package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jobs"
	"repro/internal/memo"
)

// DefaultLeaseTTL is the lease duration granted on claim when the
// coordinator's config leaves TTL zero. It bounds failover latency: a dead
// worker's job is re-queued one sweep after this much silence.
const DefaultLeaseTTL = 15 * time.Second

// Coordinator serves the fleet protocol over one jobs.Store: it leases
// queued jobs to remote workers, applies their checkpoints and results
// under fencing-token guard, and re-queues the jobs of workers that stop
// heartbeating. One process can be coordinator and worker at once — the
// store's in-process manager claims through the same lease path, so local
// and remote execution contend safely.
type Coordinator struct {
	// Store is the durable job store being leased out; required.
	Store *jobs.Store
	// TTL is the lease duration granted on claim (DefaultLeaseTTL if zero).
	TTL time.Duration
	// Cache is the shared memoization tier workers consult; nil disables
	// the memo endpoints (lookups answer "not found").
	Cache memo.Cache
	// Codec moves cache values across the wire; required when Cache is set.
	Codec Codec
	// OnEvent, when set, observes every job snapshot the protocol mutates —
	// the composition root fans these into the job event streams so an SSE
	// watcher on the coordinator follows a search executing on another node.
	OnEvent func(*jobs.Job)
	// OnRequeue, when set, is told the ID of every job a sweep (or release)
	// put back in the queue, so the local manager can schedule it.
	OnRequeue func(id string)

	claims     atomic.Uint64
	emptyClaim atomic.Uint64
	renews     atomic.Uint64
	stales     atomic.Uint64
	checkps    atomic.Uint64
	completes  atomic.Uint64
	releases   atomic.Uint64
	failovers  atomic.Uint64
	sweepCanc  atomic.Uint64
	sweepPois  atomic.Uint64
	memoHits   atomic.Uint64
	memoMiss   atomic.Uint64
	memoPuts   atomic.Uint64

	// nodes is the fleet inventory: last contact per worker node, fed by
	// every protocol request that names its sender. Claim polls count as
	// contact even when the queue is empty — an idle worker keeps polling,
	// which is exactly what distinguishes "idle" from "gone".
	nodeMu sync.Mutex
	nodes  map[string]*nodeState
}

// nodeState is one worker node's liveness record.
type nodeState struct {
	lastSeen time.Time
	claims   uint64
	polls    uint64
}

// CoordinatorStats is a point-in-time snapshot of the protocol counters,
// exported on /metrics.
type CoordinatorStats struct {
	// Claims counts leases granted; EmptyClaims, claim polls that found an
	// empty queue.
	Claims      uint64
	EmptyClaims uint64
	// Renews counts successful heartbeats; StaleRejections, writes refused
	// because the sender's fencing token was superseded.
	Renews          uint64
	StaleRejections uint64
	// Checkpoints counts checkpoint payloads applied; Completes, jobs
	// finalized by workers; Releases, jobs handed back by draining workers.
	Checkpoints uint64
	Completes   uint64
	Releases    uint64
	// Failovers counts jobs re-queued by the lease sweep after their worker
	// went silent; SweepCancels, cancel-requested jobs the sweep finalized;
	// SweepPoisons, jobs the sweep quarantined for exhausting max_attempts.
	Failovers    uint64
	SweepCancels uint64
	SweepPoisons uint64
	// MemoHits/MemoMisses/MemoPuts count shared-cache traffic from workers.
	MemoHits   uint64
	MemoMisses uint64
	MemoPuts   uint64
}

// Stats snapshots the coordinator counters.
func (c *Coordinator) Stats() CoordinatorStats {
	return CoordinatorStats{
		Claims:          c.claims.Load(),
		EmptyClaims:     c.emptyClaim.Load(),
		Renews:          c.renews.Load(),
		StaleRejections: c.stales.Load(),
		Checkpoints:     c.checkps.Load(),
		Completes:       c.completes.Load(),
		Releases:        c.releases.Load(),
		Failovers:       c.failovers.Load(),
		SweepCancels:    c.sweepCanc.Load(),
		SweepPoisons:    c.sweepPois.Load(),
		MemoHits:        c.memoHits.Load(),
		MemoMisses:      c.memoMiss.Load(),
		MemoPuts:        c.memoPuts.Load(),
	}
}

func (c *Coordinator) ttl() time.Duration {
	if c.TTL > 0 {
		return c.TTL
	}
	return DefaultLeaseTTL
}

// Handler mounts the fleet protocol. The returned handler matches the full
// /v1/fleet/... paths, so it can be mounted on a shared mux under the
// "/v1/fleet/" prefix or serve a dedicated peer listener on its own.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/fleet/claim", c.handleClaim)
	mux.HandleFunc("POST /v1/fleet/renew", c.handleRenew)
	mux.HandleFunc("POST /v1/fleet/checkpoint", c.handleCheckpoint)
	mux.HandleFunc("POST /v1/fleet/complete", c.handleComplete)
	mux.HandleFunc("POST /v1/fleet/memo/get", c.handleMemoGet)
	mux.HandleFunc("POST /v1/fleet/memo/put", c.handleMemoPut)
	mux.HandleFunc("GET /v1/fleet/nodes", c.handleNodes)
	return mux
}

// touchNode records contact from a worker node. Claim polls are counted
// separately from granted claims so the inventory can show poll cadence.
func (c *Coordinator) touchNode(node string, claimed bool) {
	if node == "" {
		return
	}
	c.nodeMu.Lock()
	defer c.nodeMu.Unlock()
	if c.nodes == nil {
		c.nodes = map[string]*nodeState{}
	}
	st := c.nodes[node]
	if st == nil {
		st = &nodeState{}
		c.nodes[node] = st
	}
	st.lastSeen = c.Store.Now().UTC()
	st.polls++
	if claimed {
		st.claims++
	}
}

// goneAfter is the silence threshold past which a node is reported
// "gone" rather than "idle": three lease TTLs without any protocol
// contact — enough for the sweep to have already failed its jobs over.
func (c *Coordinator) goneAfter() time.Duration { return 3 * c.ttl() }

// Nodes reports the fleet inventory: every worker node that ever
// contacted this coordinator, its heartbeat age, the leases it currently
// holds, and whether it is busy, idle, or gone. Sorted by node name.
func (c *Coordinator) Nodes() []NodeInfo {
	now := c.Store.Now().UTC()
	held := map[string]int{}
	for _, j := range c.Store.List() {
		if j.State == jobs.Running && j.Lease != nil && j.Lease.Owner != "" {
			held[j.Lease.Owner]++
		}
	}
	c.nodeMu.Lock()
	out := make([]NodeInfo, 0, len(c.nodes))
	for name, st := range c.nodes {
		age := now.Sub(st.lastSeen)
		info := NodeInfo{
			Node:       name,
			LastSeen:   st.lastSeen,
			AgeSeconds: age.Seconds(),
			LeasesHeld: held[name],
			Claims:     st.claims,
			Polls:      st.polls,
		}
		switch {
		case info.LeasesHeld > 0:
			info.State = "busy"
		case age >= c.goneAfter():
			info.State = "gone"
		default:
			info.State = "idle"
		}
		out = append(out, info)
	}
	c.nodeMu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Node < out[b].Node })
	return out
}

func (c *Coordinator) handleNodes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, &nodesResponse{Nodes: c.Nodes()})
}

// Sweep re-queues jobs whose leases expired, finalizes expired jobs whose
// cancellation was requested, and quarantines jobs that exhausted their
// failover budget, reporting all three counts. The composition root calls
// it periodically; claims also sweep implicitly, so a busy fleet fails
// over even without the timer.
func (c *Coordinator) Sweep() (requeued, cancelled, poisoned int) {
	req, canc, pois := c.Store.SweepExpiredLeases()
	for _, j := range req {
		c.failovers.Add(1)
		c.event(j)
		if c.OnRequeue != nil {
			c.OnRequeue(j.ID)
		}
	}
	for _, j := range canc {
		c.sweepCanc.Add(1)
		c.event(j)
	}
	for _, j := range pois {
		c.sweepPois.Add(1)
		c.event(j)
	}
	return len(req), len(canc), len(pois)
}

func (c *Coordinator) event(j *jobs.Job) {
	if c.OnEvent != nil {
		c.OnEvent(j)
	}
}

func (c *Coordinator) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req claimRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Node == "" {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("claim needs a node name"))
		return
	}
	j, err := c.Store.ClaimNext(req.Node, c.ttl())
	if errors.Is(err, jobs.ErrNoQueuedJob) {
		c.touchNode(req.Node, false)
		c.emptyClaim.Add(1)
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if err != nil {
		writeStoreError(w, err)
		return
	}
	c.touchNode(req.Node, true)
	c.claims.Add(1)
	c.event(j)
	writeJSON(w, http.StatusOK, &claimResponse{Job: j})
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req renewRequest
	if !decodeBody(w, r, &req) {
		return
	}
	j, err := c.Store.Renew(req.ID, req.Token, c.ttl())
	if err != nil {
		c.countStale(err)
		writeStoreError(w, err)
		return
	}
	if j.Lease != nil {
		c.touchNode(j.Lease.Owner, false)
	}
	c.renews.Add(1)
	writeJSON(w, http.StatusOK, leaseOf(j))
}

func (c *Coordinator) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	var req checkpointRequest
	if !decodeBody(w, r, &req) {
		return
	}
	j, err := c.Store.CommitUpdate(req.ID, req.Token, req.Progress, req.Checkpoint)
	if err != nil {
		c.countStale(err)
		writeStoreError(w, err)
		return
	}
	if j.Lease != nil {
		c.touchNode(j.Lease.Owner, false)
	}
	c.checkps.Add(1)
	c.event(j)
	writeJSON(w, http.StatusOK, leaseOf(j))
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	var j *jobs.Job
	var err error
	switch {
	case req.State == jobs.Queued:
		// A draining worker hands the job back; its checkpoint stays, so
		// the next claimant resumes instead of restarting.
		j, err = c.Store.Release(req.ID, req.Token, false)
		if err == nil {
			c.releases.Add(1)
			c.event(j)
			if c.OnRequeue != nil {
				c.OnRequeue(j.ID)
			}
		}
	case req.State.Terminal():
		j, err = c.Store.Complete(req.ID, req.Token, req.State, req.Result, req.Error)
		if err == nil {
			c.completes.Add(1)
			c.event(j)
		}
	default:
		writeError(w, http.StatusBadRequest, CodeBadState,
			fmt.Errorf("complete with state %q; want done, failed, cancelled, or queued", req.State))
		return
	}
	if err != nil {
		c.countStale(err)
		writeStoreError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &completeResponse{Job: j})
}

func (c *Coordinator) handleMemoGet(w http.ResponseWriter, r *http.Request) {
	var req memoGetRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if c.Cache != nil && c.Codec.Encode != nil {
		if v, ok := c.Cache.Get(req.Key); ok {
			if b, ok := c.Codec.Encode(v); ok {
				c.memoHits.Add(1)
				writeJSON(w, http.StatusOK, &memoGetResponse{Found: true, Value: b})
				return
			}
		}
	}
	c.memoMiss.Add(1)
	writeJSON(w, http.StatusOK, &memoGetResponse{Found: false})
}

func (c *Coordinator) handleMemoPut(w http.ResponseWriter, r *http.Request) {
	var req memoPutRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if c.Cache == nil || c.Codec.Decode == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	v, err := c.Codec.Decode(req.Value)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad memo value: %w", err))
		return
	}
	// Decode before Put: the coordinator's cache holds native values, so
	// its own searches and every worker share one evaluation pool.
	c.Cache.Put(req.Key, v)
	c.memoPuts.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) countStale(err error) {
	if errors.Is(err, jobs.ErrStaleLease) {
		c.stales.Add(1)
	}
}

func leaseOf(j *jobs.Job) *leaseResponse {
	resp := &leaseResponse{CancelRequested: j.CancelRequested}
	if j.Lease != nil {
		resp.Expires = j.Lease.Expires
	}
	return resp
}

// writeStoreError maps the store's coded errors onto wire statuses: stale
// leases are 409 (the caller's claim is gone), unknown jobs 404, claim
// races 409, anything else a 500.
func writeStoreError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, jobs.ErrStaleLease):
		writeError(w, http.StatusConflict, CodeStaleLease, err)
	case errors.Is(err, jobs.ErrUnknownJob):
		writeError(w, http.StatusNotFound, CodeUnknownJob, err)
	case errors.Is(err, jobs.ErrNotQueued):
		writeError(w, http.StatusConflict, CodeNotQueued, err)
	default:
		writeError(w, http.StatusInternalServerError, CodeStoreFailed, err)
	}
}

func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, 64<<20)
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, &errorBody{Error: err.Error(), Code: code})
}
