package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/jobs"
	"repro/internal/memo"
)

// DefaultLeaseTTL is the lease duration granted on claim when the
// coordinator's config leaves TTL zero. It bounds failover latency: a dead
// worker's job is re-queued one sweep after this much silence.
const DefaultLeaseTTL = 15 * time.Second

// Coordinator serves the fleet protocol over one jobs.Store: it leases
// queued jobs to remote workers, applies their checkpoints and results
// under fencing-token guard, and re-queues the jobs of workers that stop
// heartbeating. One process can be coordinator and worker at once — the
// store's in-process manager claims through the same lease path, so local
// and remote execution contend safely.
type Coordinator struct {
	// Store is the durable job store being leased out; required.
	Store *jobs.Store
	// TTL is the lease duration granted on claim (DefaultLeaseTTL if zero).
	TTL time.Duration
	// Cache is the shared memoization tier workers consult; nil disables
	// the memo endpoints (lookups answer "not found").
	Cache memo.Cache
	// Codec moves cache values across the wire; required when Cache is set.
	Codec Codec
	// OnEvent, when set, observes every job snapshot the protocol mutates —
	// the composition root fans these into the job event streams so an SSE
	// watcher on the coordinator follows a search executing on another node.
	OnEvent func(*jobs.Job)
	// OnRequeue, when set, is told the ID of every job a sweep (or release)
	// put back in the queue, so the local manager can schedule it.
	OnRequeue func(id string)

	claims     atomic.Uint64
	emptyClaim atomic.Uint64
	renews     atomic.Uint64
	stales     atomic.Uint64
	checkps    atomic.Uint64
	completes  atomic.Uint64
	releases   atomic.Uint64
	failovers  atomic.Uint64
	sweepCanc  atomic.Uint64
	memoHits   atomic.Uint64
	memoMiss   atomic.Uint64
	memoPuts   atomic.Uint64
}

// CoordinatorStats is a point-in-time snapshot of the protocol counters,
// exported on /metrics.
type CoordinatorStats struct {
	// Claims counts leases granted; EmptyClaims, claim polls that found an
	// empty queue.
	Claims      uint64
	EmptyClaims uint64
	// Renews counts successful heartbeats; StaleRejections, writes refused
	// because the sender's fencing token was superseded.
	Renews          uint64
	StaleRejections uint64
	// Checkpoints counts checkpoint payloads applied; Completes, jobs
	// finalized by workers; Releases, jobs handed back by draining workers.
	Checkpoints uint64
	Completes   uint64
	Releases    uint64
	// Failovers counts jobs re-queued by the lease sweep after their worker
	// went silent; SweepCancels, cancel-requested jobs the sweep finalized.
	Failovers    uint64
	SweepCancels uint64
	// MemoHits/MemoMisses/MemoPuts count shared-cache traffic from workers.
	MemoHits   uint64
	MemoMisses uint64
	MemoPuts   uint64
}

// Stats snapshots the coordinator counters.
func (c *Coordinator) Stats() CoordinatorStats {
	return CoordinatorStats{
		Claims:          c.claims.Load(),
		EmptyClaims:     c.emptyClaim.Load(),
		Renews:          c.renews.Load(),
		StaleRejections: c.stales.Load(),
		Checkpoints:     c.checkps.Load(),
		Completes:       c.completes.Load(),
		Releases:        c.releases.Load(),
		Failovers:       c.failovers.Load(),
		SweepCancels:    c.sweepCanc.Load(),
		MemoHits:        c.memoHits.Load(),
		MemoMisses:      c.memoMiss.Load(),
		MemoPuts:        c.memoPuts.Load(),
	}
}

func (c *Coordinator) ttl() time.Duration {
	if c.TTL > 0 {
		return c.TTL
	}
	return DefaultLeaseTTL
}

// Handler mounts the fleet protocol. The returned handler matches the full
// /v1/fleet/... paths, so it can be mounted on a shared mux under the
// "/v1/fleet/" prefix or serve a dedicated peer listener on its own.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/fleet/claim", c.handleClaim)
	mux.HandleFunc("POST /v1/fleet/renew", c.handleRenew)
	mux.HandleFunc("POST /v1/fleet/checkpoint", c.handleCheckpoint)
	mux.HandleFunc("POST /v1/fleet/complete", c.handleComplete)
	mux.HandleFunc("POST /v1/fleet/memo/get", c.handleMemoGet)
	mux.HandleFunc("POST /v1/fleet/memo/put", c.handleMemoPut)
	return mux
}

// Sweep re-queues jobs whose leases expired and finalizes expired jobs
// whose cancellation was requested, reporting both counts. The composition
// root calls it periodically; claims also sweep implicitly, so a busy fleet
// fails over even without the timer.
func (c *Coordinator) Sweep() (requeued, cancelled int) {
	req, canc := c.Store.SweepExpiredLeases()
	for _, j := range req {
		c.failovers.Add(1)
		c.event(j)
		if c.OnRequeue != nil {
			c.OnRequeue(j.ID)
		}
	}
	for _, j := range canc {
		c.sweepCanc.Add(1)
		c.event(j)
	}
	return len(req), len(canc)
}

func (c *Coordinator) event(j *jobs.Job) {
	if c.OnEvent != nil {
		c.OnEvent(j)
	}
}

func (c *Coordinator) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req claimRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Node == "" {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("claim needs a node name"))
		return
	}
	j, err := c.Store.ClaimNext(req.Node, c.ttl())
	if errors.Is(err, jobs.ErrNoQueuedJob) {
		c.emptyClaim.Add(1)
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if err != nil {
		writeStoreError(w, err)
		return
	}
	c.claims.Add(1)
	c.event(j)
	writeJSON(w, http.StatusOK, &claimResponse{Job: j})
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req renewRequest
	if !decodeBody(w, r, &req) {
		return
	}
	j, err := c.Store.Renew(req.ID, req.Token, c.ttl())
	if err != nil {
		c.countStale(err)
		writeStoreError(w, err)
		return
	}
	c.renews.Add(1)
	writeJSON(w, http.StatusOK, leaseOf(j))
}

func (c *Coordinator) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	var req checkpointRequest
	if !decodeBody(w, r, &req) {
		return
	}
	j, err := c.Store.CommitUpdate(req.ID, req.Token, req.Progress, req.Checkpoint)
	if err != nil {
		c.countStale(err)
		writeStoreError(w, err)
		return
	}
	c.checkps.Add(1)
	c.event(j)
	writeJSON(w, http.StatusOK, leaseOf(j))
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	var j *jobs.Job
	var err error
	switch {
	case req.State == jobs.Queued:
		// A draining worker hands the job back; its checkpoint stays, so
		// the next claimant resumes instead of restarting.
		j, err = c.Store.Release(req.ID, req.Token, false)
		if err == nil {
			c.releases.Add(1)
			c.event(j)
			if c.OnRequeue != nil {
				c.OnRequeue(j.ID)
			}
		}
	case req.State.Terminal():
		j, err = c.Store.Complete(req.ID, req.Token, req.State, req.Result, req.Error)
		if err == nil {
			c.completes.Add(1)
			c.event(j)
		}
	default:
		writeError(w, http.StatusBadRequest, CodeBadState,
			fmt.Errorf("complete with state %q; want done, failed, cancelled, or queued", req.State))
		return
	}
	if err != nil {
		c.countStale(err)
		writeStoreError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &completeResponse{Job: j})
}

func (c *Coordinator) handleMemoGet(w http.ResponseWriter, r *http.Request) {
	var req memoGetRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if c.Cache != nil && c.Codec.Encode != nil {
		if v, ok := c.Cache.Get(req.Key); ok {
			if b, ok := c.Codec.Encode(v); ok {
				c.memoHits.Add(1)
				writeJSON(w, http.StatusOK, &memoGetResponse{Found: true, Value: b})
				return
			}
		}
	}
	c.memoMiss.Add(1)
	writeJSON(w, http.StatusOK, &memoGetResponse{Found: false})
}

func (c *Coordinator) handleMemoPut(w http.ResponseWriter, r *http.Request) {
	var req memoPutRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if c.Cache == nil || c.Codec.Decode == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	v, err := c.Codec.Decode(req.Value)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad memo value: %w", err))
		return
	}
	// Decode before Put: the coordinator's cache holds native values, so
	// its own searches and every worker share one evaluation pool.
	c.Cache.Put(req.Key, v)
	c.memoPuts.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) countStale(err error) {
	if errors.Is(err, jobs.ErrStaleLease) {
		c.stales.Add(1)
	}
}

func leaseOf(j *jobs.Job) *leaseResponse {
	resp := &leaseResponse{CancelRequested: j.CancelRequested}
	if j.Lease != nil {
		resp.Expires = j.Lease.Expires
	}
	return resp
}

// writeStoreError maps the store's coded errors onto wire statuses: stale
// leases are 409 (the caller's claim is gone), unknown jobs 404, claim
// races 409, anything else a 500.
func writeStoreError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, jobs.ErrStaleLease):
		writeError(w, http.StatusConflict, CodeStaleLease, err)
	case errors.Is(err, jobs.ErrUnknownJob):
		writeError(w, http.StatusNotFound, CodeUnknownJob, err)
	case errors.Is(err, jobs.ErrNotQueued):
		writeError(w, http.StatusConflict, CodeNotQueued, err)
	default:
		writeError(w, http.StatusInternalServerError, CodeStoreFailed, err)
	}
}

func decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, 64<<20)
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, &errorBody{Error: err.Error(), Code: code})
}
