// Package fleet is the multi-node execution layer of the job subsystem: a
// coordinator that leases jobs out of one durable jobs.Store over a small
// HTTP peer protocol, and workers on other processes that claim, heartbeat,
// checkpoint, and complete them.
//
// The protocol has four job endpoints plus a shared memoization tier:
//
//	POST /v1/fleet/claim       claim the oldest queued job under a TTL lease
//	POST /v1/fleet/renew       heartbeat: extend the lease, learn of cancels
//	POST /v1/fleet/checkpoint  ship a progress + checkpoint payload
//	POST /v1/fleet/complete    finalize (or release) the job under the lease
//	POST /v1/fleet/memo/get    read the coordinator's shared fitness cache
//	POST /v1/fleet/memo/put    write-through into the shared fitness cache
//	GET  /v1/fleet/nodes       fleet inventory: per-node heartbeat age + state
//
// Claims are not strictly FIFO: the store's installed Picker (the
// weighted-fair scheduler in internal/sched, wired by the composition
// root) chooses which queued job each claim hands out, so fleet workers
// obey the same priority classes and tenant quotas as local ones.
//
// Safety rests on the store's fencing tokens: every claim carries a token
// that increases monotonically across the store's lifetime, every write a
// worker sends quotes it, and the store rejects writes under a superseded
// token with jobs.ErrStaleLease (wire code "stale_lease"). A partitioned
// worker whose lease expired can therefore never commit a result — its job
// was re-queued from its last generation-boundary checkpoint and belongs to
// whoever claimed it next. Because the checkpoint codec resumes a search
// with a byte-identical trajectory, migration across nodes is invisible in
// the job's result and trace.
//
// The package sits beside the jobs store in the dependency graph: it
// imports only internal/jobs and internal/memo, and the fitness-cache value
// codec is injected (Codec) so fleet never learns the mapper's types. It is
// inside the determinism lint scope, so all clock reads go through injected
// now() functions.
package fleet

import (
	"encoding/json"
	"time"

	"repro/internal/jobs"
)

// Codec translates shared-cache values to and from their wire form. The
// memo tier stores the mapper's unexported fitness values; the composition
// root (internal/serve) injects the mapper's codec here so the coordinator
// can hold decoded values in its cache (shared with its own local searches)
// while workers move them as opaque JSON.
type Codec struct {
	// Encode renders a cache value for the wire; ok=false means the value
	// is not transportable (foreign type in a shared cache) and the lookup
	// is treated as a miss.
	Encode func(v any) ([]byte, bool)
	// Decode parses a wire value back into the cache's native type.
	Decode func(b []byte) (any, error)
}

// Wire error codes, mirroring the jobs package's coded errors so a remote
// worker sees the same taxonomy as an in-process one.
const (
	CodeStaleLease  = "stale_lease"
	CodeUnknownJob  = "unknown_job"
	CodeNotQueued   = "not_queued"
	CodeBadRequest  = "bad_request"
	CodeBadState    = "bad_state"
	CodeStoreFailed = "store_failed"
)

// errorBody is the protocol's error envelope: a human-readable message and
// a stable machine code.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// claimRequest asks for the oldest queued job. Node names the claimant and
// becomes the lease owner recorded in the store.
type claimRequest struct {
	Node string `json:"node"`
}

// claimResponse hands the claimed job — request, checkpoint, and lease
// (owner, fencing token, expiry) included — to the worker. An empty queue
// answers 204 with no body instead.
type claimResponse struct {
	Job *jobs.Job `json:"job"`
}

// renewRequest is the heartbeat: extend the lease on job ID held under
// Token.
type renewRequest struct {
	ID    string `json:"id"`
	Token uint64 `json:"token"`
}

// leaseResponse answers renew and checkpoint: the new expiry and whether a
// client asked to cancel the job (cancellation rides the heartbeat).
type leaseResponse struct {
	Expires         time.Time `json:"expires,omitempty"`
	CancelRequested bool      `json:"cancel_requested,omitempty"`
}

// checkpointRequest ships one progress + checkpoint payload pair under the
// lease. Nil fields leave the stored value unchanged.
type checkpointRequest struct {
	ID         string          `json:"id"`
	Token      uint64          `json:"token"`
	Progress   json.RawMessage `json:"progress,omitempty"`
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
}

// completeRequest finalizes the job under the lease. State must be a
// terminal jobs state — or "queued", which releases the job back to the
// queue with its checkpoint intact (the graceful half of failover, used by
// draining workers).
type completeRequest struct {
	ID     string          `json:"id"`
	Token  uint64          `json:"token"`
	State  jobs.State      `json:"state"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// completeResponse echoes the finalized job snapshot.
type completeResponse struct {
	Job *jobs.Job `json:"job"`
}

// memoGetRequest looks up one shared-cache key.
type memoGetRequest struct {
	Key string `json:"key"`
}

// memoGetResponse carries the encoded value on a hit.
type memoGetResponse struct {
	Found bool            `json:"found"`
	Value json.RawMessage `json:"value,omitempty"`
}

// memoPutRequest writes one encoded value through to the shared cache.
type memoPutRequest struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// NodeInfo is one row of the fleet inventory on GET /v1/fleet/nodes: a
// worker node's last protocol contact (claims — even empty polls —
// renewals, and checkpoints all count), how stale that contact is, the
// leases it currently holds, and a coarse state: "busy" (holds leases),
// "idle" (recent contact, no leases), or "gone" (silent for three lease
// TTLs — its jobs have already failed over).
type NodeInfo struct {
	Node       string    `json:"node"`
	LastSeen   time.Time `json:"last_seen"`
	AgeSeconds float64   `json:"age_seconds"`
	LeasesHeld int       `json:"leases_held"`
	Claims     uint64    `json:"claims"`
	Polls      uint64    `json:"polls"`
	State      string    `json:"state"`
}

// nodesResponse answers GET /v1/fleet/nodes.
type nodesResponse struct {
	Nodes []NodeInfo `json:"nodes"`
}
