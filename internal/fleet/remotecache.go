package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync/atomic"

	"repro/internal/memo"
)

// RemoteCache is the worker-side view of the coordinator's shared fitness
// cache: a memo.Cache that reads through a local tier first and falls back
// to the peer, and writes through to both. Plugged into the mapper's GA as
// its fitness cache, it means an encoding tuned on any node is tuned once
// fleet-wide.
//
// Peer failures degrade, never break: an unreachable coordinator turns
// every remote lookup into a miss and every remote write into a no-op, and
// the local tier keeps the search correct on its own.
type RemoteCache struct {
	// Local is the first-tier cache (required); typically the node's own
	// service cache, so local and fleet searches share entries too.
	Local memo.Cache
	// Coordinator is the peer base URL.
	Coordinator string
	// Codec moves values across the wire; values it cannot encode stay
	// local-only.
	Codec Codec
	// Client is the HTTP client for peer calls (default http.DefaultClient).
	Client *http.Client

	remoteHits   atomic.Uint64
	remoteMisses atomic.Uint64
	remotePuts   atomic.Uint64
	remoteErrors atomic.Uint64
}

// RemoteStats counts second-tier traffic (the local tier keeps its own
// memo.Stats).
type RemoteStats struct {
	// Hits are local misses served by the coordinator; Misses went to the
	// peer and came back empty.
	Hits   uint64
	Misses uint64
	// Puts counts values shipped to the coordinator; Errors, peer calls
	// that failed outright (treated as misses/no-ops).
	Puts   uint64
	Errors uint64
}

// RemoteStats snapshots the second-tier counters.
func (c *RemoteCache) RemoteStats() RemoteStats {
	return RemoteStats{
		Hits:   c.remoteHits.Load(),
		Misses: c.remoteMisses.Load(),
		Puts:   c.remotePuts.Load(),
		Errors: c.remoteErrors.Load(),
	}
}

func (c *RemoteCache) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

// Get implements memo.Cache: local tier first, then the coordinator. A
// remote hit is decoded and installed locally, so the next lookup is free.
func (c *RemoteCache) Get(key string) (any, bool) {
	if v, ok := c.Local.Get(key); ok {
		return v, true
	}
	v, ok := c.remoteGet(key)
	if !ok {
		return nil, false
	}
	c.Local.Put(key, v)
	return v, true
}

// Put implements memo.Cache: write-through to the local tier and the
// coordinator.
func (c *RemoteCache) Put(key string, v any) {
	c.Local.Put(key, v)
	c.remotePut(key, v)
}

// Len implements memo.Cache, reporting the local tier.
func (c *RemoteCache) Len() int { return c.Local.Len() }

// Stats implements memo.Cache, reporting the local tier; remote traffic is
// under RemoteStats.
func (c *RemoteCache) Stats() memo.Stats { return c.Local.Stats() }

func (c *RemoteCache) remoteGet(key string) (any, bool) {
	if c.Codec.Decode == nil {
		return nil, false
	}
	var resp memoGetResponse
	if err := c.post("/v1/fleet/memo/get", &memoGetRequest{Key: key}, &resp); err != nil {
		c.remoteErrors.Add(1)
		return nil, false
	}
	if !resp.Found {
		c.remoteMisses.Add(1)
		return nil, false
	}
	v, err := c.Codec.Decode(resp.Value)
	if err != nil {
		c.remoteErrors.Add(1)
		return nil, false
	}
	c.remoteHits.Add(1)
	return v, true
}

func (c *RemoteCache) remotePut(key string, v any) {
	if c.Codec.Encode == nil {
		return
	}
	b, ok := c.Codec.Encode(v)
	if !ok {
		return // not a transportable value; keep it local-only
	}
	if err := c.post("/v1/fleet/memo/put", &memoPutRequest{Key: key, Value: b}, nil); err != nil {
		c.remoteErrors.Add(1)
		return
	}
	c.remotePuts.Add(1)
}

func (c *RemoteCache) post(path string, body, into any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.client().Post(c.Coordinator+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		return &wireError{Status: resp.StatusCode, Code: eb.Code, Msg: eb.Error}
	}
	if into != nil && resp.StatusCode != http.StatusNoContent {
		return json.NewDecoder(resp.Body).Decode(into)
	}
	return nil
}
