package notation

import (
	"repro/internal/diag"
)

// Diagnostic codes produced by the notation front-end. Parse-stage codes
// (TF-PARSE-*) cover grammar violations on a single line; name-resolution
// codes (TF-NAME-*) cover cross-line references; bind codes (TF-BIND-*)
// cover the inter-tile binding statements. All are errors: a mapping that
// trips any of them has no analysis tree at all.
var (
	CodeStmt = diag.Register(diag.Info{Code: "TF-PARSE-001", Title: "unrecognized statement",
		Hint: "every line must be a leaf, tile, or bind statement (or a # comment)"})
	CodeLeaf = diag.Register(diag.Info{Code: "TF-PARSE-002", Title: "malformed leaf statement",
		Hint: "write: leaf <name> = op <operator> { <loops> }"})
	CodeTile = diag.Register(diag.Info{Code: "TF-PARSE-003", Title: "malformed tile statement",
		Hint: "write: tile <name> @L<level> = { <loops> } (<children>)"})
	CodeLoop = diag.Register(diag.Info{Code: "TF-PARSE-004", Title: "malformed loop item",
		Hint: "write dim:extent with extent >= 1, or Sp(dim:extent) for a spatial loop"})
	CodeBind = diag.Register(diag.Info{Code: "TF-PARSE-005", Title: "malformed bind statement",
		Hint: "write: bind <Seq|Shar|Para|Pipe>(<tiles>)"})

	CodeUnknownOp = diag.Register(diag.Info{Code: "TF-NAME-001", Title: "unknown operator",
		Hint: "operators are resolved by name against the workload graph"})
	CodeDupTile = diag.Register(diag.Info{Code: "TF-NAME-002", Title: "duplicate tile name",
		Hint: "every leaf and tile needs a distinct name"})
	CodeUnknownChild = diag.Register(diag.Info{Code: "TF-NAME-003", Title: "unknown child tile",
		Hint: "children must be defined on an earlier line"})
	CodeChildReused = diag.Register(diag.Info{Code: "TF-NAME-004", Title: "tile already has a parent",
		Hint: "each tile may appear in exactly one child list"})
	CodeRootCount = diag.Register(diag.Info{Code: "TF-NAME-005", Title: "dataflow must have exactly one root tile",
		Hint: "every tile except the root must appear in some child list"})

	CodeBindPrim = diag.Register(diag.Info{Code: "TF-BIND-001", Title: "unknown binding primitive",
		Hint: "inter-tile primitives are Seq, Shar, Para, Pipe"})
	CodeBindTile = diag.Register(diag.Info{Code: "TF-BIND-002", Title: "bind references unknown tile",
		Hint: "bind targets must be defined leaf or tile names"})
	CodeBindRoot = diag.Register(diag.Info{Code: "TF-BIND-003", Title: "bind target has no parent",
		Hint: "bind sets the binding of the targets' common parent; the root has none"})
	CodeBindSplit = diag.Register(diag.Info{Code: "TF-BIND-004", Title: "bind targets do not share a parent",
		Hint: "list sibling tiles only; one bind statement sets one parent's binding"})
)

// NodeSpans locates the pieces of one leaf or tile statement in the source.
type NodeSpans struct {
	Stmt     diag.Span   // the whole statement (trimmed line)
	Name     diag.Span   // the tile name token
	Level    diag.Span   // the @L<level> token (tiles only)
	Op       diag.Span   // the operator name (leaves only)
	Loops    []diag.Span // one per loop item, outermost first
	Children []diag.Span // one per child reference (tiles only)
}

// BindSpans locates the pieces of one bind statement in the source.
type BindSpans struct {
	Stmt  diag.Span   // the whole statement
	Prim  diag.Span   // the primitive name
	Tiles []diag.Span // one per bind target
}

// SourceMap maps tree nodes back to their defining spans in the notation
// source, so analyses running on the tree can report positioned
// diagnostics. A nil SourceMap is valid and yields zero spans everywhere —
// the case for trees built programmatically rather than parsed.
type SourceMap struct {
	nodes map[string]NodeSpans
	binds []BindSpans
}

// Node returns the spans of the statement defining the named tile.
func (m *SourceMap) Node(name string) (NodeSpans, bool) {
	if m == nil {
		return NodeSpans{}, false
	}
	ns, ok := m.nodes[name]
	return ns, ok
}

// Span returns the span of the tile's name token (zero if unknown).
func (m *SourceMap) Span(name string) diag.Span {
	ns, _ := m.Node(name)
	return ns.Name
}

// Level returns the span of the tile's @L token, falling back to the name.
func (m *SourceMap) Level(name string) diag.Span {
	ns, ok := m.Node(name)
	if !ok {
		return diag.Span{}
	}
	if !ns.Level.IsZero() {
		return ns.Level
	}
	return ns.Name
}

// Loop returns the span of the i-th loop item of the named tile, falling
// back to the statement when the index is out of range.
func (m *SourceMap) Loop(name string, i int) diag.Span {
	ns, ok := m.Node(name)
	if !ok {
		return diag.Span{}
	}
	if i >= 0 && i < len(ns.Loops) {
		return ns.Loops[i]
	}
	return ns.Stmt
}

// Binds returns the spans of the bind statements in source order.
func (m *SourceMap) Binds() []BindSpans {
	if m == nil {
		return nil
	}
	return m.binds
}

// lineScan addresses byte ranges inside one source line.
type lineScan struct {
	raw  string // the raw line, without its trailing newline
	off  int    // absolute byte offset of the line start in the source
	line int    // 1-based line number
}

// span builds a Span for the byte range [start, end) of the line.
func (s lineScan) span(start, end int) diag.Span {
	if end < start {
		end = start
	}
	return diag.Span{
		Start: diag.Pos{Offset: s.off + start, Line: s.line, Col: start + 1},
		End:   diag.Pos{Offset: s.off + end, Line: s.line, Col: end + 1},
	}
}

// trimRange narrows [start, end) of s to exclude ASCII whitespace on both
// sides, the positioned analogue of strings.TrimSpace.
func trimRange(s string, start, end int) (int, int) {
	for start < end && isSpaceByte(s[start]) {
		start++
	}
	for end > start && isSpaceByte(s[end-1]) {
		end--
	}
	return start, end
}

func isSpaceByte(b byte) bool {
	switch b {
	case ' ', '\t', '\n', '\v', '\f', '\r':
		return true
	}
	return false
}

// splitRanges splits [lo, hi) of s on top-level commas (parenthesis-depth
// aware, so Sp(i:2) stays one item) and returns the trimmed, non-empty item
// ranges — the positioned analogue of the old splitList.
func splitRanges(s string, lo, hi int) [][2]int {
	var out [][2]int
	depth, start := 0, lo
	flush := func(end int) {
		a, b := trimRange(s, start, end)
		if a < b {
			out = append(out, [2]int{a, b})
		}
	}
	for i := lo; i < hi; i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				flush(i)
				start = i + 1
			}
		}
	}
	flush(hi)
	return out
}
