package notation

import (
	"testing"
)

// FuzzParseRoundTrip checks that printing is a fixpoint of parsing: for any
// input the parser accepts, Print(Parse(src)) must itself parse, and
// re-printing must reproduce it byte-for-byte. This is the property the
// conformance harness and the evaluation service's canonical cache keys
// rely on.
func FuzzParseRoundTrip(f *testing.F) {
	g := sec42Graph()
	seeds := []string{
		sec42Source,
		"leaf t = op A { i:32, l:64, k:32 }\ntile root @L2 = { i:1 } (t)\n",
		"leaf x = op B { Sp(i:4), i:8, l:64 }\ntile r @L1 = { } (x)\n",
		"leaf a = op A { i:32, l:64, k:32 }\nleaf b = op B { i:32, l:64 }\ntile f @L1 = { } (a, b)\ntile r @L2 = { } (f)\nbind Para(a, b)\n",
		"# comment\nleaf t = op C { i:32, j:64, l:64 }\ntile r @L2 = { } (t)",
		"tile r @L2 = { } ()",     // invalid: no children
		"leaf t = op Zzz { i:2 }", // invalid: unknown op
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		root, err := Parse(src, g)
		if err != nil {
			return // invalid inputs are out of scope; only accepted trees must round-trip
		}
		printed := Print(root)
		root2, err := Parse(printed, g)
		if err != nil {
			t.Fatalf("printed form no longer parses: %v\ninput: %q\nprinted:\n%s", err, src, printed)
		}
		if again := Print(root2); again != printed {
			t.Fatalf("print∘parse is not a fixpoint\nfirst:\n%s\nsecond:\n%s", printed, again)
		}
	})
}

// FuzzParseSourceDiagnostics checks the positioned front-end's invariants
// on arbitrary input: it never panics, its spans stay inside the source,
// the root is nil exactly when an error diagnostic was reported, and the
// fail-fast Parse wrapper agrees with it about validity.
func FuzzParseSourceDiagnostics(f *testing.F) {
	g := sec42Graph()
	seeds := []string{
		sec42Source,
		// Positioned-error seeds: each trips a specific coded diagnostic at
		// a known token.
		"leaf t = op Zzz { i:2 }",                                  // TF-NAME-001 at "Zzz"
		"leaf t = op A { i=2 }",                                    // TF-PARSE-004 at "i=2"
		"leaf t = op A { i:0 }",                                    // TF-PARSE-004 at "0"
		"leaf t = op A { i:2 }\nleaf t = op B { i:2 }",             // TF-NAME-002 at second "t"
		"tile r @L1 = { i:2 } (nope)",                              // TF-NAME-003 at "nope"
		"tile r @Lx = { i:2 } (t)",                                 // TF-PARSE-003 at "@Lx"
		"loop t = op A { i:2 }",                                    // TF-PARSE-001 whole line
		sec42Source + "bind Zip(T0_0, T1_0)",                       // TF-BIND-001 at "Zip"
		sec42Source + "bind Para(T0_0, T2_0)",                      // TF-BIND-004
		"leaf a = op A { i:2 }\ntile p @L1 = { } (a)\ntile q @L1 = { } (a)", // TF-NAME-004
		"leaf t1 = op A { i:2 }\nleaf t2 = op B { i:2 }",           // TF-NAME-005 unpositioned
		"",
		"leaf",
		"tile x @L1 = { Sp(i:2), } (",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		root, sm, diags := ParseSource(src, g)
		if (root == nil) != diags.HasErrors() {
			t.Fatalf("root nil = %v but HasErrors = %v for %q", root == nil, diags.HasErrors(), src)
		}
		if _, err := Parse(src, g); (err != nil) != diags.HasErrors() {
			t.Fatalf("Parse and ParseSource disagree on %q: err=%v diags=%v", src, err, diags)
		}
		for _, d := range diags {
			if d.Code == "" {
				t.Fatalf("diagnostic without code: %+v", d)
			}
			if d.Span.IsZero() {
				continue
			}
			s, e := d.Span.Start, d.Span.End
			if s.Offset < 0 || e.Offset > len(src) || e.Offset < s.Offset {
				t.Fatalf("span %v out of bounds for %d-byte source (%q)", d.Span, len(src), src)
			}
			if s.Line < 1 || s.Col < 1 {
				t.Fatalf("span %v has invalid line/col", d.Span)
			}
		}
		if root != nil {
			if sm == nil {
				t.Fatal("accepted parse returned nil SourceMap")
			}
			rootSpan := sm.Span(root.Name)
			if rootSpan.IsZero() {
				t.Fatalf("no span for root %q", root.Name)
			}
			if got := src[rootSpan.Start.Offset:rootSpan.End.Offset]; got != root.Name {
				t.Fatalf("root span covers %q, want %q", got, root.Name)
			}
		}
	})
}
