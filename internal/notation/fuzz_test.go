package notation

import (
	"testing"
)

// FuzzParseRoundTrip checks that printing is a fixpoint of parsing: for any
// input the parser accepts, Print(Parse(src)) must itself parse, and
// re-printing must reproduce it byte-for-byte. This is the property the
// conformance harness and the evaluation service's canonical cache keys
// rely on.
func FuzzParseRoundTrip(f *testing.F) {
	g := sec42Graph()
	seeds := []string{
		sec42Source,
		"leaf t = op A { i:32, l:64, k:32 }\ntile root @L2 = { i:1 } (t)\n",
		"leaf x = op B { Sp(i:4), i:8, l:64 }\ntile r @L1 = { } (x)\n",
		"leaf a = op A { i:32, l:64, k:32 }\nleaf b = op B { i:32, l:64 }\ntile f @L1 = { } (a, b)\ntile r @L2 = { } (f)\nbind Para(a, b)\n",
		"# comment\nleaf t = op C { i:32, j:64, l:64 }\ntile r @L2 = { } (t)",
		"tile r @L2 = { } ()",     // invalid: no children
		"leaf t = op Zzz { i:2 }", // invalid: unknown op
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		root, err := Parse(src, g)
		if err != nil {
			return // invalid inputs are out of scope; only accepted trees must round-trip
		}
		printed := Print(root)
		root2, err := Parse(printed, g)
		if err != nil {
			t.Fatalf("printed form no longer parses: %v\ninput: %q\nprinted:\n%s", err, src, printed)
		}
		if again := Print(root2); again != printed {
			t.Fatalf("print∘parse is not a fixpoint\nfirst:\n%s\nsecond:\n%s", printed, again)
		}
	})
}
