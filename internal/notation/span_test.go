package notation

import (
	"strings"
	"testing"

	"repro/internal/diag"
)

// textAt extracts the source text a span covers.
func textAt(src string, s diag.Span) string {
	if s.IsZero() || s.End.Offset > len(src) {
		return ""
	}
	return src[s.Start.Offset:s.End.Offset]
}

func TestParseSourcePositions(t *testing.T) {
	g := sec42Graph()
	root, sm, diags := ParseSource(sec42Source, g)
	if diags.HasErrors() {
		t.Fatalf("unexpected errors:\n%s", diags)
	}
	if root == nil {
		t.Fatal("nil root without errors")
	}
	// Every node of the tree has a source map entry whose spans cover the
	// exact tokens.
	for _, name := range []string{"T0_0", "T1_0", "T2_0", "T0_1", "T1_1", "T0_2"} {
		ns, ok := sm.Node(name)
		if !ok {
			t.Fatalf("no spans for %s", name)
		}
		if got := textAt(sec42Source, ns.Name); got != name {
			t.Errorf("%s name span covers %q", name, got)
		}
		if !strings.HasPrefix(textAt(sec42Source, ns.Stmt), "leaf ") &&
			!strings.HasPrefix(textAt(sec42Source, ns.Stmt), "tile ") {
			t.Errorf("%s stmt span covers %q", name, textAt(sec42Source, ns.Stmt))
		}
	}
	// Specific tokens.
	if got := textAt(sec42Source, sm.Level("T0_1")); got != "@L1" {
		t.Errorf("T0_1 level span covers %q, want %q", got, "@L1")
	}
	if got := textAt(sec42Source, sm.Loop("T0_0", 0)); got != "Sp(i:4)" {
		t.Errorf("T0_0 loop 0 span covers %q, want %q", got, "Sp(i:4)")
	}
	if got := textAt(sec42Source, sm.Loop("T0_2", 0)); got != "i:4" {
		t.Errorf("T0_2 loop 0 span covers %q, want %q", got, "i:4")
	}
	ns, _ := sm.Node("T0_0")
	if got := textAt(sec42Source, ns.Op); got != "A" {
		t.Errorf("T0_0 op span covers %q, want %q", got, "A")
	}
	ns, _ = sm.Node("T0_2")
	if len(ns.Children) != 2 || textAt(sec42Source, ns.Children[1]) != "T1_1" {
		t.Errorf("T0_2 child spans = %v", ns.Children)
	}
	binds := sm.Binds()
	if len(binds) != 2 || textAt(sec42Source, binds[0].Prim) != "Pipe" {
		t.Fatalf("bind spans = %+v", binds)
	}
	if textAt(sec42Source, binds[1].Tiles[0]) != "T0_1" {
		t.Errorf("bind 1 tile 0 span covers %q", textAt(sec42Source, binds[1].Tiles[0]))
	}
}

func TestParseSourceDiagnostics(t *testing.T) {
	g := sec42Graph()
	cases := []struct {
		name string
		src  string
		code diag.Code
		want string // text the span must cover ("" = unpositioned)
	}{
		{"unknown op", "leaf t = op Zzz { i:2 }", CodeUnknownOp, "Zzz"},
		{"bad loop", "leaf t = op A { i=2 }", CodeLoop, "i=2"},
		{"bad extent", "leaf t = op A { i:0 }", CodeLoop, "0"},
		{"unknown child", "tile r @L1 = { i:2 } (nope)", CodeUnknownChild, "nope"},
		{"bad level", "tile r @Lx = { i:2 } (t)", CodeTile, "@Lx"},
		{"two roots", "leaf t1 = op A { i:32, l:64, k:32 }\nleaf t2 = op B { i:32, l:64 }", CodeRootCount, ""},
		{"bad binding", sec42Source + "bind Zip(T0_0, T1_0)", CodeBindPrim, "Zip"},
		{"bind across parents", sec42Source + "bind Para(T0_0, T2_0)", CodeBindSplit, "bind Para(T0_0, T2_0)"},
		{"duplicate", "leaf t = op A { i:2 }\nleaf t = op B { i:2 }", CodeDupTile, "t"},
		{"bad stmt", "loop t = op A { i:2 }", CodeStmt, "loop t = op A { i:2 }"},
		{"child reused", "leaf t = op A { i:2 }\ntile a @L1 = { } (t)\ntile b @L1 = { } (t)", CodeChildReused, "t"},
	}
	for _, c := range cases {
		root, _, diags := ParseSource(c.src, g)
		if !diags.HasErrors() {
			t.Errorf("%s: no errors", c.name)
			continue
		}
		if root != nil {
			t.Errorf("%s: non-nil root despite errors", c.name)
		}
		found := false
		for _, d := range diags {
			if d.Code != c.code {
				continue
			}
			found = true
			if c.want == "" {
				if !d.Span.IsZero() {
					t.Errorf("%s: want unpositioned %s, got span %v", c.name, c.code, d.Span)
				}
			} else if got := textAt(c.src, d.Span); got != c.want {
				t.Errorf("%s: %s span covers %q, want %q", c.name, c.code, got, c.want)
			}
			if d.Severity != diag.Error {
				t.Errorf("%s: %s severity = %v", c.name, c.code, d.Severity)
			}
		}
		if !found {
			t.Errorf("%s: no %s diagnostic in:\n%s", c.name, c.code, diags)
		}
	}
}

// TestParseSourceCollects: a source with several independent mistakes
// yields one diagnostic per mistake, not just the first.
func TestParseSourceCollects(t *testing.T) {
	g := sec42Graph()
	src := strings.Join([]string{
		"leaf a = op Zzz { i:2 }",  // unknown op
		"leaf b = op A { i:0 }",    // bad extent
		"leaf c = op B { banana }", // bad loop
		"tile r @L1 = { } (a, b, c, ghost)", // unknown child
	}, "\n")
	_, _, diags := ParseSource(src, g)
	wantCodes := map[diag.Code]bool{CodeUnknownOp: true, CodeLoop: true, CodeUnknownChild: true}
	got := map[diag.Code]int{}
	for _, d := range diags {
		got[d.Code]++
	}
	for code := range wantCodes {
		if got[code] == 0 {
			t.Errorf("missing %s in:\n%s", code, diags)
		}
	}
	if got[CodeLoop] != 2 {
		t.Errorf("want 2 TF-PARSE-004 (bad extent + bad loop), got %d:\n%s", got[CodeLoop], diags)
	}
	// Diagnostics come out position-sorted.
	last := -1
	for _, d := range diags {
		if d.Span.IsZero() {
			continue
		}
		if d.Span.Start.Offset < last {
			t.Fatalf("diagnostics not sorted by position:\n%s", diags)
		}
		last = d.Span.Start.Offset
	}
}

func TestNilSourceMap(t *testing.T) {
	var m *SourceMap
	if !m.Span("x").IsZero() || !m.Level("x").IsZero() || !m.Loop("x", 0).IsZero() {
		t.Error("nil SourceMap must yield zero spans")
	}
	if m.Binds() != nil {
		t.Error("nil SourceMap must yield no binds")
	}
	if _, ok := m.Node("x"); ok {
		t.Error("nil SourceMap reports nodes")
	}
}
