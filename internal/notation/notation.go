// Package notation implements a textual form of TileFlow's tile-centric
// notation (Sec 4.2). The paper writes
//
//	T⁰₁ = {i1, l1}(T⁰₀, T¹₀)   Pipe(T⁰₀, T¹₀)   Sp(i1)
//
// which this package renders in a line-based ASCII grammar that also pins
// loop extents and memory levels (the paper's formulation leaves them to
// the mapper):
//
//	leaf T0_0 = op A { Sp(i:4), l:32, k:32 }
//	leaf T1_0 = op B { Sp(i:4), l:32 }
//	tile T0_1 @L1 = { Sp(i:2), l:2 } (T0_0, T1_0)
//	tile T0_2 @L2 = { i:4 } (T0_1, T1_1)
//	bind Pipe(T0_0, T1_0)
//
// Loops are listed outermost first; Sp(...) marks a spatial loop, bare
// dim:extent a temporal one. A bind statement sets the inter-tile primitive
// of the named tiles' common parent (the default is Seq, as in the paper).
// Parse and Print round-trip.
//
// The parser is a collecting front-end: ParseSource accumulates every
// problem as a coded, positioned diagnostic instead of stopping at the
// first, and returns a SourceMap locating each tile, loop, and binding in
// the source so later analysis stages (internal/check) can report at the
// offending token.
package notation

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/workload"
)

// Parse reads a dataflow description and returns the root of the analysis
// tree. Operators are resolved by name against the graph. On failure the
// returned error is a diag.List carrying every problem found, each with a
// stable code and source span.
func Parse(src string, g *workload.Graph) (*core.Node, error) {
	root, _, diags := ParseSource(src, g)
	if diags.HasErrors() {
		return nil, diags
	}
	return root, nil
}

// ParseSource is the collecting form of Parse: it accumulates all
// diagnostics rather than stopping at the first, and additionally returns
// a SourceMap from tile names to their defining spans. The root is nil
// exactly when the diagnostics contain at least one error.
func ParseSource(src string, g *workload.Graph) (*core.Node, *SourceMap, diag.List) {
	p := &parser{
		g:     g,
		tiles: map[string]*core.Node{},
		used:  map[string]bool{},
		sm:    &SourceMap{nodes: map[string]NodeSpans{}},
	}
	off := 0
	for i, raw := range strings.Split(src, "\n") {
		ls := lineScan{raw: raw, off: off, line: i + 1}
		off += len(raw) + 1
		trimmed := strings.TrimSpace(raw)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		p.line(ls)
	}
	root := p.finish()
	diags := p.r.List()
	if diags.HasErrors() {
		return nil, p.sm, diags
	}
	return root, p.sm, diags
}

type parser struct {
	g     *workload.Graph
	r     diag.Reporter
	tiles map[string]*core.Node
	used  map[string]bool // tiles referenced as children
	binds []bindStmt
	sm    *SourceMap
}

type bindStmt struct {
	binding core.Binding
	tiles   []string
	spans   []diag.Span // one per tile, aligned with tiles
	stmt    diag.Span
}

func (p *parser) line(ls lineScan) {
	lo, hi := trimRange(ls.raw, 0, len(ls.raw))
	content := ls.raw[lo:hi]
	stmt := ls.span(lo, hi)
	switch {
	case strings.HasPrefix(content, "leaf "):
		p.leafLine(ls, lo+len("leaf "), hi, stmt)
	case strings.HasPrefix(content, "tile "):
		p.tileLine(ls, lo+len("tile "), hi, stmt)
	case strings.HasPrefix(content, "bind "):
		p.bindLine(ls, lo+len("bind "), hi, stmt)
	default:
		p.r.Reportf(CodeStmt, stmt, "", "expected leaf/tile/bind statement, got %q", content)
	}
}

// leafLine parses: <name> = op <opname> { loops } over ls.raw[lo:hi].
func (p *parser) leafLine(ls lineScan, lo, hi int, stmt diag.Span) {
	raw := ls.raw
	eq := strings.Index(raw[lo:hi], "=")
	if eq < 0 {
		p.r.Reportf(CodeLeaf, stmt, "", "leaf: missing '='")
		return
	}
	eq += lo
	na, nb := trimRange(raw, lo, eq)
	name := raw[na:nb]
	nameSpan := ls.span(na, nb)
	ra, rb := trimRange(raw, eq+1, hi)
	if !strings.HasPrefix(raw[ra:rb], "op ") {
		p.r.Reportf(CodeLeaf, ls.span(ra, rb), name, "leaf %s: expected 'op <name> {...}'", name)
		return
	}
	opLo := ra + len("op ")
	brace := strings.Index(raw[opLo:rb], "{")
	if brace < 0 {
		p.r.Reportf(CodeLeaf, ls.span(ra, rb), name, "leaf %s: missing loop block", name)
		return
	}
	brace += opLo
	oa, ob := trimRange(raw, opLo, brace)
	opName := raw[oa:ob]
	op := p.g.Op(opName)
	if op == nil {
		p.r.Reportf(CodeUnknownOp, ls.span(oa, ob), name, "leaf %s: unknown operator %q", name, opName)
	}
	// The loop region runs from the '{' to the end of the line, minus one
	// trailing '}' when present (the legacy parser tolerated its absence).
	la, lb := trimRange(raw, brace+1, rb)
	if lb > la && raw[lb-1] == '}' {
		la, lb = trimRange(raw, la, lb-1)
	}
	loops, loopSpans := p.parseLoops(ls, la, lb, name)
	if _, dup := p.tiles[name]; dup {
		p.r.Reportf(CodeDupTile, nameSpan, name, "duplicate tile %q", name)
		return
	}
	p.tiles[name] = core.Leaf(name, op, loops...)
	p.sm.nodes[name] = NodeSpans{Stmt: stmt, Name: nameSpan, Op: ls.span(oa, ob), Loops: loopSpans}
}

// tileLine parses: <name> @L<level> = { loops } ( children ) over ls.raw[lo:hi].
func (p *parser) tileLine(ls lineScan, lo, hi int, stmt diag.Span) {
	raw := ls.raw
	eq := strings.Index(raw[lo:hi], "=")
	if eq < 0 {
		p.r.Reportf(CodeTile, stmt, "", "tile: missing '='")
		return
	}
	eq += lo
	at := strings.Index(raw[lo:eq], "@L")
	if at < 0 {
		ha, hb := trimRange(raw, lo, eq)
		p.r.Reportf(CodeTile, ls.span(ha, hb), raw[ha:hb], "tile %s: missing '@L<level>'", raw[ha:hb])
		return
	}
	at += lo
	na, nb := trimRange(raw, lo, at)
	name := raw[na:nb]
	nameSpan := ls.span(na, nb)
	la, lb := trimRange(raw, at+2, eq)
	levelSpan := ls.span(at, lb)
	level, err := strconv.Atoi(raw[la:lb])
	if err != nil {
		p.r.Reportf(CodeTile, levelSpan, name, "tile %s: bad level %q", name, raw[la:lb])
		return
	}
	// The child list starts at the first '(' after the loop block's
	// closing brace (loops themselves may contain parentheses: Sp(i:2)).
	closeBrace := strings.Index(raw[eq+1:hi], "}")
	if closeBrace < 0 {
		p.r.Reportf(CodeTile, ls.span(eq+1, hi), name, "tile %s: loops must be brace-delimited", name)
		return
	}
	closeBrace += eq + 1
	rs, _ := trimRange(raw, eq+1, hi)
	if rs >= closeBrace || raw[rs] != '{' {
		p.r.Reportf(CodeTile, ls.span(eq+1, hi), name, "tile %s: loops must be brace-delimited", name)
		return
	}
	ka, kb := trimRange(raw, closeBrace+1, hi)
	if ka >= kb || raw[ka] != '(' {
		p.r.Reportf(CodeTile, ls.span(closeBrace+1, hi), name, "tile %s: missing child list", name)
		return
	}
	ka, kb = trimRange(raw, ka+1, kb)
	if kb > ka && raw[kb-1] == ')' {
		ka, kb = trimRange(raw, ka, kb-1)
	}
	loops, loopSpans := p.parseLoops(ls, rs+1, closeBrace, name)
	var kids []*core.Node
	var kidSpans []diag.Span
	bad := false
	for _, seg := range splitRanges(raw, ka, kb) {
		kname := raw[seg[0]:seg[1]]
		kspan := ls.span(seg[0], seg[1])
		kid, ok := p.tiles[kname]
		if !ok {
			p.r.Reportf(CodeUnknownChild, kspan, name, "tile %s: unknown child %q (children must be defined first)", name, kname)
			bad = true
			continue
		}
		if p.used[kname] {
			p.r.Reportf(CodeChildReused, kspan, name, "tile %s: child %q already has a parent", name, kname)
			bad = true
			continue
		}
		p.used[kname] = true
		kids = append(kids, kid)
		kidSpans = append(kidSpans, kspan)
	}
	if len(kids) == 0 {
		if !bad {
			p.r.Reportf(CodeTile, stmt, name, "tile %s: no children", name)
		}
		return
	}
	if _, dup := p.tiles[name]; dup {
		p.r.Reportf(CodeDupTile, nameSpan, name, "duplicate tile %q", name)
		return
	}
	p.tiles[name] = core.Tile(name, level, core.Seq, loops, kids...)
	p.sm.nodes[name] = NodeSpans{Stmt: stmt, Name: nameSpan, Level: levelSpan, Loops: loopSpans, Children: kidSpans}
}

// bindLine parses: <Binding>(t1, t2, ...) over ls.raw[lo:hi].
func (p *parser) bindLine(ls lineScan, lo, hi int, stmt diag.Span) {
	raw := ls.raw
	paren := strings.Index(raw[lo:hi], "(")
	if paren < 0 {
		p.r.Reportf(CodeBind, stmt, "", "bind: expected <Primitive>(tiles)")
		return
	}
	paren += lo
	pa, pb := trimRange(raw, lo, paren)
	prim := raw[pa:pb]
	var b core.Binding
	switch prim {
	case "Seq":
		b = core.Seq
	case "Shar":
		b = core.Shar
	case "Para":
		b = core.Para
	case "Pipe":
		b = core.Pipe
	default:
		p.r.Reportf(CodeBindPrim, ls.span(pa, pb), "", "bind: unknown primitive %q", prim)
		return
	}
	aa, ab := trimRange(raw, paren+1, hi)
	if ab > aa && raw[ab-1] == ')' {
		aa, ab = trimRange(raw, aa, ab-1)
	}
	var tiles []string
	var tileSpans []diag.Span
	for _, seg := range splitRanges(raw, aa, ab) {
		tiles = append(tiles, raw[seg[0]:seg[1]])
		tileSpans = append(tileSpans, ls.span(seg[0], seg[1]))
	}
	p.binds = append(p.binds, bindStmt{binding: b, tiles: tiles, spans: tileSpans, stmt: stmt})
	p.sm.binds = append(p.sm.binds, BindSpans{Stmt: stmt, Prim: ls.span(pa, pb), Tiles: tileSpans})
}

func (p *parser) finish() *core.Node {
	// The root is the unique unreferenced tile.
	var roots []string
	for name := range p.tiles {
		if !p.used[name] {
			roots = append(roots, name)
		}
	}
	sort.Strings(roots)
	if len(roots) != 1 {
		p.r.Reportf(CodeRootCount, diag.Span{}, "", "want exactly one root tile, found %d (%v)", len(roots), roots)
		return nil
	}
	root := p.tiles[roots[0]]
	// Apply bind statements: the named tiles must share a parent.
	parent := map[*core.Node]*core.Node{}
	root.Walk(func(n *core.Node) {
		for _, c := range n.Children {
			parent[c] = n
		}
	})
	for _, b := range p.binds {
		if len(b.tiles) == 0 {
			continue
		}
		var common *core.Node
		ok := true
		for i, name := range b.tiles {
			tile, found := p.tiles[name]
			if !found {
				p.r.Reportf(CodeBindTile, b.spans[i], name, "bind references unknown tile %q", name)
				ok = false
				continue
			}
			par := parent[tile]
			if par == nil {
				p.r.Reportf(CodeBindRoot, b.spans[i], name, "bind target %q has no parent", name)
				ok = false
				continue
			}
			if common == nil {
				common = par
			} else if common != par {
				p.r.Reportf(CodeBindSplit, b.stmt, name, "bind targets %v do not share a parent", b.tiles)
				ok = false
				break
			}
		}
		if ok && common != nil {
			common.Binding = b.binding
		}
	}
	return root
}

// parseLoops reads "Sp(i:4), l:32, k:32" from ls.raw[lo:hi], reporting a
// diagnostic per malformed item and returning the loops that did parse
// together with their item spans.
func (p *parser) parseLoops(ls lineScan, lo, hi int, node string) ([]core.Loop, []diag.Span) {
	var loops []core.Loop
	var spans []diag.Span
	for _, seg := range splitRanges(ls.raw, lo, hi) {
		a, b := seg[0], seg[1]
		item := ls.raw[a:b]
		itemSpan := ls.span(a, b)
		ia, ib := a, b
		spatial := false
		if strings.HasPrefix(item, "Sp(") && strings.HasSuffix(item, ")") {
			spatial = true
			ia, ib = a+len("Sp("), b-1
		}
		colon := strings.Index(ls.raw[ia:ib], ":")
		if colon < 0 {
			p.r.Reportf(CodeLoop, itemSpan, node, "bad loop %q (want dim:extent)", item)
			continue
		}
		da, db := trimRange(ls.raw, ia, ia+colon)
		ea, eb := trimRange(ls.raw, ia+colon+1, ib)
		ext, err := strconv.Atoi(ls.raw[ea:eb])
		if err != nil || ext < 1 {
			p.r.Reportf(CodeLoop, ls.span(ea, eb), node, "bad loop extent in %q", item)
			continue
		}
		dim := ls.raw[da:db]
		if spatial {
			loops = append(loops, core.S(dim, ext))
		} else {
			loops = append(loops, core.T(dim, ext))
		}
		spans = append(spans, itemSpan)
	}
	return loops, spans
}

// Print renders a tree back into the notation, children before parents so
// the output re-parses.
func Print(root *core.Node) string {
	var b strings.Builder
	var binds []string
	var visit func(n *core.Node)
	visit = func(n *core.Node) {
		for _, c := range n.Children {
			visit(c)
		}
		loops := make([]string, len(n.Loops))
		for i, l := range n.Loops {
			if l.Kind == core.Spatial {
				loops[i] = "Sp(" + l.Dim + ":" + strconv.Itoa(l.Extent) + ")"
			} else {
				loops[i] = l.Dim + ":" + strconv.Itoa(l.Extent)
			}
		}
		if n.IsLeaf() {
			b.WriteString("leaf " + n.Name + " = op " + n.Op.Name + " { " + strings.Join(loops, ", ") + " }\n")
			return
		}
		kids := make([]string, len(n.Children))
		for i, c := range n.Children {
			kids[i] = c.Name
		}
		b.WriteString("tile " + n.Name + " @L" + strconv.Itoa(n.Level) + " = { " + strings.Join(loops, ", ") + " } (" + strings.Join(kids, ", ") + ")\n")
		if n.Binding != core.Seq {
			binds = append(binds, "bind "+n.Binding.String()+"("+strings.Join(kids, ", ")+")")
		}
	}
	visit(root)
	for _, s := range binds {
		b.WriteString(s + "\n")
	}
	return b.String()
}
