// Package notation implements a textual form of TileFlow's tile-centric
// notation (Sec 4.2). The paper writes
//
//	T⁰₁ = {i1, l1}(T⁰₀, T¹₀)   Pipe(T⁰₀, T¹₀)   Sp(i1)
//
// which this package renders in a line-based ASCII grammar that also pins
// loop extents and memory levels (the paper's formulation leaves them to
// the mapper):
//
//	leaf T0_0 = op A { Sp(i:4), l:32, k:32 }
//	leaf T1_0 = op B { Sp(i:4), l:32 }
//	tile T0_1 @L1 = { Sp(i:2), l:2 } (T0_0, T1_0)
//	tile T0_2 @L2 = { i:4 } (T0_1, T1_1)
//	bind Pipe(T0_0, T1_0)
//
// Loops are listed outermost first; Sp(...) marks a spatial loop, bare
// dim:extent a temporal one. A bind statement sets the inter-tile primitive
// of the named tiles' common parent (the default is Seq, as in the paper).
// Parse and Print round-trip.
package notation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/workload"
)

// Parse reads a dataflow description and returns the root of the analysis
// tree. Operators are resolved by name against the graph.
func Parse(src string, g *workload.Graph) (*core.Node, error) {
	p := &parser{g: g, tiles: map[string]*core.Node{}, used: map[string]bool{}}
	for i, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("notation: line %d: %w", i+1, err)
		}
	}
	return p.finish()
}

type parser struct {
	g     *workload.Graph
	tiles map[string]*core.Node
	used  map[string]bool // tiles referenced as children
	binds []bindStmt
}

type bindStmt struct {
	binding core.Binding
	tiles   []string
}

func (p *parser) line(line string) error {
	switch {
	case strings.HasPrefix(line, "leaf "):
		return p.leafLine(strings.TrimPrefix(line, "leaf "))
	case strings.HasPrefix(line, "tile "):
		return p.tileLine(strings.TrimPrefix(line, "tile "))
	case strings.HasPrefix(line, "bind "):
		return p.bindLine(strings.TrimPrefix(line, "bind "))
	}
	return fmt.Errorf("expected leaf/tile/bind statement, got %q", line)
}

// leafLine parses: <name> = op <opname> { loops }
func (p *parser) leafLine(rest string) error {
	name, rhs, ok := cutTrim(rest, "=")
	if !ok {
		return fmt.Errorf("leaf: missing '='")
	}
	if !strings.HasPrefix(rhs, "op ") {
		return fmt.Errorf("leaf %s: expected 'op <name> {...}'", name)
	}
	rhs = strings.TrimPrefix(rhs, "op ")
	opName, loopsSrc, ok := cutTrim(rhs, "{")
	if !ok {
		return fmt.Errorf("leaf %s: missing loop block", name)
	}
	loopsSrc = strings.TrimSuffix(strings.TrimSpace(loopsSrc), "}")
	op := p.g.Op(opName)
	if op == nil {
		return fmt.Errorf("leaf %s: unknown operator %q", name, opName)
	}
	loops, err := parseLoops(loopsSrc)
	if err != nil {
		return fmt.Errorf("leaf %s: %w", name, err)
	}
	if _, dup := p.tiles[name]; dup {
		return fmt.Errorf("duplicate tile %q", name)
	}
	p.tiles[name] = core.Leaf(name, op, loops...)
	return nil
}

// tileLine parses: <name> @L<level> = { loops } ( children )
func (p *parser) tileLine(rest string) error {
	head, rhs, ok := cutTrim(rest, "=")
	if !ok {
		return fmt.Errorf("tile: missing '='")
	}
	name, levelSrc, ok := cutTrim(head, "@L")
	if !ok {
		return fmt.Errorf("tile %s: missing '@L<level>'", head)
	}
	level, err := strconv.Atoi(strings.TrimSpace(levelSrc))
	if err != nil {
		return fmt.Errorf("tile %s: bad level %q", name, levelSrc)
	}
	// The child list starts at the first '(' after the loop block's
	// closing brace (loops themselves may contain parentheses: Sp(i:2)).
	closeBrace := strings.Index(rhs, "}")
	if closeBrace < 0 {
		return fmt.Errorf("tile %s: loops must be brace-delimited", name)
	}
	loopsSrc := strings.TrimSpace(rhs[:closeBrace+1])
	kidsSrc := strings.TrimSpace(rhs[closeBrace+1:])
	if !strings.HasPrefix(loopsSrc, "{") {
		return fmt.Errorf("tile %s: loops must be brace-delimited", name)
	}
	if !strings.HasPrefix(kidsSrc, "(") {
		return fmt.Errorf("tile %s: missing child list", name)
	}
	kidsSrc = strings.TrimPrefix(kidsSrc, "(")
	loops, err := parseLoops(strings.Trim(loopsSrc, "{}"))
	if err != nil {
		return fmt.Errorf("tile %s: %w", name, err)
	}
	kidsSrc = strings.TrimSuffix(strings.TrimSpace(kidsSrc), ")")
	var kids []*core.Node
	for _, kname := range splitList(kidsSrc) {
		kid, ok := p.tiles[kname]
		if !ok {
			return fmt.Errorf("tile %s: unknown child %q (children must be defined first)", name, kname)
		}
		if p.used[kname] {
			return fmt.Errorf("tile %s: child %q already has a parent", name, kname)
		}
		p.used[kname] = true
		kids = append(kids, kid)
	}
	if len(kids) == 0 {
		return fmt.Errorf("tile %s: no children", name)
	}
	if _, dup := p.tiles[name]; dup {
		return fmt.Errorf("duplicate tile %q", name)
	}
	p.tiles[name] = core.Tile(name, level, core.Seq, loops, kids...)
	return nil
}

// bindLine parses: <Binding>(t1, t2, ...)
func (p *parser) bindLine(rest string) error {
	prim, argsSrc, ok := cutTrim(rest, "(")
	if !ok {
		return fmt.Errorf("bind: expected <Primitive>(tiles)")
	}
	argsSrc = strings.TrimSuffix(strings.TrimSpace(argsSrc), ")")
	var b core.Binding
	switch prim {
	case "Seq":
		b = core.Seq
	case "Shar":
		b = core.Shar
	case "Para":
		b = core.Para
	case "Pipe":
		b = core.Pipe
	default:
		return fmt.Errorf("bind: unknown primitive %q", prim)
	}
	p.binds = append(p.binds, bindStmt{binding: b, tiles: splitList(argsSrc)})
	return nil
}

func (p *parser) finish() (*core.Node, error) {
	// The root is the unique unreferenced tile.
	var roots []string
	for name := range p.tiles {
		if !p.used[name] {
			roots = append(roots, name)
		}
	}
	sort.Strings(roots)
	if len(roots) != 1 {
		return nil, fmt.Errorf("notation: want exactly one root tile, found %d (%v)", len(roots), roots)
	}
	root := p.tiles[roots[0]]
	// Apply bind statements: the named tiles must share a parent.
	parent := map[*core.Node]*core.Node{}
	root.Walk(func(n *core.Node) {
		for _, c := range n.Children {
			parent[c] = n
		}
	})
	for _, b := range p.binds {
		if len(b.tiles) == 0 {
			continue
		}
		var common *core.Node
		for _, name := range b.tiles {
			tile, ok := p.tiles[name]
			if !ok {
				return nil, fmt.Errorf("notation: bind references unknown tile %q", name)
			}
			par := parent[tile]
			if par == nil {
				return nil, fmt.Errorf("notation: bind target %q has no parent", name)
			}
			if common == nil {
				common = par
			} else if common != par {
				return nil, fmt.Errorf("notation: bind targets %v do not share a parent", b.tiles)
			}
		}
		common.Binding = b.binding
	}
	return root, nil
}

// parseLoops reads "Sp(i:4), l:32, k:32".
func parseLoops(src string) ([]core.Loop, error) {
	var loops []core.Loop
	for _, item := range splitList(src) {
		spatial := false
		if strings.HasPrefix(item, "Sp(") && strings.HasSuffix(item, ")") {
			spatial = true
			item = strings.TrimSuffix(strings.TrimPrefix(item, "Sp("), ")")
		}
		dim, extSrc, ok := cutTrim(item, ":")
		if !ok {
			return nil, fmt.Errorf("bad loop %q (want dim:extent)", item)
		}
		ext, err := strconv.Atoi(extSrc)
		if err != nil || ext < 1 {
			return nil, fmt.Errorf("bad loop extent in %q", item)
		}
		if spatial {
			loops = append(loops, core.S(dim, ext))
		} else {
			loops = append(loops, core.T(dim, ext))
		}
	}
	return loops, nil
}

func splitList(src string) []string {
	var out []string
	depth := 0
	start := 0
	for i, r := range src {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				if s := strings.TrimSpace(src[start:i]); s != "" {
					out = append(out, s)
				}
				start = i + 1
			}
		}
	}
	if s := strings.TrimSpace(src[start:]); s != "" {
		out = append(out, s)
	}
	return out
}

func cutTrim(s, sep string) (string, string, bool) {
	a, b, ok := strings.Cut(s, sep)
	return strings.TrimSpace(a), strings.TrimSpace(b), ok
}

// Print renders a tree back into the notation, children before parents so
// the output re-parses.
func Print(root *core.Node) string {
	var b strings.Builder
	var binds []string
	var visit func(n *core.Node)
	visit = func(n *core.Node) {
		for _, c := range n.Children {
			visit(c)
		}
		loops := make([]string, len(n.Loops))
		for i, l := range n.Loops {
			if l.Kind == core.Spatial {
				loops[i] = fmt.Sprintf("Sp(%s:%d)", l.Dim, l.Extent)
			} else {
				loops[i] = fmt.Sprintf("%s:%d", l.Dim, l.Extent)
			}
		}
		if n.IsLeaf() {
			fmt.Fprintf(&b, "leaf %s = op %s { %s }\n", n.Name, n.Op.Name, strings.Join(loops, ", "))
			return
		}
		kids := make([]string, len(n.Children))
		for i, c := range n.Children {
			kids[i] = c.Name
		}
		fmt.Fprintf(&b, "tile %s @L%d = { %s } (%s)\n", n.Name, n.Level, strings.Join(loops, ", "), strings.Join(kids, ", "))
		if n.Binding != core.Seq {
			binds = append(binds, fmt.Sprintf("bind %s(%s)", n.Binding, strings.Join(kids, ", ")))
		}
	}
	visit(root)
	for _, s := range binds {
		b.WriteString(s + "\n")
	}
	return b.String()
}
