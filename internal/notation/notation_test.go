package notation

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// sec42Source is the Sec 4.2 example dataflow in the ASCII notation, for a
// 32×64 problem (i=32, j=64, l=64, k=32).
const sec42Source = `
# Sec 4.2 example: A = Q·K, B = exp(A), C = B·V
leaf T0_0 = op A { Sp(i:4), l:32, k:32 }
leaf T1_0 = op B { Sp(i:4), l:32 }
leaf T2_0 = op C { Sp(i:4), j:16, l:32 }
tile T0_1 @L1 = { Sp(i:2), l:2 } (T0_0, T1_0)
tile T1_1 @L1 = { Sp(i:2), j:4, l:2 } (T2_0)
tile T0_2 @L2 = { i:4 } (T0_1, T1_1)
bind Pipe(T0_0, T1_0)
bind Shar(T0_1, T1_1)
`

func sec42Graph() *workload.Graph {
	opA := &workload.Operator{
		Name: "A", Kind: workload.KindMAC,
		Dims: []workload.Dim{{Name: "i", Size: 32}, {Name: "l", Size: 64}, {Name: "k", Size: 32}},
		Reads: []workload.Access{
			{Tensor: "Q", Index: []workload.Index{workload.I("i"), workload.I("k")}},
			{Tensor: "K", Index: []workload.Index{workload.I("k"), workload.I("l")}},
		},
		Write: workload.Access{Tensor: "A", Index: []workload.Index{workload.I("i"), workload.I("l")}},
	}
	opB := &workload.Operator{
		Name: "B", Kind: workload.KindExp,
		Dims: []workload.Dim{{Name: "i", Size: 32}, {Name: "l", Size: 64}},
		Reads: []workload.Access{
			{Tensor: "A", Index: []workload.Index{workload.I("i"), workload.I("l")}},
		},
		Write: workload.Access{Tensor: "B", Index: []workload.Index{workload.I("i"), workload.I("l")}},
	}
	opC := &workload.Operator{
		Name: "C", Kind: workload.KindMAC,
		Dims: []workload.Dim{{Name: "i", Size: 32}, {Name: "j", Size: 64}, {Name: "l", Size: 64}},
		Reads: []workload.Access{
			{Tensor: "B", Index: []workload.Index{workload.I("i"), workload.I("l")}},
			{Tensor: "V", Index: []workload.Index{workload.I("l"), workload.I("j")}},
		},
		Write: workload.Access{Tensor: "C", Index: []workload.Index{workload.I("i"), workload.I("j")}},
	}
	return workload.MustGraph("sec42", workload.WordBytes, opA, opB, opC)
}

func TestParseSec42(t *testing.T) {
	g := sec42Graph()
	root, err := Parse(sec42Source, g)
	if err != nil {
		t.Fatal(err)
	}
	if root.Name != "T0_2" || root.Level != 2 {
		t.Fatalf("root = %s@L%d", root.Name, root.Level)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root children = %d", len(root.Children))
	}
	if root.Binding != core.Shar {
		t.Errorf("root binding = %v, want Shar", root.Binding)
	}
	if root.Children[0].Binding != core.Pipe {
		t.Errorf("T0_1 binding = %v, want Pipe", root.Children[0].Binding)
	}
	// The parsed tree must evaluate.
	res, err := core.Evaluate(root, g, arch.Cloud(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatalf("cycles %v", res.Cycles)
	}
}

func TestRoundTrip(t *testing.T) {
	g := sec42Graph()
	root, err := Parse(sec42Source, g)
	if err != nil {
		t.Fatal(err)
	}
	printed := Print(root)
	root2, err := Parse(printed, g)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if Print(root2) != printed {
		t.Errorf("round trip not stable:\n%s\nvs\n%s", printed, Print(root2))
	}
	// Both trees evaluate identically.
	spec := arch.Cloud()
	r1, err := core.Evaluate(root, g, spec, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.Evaluate(root2, g, spec, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.DRAMTraffic() != r2.DRAMTraffic() {
		t.Errorf("round trip changed metrics: %v/%v vs %v/%v",
			r1.Cycles, r1.DRAMTraffic(), r2.Cycles, r2.DRAMTraffic())
	}
}

func TestParseErrors(t *testing.T) {
	g := sec42Graph()
	cases := []struct {
		name, src string
	}{
		{"unknown op", "leaf t = op Zzz { i:2 }"},
		{"bad loop", "leaf t = op A { i=2 }"},
		{"unknown child", "tile r @L1 = { i:2 } (nope)"},
		{"two roots", "leaf t1 = op A { i:32, l:64, k:32 }\nleaf t2 = op B { i:32, l:64 }"},
		{"bad binding", sec42Source + "bind Zip(T0_0, T1_0)"},
		{"bind across parents", sec42Source + "bind Para(T0_0, T2_0)"},
		{"duplicate", "leaf t = op A { i:2 }\nleaf t = op A { i:2 }"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src, g); err == nil {
			t.Errorf("%s: want error, got nil", c.name)
		}
	}
}

// TestLoopRoundTripProperty checks parse∘print = id on randomized loop
// lists via testing/quick.
func TestLoopRoundTripProperty(t *testing.T) {
	g := sec42Graph()
	f := func(extents [3]uint8) bool {
		// Build a leaf with arbitrary extents (≥1) and round-trip it.
		e := func(x uint8) int { return int(x)%16 + 1 }
		loops := []core.Loop{
			core.T("i", e(extents[0])),
			core.S("l", e(extents[1])),
			core.T("k", e(extents[2])),
		}
		leaf := core.Leaf("t", g.Op("A"), loops...)
		printed := Print(leaf)
		back, err := Parse(printed, g)
		if err != nil {
			return false
		}
		if len(back.Loops) != len(loops) {
			return false
		}
		for i := range loops {
			if back.Loops[i] != loops[i] {
				return false
			}
		}
		return strings.Contains(printed, "op A")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPropertyParseNeverPanics: arbitrary text never crashes the parser.
func TestPropertyParseNeverPanics(t *testing.T) {
	g := sec42Graph()
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse(src, g)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Seeded adversarial inputs.
	for _, src := range []string{
		"leaf", "tile", "bind", "leaf x = op", "tile x @L = {",
		"leaf x = op A { Sp( }", "bind Pipe(", "tile y @L1 = { i:1 } ()",
		"leaf z = op A { i:-3 }", "tile a @Lx = { } (b)",
	} {
		if _, err := Parse(src, g); err == nil {
			t.Errorf("want error for %q", src)
		}
	}
}

// TestPrintedMapperTreesReparse: trees generated by the template library
// round-trip through the notation.
func TestPrintedMapperTreesReparse(t *testing.T) {
	shape, _ := workload.AttentionShapeByName("ViT/16-B")
	spec := arch.Edge()
	g := workload.Attention(shape)
	// A representative fused tree via the core constructors.
	var kids []*core.Node
	for _, op := range g.Ops {
		var loops []core.Loop
		for _, d := range op.Dims {
			loops = append(loops, core.T(d.Name, d.Size))
		}
		kids = append(kids, core.Leaf(op.Name+"_t", op, loops...))
	}
	stage := core.Tile("stage", 1, core.Pipe, nil, kids...)
	root := core.Tile("root", 2, core.Seq, nil, stage)

	printed := Print(root)
	back, err := Parse(printed, g)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	r1, err := core.Evaluate(root, g, spec, core.Options{SkipCapacityCheck: true, SkipPECheck: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.Evaluate(back, g, spec, core.Options{SkipCapacityCheck: true, SkipPECheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.EnergyPJ() != r2.EnergyPJ() {
		t.Error("round-tripped tree evaluates differently")
	}
}
