package sched

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/jobs"
)

// queuedJob builds a queued-job snapshot the way the store hands them to
// the picker.
func queuedJob(id int, tenant string, class Class) *jobs.Job {
	return &jobs.Job{
		ID:     fmt.Sprintf("j%08d", id),
		State:  jobs.Queued,
		Tenant: tenant,
		Class:  string(class),
	}
}

func runningJob(id int, tenant string) *jobs.Job {
	return &jobs.Job{ID: fmt.Sprintf("j%08d", id), State: jobs.Running, Tenant: tenant}
}

// drain simulates a contended queue: every class keeps a deep backlog,
// and each pick removes the chosen job. Returns picks per class.
func drain(s *Scheduler, queue []*jobs.Job, n int) map[Class]int {
	got := map[Class]int{}
	for i := 0; i < n && len(queue) > 0; i++ {
		id := s.Pick(queue, nil)
		if id == "" {
			break
		}
		for k, j := range queue {
			if j.ID == id {
				got[ClassOf(j.Class)]++
				queue = append(queue[:k], queue[k+1:]...)
				break
			}
		}
	}
	return got
}

func TestWeightedSharesMatchWeights(t *testing.T) {
	s := New(Config{})
	var queue []*jobs.Job
	for i := 0; i < 300; i++ {
		queue = append(queue, queuedJob(3*i+1, "a", Interactive), queuedJob(3*i+2, "b", Batch), queuedJob(3*i+3, "c", Bulk))
	}
	got := drain(s, queue, 210)
	// Out of every 21 contended picks: 16 interactive, 4 batch, 1 bulk.
	if got[Interactive] != 160 || got[Batch] != 40 || got[Bulk] != 10 {
		t.Fatalf("shares: %+v, want 160/40/10", got)
	}
}

func TestBulkCannotStarveInteractive(t *testing.T) {
	s := New(Config{})
	// A deep bulk backlog with one interactive job arriving late: the
	// interactive job must be picked immediately on the next dequeue,
	// not after the backlog drains.
	var queue []*jobs.Job
	for i := 0; i < 100; i++ {
		queue = append(queue, queuedJob(i+1, "flood", Bulk))
	}
	for i := 0; i < 5; i++ {
		if id := s.Pick(queue, nil); id != queue[0].ID {
			t.Fatalf("pick %d: got %s want %s", i, id, queue[0].ID)
		}
		queue = queue[1:]
	}
	inter := queuedJob(1000, "alice", Interactive)
	queue = append(queue, inter)
	if id := s.Pick(queue, nil); id != inter.ID {
		t.Fatalf("interactive arrival not prioritized: got %s", id)
	}
}

func TestIdleClassGainsNoCredit(t *testing.T) {
	s := New(Config{})
	// Burn 50 bulk picks while interactive is empty, then offer both:
	// interactive must not monopolize beyond its weight share going
	// forward (its virtual time is re-aligned, not back-dated), and bulk
	// must keep winning its 1-in-17 share.
	var queue []*jobs.Job
	for i := 0; i < 400; i++ {
		queue = append(queue, queuedJob(i+1, "flood", Bulk))
	}
	for i := 0; i < 50; i++ {
		id := s.Pick(queue, nil)
		if id == "" {
			t.Fatal("empty pick")
		}
		queue = queue[1:]
	}
	for i := 0; i < 200; i++ {
		queue = append(queue, queuedJob(10000+i, "alice", Interactive))
	}
	got := drain(s, queue, 170)
	if got[Bulk] == 0 {
		t.Fatalf("bulk starved after interactive joined: %+v", got)
	}
	if got[Interactive] < 150 {
		t.Fatalf("interactive under-served: %+v", got)
	}
}

func TestTenantRunningQuotaFiltersPicks(t *testing.T) {
	s := New(Config{TenantMaxRunning: 2})
	queued := []*jobs.Job{
		queuedJob(3, "hog", Interactive),
		queuedJob(4, "hog", Interactive),
		queuedJob(5, "small", Bulk),
	}
	running := []*jobs.Job{runningJob(1, "hog"), runningJob(2, "hog")}
	// hog is at quota: the only eligible job is small's bulk job.
	if id := s.Pick(queued, running); id != "j00000005" {
		t.Fatalf("pick with hog at quota: %s", id)
	}
	// With nothing else eligible, the pick declines rather than exceed
	// the quota.
	if id := s.Pick(queued[:2], running); id != "" {
		t.Fatalf("expected decline, got %s", id)
	}
	if st := s.Stats(); st.QuotaDeferrals != 1 {
		t.Fatalf("deferrals: %+v", st)
	}
	// A slot frees: hog becomes eligible again.
	if id := s.Pick(queued[:2], running[:1]); id != "j00000003" {
		t.Fatalf("pick after slot freed: %s", id)
	}
}

func TestAdmitEnforcesActiveQuota(t *testing.T) {
	s := New(Config{TenantMaxActive: 2})
	active := []*jobs.Job{queuedJob(1, "t", Batch), runningJob(2, "t")}
	err := s.Admit("t")(active)
	qe, ok := err.(*QuotaError)
	if !ok {
		t.Fatalf("want *QuotaError, got %v", err)
	}
	if qe.Tenant != "t" || qe.Limit != 2 || qe.Active != 2 {
		t.Fatalf("quota error: %+v", qe)
	}
	if err := s.Admit("other")(active); err != nil {
		t.Fatalf("other tenant refused: %v", err)
	}
	if st := s.Stats(); st.QuotaRejects != 1 {
		t.Fatalf("rejects: %+v", st)
	}
}

func TestPickSequenceDeterministic(t *testing.T) {
	mk := func(seed int64) []string {
		s := New(Config{Seed: seed, TenantMaxRunning: 3})
		var queue []*jobs.Job
		for i := 0; i < 60; i++ {
			tenant := fmt.Sprintf("t%d", i%4)
			queue = append(queue, queuedJob(i+1, tenant, classes[i%3]))
		}
		var picks []string
		for len(queue) > 0 {
			id := s.Pick(queue, nil)
			if id == "" {
				t.Fatal("scheduler declined a quota-free queue")
			}
			picks = append(picks, id)
			for k, j := range queue {
				if j.ID == id {
					queue = append(queue[:k], queue[k+1:]...)
					break
				}
			}
		}
		return picks
	}
	a, b := mk(42), mk(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pick %d diverged: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestParseClass(t *testing.T) {
	for in, want := range map[string]Class{"": Batch, "interactive": Interactive, " Bulk ": Bulk, "BATCH": Batch} {
		c, err := ParseClass(in)
		if err != nil || c != want {
			t.Fatalf("ParseClass(%q) = %v, %v", in, c, err)
		}
	}
	if _, err := ParseClass("platinum"); err == nil {
		t.Fatal("bad class accepted")
	}
}

func TestWarmStoreKeepsBestDonor(t *testing.T) {
	w := NewWarmStore()
	at := time.Unix(1000, 0).UTC()
	cp := json.RawMessage(`{"v":1}`)
	if !w.Put("k", "j1", 500, cp, at) {
		t.Fatal("first put refused")
	}
	if w.Put("k", "j2", 600, cp, at) {
		t.Fatal("worse donor replaced better")
	}
	if !w.Put("k", "j3", 400, cp, at) {
		t.Fatal("better donor refused")
	}
	if w.Put("", "j4", 400, cp, at) || w.Put("k2", "j4", 0, cp, at) || w.Put("k2", "j4", 5, nil, at) {
		t.Fatal("degenerate put accepted")
	}
	e, ok := w.Get("k")
	if !ok || e.JobID != "j3" || e.BestCycles != 400 {
		t.Fatalf("entry: %+v ok=%v", e, ok)
	}
	if _, ok := w.Get("missing"); ok {
		t.Fatal("phantom hit")
	}
	st := w.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 || st.Puts != 2 {
		t.Fatalf("stats: %+v", st)
	}
}
