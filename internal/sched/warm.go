package sched

import (
	"encoding/json"
	"sync"
	"time"
)

// WarmEntry is the best stored checkpoint for one structure key: the
// donor job, its best cycle count, and the raw checkpoint payload. The
// payload is opaque to sched — the server decodes it with the mapper's
// Checkpoint codec and transfers only encodings (genotypes) into the new
// search, never fitness values, so a stale donor can cost generations
// but can never poison a result (see DESIGN.md §13).
type WarmEntry struct {
	Key        string
	JobID      string
	BestCycles float64
	Checkpoint json.RawMessage
	StoredAt   time.Time
}

// WarmStore is the warm-start library: for each structure-only canonical
// key (same operator graph shape and memory-level structure, any tensor
// sizes) it retains the checkpoint of the best-scoring finished search.
// It is an in-memory index rebuilt from the durable job store at open,
// so it needs no persistence of its own.
type WarmStore struct {
	mu      sync.Mutex
	entries map[string]WarmEntry
	hits    uint64
	misses  uint64
	puts    uint64
}

// NewWarmStore builds an empty library.
func NewWarmStore() *WarmStore {
	return &WarmStore{entries: map[string]WarmEntry{}}
}

// Put offers a finished search's checkpoint under key. It is installed
// only when the key is new or bestCycles beats the stored donor (ties
// keep the incumbent, so replays are order-insensitive for distinct
// scores and stable for equal ones). Returns whether it was installed.
func (w *WarmStore) Put(key, jobID string, bestCycles float64, checkpoint json.RawMessage, at time.Time) bool {
	if key == "" || len(checkpoint) == 0 || bestCycles <= 0 {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if cur, ok := w.entries[key]; ok && cur.BestCycles <= bestCycles {
		return false
	}
	w.entries[key] = WarmEntry{
		Key:        key,
		JobID:      jobID,
		BestCycles: bestCycles,
		Checkpoint: append(json.RawMessage(nil), checkpoint...),
		StoredAt:   at,
	}
	w.puts++
	return true
}

// Get looks up the best donor for key, counting hit/miss.
func (w *WarmStore) Get(key string) (WarmEntry, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	e, ok := w.entries[key]
	if ok {
		w.hits++
		e.Checkpoint = append(json.RawMessage(nil), e.Checkpoint...)
	} else {
		w.misses++
	}
	return e, ok
}

// WarmStats is the metrics snapshot of the library.
type WarmStats struct {
	Entries int
	Hits    uint64
	Misses  uint64
	Puts    uint64
}

// Stats snapshots the counters.
func (w *WarmStore) Stats() WarmStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WarmStats{Entries: len(w.entries), Hits: w.hits, Misses: w.misses, Puts: w.puts}
}
