// Package sched is the multi-tenant scheduling layer between the server
// and the job store: priority classes with weighted-fair (stride)
// dequeue, per-tenant quotas, and a warm-start library that seeds new
// searches from checkpoints of structurally identical design points.
//
// The scheduler plugs into jobs.Store as its Picker, so one policy
// governs both the local worker pool and fleet /v1/fleet/claim — a bulk
// sweep cannot starve interactive jobs no matter which node's workers
// drain the queue. All decisions are deterministic: virtual time is pure
// integer arithmetic advanced per pick (never the wall clock), ties
// break by a seeded hash, and within a class the oldest job wins. Two
// schedulers configured identically and shown the same sequence of
// queue states pick the same jobs.
//
// The package imports only internal/jobs (plus stdlib); the server
// composes it. It lives inside the determinism lint scope.
package sched

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Class is a job's priority class. Higher-weight classes receive
// proportionally more dequeues when the queue is contended; within a
// class, dequeue order is FIFO.
type Class string

const (
	// Interactive is for latency-sensitive, user-facing searches.
	Interactive Class = "interactive"
	// Batch is the default for unclassified work.
	Batch Class = "batch"
	// Bulk is for saturating sweeps that should only soak up leftover
	// capacity.
	Bulk Class = "bulk"
)

// classes lists every class in descending priority; iteration uses this
// (never a map) so scheduling decisions are order-deterministic.
var classes = []Class{Interactive, Batch, Bulk}

// DefaultWeights is the stride-scheduling weight of each class: out of
// every 21 contended dequeues, interactive takes 16, batch 4, bulk 1.
var DefaultWeights = map[Class]int{
	Interactive: 16,
	Batch:       4,
	Bulk:        1,
}

// ParseClass validates a submission's class string. Empty means Batch.
func ParseClass(s string) (Class, error) {
	switch c := Class(strings.ToLower(strings.TrimSpace(s))); c {
	case "":
		return Batch, nil
	case Interactive, Batch, Bulk:
		return c, nil
	default:
		return "", fmt.Errorf("sched: unknown class %q (want interactive, batch, or bulk)", s)
	}
}

// ClassOf maps a persisted job class string onto a Class, defaulting to
// Batch for anything unknown (old records, foreign writers).
func ClassOf(s string) Class {
	if c, err := ParseClass(s); err == nil {
		return c
	}
	return Batch
}

// CodeTenantQuota is the stable machine code carried by quota
// rejections; the server maps it onto HTTP 429 and the CLI onto its own
// exit taxonomy, byte-identically.
const CodeTenantQuota = "tenant_quota_exhausted"

// QuotaError refuses a submission (or claim) because a tenant is at its
// limit. It is the admission-control error the server converts to 429.
type QuotaError struct {
	Tenant string
	Limit  int
	Active int
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("sched: tenant %q at quota: %d active jobs of %d allowed", e.Tenant, e.Active, e.Limit)
}

// tieHash is the seeded tie-breaker: a deterministic 64-bit hash of the
// scheduler seed and a class name, fixed for the scheduler's lifetime.
func tieHash(seed int64, c Class) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", seed, c)
	return h.Sum64()
}
