package sched

import (
	"sync"

	"repro/internal/jobs"
)

// strideScale is the numerator of the stride computation. A class's
// stride is strideScale/weight, so higher weights advance virtual time
// more slowly and win more picks. 1<<20 keeps every division exact
// enough that relative shares match weights to well under one percent.
const strideScale = 1 << 20

// Config sizes a Scheduler.
type Config struct {
	// Weights maps each class to its share of contended dequeues.
	// Classes absent from the map fall back to DefaultWeights; weights
	// below 1 are clamped to 1.
	Weights map[Class]int
	// TenantMaxRunning caps one tenant's concurrently running jobs
	// across the local pool and all fleet claims. Zero means unlimited.
	TenantMaxRunning int
	// TenantMaxActive caps one tenant's active (queued + running) jobs
	// at admission time. Zero means unlimited.
	TenantMaxActive int
	// Seed feeds the deterministic tie-breaker used when two classes
	// carry equal virtual time.
	Seed int64
}

// Scheduler is the weighted-fair dequeue policy plus tenant accounting.
// Install Pick as the job store's Picker and call Admit from the
// submission path. All methods are safe for concurrent use.
type Scheduler struct {
	cfg Config

	mu sync.Mutex
	// pass is each class's virtual time; vt is the global virtual time —
	// the pass of the most recent pick — used to re-align a class that
	// was empty (it must not burn accumulated lag monopolizing the
	// queue, nor be punished for having been idle).
	pass map[Class]uint64
	vt   uint64

	// Counters for /metrics.
	picks          map[Class]uint64
	quotaDeferrals uint64
	quotaRejects   uint64
}

// New builds a scheduler from cfg.
func New(cfg Config) *Scheduler {
	return &Scheduler{
		cfg:   cfg,
		pass:  map[Class]uint64{},
		picks: map[Class]uint64{},
	}
}

func (s *Scheduler) weight(c Class) int {
	w, ok := s.cfg.Weights[c]
	if !ok {
		w = DefaultWeights[c]
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Pick implements jobs.Picker: stride scheduling over per-class virtual
// time, with per-tenant running quotas filtering candidates first. It
// returns the chosen job's ID, or "" when every queued job's tenant is
// at its running quota (the claim then reports an empty queue and the
// worker sleeps until something finishes).
//
// queued and running arrive ID-ordered from the store, so "first
// eligible job of the class" is "oldest" and the whole decision is a
// pure function of (config, accumulated virtual time, queue state).
func (s *Scheduler) Pick(queued, running []*jobs.Job) string {
	s.mu.Lock()
	defer s.mu.Unlock()

	var runningByTenant map[string]int
	if s.cfg.TenantMaxRunning > 0 {
		runningByTenant = make(map[string]int, len(running))
		for _, j := range running {
			runningByTenant[j.Tenant]++
		}
	}

	// Head of each class's FIFO among quota-eligible jobs.
	head := map[Class]*jobs.Job{}
	deferred := false
	for _, j := range queued {
		c := ClassOf(j.Class)
		if head[c] != nil {
			continue
		}
		if runningByTenant != nil && runningByTenant[j.Tenant] >= s.cfg.TenantMaxRunning {
			deferred = true
			continue
		}
		head[c] = j
	}
	if len(head) == 0 {
		if deferred {
			s.quotaDeferrals++
		}
		return ""
	}

	// Re-align classes that sat empty: without this, a class returning
	// after a quiet spell would hold a huge virtual-time deficit and
	// starve everyone else until it caught up.
	for c := range head {
		if s.pass[c] < s.vt {
			s.pass[c] = s.vt
		}
	}

	var best Class
	found := false
	for _, c := range classes { // fixed order: deterministic iteration
		if head[c] == nil {
			continue
		}
		if !found {
			best, found = c, true
			continue
		}
		switch {
		case s.pass[c] < s.pass[best]:
			best = c
		case s.pass[c] == s.pass[best] && tieHash(s.cfg.Seed, c) < tieHash(s.cfg.Seed, best):
			best = c
		}
	}

	s.vt = s.pass[best]
	s.pass[best] += strideScale / uint64(s.weight(best))
	s.picks[best]++
	return head[best].ID
}

// Admit is the submission-time quota check, run by the store under its
// lock (see jobs.CreateWith) so it is atomic with the create. active is
// every non-terminal job; the check counts the submitting tenant's and
// refuses with a *QuotaError once TenantMaxActive is reached. Because
// tenant and class persist on the job records, the same check holds
// after a restart with no extra state.
func (s *Scheduler) Admit(tenant string) func(active []*jobs.Job) error {
	return func(active []*jobs.Job) error {
		if s.cfg.TenantMaxActive <= 0 {
			return nil
		}
		n := 0
		for _, j := range active {
			if j.Tenant == tenant {
				n++
			}
		}
		if n >= s.cfg.TenantMaxActive {
			s.mu.Lock()
			s.quotaRejects++
			s.mu.Unlock()
			return &QuotaError{Tenant: tenant, Limit: s.cfg.TenantMaxActive, Active: n}
		}
		return nil
	}
}

// Stats is the metrics snapshot of the scheduler.
type Stats struct {
	// Picks counts dequeues per class since start.
	Picks map[Class]uint64
	// QuotaDeferrals counts claims declined because every queued job's
	// tenant was at its running quota; QuotaRejects counts submissions
	// refused at admission.
	QuotaDeferrals uint64
	QuotaRejects   uint64
}

// Stats snapshots the counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := make(map[Class]uint64, len(s.picks))
	for c, n := range s.picks {
		p[c] = n
	}
	return Stats{Picks: p, QuotaDeferrals: s.quotaDeferrals, QuotaRejects: s.quotaRejects}
}
