package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/workload"
)

// pipelineErr is what the fail-fast Compile → Evaluate pipeline says about
// a design point.
func pipelineErr(root *Node, g *workload.Graph, spec *arch.Spec, opts Options) error {
	p, err := Compile(root, g, spec)
	if err != nil {
		return err
	}
	_, err = p.Evaluate(context.Background(), opts)
	return err
}

// staticMutation builds one invalid variant of the Sec 4.2 tree per rule.
type staticMutation struct {
	name string
	rule string
	mut  func(g *workload.Graph, root *Node) *Node
}

func staticMutations() []staticMutation {
	return []staticMutation{
		{"bad coverage", RuleCoverage, func(g *workload.Graph, root *Node) *Node {
			root.Children[0].Children[0].Loops[1].Extent = 16 // l tiled to 16·2 = 32 ≠ 64
			return root
		}},
		{"zero extent", RuleLoopExtent, func(g *workload.Graph, root *Node) *Node {
			root.Loops[0].Extent = 0
			return root
		}},
		{"foreign dim", RuleLoopDim, func(g *workload.Graph, root *Node) *Node {
			root.Children[0].Loops = append(root.Children[0].Loops, T("zz", 1))
			return root
		}},
		{"leaf with children", RuleLeafChildren, func(g *workload.Graph, root *Node) *Node {
			leaf := root.Children[0].Children[0]
			leaf.Children = []*Node{Leaf("extra", g.Op("B"))}
			return root
		}},
		{"dup op", RuleDupOp, func(g *workload.Graph, root *Node) *Node {
			root.Children[1].Children = append(root.Children[1].Children, Leaf("again", g.Op("B")))
			return root
		}},
		{"interior empty", RuleInteriorEmpty, func(g *workload.Graph, root *Node) *Node {
			root.Children[1].Children = nil
			root.Children[1].Op = nil
			return root
		}},
		{"level inversion", RuleLevelOrder, func(g *workload.Graph, root *Node) *Node {
			root.Children[0].Level = 3
			return root
		}},
		{"level out of range", RuleLevelRange, func(g *workload.Graph, root *Node) *Node {
			root.Level = 99
			return root
		}},
		{"op missing leaf", RuleOpNoLeaf, func(g *workload.Graph, root *Node) *Node {
			// Drop the C-leaf subtree and move its dims nowhere: operator C
			// then has no leaf tile.
			return Tile(root.Name, root.Level, root.Binding, root.Loops, root.Children[0])
		}},
	}
}

func TestStaticMatchesPipeline(t *testing.T) {
	for _, m := range staticMutations() {
		t.Run(m.name, func(t *testing.T) {
			g := sec42Graph(32, 64, 64, 32)
			root := m.mut(g, sec42Tree(g))
			spec := arch.Cloud()
			opts := Options{}

			want := pipelineErr(root, g, spec, opts)
			if want == nil {
				t.Fatal("mutation did not break the mapping")
			}
			vs := AnalyzeStatic(root, g, spec, opts)
			if len(vs) == 0 {
				t.Fatalf("false clean: pipeline says %v", want)
			}
			if vs[0].Err.Error() != want.Error() {
				t.Errorf("first violation = %q, pipeline = %q", vs[0].Err, want)
			}
			found := false
			for _, v := range vs {
				if v.Rule == m.rule {
					found = true
				}
			}
			if !found {
				t.Errorf("no %s violation in %v", m.rule, vs)
			}
			// QuickReject covers every non-capacity rule with the same error.
			if err := QuickReject(root, g, spec, opts); err == nil {
				t.Error("QuickReject passed a broken mapping")
			} else if err.Error() != want.Error() {
				t.Errorf("QuickReject = %q, pipeline = %q", err, want)
			}
			// Sentinel classification matches.
			if errors.Is(want, ErrInvalidMapping) != isMark(vs[0].Err, ErrInvalidMapping) {
				t.Error("sentinel class mismatch")
			}
		})
	}
}

func TestStaticCleanOnValid(t *testing.T) {
	g := sec42Graph(32, 64, 64, 32)
	root := sec42Tree(g)
	spec := arch.Cloud()
	if err := pipelineErr(root, g, spec, Options{}); err != nil {
		t.Fatalf("baseline not valid: %v", err)
	}
	if vs := AnalyzeStatic(root, g, spec, Options{}); len(vs) != 0 {
		t.Fatalf("violations on a valid mapping: %v", vs)
	}
	if err := QuickReject(root, g, spec, Options{}); err != nil {
		t.Fatalf("QuickReject on a valid mapping: %v", err)
	}
}

// TestStaticResourceRules exercises the PE, instance and capacity rules on
// mappings that are structurally legal but over budget, checking exact
// agreement with the evaluator including Options gating.
func TestStaticResourceRules(t *testing.T) {
	spec := arch.Edge() // small machine (4096 PEs): easy to exceed
	g := sec42Graph(8192, 64, 64, 32)
	mk := func() *Node {
		opA, opB, opC := g.Op("A"), g.Op("B"), g.Op("C")
		t00 := Leaf("T0_0", opA, S("i", 8192), T("l", 64), T("k", 32))
		t10 := Leaf("T1_0", opB, S("i", 8192), T("l", 64))
		t20 := Leaf("T2_0", opC, S("i", 8192), T("j", 64), T("l", 64))
		t01 := Tile("T0_1", 1, Pipe, nil, t00, t10)
		t11 := Tile("T1_1", 1, Seq, nil, t20)
		return Tile("T0_2", 2, Shar, nil, t01, t11)
	}
	root := mk()

	want := pipelineErr(root, g, spec, Options{})
	if !errors.Is(want, ErrInfeasible) {
		t.Fatalf("want infeasible, got %v", want)
	}
	vs := AnalyzeStatic(root, g, spec, Options{})
	if len(vs) == 0 || vs[0].Err.Error() != want.Error() {
		t.Fatalf("static = %v, pipeline = %v", vs, want)
	}
	if !vs[0].Infeasible() {
		t.Error("resource violation not classified infeasible")
	}
	if err := QuickReject(root, g, spec, Options{}); err == nil || err.Error() != want.Error() {
		t.Errorf("QuickReject = %v, pipeline = %v", err, want)
	}

	// With the PE check off, the pipeline's next complaint (if any) must
	// again match the static pass under the same options.
	optsNoPE := Options{SkipPECheck: true}
	wantNoPE := pipelineErr(root, g, spec, optsNoPE)
	vsNoPE := AnalyzeStatic(root, g, spec, optsNoPE)
	if (wantNoPE == nil) != (len(vsNoPE) == 0) {
		t.Fatalf("skip-PE disagreement: pipeline=%v static=%v", wantNoPE, vsNoPE)
	}
	if wantNoPE != nil && vsNoPE[0].Err.Error() != wantNoPE.Error() {
		t.Errorf("skip-PE first violation = %q, pipeline = %q", vsNoPE[0].Err, wantNoPE)
	}

	// Capacity: a mapping inside the PE budget whose staged slices overflow
	// the L1 scratchpad — whole 1024×1024 tensors staged under one L1 tile
	// exceed Edge's 2M-word L1.
	g2 := sec42Graph(1024, 1024, 1024, 1024)
	opA, opB, opC := g2.Op("A"), g2.Op("B"), g2.Op("C")
	t00 := Leaf("c0", opA, T("i", 1024), T("l", 1024), T("k", 1024))
	t10 := Leaf("c1", opB, T("i", 1024), T("l", 1024))
	t20 := Leaf("c2", opC, T("i", 1024), T("j", 1024), T("l", 1024))
	t01 := Tile("c01", 1, Seq, nil, t00, t10, t20)
	capRoot := Tile("croot", 2, Seq, nil, t01)

	wantCap := pipelineErr(capRoot, g2, spec, Options{})
	if !IsOOM(wantCap) {
		t.Fatalf("want capacity error, got %v", wantCap)
	}
	vsCap := AnalyzeStatic(capRoot, g2, spec, Options{})
	if len(vsCap) == 0 || vsCap[0].Rule != RuleCapacity || vsCap[0].Err.Error() != wantCap.Error() {
		t.Fatalf("capacity static = %v, pipeline = %v", vsCap, wantCap)
	}
	// QuickReject deliberately skips the capacity rule.
	if err := QuickReject(capRoot, g2, spec, Options{}); err != nil {
		t.Errorf("QuickReject must skip capacity, got %v", err)
	}
	// And with the capacity check off, the point is fully valid both ways.
	if err := pipelineErr(capRoot, g2, spec, Options{SkipCapacityCheck: true}); err != nil {
		t.Fatalf("skip-capacity pipeline: %v", err)
	}
	if vs := AnalyzeStatic(capRoot, g2, spec, Options{SkipCapacityCheck: true}); len(vs) != 0 {
		t.Errorf("skip-capacity static violations: %v", vs)
	}
}

// TestStaticCollectsAll: one mapping with several independent problems
// yields one violation per problem in a single pass.
func TestStaticCollectsAll(t *testing.T) {
	g := sec42Graph(32, 64, 64, 32)
	root := sec42Tree(g)
	root.Loops[0].Extent = 0                                    // loop-extent + coverage (i)
	root.Children[1].Loops = append(root.Children[1].Loops, T("zz", 3)) // loop-dim
	vs := AnalyzeStatic(root, g, arch.Cloud(), Options{})
	got := map[string]int{}
	for _, v := range vs {
		got[v.Rule]++
	}
	if got[RuleLoopExtent] != 1 || got[RuleLoopDim] != 1 || got[RuleCoverage] == 0 {
		t.Fatalf("rules collected = %v (violations %v)", got, vs)
	}
}

// TestStaticAllocatesNoProgram pins the no-Program promise via the compile
// counter.
func TestStaticAllocatesNoProgram(t *testing.T) {
	g := sec42Graph(32, 64, 64, 32)
	root := sec42Tree(g)
	g2 := sec42Graph(32, 64, 64, 32)
	broken2 := sec42Tree(g2)
	broken2.Loops[0].Extent = 7

	before := CompileCount()
	_ = AnalyzeStatic(root, g, arch.Cloud(), Options{})
	_ = AnalyzeStatic(broken2, g2, arch.Cloud(), Options{})
	_ = QuickReject(root, g, arch.Cloud(), Options{})
	_ = QuickReject(broken2, g2, arch.Cloud(), Options{})
	if after := CompileCount(); after != before {
		t.Fatalf("static pass compiled %d Programs", after-before)
	}
}
