package core_test

import (
	"context"
	"testing"

	"repro/internal/core"
)

// TestEvaluateIntoZeroAlloc guards the arena contract: once a Scratch has
// been warmed, steady-state evaluation allocates nothing. This is what the
// mapper's inner loop relies on for throughput.
func TestEvaluateIntoZeroAlloc(t *testing.T) {
	root, g, spec := benchDesignPoint(t)
	prog, err := core.Compile(root, g, spec)
	if err != nil {
		t.Fatal(err)
	}
	s := prog.NewScratch()
	ctx := context.Background()
	// Warm-up: first run sizes any lazily-grown rows.
	if _, err := prog.EvaluateInto(ctx, s, core.Options{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := prog.EvaluateInto(ctx, s, core.Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("EvaluateInto allocates %v objects per run in steady state, want 0", allocs)
	}
}

// TestEvaluateDeltaSteadyStateAllocs: a delta re-evaluation of an unchanged
// tree reuses the state's arena end to end. The only tolerated allocations
// are the rebind of the caller's tree into the view (bounded, not O(tree)).
func TestEvaluateDeltaSteadyStateAllocs(t *testing.T) {
	root, g, spec := benchDesignPoint(t)
	prog, err := core.Compile(root, g, spec)
	if err != nil {
		t.Fatal(err)
	}
	d := prog.NewDelta(core.Options{})
	ctx := context.Background()
	if _, err := prog.EvaluateDelta(ctx, d, root, core.Options{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := prog.EvaluateDelta(ctx, d, root, core.Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Errorf("EvaluateDelta allocates %v objects per steady-state run, want <= 4", allocs)
	}
}

// TestWithTilingAllocs guards the rebind fast path: re-targeting a compiled
// Program at a new tiling of the same structure must stay under 20
// allocations (down from 139 before the arena refactor).
func TestWithTilingAllocs(t *testing.T) {
	root, g, spec := benchDesignPoint(t)
	prog, err := core.Compile(root, g, spec)
	if err != nil {
		t.Fatal(err)
	}
	_, tilings := perturbedFactorWalk(t, 17, 8)
	// Warm-up one rebind of each candidate.
	for _, cand := range tilings {
		if _, err := prog.WithTiling(cand); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		cand := tilings[i%len(tilings)]
		i++
		if _, err := prog.WithTiling(cand); err != nil {
			t.Fatal(err)
		}
	})
	if allocs >= 20 {
		t.Errorf("WithTiling allocates %v objects per run, want < 20", allocs)
	}
}
